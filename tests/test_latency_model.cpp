// Unit tests for the latency model: per-op base costs, shift charging,
// the same-type batching discount, path-delay tiers, and jitter bounds.
#include <gtest/gtest.h>

#include "switchsim/latency_model.h"

namespace tango::switchsim {
namespace {

OpCostModel flat_costs() {
  OpCostModel c;
  c.add_base = millis(1.0);
  c.add_same_priority = micros(500);
  c.add_software = micros(250);
  c.mod_base = millis(3.0);
  c.del_base = millis(2.0);
  c.per_shift = micros(10);
  c.msg_overhead = micros(100);
  c.batch_factor = 0.2;
  c.jitter_frac = 0;  // deterministic
  return c;
}

PathDelayModel tiers() {
  PathDelayModel p;
  p.level_delay = {micros(500), millis(4.0)};
  p.control_path = millis(8.0);
  p.jitter_frac = 0;
  return p;
}

TEST(LatencyModelTest, OpKindMapping) {
  EXPECT_EQ(op_kind(of::FlowModCommand::kAdd), OpKind::kAdd);
  EXPECT_EQ(op_kind(of::FlowModCommand::kModify), OpKind::kMod);
  EXPECT_EQ(op_kind(of::FlowModCommand::kModifyStrict), OpKind::kMod);
  EXPECT_EQ(op_kind(of::FlowModCommand::kDelete), OpKind::kDel);
  EXPECT_EQ(op_kind(of::FlowModCommand::kDeleteStrict), OpKind::kDel);
}

TEST(LatencyModelTest, BaseCostsPerVariant) {
  LatencyModel m(flat_costs(), tiers(), 1);
  // First op: full overhead.
  EXPECT_DOUBLE_EQ(m.flow_mod_cost(OpKind::kAdd, 0, false, false).ms(), 1.1);
  m.reset_batch_state();
  EXPECT_DOUBLE_EQ(m.flow_mod_cost(OpKind::kAdd, 0, true, false).ms(), 0.6);
  m.reset_batch_state();
  EXPECT_DOUBLE_EQ(m.flow_mod_cost(OpKind::kAdd, 0, false, true).ms(), 0.35);
  m.reset_batch_state();
  EXPECT_DOUBLE_EQ(m.flow_mod_cost(OpKind::kMod, 0, false, false).ms(), 3.1);
  m.reset_batch_state();
  EXPECT_DOUBLE_EQ(m.flow_mod_cost(OpKind::kDel, 0, false, false).ms(), 2.1);
}

TEST(LatencyModelTest, ShiftsChargeLinearly) {
  LatencyModel m(flat_costs(), tiers(), 1);
  const auto none = m.flow_mod_cost(OpKind::kAdd, 0, false, false);
  const auto many = m.flow_mod_cost(OpKind::kAdd, 1000, false, false);
  // 1000 shifts * 10us = 10ms, minus the batched-overhead difference.
  EXPECT_NEAR((many - none).ms(), 10.0 - 0.08, 1e-9);
}

TEST(LatencyModelTest, BatchDiscountAppliesToSameTypeRuns) {
  LatencyModel m(flat_costs(), tiers(), 1);
  const auto first = m.flow_mod_cost(OpKind::kMod, 0, false, false);
  const auto second = m.flow_mod_cost(OpKind::kMod, 0, false, false);
  EXPECT_DOUBLE_EQ(first.ms(), 3.1);             // full overhead
  EXPECT_DOUBLE_EQ(second.ms(), 3.0 + 0.02);     // discounted
  const auto switched = m.flow_mod_cost(OpKind::kAdd, 0, false, false);
  EXPECT_DOUBLE_EQ(switched.ms(), 1.1);          // type change: full again
  m.reset_batch_state();
  EXPECT_DOUBLE_EQ(m.flow_mod_cost(OpKind::kAdd, 0, false, false).ms(), 1.1);
}

TEST(LatencyModelTest, PathDelaysPerTier) {
  LatencyModel m(flat_costs(), tiers(), 1);
  EXPECT_DOUBLE_EQ(m.path_delay(0).ms(), 0.5);
  EXPECT_DOUBLE_EQ(m.path_delay(1).ms(), 4.0);
  EXPECT_DOUBLE_EQ(m.control_delay().ms(), 8.0);
  EXPECT_EQ(m.levels(), 2u);
}

TEST(LatencyModelTest, JitterIsBoundedAndSeeded) {
  auto costs = flat_costs();
  costs.jitter_frac = 0.05;
  LatencyModel a(costs, tiers(), 42);
  LatencyModel b(costs, tiers(), 42);
  LatencyModel c(costs, tiers(), 43);
  bool differs_across_seeds = false;
  for (int i = 0; i < 200; ++i) {
    const auto va = a.flow_mod_cost(OpKind::kAdd, 0, false, false);
    const auto vb = b.flow_mod_cost(OpKind::kAdd, 0, false, false);
    const auto vc = c.flow_mod_cost(OpKind::kAdd, 0, false, false);
    EXPECT_EQ(va.ns(), vb.ns());  // same seed: identical
    if (va.ns() != vc.ns()) differs_across_seeds = true;
    // 5% jitter: stay within +-30% (6 sigma) and strictly positive.
    EXPECT_GT(va.ms(), 1.1 * 0.7);
    EXPECT_LT(va.ms(), 1.1 * 1.3);
  }
  EXPECT_TRUE(differs_across_seeds);
}

TEST(LatencyModelTest, SetCostsTakesEffectImmediately) {
  LatencyModel m(flat_costs(), tiers(), 1);
  auto faster = flat_costs();
  faster.mod_base = micros(100);
  m.set_costs(faster);
  m.reset_batch_state();
  EXPECT_DOUBLE_EQ(m.flow_mod_cost(OpKind::kMod, 0, false, false).ms(), 0.2);
}

}  // namespace
}  // namespace tango::switchsim
