// Unit and property tests for the statistics toolkit the inference engine
// builds on: descriptive stats, 1-D clustering, correlation, and the
// negative-binomial size estimator.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "common/rng.h"
#include "stats/cluster.h"
#include "stats/correlation.h"
#include "stats/descriptive.h"
#include "stats/estimators.h"

namespace tango::stats {
namespace {

TEST(Descriptive, MeanVarianceStd) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Descriptive, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
  const std::vector<double> one{42};
  EXPECT_DOUBLE_EQ(mean(one), 42.0);
  EXPECT_DOUBLE_EQ(percentile(one, 99), 42.0);
}

TEST(Descriptive, PercentileInterpolates) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
  EXPECT_DOUBLE_EQ(median(xs), 25.0);
}

TEST(Descriptive, SummaryFields) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const auto s = summarize(xs);
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
}

TEST(GapClusters, SingleTightCluster) {
  std::vector<double> xs;
  for (int i = 0; i < 50; ++i) xs.push_back(1.0 + 0.001 * i);
  const auto cs = gap_clusters(xs);
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_EQ(cs[0].count, 50u);
}

TEST(GapClusters, ThreeLatencyBands) {
  // Fast ~0.4ms, slow ~3.7ms, control ~8ms with jitter — Fig 2 style.
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(rng.normal(0.4, 0.02));
  for (int i = 0; i < 80; ++i) xs.push_back(rng.normal(3.7, 0.15));
  for (int i = 0; i < 60; ++i) xs.push_back(rng.normal(8.0, 0.3));
  const auto cs = gap_clusters(xs);
  ASSERT_EQ(cs.size(), 3u);
  EXPECT_EQ(cs[0].count, 100u);
  EXPECT_EQ(cs[1].count, 80u);
  EXPECT_EQ(cs[2].count, 60u);
  EXPECT_NEAR(cs[0].center, 0.4, 0.05);
  EXPECT_NEAR(cs[2].center, 8.0, 0.3);
}

TEST(GapClusters, ClustersSortedAscending) {
  const std::vector<double> xs{9, 9.1, 1, 1.1, 5, 5.1};
  const auto cs = gap_clusters(xs);
  ASSERT_EQ(cs.size(), 3u);
  EXPECT_LT(cs[0].center, cs[1].center);
  EXPECT_LT(cs[1].center, cs[2].center);
}

TEST(Kmeans1d, RecoversWellSeparatedCenters) {
  Rng rng(17);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.normal(1.0, 0.05));
  for (int i = 0; i < 200; ++i) xs.push_back(rng.normal(10.0, 0.3));
  const auto cs = kmeans_1d(xs, 2);
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_NEAR(cs[0].center, 1.0, 0.1);
  EXPECT_NEAR(cs[1].center, 10.0, 0.3);
}

TEST(Kmeans1d, KLargerThanDataIsClamped) {
  const std::vector<double> xs{1, 2};
  const auto cs = kmeans_1d(xs, 10);
  EXPECT_LE(cs.size(), 2u);
}

TEST(Classify, ContainmentThenNearest) {
  std::vector<Cluster> cs{{0.9, 1.1, 1.0, 10}, {7.5, 8.5, 8.0, 10}};
  EXPECT_EQ(classify(cs, 1.05), 0u);
  EXPECT_EQ(classify(cs, 8.2), 1u);
  EXPECT_EQ(classify(cs, 4.9), 1u);  // nearest center
  EXPECT_EQ(classify(cs, 2.0), 0u);
}

TEST(Pearson, PerfectCorrelations) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> up{10, 20, 30, 40};
  const std::vector<double> down{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson(xs, down), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesYieldsZero) {
  const std::vector<double> xs{1, 2, 3};
  const std::vector<double> ys{5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(PointBiserial, TopHalfMembership) {
  // Attribute ranks 0..99; cached = rank >= 50. Strong positive correlation.
  std::vector<double> xs(100);
  std::vector<bool> cached(100);
  for (int i = 0; i < 100; ++i) {
    xs[i] = i;
    cached[i] = i >= 50;
  }
  EXPECT_GT(point_biserial(xs, cached), 0.8);
  // Random membership ~ 0.
  Rng rng(4);
  for (int i = 0; i < 100; ++i) cached[i] = rng.chance(0.5);
  EXPECT_LT(std::abs(point_biserial(xs, cached)), 0.3);
}

TEST(Spearman, MonotoneNonlinearIsPerfect) {
  std::vector<double> xs, ys;
  for (int i = 1; i <= 20; ++i) {
    xs.push_back(i);
    ys.push_back(std::exp(0.3 * i));  // nonlinear but monotone
  }
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
}

TEST(Spearman, HandlesTies) {
  const std::vector<double> xs{1, 2, 2, 3};
  const std::vector<double> ys{1, 2, 2, 3};
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
}

TEST(NegBinomialMle, ClosedForm) {
  // k=2 trials with runs {3, 5}: p_hat = 8 / (2 + 8) = 0.8.
  const std::vector<std::size_t> runs{3, 5};
  EXPECT_DOUBLE_EQ(negative_binomial_p_mle(runs), 0.8);
  EXPECT_DOUBLE_EQ(estimate_layer_size(100, runs), 80.0);
}

TEST(NegBinomialMle, AllMissesGivesZero) {
  const std::vector<std::size_t> runs{0, 0, 0};
  EXPECT_DOUBLE_EQ(negative_binomial_p_mle(runs), 0.0);
}

// Property sweep: simulate the actual sampling process for several hit
// probabilities and check the estimator recovers p within a few percent.
class NbRecovery : public ::testing::TestWithParam<double> {};

TEST_P(NbRecovery, RecoversHitProbability) {
  const double p = GetParam();
  std::mt19937_64 gen(1234);
  std::bernoulli_distribution hit(p);
  std::vector<std::size_t> runs;
  for (int trial = 0; trial < 4000; ++trial) {
    std::size_t x = 0;
    while (hit(gen)) ++x;
    runs.push_back(x);
  }
  EXPECT_NEAR(negative_binomial_p_mle(runs), p, 0.02);
}

INSTANTIATE_TEST_SUITE_P(HitProbabilities, NbRecovery,
                         ::testing::Values(0.1, 0.25, 0.5, 0.66, 0.8, 0.9));

}  // namespace
}  // namespace tango::stats
