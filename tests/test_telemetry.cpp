// Telemetry subsystem tests: metrics instruments (bucket edge cases),
// trace collection and Chrome-JSON export (validated with a mini JSON
// parser), run-report schema, the log sink bridge, and the two properties
// the subsystem promises the rest of the repo:
//   - determinism: two same-seed fault-injected runs export byte-identical
//     traces (wall-clock stamping off);
//   - zero overhead: attaching telemetry does not change simulated
//     behaviour — makespan and every report counter are identical with the
//     collector on and off.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <string>

#include "common/logging.h"
#include "net/fault_injector.h"
#include "net/network.h"
#include "scheduler/executor.h"
#include "scheduler/schedulers.h"
#include "switchsim/profiles.h"
#include "telemetry/log_bridge.h"
#include "telemetry/metrics.h"
#include "telemetry/run_report.h"
#include "telemetry/trace.h"
#include "workload/scenarios.h"

namespace tango::telemetry {
namespace {

namespace profiles = switchsim::profiles;

// ---------------------------------------------------------------------------
// Mini JSON validator (syntax only) — enough to prove exported documents
// parse, without pulling in a JSON dependency.
// ---------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= s_.size() || !std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Metrics instruments
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterIncAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  Gauge g;
  g.set(2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(MetricsTest, HistogramBucketEdges) {
  // Upper-inclusive buckets: (-inf,1], (1,2], (2,5], (5,inf).
  Histogram h({1.0, 2.0, 5.0});
  ASSERT_EQ(h.bucket_counts().size(), 4u);

  h.observe(1.0);   // exactly on first bound -> bucket 0
  h.observe(2.0);   // exactly on second bound -> bucket 1
  h.observe(5.0);   // exactly on last bound -> bucket 2
  h.observe(5.0000001);  // just above last bound -> overflow
  h.observe(0.25);  // below first bound -> bucket 0
  h.observe(-3.0);  // negative still lands in the first bucket
  h.observe(1e12);  // far overflow

  EXPECT_EQ(h.bucket_counts()[0], 3u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 2u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.min(), -3.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e12);
  EXPECT_NEAR(h.sum(), 1.0 + 2.0 + 5.0 + 5.0000001 + 0.25 - 3.0 + 1e12, 1e-3);
}

TEST(MetricsTest, EmptyHistogramReportsZeroMinMax) {
  Histogram h({1.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(MetricsTest, RegistryGetOrCreateIsStable) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.hits");
  Counter& b = reg.counter("x.hits");
  EXPECT_EQ(&a, &b);  // same instrument, stable address

  // First caller wins on histogram bounds.
  Histogram& h1 = reg.histogram("x.lat", {1.0, 2.0});
  Histogram& h2 = reg.histogram("x.lat", {99.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);

  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  EXPECT_EQ(reg.find_gauge("nope"), nullptr);
  EXPECT_EQ(reg.find_histogram("nope"), nullptr);
  EXPECT_EQ(reg.find_counter("x.hits"), &a);

  // Ordered iteration: names come back sorted.
  reg.counter("a.first");
  auto it = reg.counters().begin();
  EXPECT_EQ(it->first, "a.first");
  ++it;
  EXPECT_EQ(it->first, "x.hits");
}

// ---------------------------------------------------------------------------
// Trace collector + Chrome export
// ---------------------------------------------------------------------------

TEST(TraceTest, RecordsSpansAndInstants) {
  TraceCollector tc;
  tc.span("cat", "work", 1, SimTime{100}, SimTime{300},
          {arg("n", std::uint64_t{7})});
  tc.instant("cat", "tick", TraceCollector::kControllerLane,
             SimTime{150});
  ASSERT_EQ(tc.events().size(), 2u);
  EXPECT_EQ(tc.events()[0].phase, TraceEvent::Phase::kSpan);
  EXPECT_EQ(tc.events()[0].dur.ns(), 200);
  EXPECT_EQ(tc.events()[1].phase, TraceEvent::Phase::kInstant);
  EXPECT_EQ(tc.events()[1].dur.ns(), 0);
  EXPECT_EQ(tc.dropped_events(), 0u);

  tc.clear();
  EXPECT_TRUE(tc.events().empty());
}

TEST(TraceTest, CapacityDropsInsteadOfGrowing) {
  TraceCollector tc;
  tc.set_capacity(2);
  for (int i = 0; i < 5; ++i) {
    tc.instant("c", "e", 0, SimTime{i});
  }
  EXPECT_EQ(tc.events().size(), 2u);
  EXPECT_EQ(tc.dropped_events(), 3u);
}

TEST(TraceTest, ChromeJsonIsWellFormed) {
  TraceCollector tc;
  tc.set_process_name("test proc");
  tc.set_lane_name(3, "switch \"three\"\n");  // needs escaping
  tc.span("exec", "span", 3, SimTime{1500}, SimTime{4500},
          {arg("ok", true),
           arg_str("note", "quote\" backslash\\ ctrl\x01 done")});
  tc.instant("fault", "crash", 3, SimTime{2000});

  const std::string json = tc.to_chrome_json();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;

  // Structural landmarks of the trace-event format.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  // Simulated ns -> fractional us.
  EXPECT_NE(json.find("\"ts\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":3"), std::string::npos);
}

TEST(TraceTest, RunReportJsonIsWellFormedAndComplete) {
  Telemetry t;
  t.metrics.counter("a.count").inc(3);
  t.metrics.gauge("a.level").set(0.5);
  t.metrics.histogram("a.lat", {1.0, 10.0}).observe(4.0);
  t.trace.span("exec", "run", 0, SimTime{0}, SimTime{10});
  t.trace.span("other", "skipme", 0, SimTime{0}, SimTime{5});

  RunReport report("unit \"test\"");
  report.set_result("score", 1.25);
  report.set_result("label", "li\"ne\n2");
  report.add_row().col("k", 1.0).col("s", "v");
  report.add_metrics(t.metrics);
  report.add_spans(t.trace, {"exec"});

  const std::string json = report.to_json();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;
  for (const char* key :
       {"\"schema\"", "\"name\"", "\"results\"", "\"rows\"", "\"counters\"",
        "\"gauges\"", "\"histograms\"", "\"spans\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("tango.run_report.v1"), std::string::npos);
  // Category filter applied.
  EXPECT_NE(json.find("\"run\""), std::string::npos);
  EXPECT_EQ(json.find("skipme"), std::string::npos);
}

TEST(TraceTest, EmptyReportStillHasAllKeys) {
  RunReport report("empty");
  const std::string json = report.to_json();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;
  for (const char* key :
       {"\"results\"", "\"rows\"", "\"counters\"", "\"gauges\"",
        "\"histograms\"", "\"spans\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

// ---------------------------------------------------------------------------
// Log sink bridge
// ---------------------------------------------------------------------------

TEST(LogBridgeTest, TeesPassedLinesIntoTraceAndMetrics) {
  Telemetry t;
  SimTime fake_now{777};
  log::set_sink(tee_log_sink(t, [&fake_now] { return fake_now; }));
  const auto prev = log::threshold();
  log::set_threshold(log::Level::kWarn);

  log::warn("something odd");
  log::info("below threshold — must not record");

  log::set_sink({});
  log::set_threshold(prev);

  ASSERT_EQ(t.trace.events().size(), 1u);
  EXPECT_EQ(t.trace.events()[0].cat, "log");
  EXPECT_EQ(t.trace.events()[0].name, "warn");
  EXPECT_EQ(t.trace.events()[0].begin.ns(), 777);
  ASSERT_NE(t.metrics.find_counter("log.warn"), nullptr);
  EXPECT_EQ(t.metrics.find_counter("log.warn")->value(), 1u);
  EXPECT_EQ(t.metrics.find_counter("log.info"), nullptr);
}

// ---------------------------------------------------------------------------
// Determinism + zero overhead on a fault-injected execution
// ---------------------------------------------------------------------------

struct ScenarioRun {
  sched::ExecutionReport report;
  std::string trace_json;
  std::uint64_t flow_mods = 0;
  std::uint64_t retries = 0;
};

/// A small link-failure update on the fig10 triangle under 4% loss: enough
/// recovery activity to exercise spans, instants, and fault counters.
ScenarioRun run_scenario(bool with_telemetry) {
  ScenarioRun out;
  net::Network net;
  workload::TestbedIds ids;
  ids.s1 = net.add_switch(profiles::switch1());
  ids.s2 = net.add_switch(profiles::switch1());
  ids.s3 = net.add_switch(profiles::switch3());

  Telemetry tele;
  if (with_telemetry) net.set_telemetry(&tele);

  for (const auto id : {ids.s1, ids.s2, ids.s3}) {
    net::FaultConfig cfg;
    cfg.drop_to_switch = 0.04;
    cfg.drop_to_controller = 0.04;
    cfg.seed = 51 + id;
    net.enable_faults(id, cfg);
  }

  Rng rng(7);
  const auto dag = workload::link_failure_scenario(ids, 60, rng, 0);
  sched::DionysusScheduler sched;
  sched::ExecutorOptions opts;
  opts.request_timeout = millis(50);
  opts.max_retries = 5;
  opts.backoff_base = millis(2);
  out.report = execute(net, dag, sched, opts);

  if (with_telemetry) {
    out.trace_json = tele.trace.to_chrome_json();
    if (const auto* c = tele.metrics.find_counter("switch.flow_mods")) {
      out.flow_mods = c->value();
    }
    if (const auto* c = tele.metrics.find_counter("executor.retries")) {
      out.retries = c->value();
    }
  }
  return out;
}

TEST(TelemetryDeterminismTest, SameSeedRunsExportIdenticalTraces) {
  const auto a = run_scenario(true);
  const auto b = run_scenario(true);
  ASSERT_FALSE(a.trace_json.empty());
  EXPECT_EQ(a.trace_json, b.trace_json);  // byte-for-byte
  EXPECT_EQ(a.report.makespan.ns(), b.report.makespan.ns());
}

TEST(TelemetryDeterminismTest, AttachingTelemetryIsZeroOverhead) {
  const auto on = run_scenario(true);
  const auto off = run_scenario(false);
  // Virtual time and every behavioural counter must be bit-identical:
  // recording never touches the event queue or any RNG.
  EXPECT_EQ(on.report.makespan.ns(), off.report.makespan.ns());
  EXPECT_EQ(on.report.issued, off.report.issued);
  EXPECT_EQ(on.report.retries, off.report.retries);
  EXPECT_EQ(on.report.timeouts, off.report.timeouts);
  EXPECT_EQ(on.report.echo_probes, off.report.echo_probes);
  EXPECT_EQ(on.report.failed_requests, off.report.failed_requests);
  EXPECT_EQ(on.report.scheduling_rounds, off.report.scheduling_rounds);
}

TEST(TelemetryDeterminismTest, ReportCountersMatchRegistry) {
  const auto run = run_scenario(true);
  // Satellite (b): ExecutionReport recovery fields are derived views of the
  // registry counters, so the two can never drift apart.
  EXPECT_EQ(run.report.retries, run.retries);
  EXPECT_GT(run.flow_mods, 0u);
  EXPECT_GE(run.flow_mods, run.report.issued);
  const std::string& json = run.trace_json;
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid());
  // Per-switch lanes present by name.
  EXPECT_NE(json.find("controller"), std::string::npos);
  EXPECT_NE(json.find("s1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Bit-identity acceptance for the indexed table core and batched wire path.
// The fig10 (link-failure) and fig12-style (traffic-engineering) scenarios,
// fault-free and under a fault seed, must export byte-identical RunReport
// and trace JSON across repeat runs — the indexes and the batching layer
// are allowed to change speed, never behaviour.
// ---------------------------------------------------------------------------

struct AcceptanceRun {
  std::string report_json;
  std::string trace_json;
};

AcceptanceRun run_acceptance(bool traffic_engineering, bool with_faults) {
  net::Network net;
  workload::TestbedIds ids;
  ids.s1 = net.add_switch(profiles::switch1());
  ids.s2 = net.add_switch(profiles::switch1());
  ids.s3 = net.add_switch(profiles::switch3());
  Telemetry tele;
  net.set_telemetry(&tele);
  if (with_faults) {
    for (const auto id : {ids.s1, ids.s2, ids.s3}) {
      net::FaultConfig cfg;
      cfg.drop_to_switch = 0.03;
      cfg.drop_to_controller = 0.03;
      cfg.seed = 90 + id;
      net.enable_faults(id, cfg);
    }
  }
  Rng rng(13);
  const auto dag =
      traffic_engineering
          ? workload::traffic_engineering_scenario(ids, 80, 2.0, 1.0, 1.0, rng)
          : workload::link_failure_scenario(ids, 60, rng, 0);
  sched::DionysusScheduler sched;
  sched::ExecutorOptions opts;
  opts.request_timeout = millis(50);
  opts.max_retries = 5;
  opts.backoff_base = millis(2);
  const auto report = execute(net, dag, sched, opts);

  RunReport rr(traffic_engineering ? "fig12_te" : "fig10_lf");
  rr.set_result("makespan_s", report.makespan.sec());
  rr.set_result("issued", static_cast<double>(report.issued));
  rr.set_result("retries", static_cast<double>(report.retries));
  rr.set_result("timeouts", static_cast<double>(report.timeouts));
  rr.set_result("failed", static_cast<double>(report.failed_requests));
  rr.add_metrics(tele.metrics);
  rr.add_spans(tele.trace, {"exec"});
  return {rr.to_json(), tele.trace.to_chrome_json()};
}

TEST(BitIdentityAcceptance, Fig10AndFig12RunsAreByteStable) {
  for (const bool te : {false, true}) {
    for (const bool faults : {false, true}) {
      SCOPED_TRACE(std::string(te ? "fig12_te" : "fig10_lf") +
                   (faults ? " faulted" : " fault-free"));
      const auto a = run_acceptance(te, faults);
      const auto b = run_acceptance(te, faults);
      ASSERT_FALSE(a.trace_json.empty());
      EXPECT_EQ(a.report_json, b.report_json);
      EXPECT_EQ(a.trace_json, b.trace_json);  // byte-for-byte
    }
  }
}

TEST(BitIdentityAcceptance, BatchedFlowModsMatchSequentialSends) {
  // The batched wire path (one burst, one arrival event) must produce the
  // same completion order, the same simulated completion times, the same
  // channel byte counts, and the same trace as N sequential sends.
  struct Outcome {
    std::vector<std::pair<bool, std::int64_t>> completions;
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    std::string trace_json;
  };
  const auto run = [](bool batched) {
    Outcome out;
    net::Network net;
    const SwitchId id = net.add_switch(profiles::switch1());
    Telemetry tele;
    net.set_telemetry(&tele);
    std::vector<of::FlowMod> fms;
    for (std::uint32_t i = 0; i < 32; ++i) {
      of::FlowMod fm;
      fm.command = of::FlowModCommand::kAdd;
      fm.match.with_dl_type(0x0800);
      fm.match.set_nw_src_prefix(0x0a000000u + i, 32);
      fm.priority = static_cast<std::uint16_t>(0x3000 + (i % 5));
      fm.cookie = i;
      fm.actions = of::output_to(2);
      fms.push_back(fm);
    }
    const auto done = [&out](bool accepted, SimTime at) {
      out.completions.emplace_back(accepted, at.ns());
    };
    if (batched) {
      net.post_flow_mod_batch(id, fms, done);
    } else {
      for (const auto& fm : fms) net.post_flow_mod(id, fm, done);
    }
    net.run_all();
    out.messages = net.stats(id).messages_to_switch;
    out.bytes = net.stats(id).bytes_to_switch;
    out.trace_json = tele.trace.to_chrome_json();
    return out;
  };
  const auto sequential = run(false);
  const auto batched = run(true);
  ASSERT_EQ(sequential.completions.size(), 32u);
  EXPECT_EQ(batched.completions, sequential.completions);
  EXPECT_EQ(batched.messages, sequential.messages);
  EXPECT_EQ(batched.bytes, sequential.bytes);
  EXPECT_EQ(batched.trace_json, sequential.trace_json);
}

}  // namespace
}  // namespace tango::telemetry
