// Tests for the request DAG, the Dionysus baseline, the Basic Tango
// Scheduler (Algorithm 3), priority enforcement, and the executor.
#include <gtest/gtest.h>

#include <set>

#include "net/network.h"
#include "scheduler/executor.h"
#include "scheduler/request.h"
#include "scheduler/schedulers.h"
#include "switchsim/profiles.h"
#include "tango/probe_engine.h"
#include "tango/tango.h"

namespace tango::sched {
namespace {

namespace profiles = switchsim::profiles;
using core::ProbeEngine;

SwitchRequest req(SwitchId where, RequestType type, std::uint32_t index,
                  std::optional<std::uint16_t> priority = 0x8000) {
  SwitchRequest r;
  r.location = where;
  r.type = type;
  r.priority = priority;
  r.match = ProbeEngine::probe_match(index);
  r.actions = of::output_to(2);
  return r;
}

// ---------------------------------------------------------------------------
// RequestDag
// ---------------------------------------------------------------------------

TEST(RequestDagTest, DepthAndLevels) {
  RequestDag dag;
  const auto a = dag.add(req(1, RequestType::kAdd, 0));
  const auto b = dag.add(req(1, RequestType::kAdd, 1));
  const auto c = dag.add(req(1, RequestType::kAdd, 2));
  const auto d = dag.add(req(1, RequestType::kAdd, 3));
  dag.add_dependency(a, b);
  dag.add_dependency(b, c);
  dag.add_dependency(a, d);
  EXPECT_EQ(dag.depth(), 3u);
  const auto levels = dag.levels();
  EXPECT_EQ(levels[a], 0u);
  EXPECT_EQ(levels[b], 1u);
  EXPECT_EQ(levels[c], 2u);
  EXPECT_EQ(levels[d], 1u);
  EXPECT_EQ(dag.downstream_depth(a), 3u);
  EXPECT_EQ(dag.downstream_depth(c), 1u);
  EXPECT_EQ(dag.roots(), std::vector<std::size_t>{a});
  EXPECT_TRUE(dag.is_acyclic());
}

TEST(RequestDagTest, CycleDetection) {
  RequestDag dag;
  const auto a = dag.add(req(1, RequestType::kAdd, 0));
  const auto b = dag.add(req(1, RequestType::kAdd, 1));
  dag.add_dependency(a, b);
  dag.add_dependency(b, a);
  EXPECT_FALSE(dag.is_acyclic());
}

TEST(RequestDagTest, TypeConversions) {
  EXPECT_EQ(to_command(RequestType::kAdd), of::FlowModCommand::kAdd);
  EXPECT_EQ(to_command(RequestType::kMod), of::FlowModCommand::kModify);
  EXPECT_EQ(to_command(RequestType::kDel), of::FlowModCommand::kDelete);
  EXPECT_EQ(to_string(RequestType::kDel), "DEL");
}

// ---------------------------------------------------------------------------
// Scheduler ordering decisions
// ---------------------------------------------------------------------------

TEST(DionysusSchedulerTest, CriticalPathFirst) {
  RequestDag dag;
  const auto shallow = dag.add(req(1, RequestType::kAdd, 0));
  const auto deep = dag.add(req(1, RequestType::kAdd, 1));
  const auto mid = dag.add(req(1, RequestType::kAdd, 2));
  const auto tail1 = dag.add(req(1, RequestType::kAdd, 3));
  const auto tail2 = dag.add(req(1, RequestType::kAdd, 4));
  dag.add_dependency(deep, tail1);
  dag.add_dependency(tail1, tail2);
  dag.add_dependency(mid, tail2);
  DionysusScheduler sched;
  const auto order = sched.order(dag, {shallow, mid, deep});
  EXPECT_EQ(order[0], deep);   // longest remaining path
  EXPECT_EQ(order[1], mid);
  EXPECT_EQ(order[2], shallow);
}

std::map<SwitchId, core::OpCostEstimate> hw_costs() {
  core::OpCostEstimate c;
  c.add_ascending_ms = 1.0;
  c.add_descending_ms = 20.0;
  c.add_same_priority_ms = 0.5;
  c.add_random_ms = 10.0;
  c.mod_ms = 3.0;
  c.del_ms = 2.0;
  return {{1, c}, {2, c}, {3, c}};
}

TEST(TangoSchedulerTest, GroupsByTypeAndSortsAddsAscending) {
  RequestDag dag;
  const auto add_hi = dag.add(req(1, RequestType::kAdd, 0, 900));
  const auto del = dag.add(req(1, RequestType::kDel, 1));
  const auto add_lo = dag.add(req(1, RequestType::kAdd, 2, 100));
  const auto mod = dag.add(req(1, RequestType::kMod, 3));
  BasicTangoScheduler sched(hw_costs());
  const auto order = sched.order(dag, {add_hi, del, add_lo, mod});
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(dag.request(order[0]).type, RequestType::kDel);
  EXPECT_EQ(dag.request(order[1]).type, RequestType::kMod);
  EXPECT_EQ(order[2], add_lo);  // ascending priority within adds
  EXPECT_EQ(order[3], add_hi);
  (void)del;
  (void)mod;
}

TEST(TangoSchedulerTest, PatternScoreUsesMeasuredCosts) {
  RequestDag dag;
  std::vector<std::size_t> ready;
  ready.push_back(dag.add(req(1, RequestType::kDel, 0)));
  ready.push_back(dag.add(req(1, RequestType::kMod, 1)));
  ready.push_back(dag.add(req(1, RequestType::kAdd, 2)));
  ready.push_back(dag.add(req(1, RequestType::kAdd, 3)));
  BasicTangoScheduler sched(hw_costs());
  const auto& patterns = sched.patterns();
  // Ascending-add patterns must outscore the descending variant.
  double asc_score = -1e300, desc_score = -1e300;
  for (const auto& p : patterns) {
    const double s = sched.pattern_score(dag, ready, p);
    if (p.name == "DEL MOD ASCEND_ADD") asc_score = s;
    if (p.name == "DEL MOD DESCEND_ADD") desc_score = s;
  }
  EXPECT_GT(asc_score, desc_score);
  // Score formula: -(del + mod + 2*add_asc) on one switch.
  EXPECT_DOUBLE_EQ(asc_score, -(2.0 + 3.0 + 2 * 1.0));
}

TEST(TangoSchedulerTest, ScoreIsPerSwitchParallelMax) {
  RequestDag dag;
  std::vector<std::size_t> ready;
  // 2 adds on switch 1, 2 adds on switch 2: cost is max, not sum.
  ready.push_back(dag.add(req(1, RequestType::kAdd, 0)));
  ready.push_back(dag.add(req(1, RequestType::kAdd, 1)));
  ready.push_back(dag.add(req(2, RequestType::kAdd, 2)));
  ready.push_back(dag.add(req(2, RequestType::kAdd, 3)));
  BasicTangoScheduler sched(hw_costs());
  const auto& p = sched.patterns()[0];
  EXPECT_DOUBLE_EQ(sched.pattern_score(dag, ready, p), -2.0);
}

TEST(TangoSchedulerTest, UnprofiledSwitchFallsBackToStaticWeights) {
  RequestDag dag;
  std::vector<std::size_t> ready{dag.add(req(99, RequestType::kAdd, 0))};
  BasicTangoScheduler sched({});
  const auto& p = sched.patterns()[0];
  EXPECT_DOUBLE_EQ(sched.pattern_score(dag, ready, p), -20.0);
}

TEST(TangoSchedulerTest, EnforcePrioritiesByDagLevel) {
  RequestDag dag;
  const auto a = dag.add(req(1, RequestType::kAdd, 0, std::nullopt));
  const auto b = dag.add(req(2, RequestType::kAdd, 1, std::nullopt));
  const auto c = dag.add(req(3, RequestType::kAdd, 2, std::nullopt));
  const auto keep = dag.add(req(1, RequestType::kAdd, 3, 7777));
  dag.add_dependency(a, b);
  dag.add_dependency(b, c);
  const auto assigned = BasicTangoScheduler::enforce_priorities(dag, 1000, 10);
  EXPECT_EQ(assigned, 3u);
  EXPECT_EQ(dag.request(a).priority, 1000);
  EXPECT_EQ(dag.request(b).priority, 1010);
  EXPECT_EQ(dag.request(c).priority, 1020);
  EXPECT_EQ(dag.request(keep).priority, 7777);  // untouched
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

TEST(ExecutorTest, RespectsDependencies) {
  net::Network net;
  auto profile = profiles::switch1();
  profile.costs.jitter_frac = 0;
  const auto s1 = net.add_switch(profile);
  const auto s2 = net.add_switch(profile);

  RequestDag dag;
  const auto first = dag.add(req(s1, RequestType::kAdd, 0));
  const auto second = dag.add(req(s2, RequestType::kAdd, 1));
  const auto third = dag.add(req(s1, RequestType::kAdd, 2));
  dag.add_dependency(first, second);
  dag.add_dependency(second, third);

  DionysusScheduler sched;
  const auto report = execute(net, dag, sched);
  EXPECT_EQ(report.issued, 3u);
  EXPECT_EQ(report.rejected, 0u);
  EXPECT_GE(report.scheduling_rounds, 3u);
  // All three rules installed.
  EXPECT_EQ(net.sw(s1).total_rules(), 3u);  // 2 + default route
  EXPECT_EQ(net.sw(s2).total_rules(), 2u);
  (void)third;
}

TEST(ExecutorTest, MakespanCoversChain) {
  net::Network net;
  auto profile = profiles::switch1();
  profile.costs.jitter_frac = 0;
  const auto s1 = net.add_switch(profile);

  RequestDag dag;
  std::size_t prev = dag.add(req(s1, RequestType::kMod, 0));
  for (int i = 1; i < 5; ++i) {
    const auto next = dag.add(req(s1, RequestType::kMod, 0));
    dag.add_dependency(prev, next);
    prev = next;
  }
  DionysusScheduler sched;
  const auto report = execute(net, dag, sched);
  // First mod acts as ADD (no match yet, ~0.7ms), then 4 chained mods at
  // ~3ms each, plus channel latency per round.
  EXPECT_GT(report.makespan.ms(), 4 * 3.0);
}

TEST(ExecutorTest, CountsRejections) {
  net::Network net;
  auto profile = profiles::switch2();
  profile.cache_levels[0].capacity_slots = 4;  // 2 entries
  profile.install_default_route = false;
  const auto s1 = net.add_switch(profile);

  RequestDag dag;
  for (std::uint32_t i = 0; i < 5; ++i) dag.add(req(s1, RequestType::kAdd, i));
  DionysusScheduler sched;
  const auto report = execute(net, dag, sched);
  EXPECT_EQ(report.rejected, 3u);
}

TEST(ExecutorTest, DeadlineMissesAreReported) {
  net::Network net;
  auto profile = profiles::switch3();  // slow adds (10ms)
  const auto s1 = net.add_switch(profile);

  RequestDag dag;
  for (std::uint32_t i = 0; i < 10; ++i) {
    auto r = req(s1, RequestType::kAdd, i);
    r.deadline = millis(1);  // hopeless deadline
    dag.add(r);
  }
  DionysusScheduler sched;
  const auto report = execute(net, dag, sched);
  EXPECT_GT(report.deadline_misses, 0u);
}

TEST(ExecutorTest, TangoBeatsDionysusOnPrioritySensitiveSwitch) {
  // 200 adds with scattered priorities on a single hardware switch:
  // Dionysus issues in DAG order (= scattered), Tango sorts ascending.
  Rng rng(5);
  auto build_dag = [&](SwitchId sw) {
    RequestDag dag;
    for (std::uint32_t i = 0; i < 200; ++i) {
      dag.add(req(sw, RequestType::kAdd, i,
                  static_cast<std::uint16_t>(rng.uniform_int(1000, 9000))));
    }
    return dag;
  };

  net::Network net_a;
  const auto sa = net_a.add_switch(profiles::switch1());
  DionysusScheduler dionysus;
  const auto dag_a = build_dag(sa);
  const auto base = execute(net_a, dag_a, dionysus);

  net::Network net_b;
  const auto sb = net_b.add_switch(profiles::switch1());
  core::TangoController tango(net_b);
  // Learn real costs by probing, then schedule with them.
  core::LearnOptions options;
  options.size.max_rules = 128;  // keep probing light; costs are the point
  options.infer_policy = false;
  const auto& know = tango.learn(sb, options);
  core::ProbeEngine(net_b, sb).clear_rules();

  BasicTangoScheduler sched({{sb, know.costs}});
  const auto dag_b = build_dag(sb);
  const auto opt = execute(net_b, dag_b, sched);

  EXPECT_LT(opt.makespan.ms(), base.makespan.ms() * 0.6)
      << "tango " << opt.makespan.ms() << "ms vs dionysus "
      << base.makespan.ms() << "ms";
}

TEST(ExecutorTest, SpeculativeDependentsFinishNoLaterThanStrict) {
  auto build = [](net::Network& net, SwitchId slow, SwitchId fast,
                  RequestDag& dag) {
    // Chain: fast-switch add -> slow-switch add, repeated; speculation can
    // overlap the fast predecessor with the slow successor's queue wait.
    for (std::uint32_t i = 0; i < 40; ++i) {
      const auto a = dag.add(req(fast, RequestType::kAdd, i));
      const auto b = dag.add(req(slow, RequestType::kAdd, 100 + i));
      dag.add_dependency(a, b);
    }
  };

  net::Network n1;
  const auto slow1 = n1.add_switch(profiles::switch3());
  const auto fast1 = n1.add_switch(profiles::ovs());
  RequestDag d1;
  build(n1, slow1, fast1, d1);
  DionysusScheduler sched1;
  const auto strict = execute(n1, d1, sched1);

  net::Network n2;
  const auto slow2 = n2.add_switch(profiles::switch3());
  const auto fast2 = n2.add_switch(profiles::ovs());
  RequestDag d2;
  build(n2, slow2, fast2, d2);
  DionysusScheduler sched2;
  ExecutorOptions options;
  options.speculative_dependents = true;
  const auto spec = execute(n2, d2, sched2, options);

  EXPECT_LE(spec.makespan.ns(), strict.makespan.ns());
  EXPECT_EQ(spec.issued, 80u);
}

TEST(TangoSchedulerTest, AdaptsWhenDescendingIsMeasuredCheaper) {
  // On priority-caching switches, low-priority (descending) adds bypass
  // the TCAM and are measured cheaper; the oracle must then pick the
  // DESCEND_ADD pattern and sort adds high-to-low.
  core::OpCostEstimate inverted;
  inverted.add_ascending_ms = 8.0;
  inverted.add_descending_ms = 0.5;
  inverted.mod_ms = 3.0;
  inverted.del_ms = 2.0;
  BasicTangoScheduler sched({{1, inverted}});
  RequestDag dag;
  std::vector<std::size_t> ready;
  const auto lo = dag.add(req(1, RequestType::kAdd, 0, 100));
  const auto hi = dag.add(req(1, RequestType::kAdd, 1, 900));
  ready = {lo, hi};
  const auto order = sched.order(dag, ready);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], hi);  // descending priority
  EXPECT_EQ(order[1], lo);
}

TEST(TangoSchedulerTest, PrefixLookaheadCanTruncateBatch) {
  // A large expensive batch whose first quarter unlocks a cheap follow-up
  // batch: the lookahead should issue only the prefix and let the executor
  // re-invoke order() when it completes.
  RequestDag dag;
  std::vector<std::size_t> ready;
  for (std::uint32_t i = 0; i < 16; ++i) {
    ready.push_back(dag.add(req(1, RequestType::kAdd, i)));
  }
  // Successors of the first four requests (cheap mods elsewhere).
  for (std::uint32_t i = 0; i < 4; ++i) {
    const auto succ = dag.add(req(2, RequestType::kMod, 100 + i));
    dag.add_dependency(ready[i], succ);
  }
  TangoSchedulerOptions options;
  options.prefix_lookahead = true;
  BasicTangoScheduler sched(hw_costs(), options);
  const auto order = sched.order(dag, ready);
  // Either the full batch or a strict prefix; never something larger, and
  // always a subset of the ready set.
  EXPECT_LE(order.size(), ready.size());
  for (std::size_t id : order) {
    EXPECT_NE(std::find(ready.begin(), ready.end(), id), ready.end());
  }
}

TEST(TangoSchedulerTest, PrefixLookaheadStillCompletesEverything) {
  net::Network net;
  const auto s1 = net.add_switch(profiles::switch1());
  const auto s2 = net.add_switch(profiles::ovs());
  RequestDag dag;
  Rng rng(9);
  std::vector<std::size_t> heads;
  for (std::uint32_t i = 0; i < 60; ++i) {
    heads.push_back(dag.add(req(s1, RequestType::kAdd, i,
                                static_cast<std::uint16_t>(rng.uniform_int(1000, 9000)))));
  }
  for (std::uint32_t i = 0; i < 20; ++i) {
    const auto succ = dag.add(req(s2, RequestType::kAdd, 100 + i));
    dag.add_dependency(heads[i], succ);
  }
  TangoSchedulerOptions options;
  options.prefix_lookahead = true;
  BasicTangoScheduler sched({}, options);
  const auto report = execute(net, dag, sched);
  EXPECT_EQ(report.issued, 80u);
  EXPECT_EQ(report.rejected, 0u);
}

TEST(ToFlowModTest, MapsFieldsAndDefaults) {
  auto r = req(1, RequestType::kDel, 5, std::nullopt);
  const auto fm = to_flow_mod(r, 1234);
  EXPECT_EQ(fm.command, of::FlowModCommand::kDelete);
  EXPECT_EQ(fm.priority, 1234);
  EXPECT_EQ(fm.match, ProbeEngine::probe_match(5));
}

// ---------------------------------------------------------------------------
// Executor queueing delay (controller-side wait behind the dispatch window)
// ---------------------------------------------------------------------------

TEST(QueueingDelayTest, WideDagBehindNarrowWindowAccruesDelay) {
  // Twelve dependency-free ADDs against one switch with a 2-command window:
  // ten of them become ready at t=0 but must wait for window slots, so the
  // report's queueing-delay tallies must be strictly positive and coherent.
  net::Network net;
  auto profile = profiles::switch1();
  profile.costs.jitter_frac = 0;
  profile.paths.jitter_frac = 0;
  const auto s1 = net.add_switch(profile);

  RequestDag dag;
  for (std::uint32_t i = 0; i < 12; ++i) dag.add(req(s1, RequestType::kAdd, i));

  ExecutorOptions opts;
  opts.per_switch_window = 2;
  DionysusScheduler scheduler;
  const auto report = execute(net, dag, scheduler, opts);
  EXPECT_EQ(report.issued, 12u);
  EXPECT_EQ(report.failed_requests, 0u);
  EXPECT_GT(report.total_queueing_delay.ns(), 0);
  EXPECT_GT(report.max_queueing_delay.ns(), 0);
  EXPECT_LE(report.max_queueing_delay.ns(), report.total_queueing_delay.ns());
  // No single request can have waited longer than the whole run took.
  EXPECT_LT(report.max_queueing_delay.ns(), report.makespan.ns());
}

TEST(QueueingDelayTest, PureChainNeverQueues) {
  // A dependency chain has at most one ready request at a time: each issues
  // the moment it unlocks, so queueing delay must be exactly zero (the
  // window never binds).
  net::Network net;
  auto profile = profiles::switch1();
  profile.costs.jitter_frac = 0;
  profile.paths.jitter_frac = 0;
  const auto s1 = net.add_switch(profile);

  RequestDag dag;
  std::size_t prev = 0;
  for (std::uint32_t i = 0; i < 8; ++i) {
    const auto id = dag.add(req(s1, RequestType::kAdd, i));
    if (i > 0) dag.add_dependency(prev, id);
    prev = id;
  }

  ExecutorOptions opts;
  opts.per_switch_window = 2;
  DionysusScheduler scheduler;
  const auto report = execute(net, dag, scheduler, opts);
  EXPECT_EQ(report.issued, 8u);
  EXPECT_EQ(report.failed_requests, 0u);
  EXPECT_EQ(report.total_queueing_delay.ns(), 0);
  EXPECT_EQ(report.max_queueing_delay.ns(), 0);
}

}  // namespace
}  // namespace tango::sched
