// End-to-end tests of the cache-policy inference (paper Algorithm 2): the
// engine must recover FIFO, LRU, LFU, priority-based, and composite
// lexicographic policies from probing alone.
#include <gtest/gtest.h>

#include "net/network.h"
#include "switchsim/profiles.h"
#include "tango/policy_inference.h"

namespace tango::core {
namespace {

namespace profiles = switchsim::profiles;
using tables::Attribute;
using tables::Direction;
using tables::LexCachePolicy;
using tables::PolicyKey;

PolicyInferenceResult run_inference(const LexCachePolicy& truth,
                                    std::size_t cache_size = 100) {
  net::Network net;
  const auto id =
      net.add_switch(profiles::policy_cache("policy-test", {cache_size}, truth));
  ProbeEngine probe(net, id);
  PolicyInferenceConfig config;
  config.cache_size = cache_size;
  return infer_policy(probe, config);
}

TEST(PolicyInference, RecoversFifo) {
  const auto result = run_inference(LexCachePolicy::fifo());
  ASSERT_FALSE(result.policy.keys().empty());
  EXPECT_EQ(result.policy.keys()[0].attr, Attribute::kInsertionTime);
  EXPECT_EQ(result.policy.keys()[0].dir, Direction::kPreferHigh);
  EXPECT_EQ(result.rounds, 1u);  // serial attribute: single round
  EXPECT_GT(result.correlations[0], 0.8);
}

TEST(PolicyInference, RecoversLru) {
  const auto result = run_inference(LexCachePolicy::lru());
  ASSERT_FALSE(result.policy.keys().empty());
  EXPECT_EQ(result.policy.keys()[0].attr, Attribute::kUseTime);
  EXPECT_EQ(result.policy.keys()[0].dir, Direction::kPreferHigh);
  EXPECT_EQ(result.rounds, 1u);
}

TEST(PolicyInference, RecoversLfuPrimary) {
  const auto result = run_inference(LexCachePolicy::lfu());
  ASSERT_FALSE(result.policy.keys().empty());
  EXPECT_EQ(result.policy.keys()[0].attr, Attribute::kTrafficCount);
  EXPECT_EQ(result.policy.keys()[0].dir, Direction::kPreferHigh);
  // Traffic is non-serial: the engine recurses at least once more.
  EXPECT_GT(result.rounds, 1u);
}

TEST(PolicyInference, RecoversPriorityPrimary) {
  const auto result = run_inference(LexCachePolicy::priority_based());
  ASSERT_FALSE(result.policy.keys().empty());
  EXPECT_EQ(result.policy.keys()[0].attr, Attribute::kPriority);
  EXPECT_EQ(result.policy.keys()[0].dir, Direction::kPreferHigh);
}

TEST(PolicyInference, RecoversInvertedDirection) {
  // A pathological "evict newest" policy: low insertion time stays.
  const auto truth = LexCachePolicy::lex(
      {{Attribute::kInsertionTime, Direction::kPreferLow}});
  const auto result = run_inference(truth);
  ASSERT_FALSE(result.policy.keys().empty());
  EXPECT_EQ(result.policy.keys()[0].attr, Attribute::kInsertionTime);
  EXPECT_EQ(result.policy.keys()[0].dir, Direction::kPreferLow);
}

TEST(PolicyInference, RecoversCompositePriorityThenUse) {
  // Priority first; ties broken by recency. With unique priority ranks in
  // round 1 the primary dominates; holding priority constant in round 2
  // exposes the use-time tie-break.
  const auto truth =
      LexCachePolicy::lex({{Attribute::kPriority, Direction::kPreferHigh},
                           {Attribute::kUseTime, Direction::kPreferHigh}});
  const auto result = run_inference(truth);
  ASSERT_GE(result.policy.keys().size(), 2u);
  EXPECT_EQ(result.policy.keys()[0].attr, Attribute::kPriority);
  EXPECT_EQ(result.policy.keys()[1].attr, Attribute::kUseTime);
  EXPECT_EQ(result.policy.keys()[1].dir, Direction::kPreferHigh);
}

TEST(PolicyInference, TrafficPrimaryLimitsDeeperObservability) {
  // Keys *below* a traffic-count primary are at the edge of what the
  // probing pattern can observe: once traffic is held (equalized), each
  // measurement probe increments the probed flow's count, perturbing the
  // very attribute that decides eviction. The engine must still nail the
  // primary key, and must not report a strong-but-wrong deeper key: any
  // additional keys must carry the near-perfect correlation (>= 0.6) that
  // genuine sort keys exhibit.
  const auto truth =
      LexCachePolicy::lex({{Attribute::kTrafficCount, Direction::kPreferHigh},
                           {Attribute::kPriority, Direction::kPreferHigh},
                           {Attribute::kInsertionTime, Direction::kPreferHigh}});
  const auto result = run_inference(truth, 80);
  ASSERT_GE(result.policy.keys().size(), 1u);
  EXPECT_EQ(result.policy.keys()[0].attr, Attribute::kTrafficCount);
  for (double r : result.correlations) EXPECT_GE(r, 0.6);
}

TEST(PolicyInference, AttributeInitRanksAreOrthogonalPermutations) {
  Rng rng(3);
  const auto init = make_attribute_init(200, rng);
  auto is_perm = [](const std::vector<std::size_t>& v) {
    std::vector<bool> seen(v.size(), false);
    for (auto x : v) {
      if (x >= v.size() || seen[x]) return false;
      seen[x] = true;
    }
    return true;
  };
  EXPECT_TRUE(is_perm(init.insertion_rank));
  EXPECT_TRUE(is_perm(init.use_rank));
  EXPECT_TRUE(is_perm(init.traffic_rank));
  EXPECT_TRUE(is_perm(init.priority_rank));
  // "No subset of flows for which the top-half condition holds for more
  // than one attribute": check pairwise rank correlation is weak.
  auto corr = [](const std::vector<std::size_t>& a,
                 const std::vector<std::size_t>& b) {
    const double n = static_cast<double>(a.size());
    double ma = 0, mb = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ma += static_cast<double>(a[i]);
      mb += static_cast<double>(b[i]);
    }
    ma /= n;
    mb /= n;
    double sab = 0, saa = 0, sbb = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const double da = static_cast<double>(a[i]) - ma;
      const double db = static_cast<double>(b[i]) - mb;
      sab += da * db;
      saa += da * da;
      sbb += db * db;
    }
    return sab / std::sqrt(saa * sbb);
  };
  EXPECT_LT(std::abs(corr(init.insertion_rank, init.use_rank)), 0.25);
  EXPECT_LT(std::abs(corr(init.traffic_rank, init.priority_rank)), 0.25);
  EXPECT_LT(std::abs(corr(init.insertion_rank, init.priority_rank)), 0.25);
}

TEST(PolicyInference, MultiLevelCacheInferredAtCombinedBoundary) {
  // Two bounded tiers (60 + 60) over software, LRU-managed: with
  // cached_clusters = 2 the engine infers the policy governing membership
  // of the combined fast tiers vs software.
  net::Network net;
  const auto id = net.add_switch(
      profiles::policy_cache("ml", {60, 60}, LexCachePolicy::lru()));
  ProbeEngine probe(net, id);
  PolicyInferenceConfig config;
  config.cache_size = 120;  // combined capacity of both fast tiers
  config.cached_clusters = 2;
  const auto result = infer_policy(probe, config);
  ASSERT_FALSE(result.policy.keys().empty());
  EXPECT_EQ(result.policy.keys()[0].attr, Attribute::kUseTime);
  EXPECT_EQ(result.policy.keys()[0].dir, Direction::kPreferHigh);
  EXPECT_GT(result.correlations[0], 0.8);
}

TEST(PolicyInference, UnboundedSwitchYieldsEmptyPolicy) {
  // OVS has no finite cache to infer a policy for: one latency band after
  // warming, so no membership signal.
  net::Network net;
  const auto id = net.add_switch(profiles::ovs());
  ProbeEngine probe(net, id);
  PolicyInferenceConfig config;
  config.cache_size = 50;
  const auto result = infer_policy(probe, config);
  EXPECT_TRUE(result.policy.keys().empty());
}

// Sweep: every classic policy must be identified by its primary attribute.
struct PolicyCase {
  const char* name;
  LexCachePolicy truth;
  Attribute expected_primary;
  Direction expected_dir;
};

class PolicyRecovery : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(PolicyRecovery, PrimaryAttributeAndDirection) {
  const auto& param = GetParam();
  const auto result = run_inference(param.truth, 120);
  ASSERT_FALSE(result.policy.keys().empty()) << param.name;
  EXPECT_EQ(result.policy.keys()[0].attr, param.expected_primary) << param.name;
  EXPECT_EQ(result.policy.keys()[0].dir, param.expected_dir) << param.name;
}

INSTANTIATE_TEST_SUITE_P(
    ClassicPolicies, PolicyRecovery,
    ::testing::Values(
        PolicyCase{"fifo", LexCachePolicy::fifo(), Attribute::kInsertionTime,
                   Direction::kPreferHigh},
        PolicyCase{"lru", LexCachePolicy::lru(), Attribute::kUseTime,
                   Direction::kPreferHigh},
        PolicyCase{"lfu", LexCachePolicy::lfu(), Attribute::kTrafficCount,
                   Direction::kPreferHigh},
        PolicyCase{"priority", LexCachePolicy::priority_based(),
                   Attribute::kPriority, Direction::kPreferHigh}),
    [](const ::testing::TestParamInfo<PolicyCase>& info) {
      return std::string(info.param.name);
    });

TEST(PolicyInference, MruEvictIsObservationallyInsertionOrder) {
  // Known observability limit of the probing pattern: under an
  // evict-most-recently-used policy, touching a flow moves it *toward*
  // eviction, so membership never changes after installation — the cache
  // permanently holds the first-installed half. The probe therefore
  // (correctly, behaviourally) reports "oldest insertions stay", even
  // though the mechanism consults use time. Both answers describe the
  // observable state; we assert the inference lands on one of them with
  // the PreferLow direction.
  const auto truth =
      LexCachePolicy::lex({{Attribute::kUseTime, Direction::kPreferLow}});
  const auto result = run_inference(truth);
  ASSERT_FALSE(result.policy.keys().empty());
  const auto& key = result.policy.keys()[0];
  EXPECT_TRUE(key.attr == Attribute::kUseTime ||
              key.attr == Attribute::kInsertionTime)
      << attribute_name(key.attr);
  EXPECT_EQ(key.dir, Direction::kPreferLow);
}

}  // namespace
}  // namespace tango::core
