// Tests for request-trace record/replay: structural round-trips, error
// handling, and replaying a recorded scenario under both schedulers.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "net/network.h"
#include "scheduler/executor.h"
#include "scheduler/schedulers.h"
#include "switchsim/profiles.h"
#include "workload/scenarios.h"
#include "workload/trace.h"

namespace tango::workload {
namespace {

namespace profiles = switchsim::profiles;

sched::RequestDag sample_dag() {
  Rng rng(5);
  const TestbedIds tb{1, 2, 3};
  auto dag = traffic_engineering_scenario(tb, 60, 2, 1, 1, rng);
  // One deadline and one enforcement-style empty priority for coverage.
  dag.request(0).deadline = millis(12.5);
  dag.request(1).priority.reset();
  return dag;
}

void expect_same_structure(const sched::RequestDag& a, const sched::RequestDag& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& ra = a.request(i);
    const auto& rb = b.request(i);
    EXPECT_EQ(ra.location, rb.location) << i;
    EXPECT_EQ(ra.type, rb.type) << i;
    EXPECT_EQ(ra.priority, rb.priority) << i;
    EXPECT_EQ(ra.match, rb.match) << i;
    EXPECT_EQ(ra.deadline.has_value(), rb.deadline.has_value()) << i;
    if (ra.deadline && rb.deadline) {
      EXPECT_NEAR(ra.deadline->ms(), rb.deadline->ms(), 1e-6) << i;
    }
    EXPECT_EQ(of::output_port(ra.actions), of::output_port(rb.actions)) << i;
    EXPECT_EQ(a.successors(i), b.successors(i)) << i;
  }
}

TEST(TraceIo, RoundTripsScenario) {
  const auto dag = sample_dag();
  std::stringstream stream;
  write_trace(stream, dag);
  auto loaded = read_trace(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  expect_same_structure(dag, loaded.value());
}

TEST(TraceIo, RejectsMalformedInput) {
  {
    std::stringstream s("req 0 1 ADD - - 00 2\n");  // missing header
    EXPECT_FALSE(read_trace(s).ok());
  }
  {
    std::stringstream s("# tango-trace v1\nreq 1 1 ADD - - 00 2\n");
    EXPECT_FALSE(read_trace(s).ok());  // non-dense ids
  }
  {
    std::stringstream s("# tango-trace v1\nreq 0 1 FROB - - 00 2\n");
    EXPECT_FALSE(read_trace(s).ok());  // bad type
  }
  {
    std::stringstream s("# tango-trace v1\nbogus 1 2\n");
    EXPECT_FALSE(read_trace(s).ok());
  }
  {
    std::stringstream s("# tango-trace v1\ndep 0 1\n");
    EXPECT_FALSE(read_trace(s).ok());  // dep before requests exist
  }
  {
    // Valid structure but a cycle.
    const auto dag = sample_dag();
    std::stringstream out;
    write_trace(out, dag);
    out << "dep 1 0\ndep 0 1\n";
    std::istringstream in(out.str());
    EXPECT_FALSE(read_trace(in).ok());
  }
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = "/tmp/tango_trace_test.txt";
  const auto dag = sample_dag();
  ASSERT_TRUE(save_trace_file(path, dag));
  auto loaded = load_trace_file(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  expect_same_structure(dag, loaded.value());
  std::remove(path.c_str());
  EXPECT_FALSE(load_trace_file(path).ok());
}

TEST(TraceIo, ReplayedTraceSchedulesIdentically) {
  // Recording a scenario and replaying it must give the same makespan as
  // the original (same requests, same dependencies, same scheduler).
  const auto dag = sample_dag();
  std::stringstream stream;
  write_trace(stream, dag);
  auto loaded = read_trace(stream);
  ASSERT_TRUE(loaded.ok());

  auto run = [](const sched::RequestDag& d) {
    net::Network net;
    auto profile = profiles::switch1();
    profile.costs.jitter_frac = 0;  // determinism for exact comparison
    net.add_switch(profile, 42);
    net.add_switch(profile, 43);
    net.add_switch(profile, 44);
    sched::BasicTangoScheduler sched({});
    return sched::execute(net, d, sched).makespan;
  };
  EXPECT_EQ(run(dag).ns(), run(loaded.value()).ns());
}

}  // namespace
}  // namespace tango::workload
