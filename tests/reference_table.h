// Reference (oracle) flow tables for the differential property suite.
//
// These are the pre-index linear-scan implementations, kept verbatim in
// test-land: every operation walks the entry vector exactly the way
// tables::Tcam / tables::SoftwareTable / tables::MicroflowCache did before
// they grew tuple-space, strict, and heap indexes. The production tables
// must agree with these on every observable output — lookup winners, strict
// finds, removal sets and their order, shift counts, occupancy, eviction
// victims, FIFO casualties — for arbitrary operation sequences; see
// tests/test_table_diff.cpp.
#pragma once

#include <algorithm>
#include <cstddef>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "tables/cache_policy.h"
#include "tables/flow_entry.h"
#include "tables/tcam.h"

namespace tango::tables::testing {

/// Linear-scan TCAM with the seed's exact shift accounting and tie-breaks.
class ReferenceTcam {
 public:
  explicit ReferenceTcam(TcamConfig config) : config_(config) {}

  [[nodiscard]] std::optional<std::size_t> slots_for(const of::Match& match) const {
    const of::MatchLayer layer = match.layer();
    switch (config_.mode) {
      case TcamMode::kSingleWide:
        if (layer == of::MatchLayer::kL2AndL3) return std::nullopt;
        return 1;
      case TcamMode::kDoubleWide:
        return 2;
      case TcamMode::kAdaptive:
        return layer == of::MatchLayer::kL2AndL3 ? 2 : 1;
    }
    return std::nullopt;
  }

  [[nodiscard]] bool can_fit(const of::Match& match) const {
    const auto slots = slots_for(match);
    return slots.has_value() && slots_used_ + *slots <= config_.capacity_slots;
  }

  TcamInsertOutcome insert(FlowEntry entry) {
    TcamInsertOutcome out;
    const auto slots = slots_for(entry.match);
    if (!slots) {
      out.reject_reason = "entry shape unsupported";
      return out;
    }
    if (slots_used_ + *slots > config_.capacity_slots) {
      out.reject_reason = "TCAM full";
      return out;
    }
    const auto pos = std::upper_bound(
        entries_.begin(), entries_.end(), entry.priority,
        [](std::uint16_t p, const FlowEntry& e) { return p < e.priority; });
    out.shifts = static_cast<std::size_t>(entries_.end() - pos);
    entries_.insert(pos, std::move(entry));
    slots_used_ += *slots;
    out.accepted = true;
    return out;
  }

  TcamEraseOutcome erase(FlowId id) {
    TcamEraseOutcome out;
    const auto it = std::find_if(entries_.begin(), entries_.end(),
                                 [&](const FlowEntry& e) { return e.id == id; });
    if (it == entries_.end()) return out;
    slots_used_ -= slots_for(it->match).value_or(0);
    out.shifts = static_cast<std::size_t>(entries_.end() - it) - 1;
    entries_.erase(it);
    out.removed = 1;
    return out;
  }

  std::optional<FlowEntry> take(FlowId id, std::size_t* shifts = nullptr) {
    for (const auto& e : entries_) {
      if (e.id == id) {
        FlowEntry copy = e;
        const auto out = erase(id);
        if (shifts != nullptr) *shifts += out.shifts;
        return copy;
      }
    }
    return std::nullopt;
  }

  std::vector<FlowEntry> erase_matching(const of::Match& filter,
                                        std::size_t* shifts_out = nullptr) {
    std::vector<FlowEntry> removed;
    std::size_t shifts = 0;
    for (std::size_t i = entries_.size(); i-- > 0;) {
      if (filter.subsumes(entries_[i].match)) {
        slots_used_ -= slots_for(entries_[i].match).value_or(0);
        shifts += entries_.size() - i - 1;
        removed.push_back(std::move(entries_[i]));
        entries_.erase(entries_.begin() + static_cast<long>(i));
      }
    }
    if (shifts_out != nullptr) *shifts_out = shifts;
    return removed;
  }

  std::vector<FlowEntry> take_expired(SimTime now) {
    std::vector<FlowEntry> expired;
    for (std::size_t i = entries_.size(); i-- > 0;) {
      if (entries_[i].expired(now)) {
        expired.push_back(std::move(entries_[i]));
        entries_.erase(entries_.begin() + static_cast<long>(i));
        slots_used_ -= slots_for(expired.back().match).value_or(0);
      }
    }
    return expired;
  }

  FlowEntry* lookup(const of::PacketHeader& pkt) {
    for (std::size_t i = entries_.size(); i-- > 0;) {
      if (entries_[i].match.matches(pkt)) return &entries_[i];
    }
    return nullptr;
  }

  FlowEntry* find_strict(const of::Match& match, std::uint16_t priority) {
    for (auto& e : entries_) {
      if (e.priority == priority && e.match == match) return &e;
    }
    return nullptr;
  }

  std::size_t modify_matching(const of::Match& filter, const of::ActionList& actions) {
    std::size_t updated = 0;
    for (auto& e : entries_) {
      if (filter.subsumes(e.match)) {
        e.actions = actions;
        ++updated;
      }
    }
    return updated;
  }

  bool replace(FlowId id, FlowEntry entry) {
    for (auto& e : entries_) {
      if (e.id == id) {
        e = std::move(entry);
        return true;
      }
    }
    return false;
  }

  /// Victim via the O(n) policy scan over live entries.
  std::optional<FlowId> victim_id(const LexCachePolicy& policy) const {
    if (entries_.empty()) return std::nullopt;
    std::vector<const FlowEntry*> ptrs;
    ptrs.reserve(entries_.size());
    for (const auto& e : entries_) ptrs.push_back(&e);
    return ptrs[policy.victim_index({ptrs.data(), ptrs.size()})]->id;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t slots_used() const { return slots_used_; }
  [[nodiscard]] const std::vector<FlowEntry>& entries() const { return entries_; }
  /// Direct entry access so differential tests can mirror attribute
  /// mutations (record_hit) that the production table applies in place.
  std::vector<FlowEntry>& mutable_entries() { return entries_; }
  void clear() {
    entries_.clear();
    slots_used_ = 0;
  }

 private:
  TcamConfig config_;
  std::vector<FlowEntry> entries_;
  std::size_t slots_used_ = 0;
};

/// Linear-scan software table with the seed's tie-breaks.
class ReferenceSoftwareTable {
 public:
  explicit ReferenceSoftwareTable(std::size_t capacity = 0) : capacity_(capacity) {}

  bool insert(FlowEntry entry) {
    if (capacity_ != 0 && entries_.size() >= capacity_) return false;
    entries_.push_back(std::move(entry));
    return true;
  }

  std::optional<FlowEntry> erase(FlowId id) {
    const auto it = std::find_if(entries_.begin(), entries_.end(),
                                 [&](const FlowEntry& e) { return e.id == id; });
    if (it == entries_.end()) return std::nullopt;
    FlowEntry out = std::move(*it);
    entries_.erase(it);
    return out;
  }

  std::vector<FlowEntry> erase_matching(const of::Match& filter) {
    std::vector<FlowEntry> removed;
    for (std::size_t i = entries_.size(); i-- > 0;) {
      if (filter.subsumes(entries_[i].match)) {
        removed.push_back(std::move(entries_[i]));
        entries_.erase(entries_.begin() + static_cast<long>(i));
      }
    }
    return removed;
  }

  std::vector<FlowEntry> take_expired(SimTime now) {
    std::vector<FlowEntry> expired;
    for (std::size_t i = entries_.size(); i-- > 0;) {
      if (entries_[i].expired(now)) {
        expired.push_back(std::move(entries_[i]));
        entries_.erase(entries_.begin() + static_cast<long>(i));
      }
    }
    return expired;
  }

  std::optional<FlowEntry> pop_oldest() {
    if (entries_.empty()) return std::nullopt;
    auto oldest = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->attrs.insert_time < oldest->attrs.insert_time) oldest = it;
    }
    FlowEntry out = std::move(*oldest);
    entries_.erase(oldest);
    return out;
  }

  FlowEntry* lookup(const of::PacketHeader& pkt) {
    FlowEntry* best = nullptr;
    for (auto& e : entries_) {
      if (!e.match.matches(pkt)) continue;
      if (best == nullptr || e.priority > best->priority) best = &e;
    }
    return best;
  }

  FlowEntry* find_strict(const of::Match& match, std::uint16_t priority) {
    for (auto& e : entries_) {
      if (e.priority == priority && e.match == match) return &e;
    }
    return nullptr;
  }

  std::size_t modify_matching(const of::Match& filter, const of::ActionList& actions) {
    std::size_t updated = 0;
    for (auto& e : entries_) {
      if (filter.subsumes(e.match)) {
        e.actions = actions;
        ++updated;
      }
    }
    return updated;
  }

  bool replace(FlowId id, FlowEntry entry) {
    for (auto& e : entries_) {
      if (e.id == id) {
        e = std::move(entry);
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::vector<FlowEntry>& entries() const { return entries_; }
  void clear() { entries_.clear(); }

 private:
  std::size_t capacity_;
  std::vector<FlowEntry> entries_;
};

/// Eagerly-maintained FIFO microflow cache (the seed implementation).
class ReferenceMicroflowCache {
 public:
  explicit ReferenceMicroflowCache(std::size_t capacity) : capacity_(capacity) {}

  void insert(const of::PacketHeader& key, FlowId source_rule,
              const of::ActionList& actions, SimTime now) {
    if (map_.find(key) == map_.end()) {
      while (capacity_ != 0 && map_.size() >= capacity_ && !fifo_.empty()) {
        map_.erase(fifo_.front());
        fifo_.pop_front();
      }
      fifo_.push_back(key);
    }
    map_[key] = Entry{source_rule, actions, now};
  }

  struct Hit {
    FlowId source_rule;
    const of::ActionList* actions;
  };
  std::optional<Hit> lookup(const of::PacketHeader& key, SimTime now) {
    const auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    it->second.last_use = now;
    return Hit{it->second.source_rule, &it->second.actions};
  }

  void invalidate_rule(FlowId source_rule) {
    for (auto it = map_.begin(); it != map_.end();) {
      if (it->second.source_rule == source_rule) {
        it = map_.erase(it);
      } else {
        ++it;
      }
    }
    std::erase_if(fifo_, [this](const of::PacketHeader& k) {
      return map_.find(k) == map_.end();
    });
  }

  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] bool contains(const of::PacketHeader& key) const {
    return map_.find(key) != map_.end();
  }
  void clear() {
    map_.clear();
    fifo_.clear();
  }

 private:
  struct Entry {
    FlowId source_rule;
    of::ActionList actions;
    SimTime last_use;
  };
  std::size_t capacity_;
  std::unordered_map<of::PacketHeader, Entry, of::PacketHeaderHash> map_;
  std::deque<of::PacketHeader> fifo_;
};

}  // namespace tango::tables::testing
