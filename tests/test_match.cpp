// Unit and property tests for the OpenFlow match semantics: wildcards,
// prefix matching, overlap/subsumption, and layer classification — plus
// the footprint shapes the intent service's ConflictGraph feeds through
// overlaps()/subsumes() (classbench prefix-masked 5-tuples, tenant prefix
// partitions, wildcard/mask corners).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "openflow/match.h"
#include "workload/classbench.h"

namespace tango::of {
namespace {

PacketHeader packet(std::uint32_t src, std::uint32_t dst, std::uint8_t proto = 6,
                    std::uint16_t dport = 80) {
  PacketHeader h;
  h.nw_src = src;
  h.nw_dst = dst;
  h.nw_proto = proto;
  h.tp_dst = dport;
  return h;
}

TEST(Match, AnyMatchesEverything) {
  const Match m = Match::any();
  EXPECT_TRUE(m.is_wildcard_all());
  EXPECT_TRUE(m.matches(packet(1, 2)));
  EXPECT_TRUE(m.matches(PacketHeader{}));
  EXPECT_EQ(m.layer(), MatchLayer::kNone);
}

TEST(Match, ExactFromMatchesOnlyThatPacket) {
  const auto p = packet(0x0a000001, 0x0a000002, 17, 53);
  const Match m = Match::exact_from(p);
  EXPECT_TRUE(m.matches(p));
  auto q = p;
  q.tp_dst = 54;
  EXPECT_FALSE(m.matches(q));
  q = p;
  q.nw_src ^= 1;
  EXPECT_FALSE(m.matches(q));
}

TEST(Match, PrefixMatching) {
  Match m;
  m.set_nw_src_prefix(0x0a000000, 8);  // 10/8
  EXPECT_EQ(m.nw_src_prefix_len(), 8);
  EXPECT_TRUE(m.matches(packet(0x0a123456, 0)));
  EXPECT_FALSE(m.matches(packet(0x0b000000, 0)));
}

TEST(Match, PrefixLenZeroIsWildcard) {
  Match m;
  m.set_nw_src_prefix(0x0a000000, 0);
  EXPECT_EQ(m.nw_src_prefix_len(), 0);
  EXPECT_TRUE(m.matches(packet(0xffffffff, 0)));
}

TEST(Match, PrefixTruncatesHostBits) {
  Match m;
  m.set_nw_dst_prefix(0x0a0000ff, 24);
  EXPECT_EQ(m.nw_dst, 0x0a000000u);
}

TEST(Match, ExactFieldSetters) {
  Match m;
  m.with_in_port(3).with_dl_type(0x0800).with_nw_proto(6).with_tp_dst(443);
  auto p = packet(1, 2, 6, 443);
  p.in_port = 3;
  EXPECT_TRUE(m.matches(p));
  p.in_port = 4;
  EXPECT_FALSE(m.matches(p));
}

TEST(Match, MacMatching) {
  const MacAddr mac{1, 2, 3, 4, 5, 6};
  Match m;
  m.with_dl_src(mac);
  PacketHeader p;
  p.dl_src = mac;
  EXPECT_TRUE(m.matches(p));
  p.dl_src[5] = 7;
  EXPECT_FALSE(m.matches(p));
}

TEST(Match, OverlapNestedPrefixes) {
  Match a, b;
  a.set_nw_src_prefix(0x0a000000, 8);
  b.set_nw_src_prefix(0x0a010000, 16);
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_TRUE(a.subsumes(b));
  EXPECT_FALSE(b.subsumes(a));
}

TEST(Match, DisjointPrefixesDoNotOverlap) {
  Match a, b;
  a.set_nw_src_prefix(0x0a000000, 16);
  b.set_nw_src_prefix(0x0a010000, 16);
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_FALSE(a.subsumes(b));
}

TEST(Match, PartialOverlapNeitherSubsumes) {
  Match a, b;
  a.set_nw_src_prefix(0x0a000000, 8);   // src 10/8, dst any
  b.set_nw_dst_prefix(0x0b000000, 8);   // src any, dst 11/8
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.subsumes(b));
  EXPECT_FALSE(b.subsumes(a));
}

TEST(Match, ExactFieldsBlockOverlap) {
  Match a, b;
  a.with_tp_dst(80);
  b.with_tp_dst(443);
  EXPECT_FALSE(a.overlaps(b));
}

TEST(Match, AnySubsumesAll) {
  const Match any = Match::any();
  Match specific;
  specific.with_tp_dst(80).with_nw_proto(6);
  specific.set_nw_src_prefix(0x0a000000, 24);
  EXPECT_TRUE(any.subsumes(specific));
  EXPECT_FALSE(specific.subsumes(any));
  EXPECT_TRUE(any.subsumes(any));
}

TEST(Match, LayerClassification) {
  Match l2;
  l2.with_dl_src({1, 2, 3, 4, 5, 6});
  EXPECT_EQ(l2.layer(), MatchLayer::kL2Only);

  Match l3;
  l3.set_nw_src_prefix(0x0a000000, 32);
  EXPECT_EQ(l3.layer(), MatchLayer::kL3Only);

  Match both = l2;
  both.set_nw_dst_prefix(0x0a000000, 24);
  EXPECT_EQ(both.layer(), MatchLayer::kL2AndL3);

  // dl_type alone is neither an L2 nor L3 constraint for width purposes.
  Match typed;
  typed.with_dl_type(0x0800);
  EXPECT_EQ(typed.layer(), MatchLayer::kNone);
}

TEST(Match, ToStringListsConstrainedFields) {
  Match m;
  m.with_tp_dst(80);
  m.set_nw_src_prefix(0x0a000001, 32);
  const auto s = m.to_string();
  EXPECT_NE(s.find("tp_dst=80"), std::string::npos);
  EXPECT_NE(s.find("10.0.0.1/32"), std::string::npos);
}

TEST(FormatHelpers, Ipv4AndMac) {
  EXPECT_EQ(format_ipv4(0x0a000001), "10.0.0.1");
  EXPECT_EQ(format_ipv4(0xffffffff), "255.255.255.255");
  EXPECT_EQ(format_mac({0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}), "de:ad:be:ef:00:01");
}

TEST(PacketHeaderHashTest, EqualHeadersEqualHashes) {
  const auto p = packet(1, 2);
  const auto q = packet(1, 2);
  EXPECT_EQ(PacketHeaderHash{}(p), PacketHeaderHash{}(q));
  const auto r = packet(1, 3);
  EXPECT_NE(PacketHeaderHash{}(p), PacketHeaderHash{}(r));
}

// ---------------------------------------------------------------------------
// Property sweep: random match pairs must satisfy the logical relationships
// between matches(), overlaps(), and subsumes().
// ---------------------------------------------------------------------------

Match random_match(Rng& rng) {
  Match m;
  if (rng.chance(0.6)) {
    m.set_nw_src_prefix(static_cast<std::uint32_t>(rng.uniform_int(0, 0xffff)) << 16,
                        static_cast<int>(rng.uniform_int(0, 32)));
  }
  if (rng.chance(0.6)) {
    m.set_nw_dst_prefix(static_cast<std::uint32_t>(rng.uniform_int(0, 0xffff)) << 16,
                        static_cast<int>(rng.uniform_int(0, 32)));
  }
  if (rng.chance(0.3)) m.with_nw_proto(rng.chance(0.5) ? 6 : 17);
  if (rng.chance(0.3)) m.with_tp_dst(static_cast<std::uint16_t>(rng.uniform_int(1, 4)));
  if (rng.chance(0.2)) m.with_in_port(static_cast<std::uint16_t>(rng.uniform_int(1, 3)));
  return m;
}

PacketHeader random_packet(Rng& rng) {
  PacketHeader p;
  p.nw_src = static_cast<std::uint32_t>(rng.uniform_int(0, 0xffff)) << 16;
  p.nw_dst = static_cast<std::uint32_t>(rng.uniform_int(0, 0xffff)) << 16;
  p.nw_proto = rng.chance(0.5) ? 6 : 17;
  p.tp_dst = static_cast<std::uint16_t>(rng.uniform_int(1, 4));
  p.in_port = static_cast<std::uint16_t>(rng.uniform_int(1, 3));
  return p;
}

class MatchProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatchProperties, SubsumptionImpliesContainment) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 300; ++iter) {
    const Match a = random_match(rng);
    const Match b = random_match(rng);
    // Reflexivity.
    EXPECT_TRUE(a.subsumes(a));
    EXPECT_TRUE(a.overlaps(a));
    // Symmetry of overlap.
    EXPECT_EQ(a.overlaps(b), b.overlaps(a));
    // Subsumption implies overlap.
    if (a.subsumes(b)) EXPECT_TRUE(a.overlaps(b));
    for (int pi = 0; pi < 20; ++pi) {
      const auto p = random_packet(rng);
      // Containment: b matches p and a subsumes b => a matches p.
      if (a.subsumes(b) && b.matches(p)) EXPECT_TRUE(a.matches(p));
      // Witness: a packet matching both is an overlap witness.
      if (a.matches(p) && b.matches(p)) EXPECT_TRUE(a.overlaps(b));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchProperties,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Footprint shapes (what the ConflictGraph feeds through overlaps/subsumes)
// ---------------------------------------------------------------------------

// The intent service admits two intents concurrently iff no pair of their
// matches on a shared switch overlaps. Its safety argument leans on two
// algebraic facts checked here over realistic rule shapes:
//   (1) subsumption implies overlap (a rule a tenant could sweep or shadow
//       is never invisible to the conflict relation), and
//   (2) overlap is symmetric and reflexive (admission order cannot change
//       the verdict).
TEST(MatchFootprint, ClassbenchOverlapSubsumeConsistency) {
  workload::ClassbenchProfile profile;
  profile.name = "footprint";
  profile.n_rules = 120;
  profile.seed = 42;
  const auto rules = workload::generate_classbench(profile);
  ASSERT_EQ(rules.size(), 120u);

  std::size_t overlapping_pairs = 0;
  std::size_t subsuming_pairs = 0;
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const Match& a = rules[i].match;
    EXPECT_TRUE(a.overlaps(a));
    EXPECT_TRUE(a.subsumes(a));
    for (std::size_t j = i + 1; j < rules.size(); ++j) {
      const Match& b = rules[j].match;
      EXPECT_EQ(a.overlaps(b), b.overlaps(a));
      if (a.subsumes(b)) {
        ++subsuming_pairs;
        EXPECT_TRUE(a.overlaps(b));
      }
      if (b.subsumes(a)) {
        EXPECT_TRUE(b.overlaps(a));
      }
      if (a.overlaps(b)) ++overlapping_pairs;
    }
  }
  // The nested-prefix-chain generator must actually produce both relations,
  // or this test exercises nothing.
  EXPECT_GT(subsuming_pairs, 0u);
  EXPECT_GT(overlapping_pairs, subsuming_pairs);
}

// The service's multi-tenant carve-up: each tenant owns a /16, rules are
// /32s inside it. Cross-tenant footprints must never conflict; a tenant's
// own /16 aggregate covers (subsumes) all of its /32s.
TEST(MatchFootprint, TenantPrefixPartition) {
  const auto tenant32 = [](std::uint32_t t, std::uint32_t i) {
    Match m;
    m.with_dl_type(0x0800);
    m.set_nw_dst_prefix((10u << 24) | ((t + 1) << 16) | i, 32);
    return m;
  };
  const auto tenant16 = [](std::uint32_t t) {
    Match m;
    m.with_dl_type(0x0800);
    m.set_nw_dst_prefix((10u << 24) | ((t + 1) << 16), 16);
    return m;
  };
  for (std::uint32_t t = 0; t < 4; ++t) {
    for (std::uint32_t u = 0; u < 4; ++u) {
      for (std::uint32_t i = 0; i < 8; ++i) {
        EXPECT_EQ(tenant32(t, i).overlaps(tenant32(u, i + 100)), false);
        EXPECT_EQ(tenant16(t).overlaps(tenant32(u, i)), t == u);
        EXPECT_EQ(tenant16(t).subsumes(tenant32(u, i)), t == u);
      }
      EXPECT_EQ(tenant16(t).overlaps(tenant16(u)), t == u);
    }
  }
}

TEST(MatchFootprint, WildcardAndMaskCorners) {
  const Match any = Match::any();
  Match dst32;
  dst32.with_dl_type(0x0800);
  dst32.set_nw_dst_prefix(0x0a010203, 32);

  // The universal wildcard overlaps and subsumes everything.
  EXPECT_TRUE(any.overlaps(dst32));
  EXPECT_TRUE(any.subsumes(dst32));
  EXPECT_FALSE(dst32.subsumes(any));

  // A /0 prefix is the same as not constraining the field at all.
  Match zero_len;
  zero_len.set_nw_dst_prefix(0xdeadbeef, 0);
  EXPECT_TRUE(zero_len.overlaps(dst32));
  EXPECT_TRUE(zero_len.subsumes(dst32));

  // A /31 covers exactly its two /32s and nothing else.
  Match p31;
  p31.set_nw_dst_prefix(0x0a010202, 31);
  Match in0, in1, out;
  in0.set_nw_dst_prefix(0x0a010202, 32);
  in1.set_nw_dst_prefix(0x0a010203, 32);
  out.set_nw_dst_prefix(0x0a010204, 32);
  EXPECT_TRUE(p31.subsumes(in0));
  EXPECT_TRUE(p31.subsumes(in1));
  EXPECT_TRUE(p31.overlaps(in1));
  EXPECT_FALSE(p31.overlaps(out));

  // A disagreeing exact field (dl_type) kills overlap even when the
  // prefixes coincide.
  Match v6 = dst32;
  v6.with_dl_type(0x86dd);
  EXPECT_FALSE(v6.overlaps(dst32));

  // Orthogonal constraints (dst prefix vs transport port) overlap: packets
  // satisfying both exist.
  Match port_only;
  port_only.with_tp_dst(443);
  EXPECT_TRUE(port_only.overlaps(dst32));
  EXPECT_FALSE(port_only.subsumes(dst32));
  EXPECT_FALSE(dst32.subsumes(port_only));

  // Same-field prefixes at different lengths: the shorter subsumes the
  // longer iff the longer sits inside it.
  Match p8, p24_in, p24_out;
  p8.set_nw_dst_prefix(0x0a000000, 8);
  p24_in.set_nw_dst_prefix(0x0a010200, 24);
  p24_out.set_nw_dst_prefix(0x0b010200, 24);
  EXPECT_TRUE(p8.subsumes(p24_in));
  EXPECT_TRUE(p8.overlaps(p24_in));
  EXPECT_FALSE(p8.overlaps(p24_out));
  EXPECT_FALSE(p24_in.subsumes(p8));
}

}  // namespace
}  // namespace tango::of
