// Tests for the workload generators: ClassBench-style ACLs, the rule
// dependency DAG and priority assignments (Table 2's quantities), the
// network-wide scenarios, and the max-min fair TE allocator.
#include <gtest/gtest.h>

#include <set>

#include "net/b4.h"
#include "workload/classbench.h"
#include "workload/dependency.h"
#include "workload/maxmin.h"
#include "workload/scenarios.h"

namespace tango::workload {
namespace {

// ---------------------------------------------------------------------------
// ClassBench generator
// ---------------------------------------------------------------------------

TEST(Classbench, ProfilesMatchTable2RuleCounts) {
  EXPECT_EQ(generate_classbench(cb1()).size(), 829u);
  EXPECT_EQ(generate_classbench(cb2()).size(), 989u);
  EXPECT_EQ(generate_classbench(cb3()).size(), 972u);
}

TEST(Classbench, RulesAreUniqueAndIndexed) {
  const auto rules = generate_classbench(cb1());
  std::set<std::string> seen;
  for (std::size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(rules[i].original_index, i);
    EXPECT_TRUE(seen.insert(rules[i].match.to_string()).second)
        << "duplicate " << rules[i].match.to_string();
  }
}

TEST(Classbench, DeterministicForSameSeed) {
  const auto a = generate_classbench(cb2());
  const auto b = generate_classbench(cb2());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].match, b[i].match);
}

TEST(Classbench, HasOverlapStructure) {
  const auto rules = generate_classbench(cb1());
  const auto dag = RuleDag::build(rules);
  EXPECT_GT(dag.edge_count(), rules.size());  // dense enough to matter
  // Dependency chains tens of rules deep, like the paper's filter sets.
  EXPECT_GE(dag.depth(), 10u);
  EXPECT_LE(dag.depth(), 120u);
}

// ---------------------------------------------------------------------------
// Dependency DAG + priority assignment
// ---------------------------------------------------------------------------

std::vector<AclRule> tiny_chain() {
  // r0 ⊃ r1 ⊃ r2, r3 disjoint.
  std::vector<AclRule> rules(4);
  rules[0].match.set_nw_src_prefix(0x0a000000, 8);
  rules[1].match.set_nw_src_prefix(0x0a010000, 16);
  rules[2].match.set_nw_src_prefix(0x0a010100, 24);
  rules[3].match.set_nw_src_prefix(0x0b000000, 8);
  for (std::size_t i = 0; i < 4; ++i) rules[i].original_index = i;
  return rules;
}

TEST(RuleDagTest, BuildsOverlapEdges) {
  const auto dag = RuleDag::build(tiny_chain());
  EXPECT_EQ(dag.edge_count(), 3u);  // 0-1, 0-2, 1-2
  EXPECT_EQ(dag.depth(), 3u);
  const auto layers = dag.layers();
  EXPECT_EQ(layers[0], 2u);
  EXPECT_EQ(layers[1], 1u);
  EXPECT_EQ(layers[2], 0u);
  EXPECT_EQ(layers[3], 0u);
}

TEST(RuleDagTest, TopologicalPrioritiesMinimizeDistinctValues) {
  const auto dag = RuleDag::build(tiny_chain());
  const auto topo = dag.topological_priorities();
  EXPECT_EQ(RuleDag::distinct_count(topo), 3u);  // == depth
  // Earlier (more specific) rules carry higher priority.
  EXPECT_GT(topo[0], topo[1]);
  EXPECT_GT(topo[1], topo[2]);
}

TEST(RuleDagTest, RPrioritiesAreOneToOne) {
  const auto rules = tiny_chain();
  const auto dag = RuleDag::build(rules);
  const auto r = dag.r_priorities();
  EXPECT_EQ(RuleDag::distinct_count(r), rules.size());
}

TEST(RuleDagTest, BothAssignmentsSatisfyAllConstraints) {
  const auto rules = generate_classbench(cb3());
  const auto dag = RuleDag::build(rules);
  const auto topo = dag.topological_priorities();
  const auto r = dag.r_priorities();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    for (std::size_t j : dag.successors(i)) {
      EXPECT_GT(topo[i], topo[j]) << i << "->" << j;
      EXPECT_GT(r[i], r[j]) << i << "->" << j;
    }
  }
}

TEST(RuleDagTest, Table2PriorityCountsInPaperRange) {
  // The paper's files show 33-64 topological levels for ~1k rules; our
  // synthetic profiles should land in the same regime.
  for (const auto& profile : {cb1(), cb2(), cb3()}) {
    const auto dag = RuleDag::build(generate_classbench(profile));
    const auto topo_levels = RuleDag::distinct_count(dag.topological_priorities());
    EXPECT_GE(topo_levels, 15u) << profile.name;
    EXPECT_LE(topo_levels, 90u) << profile.name;
  }
}

// ---------------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------------

TEST(Scenarios, LinkFailureShape) {
  Rng rng(1);
  const TestbedIds tb{1, 2, 3};
  const auto dag = link_failure_scenario(tb, 400, rng);
  EXPECT_EQ(dag.size(), 800u);
  EXPECT_TRUE(dag.is_acyclic());
  EXPECT_EQ(dag.depth(), 2u);
  std::size_t adds_s3 = 0, mods_s1 = 0;
  for (std::size_t i = 0; i < dag.size(); ++i) {
    const auto& r = dag.request(i);
    if (r.type == sched::RequestType::kAdd) {
      EXPECT_EQ(r.location, tb.s3);
      ++adds_s3;
    } else {
      EXPECT_EQ(r.type, sched::RequestType::kMod);
      EXPECT_EQ(r.location, tb.s1);
      ++mods_s1;
    }
  }
  EXPECT_EQ(adds_s3, 400u);
  EXPECT_EQ(mods_s1, 400u);
}

TEST(Scenarios, TrafficEngineeringMixRoughlyMatchesWeights) {
  Rng rng(2);
  const TestbedIds tb{1, 2, 3};
  const auto dag = traffic_engineering_scenario(tb, 800, 2, 1, 1, rng);
  EXPECT_EQ(dag.size(), 800u);
  EXPECT_TRUE(dag.is_acyclic());
  std::size_t adds = 0, dels = 0, mods = 0;
  for (std::size_t i = 0; i < dag.size(); ++i) {
    switch (dag.request(i).type) {
      case sched::RequestType::kAdd: ++adds; break;
      case sched::RequestType::kDel: ++dels; break;
      case sched::RequestType::kMod: ++mods; break;
    }
  }
  EXPECT_NEAR(static_cast<double>(adds), 400.0, 80.0);
  EXPECT_NEAR(static_cast<double>(dels), 200.0, 60.0);
  EXPECT_NEAR(static_cast<double>(mods), 200.0, 60.0);
}

TEST(Scenarios, MixedDagSpecControlsShape) {
  Rng rng(3);
  const TestbedIds tb{1, 2, 3};
  MixedScenarioSpec spec;
  spec.n_requests = 240;
  spec.dag_levels = 2;
  spec.adds_only = true;
  spec.with_priorities = false;
  const auto dag = mixed_dag_scenario(tb, spec, rng);
  EXPECT_EQ(dag.size(), 240u);
  EXPECT_EQ(dag.depth(), 2u);
  for (std::size_t i = 0; i < dag.size(); ++i) {
    EXPECT_EQ(dag.request(i).type, sched::RequestType::kAdd);
    EXPECT_FALSE(dag.request(i).priority.has_value());
  }
}

TEST(Scenarios, FlowIndicesAreDisjointFromBase) {
  Rng rng(4);
  const TestbedIds tb{1, 2, 3};
  const auto dag = link_failure_scenario(tb, 10, rng, /*first_index=*/1000);
  for (std::size_t i = 0; i < dag.size(); ++i) {
    // Matches derive from indices >= 1000: 10.0.x.y with x*256+y >= 1000.
    EXPECT_GE(dag.request(i).match.nw_src, 0x0a000000u + 1000u);
  }
}

// ---------------------------------------------------------------------------
// Max-min fair allocation
// ---------------------------------------------------------------------------

net::Topology line3() {
  net::Topology t;
  t.add_node("a");
  t.add_node("b");
  t.add_node("c");
  t.add_link(0, 1, micros(10), /*capacity=*/10.0);
  t.add_link(1, 2, micros(10), /*capacity=*/10.0);
  return t;
}

TEST(MaxMin, EqualShareOnSharedLink) {
  const auto topo = line3();
  std::vector<Demand> demands;
  for (std::uint32_t i = 0; i < 4; ++i) {
    demands.push_back(Demand{0, 2, 100.0, i});  // all want more than fits
  }
  const auto alloc = maxmin_allocate(topo, demands);
  for (const auto& a : alloc) {
    EXPECT_NEAR(a.rate_gbps, 2.5, 1e-9);  // 10G / 4 demands
    ASSERT_EQ(a.path.size(), 3u);
  }
}

TEST(MaxMin, SatisfiedDemandsFreezeEarly) {
  const auto topo = line3();
  std::vector<Demand> demands{
      Demand{0, 2, 1.0, 0},    // small ask
      Demand{0, 2, 100.0, 1},  // greedy
  };
  const auto alloc = maxmin_allocate(topo, demands);
  EXPECT_NEAR(alloc[0].rate_gbps, 1.0, 1e-9);
  EXPECT_NEAR(alloc[1].rate_gbps, 9.0, 1e-9);
}

TEST(MaxMin, CapacitiesNeverExceeded) {
  const auto topo = net::b4_topology();
  Rng rng(7);
  const auto demands = random_demands(topo, 300, rng);
  const auto alloc = maxmin_allocate(topo, demands);
  std::vector<double> used(topo.link_count(), 0.0);
  for (const auto& a : alloc) {
    for (std::size_t i = 0; i + 1 < a.path.size(); ++i) {
      const auto li = topo.link_between(a.path[i], a.path[i + 1]);
      ASSERT_TRUE(li.has_value());
      used[*li] += a.rate_gbps;
    }
  }
  for (std::size_t li = 0; li < topo.link_count(); ++li) {
    EXPECT_LE(used[li], topo.link(li).capacity_gbps + 1e-6);
  }
  // And nobody exceeds their request.
  for (const auto& a : alloc) {
    EXPECT_LE(a.rate_gbps, a.demand.requested_gbps + 1e-9);
  }
}

TEST(TeUpdateDag, DiffProducesExpectedOpTypes) {
  // before: flow 0 on path a-b-c; after: flow 0 rerouted a-c (direct link
  // added), flow 1 is new, flow 2 disappears.
  net::Topology topo = line3();
  std::vector<SwitchId> site_switch{1, 2, 3};

  Allocation before0;
  before0.demand = Demand{0, 2, 1.0, 0};
  before0.path = {0, 1, 2};
  before0.rate_gbps = 1.0;
  Allocation before2;
  before2.demand = Demand{0, 2, 1.0, 2};
  before2.path = {0, 1, 2};
  before2.rate_gbps = 1.0;

  Allocation after0;
  after0.demand = before0.demand;
  after0.path = {0, 2};
  after0.rate_gbps = 1.0;
  Allocation after1;
  after1.demand = Demand{1, 2, 1.0, 1};
  after1.path = {1, 2};
  after1.rate_gbps = 0.5;

  Rng rng(1);
  const auto dag = te_update_dag({before0, before2}, {after0, after1},
                                 site_switch, rng);
  EXPECT_TRUE(dag.is_acyclic());
  std::size_t adds = 0, mods = 0, dels = 0;
  for (std::size_t i = 0; i < dag.size(); ++i) {
    switch (dag.request(i).type) {
      case sched::RequestType::kAdd: ++adds; break;
      case sched::RequestType::kMod: ++mods; break;
      case sched::RequestType::kDel: ++dels; break;
    }
  }
  // Flow 0: nodes {0,2} shared -> 2 MODs, node 1 old-only -> 1 DEL.
  // Flow 1: 2 ADDs. Flow 2: 3 DELs.
  EXPECT_EQ(mods, 2u);
  EXPECT_EQ(adds, 2u);
  EXPECT_EQ(dels, 4u);
}

TEST(TeUpdateDag, UnchangedAllocationsProduceNoRequests) {
  Allocation a;
  a.demand = Demand{0, 2, 1.0, 0};
  a.path = {0, 1, 2};
  a.rate_gbps = 1.0;
  Rng rng(1);
  const auto dag = te_update_dag({a}, {a}, {1, 2, 3}, rng);
  EXPECT_EQ(dag.size(), 0u);
}

TEST(TeUpdateDag, RateOnlyChangeIsAllMods) {
  Allocation before;
  before.demand = Demand{0, 2, 1.0, 0};
  before.path = {0, 1, 2};
  before.rate_gbps = 1.0;
  auto after = before;
  after.rate_gbps = 0.25;
  Rng rng(1);
  const auto dag = te_update_dag({before}, {after}, {1, 2, 3}, rng);
  EXPECT_EQ(dag.size(), 3u);
  for (std::size_t i = 0; i < dag.size(); ++i) {
    EXPECT_EQ(dag.request(i).type, sched::RequestType::kMod);
  }
  // Chained destination-first.
  EXPECT_EQ(dag.depth(), 3u);
}

}  // namespace
}  // namespace tango::workload
