// Unit tests for the deterministic discrete-event queue.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace tango::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(SimTime{300}, [&] { order.push_back(3); });
  q.schedule_at(SimTime{100}, [&] { order.push_back(1); });
  q.schedule_at(SimTime{200}, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now().ns(), 300);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(SimTime{50}, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbackCanScheduleMore) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(SimTime{10}, [&] {
    ++fired;
    q.schedule_after(SimDuration{5}, [&] { ++fired; });
  });
  q.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now().ns(), 15);
}

TEST(EventQueue, PastEventsClampToNow) {
  EventQueue q;
  q.schedule_at(SimTime{100}, [] {});
  q.run();
  bool fired = false;
  q.schedule_at(SimTime{10}, [&] { fired = true; });  // in the past
  q.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(q.now().ns(), 100);  // time never goes backwards
}

TEST(EventQueue, RunUntilLeavesLaterEventsQueued) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(SimTime{10}, [&] { ++fired; });
  q.schedule_at(SimTime{20}, [&] { ++fired; });
  q.schedule_at(SimTime{30}, [&] { ++fired; });
  EXPECT_EQ(q.run_until(SimTime{20}), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.now().ns(), 20);
  q.run();
  EXPECT_EQ(fired, 3);
}

TEST(EventQueue, StepRunsExactlyOne) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(SimTime{1}, [&] { ++fired; });
  q.schedule_at(SimTime{2}, [&] { ++fired; });
  EXPECT_TRUE(q.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ResetClearsEverything) {
  EventQueue q;
  q.schedule_at(SimTime{5}, [] {});
  q.schedule_at(SimTime{500}, [] {});
  q.step();
  q.reset();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.now().ns(), 0);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  SimTime inner{};
  q.schedule_at(SimTime{100}, [&] {
    q.schedule_after(SimDuration{50}, [&] { inner = q.now(); });
  });
  q.run();
  EXPECT_EQ(inner.ns(), 150);
}

}  // namespace
}  // namespace tango::sim
