// Unit tests for the deterministic discrete-event queue, including the
// property suite pinning the (time, insertion-sequence) pop order that
// parallel seed sweeps (src/runner) depend on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "sim/event_queue.h"

namespace tango::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(SimTime{300}, [&] { order.push_back(3); });
  q.schedule_at(SimTime{100}, [&] { order.push_back(1); });
  q.schedule_at(SimTime{200}, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now().ns(), 300);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(SimTime{50}, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbackCanScheduleMore) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(SimTime{10}, [&] {
    ++fired;
    q.schedule_after(SimDuration{5}, [&] { ++fired; });
  });
  q.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now().ns(), 15);
}

TEST(EventQueue, PastEventsClampToNow) {
  EventQueue q;
  q.schedule_at(SimTime{100}, [] {});
  q.run();
  bool fired = false;
  q.schedule_at(SimTime{10}, [&] { fired = true; });  // in the past
  q.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(q.now().ns(), 100);  // time never goes backwards
}

TEST(EventQueue, RunUntilLeavesLaterEventsQueued) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(SimTime{10}, [&] { ++fired; });
  q.schedule_at(SimTime{20}, [&] { ++fired; });
  q.schedule_at(SimTime{30}, [&] { ++fired; });
  EXPECT_EQ(q.run_until(SimTime{20}), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.now().ns(), 20);
  q.run();
  EXPECT_EQ(fired, 3);
}

TEST(EventQueue, StepRunsExactlyOne) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(SimTime{1}, [&] { ++fired; });
  q.schedule_at(SimTime{2}, [&] { ++fired; });
  EXPECT_TRUE(q.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ResetClearsEverything) {
  EventQueue q;
  q.schedule_at(SimTime{5}, [] {});
  q.schedule_at(SimTime{500}, [] {});
  q.step();
  q.reset();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.now().ns(), 0);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  SimTime inner{};
  q.schedule_at(SimTime{100}, [&] {
    q.schedule_after(SimDuration{50}, [&] { inner = q.now(); });
  });
  q.run();
  EXPECT_EQ(inner.ns(), 150);
}

// --- stable-order property suite -------------------------------------------
//
// The documented contract (event_queue.h): events pop ordered by
// (time, insertion sequence), and the tiebreak is insertion order — never
// addresses, hashing, or anything else unstable between runs. Every chaos
// fingerprint and the parallel runner's byte-identity guarantee sit on
// this, so the property is exercised over many random interleavings and
// the exact order is pinned by hash against silent change.

/// One scheduled event as the reference model sees it.
struct Scheduled {
  std::int64_t at = 0;      // effective time (clamped to schedule-time now)
  std::uint64_t seq = 0;    // global insertion sequence
  int id = 0;
};

/// Reference order: stable sort by effective time (stable = insertion
/// sequence breaks ties, since the log is built in insertion order).
std::vector<int> reference_order(std::vector<Scheduled> log) {
  std::stable_sort(log.begin(), log.end(),
                   [](const Scheduled& a, const Scheduled& b) {
                     return a.at < b.at;
                   });
  std::vector<int> ids;
  ids.reserve(log.size());
  for (const auto& s : log) ids.push_back(s.id);
  return ids;
}

TEST(EventQueueProperty, RandomInterleavingsMatchStableReference) {
  // mt19937_64's raw output sequence is pinned by the standard, so this
  // test is deterministic across platforms without hand-written tables.
  std::mt19937_64 rng(0xc0ffee);
  for (int trial = 0; trial < 200; ++trial) {
    EventQueue q;
    std::vector<Scheduled> log;
    std::vector<int> popped;
    std::uint64_t seq = 0;
    int next_id = 0;

    // A burst of root events over a tiny time range (guaranteeing heavy
    // timestamp collisions), each of which may schedule same-time and
    // later children when it runs.
    const int n_roots = 1 + static_cast<int>(rng() % 24);
    for (int i = 0; i < n_roots; ++i) {
      const std::int64_t at = static_cast<std::int64_t>(rng() % 8);
      const int id = next_id++;
      const int children = static_cast<int>(rng() % 3);
      const std::uint64_t child_draw = rng();
      log.push_back({at, seq++, id});
      q.schedule_at(SimTime{at}, [&, at, id, children, child_draw] {
        popped.push_back(id);
        for (int c = 0; c < children; ++c) {
          // Child offsets 0..3 from the parent's time; offset 0 children
          // must still run after everything already queued for this
          // instant that was inserted earlier.
          const std::int64_t off =
              static_cast<std::int64_t>((child_draw >> (8 * c)) % 4);
          const int cid = next_id++;
          log.push_back({at + off, seq++, cid});
          q.schedule_after(SimDuration{off},
                           [&popped, cid] { popped.push_back(cid); });
        }
      });
    }
    q.run();
    ASSERT_EQ(popped.size(), log.size()) << "trial " << trial;
    EXPECT_EQ(popped, reference_order(log)) << "trial " << trial;
  }
}

TEST(EventQueueProperty, PastEventsClampAndKeepInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(SimTime{100}, [&] {
    // Both land "in the past" -> clamped to now=100, after the two events
    // already pending for t=100 that were inserted earlier.
    q.schedule_at(SimTime{10}, [&] { order.push_back(90); });
    q.schedule_at(SimTime{5}, [&] { order.push_back(91); });
  });
  q.schedule_at(SimTime{100}, [&] { order.push_back(1); });
  q.schedule_at(SimTime{100}, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 90, 91}));
}

TEST(EventQueueProperty, RegressionPinnedPopOrder) {
  // Pin the exact pop order of a fixed random schedule as an FNV-1a hash.
  // If this ever changes, the tiebreak changed — which silently breaks
  // bit-identical replay of every recorded chaos repro and lets parallel
  // worker worlds drift from the serial ones. Do not "fix" the constant
  // without understanding what you changed.
  std::mt19937_64 rng(0x7a460);
  EventQueue q;
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto fold = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  for (int i = 0; i < 64; ++i) {
    const std::int64_t at = static_cast<std::int64_t>(rng() % 6);
    q.schedule_at(SimTime{at}, [&fold, &q, i] {
      fold(static_cast<std::uint64_t>(i));
      fold(static_cast<std::uint64_t>(q.now().ns()));
    });
  }
  q.run();
  EXPECT_EQ(h, 0xe7f1bb514cc99561ull);
}

TEST(EventQueuePool, SlotsAreRecycledAcrossChurn) {
  EventQueue q;
  q.reserve(8);
  // Steady-state churn: pending never exceeds 4, so the pool must not
  // grow beyond the peak even across thousands of events.
  int fired = 0;
  for (int wave = 0; wave < 1000; ++wave) {
    for (int i = 0; i < 4; ++i) {
      q.schedule_after(SimDuration{i + 1}, [&] { ++fired; });
    }
    q.run();
  }
  EXPECT_EQ(fired, 4000);
  EXPECT_EQ(q.pending(), 0u);
  // All slots parked on the free list, and no more than the peak + reserve.
  EXPECT_LE(q.free_slots(), 8u);
  EXPECT_GE(q.free_slots(), 4u);
}

TEST(EventQueuePool, ResetDropsPendingAndReusesCleanly) {
  EventQueue q;
  int fired = 0;
  for (int i = 0; i < 16; ++i) {
    q.schedule_at(SimTime{1000 + i}, [&] { ++fired; });
  }
  q.reset();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.free_slots(), 0u);
  q.schedule_at(SimTime{1}, [&] { ++fired; });
  q.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now().ns(), 1);
}

}  // namespace
}  // namespace tango::sim
