// Tests for the application layer: path installation/rerouting, the ACL
// compiler, and end-to-end execution through the schedulers.
#include <gtest/gtest.h>

#include <set>

#include "apps/acl_compiler.h"
#include "apps/path_installer.h"
#include "net/network.h"
#include "scheduler/executor.h"
#include "scheduler/schedulers.h"
#include "switchsim/profiles.h"
#include "tango/probe_engine.h"

namespace tango::apps {
namespace {

namespace profiles = switchsim::profiles;
using core::ProbeEngine;

/// Line network a - b - c - d with a shortcut a - d (slower).
struct LineNet {
  net::Network net;
  std::vector<SwitchId> ids;

  LineNet() {
    for (int i = 0; i < 4; ++i) ids.push_back(net.add_switch(profiles::ovs()));
    auto& topo = net.topology();
    topo.add_link(0, 1, micros(10));
    topo.add_link(1, 2, micros(10));
    topo.add_link(2, 3, micros(10));
    topo.add_link(0, 3, micros(1000));  // backup
  }
};

TEST(PathInstallerTest, CompilesDestinationFirstChain) {
  LineNet ln;
  PathInstaller installer(ln.net);
  sched::RequestDag dag;
  PathRequest req;
  req.src = 0;
  req.dst = 3;
  req.flow_id = 7;
  req.priority = 500;
  const auto ids = installer.compile(req, dag);
  ASSERT_EQ(ids.size(), 3u);  // rules at a, b, c (not at the destination)
  EXPECT_EQ(dag.size(), 3u);
  EXPECT_TRUE(dag.is_acyclic());
  // Destination-side rule is the root; the source-side rule is the leaf.
  EXPECT_EQ(dag.predecessors(ids[2]).size(), 0u);  // hop c
  EXPECT_EQ(dag.predecessors(ids[0]).size(), 1u);  // hop a depends on b
  EXPECT_EQ(dag.request(ids[0]).location, net::Network::switch_of(0));
  EXPECT_EQ(dag.request(ids[0]).type, sched::RequestType::kAdd);
}

TEST(PathInstallerTest, UnroutableYieldsNothing) {
  LineNet ln;
  ln.net.topology().fail_link_between(0, 1);
  ln.net.topology().fail_link_between(0, 3);
  PathInstaller installer(ln.net);
  sched::RequestDag dag;
  PathRequest req;
  req.src = 0;
  req.dst = 3;
  EXPECT_TRUE(installer.compile(req, dag).empty());
  EXPECT_EQ(dag.size(), 0u);
}

TEST(PathInstallerTest, InstallAndForwardEndToEnd) {
  LineNet ln;
  PathInstaller installer(ln.net);
  sched::RequestDag dag;
  PathRequest req;
  req.src = 0;
  req.dst = 3;
  req.flow_id = 9;
  req.priority = 500;
  installer.compile(req, dag);
  sched::DionysusScheduler sched;
  const auto report = sched::execute(ln.net, dag, sched);
  EXPECT_EQ(report.rejected, 0u);
  // Every on-path switch forwards the flow; probe twice (OVS: first packet
  // warms the microflow via the slow path).
  for (const SwitchId id : {ln.ids[0], ln.ids[1], ln.ids[2]}) {
    ln.net.probe(id, ProbeEngine::probe_packet(9));
    const auto out = ln.net.probe(id, ProbeEngine::probe_packet(9));
    EXPECT_EQ(out.outcome.kind, switchsim::ForwardOutcome::Kind::kForwarded) << id;
  }
}

TEST(PathInstallerTest, RerouteDiffsOldAndNewPaths) {
  LineNet ln;
  PathInstaller installer(ln.net);
  const std::vector<net::NodeId> old_path{0, 1, 2, 3};
  ln.net.topology().fail_link_between(1, 2);  // forces a-d backup path
  sched::RequestDag dag;
  PathRequest req;
  req.src = 0;
  req.dst = 3;
  req.flow_id = 4;
  req.priority = 500;
  const auto ids = installer.compile_reroute(req, old_path, dag);
  ASSERT_FALSE(ids.empty());
  std::size_t mods = 0, adds = 0, dels = 0;
  for (std::size_t i = 0; i < dag.size(); ++i) {
    switch (dag.request(i).type) {
      case sched::RequestType::kMod: ++mods; break;
      case sched::RequestType::kAdd: ++adds; break;
      case sched::RequestType::kDel: ++dels; break;
    }
  }
  // New path a-d: a shared with old (MOD); d is destination (no rule);
  // b and c are old-only: b had a rule (DEL), c had a rule (DEL).
  EXPECT_EQ(mods, 1u);
  EXPECT_EQ(adds, 0u);
  EXPECT_EQ(dels, 2u);
  EXPECT_TRUE(dag.is_acyclic());
}

TEST(PathInstallerTest, PortMappingIsStablePerLink) {
  LineNet ln;
  PathInstaller installer(ln.net);
  const auto p1 = installer.port_toward(0, 1);
  EXPECT_EQ(p1, installer.port_toward(0, 1));
  EXPECT_NE(installer.port_toward(9, 9), 0);  // no link: kPortNone
  EXPECT_EQ(installer.port_toward(0, 2), of::kPortNone);
}

// ---------------------------------------------------------------------------
// ACL compiler
// ---------------------------------------------------------------------------

std::vector<workload::AclRule> nested_rules() {
  std::vector<workload::AclRule> rules(3);
  rules[0].match.set_nw_src_prefix(0x0a010100, 24);  // most specific, first
  rules[1].match.set_nw_src_prefix(0x0a010000, 16);
  rules[2].match.set_nw_src_prefix(0x0a000000, 8);
  for (std::size_t i = 0; i < 3; ++i) rules[i].original_index = i;
  return rules;
}

TEST(AclCompilerTest, TopologicalPrioritiesMinimal) {
  AclCompileOptions options;
  options.target = 3;
  const auto compiled = compile_acl(nested_rules(), options);
  EXPECT_EQ(compiled.dag.size(), 3u);
  EXPECT_EQ(compiled.distinct_priorities, 3u);
  // First (most specific) rule gets the highest priority.
  EXPECT_GT(compiled.priorities[0], compiled.priorities[1]);
  EXPECT_GT(compiled.priorities[1], compiled.priorities[2]);
  EXPECT_EQ(compiled.dependency_edges, 0u);  // fast mode: no constraints
  EXPECT_EQ(compiled.dag.request(0).location, 3u);
}

TEST(AclCompilerTest, ConsistentModeAddsBarrierEdges) {
  AclCompileOptions options;
  options.consistent = true;
  const auto compiled = compile_acl(nested_rules(), options);
  EXPECT_EQ(compiled.dependency_edges, 3u);  // all pairs overlap
  EXPECT_TRUE(compiled.dag.is_acyclic());
  EXPECT_EQ(compiled.dag.depth(), 3u);
  // Roots = highest-priority rule only.
  EXPECT_EQ(compiled.dag.roots().size(), 1u);
}

TEST(AclCompilerTest, RPrioritiesAreDistinct) {
  AclCompileOptions options;
  options.topological = false;
  const auto rules = workload::generate_classbench(workload::cb3());
  const auto compiled = compile_acl(rules, options);
  EXPECT_EQ(compiled.distinct_priorities, rules.size());
}

TEST(AclCompilerTest, ConsistentDeploymentCostsMoreThanFast) {
  // The consistency/speed tension: barrier edges force (partially)
  // descending-priority installation on TCAM hardware.
  const auto rules = workload::generate_classbench(workload::cb3());

  auto run = [&](bool consistent) {
    net::Network net;
    const auto id = net.add_switch(profiles::switch1());
    AclCompileOptions options;
    options.target = id;
    options.consistent = consistent;
    auto compiled = compile_acl(rules, options);
    sched::BasicTangoScheduler sched({});
    return sched::execute(net, compiled.dag, sched).makespan;
  };

  const auto fast = run(false);
  const auto consistent = run(true);
  EXPECT_LT(fast.ns(), consistent.ns());
}

TEST(AclCompilerTest, DeployedAclMatchesFirstMatchSemantics) {
  const auto rules = nested_rules();
  net::Network net;
  const auto id = net.add_switch(profiles::switch2());
  AclCompileOptions options;
  options.target = id;
  auto compiled = compile_acl(rules, options);
  sched::DionysusScheduler sched;
  sched::execute(net, compiled.dag, sched);

  // A packet inside 10.1.1/24 must match rule 0 (the most specific).
  of::PacketHeader pkt;
  pkt.nw_src = 0x0a010105;
  const auto stats_before = net.flow_stats_sync(id, rules[0].match);
  const std::uint64_t before =
      stats_before.entries.empty() ? 0 : stats_before.entries[0].packet_count;
  net.probe(id, pkt);
  const auto stats_after = net.flow_stats_sync(id, rules[0].match);
  ASSERT_FALSE(stats_after.entries.empty());
  EXPECT_EQ(stats_after.entries[0].packet_count, before + 1);
}

}  // namespace
}  // namespace tango::apps
