// Tests for the adaptive pieces: deadline-first scheduling and online
// drift detection / re-learning.
#include <gtest/gtest.h>

#include "net/network.h"
#include "scheduler/executor.h"
#include "scheduler/schedulers.h"
#include "switchsim/profiles.h"
#include "tango/probe_engine.h"
#include "tango/tango.h"

namespace tango {
namespace {

namespace profiles = switchsim::profiles;
using core::ProbeEngine;

sched::SwitchRequest make_req(SwitchId where, std::uint32_t index,
                              std::uint16_t priority,
                              std::optional<SimDuration> deadline = std::nullopt) {
  sched::SwitchRequest r;
  r.location = where;
  r.type = sched::RequestType::kAdd;
  r.priority = priority;
  r.match = ProbeEngine::probe_match(index);
  r.actions = of::output_to(2);
  r.deadline = deadline;
  return r;
}

// ---------------------------------------------------------------------------
// Deadline-first scheduling
// ---------------------------------------------------------------------------

TEST(DeadlineScheduling, HoistsDeadlineRequestsEarliestFirst) {
  sched::RequestDag dag;
  std::vector<std::size_t> ready;
  ready.push_back(dag.add(make_req(1, 0, 100)));
  const auto urgent = dag.add(make_req(1, 1, 900, millis(5)));
  const auto less_urgent = dag.add(make_req(1, 2, 200, millis(50)));
  ready.push_back(urgent);
  ready.push_back(less_urgent);

  sched::TangoSchedulerOptions options;
  options.deadline_first = true;
  sched::BasicTangoScheduler sched({}, options);
  const auto order = sched.order(dag, ready);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], urgent);
  EXPECT_EQ(order[1], less_urgent);
}

TEST(DeadlineScheduling, ReducesMissesUnderLoad) {
  auto run = [](bool deadline_first) {
    net::Network net;
    const auto id = net.add_switch(profiles::switch3());  // slow adds
    sched::RequestDag dag;
    Rng rng(3);
    // 100 bulk requests plus 10 urgent ones scattered among them.
    for (std::uint32_t i = 0; i < 100; ++i) {
      dag.add(make_req(id, i, static_cast<std::uint16_t>(rng.uniform_int(1000, 9000))));
    }
    for (std::uint32_t i = 100; i < 110; ++i) {
      // High priority values: the ascending-add pattern would schedule
      // these LAST, so only deadline hoisting can save them.
      dag.add(make_req(id, i, 9500, millis(150)));
    }
    sched::TangoSchedulerOptions options;
    options.deadline_first = deadline_first;
    sched::BasicTangoScheduler sched({}, options);
    return sched::execute(net, dag, sched).deadline_misses;
  };
  const auto misses_pattern_only = run(false);
  const auto misses_deadline_first = run(true);
  EXPECT_LT(misses_deadline_first, misses_pattern_only);
  EXPECT_EQ(misses_deadline_first, 0u);
}

TEST(DeadlineScheduling, NoDeadlinesLeavesPatternOrderAlone) {
  sched::RequestDag dag;
  std::vector<std::size_t> ready;
  ready.push_back(dag.add(make_req(1, 0, 300)));
  ready.push_back(dag.add(make_req(1, 1, 100)));
  sched::TangoSchedulerOptions with, without;
  with.deadline_first = true;
  sched::BasicTangoScheduler a({}, with);
  sched::BasicTangoScheduler b({}, without);
  EXPECT_EQ(a.order(dag, ready), b.order(dag, ready));
}

// ---------------------------------------------------------------------------
// Drift detection
// ---------------------------------------------------------------------------

TEST(DriftDetection, StableSwitchShowsLittleDrift) {
  net::Network net;
  const auto id = net.add_switch(profiles::switch1());
  core::TangoController tango(net);
  core::LearnOptions options;
  options.size.max_rules = 512;
  options.infer_policy = false;
  tango.learn(id, options);
  ProbeEngine(net, id).clear_rules();

  const double drift = tango.spot_check(id);
  EXPECT_GE(drift, 0.0);
  EXPECT_LT(drift, 0.25);
}

TEST(DriftDetection, DetectsFirmwareSlowdown) {
  net::Network net;
  const auto id = net.add_switch(profiles::switch1());
  core::TangoController tango(net);
  core::LearnOptions options;
  options.size.max_rules = 512;
  options.infer_policy = false;
  const double before_ms = tango.learn(id, options).costs.add_ascending_ms;
  ProbeEngine(net, id).clear_rules();

  // "Firmware update": adds get 4x slower.
  auto slowed = profiles::switch1().costs;
  slowed.add_base = slowed.add_base * 4;
  slowed.add_same_priority = slowed.add_same_priority * 4;
  net.sw(id).latency().set_costs(slowed);

  const double drift = tango.spot_check(id);
  EXPECT_GT(drift, 1.0);  // way beyond jitter

  // refresh() re-learns the new reality.
  const double after_ms = tango.refresh(id, options).costs.add_ascending_ms;
  EXPECT_GT(after_ms, before_ms * 2.5);
  EXPECT_LT(tango.spot_check(id), 0.25);
}

// Mid-run hardware change on BOTH axes — op costs slow down 4x AND the
// fast tier loses a third of its slots — refresh() must drop the stale
// record and converge on the new reality in one call. A synthetic
// policy-cache switch keeps the regimes clean: ascending adds append (no
// shift costs), so measured per-op cost is fill-independent, and the
// capacity cliff is a crisp RTT step into the software tier.
TEST(DriftDetection, RefreshDropsStaleRecordAndReconverges) {
  net::Network net;
  const auto id = net.add_switch(profiles::policy_cache(
      "reconfig", {3000}, tables::LexCachePolicy::lru()));
  core::TangoController tango(net);
  core::LearnOptions options;
  // Deep enough to cross both the original cliff at 3000 and the
  // post-change cliff at 2048; the cost profiler's working set (1000
  // preinstalled + 500-rule batches) fits the shrunk tier either way, so
  // cost and size inference stay independent.
  options.size.max_rules = 4000;
  options.infer_policy = false;
  const auto& stale = tango.learn(id, options);
  const double stale_add_ms = stale.costs.add_ascending_ms;
  ASSERT_FALSE(stale.sizes.layer_sizes.empty());
  const double stale_front = stale.sizes.layer_sizes.front();
  EXPECT_GT(stale_front, 2600.0);  // fast tier measured near 3000
  ProbeEngine(net, id).clear_rules();

  // The "hardware change": every rule op 4x slower, fast tier truncated
  // to 2048 slots.
  auto slowed = net.sw(id).latency().costs();
  slowed.add_base = slowed.add_base * 4;
  slowed.add_same_priority = slowed.add_same_priority * 4;
  slowed.add_software = slowed.add_software * 4;
  net.sw(id).latency().set_costs(slowed);
  net.sw(id).shrink_level(0, 2048);

  EXPECT_GT(tango.spot_check(id), 0.25);  // stale knowledge is detectably off

  const auto& fresh = tango.refresh(id, options);
  // The stale record is gone: the refreshed knowledge reflects the slower
  // cost model and the smaller fast tier.
  EXPECT_GT(fresh.costs.add_ascending_ms, stale_add_ms * 2.0);
  ASSERT_FALSE(fresh.sizes.layer_sizes.empty());
  EXPECT_GT(fresh.sizes.layer_sizes.front(), 1500.0);
  EXPECT_LT(fresh.sizes.layer_sizes.front(), stale_front - 300.0);
  EXPECT_LT(tango.spot_check(id), 0.25);  // converged
}

TEST(DriftDetection, UnknownSwitchReportsNegative) {
  net::Network net;
  const auto id = net.add_switch(profiles::ovs());
  core::TangoController tango(net);
  EXPECT_LT(tango.spot_check(id), 0.0);
}

TEST(DriftDetection, SpotCheckCleansUpProbeRules) {
  net::Network net;
  const auto id = net.add_switch(profiles::switch2());
  core::TangoController tango(net);
  core::LearnOptions options;
  options.infer_policy = false;
  tango.learn(id, options);
  ProbeEngine(net, id).clear_rules();
  const auto before = net.sw(id).total_rules();
  tango.spot_check(id);
  EXPECT_EQ(net.sw(id).total_rules(), before);
}

}  // namespace
}  // namespace tango
