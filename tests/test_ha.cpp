// Controller high-availability suite: epoch-fenced cookies and the switch-side
// fence, the adaptive RTT estimator, the replication link + standby shadow,
// and end-to-end failover — crash mid-commit, partitioned zombie, lossy
// replication, double failover, crash after commit — through the HA chaos
// harness with its oracles and bit-identical seeded replay.
//
// Everything runs on the deterministic event queue with jitter-free switch
// profiles; faults are scheduled, never probabilistic.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "chaos/ha_harness.h"
#include "chaos/harness.h"
#include "ha/ha.h"
#include "net/network.h"
#include "net/rtt.h"
#include "openflow/actions.h"
#include "openflow/epoch.h"
#include "scheduler/reconciler.h"
#include "scheduler/schedulers.h"
#include "service/service.h"
#include "switchsim/profiles.h"
#include "tango/tango.h"
#include "telemetry/trace.h"
#include "workload/scenarios.h"

namespace tango {
namespace {

namespace profiles = switchsim::profiles;

ha::HaOptions fast_ha_options() {
  ha::HaOptions opts;
  opts.heartbeat_interval = millis(10);
  opts.missed_heartbeats = 3;
  opts.checkpoint_interval = millis(50);
  opts.replication_delay = micros(150);
  opts.replay_exec.request_timeout = millis(200);
  opts.replay_exec.max_retries = 6;
  opts.replay_exec.backoff_base = millis(5);
  return opts;
}

sched::TransactionOptions robust_txn_options(std::uint32_t txn_id) {
  sched::TransactionOptions topts;
  topts.txn_id = txn_id;
  topts.exec.request_timeout = millis(200);
  topts.exec.max_retries = 6;
  topts.exec.backoff_base = millis(5);
  topts.readback_timeout = millis(200);
  topts.max_readback_retries = 6;
  topts.max_reconcile_rounds = 6;
  return topts;
}

of::Match lane_match(std::uint32_t lane, std::uint32_t i) {
  of::Match m;
  m.with_dl_type(0x0800);
  m.set_nw_dst_prefix((10u << 24) | (lane << 16) | i, 32);
  return m;
}

/// A chain of `n` ADDs on `sw` in address lane `lane`.
sched::RequestDag chain_dag(SwitchId sw, std::uint32_t lane, std::size_t n,
                            std::uint16_t base_priority = 100) {
  sched::RequestDag dag;
  std::size_t prev = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    sched::SwitchRequest req;
    req.location = sw;
    req.type = sched::RequestType::kAdd;
    req.priority = static_cast<std::uint16_t>(base_priority + i);
    req.match = lane_match(lane, i);
    req.actions = of::output_to(2);
    const std::size_t id = dag.add(std::move(req));
    if (i > 0) dag.add_dependency(prev, id);
    prev = id;
  }
  return dag;
}

sched::TableImage final_image(net::Network& net, SwitchId id) {
  return sched::image_of(net.sw(id).flow_stats(of::Match::any()));
}

bool has_rule(const sched::TableImage& image, const of::Match& m,
              std::uint16_t priority) {
  return image.count(sched::rule_key(m, priority)) != 0;
}

bool same_rule_sans_epoch(const sched::RuleImage& a,
                          const sched::RuleImage& b) {
  return a.priority == b.priority && a.actions == b.actions &&
         of::cookie_sans_epoch(a.cookie) == of::cookie_sans_epoch(b.cookie);
}

std::string violations_text(const chaos::HaChaosResult& r) {
  std::string out;
  for (const auto& v : r.violations) {
    out += v.oracle + ": " + v.detail + "\n";
  }
  return out;
}

/// Run one HA chaos spec, assert its oracles held, then replay it and assert
/// the fingerprint is bit-identical.
chaos::HaChaosResult run_checked(const chaos::HaChaosSpec& spec) {
  const auto first = chaos::run_ha_chaos(spec);
  EXPECT_TRUE(first.ok()) << violations_text(first);
  const auto second = chaos::run_ha_chaos(spec);
  EXPECT_EQ(first.fingerprint, second.fingerprint)
      << "seeded replay diverged for scenario "
      << chaos::to_string(spec.scenario);
  return first;
}

// --- epoch-fenced cookies ---------------------------------------------------

TEST(EpochCookie, LegacyLayoutIsBitIdentical) {
  const std::uint32_t txn = 0x1234;
  const std::uint32_t node = 7;
  const auto legacy = (static_cast<std::uint64_t>(txn) << 32) | node;
  EXPECT_EQ(of::fenced_cookie(0, txn, node), legacy);
  EXPECT_EQ(of::epoch_of_cookie(legacy), 0u);
  EXPECT_EQ(of::cookie_sans_epoch(legacy), legacy);
  // Unfenced cookies pass through re-fencing untouched.
  EXPECT_EQ(of::refence_cookie(legacy, 5), legacy);
}

TEST(EpochCookie, FencedLayoutAndRefence) {
  const auto cookie = of::fenced_cookie(3, 0x1234, 42);
  EXPECT_EQ(of::epoch_of_cookie(cookie), 3u);
  EXPECT_EQ((cookie >> 32) & of::kCookieTxnMask, 0x1234u);
  EXPECT_EQ(cookie & 0xffffffffu, 42u);

  const auto refenced = of::refence_cookie(cookie, 4);
  EXPECT_EQ(of::epoch_of_cookie(refenced), 4u);
  EXPECT_EQ(of::cookie_sans_epoch(refenced), of::cookie_sans_epoch(cookie));

  // Txn ids are truncated to 24 bits to make room for the epoch byte.
  const auto wide = of::fenced_cookie(1, 0xff123456, 0);
  EXPECT_EQ((wide >> 32) & of::kCookieTxnMask, 0x123456u);
}

TEST(EpochCookie, VendorPayloadRoundtrip) {
  const auto bytes =
      of::encode_epoch_payload(of::kEpochClaimSubtype, 9, of::kEpochClaimAccepted);
  const auto decoded = of::decode_epoch_payload(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->subtype, of::kEpochClaimSubtype);
  EXPECT_EQ(decoded->epoch, 9u);
  EXPECT_EQ(decoded->flags, of::kEpochClaimAccepted);
  EXPECT_FALSE(of::decode_epoch_payload({1, 2, 3}).has_value());
}

// --- switch-side fence ------------------------------------------------------

TEST(SwitchEpoch, ClaimIsMonotonic) {
  net::Network net;
  const auto s1 = net.add_switch(chaos::quiet_profile(profiles::switch1()));

  auto verdict = net.claim_epoch_sync(s1, 2, millis(50));
  EXPECT_TRUE(verdict.accepted);
  EXPECT_FALSE(verdict.lost);
  EXPECT_EQ(verdict.switch_epoch, 2u);
  EXPECT_EQ(net.sw(s1).controller_epoch(), 2u);

  // A deposed controller's lower claim is refused; the fence stands.
  verdict = net.claim_epoch_sync(s1, 1, millis(50));
  EXPECT_FALSE(verdict.lost);
  EXPECT_FALSE(verdict.accepted);
  EXPECT_EQ(verdict.switch_epoch, 2u);
  EXPECT_EQ(net.sw(s1).controller_epoch(), 2u);

  // Re-claiming the held epoch is idempotent (takeover retries).
  verdict = net.claim_epoch_sync(s1, 2, millis(50));
  EXPECT_TRUE(verdict.accepted);
}

TEST(SwitchEpoch, StaleFencedFlowModRejected) {
  net::Network net;
  const auto s1 = net.add_switch(chaos::quiet_profile(profiles::switch1()));
  core::TangoController ctl(net);
  ctl.adopt(chaos::synthetic_knowledge(net, s1));
  ASSERT_TRUE(net.claim_epoch_sync(s1, 5, millis(50)).accepted);

  // A commit stamped with a stale epoch is refused at the switch.
  sched::DionysusScheduler scheduler;
  auto stale_opts = robust_txn_options(21);
  stale_opts.epoch = 3;
  stale_opts.exec.max_retries = 1;
  stale_opts.max_reconcile_rounds = 1;
  auto stale = ctl.begin_update(chain_dag(s1, 1, 2), stale_opts);
  stale.commit(scheduler);

  EXPECT_GT(net.sw(s1).stale_epoch_rejections(), 0u);
  EXPECT_EQ(net.sw(s1).stale_epoch_applied(), 0u);
  auto image = final_image(net, s1);
  EXPECT_FALSE(has_rule(image, lane_match(1, 0), 100));

  // The same intents under the live epoch go through.
  auto live_opts = robust_txn_options(22);
  live_opts.epoch = 5;
  auto live = ctl.begin_update(chain_dag(s1, 1, 2), live_opts);
  live.commit(scheduler);
  image = final_image(net, s1);
  EXPECT_TRUE(has_rule(image, lane_match(1, 0), 100));
  EXPECT_TRUE(has_rule(image, lane_match(1, 1), 101));
}

TEST(SwitchEpoch, RebootForgetsEpochUntilResync) {
  net::Network net;
  const auto s1 = net.add_switch(chaos::quiet_profile(profiles::switch1()));
  ASSERT_TRUE(net.claim_epoch_sync(s1, 3, millis(50)).accepted);
  net.claim_epoch_sync(s1, 1, millis(50));  // one rejection on the books
  const auto rejections = net.sw(s1).stale_epoch_rejections();

  // Reboot: volatile epoch memory is gone, the reconnecting controller must
  // re-claim before fenced mutations are checked again. The rejection
  // counter is controller-visible accounting and survives.
  net.sw(s1).reset();
  EXPECT_EQ(net.sw(s1).controller_epoch(), 0u);
  EXPECT_EQ(net.sw(s1).stale_epoch_rejections(), rejections);

  const auto verdict = net.claim_epoch_sync(s1, 3, millis(50));
  EXPECT_TRUE(verdict.accepted);
  EXPECT_EQ(net.sw(s1).controller_epoch(), 3u);
}

// --- adaptive RTT estimation ------------------------------------------------

TEST(RttEstimator, WarmupReturnsFallbackVerbatim) {
  net::RttEstimator est;
  EXPECT_EQ(est.timeout_for(1, millis(100)), millis(100));
  est.observe(1, millis(2));
  EXPECT_EQ(est.timeout_for(1, millis(100)), millis(100));  // under warmup
  EXPECT_EQ(est.timeout_for(1, SimDuration{}), SimDuration{});  // disabled
  EXPECT_EQ(est.estimate(2), nullptr);
}

TEST(RttEstimator, ConvergesAndTightensDeadline) {
  net::RttEstimator est;
  for (int i = 0; i < 16; ++i) est.observe(1, millis(2));
  const auto* e = est.estimate(1);
  ASSERT_NE(e, nullptr);
  EXPECT_NEAR(e->srtt_ms, 2.0, 0.25);
  const auto deadline = est.timeout_for(1, millis(100));
  EXPECT_LT(deadline, millis(20));          // far tighter than the knob
  EXPECT_GE(deadline, millis(1));           // never below the floor
}

TEST(RttEstimator, ClampsToFallbackCeiling) {
  net::RttEstimator est;
  for (int i = 0; i < 8; ++i) est.observe(1, millis(500));
  // Adapting may only tighten recovery, never loosen it past the knob.
  EXPECT_EQ(est.timeout_for(1, millis(10)), millis(10));
  // Degenerate zero-variance tiny estimates are floored.
  for (int i = 0; i < 32; ++i) est.observe(2, micros(10));
  EXPECT_EQ(est.timeout_for(2, millis(100)), millis(1));
}

// --- replication link + standby shadow --------------------------------------

TEST(Replication, DeliversInOrderWithDelay) {
  net::Network net;
  ha::ReplicationLink link(net.events(), micros(100));
  ha::StandbyController standby(ha::StandbyOptions{});
  link.set_sink([&](const ha::ReplicationRecord& rec) {
    standby.receive(rec, net.now());
  });

  for (int i = 0; i < 3; ++i) {
    ha::ReplicationRecord rec;
    rec.type = ha::RecordType::kHeartbeat;
    link.ship(std::move(rec));
  }
  net.run_all();

  EXPECT_EQ(link.stats().shipped, 3u);
  EXPECT_EQ(link.stats().delivered, 3u);
  EXPECT_EQ(standby.stats().heartbeats_received, 3u);
  EXPECT_EQ(standby.stats().seq_gaps, 0u);
  EXPECT_EQ(standby.stats().max_replication_lag, micros(100));
}

TEST(Replication, LossWindowDropsAndGapIsDetected) {
  net::Network net;
  ha::ReplicationLink link(net.events(), micros(100));
  ha::StandbyController standby(ha::StandbyOptions{});
  link.set_sink([&](const ha::ReplicationRecord& rec) {
    standby.receive(rec, net.now());
  });
  link.add_loss_window(SimTime{} + millis(1), SimTime{} + millis(2));

  const auto ship_heartbeat = [&link] {
    ha::ReplicationRecord rec;
    rec.type = ha::RecordType::kHeartbeat;
    link.ship(std::move(rec));
  };
  ship_heartbeat();  // t=0: delivered
  net.events().schedule_at(SimTime{} + millis(1) + micros(500),
                           [&] { ship_heartbeat(); });  // in window: dropped
  net.events().schedule_at(SimTime{} + millis(3), [&] { ship_heartbeat(); });
  net.run_all();

  EXPECT_EQ(link.stats().lost_to_loss, 1u);
  EXPECT_EQ(link.stats().delivered, 2u);
  EXPECT_EQ(standby.stats().seq_gaps, 1u);  // seq 2 never arrived
}

TEST(Replication, PartitionBlackholesTheLink) {
  net::Network net;
  ha::ReplicationLink link(net.events(), micros(100));
  std::size_t delivered = 0;
  link.set_sink([&](const ha::ReplicationRecord&) { ++delivered; });

  link.set_partitioned(true);
  ha::ReplicationRecord rec;
  rec.type = ha::RecordType::kHeartbeat;
  link.ship(std::move(rec));
  net.run_all();
  EXPECT_EQ(link.stats().lost_to_partition, 1u);
  EXPECT_EQ(delivered, 0u);

  link.set_partitioned(false);
  ha::ReplicationRecord again;
  again.type = ha::RecordType::kHeartbeat;
  link.ship(std::move(again));
  net.run_all();
  EXPECT_EQ(delivered, 1u);
}

TEST(Standby, AdaptiveWatchdogTightensThreshold) {
  ha::StandbyOptions opts;
  opts.heartbeat_interval = millis(10);
  opts.missed_heartbeats = 3;
  ha::StandbyController standby(opts);
  const auto fixed_threshold = millis(30);
  EXPECT_EQ(standby.threshold(), fixed_threshold);

  // The primary actually beats every 2ms: the learned threshold tightens
  // well below the configured ceiling.
  SimTime now{};
  for (int i = 0; i < 10; ++i) {
    ha::ReplicationRecord rec;
    rec.type = ha::RecordType::kHeartbeat;
    rec.seq = static_cast<std::uint64_t>(i + 1);
    rec.sent_at = now;
    standby.receive(rec, now);
    now = now + millis(2);
  }
  EXPECT_LT(standby.threshold(), fixed_threshold);
  EXPECT_GE(standby.threshold(), millis(3));
  EXPECT_FALSE(standby.primary_suspect(now));
  EXPECT_TRUE(standby.primary_suspect(now + millis(31)));
}

TEST(Standby, ShadowJournalLifecycle) {
  ha::StandbyController standby(ha::StandbyOptions{});
  ha::ReplicationRecord begin;
  begin.type = ha::RecordType::kTxnBegin;
  begin.seq = 1;
  begin.txn_id = 7;
  begin.txn.txn_id = 7;
  begin.txn.policy = sched::RecoveryPolicy::kRollForward;
  standby.receive(begin, SimTime{});
  ASSERT_EQ(standby.inflight().count(7), 1u);
  EXPECT_TRUE(standby.committed().empty());

  ha::ReplicationRecord ack;
  ack.type = ha::RecordType::kTxnEntry;
  ack.seq = 2;
  ack.txn_id = 7;
  ack.dag_id = 3;
  ack.accepted = true;
  standby.receive(ack, SimTime{});
  EXPECT_EQ(standby.inflight().at(7).acked.at(3), true);

  ha::ReplicationRecord fin;
  fin.type = ha::RecordType::kTxnFinish;
  fin.seq = 3;
  fin.txn_id = 7;
  fin.committed = true;
  standby.receive(fin, SimTime{});
  EXPECT_TRUE(standby.inflight().empty());
  ASSERT_EQ(standby.committed().count(7), 1u);

  standby.reset_shadow();
  EXPECT_TRUE(standby.committed().empty());
}

// --- end-to-end failover ----------------------------------------------------

/// Crash between start_commit and finish_commit: the standby's shipped
/// journal is the only record of the transaction, and takeover rolls it
/// forward under the new epoch.
TEST(HaFailover, CrashMidCommitRollsForwardFromJournal) {
  net::Network net;
  const auto s1 = net.add_switch(chaos::quiet_profile(profiles::switch1()));
  core::TangoController primary(net);
  core::TangoController second(net);
  primary.adopt(chaos::synthetic_knowledge(net, s1));

  ha::HaController ha(net, primary, fast_ha_options());
  ha.start();

  const std::size_t n = 4;
  auto topts = ha.stamp(robust_txn_options(42));
  EXPECT_EQ(topts.epoch, 1u);
  auto txn = primary.begin_update(chain_dag(s1, 1, n), topts);

  net.events().schedule_at(net.now() + millis(2), [&] {
    ha.crash_primary();
    txn.abandon();
  });
  sched::DionysusScheduler scheduler;
  txn.start_commit(scheduler);
  while (!ha.takeover_due() && net.events().step()) {
  }
  ASSERT_TRUE(ha.takeover_due());

  // The shadow holds the full write-ahead journal of the in-flight txn.
  const auto inflight = ha.standby().inflight();
  ASSERT_EQ(inflight.count(42), 1u);
  EXPECT_EQ(inflight.at(42).txn.entries.size(), n);
  EXPECT_FALSE(inflight.at(42).finished);

  const auto& rep = ha.take_over(second);
  EXPECT_EQ(rep.epoch, 2u);
  EXPECT_EQ(ha.epoch(), 2u);
  EXPECT_EQ(rep.switches_fenced, 1u);
  EXPECT_EQ(rep.fence_failures, 0u);
  EXPECT_EQ(rep.txns_replayed, 1u);
  EXPECT_EQ(rep.txns_rolled_forward, 1u);
  EXPECT_TRUE(rep.converged);
  EXPECT_GE(rep.knowledge_restored, 1u);
  EXPECT_TRUE(second.knows(s1));
  EXPECT_TRUE(ha.accepting_intents());

  ha.stop();
  net.run_all();
  const auto image = final_image(net, s1);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto key = sched::rule_key(lane_match(1, i),
                                     static_cast<std::uint16_t>(100 + i));
    ASSERT_EQ(image.count(key), 1u) << "rule " << i << " lost in takeover";
    // Every replayed rule is re-fenced to the successor's epoch.
    EXPECT_EQ(of::epoch_of_cookie(image.at(key).cookie), 2u);
  }
  EXPECT_EQ(net.sw(s1).controller_epoch(), 2u);
  EXPECT_EQ(net.sw(s1).stale_epoch_applied(), 0u);
}

/// FootprintScopeTest, takeover edition: rolling back a scoped transaction
/// during takeover must not sweep a co-resident tenant's committed rules.
TEST(HaFailover, ScopedRollbackLeavesCoTenantUntouched) {
  net::Network net;
  const auto s1 = net.add_switch(chaos::quiet_profile(profiles::switch1()));
  core::TangoController primary(net);
  core::TangoController second(net);
  primary.adopt(chaos::synthetic_knowledge(net, s1));

  // Tenant B's rules, committed before the crash (pre-HA legacy cookies).
  sched::DionysusScheduler scheduler;
  const std::size_t b_rules = 3;
  {
    auto txn = primary.begin_update(chain_dag(s1, 2, b_rules, 300),
                                    robust_txn_options(77));
    txn.commit(scheduler);
  }

  ha::HaController ha(net, primary, fast_ha_options());
  ha.start();

  // Tenant A: scoped roll-back transaction that dies mid-commit.
  auto topts = robust_txn_options(42);
  topts.policy = sched::RecoveryPolicy::kRollBack;
  topts.scope_to_footprint = true;
  topts = ha.stamp(topts);
  auto txn = primary.begin_update(chain_dag(s1, 1, 4), topts);
  net.events().schedule_at(net.now() + millis(2), [&] {
    ha.crash_primary();
    txn.abandon();
  });
  txn.start_commit(scheduler);
  while (!ha.takeover_due() && net.events().step()) {
  }
  ASSERT_TRUE(ha.takeover_due());

  const auto& rep = ha.take_over(second);
  EXPECT_EQ(rep.txns_replayed, 1u);
  EXPECT_EQ(rep.txns_rolled_back, 1u);
  EXPECT_TRUE(rep.converged);

  ha.stop();
  net.run_all();
  const auto image = final_image(net, s1);
  for (std::uint32_t i = 0; i < b_rules; ++i) {
    EXPECT_TRUE(has_rule(image, lane_match(2, i),
                         static_cast<std::uint16_t>(300 + i)))
        << "tenant B rule " << i << " swept by tenant A's takeover rollback";
  }
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(has_rule(image, lane_match(1, i),
                          static_cast<std::uint16_t>(100 + i)))
        << "tenant A rule " << i << " survived its rollback";
  }
}

/// Standby lag exceeding the checkpoint interval forces sentinel probes at
/// takeover: the successor's knowledge is measured, not assumed.
TEST(HaFailover, StaleShadowForcesSentinelRevalidation) {
  net::Network net;
  const auto s1 = net.add_switch(chaos::quiet_profile(profiles::switch1()));
  core::TangoController primary(net);
  core::TangoController second(net);
  primary.adopt(chaos::synthetic_knowledge(net, s1));

  auto opts = fast_ha_options();
  opts.heartbeat_interval = millis(5);
  // A tiny freshness budget: by the time the watchdog fires (3 missed
  // heartbeats), the shadow checkpoint is guaranteed stale.
  opts.checkpoint_interval = millis(1);
  ha::HaController ha(net, primary, opts);
  ha.start();

  net.events().schedule_at(net.now() + millis(3), [&] { ha.crash_primary(); });
  while (!ha.takeover_due() && net.events().step()) {
  }
  ASSERT_TRUE(ha.takeover_due());

  const auto& rep = ha.take_over(second);
  EXPECT_GT(rep.knowledge_age, opts.checkpoint_interval);
  EXPECT_GE(rep.sentinel_probes, 1u);
  EXPECT_TRUE(ha.accepting_intents());
  ha.stop();
  net.run_all();
}

/// Double failover closes intent admission until a takeover completes:
/// submits during the gap are refused with kFailingOver, not queued.
TEST(HaFailover, AbortedTakeoverClosesIntentAdmission) {
  net::Network net;
  const auto s1 = net.add_switch(chaos::quiet_profile(profiles::switch1()));
  core::TangoController primary(net);
  core::TangoController second(net);
  core::TangoController third(net);
  primary.adopt(chaos::synthetic_knowledge(net, s1));

  ha::HaController ha(net, primary, fast_ha_options());
  ha.start();

  service::ServiceOptions sopts;
  sopts.admission_gate = ha.admission_gate();
  sopts.txn = robust_txn_options(0);
  service::IntentService svc(net, primary, sopts);

  service::Intent healthy;
  healthy.tenant = 0;
  healthy.dag = chain_dag(s1, 3, 2);
  EXPECT_TRUE(svc.submit(std::move(healthy)).accepted());

  // Crash with a transaction in flight so the takeover has a replay phase
  // for the scheduled successor crash to abort.
  auto topts = ha.stamp(robust_txn_options(42));
  auto txn = primary.begin_update(chain_dag(s1, 1, 4), topts);
  net.events().schedule_at(net.now() + millis(2), [&] {
    ha.crash_primary();
    txn.abandon();
  });
  sched::DionysusScheduler scheduler;
  txn.start_commit(scheduler);
  while (!ha.takeover_due() && net.events().step()) {
  }
  ASSERT_TRUE(ha.takeover_due());

  ha.schedule_primary_crash(net.now());  // the successor dies mid-replay
  const auto& aborted = ha.take_over(second);
  EXPECT_TRUE(aborted.aborted);
  EXPECT_FALSE(ha.accepting_intents());

  service::Intent during;
  during.tenant = 0;
  during.dag = chain_dag(s1, 4, 2);
  const auto refused = svc.submit(std::move(during));
  EXPECT_FALSE(refused.accepted());
  EXPECT_EQ(refused.error, service::AdmitError::kFailingOver);

  // The watchdog detects the successor's death; by then the aborted
  // takeover's re-journaled WAL (shipped before its replay began) has
  // landed in the next standby, so the third controller can finish the job
  // and re-open admission.
  while (!ha.takeover_due() && net.events().step()) {
  }
  ASSERT_TRUE(ha.takeover_due());
  const auto& completed = ha.take_over(third);
  EXPECT_FALSE(completed.aborted);
  EXPECT_EQ(completed.epoch, 3u);
  EXPECT_EQ(completed.txns_replayed, 1u);
  EXPECT_TRUE(ha.accepting_intents());

  service::Intent after;
  after.tenant = 0;
  after.dag = chain_dag(s1, 5, 2);
  EXPECT_TRUE(svc.submit(std::move(after)).accepted());
  ha.stop();
  net.run_all();
}

// --- HA chaos scenarios (oracles + bit-identical replay) --------------------

TEST(HaChaos, ControllerCrash) {
  chaos::HaChaosSpec spec;
  spec.seed = 5;
  spec.scenario = chaos::ControllerFaultKind::kControllerCrash;
  const auto r = run_checked(spec);
  ASSERT_EQ(r.takeovers.size(), 1u);
  EXPECT_EQ(r.takeovers[0].txns_replayed, 1u);
  EXPECT_EQ(r.epoch, 2u);
}

TEST(HaChaos, ControllerCrashRollback) {
  chaos::HaChaosSpec spec;
  spec.seed = 6;
  spec.policy = sched::RecoveryPolicy::kRollBack;
  spec.scenario = chaos::ControllerFaultKind::kControllerCrash;
  const auto r = run_checked(spec);
  ASSERT_EQ(r.takeovers.size(), 1u);
  EXPECT_EQ(r.takeovers[0].txns_rolled_back, 1u);
}

TEST(HaChaos, ControllerPartitionZombie) {
  chaos::HaChaosSpec spec;
  spec.seed = 7;
  spec.scenario = chaos::ControllerFaultKind::kControllerPartition;
  const auto r = run_checked(spec);
  ASSERT_EQ(r.takeovers.size(), 1u);
  EXPECT_GT(r.link.lost_to_partition, 0u);
  EXPECT_EQ(r.epoch, 2u);
}

TEST(HaChaos, ReplicationLoss) {
  chaos::HaChaosSpec spec;
  spec.seed = 8;
  spec.scenario = chaos::ControllerFaultKind::kReplicationLoss;
  const auto r = run_checked(spec);
  ASSERT_EQ(r.takeovers.size(), 1u);
  EXPECT_GT(r.link.lost_to_loss, 0u);
  EXPECT_GT(r.standby.seq_gaps, 0u);
}

TEST(HaChaos, DoubleFailover) {
  chaos::HaChaosSpec spec;
  spec.seed = 9;
  spec.scenario = chaos::ControllerFaultKind::kCrashDuringTakeover;
  const auto r = run_checked(spec);
  ASSERT_EQ(r.takeovers.size(), 2u);
  EXPECT_TRUE(r.takeovers[0].aborted);
  EXPECT_FALSE(r.takeovers[1].aborted);
  EXPECT_EQ(r.epoch, 3u);
}

TEST(HaChaos, CrashAfterCommitPreservesTheCommit) {
  chaos::HaChaosSpec spec;
  spec.seed = 10;
  spec.scenario = chaos::ControllerFaultKind::kCrashAfterCommit;
  const auto r = run_checked(spec);
  ASSERT_EQ(r.takeovers.size(), 1u);
  // Nothing in flight to replay; the committed rules must still be there
  // (the committed-preserved oracle inside run_ha_chaos checks the tables).
  EXPECT_EQ(r.takeovers[0].txns_replayed, 0u);
  EXPECT_FALSE(r.takeovers[0].committed_targets.empty());
}

// --- fault-free byte-identity ------------------------------------------------

struct TracedRun {
  std::string trace_json;
  sched::TableImage image;
};

TracedRun traced_run(bool with_ha) {
  net::Network net;
  telemetry::Telemetry tele;
  net.set_telemetry(&tele);
  workload::TestbedIds tb;
  tb.s1 = net.add_switch(chaos::quiet_profile(profiles::switch1()));
  tb.s2 = net.add_switch(chaos::quiet_profile(profiles::switch1()));
  tb.s3 = net.add_switch(chaos::quiet_profile(profiles::switch3()));
  core::TangoController ctl(net);
  for (const auto id : {tb.s1, tb.s2, tb.s3}) {
    ctl.adopt(chaos::synthetic_knowledge(net, id));
  }

  chaos::ChaosSpec base;
  base.seed = 11;
  base.workload = chaos::Workload::kFig10;
  base.horizon = chaos::Horizon::kShort;
  sched::RequestDag dag;
  chaos::build_workload(base, net, tb, dag);

  std::optional<ha::HaController> ha;
  auto topts = robust_txn_options(900);
  if (with_ha) {
    ha.emplace(net, ctl, fast_ha_options());
    ha->start();
    topts = ha->stamp(topts);
  }

  sched::DionysusScheduler scheduler;
  auto txn = ctl.begin_update(std::move(dag), topts);
  txn.start_commit(scheduler);
  while (!txn.exec_done() && net.events().step()) {
  }
  txn.finish_commit();
  if (ha) ha->stop();
  net.run_all();
  return {tele.trace.to_chrome_json(), final_image(net, tb.s1)};
}

/// With HA running but no faults, every existing telemetry report is
/// byte-identical to a run without HA: replication rides its own link, epoch
/// fencing piggybacks on cookie bytes that never reach the trace.
TEST(HaTelemetry, FaultFreeRunsAreByteIdentical) {
  const auto plain = traced_run(false);
  const auto with_ha = traced_run(true);
  EXPECT_EQ(plain.trace_json, with_ha.trace_json);

  // The tables agree rule for rule, modulo the cookie's epoch byte.
  ASSERT_EQ(plain.image.size(), with_ha.image.size());
  for (const auto& [key, rule] : plain.image) {
    ASSERT_EQ(with_ha.image.count(key), 1u) << key;
    EXPECT_TRUE(same_rule_sans_epoch(rule, with_ha.image.at(key))) << key;
  }
}

TEST(HaTelemetry, PublishExportsHaMetrics) {
  net::Network net;
  const auto s1 = net.add_switch(chaos::quiet_profile(profiles::switch1()));
  core::TangoController primary(net);
  core::TangoController second(net);
  primary.adopt(chaos::synthetic_knowledge(net, s1));

  ha::HaController ha(net, primary, fast_ha_options());
  ha.start();
  net.events().schedule_at(net.now() + millis(2), [&] { ha.crash_primary(); });
  while (!ha.takeover_due() && net.events().step()) {
  }
  ha.take_over(second);
  ha.stop();
  net.run_all();

  telemetry::Telemetry tele;
  ha.publish(&tele);
  const auto* failovers = tele.metrics.find_counter("ha.failover_count");
  ASSERT_NE(failovers, nullptr);
  EXPECT_EQ(failovers->value(), 1u);
  EXPECT_NE(tele.metrics.find_counter("ha.heartbeats_shipped"), nullptr);
  EXPECT_NE(tele.metrics.find_counter("ha.stale_epoch_rejections"), nullptr);
  ASSERT_NE(tele.metrics.find_gauge("ha.takeover_ms"), nullptr);
  EXPECT_GT(tele.metrics.find_gauge("ha.takeover_ms")->value(), 0.0);
}

}  // namespace
}  // namespace tango
