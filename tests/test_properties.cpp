// Randomized property tests across module boundaries:
//  * codec: arbitrary messages round-trip; corrupted frames never crash,
//  * switch model: invariants hold under random op sequences,
//  * executor: dependency order is never violated for random DAGs,
//  * scheduler: orderings are permutations of the ready set.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "net/network.h"
#include "openflow/codec.h"
#include "scheduler/executor.h"
#include "scheduler/schedulers.h"
#include "switchsim/profiles.h"
#include "tango/probe_engine.h"

namespace tango {
namespace {

namespace profiles = switchsim::profiles;
using core::ProbeEngine;

// ---------------------------------------------------------------------------
// Codec robustness
// ---------------------------------------------------------------------------

of::Match random_wild_match(Rng& rng) {
  of::Match m;
  if (rng.chance(0.5)) {
    m.set_nw_src_prefix(static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 30)),
                        static_cast<int>(rng.uniform_int(0, 32)));
  }
  if (rng.chance(0.5)) m.with_tp_dst(static_cast<std::uint16_t>(rng.uniform_int(0, 65535)));
  if (rng.chance(0.3)) m.with_in_port(static_cast<std::uint16_t>(rng.uniform_int(0, 64)));
  if (rng.chance(0.3)) m.with_nw_proto(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
  return m;
}

of::Message random_message(Rng& rng) {
  const auto xid = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 30));
  switch (rng.index(6)) {
    case 0: {
      of::FlowMod fm;
      fm.match = random_wild_match(rng);
      fm.command = static_cast<of::FlowModCommand>(rng.uniform_int(0, 4));
      fm.priority = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
      fm.cookie = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30));
      const auto n_actions = rng.index(4);
      for (std::size_t i = 0; i < n_actions; ++i) {
        switch (rng.index(4)) {
          case 0: fm.actions.push_back(of::ActionOutput{
                      static_cast<std::uint16_t>(rng.uniform_int(1, 48)), 0xffff});
            break;
          case 1: fm.actions.push_back(of::ActionSetVlanVid{
                      static_cast<std::uint16_t>(rng.uniform_int(0, 4095))});
            break;
          case 2: fm.actions.push_back(of::ActionSetNwSrc{
                      static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 30))});
            break;
          default: fm.actions.push_back(of::ActionStripVlan{});
        }
      }
      return {xid, fm};
    }
    case 1: {
      of::PacketIn pin;
      pin.in_port = static_cast<std::uint16_t>(rng.uniform_int(0, 64));
      pin.data.resize(rng.index(200));
      for (auto& b : pin.data) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      return {xid, pin};
    }
    case 2: {
      of::FlowRemoved fr;
      fr.match = random_wild_match(rng);
      fr.packet_count = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30));
      return {xid, fr};
    }
    case 3: {
      of::EchoRequest echo;
      echo.payload.resize(rng.index(64));
      return {xid, echo};
    }
    case 4:
      return {xid, of::BarrierRequest{}};
    default: {
      of::ErrorMsg err;
      err.type = static_cast<of::ErrorType>(rng.uniform_int(0, 5));
      err.code = static_cast<std::uint16_t>(rng.uniform_int(0, 10));
      return {xid, err};
    }
  }
}

class CodecProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecProperties, RandomMessagesRoundTrip) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    const auto msg = random_message(rng);
    const auto frame = of::encode(msg);
    auto decoded = of::decode(frame);
    ASSERT_TRUE(decoded.ok()) << decoded.error();
    EXPECT_EQ(decoded.value().xid, msg.xid);
    EXPECT_EQ(decoded.value().body, msg.body);
  }
}

TEST_P(CodecProperties, CorruptedFramesNeverCrash) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 300; ++iter) {
    auto frame = of::encode(random_message(rng));
    // Flip a few random bytes but keep the length field consistent so the
    // decoder is exercised past the header check.
    const auto flips = 1 + rng.index(5);
    for (std::size_t f = 0; f < flips; ++f) {
      const auto pos = rng.index(frame.size());
      if (pos == 2 || pos == 3) continue;  // keep length honest
      frame[pos] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    // Must either decode to something or return an error — never UB/crash.
    (void)of::decode(frame);
  }
}

TEST_P(CodecProperties, TruncationsAlwaysRejected) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 100; ++iter) {
    const auto frame = of::encode(random_message(rng));
    if (frame.size() <= of::kHeaderLen) continue;
    const auto cut = of::kHeaderLen + rng.index(frame.size() - of::kHeaderLen);
    std::vector<std::uint8_t> shorter(frame.begin(),
                                      frame.begin() + static_cast<long>(cut));
    EXPECT_FALSE(of::decode(shorter).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecProperties, ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------------------
// Switch invariants under random operation sequences
// ---------------------------------------------------------------------------

class SwitchInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SwitchInvariants, RandomOpsPreserveStructure) {
  Rng rng(GetParam());
  // Random architecture per seed.
  switchsim::SwitchProfile profile;
  switch (rng.index(4)) {
    case 0: profile = profiles::ovs(); break;
    case 1: profile = profiles::switch1(); break;
    case 2: profile = profiles::switch2(); break;
    default:
      profile = profiles::policy_cache(
          "rand", {32 + rng.index(64)},
          rng.chance(0.5) ? tables::LexCachePolicy::lru()
                          : tables::LexCachePolicy::fifo());
  }
  switchsim::SimulatedSwitch sw(1, profile, GetParam());

  std::set<std::pair<std::string, std::uint16_t>> expected;  // match+prio
  SimTime now{};
  for (int step = 0; step < 400; ++step) {
    now += millis(1);
    const auto index = static_cast<std::uint32_t>(rng.index(60));
    const auto priority = static_cast<std::uint16_t>(1000 + 10 * rng.index(8));
    const auto key = std::make_pair(
        ProbeEngine::probe_match(index).to_string(), priority);
    const auto roll = rng.index(10);
    if (roll < 5) {
      auto fm = ProbeEngine::probe_add(index, priority);
      const auto out = sw.apply_flow_mod(fm, now);
      if (out.accepted) expected.insert(key);
    } else if (roll < 7) {
      auto fm = ProbeEngine::probe_add(index, priority);
      fm.command = of::FlowModCommand::kDeleteStrict;
      sw.apply_flow_mod(fm, now);
      expected.erase(key);
    } else if (roll < 9) {
      of::Packet pkt;
      pkt.header = ProbeEngine::probe_packet(static_cast<std::uint32_t>(rng.index(60)));
      sw.forward(pkt, now);
    } else {
      auto fm = ProbeEngine::probe_add(index, priority);
      fm.command = of::FlowModCommand::kModifyStrict;
      fm.actions = of::output_to(5);
      const auto out = sw.apply_flow_mod(fm, now);
      // OpenFlow 1.0: MODIFY with no matching entry behaves like ADD.
      if (out.accepted) expected.insert(key);
    }

    // Invariant 1: rule count matches the reference set (+ default route).
    const std::size_t base = profile.install_default_route ? 1 : 0;
    ASSERT_EQ(sw.total_rules(), expected.size() + base) << "step " << step;

    // Invariant 2: no (match, priority) pair resident at two levels.
    if (step % 50 == 0) {
      std::map<std::pair<std::string, std::uint16_t>, int> where;
      for (std::size_t lvl = 0; lvl <= sw.bounded_levels(); ++lvl) {
        for (const auto* e : sw.level_entries(lvl)) {
          ++where[{e->match.to_string(), e->priority}];
        }
      }
      for (const auto& [k, count] : where) {
        ASSERT_EQ(count, 1) << "duplicate rule " << k.first;
      }
    }
  }

  // Invariant 3: every expected rule actually forwards its packet.
  for (std::uint32_t index = 0; index < 60; ++index) {
    bool any = false;
    for (std::uint16_t p = 1000; p < 1080; p = static_cast<std::uint16_t>(p + 10)) {
      if (expected.count({ProbeEngine::probe_match(index).to_string(), p}) != 0) {
        any = true;
      }
    }
    if (!any) continue;
    of::Packet pkt;
    pkt.header = ProbeEngine::probe_packet(index);
    const auto out = sw.forward(pkt, now + millis(1));
    EXPECT_EQ(out.kind, switchsim::ForwardOutcome::Kind::kForwarded) << index;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwitchInvariants,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ---------------------------------------------------------------------------
// Executor: random DAGs never violate dependency order
// ---------------------------------------------------------------------------

class ExecutorProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExecutorProperties, CompletionOrderRespectsRandomDags) {
  Rng rng(GetParam());
  net::Network net;
  std::vector<SwitchId> switches;
  for (int i = 0; i < 3; ++i) switches.push_back(net.add_switch(profiles::ovs()));

  sched::RequestDag dag;
  const std::size_t n = 60;
  for (std::uint32_t i = 0; i < n; ++i) {
    sched::SwitchRequest req;
    req.location = switches[rng.index(switches.size())];
    req.type = sched::RequestType::kAdd;
    req.priority = static_cast<std::uint16_t>(rng.uniform_int(1, 9000));
    req.match = ProbeEngine::probe_match(i);
    req.actions = of::output_to(2);
    dag.add(req);
  }
  // Random forward edges (i < j keeps it acyclic).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.chance(0.04)) dag.add_dependency(i, j);
    }
  }
  ASSERT_TRUE(dag.is_acyclic());

  // Track completion times via a wrapper scheduler? Simpler: executor's
  // completion callbacks run through post_flow_mod; we re-run and record by
  // observing per-request completion through a scheduler that logs issue
  // order, then verify with per-switch FIFO semantics. Most direct check:
  // wrap Network? Instead rely on the executor's own bookkeeping by
  // asserting zero rejections AND verifying issue order from a recording
  // scheduler.
  struct Recording : sched::UpdateScheduler {
    sched::DionysusScheduler inner;
    std::vector<std::size_t>* log;
    std::vector<std::size_t> order(const sched::RequestDag& d,
                                   std::vector<std::size_t> ready) override {
      auto out = inner.order(d, std::move(ready));
      log->insert(log->end(), out.begin(), out.end());
      return out;
    }
    [[nodiscard]] std::string name() const override { return "recording"; }
  };
  std::vector<std::size_t> issue_log;
  Recording recorder;
  recorder.log = &issue_log;

  const auto report = sched::execute(net, dag, recorder);
  EXPECT_EQ(report.issued, n);
  EXPECT_EQ(report.rejected, 0u);

  // A request may only be handed to the scheduler after all its
  // predecessors were handed out in earlier rounds (dependencies resolve
  // strictly before successors become ready).
  std::map<std::size_t, std::size_t> first_seen;
  for (std::size_t pos = 0; pos < issue_log.size(); ++pos) {
    first_seen.emplace(issue_log[pos], pos);
  }
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v : dag.successors(u)) {
      ASSERT_LT(first_seen.at(u), first_seen.at(v)) << u << "->" << v;
    }
  }
}

TEST_P(ExecutorProperties, SchedulerOutputsArePermutations) {
  Rng rng(GetParam() + 100);
  sched::RequestDag dag;
  std::vector<std::size_t> ready;
  for (std::uint32_t i = 0; i < 40; ++i) {
    sched::SwitchRequest req;
    req.location = 1 + rng.index(3);
    req.type = static_cast<sched::RequestType>(rng.index(3));
    req.priority = static_cast<std::uint16_t>(rng.uniform_int(1, 9000));
    req.match = ProbeEngine::probe_match(i);
    ready.push_back(dag.add(req));
  }
  sched::DionysusScheduler dionysus;
  sched::BasicTangoScheduler tango({});
  for (sched::UpdateScheduler* s :
       std::initializer_list<sched::UpdateScheduler*>{&dionysus, &tango}) {
    auto out = s->order(dag, ready);
    auto sorted = out;
    std::sort(sorted.begin(), sorted.end());
    auto expect = ready;
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(sorted, expect) << s->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorProperties, ::testing::Values(7, 8, 9, 10));

}  // namespace
}  // namespace tango
