// Multi-tenant intent service suite: admission control (typed rejections,
// bounded queues, coalescing), conflict-graph footprints, fair concurrent
// dispatch, and the tenant-isolation contract — a tenant's rollback never
// perturbs a disjoint tenant's committed rules on a shared switch.
//
// Everything runs on the deterministic event queue with jitter-free switch
// profiles; the fault cases use scheduled (not probabilistic) crashes so
// every run replays identically.
#include <gtest/gtest.h>

#include <vector>

#include "chaos/tenant_isolation.h"
#include "net/fault_injector.h"
#include "net/network.h"
#include "scheduler/reconciler.h"
#include "scheduler/schedulers.h"
#include "service/conflict.h"
#include "service/service.h"
#include "switchsim/profiles.h"
#include "tango/tango.h"

namespace tango::service {
namespace {

namespace profiles = switchsim::profiles;

switchsim::SwitchProfile quiet_switch1() {
  auto profile = profiles::switch1();
  profile.costs.jitter_frac = 0;
  profile.paths.jitter_frac = 0;
  return profile;
}

/// Rule `i` of lane `lane` in tenant `t`'s /16 (disjoint across tenants and
/// lanes by construction).
of::Match tenant_match(TenantId t, std::uint32_t lane, std::uint32_t i) {
  of::Match m;
  m.with_dl_type(0x0800);
  m.set_nw_dst_prefix((10u << 24) | ((t + 1) << 16) | (lane << 8) | i, 32);
  return m;
}

/// A chain of `n` ADDs on `sw` in tenant `t`'s lane.
sched::RequestDag chain_dag(TenantId t, SwitchId sw, std::uint32_t lane,
                            std::size_t n) {
  sched::RequestDag dag;
  std::size_t prev = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    sched::SwitchRequest req;
    req.location = sw;
    req.type = sched::RequestType::kAdd;
    req.priority = static_cast<std::uint16_t>(100 + i);
    req.match = tenant_match(t, lane, i);
    req.actions = of::output_to(2);
    const std::size_t id = dag.add(std::move(req));
    if (i > 0) dag.add_dependency(prev, id);
    prev = id;
  }
  return dag;
}

Intent intent_for(TenantId t, SwitchId sw, std::uint32_t lane, std::size_t n,
                  std::uint64_t coalesce_key = 0) {
  Intent in;
  in.tenant = t;
  in.dag = chain_dag(t, sw, lane, n);
  in.coalesce_key = coalesce_key;
  return in;
}

sched::TableImage final_image(net::Network& net, SwitchId id) {
  return sched::image_of(net.sw(id).flow_stats(of::Match::any()));
}

bool has_rule(const sched::TableImage& image, const of::Match& m,
              std::uint16_t priority) {
  return image.count(sched::rule_key(m, priority)) != 0;
}

// ---------------------------------------------------------------------------
// Admission
// ---------------------------------------------------------------------------

TEST(ServiceAdmission, EmptyIntentRejected) {
  net::Network net;
  core::TangoController ctl(net);
  IntentService svc(net, ctl);
  const auto res = svc.submit(Intent{});
  EXPECT_FALSE(res.accepted());
  EXPECT_EQ(res.error, AdmitError::kEmptyIntent);
  EXPECT_EQ(to_string(res.error), "empty-intent");
}

TEST(ServiceAdmission, BoundedQueueRejectsWithBackpressure) {
  net::Network net;
  const SwitchId s1 = net.add_switch(quiet_switch1());
  core::TangoController ctl(net);
  ServiceOptions opts;
  opts.per_tenant_queue_cap = 2;
  IntentService svc(net, ctl, opts);

  EXPECT_TRUE(svc.submit(intent_for(0, s1, 0, 2)).accepted());
  EXPECT_TRUE(svc.submit(intent_for(0, s1, 1, 2)).accepted());
  const auto res = svc.submit(intent_for(0, s1, 2, 2));
  EXPECT_EQ(res.error, AdmitError::kQueueFull);
  EXPECT_EQ(svc.queue_depth(0), 2u);
  // Another tenant's queue is unaffected by this tenant's backpressure.
  EXPECT_TRUE(svc.submit(intent_for(1, s1, 3, 2)).accepted());
}

TEST(ServiceAdmission, CoalesceReplacesQueuedPayloadInPlace) {
  net::Network net;
  const SwitchId s1 = net.add_switch(quiet_switch1());
  core::TangoController ctl(net);
  ServiceOptions opts;
  opts.per_tenant_queue_cap = 1;  // the coalesce must not consume a slot
  IntentService svc(net, ctl, opts);

  const auto first = svc.submit(intent_for(0, s1, /*lane=*/1, 3, /*key=*/7));
  ASSERT_TRUE(first.accepted());
  const auto second = svc.submit(intent_for(0, s1, /*lane=*/2, 3, /*key=*/7));
  ASSERT_TRUE(second.accepted());
  EXPECT_TRUE(second.coalesced);
  EXPECT_NE(second.intent_id, first.intent_id);
  EXPECT_EQ(svc.queue_depth(0), 1u);

  sched::DionysusScheduler scheduler;
  svc.run(scheduler);

  // Only the replacement payload (lane 2) was ever installed.
  const auto image = final_image(net, s1);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(has_rule(image, tenant_match(0, 1, i),
                          static_cast<std::uint16_t>(100 + i)));
    EXPECT_TRUE(has_rule(image, tenant_match(0, 2, i),
                         static_cast<std::uint16_t>(100 + i)));
  }
  const auto& rep = svc.report();
  EXPECT_EQ(rep.submitted, 2u);
  EXPECT_EQ(rep.admitted, 1u);
  EXPECT_EQ(rep.coalesced, 1u);
  EXPECT_EQ(rep.dispatched, 1u);
  EXPECT_EQ(rep.completed, 1u);
}

// ---------------------------------------------------------------------------
// ConflictGraph footprints
// ---------------------------------------------------------------------------

TEST(ConflictGraphTest, FootprintsConflictOnlyOnSharedSwitchOverlap) {
  const auto fp_a = footprint_of(chain_dag(0, /*sw=*/1, /*lane=*/1, 3));
  const auto fp_b = footprint_of(chain_dag(1, /*sw=*/1, /*lane=*/1, 3));
  const auto fp_c = footprint_of(chain_dag(0, /*sw=*/2, /*lane=*/1, 3));
  const auto fp_a2 = footprint_of(chain_dag(0, /*sw=*/1, /*lane=*/2, 3));

  // Same switch, disjoint /32s (different tenant /16s): no conflict.
  EXPECT_FALSE(conflicts(fp_a, fp_b));
  // Different switches entirely: no conflict.
  EXPECT_FALSE(conflicts(fp_a, fp_c));
  // Same switch, same rules: conflict (and reflexivity).
  EXPECT_TRUE(conflicts(fp_a, fp_a));
  // Same tenant, same switch, different lane: still disjoint.
  EXPECT_FALSE(conflicts(fp_a, fp_a2));

  // A /16 covering tenant 0's whole space overlaps every lane.
  sched::RequestDag wide;
  sched::SwitchRequest req;
  req.location = 1;
  req.type = sched::RequestType::kMod;
  req.priority = 50;
  req.match.set_nw_dst_prefix(10u << 24 | 1u << 16, 16);
  wide.add(std::move(req));
  const auto fp_wide = footprint_of(wide);
  EXPECT_TRUE(conflicts(fp_wide, fp_a));
  EXPECT_TRUE(conflicts(fp_wide, fp_a2));
  EXPECT_FALSE(conflicts(fp_wide, fp_b));

  ConflictGraph graph;
  EXPECT_TRUE(graph.compatible(fp_a));
  graph.add(1, fp_a);
  EXPECT_TRUE(graph.compatible(fp_b));
  EXPECT_FALSE(graph.compatible(fp_wide));
  graph.remove(1);
  EXPECT_TRUE(graph.compatible(fp_wide));
}

// ---------------------------------------------------------------------------
// Dispatch: concurrency, conflicts, fairness
// ---------------------------------------------------------------------------

TEST(ServiceDispatch, DisjointTenantsInterleaveInVirtualTime) {
  net::Network net;
  std::vector<SwitchId> sw;
  for (int i = 0; i < 4; ++i) sw.push_back(net.add_switch(quiet_switch1()));
  core::TangoController ctl(net);
  ServiceOptions opts;
  opts.max_concurrent = 4;
  opts.txn_id_base = 0x500;
  IntentService svc(net, ctl, opts);

  for (std::uint32_t j = 0; j < 2; ++j) {
    for (TenantId t = 0; t < 4; ++t) {
      ASSERT_TRUE(svc.submit(intent_for(t, sw[t], j, 4)).accepted());
    }
  }
  sched::DionysusScheduler scheduler;
  svc.run(scheduler);

  const auto& rep = svc.report();
  EXPECT_EQ(rep.completed, 8u);
  EXPECT_EQ(rep.failed_commits, 0u);
  EXPECT_EQ(rep.conflict_blocks, 0u);
  EXPECT_EQ(rep.max_concurrency, 4u);  // all four tenants in flight at once
  EXPECT_GT(rep.avg_concurrency, 1.5);
  EXPECT_DOUBLE_EQ(rep.fairness_index, 1.0);  // identical service received
  for (TenantId t = 0; t < 4; ++t) {
    const auto image = final_image(net, sw[t]);
    for (std::uint32_t j = 0; j < 2; ++j) {
      for (std::uint32_t i = 0; i < 4; ++i) {
        EXPECT_TRUE(has_rule(image, tenant_match(t, j, i),
                             static_cast<std::uint16_t>(100 + i)));
      }
    }
  }
}

TEST(ServiceDispatch, ConflictingHeadsSerialize) {
  net::Network net;
  const SwitchId s1 = net.add_switch(quiet_switch1());
  core::TangoController ctl(net);
  ServiceOptions opts;
  opts.max_concurrent = 8;
  IntentService svc(net, ctl, opts);

  // Both tenants write the same /16: every pair of intents overlaps.
  const auto overlapping = [&](TenantId t, std::uint16_t prio_base) {
    Intent in;
    in.tenant = t;
    sched::SwitchRequest req;
    req.location = s1;
    req.type = sched::RequestType::kAdd;
    req.priority = prio_base;
    req.match.set_nw_dst_prefix(10u << 24 | 200u << 16, 16);
    req.actions = of::output_to(2);
    in.dag.add(std::move(req));
    return in;
  };
  for (int j = 0; j < 3; ++j) {
    ASSERT_TRUE(
        svc.submit(overlapping(0, static_cast<std::uint16_t>(100 + j)))
            .accepted());
    ASSERT_TRUE(
        svc.submit(overlapping(1, static_cast<std::uint16_t>(200 + j)))
            .accepted());
  }
  sched::DionysusScheduler scheduler;
  svc.run(scheduler);

  const auto& rep = svc.report();
  EXPECT_EQ(rep.completed, 6u);
  EXPECT_EQ(rep.max_concurrency, 1u);  // conflicts must serialize
  EXPECT_GE(rep.conflict_blocks, 1u);
  EXPECT_EQ(rep.failed_commits, 0u);
}

// ---------------------------------------------------------------------------
// Isolation: the contract the footprint scoping exists for
// ---------------------------------------------------------------------------

TEST(ServiceIsolation, RollbackPreservesCoTenantCommittedRules) {
  net::Network net;
  const SwitchId shared = net.add_switch(quiet_switch1());
  const SwitchId victim_priv = net.add_switch(quiet_switch1());
  core::TangoController ctl(net);
  ServiceOptions opts;
  opts.max_concurrent = 4;
  opts.txn_id_base = 0x700;
  std::map<std::uint64_t, sched::TransactionReport> reports;
  opts.on_commit = [&reports](TenantId, std::uint64_t id,
                              const sched::TransactionReport& rep) {
    reports[id] = rep;
  };
  IntentService svc(net, ctl, opts);

  // Victim (tenant 0, kRollBack): a long chain over its private switch plus
  // three rules on the shared switch.
  Intent victim;
  victim.tenant = 0;
  victim.policy = sched::RecoveryPolicy::kRollBack;
  victim.dag = chain_dag(0, victim_priv, /*lane=*/1, 10);
  {
    std::size_t prev = 9;
    for (std::uint32_t i = 0; i < 3; ++i) {
      sched::SwitchRequest req;
      req.location = shared;
      req.type = sched::RequestType::kAdd;
      req.priority = static_cast<std::uint16_t>(100 + i);
      req.match = tenant_match(0, /*lane=*/2, i);
      req.actions = of::output_to(2);
      const std::size_t id = victim.dag.add(std::move(req));
      victim.dag.add_dependency(prev, id);
      prev = id;
    }
  }
  const auto victim_res = svc.submit(std::move(victim));
  ASSERT_TRUE(victim_res.accepted());

  // Co-tenant (tenant 1, kRollForward): a short commit on the shared switch
  // that finishes while the victim is still in flight.
  const auto other_res = svc.submit(intent_for(1, shared, /*lane=*/1, 3));
  ASSERT_TRUE(other_res.accepted());

  // Scheduled crash on the victim's private switch mid-commit: determinism
  // comes from the fixed time, not a probability.
  net::FaultConfig cfg;
  cfg.seed = 1;
  cfg.crashes.push_back({net.now() + millis(8), millis(3)});
  net.enable_faults(victim_priv, cfg);

  sched::DionysusScheduler scheduler;
  svc.run(scheduler);
  net.run_all();

  ASSERT_EQ(reports.count(victim_res.intent_id), 1u);
  ASSERT_EQ(reports.count(other_res.intent_id), 1u);
  const auto& victim_rep = reports.at(victim_res.intent_id);
  const auto& other_rep = reports.at(other_res.intent_id);
  ASSERT_TRUE(victim_rep.rolled_back)
      << "crash did not land mid-commit; retune the schedule";
  EXPECT_TRUE(victim_rep.committed);  // rollback converged
  EXPECT_TRUE(other_rep.committed);
  EXPECT_FALSE(other_rep.rolled_back);

  const auto image = final_image(net, shared);
  // The victim's shared-switch rules were unwound...
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(has_rule(image, tenant_match(0, 2, i),
                          static_cast<std::uint16_t>(100 + i)));
  }
  // ...and the co-tenant's committed rules survived the rollback intact,
  // cookies and all.
  const std::uint32_t other_txn =
      opts.txn_id_base + static_cast<std::uint32_t>(other_res.intent_id);
  for (std::uint32_t i = 0; i < 3; ++i) {
    const auto key = sched::rule_key(tenant_match(1, 1, i),
                                     static_cast<std::uint16_t>(100 + i));
    ASSERT_EQ(image.count(key), 1u);
    EXPECT_EQ(sched::UpdateTransaction::txn_of_cookie(image.at(key).cookie),
              other_txn);
  }
}

TEST(ServiceIsolation, TenantChaosSweepIsCleanAndDeterministic) {
  std::size_t rollbacks = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    chaos::TenantChaosSpec spec;
    spec.seed = seed;
    const auto first = chaos::run_tenant_chaos(spec);
    for (const auto& v : first.violations) {
      ADD_FAILURE() << "seed " << seed << ": " << chaos::to_string(v);
    }
    rollbacks += first.rollbacks;
    // Bit-identical replay: same spec, same fingerprint.
    const auto second = chaos::run_tenant_chaos(spec);
    EXPECT_EQ(first.fingerprint, second.fingerprint) << "seed " << seed;
    EXPECT_EQ(first.end_time.ns(), second.end_time.ns()) << "seed " << seed;
  }
  // The sweep must actually exercise the isolation scenario somewhere.
  EXPECT_GE(rollbacks, 1u);
}

// ---------------------------------------------------------------------------
// Report: waits, percentiles, fairness accounting
// ---------------------------------------------------------------------------

TEST(ServiceReport, QueueWaitAndLatencyPercentiles) {
  net::Network net;
  const SwitchId s1 = net.add_switch(quiet_switch1());
  core::TangoController ctl(net);
  ServiceOptions opts;
  opts.max_concurrent = 1;  // force the later intents to wait in queue
  IntentService svc(net, ctl, opts);

  for (std::uint32_t j = 0; j < 3; ++j) {
    ASSERT_TRUE(svc.submit(intent_for(0, s1, j, 3)).accepted());
  }
  sched::DionysusScheduler scheduler;
  svc.run(scheduler);

  const auto& rep = svc.report();
  ASSERT_EQ(rep.tenants.count(0), 1u);
  const auto& ts = rep.tenants.at(0);
  EXPECT_EQ(ts.completed, 3u);
  EXPECT_GT(ts.total_queue_wait.ns(), 0);
  EXPECT_GT(ts.max_queue_wait.ns(), 0);
  EXPECT_LE(ts.max_queue_wait.ns(), ts.total_queue_wait.ns());
  EXPECT_EQ(ts.latency_ms.size(), 3u);
  EXPECT_GT(ts.latency_p50_ms, 0);
  EXPECT_LE(ts.latency_p50_ms, ts.latency_p95_ms);
  EXPECT_LE(ts.latency_p95_ms, ts.latency_p99_ms);
  EXPECT_GT(rep.makespan.ns(), 0);
  EXPECT_EQ(rep.max_concurrency, 1u);
}

}  // namespace
}  // namespace tango::service
