// Differential acceptance layer for the parallel seed-sweep engine: the
// same sweep config run with 1, 2, and 8 workers must produce
// byte-identical soak reports (the exact JSON the tools write),
// byte-identical console narratives, and the same sweep fingerprint —
// across all three harness families (chaos, HA, tenant isolation). Plus
// unit properties of the pool itself: index-ordered results regardless of
// completion order, and deterministic exception propagation.
//
// This test is also the ThreadSanitizer workload for the runner: it
// drives every harness through real concurrent workers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "common/logging.h"
#include "runner/pool.h"
#include "runner/soak.h"

namespace tango::runner {
namespace {

class RunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Chaos runs log fault storms; keep test output clean like the tools.
    log::set_threshold(log::Level::kError);
    log::set_rate_limit(20);
  }
};

// ---------------------------------------------------------------------------
// Pool properties
// ---------------------------------------------------------------------------

TEST_F(RunnerTest, PoolReturnsResultsInIndexOrder) {
  // Early jobs sleep longest, so completion order is roughly reversed —
  // the output order must not care.
  const auto out = run_indexed(16, 8, [](std::size_t i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(16 - i));
    return i * 10;
  });
  ASSERT_EQ(out.size(), 16u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * 10);
}

TEST_F(RunnerTest, PoolRunsEveryJobExactlyOnce) {
  std::atomic<std::uint64_t> sum{0};
  const auto out = run_indexed(100, 8, [&](std::size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
    return i;
  });
  ASSERT_EQ(out.size(), 100u);
  EXPECT_EQ(sum.load(), 4950u);
}

TEST_F(RunnerTest, PoolRethrowsLowestIndexedFailure) {
  // Jobs 3 and 7 throw; job 3's exception must surface regardless of
  // scheduling, and the healthy jobs must still have run.
  std::atomic<int> ran{0};
  try {
    run_indexed(10, 4, [&](std::size_t i) -> int {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (i == 3) throw std::runtime_error("three");
      if (i == 7) throw std::runtime_error("seven");
      return static_cast<int>(i);
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "three");
  }
  EXPECT_EQ(ran.load(), 10);
}

TEST_F(RunnerTest, PoolSerialPathMatchesParallel) {
  const auto serial = run_indexed(9, 1, [](std::size_t i) { return i * i; });
  const auto parallel = run_indexed(9, 3, [](std::size_t i) { return i * i; });
  EXPECT_EQ(serial, parallel);
}

// ---------------------------------------------------------------------------
// Differential sweeps: serial vs 2 vs 8 workers, byte for byte
// ---------------------------------------------------------------------------

void expect_identical(const SweepOutcome& a, const SweepOutcome& b,
                      const char* what) {
  EXPECT_EQ(a.report.to_json(), b.report.to_json()) << what;
  EXPECT_EQ(a.text, b.text) << what;
  EXPECT_EQ(a.sweep_fingerprint, b.sweep_fingerprint) << what;
  EXPECT_EQ(a.runs, b.runs) << what;
  EXPECT_EQ(a.violations, b.violations) << what;
}

TEST_F(RunnerTest, ChaosSweepIsWorkerCountInvariant) {
  ChaosSweepConfig cfg;
  cfg.seed_lo = 1;
  cfg.seed_hi = 3;  // x 3 workloads x 2 policies = 18 runs
  cfg.out_dir.clear();
  SweepOptions serial;
  serial.workers = 1;
  serial.verbose = true;  // ok-lines carry fingerprints: compare them too
  const auto base = run_chaos_sweep(cfg, serial);
  EXPECT_EQ(base.runs, 18u);
  for (const std::size_t w : {2u, 8u}) {
    SweepOptions opt = serial;
    opt.workers = w;
    expect_identical(base, run_chaos_sweep(cfg, opt),
                     ("chaos workers=" + std::to_string(w)).c_str());
  }
}

TEST_F(RunnerTest, HaSweepIsWorkerCountInvariant) {
  ChaosSweepConfig cfg;
  cfg.seed_lo = 1;
  cfg.seed_hi = 5;  // seeds 1..5 cover all five failover scenarios
  cfg.workloads = {chaos::Workload::kFig10};
  cfg.out_dir.clear();
  SweepOptions serial;
  serial.workers = 1;
  serial.verbose = true;
  const auto base = run_ha_sweep(cfg, serial);
  EXPECT_EQ(base.runs, 10u);
  for (const std::size_t w : {2u, 8u}) {
    SweepOptions opt = serial;
    opt.workers = w;
    expect_identical(base, run_ha_sweep(cfg, opt),
                     ("ha workers=" + std::to_string(w)).c_str());
  }
}

TEST_F(RunnerTest, ServiceSweepIsWorkerCountInvariant) {
  ServiceSweepConfig cfg;
  cfg.seed_lo = 1;
  cfg.seed_hi = 8;
  cfg.tenants = 3;
  cfg.intents = 2;
  SweepOptions serial;
  serial.workers = 1;
  serial.verbose = true;
  const auto base = run_service_sweep(cfg, serial);
  EXPECT_EQ(base.runs, 8u);
  for (const std::size_t w : {2u, 8u}) {
    SweepOptions opt = serial;
    opt.workers = w;
    expect_identical(base, run_service_sweep(cfg, opt),
                     ("service workers=" + std::to_string(w)).c_str());
  }
}

// ---------------------------------------------------------------------------
// Wall-clock surfacing
// ---------------------------------------------------------------------------

TEST_F(RunnerTest, WallClockIsOptInAndOutsideTheFingerprint) {
  ChaosSweepConfig cfg;
  cfg.seed_lo = 1;
  cfg.seed_hi = 1;
  cfg.workloads = {chaos::Workload::kFig10};
  cfg.out_dir.clear();
  SweepOptions plain;
  plain.workers = 1;
  const auto base = run_chaos_sweep(cfg, plain);
  SweepOptions wall = plain;
  wall.wall = true;
  const auto timed = run_chaos_sweep(cfg, wall);
  // Same simulated behaviour…
  EXPECT_EQ(base.sweep_fingerprint, timed.sweep_fingerprint);
  // …but the timed report carries the extra columns/keys.
  const auto json = timed.report.to_json();
  EXPECT_NE(json.find("\"wall_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"chaos.wall_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"chaos.sweep_wall_ms\""), std::string::npos);
  EXPECT_EQ(base.report.to_json().find("wall_ms"), std::string::npos);
  // And the sweep wall is measured whether or not it is reported.
  EXPECT_GT(base.total_wall_ns, 0u);
  EXPECT_GT(timed.total_wall_ns, 0u);
}

}  // namespace
}  // namespace tango::runner
