// Edge-case batch across modules: executor flow control extremes, policy
// total-order consistency, framing under coalescing, wire-size accounting
// for the extended message set, and channel-latency effects.
#include <gtest/gtest.h>

#include <algorithm>

#include "net/network.h"
#include "openflow/codec.h"
#include "scheduler/executor.h"
#include "scheduler/schedulers.h"
#include "switchsim/profiles.h"
#include "tango/probe_engine.h"

namespace tango {
namespace {

namespace profiles = switchsim::profiles;
using core::ProbeEngine;

TEST(ExecutorEdge, WindowOfOneStillCompletesAndOrders) {
  net::Network net;
  const auto s1 = net.add_switch(profiles::switch1());
  sched::RequestDag dag;
  std::vector<std::size_t> chain;
  for (std::uint32_t i = 0; i < 20; ++i) {
    sched::SwitchRequest r;
    r.location = s1;
    r.type = sched::RequestType::kAdd;
    r.priority = static_cast<std::uint16_t>(100 + i);
    r.match = ProbeEngine::probe_match(i);
    r.actions = of::output_to(2);
    const auto id = dag.add(r);
    if (!chain.empty()) dag.add_dependency(chain.back(), id);
    chain.push_back(id);
  }
  sched::DionysusScheduler sched;
  sched::ExecutorOptions options;
  options.per_switch_window = 1;
  const auto report = sched::execute(net, dag, sched, options);
  EXPECT_EQ(report.issued, 20u);
  EXPECT_EQ(report.rejected, 0u);
  EXPECT_EQ(net.sw(s1).total_rules(), 21u);  // + default route
}

TEST(ExecutorEdge, EmptyDagIsANoop) {
  net::Network net;
  net.add_switch(profiles::ovs());
  sched::RequestDag dag;
  sched::DionysusScheduler sched;
  const auto report = sched::execute(net, dag, sched);
  EXPECT_EQ(report.issued, 0u);
  EXPECT_EQ(report.makespan.ns(), 0);
}

TEST(CachePolicyEdge, PrefersInducesConsistentTotalOrder) {
  // Sorting under prefers() must be a strict weak ordering: sort a shuffled
  // set twice from different starting permutations and get the same order.
  const auto policy = tables::LexCachePolicy::lex(
      {{tables::Attribute::kTrafficCount, tables::Direction::kPreferHigh},
       {tables::Attribute::kPriority, tables::Direction::kPreferLow},
       {tables::Attribute::kUseTime, tables::Direction::kPreferHigh}});
  Rng rng(3);
  std::vector<tables::FlowEntry> entries(64);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    entries[i].id = i;
    entries[i].priority = static_cast<std::uint16_t>(rng.uniform_int(1, 5));
    entries[i].attrs.traffic_count = static_cast<std::uint64_t>(rng.uniform_int(0, 4));
    entries[i].attrs.last_use_time = SimTime{rng.uniform_int(0, 1000)};
  }
  auto a = entries;
  auto b = entries;
  rng.shuffle(b);
  auto cmp = [&](const tables::FlowEntry& x, const tables::FlowEntry& y) {
    return policy.prefers(x, y);
  };
  std::sort(a.begin(), a.end(), cmp);
  std::sort(b.begin(), b.end(), cmp);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].id, b[i].id) << i;
}

TEST(FramingEdge, ManyCoalescedFramesInOneFeed) {
  std::vector<std::uint8_t> stream;
  std::vector<of::Message> originals;
  for (std::uint32_t i = 0; i < 50; ++i) {
    of::Message msg{i, of::EchoRequest{{static_cast<std::uint8_t>(i)}}};
    const auto frame = of::encode(msg);
    stream.insert(stream.end(), frame.begin(), frame.end());
    originals.push_back(msg);
  }
  of::FrameAssembler assembler;
  assembler.feed(stream);
  for (std::uint32_t i = 0; i < 50; ++i) {
    const auto frame = assembler.next_frame();
    ASSERT_FALSE(frame.empty()) << i;
    auto decoded = of::decode(frame);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().xid, i);
  }
  EXPECT_TRUE(assembler.next_frame().empty());
  EXPECT_EQ(assembler.buffered(), 0u);
}

TEST(WireSizeEdge, ExtendedMessagesAccountExactly) {
  const of::MessageBody bodies[] = {
      of::MessageBody{of::GetConfigReply{}},
      of::MessageBody{of::PortStatus{}},
      of::MessageBody{of::PortMod{}},
      of::MessageBody{of::Vendor{1, {1, 2, 3}}},
      of::MessageBody{of::AggregateStatsReply{}},
      of::MessageBody{of::DescStatsRequest{}},
      of::MessageBody{of::PortStatsReply{{of::PortStatsEntry{}}}},
  };
  for (const auto& body : bodies) {
    const of::Message msg{9, body};
    EXPECT_EQ(of::wire_size(msg), of::encode(msg).size());
  }
  // Known layouts: port_status = 8 header + 8 + 48 phy_port.
  EXPECT_EQ(of::wire_size(of::Message{0, of::PortStatus{}}), 64u);
  // port_stats entry = 8 + 4 stats header... entry is 72 bytes.
  EXPECT_EQ(of::wire_size(of::Message{0, of::PortStatsReply{{of::PortStatsEntry{}}}}),
            8u + 4u + 72u);
}

TEST(ChannelEdge, ControlLatencyShiftsCompletionTimes) {
  auto run = [](SimDuration latency) {
    net::Network net(latency);
    auto profile = profiles::switch1();
    profile.costs.jitter_frac = 0;
    const auto id = net.add_switch(profile);
    return (net.install(id, ProbeEngine::probe_add(0)).completed_at -
            SimTime{})
        .ms();
  };
  const double fast = run(micros(100));
  const double slow = run(millis(10));
  // One-way latency difference appears once on the send path.
  EXPECT_NEAR(slow - fast, 9.9, 0.2);
}

TEST(TopologyEdge, LinkBetweenIgnoresDownLinks) {
  net::Topology topo;
  topo.add_node("a");
  topo.add_node("b");
  const auto l1 = topo.add_link(0, 1);
  const auto l2 = topo.add_link(0, 1);  // parallel link
  topo.set_link_state(l1, false);
  const auto found = topo.link_between(0, 1);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, l2);
  topo.set_link_state(l2, false);
  EXPECT_FALSE(topo.link_between(0, 1).has_value());
}

TEST(TopologyEdge, PortForLinkStaysWithinSwitchPorts) {
  for (std::size_t link = 0; link < 100; ++link) {
    const auto port = net::port_for_link(link);
    EXPECT_GE(port, 1);
    EXPECT_LE(port, 7);
  }
}

TEST(SwitchEdge, ZeroJitterIsFullyDeterministic) {
  auto profile = profiles::switch1();
  profile.costs.jitter_frac = 0;
  profile.paths.jitter_frac = 0;
  switchsim::SimulatedSwitch a(1, profile, 1);
  switchsim::SimulatedSwitch b(2, profile, 999);  // different seed: no effect
  const auto oa = a.apply_flow_mod(ProbeEngine::probe_add(0), SimTime{});
  const auto ob = b.apply_flow_mod(ProbeEngine::probe_add(0), SimTime{});
  EXPECT_EQ(oa.processing_time.ns(), ob.processing_time.ns());
}

TEST(SchedulerEdge, SingleReadyRequestAnyPattern) {
  sched::RequestDag dag;
  sched::SwitchRequest r;
  r.location = 1;
  r.type = sched::RequestType::kMod;
  r.match = ProbeEngine::probe_match(0);
  const auto id = dag.add(r);
  sched::BasicTangoScheduler sched({});
  const auto order = sched.order(dag, {id});
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], id);
}

}  // namespace
}  // namespace tango
