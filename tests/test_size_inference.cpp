// End-to-end tests of the flow-table size inference (paper Algorithm 1).
//
// The headline claim is accuracy within 5% of the true table size across
// diverse cache policies; the parameterized sweep below checks it against
// the policy-cache model, and dedicated tests cover the TCAM-only,
// FIFO-two-level (Switch #1), and OVS (unbounded) architectures.
#include <gtest/gtest.h>

#include <cmath>

#include "net/network.h"
#include "switchsim/profiles.h"
#include "tango/size_inference.h"

namespace tango::core {
namespace {

namespace profiles = switchsim::profiles;

SizeInferenceResult run_inference(const switchsim::SwitchProfile& profile,
                                  SizeInferenceConfig config = {}) {
  net::Network net;
  const auto id = net.add_switch(profile);
  ProbeEngine probe(net, id);
  return infer_sizes(probe, config);
}

double relative_error(double estimated, double truth) {
  return std::abs(estimated - truth) / truth;
}

TEST(SizeInference, TcamOnlyExactViaRejection) {
  // A reject-at-capacity switch reveals its size exactly: one cluster, and
  // installed == capacity.
  auto profile = profiles::switch2();
  profile.cache_levels[0].capacity_slots = 512;  // 256 double-wide entries
  profile.install_default_route = false;
  const auto result = run_inference(profile);
  EXPECT_FALSE(result.hit_rule_cap);
  EXPECT_EQ(result.installed, 256u);
  ASSERT_EQ(result.clusters.size(), 1u);
  EXPECT_DOUBLE_EQ(result.layer_sizes[0], 256.0);
}

TEST(SizeInference, Switch1TcamWithinFivePercent) {
  // Two-level FIFO switch: TCAM holds 2047 probe rules (double-wide 4096
  // slots minus the default route), the rest spill into software.
  auto profile = profiles::switch1();
  SizeInferenceConfig config;
  config.max_rules = 4096;
  const auto result = run_inference(profile, config);
  EXPECT_TRUE(result.hit_rule_cap);  // software table never rejects
  ASSERT_EQ(result.clusters.size(), 2u);
  EXPECT_LT(relative_error(result.layer_sizes[0], 2047.0), 0.05)
      << "estimated " << result.layer_sizes[0];
}

TEST(SizeInference, OvsLooksUnbounded) {
  SizeInferenceConfig config;
  config.max_rules = 512;
  const auto result = run_inference(profiles::ovs(), config);
  EXPECT_TRUE(result.hit_rule_cap);
  EXPECT_EQ(result.installed, 512u);
  // Every stage-1 probe warmed a microflow, so sampled probes all hit the
  // kernel fast path: a single latency band.
  EXPECT_EQ(result.clusters.size(), 1u);
}

TEST(SizeInference, MultiLevelSwitchFindsAllThreeBands) {
  const auto profile = profiles::switch2_multilevel();
  SizeInferenceConfig config;
  config.max_rules = 3000;
  const auto result = run_inference(profile, config);
  ASSERT_EQ(result.clusters.size(), 3u);
  EXPECT_LT(relative_error(result.layer_sizes[0], 750.0), 0.08);
  EXPECT_LT(relative_error(result.layer_sizes[1], 750.0), 0.08);
  // Remainder: m - fast tiers.
  const double expected_sw = static_cast<double>(result.installed) - 1500.0;
  EXPECT_LT(relative_error(result.layer_sizes[2], expected_sw), 0.12);
}

TEST(SizeInference, ProbingOverheadIsLinear) {
  // Asymptotic-optimality check: messages and probe packets are O(m) with
  // a small constant, not O(m log m) or worse.
  auto profile = profiles::switch2();
  profile.cache_levels[0].capacity_slots = 1024;  // 512 entries
  profile.install_default_route = false;
  const auto result = run_inference(profile);
  const double m = static_cast<double>(result.installed);
  EXPECT_LT(static_cast<double>(result.messages_used), 10.0 * m + 500.0);
  EXPECT_LT(static_cast<double>(result.probe_packets), 8.0 * m + 500.0);
}

TEST(SizeInference, EmptySwitchZeroCapacity) {
  auto profile = profiles::switch2();
  profile.cache_levels[0].capacity_slots = 0;
  profile.install_default_route = false;
  const auto result = run_inference(profile);
  EXPECT_EQ(result.installed, 0u);
  EXPECT_TRUE(result.layer_sizes.empty());
}

// ---------------------------------------------------------------------------
// The 5% accuracy claim, swept across cache sizes and replacement policies
// (the paper's point: the estimator works *despite* diverse caching).
// ---------------------------------------------------------------------------

struct SweepCase {
  const char* policy_name;
  tables::LexCachePolicy policy;
  std::size_t cache_size;
};

class SizeAccuracy : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SizeAccuracy, WithinFivePercent) {
  const auto& param = GetParam();
  const auto profile = profiles::policy_cache("sweep", {param.cache_size},
                                              param.policy);
  SizeInferenceConfig config;
  config.max_rules = param.cache_size * 3;
  const auto result = run_inference(profile, config);
  ASSERT_EQ(result.clusters.size(), 2u)
      << "expected cache + software bands for " << param.policy_name;
  EXPECT_LT(relative_error(result.layer_sizes[0],
                           static_cast<double>(param.cache_size)),
            0.05)
      << param.policy_name << "/" << param.cache_size << " estimated "
      << result.layer_sizes[0];
}

std::string sweep_name(const ::testing::TestParamInfo<SweepCase>& info) {
  return std::string(info.param.policy_name) + "_" +
         std::to_string(info.param.cache_size);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSizes, SizeAccuracy,
    ::testing::Values(
        SweepCase{"fifo", tables::LexCachePolicy::fifo(), 128},
        SweepCase{"fifo", tables::LexCachePolicy::fifo(), 500},
        SweepCase{"lru", tables::LexCachePolicy::lru(), 128},
        SweepCase{"lru", tables::LexCachePolicy::lru(), 500},
        SweepCase{"lfu", tables::LexCachePolicy::lfu(), 250},
        SweepCase{"priority", tables::LexCachePolicy::priority_based(), 250},
        SweepCase{"lex_traffic_then_use",
                  tables::LexCachePolicy::lex(
                      {{tables::Attribute::kTrafficCount,
                        tables::Direction::kPreferHigh},
                       {tables::Attribute::kUseTime,
                        tables::Direction::kPreferHigh}}),
                  300}),
    sweep_name);

}  // namespace
}  // namespace tango::core
