// Tests for switch configuration, port state/counters, PORT_STATUS
// delivery, and the extended statistics (aggregate / description / port).
#include <gtest/gtest.h>

#include "apps/flow_monitor.h"
#include "net/network.h"
#include "switchsim/profiles.h"
#include "tango/probe_engine.h"

namespace tango {
namespace {

namespace profiles = switchsim::profiles;
using core::ProbeEngine;

SimTime at(double sec_value) {
  return SimTime{static_cast<std::int64_t>(sec_value * 1e9)};
}

// ---------------------------------------------------------------------------
// Switch-level behaviour
// ---------------------------------------------------------------------------

TEST(SwitchConfig, GetSetRoundTrip) {
  switchsim::SimulatedSwitch sw(1, profiles::switch2());
  EXPECT_EQ(sw.config().miss_send_len, 128);
  of::SetConfig cfg;
  cfg.flags = 1;
  cfg.miss_send_len = 256;
  sw.set_config(cfg);
  EXPECT_EQ(sw.config().flags, 1);
  EXPECT_EQ(sw.config().miss_send_len, 256);
}

TEST(SwitchPorts, CountersTrackForwardedTraffic) {
  switchsim::SimulatedSwitch sw(1, profiles::switch2());
  sw.apply_flow_mod(ProbeEngine::probe_add(0), at(0));  // output port 2
  of::Packet pkt;
  pkt.header = ProbeEngine::probe_packet(0);  // in_port 1
  sw.forward(pkt, at(1));
  sw.forward(pkt, at(2));

  const auto stats = sw.port_stats(of::kPortNone);
  ASSERT_EQ(stats.entries.size(), profiles::switch2().n_ports);
  const auto& p1 = stats.entries[0];  // port 1
  const auto& p2 = stats.entries[1];  // port 2
  EXPECT_EQ(p1.port_no, 1);
  EXPECT_EQ(p1.rx_packets, 2u);
  EXPECT_GT(p1.rx_bytes, 0u);
  EXPECT_EQ(p2.tx_packets, 2u);
  EXPECT_GT(p2.tx_bytes, 0u);
  EXPECT_EQ(p2.rx_packets, 0u);

  // Single-port query.
  const auto one = sw.port_stats(2);
  ASSERT_EQ(one.entries.size(), 1u);
  EXPECT_EQ(one.entries[0].tx_packets, 2u);
}

TEST(SwitchPorts, DownedIngressDropsPackets) {
  switchsim::SimulatedSwitch sw(1, profiles::switch2());
  sw.apply_flow_mod(ProbeEngine::probe_add(0), at(0));
  sw.set_port_link(1, false);
  of::Packet pkt;
  pkt.header = ProbeEngine::probe_packet(0);
  const auto out = sw.forward(pkt, at(1));
  EXPECT_EQ(out.kind, switchsim::ForwardOutcome::Kind::kDropped);
  EXPECT_EQ(sw.port_stats(1).entries[0].rx_dropped, 1u);
  EXPECT_EQ(sw.port_stats(1).entries[0].rx_packets, 0u);
  // Link restoration resumes forwarding.
  sw.set_port_link(1, true);
  EXPECT_EQ(sw.forward(pkt, at(2)).kind,
            switchsim::ForwardOutcome::Kind::kForwarded);
}

TEST(SwitchPorts, DownedEgressCountsTxDrops) {
  switchsim::SimulatedSwitch sw(1, profiles::switch2());
  sw.apply_flow_mod(ProbeEngine::probe_add(0), at(0));  // egress port 2
  sw.set_port_link(2, false);
  of::Packet pkt;
  pkt.header = ProbeEngine::probe_packet(0);
  EXPECT_EQ(sw.forward(pkt, at(1)).kind,
            switchsim::ForwardOutcome::Kind::kDropped);
  EXPECT_EQ(sw.port_stats(2).entries[0].tx_dropped, 1u);
}

TEST(SwitchPorts, LinkTransitionsQueuePortStatusOnce) {
  switchsim::SimulatedSwitch sw(1, profiles::switch2());
  sw.set_port_link(3, false);
  sw.set_port_link(3, false);  // no transition: no second event
  auto events = sw.drain_port_status();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].port.port_no, 3);
  EXPECT_NE(events[0].port.state & of::kPortStateLinkDown, 0u);
  EXPECT_TRUE(sw.drain_port_status().empty());
}

TEST(SwitchPorts, PortModAppliesMaskedConfig) {
  switchsim::SimulatedSwitch sw(1, profiles::switch2());
  of::PortMod pm;
  pm.port_no = 4;
  pm.config = of::kPortConfigDown;
  pm.mask = of::kPortConfigDown;
  sw.apply_port_mod(pm);
  EXPECT_FALSE(sw.port_forwarding(4));
  // Clearing via mask.
  pm.config = 0;
  sw.apply_port_mod(pm);
  EXPECT_TRUE(sw.port_forwarding(4));
  EXPECT_EQ(sw.drain_port_status().size(), 2u);
}

TEST(SwitchStats, AggregateSumsMatchingRules) {
  switchsim::SimulatedSwitch sw(1, profiles::switch2());
  sw.apply_flow_mod(ProbeEngine::probe_add(0), at(0));
  sw.apply_flow_mod(ProbeEngine::probe_add(1), at(0));
  of::Packet pkt;
  pkt.header = ProbeEngine::probe_packet(0);
  sw.forward(pkt, at(1));
  sw.forward(pkt, at(2));
  const auto agg = sw.aggregate_stats(of::Match::any());
  EXPECT_EQ(agg.flow_count, 3u);  // 2 + default route
  EXPECT_EQ(agg.packet_count, 2u);
  EXPECT_GT(agg.byte_count, 0u);
}

TEST(SwitchStats, DescriptionIdentifiesModel) {
  switchsim::SimulatedSwitch sw(7, profiles::switch3());
  const auto desc = sw.description();
  EXPECT_EQ(desc.mfr_desc, "vendor3");
  EXPECT_EQ(desc.hw_desc, "HW Switch #3");
  EXPECT_NE(desc.sw_desc.find("tcam-only"), std::string::npos);
  EXPECT_EQ(desc.serial_num, "sim-7");
}

// ---------------------------------------------------------------------------
// Through the wire (Network sync APIs + unsolicited PORT_STATUS)
// ---------------------------------------------------------------------------

TEST(NetworkPorts, SyncStatsRequests) {
  net::Network net;
  const auto id = net.add_switch(profiles::switch2());
  net.install(id, ProbeEngine::probe_add(0));
  net.probe(id, ProbeEngine::probe_packet(0));

  const auto agg = net.aggregate_stats_sync(id, of::Match::any());
  EXPECT_EQ(agg.flow_count, 2u);
  EXPECT_EQ(agg.packet_count, 1u);

  const auto desc = net.description_sync(id);
  EXPECT_EQ(desc.mfr_desc, "vendor2");

  const auto ports = net.port_stats_sync(id);
  EXPECT_EQ(ports.entries.size(), profiles::switch2().n_ports);
  EXPECT_EQ(ports.entries[0].rx_packets, 1u);

  const auto cfg = net.get_config_sync(id);
  EXPECT_EQ(cfg.miss_send_len, 128);
}

TEST(NetworkPorts, LinkFailureDeliversPortStatusToMonitor) {
  net::Network net;
  const auto a = net.add_switch(profiles::ovs());
  const auto b = net.add_switch(profiles::ovs());
  const auto link = net.topology().add_link(net::Network::node_of(a),
                                            net::Network::node_of(b));
  apps::FlowMonitor monitor(net);

  net.set_link_state(link, false);
  net.run_all();
  ASSERT_EQ(monitor.port_events().size(), 2u);  // both endpoints report
  for (const auto& ev : monitor.port_events()) {
    EXPECT_NE(ev.info.port.state & of::kPortStateLinkDown, 0u);
    EXPECT_EQ(ev.info.port.port_no, net::port_for_link(link));
  }
  EXPECT_FALSE(net.topology().link(link).up);

  monitor.clear();
  net.set_link_state(link, true);
  net.run_all();
  EXPECT_EQ(monitor.port_events().size(), 2u);
  EXPECT_TRUE(net.topology().link(link).up);
}

TEST(NetworkPorts, VendorMessageYieldsBadRequestError) {
  net::Network net;
  const auto id = net.add_switch(profiles::ovs());
  bool got_error = false;
  net.set_unsolicited_handler([&](SwitchId, const of::Message& msg) {
    if (const auto* err = std::get_if<of::ErrorMsg>(&msg.body)) {
      EXPECT_EQ(err->type, of::ErrorType::kBadRequest);
      EXPECT_EQ(err->code, 3);  // OFPBRC_BAD_VENDOR
      got_error = true;
    }
  });
  of::Vendor vendor;
  vendor.vendor_id = 0x00002320;
  vendor.data = {1, 2, 3};
  net.channel(id).send(of::Message{0, vendor});  // xid 0: lands unsolicited
  net.run_all();
  EXPECT_TRUE(got_error);
}

}  // namespace
}  // namespace tango
