// Tests for flow idle/hard timeouts and FLOW_REMOVED delivery.
#include <gtest/gtest.h>

#include "apps/flow_monitor.h"
#include "net/network.h"
#include "switchsim/profiles.h"
#include "tango/probe_engine.h"

namespace tango {
namespace {

namespace profiles = switchsim::profiles;
using core::ProbeEngine;

of::FlowMod timed_add(std::uint32_t index, std::uint16_t idle, std::uint16_t hard,
                      bool notify = true) {
  auto fm = ProbeEngine::probe_add(index);
  fm.idle_timeout = idle;
  fm.hard_timeout = hard;
  fm.flags = notify ? 1 : 0;  // OFPFF_SEND_FLOW_REM
  return fm;
}

SimTime at(double sec_value) { return SimTime{static_cast<std::int64_t>(sec_value * 1e9)}; }

TEST(Timeouts, HardTimeoutExpiresEntry) {
  switchsim::SimulatedSwitch sw(1, profiles::switch2());
  sw.apply_flow_mod(timed_add(0, 0, /*hard=*/5), at(0));
  EXPECT_EQ(sw.total_rules(), 2u);  // + default route
  sw.sweep_timeouts(at(4.9));
  EXPECT_EQ(sw.total_rules(), 2u);
  sw.sweep_timeouts(at(5.1));
  EXPECT_EQ(sw.total_rules(), 1u);
  const auto removals = sw.drain_removals();
  ASSERT_EQ(removals.size(), 1u);
  EXPECT_EQ(removals[0].reason, of::FlowRemovedReason::kHardTimeout);
  EXPECT_EQ(removals[0].match, ProbeEngine::probe_match(0));
}

TEST(Timeouts, IdleTimeoutRefreshedByTraffic) {
  switchsim::SimulatedSwitch sw(1, profiles::switch2());
  sw.apply_flow_mod(timed_add(0, /*idle=*/10, 0), at(0));
  of::Packet pkt;
  pkt.header = ProbeEngine::probe_packet(0);
  // Keep the flow warm past its idle window.
  sw.forward(pkt, at(8));
  sw.sweep_timeouts(at(15));
  EXPECT_EQ(sw.total_rules(), 2u);  // refreshed at t=8, idles at t=18
  sw.sweep_timeouts(at(18.5));
  EXPECT_EQ(sw.total_rules(), 1u);
  const auto removals = sw.drain_removals();
  ASSERT_EQ(removals.size(), 1u);
  EXPECT_EQ(removals[0].reason, of::FlowRemovedReason::kIdleTimeout);
  EXPECT_EQ(removals[0].packet_count, 1u);
}

TEST(Timeouts, NoNotificationWithoutFlag) {
  switchsim::SimulatedSwitch sw(1, profiles::switch2());
  sw.apply_flow_mod(timed_add(0, 0, 5, /*notify=*/false), at(0));
  sw.sweep_timeouts(at(6));
  EXPECT_EQ(sw.total_rules(), 1u);
  EXPECT_TRUE(sw.drain_removals().empty());
}

TEST(Timeouts, PermanentRulesNeverExpire) {
  switchsim::SimulatedSwitch sw(1, profiles::switch2());
  sw.apply_flow_mod(timed_add(0, 0, 0), at(0));
  sw.sweep_timeouts(at(1e6));
  EXPECT_EQ(sw.total_rules(), 2u);
}

TEST(Timeouts, ExpiryInvalidatesMicroflows) {
  switchsim::SimulatedSwitch sw(1, profiles::ovs());
  sw.apply_flow_mod(timed_add(0, 0, 5), at(0));
  of::Packet pkt;
  pkt.header = ProbeEngine::probe_packet(0);
  sw.forward(pkt, at(1));
  EXPECT_EQ(sw.microflow_size(), 1u);
  sw.sweep_timeouts(at(6));
  EXPECT_EQ(sw.microflow_size(), 0u);
  EXPECT_EQ(sw.forward(pkt, at(7)).kind,
            switchsim::ForwardOutcome::Kind::kToController);
}

TEST(Timeouts, FifoSwitchPromotesAfterExpiry) {
  auto profile = profiles::switch1(tables::TcamMode::kSingleWide);
  profile.cache_levels[0].capacity_slots = 3;
  profile.install_default_route = false;
  switchsim::SimulatedSwitch sw(1, profile);
  // 3 short-lived TCAM entries, 2 permanent software entries behind them.
  for (std::uint32_t i = 0; i < 3; ++i) sw.apply_flow_mod(timed_add(i, 0, 5), at(i * 0.001));
  for (std::uint32_t i = 3; i < 5; ++i) {
    sw.apply_flow_mod(ProbeEngine::probe_add(i), at(0.01 + i * 0.001));
  }
  EXPECT_EQ(sw.level_size(0), 3u);
  EXPECT_EQ(sw.software_size(), 2u);
  sw.sweep_timeouts(at(6));
  // All TCAM entries expired; both software entries were promoted.
  EXPECT_EQ(sw.level_size(0), 2u);
  EXPECT_EQ(sw.software_size(), 0u);
}

TEST(Timeouts, DeliveredToControllerViaChannel) {
  net::Network net;
  const auto id = net.add_switch(profiles::switch2());
  apps::FlowMonitor monitor(net);

  net.install(id, timed_add(0, 0, /*hard=*/2));
  net.install(id, timed_add(1, 0, /*hard=*/2));
  EXPECT_EQ(monitor.removal_count(), 0u);

  // Advance simulated time past the timeout, then poke the switch (sweeps
  // are lazy: they run on the next interaction).
  net.events().schedule_at(SimTime{seconds(3).ns()}, [] {});
  net.run_all();
  net.barrier_sync(id);
  net.run_all();
  ASSERT_EQ(monitor.removal_count(), 2u);
  EXPECT_EQ(monitor.removals()[0].switch_id, id);
  EXPECT_EQ(monitor.removals()[0].info.reason,
            of::FlowRemovedReason::kHardTimeout);
}

TEST(Timeouts, ExpiredRuleStopsForwarding) {
  net::Network net;
  const auto id = net.add_switch(profiles::switch2());
  net.install(id, timed_add(0, 0, 1));
  const auto before = net.probe(id, ProbeEngine::probe_packet(0));
  EXPECT_EQ(before.outcome.kind, switchsim::ForwardOutcome::Kind::kForwarded);
  net.events().schedule_at(SimTime{seconds(2).ns()}, [] {});
  net.run_all();
  const auto after = net.probe(id, ProbeEngine::probe_packet(0));
  EXPECT_EQ(after.outcome.kind, switchsim::ForwardOutcome::Kind::kToController);
}

TEST(Timeouts, FlowMonitorStatsHelpers) {
  net::Network net;
  const auto id = net.add_switch(profiles::switch2());
  apps::FlowMonitor monitor(net);
  net.install(id, ProbeEngine::probe_add(0));
  net.install(id, ProbeEngine::probe_add(1));
  net.probe(id, ProbeEngine::probe_packet(0));
  net.probe(id, ProbeEngine::probe_packet(0));
  net.probe(id, ProbeEngine::probe_packet(1));
  EXPECT_EQ(monitor.total_packets(id, of::Match::any()), 3u);
  EXPECT_EQ(monitor.reported_active_rules(id), 3u);  // 2 + default route
}

}  // namespace
}  // namespace tango
