// Round-trip and robustness tests for the OpenFlow 1.0 wire codec.
#include <gtest/gtest.h>

#include <algorithm>

#include "openflow/codec.h"
#include "openflow/packet.h"

namespace tango::of {
namespace {

Match sample_match() {
  Match m;
  m.with_in_port(7);
  m.with_dl_src({1, 2, 3, 4, 5, 6});
  m.with_dl_type(0x0800);
  m.with_nw_proto(6);
  m.set_nw_src_prefix(0x0a000000, 24);
  m.set_nw_dst_prefix(0xc0a80000, 16);
  m.with_tp_dst(443);
  return m;
}

template <typename Body>
Body roundtrip(const Body& body, std::uint32_t xid = 0x1234) {
  const auto frame = encode(Message{xid, body});
  // Header sanity: version, length field == frame size.
  EXPECT_EQ(frame[0], kVersion);
  EXPECT_EQ((static_cast<std::size_t>(frame[2]) << 8) | frame[3], frame.size());
  auto decoded = decode(frame);
  EXPECT_TRUE(decoded.ok()) << (decoded.ok() ? "" : decoded.error());
  EXPECT_EQ(decoded.value().xid, xid);
  const Body* out = std::get_if<Body>(&decoded.value().body);
  EXPECT_NE(out, nullptr);
  return out != nullptr ? *out : Body{};
}

TEST(Codec, Hello) { EXPECT_EQ(roundtrip(Hello{}), Hello{}); }

TEST(Codec, EchoCarriesPayload) {
  EchoRequest req;
  req.payload = {1, 2, 3, 4, 5};
  EXPECT_EQ(roundtrip(req), req);
  EchoReply rep;
  rep.payload = {9, 8};
  EXPECT_EQ(roundtrip(rep), rep);
}

TEST(Codec, ErrorMessage) {
  ErrorMsg err;
  err.type = ErrorType::kFlowModFailed;
  err.code = static_cast<std::uint16_t>(FlowModFailedCode::kAllTablesFull);
  err.data = {'f', 'u', 'l', 'l'};
  EXPECT_EQ(roundtrip(err), err);
}

TEST(Codec, FeaturesRoundTrip) {
  EXPECT_EQ(roundtrip(FeaturesRequest{}), FeaturesRequest{});
  FeaturesReply reply;
  reply.datapath_id = 0xdeadbeefcafe;
  reply.n_buffers = 256;
  reply.n_tables = 3;
  reply.capabilities = 0xc7;
  reply.actions = 0xfff;
  PhyPort port;
  port.port_no = 4;
  port.hw_addr = {2, 0, 0, 0, 0, 4};
  port.name = "port4";
  port.curr = 0x40;
  reply.ports = {port, port};
  EXPECT_EQ(roundtrip(reply), reply);
}

TEST(Codec, FlowModAllFields) {
  FlowMod fm;
  fm.match = sample_match();
  fm.cookie = 0x1122334455667788ULL;
  fm.command = FlowModCommand::kModifyStrict;
  fm.idle_timeout = 30;
  fm.hard_timeout = 600;
  fm.priority = 4321;
  fm.buffer_id = 77;
  fm.out_port = 9;
  fm.flags = 1;
  fm.actions = {ActionOutput{2, 0xffff}, ActionSetVlanVid{100},
                ActionSetDlSrc{{9, 8, 7, 6, 5, 4}}, ActionSetNwDst{0x01020304},
                ActionStripVlan{}};
  EXPECT_EQ(roundtrip(fm), fm);
}

TEST(Codec, FlowModEmptyActionsIsDrop) {
  FlowMod fm;
  fm.match = sample_match();
  fm.actions = {};
  const auto out = roundtrip(fm);
  EXPECT_TRUE(out.actions.empty());
}

TEST(Codec, FlowRemoved) {
  FlowRemoved fr;
  fr.match = sample_match();
  fr.cookie = 42;
  fr.priority = 100;
  fr.reason = FlowRemovedReason::kIdleTimeout;
  fr.duration_sec = 12;
  fr.duration_nsec = 345;
  fr.idle_timeout = 30;
  fr.packet_count = 1000;
  fr.byte_count = 64000;
  EXPECT_EQ(roundtrip(fr), fr);
}

TEST(Codec, PacketInCarriesData) {
  PacketIn pin;
  pin.buffer_id = kNoBuffer;
  pin.total_len = 60;
  pin.in_port = 3;
  pin.reason = PacketInReason::kNoMatch;
  pin.data = {0xde, 0xad, 0xbe, 0xef};
  EXPECT_EQ(roundtrip(pin), pin);
}

TEST(Codec, PacketOutActionsAndData) {
  PacketOut po;
  po.buffer_id = kNoBuffer;
  po.in_port = 1;
  po.actions = {ActionOutput{kPortTable, 0}};
  po.data = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(roundtrip(po), po);
}

TEST(Codec, Barriers) {
  EXPECT_EQ(roundtrip(BarrierRequest{}), BarrierRequest{});
  EXPECT_EQ(roundtrip(BarrierReply{}), BarrierReply{});
}

TEST(Codec, FlowStats) {
  FlowStatsRequest req;
  req.match = sample_match();
  req.table_id = 0xff;
  req.out_port = kPortNone;
  EXPECT_EQ(roundtrip(req), req);

  FlowStatsReply reply;
  FlowStatsEntry e;
  e.table_id = 1;
  e.match = sample_match();
  e.duration_sec = 5;
  e.priority = 9;
  e.cookie = 0xabc;
  e.packet_count = 12;
  e.byte_count = 768;
  e.actions = {ActionOutput{2, 0xffff}};
  reply.entries = {e, e};
  EXPECT_EQ(roundtrip(reply), reply);
}

// The readback path of the crash reconciler: an empty table must decode as
// an empty reply, not an error (a freshly rebooted agent legitimately
// answers with zero entries besides whatever the reconciler filters out).
TEST(Codec, FlowStatsEmptyReply) {
  const auto out = roundtrip(FlowStatsReply{});
  EXPECT_TRUE(out.entries.empty());
}

TEST(Codec, FlowStatsMultiEntryDistinct) {
  FlowStatsReply reply;
  for (std::uint32_t i = 0; i < 5; ++i) {
    FlowStatsEntry e;
    e.table_id = static_cast<std::uint8_t>(i);
    e.match = Match::any().with_in_port(static_cast<std::uint16_t>(i + 1));
    e.priority = static_cast<std::uint16_t>(100 * i);
    e.cookie = (std::uint64_t{7} << 32) | i;  // txn-style cookie
    e.packet_count = i;
    if (i % 2 == 0) e.actions = {ActionOutput{static_cast<std::uint16_t>(i), 0}};
    reply.entries.push_back(e);
  }
  EXPECT_EQ(roundtrip(reply), reply);
}

// Per-entry truncation: the outer frame length is consistent, but an entry
// header lies about its own length. Offsets: OF header 8, stats type+flags
// 4, so the first entry's length field sits at bytes 12-13.
TEST(Codec, FlowStatsRejectsTruncatedEntry) {
  FlowStatsReply reply;
  FlowStatsEntry e;
  e.match = sample_match();
  e.priority = 9;
  reply.entries = {e};  // no actions: entry is exactly 88 bytes
  const auto frame = encode(Message{1, reply});
  ASSERT_EQ(frame.size(), 8u + 4u + 88u);

  // Entry claims fewer bytes than the fixed entry header.
  auto undersized = frame;
  undersized[12] = 0;
  undersized[13] = 40;
  EXPECT_FALSE(decode(undersized).ok());

  // Entry claims more bytes than the frame holds.
  auto oversized = frame;
  oversized[12] = 0;
  oversized[13] = 96;
  EXPECT_FALSE(decode(oversized).ok());

  // Frame cut mid-entry (header length field kept consistent): the decoder
  // must reject the partial entry rather than read past the buffer.
  auto cut = frame;
  cut.resize(frame.size() - 4);
  cut[2] = static_cast<std::uint8_t>(cut.size() >> 8);
  cut[3] = static_cast<std::uint8_t>(cut.size());
  EXPECT_FALSE(decode(cut).ok());
}

TEST(Codec, TableStats) {
  EXPECT_EQ(roundtrip(TableStatsRequest{}), TableStatsRequest{});
  TableStatsReply reply;
  TableStatsEntry e;
  e.table_id = 0;
  e.name = "tcam";
  e.wildcards = kWildcardAll;
  e.max_entries = 2048;
  e.active_count = 17;
  e.lookup_count = 123456;
  e.matched_count = 120000;
  reply.entries = {e};
  EXPECT_EQ(roundtrip(reply), reply);
}

TEST(Codec, ConfigMessages) {
  EXPECT_EQ(roundtrip(GetConfigRequest{}), GetConfigRequest{});
  GetConfigReply reply;
  reply.flags = 1;
  reply.miss_send_len = 512;
  EXPECT_EQ(roundtrip(reply), reply);
  SetConfig cfg;
  cfg.miss_send_len = 64;
  EXPECT_EQ(roundtrip(cfg), cfg);
}

TEST(Codec, PortStatusAndMod) {
  PortStatus status;
  status.reason = PortReason::kModify;
  status.port.port_no = 3;
  status.port.name = "port3";
  status.port.state = kPortStateLinkDown;
  EXPECT_EQ(roundtrip(status), status);

  PortMod pm;
  pm.port_no = 5;
  pm.hw_addr = {1, 2, 3, 4, 5, 6};
  pm.config = kPortConfigDown;
  pm.mask = kPortConfigDown | kPortConfigNoFlood;
  pm.advertise = 0x40;
  EXPECT_EQ(roundtrip(pm), pm);
}

TEST(Codec, VendorCarriesOpaqueData) {
  Vendor v;
  v.vendor_id = 0x00002320;
  v.data = {0xde, 0xad, 0xbe, 0xef};
  EXPECT_EQ(roundtrip(v), v);
}

TEST(Codec, AggregateStats) {
  AggregateStatsRequest req;
  req.match = sample_match();
  EXPECT_EQ(roundtrip(req), req);
  AggregateStatsReply reply;
  reply.packet_count = 12345;
  reply.byte_count = 9876543;
  reply.flow_count = 42;
  EXPECT_EQ(roundtrip(reply), reply);
}

TEST(Codec, DescStats) {
  EXPECT_EQ(roundtrip(DescStatsRequest{}), DescStatsRequest{});
  DescStatsReply reply;
  reply.mfr_desc = "vendor1";
  reply.hw_desc = "HW Switch #1";
  reply.sw_desc = "tango-switchsim";
  reply.serial_num = "sim-1";
  reply.dp_desc = "datapath 1";
  EXPECT_EQ(roundtrip(reply), reply);
}

TEST(Codec, PortStats) {
  PortStatsRequest req;
  req.port_no = 7;
  EXPECT_EQ(roundtrip(req), req);
  PortStatsReply reply;
  PortStatsEntry e;
  e.port_no = 7;
  e.rx_packets = 100;
  e.tx_packets = 90;
  e.rx_bytes = 6400;
  e.tx_bytes = 5760;
  e.rx_dropped = 1;
  reply.entries = {e, e};
  EXPECT_EQ(roundtrip(reply), reply);
}

TEST(Codec, RejectsTruncatedFrame) {
  const auto frame = encode(Message{1, FlowMod{}});
  auto short_frame = frame;
  short_frame.resize(frame.size() - 4);
  EXPECT_FALSE(decode(short_frame).ok());
}

TEST(Codec, RejectsBadVersion) {
  auto frame = encode(Message{1, Hello{}});
  frame[0] = 0x04;
  EXPECT_FALSE(decode(frame).ok());
}

TEST(Codec, RejectsLengthMismatch) {
  auto frame = encode(Message{1, Hello{}});
  frame.push_back(0);  // extra trailing byte
  EXPECT_FALSE(decode(frame).ok());
}

TEST(Codec, RejectsBogusActionLength) {
  auto frame = encode(Message{1, []{
    FlowMod fm;
    fm.actions = {ActionOutput{1, 0}};
    return fm;
  }()});
  // Corrupt the action length field (offset: header 8 + body 64 + 2).
  frame[8 + 64 + 2] = 0;
  frame[8 + 64 + 3] = 3;  // len 3 < 8
  EXPECT_FALSE(decode(frame).ok());
}

TEST(Codec, WireSizeMatchesEncoding) {
  FlowMod fm;
  fm.actions = {ActionOutput{1, 0}, ActionSetDlDst{{1, 2, 3, 4, 5, 6}}};
  const Message msg{5, fm};
  EXPECT_EQ(wire_size(msg), encode(msg).size());
  EXPECT_EQ(wire_size(Action{ActionOutput{1, 0}}), 8u);
  EXPECT_EQ(wire_size(Action{ActionSetDlDst{}}), 16u);
}

/// One populated sample of every message type: the computed-size visitor
/// must agree with the byte count the encode visitor actually produces, or
/// batched buffers would carry wrong length pre-reservations and the
/// computed sizes could not be trusted for accounting.
std::vector<Message> all_message_samples() {
  std::vector<Message> msgs;
  std::uint32_t xid = 1;
  auto add = [&](MessageBody body) { msgs.push_back(Message{xid++, std::move(body)}); };

  add(Hello{});
  add(EchoRequest{{1, 2, 3}});
  add(EchoReply{{4, 5}});
  ErrorMsg err;
  err.code = 2;
  err.data = {9, 9, 9};
  add(err);
  add(FeaturesRequest{});
  FeaturesReply fr;
  fr.datapath_id = 42;
  fr.ports.resize(3);
  fr.ports[0].name = "eth0";
  add(fr);
  FlowMod fm;
  fm.match = sample_match();
  fm.actions = {ActionOutput{1, 64}, ActionSetDlSrc{{1, 2, 3, 4, 5, 6}},
                ActionSetNwDst{0x0a000001}};
  add(fm);
  FlowRemoved frm;
  frm.match = sample_match();
  frm.packet_count = 7;
  add(frm);
  PacketIn pin;
  pin.data = {1, 2, 3, 4, 5};
  add(pin);
  PacketOut pout;
  pout.actions = {ActionStripVlan{}, ActionSetVlanVid{12}};
  pout.data = {0xde, 0xad};
  add(pout);
  add(BarrierRequest{});
  add(BarrierReply{});
  FlowStatsRequest fsr;
  fsr.match = sample_match();
  add(fsr);
  FlowStatsReply fsrep;
  fsrep.entries.resize(2);
  fsrep.entries[0].match = sample_match();
  fsrep.entries[0].actions = {ActionOutput{2, 0}};
  add(fsrep);
  add(GetConfigRequest{});
  add(GetConfigReply{});
  add(SetConfig{});
  PortStatus ps;
  ps.port.name = "eth1";
  add(ps);
  add(PortMod{});
  Vendor vend;
  vend.vendor_id = 0x00002320;
  vend.data = {1, 2, 3, 4};
  add(vend);
  AggregateStatsRequest agg;
  agg.match = sample_match();
  add(agg);
  AggregateStatsReply aggr;
  aggr.flow_count = 3;
  add(aggr);
  add(DescStatsRequest{});
  DescStatsReply desc;
  desc.mfr_desc = "tango";
  desc.serial_num = "0001";
  add(desc);
  PortStatsRequest psr;
  add(psr);
  PortStatsReply psrep;
  psrep.entries.resize(4);
  add(psrep);
  add(TableStatsRequest{});
  TableStatsReply tsr;
  tsr.entries.resize(2);
  tsr.entries[0].name = "tcam";
  add(tsr);
  return msgs;
}

TEST(Codec, WireSizeMatchesEncodingForAllMessageTypes) {
  const auto msgs = all_message_samples();
  ASSERT_EQ(msgs.size(), 28u);  // one per MessageBody alternative
  for (const auto& msg : msgs) {
    EXPECT_EQ(wire_size(msg), encode(msg).size())
        << "message type " << static_cast<int>(type_of(msg.body));
  }
}

TEST(Codec, EncodeIntoAppendsIdenticalFrame) {
  const auto msgs = all_message_samples();
  std::vector<std::uint8_t> out = {0xaa, 0xbb};  // pre-existing bytes survive
  for (const auto& msg : msgs) {
    const auto expect = encode(msg);
    const std::size_t before = out.size();
    encode_into(msg, out);
    ASSERT_EQ(out.size(), before + expect.size());
    EXPECT_TRUE(std::equal(expect.begin(), expect.end(), out.begin() + before));
  }
  EXPECT_EQ(out[0], 0xaa);
  EXPECT_EQ(out[1], 0xbb);
}

TEST(Codec, EncodeBatchEqualsConcatenatedFramesAndReassembles) {
  const auto msgs = all_message_samples();
  std::vector<std::uint8_t> batch;
  const std::size_t bytes = encode_batch(msgs, batch);
  EXPECT_EQ(bytes, batch.size());

  std::vector<std::uint8_t> expect;
  for (const auto& msg : msgs) {
    const auto f = encode(msg);
    expect.insert(expect.end(), f.begin(), f.end());
  }
  EXPECT_EQ(batch, expect);

  // The stream form feeds straight back through the assembler + decoder.
  FrameAssembler assembler;
  assembler.feed(batch);
  for (const auto& msg : msgs) {
    const auto frame = assembler.next_frame();
    ASSERT_FALSE(frame.empty());
    auto decoded = decode(frame);
    ASSERT_TRUE(decoded.ok()) << decoded.error();
    EXPECT_EQ(decoded.value().xid, msg.xid);
    EXPECT_EQ(type_of(decoded.value().body), type_of(msg.body));
  }
  EXPECT_TRUE(assembler.next_frame().empty());
}

TEST(FrameAssemblerTest, ReassemblesSplitFrames) {
  const auto f1 = encode(Message{1, Hello{}});
  const auto f2 = encode(Message{2, BarrierRequest{}});
  std::vector<std::uint8_t> stream = f1;
  stream.insert(stream.end(), f2.begin(), f2.end());

  FrameAssembler asm_;
  // Feed byte by byte.
  for (std::size_t i = 0; i < stream.size(); ++i) {
    asm_.feed(std::span(&stream[i], 1));
  }
  const auto out1 = asm_.next_frame();
  ASSERT_EQ(out1, f1);
  const auto out2 = asm_.next_frame();
  ASSERT_EQ(out2, f2);
  EXPECT_TRUE(asm_.next_frame().empty());
}

TEST(FrameAssemblerTest, PartialFrameYieldsNothing) {
  const auto f = encode(Message{1, FlowMod{}});
  FrameAssembler asm_;
  asm_.feed(std::span(f.data(), f.size() / 2));
  EXPECT_TRUE(asm_.next_frame().empty());
  asm_.feed(std::span(f.data() + f.size() / 2, f.size() - f.size() / 2));
  EXPECT_EQ(asm_.next_frame(), f);
}

TEST(PacketWire, RoundTrip) {
  Packet p;
  p.header.in_port = 2;
  p.header.nw_src = 0x0a000005;
  p.header.nw_dst = 0xc0a80005;
  p.header.tp_dst = 8080;
  p.payload_len = 1400;
  const auto bytes = p.encode();
  auto decoded = Packet::decode(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), p);
  EXPECT_EQ(p.total_len(), Packet::kWireHeaderLen + 1400);
}

TEST(PacketWire, RejectsShortBuffer) {
  std::vector<std::uint8_t> tiny(5, 0);
  EXPECT_FALSE(Packet::decode(tiny).ok());
}

}  // namespace
}  // namespace tango::of
