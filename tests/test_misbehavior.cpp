// Semantic switch misbehavior + knowledge health, end to end.
//
// Three layers under test:
//  1. switchsim::MisbehaviorProfile — the lie/drift engine itself (acks
//     without installing, frozen stats snapshots, fabricated removals,
//     priority skew, latency drift, capacity shrink).
//  2. The knowledge-health loop — a drift event degrades scheduling, the
//     sentinel detects it from free executor cost observations, escalates
//     to a spot-check probe, targeted re-inference restores knowledge, and
//     quarantine lifts; a silently-dropped install is caught only because
//     the quarantined switch's commit was readback-verified.
//  3. Chaos integration — misbehavior schedules are drawn only when the
//     spec opts in (wire-fault draws unchanged), and misbehaving-switch
//     runs replay bit-identically from the same seed.
//
// Everything runs on the deterministic event queue: same inputs, same
// counters, every time.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "chaos/harness.h"
#include "chaos/schedule.h"
#include "net/network.h"
#include "scheduler/executor.h"
#include "scheduler/schedulers.h"
#include "scheduler/transaction.h"
#include "switchsim/misbehavior.h"
#include "switchsim/profiles.h"
#include "tango/probe_engine.h"
#include "tango/tango.h"

namespace tango {
namespace {

namespace profiles = switchsim::profiles;
using core::ProbeEngine;
using switchsim::MisbehaviorEvent;
using switchsim::MisbehaviorKind;
using switchsim::MisbehaviorProfile;

switchsim::SwitchProfile quiet_switch1() {
  auto profile = profiles::switch1();
  profile.costs.jitter_frac = 0;
  profile.paths.jitter_frac = 0;
  return profile;
}

sched::SwitchRequest add_req(SwitchId where, std::uint32_t index) {
  sched::SwitchRequest r;
  r.location = where;
  r.type = sched::RequestType::kAdd;
  r.priority = 0x8000;
  r.match = ProbeEngine::probe_match(index);
  r.actions = of::output_to(2);
  return r;
}

/// Arm a single misbehavior event on `id`, activating at the current
/// virtual time, and run the queue so the activation poke lands.
void arm(net::Network& net, SwitchId id, MisbehaviorKind kind,
         std::size_t count = 1, double magnitude = 0.0) {
  MisbehaviorProfile profile;
  MisbehaviorEvent ev;
  ev.kind = kind;
  ev.at = net.now();
  ev.count = count;
  ev.magnitude = magnitude;
  profile.events.push_back(ev);
  net.set_misbehavior(id, std::move(profile));
  net.run_all();
}

// ---------------------------------------------------------------------------
// The misbehavior engine
// ---------------------------------------------------------------------------

TEST(MisbehaviorEngineTest, SilentInstallDropAcksWithoutInstalling) {
  net::Network net;
  const auto id = net.add_switch(quiet_switch1());
  const auto before = net.sw(id).total_rules();
  arm(net, id, MisbehaviorKind::kSilentInstallDrop, /*count=*/2);

  ProbeEngine probe(net, id);
  for (std::uint32_t i = 0; i < 5; ++i) {
    // Every install is acknowledged as a success...
    EXPECT_TRUE(probe.install(i));
  }
  // ...but the first two never touched the table.
  EXPECT_EQ(net.sw(id).total_rules(), before + 3);
  const auto& stats = net.sw(id).misbehavior_stats();
  EXPECT_EQ(stats.events_activated, 1u);
  EXPECT_EQ(stats.silent_drops, 2u);
}

TEST(MisbehaviorEngineTest, StaleFlowStatsServesFrozenSnapshot) {
  net::Network net;
  const auto id = net.add_switch(quiet_switch1());
  ProbeEngine probe(net, id);
  for (std::uint32_t i = 0; i < 4; ++i) probe.install(i);
  net.barrier_sync(id);
  const auto honest = net.flow_stats_sync(id, of::Match::any());

  // Snapshot frozen now; the delete below will not be visible to the next
  // stats reply.
  arm(net, id, MisbehaviorKind::kStaleFlowStats, /*count=*/1);
  auto del = ProbeEngine::probe_add(0);
  del.command = of::FlowModCommand::kDelete;
  probe.timed_batch({del});

  const auto stale = net.flow_stats_sync(id, of::Match::any());
  EXPECT_EQ(stale.entries.size(), honest.entries.size());  // lie: pre-delete
  const auto truthful = net.flow_stats_sync(id, of::Match::any());
  EXPECT_EQ(truthful.entries.size(), honest.entries.size() - 1);
  EXPECT_EQ(net.sw(id).misbehavior_stats().stale_stats_replies, 1u);
}

TEST(MisbehaviorEngineTest, SpuriousFlowRemovedFabricatesNotices) {
  net::Network net;
  const auto id = net.add_switch(quiet_switch1());
  ProbeEngine probe(net, id);
  for (std::uint32_t i = 0; i < 3; ++i) probe.install(i);
  net.barrier_sync(id);
  const auto before = net.sw(id).total_rules();

  arm(net, id, MisbehaviorKind::kSpuriousFlowRemoved, /*count=*/2);
  net.barrier_sync(id);  // any interaction drains the fabricated notices

  // The notices are lies: every rule is still resident.
  EXPECT_EQ(net.sw(id).total_rules(), before);
  EXPECT_EQ(net.sw(id).misbehavior_stats().spurious_removals, 2u);
}

TEST(MisbehaviorEngineTest, PriorityInversionSkewsInstalledPriority) {
  net::Network net;
  const auto id = net.add_switch(quiet_switch1());
  arm(net, id, MisbehaviorKind::kPriorityInversion, /*count=*/1);

  ProbeEngine probe(net, id);
  EXPECT_TRUE(probe.install(0, 0x4000));
  net.barrier_sync(id);

  // The rule is present but not at the requested priority.
  const auto reply = net.flow_stats_sync(id, of::Match::any());
  bool found = false;
  for (const auto& entry : reply.entries) {
    if (entry.match == ProbeEngine::probe_match(0)) {
      found = true;
      EXPECT_NE(entry.priority, 0x4000);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(net.sw(id).misbehavior_stats().priority_inversions, 1u);
}

TEST(MisbehaviorEngineTest, LatencyDriftScalesOpCosts) {
  net::Network net;
  const auto id = net.add_switch(quiet_switch1());
  ProbeEngine probe(net, id);

  const auto priorities = core::ascending_priorities(20, 0x6000);
  const auto before = probe.timed_batch(core::make_add_batch(0, 20, priorities));
  probe.clear_rules();

  arm(net, id, MisbehaviorKind::kLatencyDrift, 1, /*magnitude=*/2.0);
  const auto after = probe.timed_batch(core::make_add_batch(0, 20, priorities));
  probe.clear_rules();

  // Costs scaled by (1 + 2.0) = 3x; the batch carries some fixed overhead,
  // so assert a conservative 2x.
  EXPECT_GT(after.ns(), before.ns() * 2);
  EXPECT_EQ(net.sw(id).misbehavior_stats().latency_drifts, 1u);
}

TEST(MisbehaviorEngineTest, CapacityShrinkSpillsToSoftwareBacking) {
  net::Network net;
  const auto id = net.add_switch(quiet_switch1());  // software backing
  ProbeEngine probe(net, id);
  for (std::uint32_t i = 0; i < 100; ++i) probe.install(i);
  net.barrier_sync(id);
  const auto before = net.sw(id).total_rules();

  arm(net, id, MisbehaviorKind::kCapacityShrink, 1, /*magnitude=*/0.01);
  net.barrier_sync(id);

  const auto& sw = net.sw(id);
  EXPECT_EQ(sw.misbehavior_stats().capacity_shrinks, 1u);
  EXPECT_GT(sw.misbehavior_stats().entries_evicted, 0u);
  // Displaced entries spilled into the software table: nothing was lost.
  EXPECT_EQ(sw.total_rules(), before);
  EXPECT_LE(sw.level_size(0), sw.level_capacity(0));
  EXPECT_GT(sw.software_size(), 0u);
}

// ---------------------------------------------------------------------------
// The knowledge-health loop, end to end
// ---------------------------------------------------------------------------

/// Drift event degrades scheduling -> mispredictions accumulate as free
/// signals -> sentinel escalates to a spot check -> drift confirmed ->
/// targeted re-inference of just the cost property -> quarantine lifts.
TEST(SentinelLoopTest, DriftDetectedReinferredAndQuarantineLifted) {
  net::Network net;
  const auto id = net.add_switch(quiet_switch1());
  core::TangoController tango(net);
  core::LearnOptions options;
  options.size.max_rules = 512;
  options.infer_policy = false;
  const double before_ms = tango.learn(id, options).costs.add_ascending_ms;
  ProbeEngine(net, id).clear_rules();
  EXPECT_FALSE(tango.health().needs_probe(id));

  // "Firmware rot": every rule op is now 3x slower.
  arm(net, id, MisbehaviorKind::kLatencyDrift, 1, /*magnitude=*/2.0);

  // A sequential chain keeps one op in flight at a time, so each clean
  // completion yields a usable cost observation against the learned hint.
  sched::RequestDag dag;
  std::optional<std::size_t> prev;
  for (std::uint32_t i = 0; i < 6; ++i) {
    const auto node = dag.add(add_req(id, i));
    if (prev.has_value()) dag.add_dependency(*prev, node);
    prev = node;
  }
  sched::TransactionOptions topts;
  topts.txn_id = 41;
  auto txn = tango.begin_update(std::move(dag), topts);
  sched::DionysusScheduler scheduler;
  const auto report = txn.commit(scheduler);
  EXPECT_TRUE(report.committed);

  // Free signals accumulated past the escalation threshold; the penalties
  // already pushed the switch into quarantine.
  const auto* h = tango.health().health(id);
  ASSERT_NE(h, nullptr);
  EXPECT_GE(h->cost_mispredictions, 3u);
  EXPECT_TRUE(tango.health().needs_probe(id));
  EXPECT_TRUE(tango.health().quarantined(id));

  // The sentinel pays for the probe, confirms, re-infers only kCosts, and
  // the restored confidence lifts the quarantine.
  const auto actions = tango.run_sentinel(options);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].switch_id, id);
  EXPECT_TRUE(actions[0].probed);
  EXPECT_GT(actions[0].drift, 0.25);
  EXPECT_TRUE(actions[0].confirmed);
  EXPECT_TRUE(actions[0].reinferred);
  EXPECT_FALSE(actions[0].quarantined);
  EXPECT_FALSE(tango.health().quarantined(id));

  // Knowledge reconverged to the drifted reality.
  const double after_ms = tango.knowledge(id)->costs.add_ascending_ms;
  EXPECT_GT(after_ms, before_ms * 2.0);
  EXPECT_LT(tango.spot_check(id), 0.25);

  const auto* post = tango.health().health(id);
  ASSERT_NE(post, nullptr);
  EXPECT_EQ(post->spot_checks, 1u);
  EXPECT_EQ(post->drift_confirmed, 1u);
  EXPECT_EQ(post->reinferences, 1u);
  EXPECT_EQ(post->quarantines, 1u);
  EXPECT_EQ(post->quarantine_lifts, 1u);
}

/// A quarantined switch's commit is readback-verified: three acknowledged
///-but-never-installed adds are caught and repaired, the transaction still
/// commits truthfully, and trust recovers through clean verified commits.
TEST(SentinelLoopTest, SilentDropsCaughtByReadbackVerifiedCommit) {
  net::Network net;
  const auto id = net.add_switch(quiet_switch1());
  core::TangoController tango(net);
  core::LearnOptions options;
  options.size.max_rules = 512;
  options.infer_policy = false;
  tango.learn(id, options);
  ProbeEngine(net, id).clear_rules();
  const auto baseline = net.sw(id).total_rules();

  tango.health().suspect(id);
  ASSERT_TRUE(tango.health().quarantined(id));

  // The switch will acknowledge — but silently drop — the next 3 installs.
  arm(net, id, MisbehaviorKind::kSilentInstallDrop, /*count=*/3);

  sched::RequestDag dag;
  for (std::uint32_t i = 0; i < 10; ++i) dag.add(add_req(id, i));
  sched::TransactionOptions topts;
  topts.txn_id = 42;
  auto txn = tango.begin_update(std::move(dag), topts);
  sched::DionysusScheduler scheduler;
  const auto report = txn.commit(scheduler);

  // The readback-verified commit caught the lie and repaired it: the
  // transaction is committed AND every rule is really installed.
  EXPECT_TRUE(report.committed);
  ASSERT_EQ(report.readback_mismatches.count(id), 1u);
  EXPECT_EQ(report.readback_mismatches.at(id), 3u);
  EXPECT_EQ(net.sw(id).misbehavior_stats().silent_drops, 3u);
  EXPECT_EQ(net.sw(id).total_rules(), baseline + 10);

  // Mismatches discredit trust further: still quarantined.
  EXPECT_TRUE(tango.health().quarantined(id));
  const auto* h = tango.health().health(id);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->readback_mismatches, 3u);

  // Clean readback-verified commits rebuild trust until quarantine lifts.
  std::uint32_t next_flow = 10;
  for (int round = 0; round < 6 && tango.health().quarantined(id); ++round) {
    sched::RequestDag clean;
    clean.add(add_req(id, next_flow++));
    sched::TransactionOptions copts;
    copts.txn_id = 100 + static_cast<std::uint32_t>(round);
    auto ctxn = tango.begin_update(std::move(clean), copts);
    const auto crep = ctxn.commit(scheduler);
    EXPECT_TRUE(crep.committed);
    EXPECT_TRUE(crep.readback_mismatches.empty());
  }
  EXPECT_FALSE(tango.health().quarantined(id));
  EXPECT_GE(tango.health().health(id)->quarantine_lifts, 1u);
}

// ---------------------------------------------------------------------------
// Chaos integration: gated draws + bit-identical replay
// ---------------------------------------------------------------------------

bool is_semantic(chaos::FaultKind kind) {
  switch (kind) {
    case chaos::FaultKind::kSilentInstallDrop:
    case chaos::FaultKind::kStaleFlowStats:
    case chaos::FaultKind::kSpuriousFlowRemoved:
    case chaos::FaultKind::kPriorityInversion:
    case chaos::FaultKind::kLatencyDrift:
    case chaos::FaultKind::kCapacityShrink:
      return true;
    default:
      return false;
  }
}

chaos::ChaosSpec mis_spec(std::uint64_t seed, bool misbehavior) {
  chaos::ChaosSpec spec;
  spec.seed = seed;
  spec.workload = chaos::Workload::kFig10;
  spec.policy = sched::RecoveryPolicy::kRollForward;
  spec.horizon = chaos::Horizon::kShort;
  spec.misbehavior = misbehavior;
  return spec;
}

TEST(MisbehaviorChaosTest, SemanticDrawsAreGatedAndWireDrawsUnchanged) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto off = chaos::generate_schedule(mis_spec(seed, false));
    const auto on = chaos::generate_schedule(mis_spec(seed, true));

    for (const auto& ev : off.events) {
      EXPECT_FALSE(is_semantic(ev.kind)) << "seed " << seed;
    }
    std::size_t semantic = 0;
    std::vector<chaos::FaultEvent> wire_only;
    for (const auto& ev : on.events) {
      if (is_semantic(ev.kind)) {
        ++semantic;
        EXPECT_GT(ev.magnitude, 0.0);
      } else {
        wire_only.push_back(ev);
      }
    }
    EXPECT_GE(semantic, 1u) << "seed " << seed;
    // Misbehavior draws come strictly after the wire-fault draws, so the
    // wire events are byte-identical with the flag on or off.
    EXPECT_EQ(wire_only, off.events) << "seed " << seed;
    EXPECT_EQ(on.base_loss, off.base_loss) << "seed " << seed;
  }
}

TEST(MisbehaviorChaosTest, MisbehavingRunsReplayBitIdentically) {
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    const auto schedule = chaos::generate_schedule(mis_spec(seed, true));
    const auto first = chaos::run_chaos(schedule);
    const auto second = chaos::run_chaos(schedule);
    EXPECT_EQ(first.fingerprint, second.fingerprint) << "seed " << seed;
    EXPECT_EQ(first.end_time.ns(), second.end_time.ns()) << "seed " << seed;
    EXPECT_EQ(first.violations.size(), second.violations.size())
        << "seed " << seed;
    EXPECT_EQ(first.sentinel.size(), second.sentinel.size()) << "seed " << seed;
  }
}

TEST(MisbehaviorChaosTest, MisbehaviorSeedsPassEveryOracle) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto schedule = chaos::generate_schedule(mis_spec(seed, true));
    const auto result = chaos::run_chaos(schedule);
    EXPECT_TRUE(result.ok())
        << "seed " << seed << ": "
        << chaos::to_string(result.violations.front());
    // The harness routed the run through the knowledge-health path.
    EXPECT_FALSE(result.misbehavior_stats.empty());
    EXPECT_FALSE(result.sentinel.empty());
  }
}

}  // namespace
}  // namespace tango
