// Tests for the network layer: topology routing, the control channel's
// queueing/barrier semantics, the Network facade, and the B4 graph.
#include <gtest/gtest.h>

#include "net/b4.h"
#include "net/network.h"
#include "net/topology.h"
#include "switchsim/profiles.h"
#include "tango/probe_engine.h"

namespace tango::net {
namespace {

using core::ProbeEngine;
using switchsim::profiles::ovs;
using switchsim::profiles::switch1;
using switchsim::profiles::switch2;

// ---------------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------------

Topology diamond() {
  // 0 - 1 - 3 with a slower detour 0 - 2 - 3.
  Topology t;
  for (int i = 0; i < 4; ++i) t.add_node("n" + std::to_string(i));
  t.add_link(0, 1, micros(10));
  t.add_link(1, 3, micros(10));
  t.add_link(0, 2, micros(100));
  t.add_link(2, 3, micros(100));
  return t;
}

TEST(TopologyTest, ShortestPathPrefersLowLatency) {
  const auto t = diamond();
  const auto path = t.shortest_path(0, 3);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[1], 1u);
}

TEST(TopologyTest, FailoverReroutesThroughDetour) {
  auto t = diamond();
  ASSERT_TRUE(t.fail_link_between(0, 1).has_value());
  const auto path = t.shortest_path(0, 3);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[1], 2u);
}

TEST(TopologyTest, UnreachableReturnsEmpty) {
  auto t = diamond();
  t.fail_link_between(0, 1);
  t.fail_link_between(0, 2);
  EXPECT_TRUE(t.shortest_path(0, 3).empty());
}

TEST(TopologyTest, TrivialPathToSelf) {
  const auto t = diamond();
  const auto path = t.shortest_path(2, 2);
  ASSERT_EQ(path.size(), 1u);
}

TEST(TopologyTest, DisjointPathsAreLinkDisjoint) {
  const auto t = diamond();
  const auto paths = t.disjoint_paths(0, 3, 3);
  ASSERT_EQ(paths.size(), 2u);  // only two exist
  EXPECT_EQ(paths[0][1], 1u);
  EXPECT_EQ(paths[1][1], 2u);
}

TEST(TopologyTest, NeighborsRespectLinkState) {
  auto t = diamond();
  EXPECT_EQ(t.neighbors(0).size(), 2u);
  t.fail_link_between(0, 1);
  EXPECT_EQ(t.neighbors(0).size(), 1u);
}

TEST(B4TopologyTest, TwelveSitesNineteenLinksConnected) {
  const auto t = b4_topology();
  EXPECT_EQ(t.node_count(), 12u);
  EXPECT_EQ(t.link_count(), 19u);
  for (NodeId a = 0; a < 12; ++a) {
    for (NodeId b = a + 1; b < 12; ++b) {
      EXPECT_FALSE(t.shortest_path(a, b).empty()) << a << "->" << b;
    }
  }
}

// ---------------------------------------------------------------------------
// Channel + Network facade
// ---------------------------------------------------------------------------

TEST(NetworkTest, InstallAcceptedAndRejected) {
  Network net;
  auto profile = switch2();
  profile.cache_levels[0].capacity_slots = 4;  // 2 entries
  profile.install_default_route = false;
  const auto sw = net.add_switch(profile);

  EXPECT_TRUE(net.install(sw, ProbeEngine::probe_add(0)).accepted);
  EXPECT_TRUE(net.install(sw, ProbeEngine::probe_add(1)).accepted);
  EXPECT_FALSE(net.install(sw, ProbeEngine::probe_add(2)).accepted);
  EXPECT_EQ(net.sw(sw).total_rules(), 2u);
}

TEST(NetworkTest, InstallAdvancesVirtualTime) {
  Network net;
  const auto sw = net.add_switch(switch1());
  const auto t0 = net.now();
  net.install(sw, ProbeEngine::probe_add(0));
  EXPECT_GT(net.now(), t0);
}

TEST(NetworkTest, CommandsProcessSequentially) {
  Network net;
  auto profile = switch1();
  profile.costs.jitter_frac = 0;
  const auto sw = net.add_switch(profile);

  std::vector<SimTime> completions;
  for (std::uint32_t i = 0; i < 5; ++i) {
    net.post_flow_mod(sw, ProbeEngine::probe_add(i, 0x8000),
                      [&](bool, SimTime at) { completions.push_back(at); });
  }
  net.run_all();
  ASSERT_EQ(completions.size(), 5u);
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_GT(completions[i], completions[i - 1]);
  }
  // Back-to-back same-priority adds: roughly add_same + discounted
  // overhead apart.
  const auto gap = completions[2] - completions[1];
  EXPECT_NEAR(gap.ms(), 0.4 + 0.4 * 0.15, 0.08);
}

TEST(NetworkTest, BarrierWaitsForQueuedCommands) {
  Network net;
  const auto sw = net.add_switch(switch1());
  for (std::uint32_t i = 0; i < 20; ++i) {
    net.post_flow_mod(sw, ProbeEngine::probe_add(i), [](bool, SimTime) {});
  }
  const auto barrier_at = net.barrier_sync(sw);
  EXPECT_GE(barrier_at, net.channel(sw).agent_busy_until());
  EXPECT_EQ(net.sw(sw).total_rules(), 21u);  // 20 + default route
}

TEST(NetworkTest, ProbeMeasuresPathTiers) {
  Network net;
  const auto sw = net.add_switch(ovs());
  net.install(sw, ProbeEngine::probe_add(0));

  const auto miss = net.probe(sw, ProbeEngine::probe_packet(9));
  EXPECT_EQ(miss.outcome.kind, switchsim::ForwardOutcome::Kind::kToController);

  const auto slow = net.probe(sw, ProbeEngine::probe_packet(0));
  EXPECT_EQ(slow.outcome.level, 1u);
  const auto fast = net.probe(sw, ProbeEngine::probe_packet(0));
  EXPECT_EQ(fast.outcome.level, 0u);
  EXPECT_LT(fast.rtt, slow.rtt);
}

TEST(NetworkTest, ChannelStatsCountMessagesAndBytes) {
  Network net;
  const auto sw = net.add_switch(switch2());
  const auto before = net.stats(sw);
  net.install(sw, ProbeEngine::probe_add(0));
  net.probe(sw, ProbeEngine::probe_packet(0));
  net.barrier_sync(sw);
  const auto& after = net.stats(sw);
  EXPECT_EQ(after.flow_mods - before.flow_mods, 1u);
  EXPECT_EQ(after.packets_out - before.packets_out, 1u);
  EXPECT_GE(after.messages_to_switch - before.messages_to_switch, 3u);
  EXPECT_GT(after.bytes_to_switch, before.bytes_to_switch);
  EXPECT_GT(after.messages_to_controller, 0u);  // barrier reply
}

TEST(NetworkTest, SwitchesAreIndependentEndpoints) {
  Network net;
  const auto a = net.add_switch(switch1());
  const auto b = net.add_switch(ovs());
  net.install(a, ProbeEngine::probe_add(0));
  EXPECT_EQ(net.sw(b).total_rules(), 0u);
  EXPECT_EQ(net.sw(a).id(), a);
  EXPECT_EQ(net.sw(b).id(), b);
}

TEST(NetworkTest, ParallelSwitchesOverlapInTime) {
  // Two switches each processing a batch: makespan should be far below the
  // serial sum because agents run concurrently in simulated time.
  Network net;
  auto profile = switch1();
  profile.costs.jitter_frac = 0;
  const auto a = net.add_switch(profile);
  const auto b = net.add_switch(profile);
  for (std::uint32_t i = 0; i < 50; ++i) {
    net.post_flow_mod(a, ProbeEngine::probe_add(i), [](bool, SimTime) {});
    net.post_flow_mod(b, ProbeEngine::probe_add(i), [](bool, SimTime) {});
  }
  const auto t0 = net.now();
  net.run_all();
  const auto elapsed = net.now() - t0;
  const auto serial_one = millis(0.4 + 0.06) * 50;  // loose upper bound/switch
  EXPECT_LT(elapsed.ns(), (serial_one * 2).ns());
}

TEST(NetworkTest, Build4NetworkMirrorsTopology) {
  Network net;
  const auto ids = build_b4(net, ovs());
  EXPECT_EQ(ids.size(), 12u);
  EXPECT_EQ(net.topology().node_count(), 12u);
  EXPECT_EQ(net.topology().link_count(), 19u);
  EXPECT_FALSE(net.topology()
                   .shortest_path(Network::node_of(ids[0]), Network::node_of(ids[11]))
                   .empty());
}

}  // namespace
}  // namespace tango::net
