// Full-pipeline integration sweep: for randomized switch configurations,
// TangoController::learn() must recover the ground truth — table sizes
// within the paper's 5% bound, the cache policy's primary attribute, and a
// cost model whose ordering the scheduler can exploit end to end.
#include <gtest/gtest.h>

#include <cmath>

#include "net/network.h"
#include "scheduler/executor.h"
#include "scheduler/schedulers.h"
#include "switchsim/profiles.h"
#include "tango/probe_engine.h"
#include "tango/tango.h"

namespace tango {
namespace {

namespace profiles = switchsim::profiles;
using core::ProbeEngine;

struct PipelineCase {
  const char* name;
  tables::LexCachePolicy policy;
  std::size_t cache_size;
  tables::Attribute expected_primary;
  /// Priority-based caches invert the usual cost ordering when full: a
  /// LOW-priority (descending) add never enters the TCAM at all (the
  /// incumbents outrank it), so it is cheaper than an ascending add that
  /// displaces a resident entry. The learned cost model is therefore
  /// regime-dependent for such switches — a real limitation worth pinning.
  bool priority_cache = false;
};

class FullPipeline : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(FullPipeline, LearnRecoversGroundTruth) {
  const auto& param = GetParam();
  net::Network net;
  const auto id = net.add_switch(
      profiles::policy_cache(param.name, {param.cache_size}, param.policy));
  core::TangoController tango(net);
  core::LearnOptions options;
  options.size.max_rules = param.cache_size * 3;
  const auto& know = tango.learn(id, options);

  // Size within the paper's 5% bound.
  ASSERT_EQ(know.sizes.clusters.size(), 2u);
  const double err = std::abs(know.sizes.layer_sizes[0] -
                              static_cast<double>(param.cache_size)) /
                     static_cast<double>(param.cache_size);
  EXPECT_LT(err, 0.05) << know.sizes.layer_sizes[0];
  EXPECT_EQ(know.fast_table_size() > 0, true);

  // Policy primary attribute.
  ASSERT_TRUE(know.policy.has_value());
  ASSERT_FALSE(know.policy->policy.keys().empty());
  EXPECT_EQ(know.policy->policy.keys()[0].attr, param.expected_primary);

  // Cost model ordering the scheduler relies on — except on priority
  // caches, where descending adds sink straight to software (see
  // PipelineCase::priority_cache).
  if (param.priority_cache) {
    EXPECT_LT(know.costs.add_descending_ms, know.costs.add_ascending_ms);
    return;
  }
  EXPECT_LT(know.costs.add_same_priority_ms, know.costs.add_descending_ms);
  EXPECT_LT(know.costs.add_ascending_ms, know.costs.add_descending_ms);

  // And the knowledge actually pays: Tango beats Dionysus on a scattered-
  // priority install against this very switch.
  core::ProbeEngine(net, id).clear_rules();
  auto build = [&](net::Network& n, SwitchId sw) {
    sched::RequestDag dag;
    Rng rng(31);
    for (std::uint32_t i = 0; i < 150; ++i) {
      sched::SwitchRequest r;
      r.location = sw;
      r.type = sched::RequestType::kAdd;
      r.priority = static_cast<std::uint16_t>(rng.uniform_int(1000, 9000));
      r.match = ProbeEngine::probe_match(i);
      r.actions = of::output_to(2);
      dag.add(r);
    }
    return dag;
  };

  net::Network base_net;
  const auto base_id = base_net.add_switch(
      profiles::policy_cache(param.name, {param.cache_size}, param.policy));
  auto base_dag = build(base_net, base_id);
  sched::DionysusScheduler dionysus;
  const auto base = sched::execute(base_net, base_dag, dionysus).makespan;

  auto tango_dag = build(net, id);
  sched::BasicTangoScheduler scheduler({{id, know.costs}});
  const auto opt = sched::execute(net, tango_dag, scheduler).makespan;
  EXPECT_LT(opt.ns(), base.ns());
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, FullPipeline,
    ::testing::Values(
        PipelineCase{"fifo_200", tables::LexCachePolicy::fifo(), 200,
                     tables::Attribute::kInsertionTime},
        PipelineCase{"lru_150", tables::LexCachePolicy::lru(), 150,
                     tables::Attribute::kUseTime},
        PipelineCase{"lfu_250", tables::LexCachePolicy::lfu(), 250,
                     tables::Attribute::kTrafficCount},
        PipelineCase{"prio_300", tables::LexCachePolicy::priority_based(), 300,
                     tables::Attribute::kPriority, /*priority_cache=*/true}),
    [](const ::testing::TestParamInfo<PipelineCase>& info) {
      return std::string(info.param.name);
    });

TEST(FullPipelineFleet, PaperFleetSummariesAreCoherent) {
  net::Network net;
  std::vector<SwitchId> fleet;
  for (const auto& profile : profiles::paper_fleet()) {
    fleet.push_back(net.add_switch(profile));
  }
  core::TangoController tango(net);
  for (const auto id : fleet) {
    core::LearnOptions options;
    options.size.max_rules = 3000;
    options.infer_policy = false;
    const auto& know = tango.learn(id, options);
    const auto text = know.summary();
    EXPECT_NE(text.find(know.name), std::string::npos);
    EXPECT_NE(text.find("layers=["), std::string::npos);
    EXPECT_GT(know.costs.add_ascending_ms, 0.0);
  }
  // Diversity is visible in the learned data: OVS flat, hardware not.
  const auto* ovs = tango.knowledge(fleet[0]);
  const auto* hw1 = tango.knowledge(fleet[1]);
  ASSERT_NE(ovs, nullptr);
  ASSERT_NE(hw1, nullptr);
  EXPECT_FALSE(ovs->costs.priority_sensitive());
  EXPECT_TRUE(hw1->costs.priority_sensitive());
  EXPECT_EQ(ovs->fast_table_size(), 0u);       // unbounded
  EXPECT_GT(hw1->fast_table_size(), 1900u);    // ~2047
}

}  // namespace
}  // namespace tango
