// Transactional-update suite: intent journal, crash reconciliation via
// state readback, and end-state consistency verification.
//
// Every scenario runs on the deterministic event queue with seeded fault
// injectors, so crash points and loss patterns replay identically. The
// acceptance pair in the middle is the ISSUE's contract: a commit that
// loses an agent mid-flight must end either with tables identical to a
// fault-free run (roll-forward) or identical to the pre-update snapshot
// (rollback).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "net/fault_injector.h"
#include "net/network.h"
#include "scheduler/schedulers.h"
#include "scheduler/transaction.h"
#include "switchsim/profiles.h"
#include "tango/probe_engine.h"

namespace tango::net {
namespace {

namespace profiles = switchsim::profiles;
using core::ProbeEngine;

switchsim::SwitchProfile quiet_switch1() {
  auto profile = profiles::switch1();
  profile.costs.jitter_frac = 0;
  profile.paths.jitter_frac = 0;
  return profile;
}

std::uint64_t fault_seed_from_env() {
  if (const char* env = std::getenv("TANGO_FAULT_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return 0xfa417u;
}

void preinstall(Network& net, SwitchId id, std::uint32_t count) {
  ProbeEngine probe(net, id);
  for (std::uint32_t i = 0; i < count; ++i) {
    ASSERT_TRUE(probe.install(i, static_cast<std::uint16_t>(100 + (i * 7) % 900)));
  }
  net.barrier_sync(id);
}

/// The update under test: re-route 10 existing flows on s1 (MOD), retire 5
/// (DEL), add 10 new ones, with 10 supporting adds on s2 that must land
/// before the s1 re-routes (consistent-update ordering).
sched::RequestDag build_update(SwitchId s1, SwitchId s2) {
  sched::RequestDag dag;
  std::vector<std::size_t> mods;
  for (std::uint32_t i = 0; i < 10; ++i) {
    sched::SwitchRequest r;
    r.location = s1;
    r.type = sched::RequestType::kMod;
    r.match = ProbeEngine::probe_match(i);
    r.actions = of::output_to(3);
    mods.push_back(dag.add(r));
  }
  for (std::uint32_t i = 0; i < 5; ++i) {
    sched::SwitchRequest r;
    r.location = s1;
    r.type = sched::RequestType::kDel;
    r.match = ProbeEngine::probe_match(10 + i);
    dag.add(r);
  }
  for (std::uint32_t i = 0; i < 10; ++i) {
    sched::SwitchRequest r;
    r.location = s1;
    r.type = sched::RequestType::kAdd;
    r.priority = 0x8000;
    r.match = ProbeEngine::probe_match(20 + i);
    r.actions = of::output_to(2);
    dag.add(r);
  }
  for (std::uint32_t i = 0; i < 10; ++i) {
    sched::SwitchRequest r;
    r.location = s2;
    r.type = sched::RequestType::kAdd;
    r.priority = 0x8000;
    r.match = ProbeEngine::probe_match(100 + i);
    r.actions = of::output_to(2);
    const auto node = dag.add(r);
    dag.add_dependency(node, mods[i]);  // new path in place before the flip
  }
  return dag;
}

sched::TableImage strip_cookies(sched::TableImage image) {
  for (auto& [key, rule] : image) rule.cookie = 0;
  return image;
}

/// Readback that survives active fault injectors (bounded retries).
sched::TableImage final_image(Network& net, SwitchId id) {
  for (int attempt = 0; attempt < 50; ++attempt) {
    auto reply = net.try_flow_stats(id, of::Match::any(), millis(200));
    if (reply.has_value()) return sched::image_of(*reply);
  }
  ADD_FAILURE() << "switch " << id << " table unreadable";
  return {};
}

struct TxnRun {
  sched::TransactionReport report;
  sched::TableImage pre1, pre2;  // transaction's pre-update snapshots
  sched::TableImage t1, t2;      // actual tables after commit
};

TxnRun run_scenario(sched::RecoveryPolicy policy, bool crash, double loss,
                    std::uint64_t seed) {
  TxnRun out;
  Network net;
  const auto s1 = net.add_switch(quiet_switch1());
  const auto s2 = net.add_switch(quiet_switch1());
  preinstall(net, s1, 20);
  preinstall(net, s2, 20);

  sched::TransactionOptions topts;
  topts.policy = policy;
  topts.txn_id = 7;  // pinned: cookies must match across compared runs
  topts.exec.request_timeout = millis(200);
  topts.exec.max_retries = 6;
  topts.exec.backoff_base = millis(5);

  sched::UpdateTransaction txn(net, build_update(s1, s2), topts);

  if (crash || loss > 0) {
    for (const auto id : {s1, s2}) {
      FaultConfig cfg;
      cfg.drop_to_switch = loss;
      cfg.drop_to_controller = loss;
      cfg.seed = seed + id;
      if (crash && id == s1) {
        cfg.crash_at = net.now() + millis(20);  // mid-commit
        cfg.crash_downtime = millis(5);
      }
      net.enable_faults(id, cfg);
    }
  }

  sched::DionysusScheduler scheduler;
  out.report = txn.commit(scheduler);
  out.pre1 = txn.pre_image(s1);
  out.pre2 = txn.pre_image(s2);
  out.t1 = final_image(net, s1);
  out.t2 = final_image(net, s2);
  return out;
}

// ---------------------------------------------------------------------------
// Journal construction
// ---------------------------------------------------------------------------

TEST(TransactionJournalTest, InversesUndoTheUpdate) {
  Network net;
  const auto s1 = net.add_switch(quiet_switch1());
  preinstall(net, s1, 5);

  sched::RequestDag dag;
  sched::SwitchRequest mod;
  mod.location = s1;
  mod.type = sched::RequestType::kMod;
  mod.match = ProbeEngine::probe_match(0);
  mod.actions = of::output_to(9);
  const auto mod_id = dag.add(mod);

  sched::SwitchRequest del;
  del.location = s1;
  del.type = sched::RequestType::kDel;
  del.match = ProbeEngine::probe_match(1);
  const auto del_id = dag.add(del);

  sched::SwitchRequest add;
  add.location = s1;
  add.type = sched::RequestType::kAdd;
  add.priority = 0x8000;
  add.match = ProbeEngine::probe_match(10);
  add.actions = of::output_to(2);
  const auto add_id = dag.add(add);

  sched::TransactionOptions topts;
  topts.txn_id = 3;
  sched::UpdateTransaction txn(net, std::move(dag), topts);

  ASSERT_EQ(txn.journal().size(), 3u);
  for (const auto& entry : txn.journal()) {
    EXPECT_EQ(entry.state, sched::JournalEntry::State::kPlanned);
    if (entry.dag_id == add_id) {
      // Nothing pre-existed at the add's key: inverse is a strict delete.
      ASSERT_EQ(entry.inverse.size(), 1u);
      EXPECT_EQ(entry.inverse[0].command, of::FlowModCommand::kDeleteStrict);
      EXPECT_EQ(entry.inverse[0].match, add.match);
    } else if (entry.dag_id == mod_id) {
      // Inverse restores the previously installed actions.
      ASSERT_EQ(entry.inverse.size(), 1u);
      EXPECT_EQ(entry.inverse[0].command, of::FlowModCommand::kAdd);
      EXPECT_EQ(entry.inverse[0].match, mod.match);
      EXPECT_NE(entry.inverse[0].actions, mod.actions);
    } else if (entry.dag_id == del_id) {
      ASSERT_EQ(entry.inverse.size(), 1u);
      EXPECT_EQ(entry.inverse[0].command, of::FlowModCommand::kAdd);
      EXPECT_EQ(entry.inverse[0].match, del.match);
    }
  }

  // Replaying every inverse (reverse journal order) on the post image must
  // reproduce the pre image exactly.
  sched::TableImage image = txn.post_image(s1);
  EXPECT_NE(image, txn.pre_image(s1));
  for (auto it = txn.journal().rbegin(); it != txn.journal().rend(); ++it) {
    for (const auto& fm : it->inverse) sched::apply_to_image(image, fm);
  }
  EXPECT_EQ(image, txn.pre_image(s1));

  // Cookies: txn id in the top half, dag node in the bottom.
  EXPECT_EQ(sched::UpdateTransaction::txn_of_cookie(txn.cookie_of(add_id)), 3u);
  EXPECT_EQ(txn.cookie_of(add_id) & 0xffffffffu, add_id);
}

// ---------------------------------------------------------------------------
// Fault-free fast path
// ---------------------------------------------------------------------------

TEST(TransactionTest, FaultFreeCommitMatchesPlainExecute) {
  // Reference: the same update through the bare executor.
  Network plain_net;
  const auto p1 = plain_net.add_switch(quiet_switch1());
  const auto p2 = plain_net.add_switch(quiet_switch1());
  preinstall(plain_net, p1, 20);
  preinstall(plain_net, p2, 20);
  sched::DionysusScheduler plain_sched;
  sched::ExecutorOptions plain_opts;
  plain_opts.request_timeout = millis(200);
  plain_opts.max_retries = 6;
  plain_opts.backoff_base = millis(5);
  const auto plain = sched::execute(plain_net, build_update(p1, p2),
                                    plain_sched, plain_opts);

  const auto txn = run_scenario(sched::RecoveryPolicy::kRollForward,
                                /*crash=*/false, /*loss=*/0.0, 0);

  // The journal rides along without touching the wire: issue counts and the
  // virtual-time makespan are bit-identical to the bare executor.
  EXPECT_EQ(txn.report.exec.issued, plain.issued);
  EXPECT_EQ(txn.report.exec.makespan.ns(), plain.makespan.ns());
  EXPECT_TRUE(txn.report.committed);
  EXPECT_FALSE(txn.report.reconciled);
  EXPECT_EQ(txn.report.reconcile_rounds, 0u);
  EXPECT_EQ(txn.report.repairs_issued, 0u);
  EXPECT_TRUE(txn.report.crashed_switches.empty());
  EXPECT_EQ(txn.report.exec.fault_crashes, 0u);

  // Same end state (cookies aside — the transaction stamps its own).
  EXPECT_EQ(strip_cookies(txn.t1),
            strip_cookies(sched::image_of(
                plain_net.flow_stats_sync(p1, of::Match::any()))));
  EXPECT_EQ(strip_cookies(txn.t2),
            strip_cookies(sched::image_of(
                plain_net.flow_stats_sync(p2, of::Match::any()))));
}

// ---------------------------------------------------------------------------
// Acceptance: mid-commit crash, both recovery policies
// ---------------------------------------------------------------------------

TEST(TransactionAcceptanceTest, CrashRollForwardEndsIdenticalToFaultFreeRun) {
  const auto seed = fault_seed_from_env();
  const auto reference = run_scenario(sched::RecoveryPolicy::kRollForward,
                                      /*crash=*/false, /*loss=*/0.0, 0);
  ASSERT_TRUE(reference.report.committed);

  const auto crashed = run_scenario(sched::RecoveryPolicy::kRollForward,
                                    /*crash=*/true, /*loss=*/0.0, seed);
  EXPECT_EQ(crashed.report.crashed_switches, std::set<SwitchId>{1});
  // The executor's report surfaces the injector activity it saw.
  EXPECT_EQ(crashed.report.exec.fault_crashes, 1u);
  EXPECT_EQ(crashed.report.exec.crashed_switches, std::set<SwitchId>{1});
  EXPECT_GE(crashed.report.exec.fault_lost_to_crash, 1u);
  EXPECT_TRUE(crashed.report.reconciled);
  EXPECT_TRUE(crashed.report.committed);
  EXPECT_GE(crashed.report.reconcile_rounds, 1u);
  EXPECT_GE(crashed.report.repairs_issued, 1u);  // wiped rules reinstated

  // The contract: after roll-forward reconciliation the tables — every
  // match, priority, action list, and cookie — equal the fault-free run's.
  EXPECT_EQ(crashed.t1, reference.t1);
  EXPECT_EQ(crashed.t2, reference.t2);
}

TEST(TransactionAcceptanceTest, CrashRollBackRestoresPreUpdateSnapshot) {
  const auto seed = fault_seed_from_env();
  const auto crashed = run_scenario(sched::RecoveryPolicy::kRollBack,
                                    /*crash=*/true, /*loss=*/0.0, seed);
  EXPECT_EQ(crashed.report.crashed_switches, std::set<SwitchId>{1});
  EXPECT_TRUE(crashed.report.reconciled);
  EXPECT_TRUE(crashed.report.committed);
  EXPECT_GE(crashed.report.stale_rules_removed, 1u);  // txn rules unwound

  // The contract: both switches end exactly at their pre-update snapshot —
  // including s2, which never crashed but had committed its share.
  EXPECT_EQ(crashed.t1, crashed.pre1);
  EXPECT_EQ(crashed.t2, crashed.pre2);
}

TEST(TransactionAcceptanceTest, CrashPlusLossIsReproducibleAcrossRuns) {
  const auto seed = fault_seed_from_env();
  const auto first =
      run_scenario(sched::RecoveryPolicy::kRollForward, true, 0.05, seed);
  const auto second =
      run_scenario(sched::RecoveryPolicy::kRollForward, true, 0.05, seed);

  EXPECT_TRUE(first.report.committed);
  EXPECT_EQ(first.report.exec.makespan.ns(), second.report.exec.makespan.ns());
  EXPECT_EQ(first.report.exec.issued, second.report.exec.issued);
  EXPECT_EQ(first.report.exec.timeouts, second.report.exec.timeouts);
  EXPECT_EQ(first.report.exec.retries, second.report.exec.retries);
  EXPECT_EQ(first.report.reconcile_rounds, second.report.reconcile_rounds);
  EXPECT_EQ(first.report.repairs_issued, second.report.repairs_issued);
  EXPECT_EQ(first.report.stale_rules_removed,
            second.report.stale_rules_removed);
  EXPECT_EQ(first.report.readback_requests, second.report.readback_requests);
  EXPECT_EQ(first.report.readback_lost, second.report.readback_lost);
  EXPECT_EQ(first.t1, second.t1);
  EXPECT_EQ(first.t2, second.t2);
}

// ---------------------------------------------------------------------------
// Consistency verifier
// ---------------------------------------------------------------------------

of::FlowMod rule(std::uint32_t index, std::uint16_t out_port,
                 std::uint16_t priority = 0x8000, std::uint64_t cookie = 0) {
  of::FlowMod fm;
  fm.match = ProbeEngine::probe_match(index);
  fm.priority = priority;
  fm.actions = of::output_to(out_port);
  fm.cookie = cookie;
  return fm;
}

TEST(VerifierTest, WalksFlowsAndFlagsEveryViolationKind) {
  Network net;
  const auto s1 = net.add_switch(quiet_switch1());
  const auto s2 = net.add_switch(quiet_switch1());
  // Link 0 occupies port 1 on both switches.
  net.topology().add_link(Network::node_of(s1), Network::node_of(s2));

  ASSERT_TRUE(net.install(s1, rule(0, /*out_port=*/1, 0x8000, 42)).accepted);

  sched::FlowCheck flow;
  flow.ingress = s1;
  flow.packet = ProbeEngine::probe_packet(0);
  flow.expected_cookies[s1] = 42;

  sched::ConsistencyVerifier verifier(net);

  // s2 only has its default punt-to-controller route: black hole.
  {
    const auto report = verifier.verify({flow});
    ASSERT_EQ(report.black_holes, 1u);
    EXPECT_EQ(report.violations[0].at, s2);
    EXPECT_FALSE(report.clean());
  }

  // Give s2 a host-facing egress (port 5 has no link): clean walk.
  ASSERT_TRUE(net.install(s2, rule(0, /*out_port=*/5)).accepted);
  {
    flow.expected_egress = s2;
    const auto report = verifier.verify({flow});
    EXPECT_TRUE(report.clean()) << "unexpected: "
                                << (report.violations.empty()
                                        ? ""
                                        : report.violations[0].detail);
    EXPECT_EQ(report.flows_checked, 1u);
  }

  // Expecting egress elsewhere is flagged.
  {
    auto wrong = flow;
    wrong.expected_egress = s1;
    const auto report = verifier.verify({wrong});
    EXPECT_EQ(report.wrong_egress, 1u);
  }

  // Point s2 back at s1 (ADD replaces in place): forwarding loop. Arrival
  // at expected_egress counts as delivery, so drop it to follow the cycle.
  ASSERT_TRUE(net.install(s2, rule(0, /*out_port=*/1)).accepted);
  {
    auto looping = flow;
    looping.expected_egress = 0;
    const auto report = verifier.verify({looping});
    EXPECT_EQ(report.loops, 1u);
  }
  ASSERT_TRUE(net.install(s2, rule(0, /*out_port=*/5)).accepted);

  // A stale higher-priority leftover with a foreign cookie shadows ours.
  ASSERT_TRUE(net.install(s1, rule(0, /*out_port=*/1, 0x9000, 99)).accepted);
  {
    const auto report = verifier.verify({flow});
    EXPECT_EQ(report.shadowed, 1u);
    EXPECT_EQ(report.violations[0].at, s1);
  }
}

TEST(VerifierTest, PostCommitVerifyReportsCleanTables) {
  Network net;
  const auto s1 = net.add_switch(quiet_switch1());
  const auto s2 = net.add_switch(quiet_switch1());
  preinstall(net, s1, 20);
  preinstall(net, s2, 20);

  sched::TransactionOptions topts;
  topts.txn_id = 11;
  topts.exec.request_timeout = millis(200);
  topts.exec.max_retries = 6;
  topts.exec.backoff_base = millis(5);
  sched::UpdateTransaction txn(net, build_update(s1, s2), topts);

  FaultConfig cfg;
  cfg.crash_at = net.now() + millis(20);
  cfg.crash_downtime = millis(5);
  cfg.seed = fault_seed_from_env();
  net.enable_faults(s1, cfg);

  sched::DionysusScheduler scheduler;
  const auto& report = txn.commit(scheduler);
  ASSERT_TRUE(report.committed);
  ASSERT_TRUE(report.reconciled);

  // Every new rule the transaction added must match with its own cookie
  // (no stale shadowing leftovers) and leave the network cleanly.
  std::vector<sched::FlowCheck> flows;
  for (std::uint32_t i = 0; i < 10; ++i) {
    sched::FlowCheck flow;
    flow.ingress = s1;
    flow.packet = ProbeEngine::probe_packet(20 + i);
    flow.expected_cookies[s1] = txn.cookie_of(15 + i);  // ADD nodes 15..24
    flows.push_back(flow);
  }
  const auto& verdict = txn.verify(flows);
  EXPECT_EQ(verdict.flows_checked, 10u);
  EXPECT_EQ(verdict.black_holes, 0u);
  EXPECT_EQ(verdict.loops, 0u);
  EXPECT_EQ(verdict.shadowed, 0u);
  EXPECT_TRUE(verdict.clean());
  EXPECT_TRUE(txn.report().verify.clean());
}

// ---------------------------------------------------------------------------
// Phased commit: concurrent transactions over disjoint switch sets
// ---------------------------------------------------------------------------

TEST(PhasedCommitTest, InterleavedDisjointCommitsMatchSerial) {
  // Two copies of the standard update on disjoint switch pairs, committed
  // serially in one network and interleaved (phased commit under a single
  // event-queue pump) in another. The final tables must be bit-identical —
  // cookies included, since txn ids are pinned — and the interleaved run
  // must finish strictly earlier in virtual time.
  const auto options_for = [](std::uint32_t txn_id) {
    sched::TransactionOptions topts;
    topts.txn_id = txn_id;
    topts.exec.request_timeout = millis(200);
    topts.exec.max_retries = 6;
    topts.exec.backoff_base = millis(5);
    return topts;
  };
  const auto build = [&](Network& net, std::vector<SwitchId>& sw) {
    for (int i = 0; i < 4; ++i) sw.push_back(net.add_switch(quiet_switch1()));
    for (const auto id : sw) preinstall(net, id, 20);
  };

  // Serial reference.
  Network serial_net;
  std::vector<SwitchId> ss;
  build(serial_net, ss);
  sched::DionysusScheduler scheduler;
  SimDuration serial_span{};
  {
    sched::UpdateTransaction a(serial_net, build_update(ss[0], ss[1]),
                               options_for(31));
    sched::UpdateTransaction b(serial_net, build_update(ss[2], ss[3]),
                               options_for(32));
    const SimTime t0 = serial_net.now();
    ASSERT_TRUE(a.commit(scheduler).committed);
    ASSERT_TRUE(b.commit(scheduler).committed);
    serial_span = serial_net.now() - t0;
  }

  // Interleaved: start both, pump the one shared queue, finish both.
  Network conc_net;
  std::vector<SwitchId> cs;
  build(conc_net, cs);
  SimDuration conc_span{};
  {
    sched::UpdateTransaction a(conc_net, build_update(cs[0], cs[1]),
                               options_for(31));
    sched::UpdateTransaction b(conc_net, build_update(cs[2], cs[3]),
                               options_for(32));
    const SimTime t0 = conc_net.now();
    a.start_commit(scheduler);
    b.start_commit(scheduler);
    while ((!a.exec_done() || !b.exec_done()) && conc_net.events().step()) {
    }
    ASSERT_TRUE(a.exec_done());
    ASSERT_TRUE(b.exec_done());
    ASSERT_TRUE(a.finish_commit().committed);
    ASSERT_TRUE(b.finish_commit().committed);
    conc_span = conc_net.now() - t0;
  }

  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(final_image(serial_net, ss[i]), final_image(conc_net, cs[i]))
        << "switch pair " << i;
  }
  EXPECT_LT(conc_span.ns(), serial_span.ns())
      << "interleaving two disjoint commits should beat running them "
         "back-to-back";
}

// ---------------------------------------------------------------------------
// Footprint scoping: rollback must not sweep foreign rule-space
// ---------------------------------------------------------------------------

namespace {

/// Roll back a two-switch update (crash on s2 mid-commit) while a foreign
/// rule F — installed AFTER the transaction's snapshot, rule-space disjoint
/// from its footprint — sits on s1. The crash must hit the OTHER switch:
/// what's under test is whether the rollback's reconciliation of s1 sweeps
/// F, not whether a table wipe destroys it. Returns whether F survived.
bool foreign_rule_survives_rollback(bool scope_to_footprint) {
  Network net;
  const auto s1 = net.add_switch(quiet_switch1());
  const auto s2 = net.add_switch(quiet_switch1());
  preinstall(net, s1, 20);
  preinstall(net, s2, 20);

  sched::TransactionOptions topts;
  topts.policy = sched::RecoveryPolicy::kRollBack;
  topts.txn_id = 33;
  topts.scope_to_footprint = scope_to_footprint;
  topts.exec.request_timeout = millis(200);
  topts.exec.max_retries = 6;
  topts.exec.backoff_base = millis(5);
  sched::UpdateTransaction txn(net, build_update(s1, s2), topts);

  // F lands after the snapshot: to an unscoped rollback it is
  // indistinguishable from the transaction's own stale leftovers.
  ProbeEngine probe(net, s1);
  EXPECT_TRUE(probe.install(50, 777));
  net.barrier_sync(s1);

  FaultConfig cfg;
  cfg.crash_at = net.now() + millis(20);
  cfg.crash_downtime = millis(5);
  cfg.seed = fault_seed_from_env();
  net.enable_faults(s2, cfg);

  sched::DionysusScheduler scheduler;
  const auto& report = txn.commit(scheduler);
  EXPECT_TRUE(report.rolled_back) << "crash did not force a rollback";

  const auto image = final_image(net, s1);
  return image.count(sched::rule_key(ProbeEngine::probe_match(50), 777)) != 0;
}

}  // namespace

TEST(FootprintScopeTest, UnscopedRollbackSweepsForeignRules) {
  // The default (whole-table reconciliation) deliberately sweeps anything
  // not in the pre image — strictly stronger repair for a serial world.
  EXPECT_FALSE(foreign_rule_survives_rollback(false));
}

TEST(FootprintScopeTest, ScopedRollbackPreservesForeignRules) {
  // With scope_to_footprint the reconciler never looks outside the
  // transaction's own rule-space, so the concurrent world's rules survive.
  EXPECT_TRUE(foreign_rule_survives_rollback(true));
}

}  // namespace
}  // namespace tango::net
