// Tests for the TCAM width/mode inference extension pattern: the engine
// must classify single-wide, double-wide, and adaptive TCAMs from probing
// alone, across reject-at-capacity and software-backed architectures.
#include <gtest/gtest.h>

#include "net/network.h"
#include "switchsim/profiles.h"
#include "tango/width_inference.h"

namespace tango::core {
namespace {

namespace profiles = switchsim::profiles;
using tables::TcamMode;

WidthInferenceResult run(const switchsim::SwitchProfile& profile,
                         std::size_t max_rules = 6000) {
  net::Network net;
  const auto id = net.add_switch(profile);
  ProbeEngine probe(net, id);
  WidthInferenceConfig config;
  config.max_rules = max_rules;
  return infer_width(probe, config);
}

TEST(WidthInference, Switch2IsDoubleWide) {
  const auto result = run(profiles::switch2());
  EXPECT_EQ(result.mode, TcamMode::kDoubleWide);
  EXPECT_FALSE(result.unbounded);
  // 5120 slots, 2 per entry (the probing pattern clears the default route
  // first, so the full table is measured).
  EXPECT_DOUBLE_EQ(result.capacity_l2, 2560);
  EXPECT_DOUBLE_EQ(result.capacity_l3, 2560);
  EXPECT_DOUBLE_EQ(result.capacity_wide, 2560);
}

TEST(WidthInference, Switch3IsAdaptive) {
  const auto result = run(profiles::switch3());
  EXPECT_EQ(result.mode, TcamMode::kAdaptive);
  EXPECT_DOUBLE_EQ(result.capacity_l2, 767);
  EXPECT_DOUBLE_EQ(result.capacity_wide, 383);
}

TEST(WidthInference, Switch1SingleWideDetectedThroughSoftwareBacking) {
  // The tricky case: the TCAM rejects nothing (a software tier absorbs
  // overflow), so the mode must be read from the latency bands.
  auto profile = profiles::switch1(tables::TcamMode::kSingleWide);
  const auto result = run(profile);
  EXPECT_EQ(result.mode, TcamMode::kSingleWide);
  EXPECT_DOUBLE_EQ(result.capacity_wide, 0);
  // Narrow capacities within a few percent of 4095 (4096 - default).
  EXPECT_NEAR(result.capacity_l2, 4096, 4096 * 0.06);
  EXPECT_NEAR(result.capacity_l3, 4096, 4096 * 0.06);
}

TEST(WidthInference, Switch1DoubleWideDetectedThroughSoftwareBacking) {
  auto profile = profiles::switch1(tables::TcamMode::kDoubleWide);
  const auto result = run(profile);
  EXPECT_EQ(result.mode, TcamMode::kDoubleWide);
  EXPECT_NEAR(result.capacity_l2, 2048, 2048 * 0.06);
  EXPECT_NEAR(result.capacity_wide, 2048, 2048 * 0.06);
}

TEST(WidthInference, OvsIsUnbounded) {
  const auto result = run(profiles::ovs(), /*max_rules=*/800);
  EXPECT_TRUE(result.unbounded);
}

TEST(WidthInference, SyntheticSingleWideTcamOnly) {
  auto profile = profiles::switch2();
  profile.cache_levels[0] = tables::TcamConfig{300, TcamMode::kSingleWide};
  profile.install_default_route = false;
  const auto result = run(profile, 1000);
  EXPECT_EQ(result.mode, TcamMode::kSingleWide);
  EXPECT_DOUBLE_EQ(result.capacity_l2, 300);
  EXPECT_DOUBLE_EQ(result.capacity_wide, 0);
}

TEST(WidthInference, ShapedProbePacketsMatchTheirRules) {
  // The L2 probe packet must match the L2 probe rule and no other index.
  for (const auto shape :
       {RuleShape::kL2Only, RuleShape::kL3Only, RuleShape::kL2AndL3}) {
    const auto rule = ProbeEngine::probe_match(7, shape);
    EXPECT_TRUE(rule.matches(ProbeEngine::probe_packet(7, shape)));
    EXPECT_FALSE(rule.matches(ProbeEngine::probe_packet(8, shape)));
  }
  EXPECT_EQ(ProbeEngine::probe_match(1, RuleShape::kL2Only).layer(),
            of::MatchLayer::kL2Only);
  EXPECT_EQ(ProbeEngine::probe_match(1, RuleShape::kL3Only).layer(),
            of::MatchLayer::kL3Only);
  EXPECT_EQ(ProbeEngine::probe_match(1, RuleShape::kL2AndL3).layer(),
            of::MatchLayer::kL2AndL3);
}

}  // namespace
}  // namespace tango::core
