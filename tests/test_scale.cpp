// 1000-switch scale smoke (ctest label `scale`, excluded from tier-1):
// build the 1024-switch pod-scaled fat-tree as a real simulated network,
// fail a core uplink, and drive a Fig-10-style network-wide consistent
// update through the full transaction path — every oracle the small tests
// check (commit verified, nothing rejected, one repoint per flow, virtual
// makespan advanced) must stay green at fabric scale. Also smokes routing
// on the ~1000-node scaled-B4 WAN, which is where the per-node adjacency
// index earns its keep.
#include <gtest/gtest.h>

#include "net/network.h"
#include "scheduler/schedulers.h"
#include "scheduler/transaction.h"
#include "switchsim/profiles.h"
#include "workload/topology_gen.h"

namespace tango::workload {
namespace {

switchsim::SwitchProfile quiet_ovs() {
  auto profile = switchsim::profiles::ovs();
  profile.costs.jitter_frac = 0;
  profile.paths.jitter_frac = 0;
  return profile;
}

TEST(Scale, FatTree1024NetworkWideUpdate) {
  net::Network net;
  FatTreeSpec spec;
  spec.k = 16;
  spec.pods = 60;
  const auto nodes = build_fat_tree(net, spec, quiet_ovs());
  ASSERT_EQ(net.switch_count(), 1024u);
  ASSERT_EQ(net.topology().link_count(), fat_tree_link_count(spec.k, spec.pods));

  // Fail pod 0's first core uplink; the update routes around it.
  const auto broken =
      net.topology().link_between(nodes.agg[0][0], nodes.core[0]);
  ASSERT_TRUE(broken.has_value());
  net.topology().set_link_state(*broken, false);

  FabricUpdateSpec us;
  us.n_flows = 48;
  Rng rng(7);
  auto dag = fabric_update_scenario(net.topology(), nodes, us, rng);
  ASSERT_GE(dag.size(), 3u * us.n_flows);
  const std::size_t total = dag.size();

  sched::TransactionOptions topts;
  topts.txn_id = 91;  // pinned: no draw from the process-wide counter
  sched::UpdateTransaction txn(net, std::move(dag), topts);
  sched::DionysusScheduler scheduler;
  const auto& report = txn.commit(scheduler);

  EXPECT_TRUE(report.committed);
  EXPECT_FALSE(report.reconciled);  // fault-free fast path
  EXPECT_EQ(report.exec.issued, total);
  EXPECT_EQ(report.exec.rejected, 0u);
  EXPECT_GT(report.exec.makespan.ns(), 0);
  // The failed link stayed out of every installed path: no request landed
  // on a path using it, so the commit needed no repair.
  EXPECT_EQ(report.repairs_issued, 0u);
}

TEST(Scale, FatTree1024RoutingSweep) {
  FatTreeSpec spec;
  spec.k = 16;
  spec.pods = 60;
  const auto ft = fat_tree(spec);
  const auto edges = ft.nodes.all_edges();
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const std::size_t si = rng.index(edges.size());
    std::size_t di = rng.index(edges.size() - 1);
    if (di >= si) ++di;
    const auto path = ft.topo.shortest_path(edges[si], edges[di]);
    ASSERT_FALSE(path.empty());
    ASSERT_LE(path.size(), 5u);
  }
}

TEST(Scale, ScaledB4ThousandSitesRoutes) {
  const auto topo = scaled_b4(86);
  EXPECT_EQ(topo.node_count(), 1032u);
  // End to end across all 86 replicas.
  const auto path = topo.shortest_path(0, topo.node_count() - 1);
  ASSERT_FALSE(path.empty());
  EXPECT_GE(path.size(), 86u);  // must cross every replica at least once
}

}  // namespace
}  // namespace tango::workload
