// Structural invariants of the scale topology generators: fat-tree
// switch/link counts, path lengths and redundancy, scaled-B4 shape,
// generator determinism, and the fabric-wide update scenario's DAG shape.
// The 1024-switch smoke lives in test_scale.cpp (ctest label `scale`) so
// tier-1 stays fast.
#include <gtest/gtest.h>

#include <set>

#include "workload/topology_gen.h"

namespace tango::workload {
namespace {

TEST(FatTreeStructure, CanonicalCounts) {
  for (const unsigned k : {4u, 8u}) {
    FatTreeSpec spec;
    spec.k = k;
    const auto ft = fat_tree(spec);
    // Canonical k-ary fat-tree: 5k²/4 switches, k³/2 switch-switch links.
    EXPECT_EQ(ft.topo.node_count(), 5u * k * k / 4) << "k=" << k;
    EXPECT_EQ(ft.topo.link_count(), static_cast<std::size_t>(k) * k * k / 2)
        << "k=" << k;
    EXPECT_EQ(ft.topo.node_count(), fat_tree_switch_count(k, 0));
    EXPECT_EQ(ft.topo.link_count(), fat_tree_link_count(k, 0));
    // Role vectors partition the node set.
    std::size_t counted = ft.nodes.core.size();
    for (const auto& pod : ft.nodes.agg) counted += pod.size();
    for (const auto& pod : ft.nodes.edge) counted += pod.size();
    EXPECT_EQ(counted, ft.topo.node_count());
  }
}

TEST(FatTreeStructure, PodScaledCountsHit1024) {
  FatTreeSpec spec;
  spec.k = 16;
  spec.pods = 60;
  EXPECT_EQ(fat_tree_switch_count(spec.k, spec.pods), 1024u);
  const auto ft = fat_tree(spec);
  EXPECT_EQ(ft.topo.node_count(), 1024u);
  EXPECT_EQ(ft.topo.link_count(), fat_tree_link_count(spec.k, spec.pods));
  EXPECT_EQ(ft.topo.link_count(), 2u * 60 * 8 * 8);
}

TEST(FatTreeStructure, NodeDegreesMatchRole) {
  FatTreeSpec spec;
  spec.k = 8;
  const auto ft = fat_tree(spec);
  // Edge: k/2 agg uplinks. Agg: k/2 edge downlinks + k/2 core uplinks.
  // Core: one link per pod (k pods canonically).
  for (const auto n : ft.nodes.core) {
    EXPECT_EQ(ft.topo.links_of(n).size(), 8u);
  }
  for (const auto& pod : ft.nodes.agg) {
    for (const auto n : pod) EXPECT_EQ(ft.topo.links_of(n).size(), 8u);
  }
  for (const auto& pod : ft.nodes.edge) {
    for (const auto n : pod) EXPECT_EQ(ft.topo.links_of(n).size(), 4u);
  }
}

TEST(FatTreeStructure, PathLengthsMatchTheory) {
  FatTreeSpec spec;
  spec.k = 4;
  const auto ft = fat_tree(spec);
  // Same pod: edge–agg–edge, 3 nodes.
  const auto intra =
      ft.topo.shortest_path(ft.nodes.edge[0][0], ft.nodes.edge[0][1]);
  EXPECT_EQ(intra.size(), 3u);
  // Different pods: edge–agg–core–agg–edge, 5 nodes.
  const auto inter =
      ft.topo.shortest_path(ft.nodes.edge[0][0], ft.nodes.edge[3][1]);
  EXPECT_EQ(inter.size(), 5u);
}

TEST(FatTreeStructure, SurvivesSingleLinkFailure) {
  FatTreeSpec spec;
  spec.k = 4;
  auto ft = fat_tree(spec);
  const auto src = ft.nodes.edge[0][0];
  const auto dst = ft.nodes.edge[2][0];
  // k/2 link-disjoint inter-pod paths (bounded by the edge uplink count).
  const auto paths = ft.topo.disjoint_paths(src, dst, spec.k);
  EXPECT_EQ(paths.size(), 2u);
  // Fail the first hop of the shortest path; an equal-length detour exists.
  const auto before = ft.topo.shortest_path(src, dst);
  ASSERT_EQ(before.size(), 5u);
  ASSERT_TRUE(ft.topo.fail_link_between(before[0], before[1]).has_value());
  const auto after = ft.topo.shortest_path(src, dst);
  EXPECT_EQ(after.size(), 5u);
  EXPECT_NE(after[1], before[1]);
}

TEST(FatTreeStructure, GenerationIsDeterministic) {
  FatTreeSpec spec;
  spec.k = 8;
  spec.pods = 3;
  const auto a = fat_tree(spec);
  const auto b = fat_tree(spec);
  ASSERT_EQ(a.topo.node_count(), b.topo.node_count());
  ASSERT_EQ(a.topo.link_count(), b.topo.link_count());
  for (std::size_t n = 0; n < a.topo.node_count(); ++n) {
    EXPECT_EQ(a.topo.name(n), b.topo.name(n));
  }
  for (std::size_t i = 0; i < a.topo.link_count(); ++i) {
    EXPECT_EQ(a.topo.link(i).a, b.topo.link(i).a);
    EXPECT_EQ(a.topo.link(i).b, b.topo.link(i).b);
  }
}

TEST(ScaledB4, ShapeAndConnectivity) {
  const auto topo = scaled_b4(3);
  EXPECT_EQ(topo.node_count(), 36u);
  // 19 intra-replica links per copy + 2 gateways per adjacent pair.
  EXPECT_EQ(topo.link_count(), 19u * 3 + 2u * 2);
  const auto path = topo.shortest_path(0, topo.node_count() - 1);
  EXPECT_GE(path.size(), 3u);  // spans all three replicas
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), topo.node_count() - 1);
}

TEST(FabricUpdate, DagShapeAndDeterminism) {
  FatTreeSpec spec;
  spec.k = 4;
  const auto ft = fat_tree(spec);
  FabricUpdateSpec us;
  us.n_flows = 50;
  Rng rng_a(42);
  const auto a = fabric_update_scenario(ft.topo, ft.nodes, us, rng_a);
  // Every flow yields at least ADD + MOD (shortest possible path is
  // 3 nodes intra-pod → 2 ADDs + 1 MOD) and at most 4 ADDs + 1 MOD.
  EXPECT_GE(a.size(), 3u * us.n_flows);
  EXPECT_LE(a.size(), 5u * us.n_flows);
  std::size_t mods = 0;
  std::set<SwitchId> touched;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& req = a.request(i);
    touched.insert(req.location);
    ASSERT_GE(req.location, 1u);
    ASSERT_LE(req.location, ft.topo.node_count());
    if (req.type == sched::RequestType::kMod) ++mods;
  }
  EXPECT_EQ(mods, us.n_flows);       // one repoint per flow
  EXPECT_GT(touched.size(), 10u);    // genuinely network-wide
  Rng rng_b(42);
  const auto b = fabric_update_scenario(ft.topo, ft.nodes, us, rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.request(i).location, b.request(i).location);
    EXPECT_EQ(a.request(i).type, b.request(i).type);
  }
}

}  // namespace
}  // namespace tango::workload
