// Chaos subsystem suite: schedule generation, repro round-tripping, replay
// bit-identity, delta-debugging shrinker behaviour, and the checked-in
// minimized reproducers of bugs the seed sweep actually found.
//
// Everything here is deterministic — schedules derive from seeds, the
// harness runs on the virtual clock, and the shrinker's probe sequence is a
// pure function of its input — so every assertion replays identically.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/harness.h"
#include "chaos/schedule.h"
#include "chaos/shrinker.h"
#include "common/logging.h"

namespace tango::chaos {
namespace {

ChaosSpec spec_of(std::uint64_t seed, Workload w, sched::RecoveryPolicy p,
                  Horizon h = Horizon::kShort) {
  ChaosSpec spec;
  spec.seed = seed;
  spec.workload = w;
  spec.policy = p;
  spec.horizon = h;
  return spec;
}

// ---------------------------------------------------------------------------
// Schedule generation
// ---------------------------------------------------------------------------

TEST(ChaosScheduleTest, GenerationIsDeterministic) {
  const auto spec = spec_of(42, Workload::kFig10,
                            sched::RecoveryPolicy::kRollForward);
  const auto a = generate_schedule(spec);
  const auto b = generate_schedule(spec);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.events.empty());
}

TEST(ChaosScheduleTest, DifferentSeedsDiverge) {
  const auto a = generate_schedule(
      spec_of(1, Workload::kFig10, sched::RecoveryPolicy::kRollForward));
  const auto b = generate_schedule(
      spec_of(2, Workload::kFig10, sched::RecoveryPolicy::kRollForward));
  EXPECT_NE(a, b);
}

TEST(ChaosScheduleTest, EventsAreSortedAndBounded) {
  for (const auto h : {Horizon::kShort, Horizon::kMedium, Horizon::kLong}) {
    const auto params = params_of(h);
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      const auto s = generate_schedule(
          spec_of(seed, Workload::kTrafficEngineering,
                  sched::RecoveryPolicy::kRollBack, h));
      ASSERT_LE(s.events.size(), params.max_events);
      for (std::size_t i = 1; i < s.events.size(); ++i) {
        ASSERT_LE(s.events[i - 1].at.ns(), s.events[i].at.ns());
      }
      for (const auto& ev : s.events) {
        ASSERT_LT(ev.at.ns(), params.window.ns());
        ASSERT_GT(ev.duration.ns(), 0);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// chaos_repro.v1 round trip
// ---------------------------------------------------------------------------

TEST(ChaosReproTest, JsonRoundTripPreservesEverything) {
  auto schedule = generate_schedule(
      spec_of(7, Workload::kAcl, sched::RecoveryPolicy::kRollBack,
              Horizon::kMedium));
  schedule.base_loss = 0.0325;
  const std::uint64_t fp = 0xdeadbeefcafef00dull;
  const std::vector<std::string> names = {"verifier", "counters"};

  const auto json = to_repro_json(schedule, fp, names);
  const auto parsed = parse_repro(json);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().schedule, schedule);
  EXPECT_EQ(parsed.value().fingerprint, fp);
  EXPECT_EQ(parsed.value().violations, names);
}

TEST(ChaosReproTest, RejectsWrongSchemaAndGarbage) {
  EXPECT_FALSE(parse_repro("").ok());
  EXPECT_FALSE(parse_repro("{}").ok());
  EXPECT_FALSE(parse_repro("not json at all").ok());
  EXPECT_FALSE(parse_repro(R"({"schema": "chaos_repro.v3", "seed": 1})").ok());
  EXPECT_FALSE(parse_repro(R"({"schema": "chaos_repro.v2", "seed": 1})").ok());
}

// Backward compatibility: v1 documents (no "misbehavior" flag, no per-event
// "magnitude") parse with both defaulted — old captured seeds stay replayable.
TEST(ChaosReproTest, ParsesLegacyV1Documents) {
  const std::string v1 = R"({
    "schema": "chaos_repro.v1",
    "seed": 5, "workload": "acl", "policy": "roll_forward",
    "horizon": "medium",
    "base_loss": 0.02,
    "events": [
      {"kind": "crash", "target": 1, "at_ns": 1000000,
       "duration_ns": 2000000, "drop": 0}
    ],
    "fingerprint": "0x1234",
    "violations": ["readback"]
  })";
  const auto parsed = parse_repro(v1);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const auto& schedule = parsed.value().schedule;
  EXPECT_EQ(schedule.spec.seed, 5u);
  EXPECT_FALSE(schedule.spec.misbehavior);
  ASSERT_EQ(schedule.events.size(), 1u);
  EXPECT_EQ(schedule.events[0].kind, FaultKind::kCrash);
  EXPECT_EQ(schedule.events[0].magnitude, 0.0);
  EXPECT_EQ(parsed.value().fingerprint, 0x1234u);
}

TEST(ChaosReproTest, V2RoundTripCarriesMisbehavior) {
  auto spec = spec_of(7, Workload::kFig10, sched::RecoveryPolicy::kRollForward);
  spec.misbehavior = true;
  const auto schedule = generate_schedule(spec);
  bool has_magnitude = false;
  for (const auto& ev : schedule.events) has_magnitude |= ev.magnitude > 0.0;
  EXPECT_TRUE(has_magnitude);

  const auto json = to_repro_json(schedule);
  EXPECT_NE(json.find("chaos_repro.v2"), std::string::npos);
  EXPECT_NE(json.find("\"misbehavior\": true"), std::string::npos);
  const auto parsed = parse_repro(json);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().schedule, schedule);
}

// ---------------------------------------------------------------------------
// Harness: clean runs and bit-identical replay
// ---------------------------------------------------------------------------

TEST(ChaosHarnessTest, CleanSeedsPassEveryOracle) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    for (const auto policy : {sched::RecoveryPolicy::kRollForward,
                              sched::RecoveryPolicy::kRollBack}) {
      const auto schedule =
          generate_schedule(spec_of(seed, Workload::kFig10, policy));
      const auto result = run_chaos(schedule);
      EXPECT_TRUE(result.ok())
          << "seed " << seed << ": " << to_string(result.violations.front());
    }
  }
}

TEST(ChaosHarnessTest, ReplayIsBitIdentical) {
  const auto schedule = generate_schedule(
      spec_of(11, Workload::kTrafficEngineering,
              sched::RecoveryPolicy::kRollForward));
  const auto first = run_chaos(schedule);
  const auto second = run_chaos(schedule);
  EXPECT_EQ(first.fingerprint, second.fingerprint);
  EXPECT_EQ(first.end_time.ns(), second.end_time.ns());
  EXPECT_EQ(first.report.exec.makespan.ns(), second.report.exec.makespan.ns());
  EXPECT_EQ(first.violations.size(), second.violations.size());
}

TEST(ChaosHarnessTest, FaultFreeScheduleIsQuietAndClean) {
  auto schedule = generate_schedule(
      spec_of(3, Workload::kFig10, sched::RecoveryPolicy::kRollForward));
  schedule.events.clear();
  schedule.base_loss = 0.0;
  const auto result = run_chaos(schedule);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.report.exec.timeouts, 0u);
  EXPECT_EQ(result.report.exec.retries, 0u);
}

// ---------------------------------------------------------------------------
// Shrinker
// ---------------------------------------------------------------------------

/// Synthetic violation: "fails" iff the schedule still carries a crash of
/// switch 2. The sweep-sized schedule must shrink to that single event.
TEST(ChaosShrinkerTest, SyntheticViolationShrinksToOneEventDeterministically) {
  auto failing = generate_schedule(
      spec_of(1, Workload::kFig10, sched::RecoveryPolicy::kRollForward,
              Horizon::kLong));
  FaultEvent trigger;
  trigger.kind = FaultKind::kCrash;
  trigger.target = 2;
  trigger.at = millis(400);
  trigger.duration = millis(10);
  failing.events.push_back(trigger);
  ASSERT_GE(failing.events.size(), 2u);

  const auto fails = [](const ChaosSchedule& s) {
    for (const auto& ev : s.events) {
      if (ev.kind == FaultKind::kCrash && ev.target == 2) return true;
    }
    return false;
  };

  const auto first = shrink_schedule(failing, fails);
  EXPECT_FALSE(first.budget_exhausted);
  ASSERT_LE(first.schedule.events.size(), 5u);  // acceptance bound
  ASSERT_EQ(first.schedule.events.size(), 1u);  // and in fact minimal
  EXPECT_EQ(first.schedule.events[0].kind, FaultKind::kCrash);
  EXPECT_EQ(first.schedule.events[0].target, 2u);
  EXPECT_EQ(first.schedule.base_loss, 0.0);  // final pass zeroed it

  const auto second = shrink_schedule(failing, fails);
  EXPECT_EQ(first.schedule, second.schedule);
  EXPECT_EQ(first.probes, second.probes);
}

TEST(ChaosShrinkerTest, NonFailingInputReturnsUnchanged) {
  const auto schedule = generate_schedule(
      spec_of(1, Workload::kFig10, sched::RecoveryPolicy::kRollForward));
  const auto result =
      shrink_schedule(schedule, [](const ChaosSchedule&) { return false; });
  EXPECT_EQ(result.schedule, schedule);
  EXPECT_EQ(result.probes, 1u);
}

TEST(ChaosShrinkerTest, AlwaysFailingShrinksToEmpty) {
  const auto schedule = generate_schedule(
      spec_of(9, Workload::kAcl, sched::RecoveryPolicy::kRollBack,
              Horizon::kMedium));
  const auto result =
      shrink_schedule(schedule, [](const ChaosSchedule&) { return true; });
  EXPECT_TRUE(result.schedule.events.empty());
}

// ---------------------------------------------------------------------------
// Checked-in reproducers (regression tests for bugs the sweep found)
// ---------------------------------------------------------------------------

ChaosSchedule load_repro(const std::string& name) {
  const std::string path = std::string(CHAOS_REPRO_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  const auto parsed = parse_repro(buf.str());
  EXPECT_TRUE(parsed.ok()) << parsed.error();
  return parsed.value().schedule;
}

// Regression: Network::run_until_done left the virtual clock frozen when a
// request timed out with an empty queue, so Reconciler::read_table's
// back-to-back retries never outlasted a reboot window and a crashed switch
// looked permanently unreadable (image-agreement + readback + verifier all
// fired). Minimized from seed 5 acl/roll-forward at medium horizon.
TEST(ChaosRegressionTest, LateCrashRecoversAclTable) {
  const auto result = run_chaos(load_repro("frozen_clock_acl.json"));
  EXPECT_TRUE(result.ok()) << to_string(result.violations.front());
}

// Same root cause through the transaction path: the commit-time reconciler
// could not read the rebooting switch either, reporting it unreconciled and
// leaving its table missing every repair. Minimized from seed 39
// te/roll-forward at medium horizon.
TEST(ChaosRegressionTest, MidCommitCrashPlusLossBurstReconciles) {
  const auto result = run_chaos(load_repro("frozen_clock_te.json"));
  EXPECT_TRUE(result.ok()) << to_string(result.violations.front());
}

// Regression: under kRollBack the reconcile() path never re-verified its
// work, so a switch serving one frozen FLOW_STATS snapshot could lie to the
// rollback reconciler's only readback — it saw a clean diff, declared
// convergence, and a transaction-installed rule survived in the real table
// (image-agreement: stale rule). Readback verification now also runs after
// policy-driven reconciliation, against the image the policy was supposed
// to converge to. Minimized from seed 2 acl/roll-back at short horizon
// with --misbehavior.
TEST(ChaosRegressionTest, StaleStatsCannotFoolRollbackReconcile) {
  const auto result =
      run_chaos(load_repro("stale_stats_rollback_acl.json"));
  EXPECT_TRUE(result.ok()) << to_string(result.violations.front());
}

// Companion case: a readback-verify repair on the fast path used to set
// report.reconciled, which the oracles (and the late-crash re-sync) read as
// "the transaction rolled back" — so after the repair correctly converged
// the table to the post image, the oracles demanded the pre image and every
// transaction rule looked stale or black-holed. rolled_back is now a
// separate flag set only by policy-driven rollback. Minimized from seed 2
// fig10/roll-back at short horizon with --misbehavior.
TEST(ChaosRegressionTest, ReadbackRepairIsNotARollback) {
  const auto result =
      run_chaos(load_repro("priority_inversion_rollback_fig10.json"));
  EXPECT_TRUE(result.ok()) << to_string(result.violations.front());
}

// ---------------------------------------------------------------------------
// Log rate limiting under fault storms
// ---------------------------------------------------------------------------

TEST(ChaosLogRateLimitTest, CapsPerKeyAndSummarizesSuppressed) {
  std::vector<std::string> lines;
  log::set_sink([&](log::Level, const std::string& msg) {
    lines.push_back(msg);
  });
  const auto prev_threshold = log::threshold();
  log::set_threshold(log::Level::kInfo);
  const auto prev_cap = log::set_rate_limit(3);

  for (int i = 0; i < 10; ++i) {
    log::warn("storm: event " + std::to_string(i));
  }
  log::flush_suppressed();

  log::set_rate_limit(prev_cap);
  log::set_threshold(prev_threshold);
  log::set_sink({});

  ASSERT_EQ(lines.size(), 4u);  // 3 through + 1 summary
  EXPECT_EQ(lines[0], "storm: event 0");
  EXPECT_EQ(lines[2], "storm: event 2");
  EXPECT_EQ(lines[3], "storm: suppressed 7 similar lines");
}

}  // namespace
}  // namespace tango::chaos
