// Differential property suite for the indexed flow-table core.
//
// The production tables (tables::Tcam, tables::SoftwareTable,
// tables::MicroflowCache) carry exact-match hash indexes, tuple-space
// candidate pruning, and lazy heaps; the reference tables
// (tests/reference_table.h) are the pre-index linear scans kept verbatim.
// These tests drive both through long seeded random operation sequences and
// assert every observable output is identical at every step: lookup
// winners, strict finds, removal sets and their order, shift counts,
// occupancy, physical entry order, eviction victims, and FIFO casualties.
// Any tie-break the indexes get wrong surfaces here as a one-line diff of
// the first divergent step.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "reference_table.h"
#include "tables/cache_policy.h"
#include "tables/software_table.h"
#include "tables/tcam.h"

namespace tango::tables {
namespace {

using testing::ReferenceMicroflowCache;
using testing::ReferenceSoftwareTable;
using testing::ReferenceTcam;

// ---------------------------------------------------------------------------
// Random workload generation: small field domains force overlapping matches,
// wildcard subsumption, and priority ties — the cases where index tie-breaks
// could silently diverge from the scans.
// ---------------------------------------------------------------------------

of::Match random_match(Rng& rng) {
  of::Match m;
  if (rng.chance(0.1)) return m;  // fully wildcarded (subsumes everything)
  if (rng.chance(0.15)) {
    // L2-only shape (one slot in adaptive mode, unsupported when mixed with
    // L3 in single-wide mode — the reject path is part of the diff).
    m.with_dl_src({1, 2, 3, 4, 5, static_cast<std::uint8_t>(rng.index(4))});
    if (rng.chance(0.5)) m.with_dl_vlan(static_cast<std::uint16_t>(rng.index(3)));
    return m;
  }
  m.with_dl_type(0x0800);
  if (rng.chance(0.7)) {
    const auto addr = 0x0a000000u + (static_cast<std::uint32_t>(rng.index(4)) << 8);
    const int len = static_cast<int>(rng.index(5)) * 8;  // 0..32
    m.set_nw_src_prefix(addr, len);
  }
  if (rng.chance(0.4)) {
    const auto addr = 0xc0a80000u + (static_cast<std::uint32_t>(rng.index(3)) << 8);
    m.set_nw_dst_prefix(addr, static_cast<int>(rng.index(3)) * 16);  // 0/16/32
  }
  if (rng.chance(0.3)) m.with_nw_proto(rng.chance(0.5) ? 6 : 17);
  if (rng.chance(0.3)) m.with_tp_dst(static_cast<std::uint16_t>(80 + rng.index(3)));
  if (rng.chance(0.2)) m.with_in_port(static_cast<std::uint16_t>(1 + rng.index(3)));
  return m;
}

of::PacketHeader random_packet(Rng& rng) {
  of::PacketHeader p;
  p.in_port = static_cast<std::uint16_t>(1 + rng.index(3));
  p.dl_src = {1, 2, 3, 4, 5, static_cast<std::uint8_t>(rng.index(4))};
  p.dl_type = 0x0800;
  p.nw_proto = rng.chance(0.5) ? 6 : 17;
  p.nw_src = 0x0a000000u + (static_cast<std::uint32_t>(rng.index(4)) << 8) +
             static_cast<std::uint32_t>(rng.index(4));
  p.nw_dst = 0xc0a80000u + (static_cast<std::uint32_t>(rng.index(3)) << 8);
  p.tp_dst = static_cast<std::uint16_t>(80 + rng.index(3));
  return p;
}

FlowEntry random_entry(Rng& rng, FlowId id, std::int64_t now_ns) {
  FlowEntry e;
  e.id = id;
  e.match = random_match(rng);
  // Tiny priority domain: most inserts tie with a resident entry, so the
  // equal-priority position/ordering rules are exercised constantly.
  e.priority = static_cast<std::uint16_t>(0x2000 + rng.index(3));
  if (rng.chance(0.3)) e.idle_timeout = static_cast<std::uint16_t>(1 + rng.index(2));
  if (rng.chance(0.3)) e.hard_timeout = static_cast<std::uint16_t>(1 + rng.index(3));
  e.attrs.insert_time = SimTime(now_ns);
  e.attrs.last_use_time = SimTime(now_ns);
  e.cookie = id * 17;
  return e;
}

std::vector<FlowId> ids_of(const std::vector<FlowEntry>& entries) {
  std::vector<FlowId> ids;
  ids.reserve(entries.size());
  for (const auto& e : entries) ids.push_back(e.id);
  return ids;
}

#define ASSERT_SAME_ENTRIES(idx_entries, ref_entries, step)              \
  do {                                                                   \
    ASSERT_EQ(ids_of(idx_entries), ids_of(ref_entries)) << "step " << (step); \
  } while (0)

// ---------------------------------------------------------------------------
// TCAM differential
// ---------------------------------------------------------------------------

void run_tcam_diff(TcamMode mode, std::uint64_t seed, std::size_t steps) {
  SCOPED_TRACE("mode=" + std::to_string(static_cast<int>(mode)) +
               " seed=" + std::to_string(seed));
  Rng rng(seed);
  Tcam idx({64, mode});
  ReferenceTcam ref({64, mode});
  FlowId next_id = 1;
  std::int64_t now_ns = 0;
  std::size_t accepted = 0;  // guards against a vacuously-empty-table pass
  std::vector<of::Match> installed_matches;  // pool for strict/filter ops

  for (std::size_t step = 0; step < steps; ++step) {
    now_ns += rng.uniform_int(0, 300'000'000);  // 0..0.3 s
    const SimTime now(now_ns);
    const int op = static_cast<int>(rng.index(100));

    if (op < 35) {  // insert
      const auto e = random_entry(rng, next_id++, now_ns);
      if (installed_matches.size() < 256) installed_matches.push_back(e.match);
      const auto a = idx.insert(e);
      const auto b = ref.insert(e);
      ASSERT_EQ(a.accepted, b.accepted) << "step " << step;
      ASSERT_EQ(a.shifts, b.shifts) << "step " << step;
      if (a.accepted) ++accepted;
    } else if (op < 45) {  // erase (possibly absent id)
      const FlowId id = static_cast<FlowId>(rng.index(next_id + 4));
      const auto a = idx.erase(id);
      const auto b = ref.erase(id);
      ASSERT_EQ(a.removed, b.removed) << "step " << step;
      ASSERT_EQ(a.shifts, b.shifts) << "step " << step;
    } else if (op < 50) {  // take
      const FlowId id = static_cast<FlowId>(rng.index(next_id + 4));
      std::size_t sa = 0, sb = 0;
      const auto a = idx.take(id, &sa);
      const auto b = ref.take(id, &sb);
      ASSERT_EQ(a.has_value(), b.has_value()) << "step " << step;
      if (a) { ASSERT_EQ(a->id, b->id) << "step " << step; }
      ASSERT_EQ(sa, sb) << "step " << step;
    } else if (op < 58) {  // erase_matching — removed order must be identical
      const auto filter = rng.chance(0.3) ? of::Match::any() : random_match(rng);
      std::size_t sa = 0, sb = 0;
      const auto a = idx.erase_matching(filter, &sa);
      const auto b = ref.erase_matching(filter, &sb);
      ASSERT_SAME_ENTRIES(a, b, step);
      ASSERT_EQ(sa, sb) << "step " << step;
    } else if (op < 65) {  // take_expired — expiry order must be identical
      const auto a = idx.take_expired(now);
      const auto b = ref.take_expired(now);
      ASSERT_SAME_ENTRIES(a, b, step);
    } else if (op < 85) {  // lookup
      const auto pkt = random_packet(rng);
      const auto* a = idx.lookup(pkt);
      auto* b = ref.lookup(pkt);
      ASSERT_EQ(a != nullptr, b != nullptr) << "step " << step;
      if (a != nullptr) { ASSERT_EQ(a->id, b->id) << "step " << step; }
    } else if (op < 90) {  // find_strict over a previously-seen match
      if (installed_matches.empty()) continue;
      const auto& m = installed_matches[rng.index(installed_matches.size())];
      const auto prio = static_cast<std::uint16_t>(0x2000 + rng.index(3));
      const auto* a = idx.find_strict(m, prio);
      auto* b = ref.find_strict(m, prio);
      ASSERT_EQ(a != nullptr, b != nullptr) << "step " << step;
      if (a != nullptr) { ASSERT_EQ(a->id, b->id) << "step " << step; }
    } else if (op < 95) {  // modify_matching
      const auto filter = random_match(rng);
      const auto actions = of::output_to(static_cast<std::uint16_t>(1 + rng.index(4)));
      ASSERT_EQ(idx.modify_matching(filter, actions),
                ref.modify_matching(filter, actions))
          << "step " << step;
    } else if (op < 99) {  // replace (same id/match/priority, new payload)
      if (idx.size() == 0) continue;
      const FlowId id = idx.entries()[rng.index(idx.size())].id;
      const auto* live = idx.find_by_id(id);
      ASSERT_NE(live, nullptr);
      FlowEntry repl = *live;
      repl.cookie += 1000;
      repl.actions = of::output_to(9);
      repl.idle_timeout = static_cast<std::uint16_t>(rng.index(3));
      ASSERT_EQ(idx.replace(id, repl), ref.replace(id, repl)) << "step " << step;
    } else {  // clear
      idx.clear();
      ref.clear();
      installed_matches.clear();
    }

    ASSERT_EQ(idx.size(), ref.size()) << "step " << step;
    ASSERT_EQ(idx.slots_used(), ref.slots_used()) << "step " << step;
    if (step % 64 == 0) ASSERT_SAME_ENTRIES(idx.entries(), ref.entries(), step);
  }
  ASSERT_SAME_ENTRIES(idx.entries(), ref.entries(), steps);
  EXPECT_GT(accepted, steps / 10);  // the sequence actually filled tables
}

TEST(TcamDiff, RandomOpSequencesSingleWide) {
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    run_tcam_diff(TcamMode::kSingleWide, seed, 2000);
  }
}

TEST(TcamDiff, RandomOpSequencesAdaptive) {
  for (const std::uint64_t seed : {44u, 55u}) {
    run_tcam_diff(TcamMode::kAdaptive, seed, 2000);
  }
}

TEST(TcamDiff, RandomOpSequencesDoubleWide) {
  run_tcam_diff(TcamMode::kDoubleWide, 66, 2000);
}

// ---------------------------------------------------------------------------
// Software table differential
// ---------------------------------------------------------------------------

void run_software_diff(std::size_t capacity, std::uint64_t seed,
                       std::size_t steps) {
  SCOPED_TRACE("capacity=" + std::to_string(capacity) +
               " seed=" + std::to_string(seed));
  Rng rng(seed);
  SoftwareTable idx(capacity);
  ReferenceSoftwareTable ref(capacity);
  FlowId next_id = 1;
  std::int64_t now_ns = 0;
  std::size_t accepted = 0;
  std::vector<of::Match> installed_matches;

  for (std::size_t step = 0; step < steps; ++step) {
    now_ns += rng.uniform_int(0, 300'000'000);
    const SimTime now(now_ns);
    const int op = static_cast<int>(rng.index(100));

    if (op < 35) {  // insert (capacity rejection must agree)
      const auto e = random_entry(rng, next_id++, now_ns);
      if (installed_matches.size() < 256) installed_matches.push_back(e.match);
      const bool a = idx.insert(e);
      ASSERT_EQ(a, ref.insert(e)) << "step " << step;
      if (a) ++accepted;
    } else if (op < 45) {  // erase
      const FlowId id = static_cast<FlowId>(rng.index(next_id + 4));
      const auto a = idx.erase(id);
      const auto b = ref.erase(id);
      ASSERT_EQ(a.has_value(), b.has_value()) << "step " << step;
      if (a) { ASSERT_EQ(a->id, b->id) << "step " << step; }
    } else if (op < 53) {  // erase_matching
      const auto filter = rng.chance(0.3) ? of::Match::any() : random_match(rng);
      ASSERT_SAME_ENTRIES(idx.erase_matching(filter), ref.erase_matching(filter),
                          step);
    } else if (op < 60) {  // take_expired
      ASSERT_SAME_ENTRIES(idx.take_expired(now), ref.take_expired(now), step);
    } else if (op < 68) {  // pop_oldest — tie on insert_time keeps earliest pos
      const auto a = idx.pop_oldest();
      const auto b = ref.pop_oldest();
      ASSERT_EQ(a.has_value(), b.has_value()) << "step " << step;
      if (a) { ASSERT_EQ(a->id, b->id) << "step " << step; }
    } else if (op < 85) {  // lookup: max priority, earliest position on tie
      const auto pkt = random_packet(rng);
      const auto* a = idx.lookup(pkt);
      auto* b = ref.lookup(pkt);
      ASSERT_EQ(a != nullptr, b != nullptr) << "step " << step;
      if (a != nullptr) { ASSERT_EQ(a->id, b->id) << "step " << step; }
    } else if (op < 90) {  // find_strict
      if (installed_matches.empty()) continue;
      const auto& m = installed_matches[rng.index(installed_matches.size())];
      const auto prio = static_cast<std::uint16_t>(0x2000 + rng.index(3));
      const auto* a = idx.find_strict(m, prio);
      auto* b = ref.find_strict(m, prio);
      ASSERT_EQ(a != nullptr, b != nullptr) << "step " << step;
      if (a != nullptr) { ASSERT_EQ(a->id, b->id) << "step " << step; }
    } else if (op < 95) {  // modify_matching
      const auto filter = random_match(rng);
      const auto actions = of::output_to(static_cast<std::uint16_t>(1 + rng.index(4)));
      ASSERT_EQ(idx.modify_matching(filter, actions),
                ref.modify_matching(filter, actions))
          << "step " << step;
    } else if (op < 99) {  // replace
      if (idx.size() == 0) continue;
      const FlowId id = idx.entries()[rng.index(idx.size())].id;
      FlowEntry repl = *idx.find_by_id(id);
      repl.cookie += 1000;
      repl.hard_timeout = static_cast<std::uint16_t>(rng.index(4));
      ASSERT_EQ(idx.replace(id, repl), ref.replace(id, repl)) << "step " << step;
    } else {
      idx.clear();
      ref.clear();
      installed_matches.clear();
    }

    ASSERT_EQ(idx.size(), ref.size()) << "step " << step;
    if (step % 64 == 0) ASSERT_SAME_ENTRIES(idx.entries(), ref.entries(), step);
  }
  ASSERT_SAME_ENTRIES(idx.entries(), ref.entries(), steps);
  EXPECT_GT(accepted, steps / 10);
}

TEST(SoftwareTableDiff, RandomOpSequencesUnbounded) {
  for (const std::uint64_t seed : {101u, 102u}) run_software_diff(0, seed, 2000);
}

TEST(SoftwareTableDiff, RandomOpSequencesBounded) {
  run_software_diff(24, 103, 2000);
}

// ---------------------------------------------------------------------------
// Microflow cache differential: FIFO casualties under capacity pressure and
// per-rule invalidation must agree key for key.
// ---------------------------------------------------------------------------

void run_microflow_diff(std::size_t capacity, std::uint64_t seed,
                        std::size_t steps) {
  SCOPED_TRACE("capacity=" + std::to_string(capacity) +
               " seed=" + std::to_string(seed));
  Rng rng(seed);
  MicroflowCache idx(capacity);
  ReferenceMicroflowCache ref(capacity);

  // Fixed key universe so overwrite-resident and re-insert-after-eviction
  // paths fire often.
  std::vector<of::PacketHeader> keys;
  for (int i = 0; i < 48; ++i) keys.push_back(random_packet(rng));
  std::int64_t now_ns = 0;

  for (std::size_t step = 0; step < steps; ++step) {
    now_ns += 1000;
    const SimTime now(now_ns);
    const int op = static_cast<int>(rng.index(100));
    const auto& key = keys[rng.index(keys.size())];

    if (op < 50) {  // insert (fresh key or overwrite)
      const FlowId rule = static_cast<FlowId>(rng.index(12));
      const auto actions = of::output_to(static_cast<std::uint16_t>(1 + rule));
      idx.insert(key, rule, actions, now);
      ref.insert(key, rule, actions, now);
    } else if (op < 80) {  // lookup
      const auto a = idx.lookup(key, now);
      const auto b = ref.lookup(key, now);
      ASSERT_EQ(a.has_value(), b.has_value()) << "step " << step;
      if (a) { ASSERT_EQ(a->source_rule, b->source_rule) << "step " << step; }
    } else if (op < 95) {  // invalidate one rule's microflows
      const FlowId rule = static_cast<FlowId>(rng.index(12));
      idx.invalidate_rule(rule);
      ref.invalidate_rule(rule);
    } else {
      idx.clear();
      ref.clear();
    }

    ASSERT_EQ(idx.size(), ref.size()) << "step " << step;
    if (step % 32 == 0) {
      for (std::size_t k = 0; k < keys.size(); ++k) {
        ASSERT_EQ(idx.contains(keys[k]), ref.contains(keys[k]))
            << "step " << step << " key " << k;
      }
    }
  }
}

TEST(MicroflowDiff, RandomOpSequencesBounded) {
  for (const std::uint64_t seed : {7u, 8u}) run_microflow_diff(16, seed, 3000);
}

TEST(MicroflowDiff, RandomOpSequencesUnbounded) {
  run_microflow_diff(0, 9, 2000);
}

// ---------------------------------------------------------------------------
// Eviction-heap differential: for random lexicographic policies (random key
// permutations and directions, ties and serial attributes included), the
// O(log n) heap victim must equal the O(n) victim_index scan after every
// mutation — insert, hit, replace, and eviction itself.
// ---------------------------------------------------------------------------

LexCachePolicy random_policy(Rng& rng) {
  const Attribute attrs[] = {Attribute::kInsertionTime, Attribute::kUseTime,
                             Attribute::kTrafficCount, Attribute::kPriority};
  const auto perm = rng.permutation(4);
  const std::size_t depth = 1 + rng.index(4);
  std::vector<PolicyKey> keys;
  for (std::size_t i = 0; i < depth; ++i) {
    keys.push_back(PolicyKey{attrs[perm[i]], rng.chance(0.5)
                                                 ? Direction::kPreferHigh
                                                 : Direction::kPreferLow});
  }
  return LexCachePolicy::lex(std::move(keys));
}

TEST(EvictionHeapDiff, VictimMatchesLinearScanForRandomPolicies) {
  Rng rng(0xfeed);
  for (int trial = 0; trial < 40; ++trial) {
    const auto policy = random_policy(rng);
    SCOPED_TRACE("trial " + std::to_string(trial) + ": " + policy.describe());
    Tcam idx({64, TcamMode::kSingleWide});
    ReferenceTcam ref({64, TcamMode::kSingleWide});
    idx.set_eviction_policy(&policy);
    FlowId next_id = 1;
    std::int64_t now_ns = 0;

    for (int step = 0; step < 250; ++step) {
      now_ns += rng.uniform_int(0, 5000);
      const SimTime now(now_ns);
      const int op = static_cast<int>(rng.index(100));

      if (op < 40 || idx.size() == 0) {  // insert
        auto e = random_entry(rng, next_id++, now_ns);
        // Coarse attribute values maximize rank ties.
        e.attrs.insert_time = SimTime((now_ns / 2000) * 2000);
        e.attrs.last_use_time = e.attrs.insert_time;
        e.attrs.traffic_count = rng.index(3);
        e.idle_timeout = 0;
        e.hard_timeout = 0;
        const auto a = idx.insert(e);
        const auto b = ref.insert(e);
        ASSERT_EQ(a.accepted, b.accepted);
      } else if (op < 65) {  // hit: mutate use time + traffic in both copies
        const FlowId id = idx.entries()[rng.index(idx.size())].id;
        auto* live = idx.find_by_id(id);
        ASSERT_NE(live, nullptr);
        live->record_hit(now, 100);
        idx.note_attrs_changed(id);
        for (auto& e : ref.mutable_entries()) {
          if (e.id == id) e.record_hit(now, 100);
        }
      } else if (op < 80) {  // evict the victim itself
        const auto vid = idx.victim_id();
        ASSERT_EQ(vid, ref.victim_id(policy)) << "step " << step;
        if (vid) {
          idx.erase(*vid);
          ref.erase(*vid);
        }
      } else {  // erase an arbitrary entry
        const FlowId id = idx.entries()[rng.index(idx.size())].id;
        idx.erase(id);
        ref.erase(id);
      }

      ASSERT_EQ(idx.victim_id(), ref.victim_id(policy)) << "step " << step;
    }
  }
}

// ---------------------------------------------------------------------------
// Delete-during-iteration regression. The switch's timeout sweep used to
// hand-roll two reverse-erase loops over tables it was iterating; it now
// delegates to the tables' take_expired(). This pins the contract that made
// the unification safe: a sweep where many interleaved entries expire at the
// same instant removes exactly the expired set, in descending physical
// order, without disturbing survivors.
// ---------------------------------------------------------------------------

TEST(SweepRegression, InterleavedSimultaneousExpiryMatchesReference) {
  Tcam idx({128, TcamMode::kSingleWide});
  ReferenceTcam ref({128, TcamMode::kSingleWide});
  SoftwareTable sidx(0);
  ReferenceSoftwareTable sref(0);
  Rng rng(4242);

  for (FlowId id = 1; id <= 60; ++id) {
    auto e = random_entry(rng, id, 1000);
    // Alternate: idle-expiring, hard-expiring, and permanent entries, so
    // the expired set is interleaved through the physical array.
    e.idle_timeout = (id % 3 == 0) ? 1 : 0;
    e.hard_timeout = (id % 3 == 1) ? 2 : 0;
    idx.insert(e);
    ref.insert(e);
    sidx.insert(e);
    sref.insert(e);
  }

  const SimTime later = SimTime(1000) + seconds(5);  // everything timed expires
  const auto a = idx.take_expired(later);
  const auto b = ref.take_expired(later);
  ASSERT_SAME_ENTRIES(a, b, 0);
  EXPECT_EQ(a.size(), 40u);  // ids % 3 == 0 or 1
  ASSERT_SAME_ENTRIES(idx.entries(), ref.entries(), 0);

  const auto sa = sidx.take_expired(later);
  const auto sb = sref.take_expired(later);
  ASSERT_SAME_ENTRIES(sa, sb, 0);
  ASSERT_SAME_ENTRIES(sidx.entries(), sref.entries(), 0);

  // Survivors still resolve through every index.
  for (const auto& e : idx.entries()) {
    EXPECT_EQ(idx.find_by_id(e.id)->id, e.id);
    EXPECT_EQ(idx.find_strict(e.match, e.priority) != nullptr,
              ref.find_strict(e.match, e.priority) != nullptr);
  }
  // A second sweep at the same instant is a no-op, not a re-delete.
  EXPECT_TRUE(idx.take_expired(later).empty());
  EXPECT_TRUE(sidx.take_expired(later).empty());
}

}  // namespace
}  // namespace tango::tables
