// Tests for the latency profiler (the measurement side of the Tango
// "rewriting patterns"): it must expose the priority-order asymmetry on
// hardware-style switches and the flatness of OVS, plus the pattern/score
// database plumbing.
#include <gtest/gtest.h>

#include "net/network.h"
#include "switchsim/profiles.h"
#include "tango/latency_profiler.h"
#include "tango/tango.h"

namespace tango::core {
namespace {

namespace profiles = switchsim::profiles;

OpCostEstimate profile_switch(const switchsim::SwitchProfile& profile,
                              ScoreDb* scores = nullptr) {
  net::Network net;
  const auto id = net.add_switch(profile);
  ProbeEngine probe(net, id);
  return profile_op_costs(probe, {}, scores);
}

TEST(PrioritySequences, GeneratorsProduceExpectedOrders) {
  const auto asc = ascending_priorities(5);
  EXPECT_EQ(asc, (std::vector<std::uint16_t>{100, 101, 102, 103, 104}));
  const auto desc = descending_priorities(5);
  EXPECT_EQ(desc, (std::vector<std::uint16_t>{104, 103, 102, 101, 100}));
  const auto same = constant_priorities(3, 42);
  EXPECT_EQ(same, (std::vector<std::uint16_t>{42, 42, 42}));
  Rng rng(1);
  auto rand = random_priorities(5, rng);
  std::sort(rand.begin(), rand.end());
  EXPECT_EQ(rand, asc);  // same multiset, shuffled
}

TEST(MakeAddBatch, BuildsSequentialProbeRules) {
  const auto batch = make_add_batch(10, 3, {7, 8, 9});
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].priority, 7);
  EXPECT_EQ(batch[2].priority, 9);
  EXPECT_EQ(batch[0].command, of::FlowModCommand::kAdd);
  EXPECT_NE(batch[0].match, batch[1].match);
}

TEST(Profiler, HardwareSwitchIsPrioritySensitive) {
  const auto est = profile_switch(profiles::switch1());
  EXPECT_GT(est.add_descending_ms, est.add_ascending_ms * 2)
      << "desc " << est.add_descending_ms << " asc " << est.add_ascending_ms;
  EXPECT_GT(est.add_random_ms, est.add_ascending_ms);
  EXPECT_LT(est.add_same_priority_ms, est.add_ascending_ms);
  EXPECT_TRUE(est.priority_sensitive());
  EXPECT_DOUBLE_EQ(est.best_add_ms(),
                   std::min(est.add_ascending_ms, est.add_same_priority_ms));
}

TEST(Profiler, OvsIsPriorityInsensitive) {
  const auto est = profile_switch(profiles::ovs());
  EXPECT_LT(est.add_descending_ms, est.add_ascending_ms * 1.3);
  EXPECT_FALSE(est.priority_sensitive());
  // OVS per-rule adds sit in the tens of microseconds (Fig 8 scale).
  EXPECT_LT(est.add_ascending_ms, 0.2);
}

TEST(Profiler, ModCheaperThanShiftingAddsOnHardware) {
  const auto est = profile_switch(profiles::switch1());
  // Fig 3(b): modifying existing entries avoids TCAM shifting and ends up
  // several times cheaper than random adds at depth.
  EXPECT_LT(est.mod_ms, est.add_random_ms);
}

TEST(Profiler, RecordsPatternsIntoScoreDb) {
  ScoreDb scores;
  profile_switch(profiles::switch1(), &scores);
  EXPECT_NE(scores.find(1, "add.ascending"), nullptr);
  EXPECT_NE(scores.find(1, "add.descending"), nullptr);
  EXPECT_NE(scores.find(1, "mod.existing"), nullptr);
  EXPECT_NE(scores.find(1, "del.existing"), nullptr);
  const auto* asc = scores.find(1, "add.ascending");
  EXPECT_GT(asc->install_time.ns(), 0);
  EXPECT_EQ(asc->switch_id, 1u);
}

TEST(PatternDbTest, PutFindNames) {
  PatternDb db;
  TangoPattern p;
  p.name = "test.pattern";
  p.commands = {ProbeEngine::probe_add(0)};
  db.put(p);
  EXPECT_NE(db.find("test.pattern"), nullptr);
  EXPECT_EQ(db.find("missing"), nullptr);
  EXPECT_EQ(db.names(), std::vector<std::string>{"test.pattern"});
}

TEST(ScoreDbTest, OverwritesAndQueriesPerSwitch) {
  ScoreDb db;
  PatternMeasurement m;
  m.pattern = "p";
  m.switch_id = 3;
  m.install_time = millis(5);
  db.record(m);
  m.install_time = millis(7);
  db.record(m);  // overwrite
  ASSERT_NE(db.find(3, "p"), nullptr);
  EXPECT_DOUBLE_EQ(db.find(3, "p")->install_time.ms(), 7.0);
  EXPECT_EQ(db.for_switch(3).size(), 1u);
  EXPECT_TRUE(db.for_switch(9).empty());
  EXPECT_EQ(db.size(), 1u);
}

TEST(ProbeEngineTest, ApplyPatternMeasuresInstallAndTraffic) {
  net::Network net;
  const auto id = net.add_switch(profiles::switch2());
  ProbeEngine probe(net, id);

  TangoPattern pattern;
  pattern.name = "probe.test";
  pattern.commands = make_add_batch(0, 10, constant_priorities(10));
  for (std::uint32_t i = 0; i < 10; ++i) {
    pattern.traffic.push_back(ProbeEngine::probe_packet(i));
  }
  ScoreDb scores;
  const auto m = probe.apply(pattern, &scores);
  EXPECT_EQ(m.rejected, 0u);
  EXPECT_GT(m.install_time.ms(), 0.0);
  ASSERT_EQ(m.rtts.size(), 10u);
  for (const auto& rtt : m.rtts) {
    EXPECT_NEAR(rtt.ms(), 0.4, 0.2);  // switch2 fast path
  }
  EXPECT_NE(scores.find(id, "probe.test"), nullptr);
}

TEST(ProbeEngineTest, ClearRulesEmptiesSwitch) {
  net::Network net;
  const auto id = net.add_switch(profiles::switch1());
  ProbeEngine probe(net, id);
  for (std::uint32_t i = 0; i < 5; ++i) probe.install(i);
  EXPECT_GT(net.sw(id).total_rules(), 0u);
  probe.clear_rules();
  EXPECT_EQ(net.sw(id).total_rules(), 0u);
}

TEST(ProbeEngineTest, TimedBatchReportsRejections) {
  net::Network net;
  auto profile = profiles::switch2();
  profile.cache_levels[0].capacity_slots = 8;  // 4 entries
  profile.install_default_route = false;
  const auto id = net.add_switch(profile);
  ProbeEngine probe(net, id);
  std::size_t rejected = 0;
  probe.timed_batch(make_add_batch(0, 10, constant_priorities(10)), &rejected);
  EXPECT_EQ(rejected, 6u);
}

// ---------------------------------------------------------------------------
// TangoController facade: full learn() pipeline
// ---------------------------------------------------------------------------

TEST(TangoControllerTest, LearnsPolicyCacheSwitchEndToEnd) {
  net::Network net;
  const auto id = net.add_switch(
      profiles::policy_cache("learned", {200}, tables::LexCachePolicy::lru()));
  TangoController tango(net);
  LearnOptions options;
  options.size.max_rules = 600;
  const auto& know = tango.learn(id, options);

  EXPECT_EQ(know.switch_id, id);
  ASSERT_EQ(know.sizes.clusters.size(), 2u);
  EXPECT_NEAR(know.sizes.layer_sizes[0], 200.0, 10.0);
  ASSERT_TRUE(know.policy.has_value());
  ASSERT_FALSE(know.policy->policy.keys().empty());
  EXPECT_EQ(know.policy->policy.keys()[0].attr, tables::Attribute::kUseTime);
  EXPECT_GT(know.costs.add_descending_ms, know.costs.add_ascending_ms);

  // learn() caches; a second call must not re-probe (same address back).
  const auto& again = tango.learn(id, options);
  EXPECT_EQ(&know, &again);
  EXPECT_TRUE(tango.knows(id));
  EXPECT_FALSE(tango.knows(id + 77));

  const auto text = know.summary();
  EXPECT_NE(text.find("use_time"), std::string::npos);
  EXPECT_NE(text.find("layers=["), std::string::npos);
}

TEST(TangoControllerTest, SkipsPolicyForUnboundedSwitch) {
  net::Network net;
  const auto id = net.add_switch(profiles::ovs());
  TangoController tango(net);
  LearnOptions options;
  options.size.max_rules = 256;
  const auto& know = tango.learn(id, options);
  EXPECT_FALSE(know.policy.has_value());
  EXPECT_EQ(know.fast_table_size(), 0u);  // unbounded
}

}  // namespace
}  // namespace tango::core
