// Unit tests for the common utilities: time types, byte buffers, Result,
// and the deterministic RNG.
#include <gtest/gtest.h>

#include "common/buffer.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/types.h"

namespace tango {
namespace {

TEST(SimDuration, ArithmeticAndConversions) {
  const SimDuration d = millis(1.5);
  EXPECT_EQ(d.ns(), 1500000);
  EXPECT_DOUBLE_EQ(d.ms(), 1.5);
  EXPECT_DOUBLE_EQ(d.us(), 1500.0);
  EXPECT_DOUBLE_EQ(d.sec(), 0.0015);

  EXPECT_EQ((micros(10) + micros(5)).ns(), 15000);
  EXPECT_EQ((micros(10) - micros(5)).ns(), 5000);
  EXPECT_EQ((micros(10) * 3).ns(), 30000);
  EXPECT_EQ((micros(10) / 2).ns(), 5000);
  EXPECT_LT(micros(10), micros(11));
}

TEST(SimTime, OffsetAndDifference) {
  SimTime t{1000};
  t += micros(1);
  EXPECT_EQ(t.ns(), 2000);
  const SimTime u = t + millis(1);
  EXPECT_EQ((u - t).ns(), 1000000);
  EXPECT_GT(u, t);
}

TEST(FormatDuration, PicksHumanUnits) {
  EXPECT_EQ(format_duration(nanos(12)), "12ns");
  EXPECT_EQ(format_duration(micros(1.5)), "1.50us");
  EXPECT_EQ(format_duration(millis(2.25)), "2.250ms");
  EXPECT_EQ(format_duration(seconds(3.5)), "3.500s");
}

TEST(BufWriter, BigEndianLayout) {
  BufWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0102030405060708ULL);
  const auto& b = w.bytes();
  ASSERT_EQ(b.size(), 15u);
  EXPECT_EQ(b[0], 0xab);
  EXPECT_EQ(b[1], 0x12);
  EXPECT_EQ(b[2], 0x34);
  EXPECT_EQ(b[3], 0xde);
  EXPECT_EQ(b[6], 0xef);
  EXPECT_EQ(b[7], 0x01);
  EXPECT_EQ(b[14], 0x08);
}

TEST(BufWriter, PatchU16) {
  BufWriter w;
  w.u16(0);
  w.u32(42);
  w.patch_u16(0, static_cast<std::uint16_t>(w.size()));
  BufReader r(w.bytes());
  EXPECT_EQ(r.u16(), 6);
}

TEST(BufReader, RoundTrip) {
  BufWriter w;
  w.u8(7);
  w.u16(300);
  w.u32(70000);
  w.u64(1ULL << 40);
  BufReader r(w.bytes());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 300);
  EXPECT_EQ(r.u32(), 70000u);
  EXPECT_EQ(r.u64(), 1ULL << 40);
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_FALSE(r.failed());
}

TEST(BufReader, OutOfBoundsSetsFailedInsteadOfUB) {
  BufWriter w;
  w.u16(5);
  BufReader r(w.bytes());
  EXPECT_EQ(r.u16(), 5);
  EXPECT_EQ(r.u32(), 0u);  // past the end
  EXPECT_TRUE(r.failed());
}

TEST(BufReader, SkipAndRaw) {
  BufWriter w;
  w.zeros(4);
  w.u8(9);
  BufReader r(w.bytes());
  r.skip(4);
  EXPECT_EQ(r.u8(), 9);
  BufReader r2(w.bytes());
  auto s = r2.raw(5);
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s[4], 9);
}

TEST(Result, ValueAndError) {
  Result<int> ok = 3;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 3);
  Result<int> err = Error{"nope"};
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error(), "nope");
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000000), b.uniform_int(0, 1000000));
  }
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(99);
  const auto p = rng.permutation(257);
  std::vector<bool> seen(257, false);
  for (auto v : p) {
    ASSERT_LT(v, 257u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(Rng, IndexCoversRange) {
  Rng rng(5);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) ++counts[rng.index(4)];
  for (int c : counts) EXPECT_GT(c, 700);
}

}  // namespace
}  // namespace tango
