// Unit tests for the flow-table building blocks: the lexicographic cache
// policy model, the TCAM shift/capacity model, and the software tables.
#include <gtest/gtest.h>

#include "tables/cache_policy.h"
#include "tables/software_table.h"
#include "tables/tcam.h"

namespace tango::tables {
namespace {

FlowEntry entry(FlowId id, std::uint16_t priority, std::int64_t insert_ns = 0,
                std::int64_t use_ns = 0, std::uint64_t traffic = 0) {
  FlowEntry e;
  e.id = id;
  e.priority = priority;
  e.match.set_nw_src_prefix(0x0a000000u + static_cast<std::uint32_t>(id), 32);
  e.attrs.insert_time = SimTime{insert_ns};
  e.attrs.last_use_time = SimTime{use_ns};
  e.attrs.traffic_count = traffic;
  return e;
}

FlowEntry l2_entry(FlowId id, std::uint16_t priority = 10) {
  FlowEntry e;
  e.id = id;
  e.priority = priority;
  e.match.with_dl_dst({0, 0, 0, 0, 0, static_cast<std::uint8_t>(id)});
  return e;
}

FlowEntry wide_entry(FlowId id, std::uint16_t priority = 10) {
  FlowEntry e = l2_entry(id, priority);
  e.match.set_nw_src_prefix(0x0a000000u + static_cast<std::uint32_t>(id), 32);
  return e;
}

// ---------------------------------------------------------------------------
// Cache policies
// ---------------------------------------------------------------------------

TEST(CachePolicy, FifoEvictsOldestInsertion) {
  const auto p = LexCachePolicy::fifo();
  const auto a = entry(1, 10, /*insert=*/100);
  const auto b = entry(2, 10, /*insert=*/200);
  EXPECT_TRUE(p.prefers(b, a));
  EXPECT_FALSE(p.prefers(a, b));
  const FlowEntry* arr[] = {&a, &b};
  EXPECT_EQ(p.victim_index({arr, 2}), 0u);
}

TEST(CachePolicy, LruEvictsLeastRecentlyUsed) {
  const auto p = LexCachePolicy::lru();
  const auto a = entry(1, 10, 0, /*use=*/500);
  const auto b = entry(2, 10, 0, /*use=*/100);
  const FlowEntry* arr[] = {&a, &b};
  EXPECT_EQ(p.victim_index({arr, 2}), 1u);
}

TEST(CachePolicy, LfuEvictsColdestFlow) {
  const auto p = LexCachePolicy::lfu();
  const auto a = entry(1, 10, 0, 0, /*traffic=*/99);
  const auto b = entry(2, 10, 0, 0, /*traffic=*/3);
  const FlowEntry* arr[] = {&a, &b};
  EXPECT_EQ(p.victim_index({arr, 2}), 1u);
}

TEST(CachePolicy, PriorityEvictsLowestPriority) {
  const auto p = LexCachePolicy::priority_based();
  const auto a = entry(1, 1000);
  const auto b = entry(2, 50);
  const FlowEntry* arr[] = {&a, &b};
  EXPECT_EQ(p.victim_index({arr, 2}), 1u);
}

TEST(CachePolicy, LexCompositionTieBreaks) {
  // Traffic first (high stays), then priority (high stays).
  const auto p = LexCachePolicy::lex(
      {{Attribute::kTrafficCount, Direction::kPreferHigh},
       {Attribute::kPriority, Direction::kPreferHigh}});
  const auto a = entry(1, 100, 0, 0, 50);
  const auto b = entry(2, 900, 0, 0, 50);  // traffic tied, priority decides
  const auto c = entry(3, 999, 0, 0, 10);  // lowest traffic: always victim
  const FlowEntry* arr[] = {&a, &b, &c};
  EXPECT_EQ(p.victim_index({arr, 3}), 2u);
  EXPECT_TRUE(p.prefers(b, a));
}

TEST(CachePolicy, PreferLowDirectionInverts) {
  const auto p = LexCachePolicy::lex({{Attribute::kPriority, Direction::kPreferLow}});
  const auto a = entry(1, 10);
  const auto b = entry(2, 20);
  EXPECT_TRUE(p.prefers(a, b));
}

TEST(CachePolicy, FullTieFallsBackToOlderId) {
  const auto p = LexCachePolicy::fifo();
  const auto a = entry(1, 10, 100);
  const auto b = entry(2, 10, 100);
  EXPECT_TRUE(p.prefers(a, b));  // deterministic: incumbent (lower id) wins
}

TEST(CachePolicy, DescribeNamesKeys) {
  const auto p = LexCachePolicy::lex(
      {{Attribute::kTrafficCount, Direction::kPreferHigh},
       {Attribute::kUseTime, Direction::kPreferLow}});
  const auto d = p.describe();
  EXPECT_NE(d.find("traffic_count(high stays)"), std::string::npos);
  EXPECT_NE(d.find("use_time(low stays)"), std::string::npos);
}

TEST(CachePolicy, SerialAttributeClassification) {
  EXPECT_TRUE(is_serial_attribute(Attribute::kInsertionTime));
  EXPECT_TRUE(is_serial_attribute(Attribute::kUseTime));
  EXPECT_FALSE(is_serial_attribute(Attribute::kTrafficCount));
  EXPECT_FALSE(is_serial_attribute(Attribute::kPriority));
}

// ---------------------------------------------------------------------------
// TCAM
// ---------------------------------------------------------------------------

TEST(TcamTest, AscendingPriorityInsertsNeverShift) {
  Tcam t({100, TcamMode::kSingleWide});
  for (int i = 0; i < 50; ++i) {
    const auto out = t.insert(entry(i, static_cast<std::uint16_t>(100 + i)));
    ASSERT_TRUE(out.accepted);
    EXPECT_EQ(out.shifts, 0u) << "insert " << i;
  }
}

TEST(TcamTest, DescendingPriorityShiftsEverything) {
  Tcam t({100, TcamMode::kSingleWide});
  for (int i = 0; i < 30; ++i) {
    const auto out = t.insert(entry(i, static_cast<std::uint16_t>(1000 - i)));
    ASSERT_TRUE(out.accepted);
    EXPECT_EQ(out.shifts, static_cast<std::size_t>(i));
  }
}

TEST(TcamTest, EqualPriorityAppendsAfterEquals) {
  Tcam t({100, TcamMode::kSingleWide});
  for (int i = 0; i < 20; ++i) {
    const auto out = t.insert(entry(i, 500));
    ASSERT_TRUE(out.accepted);
    EXPECT_EQ(out.shifts, 0u);
  }
  // A higher-priority entry appends above the equals: 0 shifts.
  EXPECT_EQ(t.insert(entry(100, 600)).shifts, 0u);
  // A lower-priority entry must go below all 21: 21 shifts.
  EXPECT_EQ(t.insert(entry(101, 400)).shifts, 21u);
}

TEST(TcamTest, MiddleInsertShiftsSuffix) {
  Tcam t({100, TcamMode::kSingleWide});
  t.insert(entry(1, 100));
  t.insert(entry(2, 200));
  t.insert(entry(3, 300));
  const auto out = t.insert(entry(4, 250));
  EXPECT_EQ(out.shifts, 1u);  // only the 300 entry moves
}

TEST(TcamTest, RejectsWhenFull) {
  Tcam t({3, TcamMode::kSingleWide});
  EXPECT_TRUE(t.insert(entry(1, 1)).accepted);
  EXPECT_TRUE(t.insert(entry(2, 2)).accepted);
  EXPECT_TRUE(t.insert(entry(3, 3)).accepted);
  const auto out = t.insert(entry(4, 4));
  EXPECT_FALSE(out.accepted);
  EXPECT_EQ(out.reject_reason, "TCAM full");
  EXPECT_EQ(t.size(), 3u);
}

TEST(TcamTest, DoubleWideHalvesCapacity) {
  Tcam t({4, TcamMode::kDoubleWide});
  EXPECT_TRUE(t.insert(l2_entry(1)).accepted);
  EXPECT_TRUE(t.insert(entry(2, 10)).accepted);  // L3-only also costs 2
  EXPECT_FALSE(t.insert(l2_entry(3)).accepted);
  EXPECT_EQ(t.slots_used(), 4u);
}

TEST(TcamTest, SingleWideRejectsWideEntries) {
  Tcam t({10, TcamMode::kSingleWide});
  const auto out = t.insert(wide_entry(1));
  EXPECT_FALSE(out.accepted);
  EXPECT_NE(out.reject_reason.find("unsupported"), std::string::npos);
}

TEST(TcamTest, AdaptiveModeChargesByShape) {
  Tcam t({5, TcamMode::kAdaptive});
  EXPECT_TRUE(t.insert(l2_entry(1)).accepted);      // 1 slot
  EXPECT_TRUE(t.insert(wide_entry(2)).accepted);    // 2 slots
  EXPECT_TRUE(t.insert(entry(3, 10)).accepted);     // 1 slot
  EXPECT_EQ(t.slots_used(), 4u);
  EXPECT_FALSE(t.insert(wide_entry(4)).accepted);   // needs 2, has 1
  EXPECT_TRUE(t.insert(l2_entry(5)).accepted);
}

TEST(TcamTest, LookupPicksHighestPriority) {
  Tcam t({10, TcamMode::kSingleWide});
  FlowEntry narrow = entry(1, 100);
  FlowEntry broad;
  broad.id = 2;
  broad.priority = 50;
  broad.match.set_nw_src_prefix(0x0a000000, 8);  // covers the narrow match
  t.insert(broad);
  t.insert(narrow);
  of::PacketHeader pkt;
  pkt.nw_src = 0x0a000001;
  auto* hit = t.lookup(pkt);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->id, 1u);
  pkt.nw_src = 0x0a999999;  // only the broad rule matches
  hit = t.lookup(pkt);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->id, 2u);
}

TEST(TcamTest, EraseCountsCompactionShifts) {
  Tcam t({10, TcamMode::kSingleWide});
  for (int i = 0; i < 5; ++i) t.insert(entry(i, static_cast<std::uint16_t>(i)));
  const auto out = t.erase(0);  // bottom entry: 4 entries compact down
  EXPECT_EQ(out.removed, 1u);
  EXPECT_EQ(out.shifts, 4u);
  EXPECT_EQ(t.erase(99).removed, 0u);
  EXPECT_EQ(t.slots_used(), 4u);
}

TEST(TcamTest, EraseMatchingUsesSubsumption) {
  Tcam t({10, TcamMode::kSingleWide});
  for (int i = 0; i < 4; ++i) t.insert(entry(i, static_cast<std::uint16_t>(i)));
  of::Match filter;
  filter.set_nw_src_prefix(0x0a000000, 24);  // covers flows 0..3
  const auto removed = t.erase_matching(filter);
  EXPECT_EQ(removed.size(), 4u);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.slots_used(), 0u);
}

TEST(TcamTest, ModifyMatchingUpdatesActionsWithoutShifts) {
  Tcam t({10, TcamMode::kSingleWide});
  t.insert(entry(1, 5));
  t.insert(entry(2, 6));
  const auto n = t.modify_matching(of::Match::any(), of::output_to(9));
  EXPECT_EQ(n, 2u);
  for (const auto& e : t.entries()) {
    EXPECT_EQ(of::output_port(e.actions), 9);
  }
}

TEST(TcamTest, FindStrictMatchesPriorityToo) {
  Tcam t({10, TcamMode::kSingleWide});
  t.insert(entry(1, 5));
  const auto probe = entry(1, 5);
  EXPECT_NE(t.find_strict(probe.match, 5), nullptr);
  EXPECT_EQ(t.find_strict(probe.match, 6), nullptr);
}

// ---------------------------------------------------------------------------
// Software tables
// ---------------------------------------------------------------------------

TEST(SoftwareTableTest, UnboundedByDefault) {
  SoftwareTable t;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(t.insert(entry(i, 10)));
  }
  EXPECT_EQ(t.size(), 1000u);
}

TEST(SoftwareTableTest, BoundedCapacityRejects) {
  SoftwareTable t(2);
  EXPECT_TRUE(t.insert(entry(1, 1)));
  EXPECT_TRUE(t.insert(entry(2, 1)));
  EXPECT_FALSE(t.insert(entry(3, 1)));
}

TEST(SoftwareTableTest, PopOldestIsFifoOrder) {
  SoftwareTable t;
  t.insert(entry(1, 1, /*insert=*/300));
  t.insert(entry(2, 1, /*insert=*/100));
  t.insert(entry(3, 1, /*insert=*/200));
  auto oldest = t.pop_oldest();
  ASSERT_TRUE(oldest.has_value());
  EXPECT_EQ(oldest->id, 2u);
  EXPECT_EQ(t.pop_oldest()->id, 3u);
  EXPECT_EQ(t.pop_oldest()->id, 1u);
  EXPECT_FALSE(t.pop_oldest().has_value());
}

TEST(SoftwareTableTest, LookupHonorsPriority) {
  SoftwareTable t;
  FlowEntry broad;
  broad.id = 1;
  broad.priority = 10;
  broad.match.set_nw_src_prefix(0x0a000000, 8);
  FlowEntry narrow = entry(2, 90);
  t.insert(broad);
  t.insert(narrow);
  of::PacketHeader pkt;
  pkt.nw_src = 0x0a000002;
  auto* hit = t.lookup(pkt);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->id, 2u);
}

TEST(SoftwareTableTest, EraseById) {
  SoftwareTable t;
  t.insert(entry(1, 1));
  auto removed = t.erase(1);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->id, 1u);
  EXPECT_FALSE(t.erase(1).has_value());
}

// ---------------------------------------------------------------------------
// Microflow cache
// ---------------------------------------------------------------------------

TEST(MicroflowCacheTest, ExactMatchHit) {
  MicroflowCache c(100);
  of::PacketHeader key;
  key.nw_src = 5;
  c.insert(key, /*rule=*/7, of::output_to(2), SimTime{0});
  auto hit = c.lookup(key, SimTime{1});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->source_rule, 7u);
  of::PacketHeader other = key;
  other.nw_src = 6;
  EXPECT_FALSE(c.lookup(other, SimTime{1}).has_value());
}

TEST(MicroflowCacheTest, FifoEvictionAtCapacity) {
  MicroflowCache c(2);
  of::PacketHeader k1, k2, k3;
  k1.nw_src = 1;
  k2.nw_src = 2;
  k3.nw_src = 3;
  c.insert(k1, 1, {}, SimTime{0});
  c.insert(k2, 2, {}, SimTime{0});
  c.insert(k3, 3, {}, SimTime{0});
  EXPECT_EQ(c.size(), 2u);
  EXPECT_FALSE(c.lookup(k1, SimTime{1}).has_value());
  EXPECT_TRUE(c.lookup(k3, SimTime{1}).has_value());
}

TEST(MicroflowCacheTest, InvalidateRuleDropsDerivedFlows) {
  MicroflowCache c(10);
  of::PacketHeader k1, k2;
  k1.nw_src = 1;
  k2.nw_src = 2;
  c.insert(k1, /*rule=*/5, {}, SimTime{0});
  c.insert(k2, /*rule=*/6, {}, SimTime{0});
  c.invalidate_rule(5);
  EXPECT_FALSE(c.lookup(k1, SimTime{1}).has_value());
  EXPECT_TRUE(c.lookup(k2, SimTime{1}).has_value());
}

}  // namespace
}  // namespace tango::tables
