// Seeded property fuzz for the OpenFlow 1.0 codec.
//
// Two properties, both required for the fault-injection layer to be safe:
//  * round trip — any valid message encodes, decodes to an equal message,
//    and re-encodes to byte-identical wire bytes (so a FaultInjector pass
//    that leaves bytes alone cannot change meaning);
//  * robustness — a corrupted buffer (bit flips on valid frames, truncation,
//    or plain garbage) either decodes or returns an error, but never
//    crashes or over-reads. The suite runs 10k corrupted buffers; combined
//    with the ASan/UBSan CI job this is the codec's memory-safety gate.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "openflow/codec.h"
#include "openflow/messages.h"

namespace tango::of {
namespace {

constexpr std::uint64_t kFuzzSeed = 0xc0dec;

std::uint8_t byte(Rng& rng) {
  return static_cast<std::uint8_t>(rng.uniform_int(0, 255));
}

std::uint16_t u16(Rng& rng) {
  return static_cast<std::uint16_t>(rng.uniform_int(0, 0xffff));
}

std::uint32_t u32(Rng& rng) {
  return static_cast<std::uint32_t>(
      rng.uniform_int(0, std::int64_t{0xffffffff}));
}

std::uint64_t u64(Rng& rng) { return (std::uint64_t{u32(rng)} << 32) | u32(rng); }

std::vector<std::uint8_t> bytes(Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(rng.index(max_len + 1));
  for (auto& b : out) b = byte(rng);
  return out;
}

std::string text(Rng& rng, std::size_t max_len) {
  std::string out(rng.index(max_len + 1), '\0');
  for (auto& c : out) c = static_cast<char>('a' + rng.index(26));
  return out;
}

MacAddr mac(Rng& rng) {
  return {byte(rng), byte(rng), byte(rng), byte(rng), byte(rng), byte(rng)};
}

Match random_match(Rng& rng) {
  Match m = Match::any();
  if (rng.chance(0.5)) m.with_in_port(u16(rng));
  if (rng.chance(0.5)) m.with_dl_src(mac(rng));
  if (rng.chance(0.5)) m.with_dl_dst(mac(rng));
  if (rng.chance(0.3)) m.with_dl_vlan(u16(rng));
  if (rng.chance(0.7)) {
    m.with_dl_type(0x0800);
    m.set_nw_src_prefix(u32(rng), static_cast<int>(rng.index(33)));
    m.set_nw_dst_prefix(u32(rng), static_cast<int>(rng.index(33)));
    if (rng.chance(0.5)) m.with_nw_proto(byte(rng));
    if (rng.chance(0.3)) m.with_tp_src(u16(rng));
    if (rng.chance(0.3)) m.with_tp_dst(u16(rng));
  } else if (rng.chance(0.5)) {
    m.with_dl_type(u16(rng));
  }
  return m;
}

ActionList random_actions(Rng& rng) {
  ActionList list;
  const std::size_t n = rng.index(4);
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng.index(7)) {
      case 0: list.push_back(ActionOutput{u16(rng), u16(rng)}); break;
      case 1: list.push_back(ActionSetVlanVid{u16(rng)}); break;
      case 2: list.push_back(ActionStripVlan{}); break;
      case 3: list.push_back(ActionSetDlSrc{mac(rng)}); break;
      case 4: list.push_back(ActionSetDlDst{mac(rng)}); break;
      case 5: list.push_back(ActionSetNwSrc{u32(rng)}); break;
      default: list.push_back(ActionSetNwDst{u32(rng)}); break;
    }
  }
  return list;
}

PhyPort random_port(Rng& rng) {
  PhyPort p;
  p.port_no = u16(rng);
  p.hw_addr = mac(rng);
  p.name = text(rng, 15);  // wire field is 16 bytes incl. NUL
  p.config = u32(rng);
  p.state = u32(rng);
  p.curr = u32(rng);
  p.advertised = u32(rng);
  p.supported = u32(rng);
  p.peer = u32(rng);
  return p;
}

/// One random valid message; `which` cycles through all 28 body types so
/// every encoder sees every round.
Message random_message(Rng& rng, std::size_t which) {
  Message msg;
  msg.xid = u32(rng);
  switch (which % 28) {
    case 0: msg.body = Hello{}; break;
    case 1: msg.body = EchoRequest{bytes(rng, 32)}; break;
    case 2: msg.body = EchoReply{bytes(rng, 32)}; break;
    case 3: {
      ErrorMsg e;
      e.type = static_cast<ErrorType>(rng.index(6));
      e.code = u16(rng);
      e.data = bytes(rng, 40);
      msg.body = e;
      break;
    }
    case 4: msg.body = FeaturesRequest{}; break;
    case 5: {
      FeaturesReply r;
      r.datapath_id = u64(rng);
      r.n_buffers = u32(rng);
      r.n_tables = byte(rng);
      r.capabilities = u32(rng);
      r.actions = u32(rng);
      const std::size_t n = rng.index(4);
      for (std::size_t i = 0; i < n; ++i) r.ports.push_back(random_port(rng));
      msg.body = r;
      break;
    }
    case 6: {
      FlowMod fm;
      fm.match = random_match(rng);
      fm.cookie = u64(rng);
      fm.command = static_cast<FlowModCommand>(rng.index(5));
      fm.idle_timeout = u16(rng);
      fm.hard_timeout = u16(rng);
      fm.priority = u16(rng);
      fm.buffer_id = u32(rng);
      fm.out_port = u16(rng);
      fm.flags = u16(rng);
      fm.actions = random_actions(rng);
      msg.body = fm;
      break;
    }
    case 7: {
      FlowRemoved fr;
      fr.match = random_match(rng);
      fr.cookie = u64(rng);
      fr.priority = u16(rng);
      fr.reason = static_cast<FlowRemovedReason>(rng.index(3));
      fr.duration_sec = u32(rng);
      fr.duration_nsec = u32(rng);
      fr.idle_timeout = u16(rng);
      fr.packet_count = u64(rng);
      fr.byte_count = u64(rng);
      msg.body = fr;
      break;
    }
    case 8: {
      PacketIn pi;
      pi.buffer_id = u32(rng);
      pi.total_len = u16(rng);
      pi.in_port = u16(rng);
      pi.reason = static_cast<PacketInReason>(rng.index(2));
      pi.data = bytes(rng, 64);
      msg.body = pi;
      break;
    }
    case 9: {
      PacketOut po;
      po.buffer_id = u32(rng);
      po.in_port = u16(rng);
      po.actions = random_actions(rng);
      po.data = bytes(rng, 64);
      msg.body = po;
      break;
    }
    case 10: msg.body = BarrierRequest{}; break;
    case 11: msg.body = BarrierReply{}; break;
    case 12: {
      FlowStatsRequest r;
      r.match = random_match(rng);
      r.table_id = byte(rng);
      r.out_port = u16(rng);
      msg.body = r;
      break;
    }
    case 13: {
      FlowStatsReply r;
      const std::size_t n = rng.index(3);
      for (std::size_t i = 0; i < n; ++i) {
        FlowStatsEntry e;
        e.table_id = byte(rng);
        e.match = random_match(rng);
        e.duration_sec = u32(rng);
        e.duration_nsec = u32(rng);
        e.priority = u16(rng);
        e.idle_timeout = u16(rng);
        e.hard_timeout = u16(rng);
        e.cookie = u64(rng);
        e.packet_count = u64(rng);
        e.byte_count = u64(rng);
        e.actions = random_actions(rng);
        r.entries.push_back(e);
      }
      msg.body = r;
      break;
    }
    case 14: msg.body = TableStatsRequest{}; break;
    case 15: {
      TableStatsReply r;
      const std::size_t n = rng.index(3);
      for (std::size_t i = 0; i < n; ++i) {
        TableStatsEntry e;
        e.table_id = byte(rng);
        e.name = text(rng, 31);
        e.wildcards = u32(rng);
        e.max_entries = u32(rng);
        e.active_count = u32(rng);
        e.lookup_count = u64(rng);
        e.matched_count = u64(rng);
        r.entries.push_back(e);
      }
      msg.body = r;
      break;
    }
    case 16: msg.body = GetConfigRequest{}; break;
    case 17: msg.body = GetConfigReply{u16(rng), u16(rng)}; break;
    case 18: msg.body = SetConfig{u16(rng), u16(rng)}; break;
    case 19: {
      PortStatus ps;
      ps.reason = static_cast<PortReason>(rng.index(3));
      ps.port = random_port(rng);
      msg.body = ps;
      break;
    }
    case 20: {
      PortMod pm;
      pm.port_no = u16(rng);
      pm.hw_addr = mac(rng);
      pm.config = u32(rng);
      pm.mask = u32(rng);
      pm.advertise = u32(rng);
      msg.body = pm;
      break;
    }
    case 21: msg.body = Vendor{u32(rng), bytes(rng, 48)}; break;
    case 22: {
      AggregateStatsRequest r;
      r.match = random_match(rng);
      r.table_id = byte(rng);
      r.out_port = u16(rng);
      msg.body = r;
      break;
    }
    case 23: {
      AggregateStatsReply r;
      r.packet_count = u64(rng);
      r.byte_count = u64(rng);
      r.flow_count = u32(rng);
      msg.body = r;
      break;
    }
    case 24: msg.body = DescStatsRequest{}; break;
    case 25: {
      DescStatsReply r;
      r.mfr_desc = text(rng, 255);
      r.hw_desc = text(rng, 255);
      r.sw_desc = text(rng, 255);
      r.serial_num = text(rng, 31);
      r.dp_desc = text(rng, 255);
      msg.body = r;
      break;
    }
    case 26: msg.body = PortStatsRequest{u16(rng)}; break;
    default: {
      PortStatsReply r;
      const std::size_t n = rng.index(3);
      for (std::size_t i = 0; i < n; ++i) {
        PortStatsEntry e;
        e.port_no = u16(rng);
        e.rx_packets = u64(rng);
        e.tx_packets = u64(rng);
        e.rx_bytes = u64(rng);
        e.tx_bytes = u64(rng);
        e.rx_dropped = u64(rng);
        e.tx_dropped = u64(rng);
        e.rx_errors = u64(rng);
        e.tx_errors = u64(rng);
        r.entries.push_back(e);
      }
      msg.body = r;
      break;
    }
  }
  return msg;
}

TEST(CodecFuzzTest, RoundTripIsByteIdentical) {
  Rng rng(kFuzzSeed);
  for (std::size_t i = 0; i < 2000; ++i) {
    const Message msg = random_message(rng, i);
    const auto wire = encode(msg);
    ASSERT_GE(wire.size(), kHeaderLen);
    EXPECT_EQ(wire[0], kVersion);
    const auto decoded = decode(wire);
    ASSERT_TRUE(decoded.ok())
        << "round " << i << " type " << type_name(type_of(msg.body)) << ": "
        << decoded.error();
    EXPECT_EQ(decoded.value().xid, msg.xid);
    EXPECT_EQ(decoded.value().body, msg.body) << "round " << i;
    // Re-encoding the decoded message reproduces the wire bytes exactly.
    EXPECT_EQ(encode(decoded.value()), wire) << "round " << i;
  }
}

TEST(CodecFuzzTest, BitFlippedFramesNeverCrash) {
  Rng rng(kFuzzSeed + 1);
  std::size_t decoded_ok = 0;
  for (std::size_t i = 0; i < 5000; ++i) {
    auto wire = encode(random_message(rng, i));
    const std::size_t flips = 1 + rng.index(8);
    for (std::size_t k = 0; k < flips; ++k) {
      wire[rng.index(wire.size())] ^=
          static_cast<std::uint8_t>(1u << rng.index(8));
    }
    const auto result = decode(wire);  // must not crash or over-read
    if (result.ok()) ++decoded_ok;
  }
  // Some flips hit don't-care bytes and still decode; most must not.
  EXPECT_LT(decoded_ok, 5000u);
}

TEST(CodecFuzzTest, TruncatedFramesReturnErrors) {
  Rng rng(kFuzzSeed + 2);
  for (std::size_t i = 0; i < 2500; ++i) {
    const auto wire = encode(random_message(rng, i));
    const std::size_t keep = rng.index(wire.size());  // strictly shorter
    const std::vector<std::uint8_t> cut(wire.begin(),
                                        wire.begin() + static_cast<long>(keep));
    const auto result = decode(cut);
    // The length field no longer matches the buffer: always an error.
    EXPECT_FALSE(result.ok()) << "round " << i << " kept " << keep << " of "
                              << wire.size();
  }
}

TEST(CodecFuzzTest, GarbageBuffersNeverCrash) {
  Rng rng(kFuzzSeed + 3);
  for (std::size_t i = 0; i < 2500; ++i) {
    auto garbage = bytes(rng, 64);
    if (rng.chance(0.3) && garbage.size() >= 4) {
      // Make the header plausible so deeper body parsing is reached.
      garbage[0] = kVersion;
      garbage[1] = static_cast<std::uint8_t>(rng.index(20));
      garbage[2] = static_cast<std::uint8_t>(garbage.size() >> 8);
      garbage[3] = static_cast<std::uint8_t>(garbage.size());
    }
    (void)decode(garbage);  // any result is fine; crashing is not
  }
}

// Targeted fuzz for the reconciler's readback path: valid FlowStatsReply
// frames whose per-entry length fields are overwritten with random values.
// The outer header stays consistent, so every corruption lands in the
// entry-walking loop — it must stop with an error or a consistent parse,
// never over-read (ASan/UBSan job covers the memory side).
TEST(CodecFuzzTest, FlowStatsEntryLengthFuzzNeverOverReads) {
  Rng rng(kFuzzSeed + 5);
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < 2500; ++i) {
    FlowStatsReply reply;
    const std::size_t n = 1 + rng.index(3);
    for (std::size_t k = 0; k < n; ++k) {
      FlowStatsEntry e;
      e.match = random_match(rng);
      e.priority = u16(rng);
      e.cookie = u64(rng);
      e.actions = random_actions(rng);
      reply.entries.push_back(e);
    }
    auto wire = encode(Message{u32(rng), reply});
    // Walk to a random entry's length field (body starts at 8, entries at
    // 12; each entry is 88 + its actions) and scribble over it.
    std::size_t offset = 12;
    const std::size_t target = rng.index(n);
    for (std::size_t k = 0; k < target; ++k) {
      offset += 88;
      for (const auto& a : reply.entries[k].actions) offset += wire_size(a);
    }
    wire[offset] = byte(rng);
    wire[offset + 1] = byte(rng);
    const auto result = decode(wire);
    if (!result.ok()) ++rejected;
  }
  // Almost every random length is inconsistent; a handful may restate the
  // true length and decode fine.
  EXPECT_GT(rejected, 2000u);
}

TEST(CodecFuzzTest, FrameAssemblerHandlesArbitraryChunking) {
  Rng rng(kFuzzSeed + 4);
  for (std::size_t round = 0; round < 50; ++round) {
    std::vector<Message> sent;
    std::vector<std::uint8_t> stream;
    for (std::size_t i = 0; i < 20; ++i) {
      sent.push_back(random_message(rng, rng.index(28)));
      const auto wire = encode(sent.back());
      stream.insert(stream.end(), wire.begin(), wire.end());
    }
    FrameAssembler assembler;
    std::vector<Message> received;
    std::size_t offset = 0;
    while (offset < stream.size()) {
      const std::size_t chunk =
          std::min(stream.size() - offset, 1 + rng.index(24));
      assembler.feed(
          std::span<const std::uint8_t>(stream.data() + offset, chunk));
      offset += chunk;
      for (auto frame = assembler.next_frame(); !frame.empty();
           frame = assembler.next_frame()) {
        const auto decoded = decode(frame);
        ASSERT_TRUE(decoded.ok()) << decoded.error();
        received.push_back(decoded.value());
      }
    }
    ASSERT_EQ(received.size(), sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i) {
      EXPECT_EQ(received[i].xid, sent[i].xid);
      EXPECT_EQ(received[i].body, sent[i].body);
    }
  }
}

}  // namespace
}  // namespace tango::of
