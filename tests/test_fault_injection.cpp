// Deterministic robustness suite: seeded fault injection on the control
// channel, exercising the controller-side recovery machinery end to end.
//
// Every scenario runs on the deterministic event queue with seeded RNGs, so
// the exact fault schedule — and therefore every counter asserted below —
// replays identically on every run. The acceptance scenario at the bottom
// (fig10 link-failure under 5% loss plus a mid-run agent crash) checks
// byte-for-byte reproducibility by running twice and comparing everything.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "net/fault_injector.h"
#include "net/network.h"
#include "scheduler/executor.h"
#include "scheduler/schedulers.h"
#include "scheduler/transaction.h"
#include "switchsim/profiles.h"
#include "tango/probe_engine.h"
#include "tango/tango.h"
#include "workload/scenarios.h"

namespace tango::net {
namespace {

namespace profiles = switchsim::profiles;
using core::ProbeEngine;
using Direction = FaultInjector::Direction;

sched::SwitchRequest add_req(SwitchId where, std::uint32_t index) {
  sched::SwitchRequest r;
  r.location = where;
  r.type = sched::RequestType::kAdd;
  r.priority = 0x8000;
  r.match = ProbeEngine::probe_match(index);
  r.actions = of::output_to(2);
  return r;
}

switchsim::SwitchProfile quiet_switch1() {
  auto profile = profiles::switch1();
  profile.costs.jitter_frac = 0;
  profile.paths.jitter_frac = 0;
  return profile;
}

// ---------------------------------------------------------------------------
// FaultInjector unit behavior
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, CleanConfigDeliversUntouched) {
  FaultInjector inj{FaultConfig{}};
  const std::vector<std::uint8_t> frame = {1, 14, 0, 8, 0, 0, 0, 1};
  const auto plan = inj.plan(Direction::kToSwitch, frame);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].frame, frame);
  EXPECT_EQ(plan[0].extra_delay.ns(), 0);
  EXPECT_TRUE(inj.plan_notification().has_value());
}

TEST(FaultInjectorTest, CertainFaultsFire) {
  FaultConfig drop_all;
  drop_all.drop_to_switch = 1.0;
  FaultInjector dropper{drop_all};
  EXPECT_TRUE(dropper.plan(Direction::kToSwitch, {1, 14, 0, 8}).empty());
  EXPECT_EQ(dropper.stats().dropped_to_switch, 1u);

  FaultConfig dup_all;
  dup_all.duplicate_to_switch = 1.0;
  FaultInjector duper{dup_all};
  EXPECT_EQ(duper.plan(Direction::kToSwitch, {1, 14, 0, 8}).size(), 2u);
  EXPECT_EQ(duper.stats().duplicated, 1u);

  FaultConfig corrupt_all;
  corrupt_all.corrupt_to_switch = 1.0;
  FaultInjector corruptor{corrupt_all};
  const std::vector<std::uint8_t> frame = {1, 14, 0, 8, 0, 0, 0, 1};
  const auto plan = corruptor.plan(Direction::kToSwitch, frame);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_NE(plan[0].frame, frame);  // at least one bit flipped
  EXPECT_EQ(plan[0].frame.size(), frame.size());

  FaultConfig lose_notices;
  lose_notices.drop_to_controller = 1.0;
  FaultInjector notifier{lose_notices};
  EXPECT_FALSE(notifier.plan_notification().has_value());
  EXPECT_EQ(notifier.stats().notifications_dropped, 1u);
}

TEST(FaultInjectorTest, SameSeedSamePlan) {
  FaultConfig cfg;
  cfg.drop_to_switch = 0.3;
  cfg.duplicate_to_switch = 0.2;
  cfg.corrupt_to_switch = 0.2;
  cfg.reorder_to_switch = 0.3;
  cfg.seed = 1234;
  FaultInjector a{cfg};
  FaultInjector b{cfg};
  for (int i = 0; i < 200; ++i) {
    const std::vector<std::uint8_t> frame = {
        1, 14, 0, 8, 0, 0, 0, static_cast<std::uint8_t>(i)};
    const auto pa = a.plan(Direction::kToSwitch, frame);
    const auto pb = b.plan(Direction::kToSwitch, frame);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t k = 0; k < pa.size(); ++k) {
      EXPECT_EQ(pa[k].frame, pb[k].frame);
      EXPECT_EQ(pa[k].extra_delay.ns(), pb[k].extra_delay.ns());
    }
  }
  EXPECT_EQ(a.stats().dropped_to_switch, b.stats().dropped_to_switch);
  EXPECT_EQ(a.stats().duplicated, b.stats().duplicated);
  EXPECT_EQ(a.stats().corrupted, b.stats().corrupted);
  EXPECT_EQ(a.stats().reordered, b.stats().reordered);
}

// ---------------------------------------------------------------------------
// Per-message-type loss scenarios
// ---------------------------------------------------------------------------

TEST(FaultScenarioTest, DroppedFlowModIsRetriedExactlyOnce) {
  Network net;
  const auto s1 = net.add_switch(quiet_switch1());
  auto& inj = net.enable_faults(s1, FaultConfig{});
  inj.force_drop(Direction::kToSwitch, of::MsgType::kFlowMod, 1);

  sched::RequestDag dag;
  dag.add(add_req(s1, 0));
  sched::DionysusScheduler sched;
  sched::ExecutorOptions opts;
  opts.request_timeout = millis(10);
  opts.backoff_base = millis(1);
  const auto report = execute(net, dag, sched, opts);

  EXPECT_EQ(report.timeouts, 1u);
  EXPECT_EQ(report.retries, 1u);
  EXPECT_EQ(report.failed_requests, 0u);
  EXPECT_EQ(report.lost_requests, 0u);
  EXPECT_EQ(report.echo_probes, 0u);
  EXPECT_TRUE(report.failed_switches.empty());
  EXPECT_EQ(inj.stats().forced_drops, 1u);
  EXPECT_EQ(net.sw(s1).total_rules(), 2u);  // probe rule + default route
}

TEST(FaultScenarioTest, DroppedPacketOutIsResent) {
  Network net;
  const auto s1 = net.add_switch(quiet_switch1());
  ProbeEngine engine(net, s1);
  ASSERT_TRUE(engine.install(0));

  auto& inj = net.enable_faults(s1, FaultConfig{});
  inj.force_drop(Direction::kToSwitch, of::MsgType::kPacketOut, 1);
  ProbeEngine::Recovery rec;
  rec.sync_timeout = millis(5);
  engine.set_recovery(rec);

  const auto rtt = engine.try_probe(0);
  ASSERT_TRUE(rtt.has_value());
  EXPECT_GT(rtt->ns(), 0);
  EXPECT_EQ(engine.lost_probes(), 1u);
  EXPECT_EQ(engine.abandoned_probes(), 0u);
}

TEST(FaultScenarioTest, DroppedBarrierEachDirectionRecovers) {
  Network net;
  const auto s1 = net.add_switch(quiet_switch1());
  auto& inj = net.enable_faults(s1, FaultConfig{});

  inj.force_drop(Direction::kToSwitch, of::MsgType::kBarrierRequest, 1);
  EXPECT_FALSE(net.try_barrier_sync(s1, millis(5)).has_value());
  EXPECT_TRUE(net.try_barrier_sync(s1, millis(5)).has_value());

  inj.force_drop(Direction::kToController, of::MsgType::kBarrierReply, 1);
  EXPECT_FALSE(net.try_barrier_sync(s1, millis(5)).has_value());
  EXPECT_TRUE(net.try_barrier_sync(s1, millis(5)).has_value());
  EXPECT_EQ(inj.stats().forced_drops, 2u);
}

TEST(FaultScenarioTest, DroppedEchoIsObservableAndCancelable) {
  Network net;
  const auto s1 = net.add_switch(quiet_switch1());
  auto& inj = net.enable_faults(s1, FaultConfig{});

  inj.force_drop(Direction::kToSwitch, of::MsgType::kEchoRequest, 1);
  bool first_answered = false;
  const auto xid = net.post_echo(s1, [&]() { first_answered = true; });
  net.run_all();
  EXPECT_FALSE(first_answered);
  net.cancel_reply(xid);

  bool second_answered = false;
  net.post_echo(s1, [&]() { second_answered = true; });
  net.run_all();
  EXPECT_TRUE(second_answered);
}

TEST(FaultScenarioTest, DroppedStatsRequestReturnsEmptyNotHang) {
  Network net;
  const auto s1 = net.add_switch(quiet_switch1());
  ProbeEngine engine(net, s1);
  ASSERT_TRUE(engine.install(7));

  auto& inj = net.enable_faults(s1, FaultConfig{});
  inj.force_drop(Direction::kToSwitch, of::MsgType::kStatsRequest, 1);
  const auto lost = net.flow_stats_sync(s1, of::Match::any());
  EXPECT_TRUE(lost.entries.empty());

  const auto real = net.flow_stats_sync(s1, of::Match::any());
  EXPECT_FALSE(real.entries.empty());
}

// Regression: spot_check's cleanup deletes travel over the same lossy
// channel as everything else. A dropped delete used to leak probe rules
// into the switch's table permanently; the readback-and-reissue loop now
// converges the table back to its pre-check state.
TEST(FaultScenarioTest, SpotCheckCleansUpUnderChannelLoss) {
  Network net;
  const auto s1 = net.add_switch(quiet_switch1());
  core::TangoController tango(net);
  core::LearnOptions options;
  options.size.max_rules = 256;
  options.infer_policy = false;
  tango.learn(s1, options);
  ProbeEngine(net, s1).clear_rules();
  const auto before = net.sw(s1).total_rules();

  std::size_t dropped_total = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    FaultConfig cfg;
    cfg.drop_to_switch = 0.25;  // eats installs and cleanup deletes alike
    cfg.seed = seed;
    net.enable_faults(s1, cfg);
    const double drift = tango.spot_check(s1);
    EXPECT_GE(drift, 0.0);
    dropped_total += net.fault_injector(s1)->stats().dropped_to_switch;

    // Assert over a clean channel: no probe rule survived the cleanup.
    net.enable_faults(s1, FaultConfig{});
    EXPECT_EQ(net.sw(s1).total_rules(), before) << "seed " << seed;
  }
  EXPECT_GT(dropped_total, 0u);  // the loss actually bit something
}

// ---------------------------------------------------------------------------
// Duplication, crash, and stall
// ---------------------------------------------------------------------------

TEST(FaultScenarioTest, DuplicatedFlowModsAreIdempotent) {
  Network net;
  auto profile = quiet_switch1();
  profile.install_default_route = false;
  const auto s1 = net.add_switch(profile);
  FaultConfig cfg;
  cfg.duplicate_to_switch = 1.0;  // every command crosses the wire twice
  net.enable_faults(s1, cfg);

  sched::RequestDag dag;
  for (std::uint32_t i = 0; i < 5; ++i) dag.add(add_req(s1, i));
  sched::DionysusScheduler sched;
  const auto report = execute(net, dag, sched);

  EXPECT_EQ(report.issued, 5u);
  EXPECT_EQ(report.timeouts, 0u);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_EQ(report.failed_requests, 0u);
  EXPECT_EQ(report.lost_requests, 0u);
  // The agent processed each add twice; the table holds each rule once.
  EXPECT_EQ(net.stats(s1).flow_mods, 10u);
  EXPECT_EQ(net.sw(s1).total_rules(), 5u);
  EXPECT_EQ(net.fault_injector(s1)->stats().duplicated, 5u);
}

TEST(FaultScenarioTest, CrashMidBatchWipesTablesAndExecutorReinstalls) {
  Network net;
  auto profile = quiet_switch1();
  profile.install_default_route = false;
  const auto s1 = net.add_switch(profile);

  FaultConfig cfg;
  cfg.crash_at = SimTime{} + micros(300);  // while the first batch is queued
  cfg.crash_downtime = millis(5);
  auto& inj = net.enable_faults(s1, cfg);

  sched::RequestDag dag;
  for (std::uint32_t i = 0; i < 8; ++i) dag.add(add_req(s1, i));
  sched::DionysusScheduler sched;
  sched::ExecutorOptions opts;
  opts.request_timeout = millis(10);
  opts.max_retries = 6;
  opts.backoff_base = millis(2);
  const auto report = execute(net, dag, sched, opts);

  EXPECT_EQ(inj.stats().crashes, 1u);
  EXPECT_GT(inj.stats().lost_to_crash, 0u);  // in-flight commands vanished
  EXPECT_GE(report.retries, 1u);
  EXPECT_EQ(report.failed_requests, 0u);
  EXPECT_EQ(report.lost_requests, 0u);
  EXPECT_TRUE(report.failed_switches.empty());
  // Power-on wipe, then full recovery: every rule present exactly once.
  EXPECT_EQ(net.sw(s1).total_rules(), 8u);
}

TEST(FaultScenarioTest, StallBeyondTimeoutBacksOffThenSucceeds) {
  Network net;
  const auto s1 = net.add_switch(quiet_switch1());
  net.enable_faults(s1, FaultConfig{});  // no probabilistic faults
  net.stall_agent(s1, millis(80));       // far beyond the request timeout

  sched::RequestDag dag;
  dag.add(add_req(s1, 0));
  sched::DionysusScheduler sched;
  sched::ExecutorOptions opts;
  opts.request_timeout = millis(10);
  opts.max_retries = 2;
  opts.backoff_base = millis(5);
  const auto report = execute(net, dag, sched, opts);

  // The stalled agent eventually answers: retries and at least one ECHO
  // liveness round fire, but nothing is failed and the rule lands.
  EXPECT_GE(report.timeouts, 3u);
  EXPECT_GE(report.retries, 2u);
  EXPECT_GE(report.echo_probes, 1u);
  EXPECT_EQ(report.failed_requests, 0u);
  EXPECT_EQ(report.lost_requests, 0u);
  EXPECT_TRUE(report.failed_switches.empty());
  EXPECT_EQ(net.sw(s1).total_rules(), 2u);
  EXPECT_GT(report.makespan.ms(), 80.0);
  EXPECT_LT(report.makespan.ms(), 120.0);
}

TEST(FaultScenarioTest, DeadSwitchIsDeclaredAndDependentsFail) {
  Network net;
  const auto s1 = net.add_switch(quiet_switch1());
  const auto s2 = net.add_switch(quiet_switch1());
  FaultConfig cfg;
  cfg.drop_to_switch = 1.0;  // s1 never hears anything again
  cfg.drop_to_controller = 1.0;
  net.enable_faults(s1, cfg);

  sched::RequestDag dag;
  const auto doomed = dag.add(add_req(s1, 0));
  const auto dependent = dag.add(add_req(s2, 1));
  const auto independent = dag.add(add_req(s2, 2));
  dag.add_dependency(doomed, dependent);

  sched::DionysusScheduler sched;
  sched::ExecutorOptions opts;
  opts.request_timeout = millis(5);
  opts.max_retries = 1;
  opts.backoff_base = millis(1);
  opts.max_echo_rescues = 1;
  const auto report = execute(net, dag, sched, opts);

  EXPECT_EQ(report.failed_switches, std::set<SwitchId>{s1});
  EXPECT_EQ(report.failed_requests, 2u);  // doomed + its dependent
  EXPECT_EQ(report.lost_requests, 0u);
  EXPECT_GE(report.echo_probes, 2u);  // silence confirmed by repeated echoes
  EXPECT_EQ(net.sw(s2).total_rules(), 2u);  // independent one + default route
  (void)independent;
}

// ---------------------------------------------------------------------------
// Control-channel partitions
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, PartitionWindowBlackholesBothDirections) {
  FaultConfig cfg;
  cfg.partitions.push_back({SimTime{} + millis(10), millis(20)});
  FaultInjector inj{cfg};
  const std::vector<std::uint8_t> frame = {1, 14, 0, 8, 0, 0, 0, 1};

  // Before the window: clean both ways.
  EXPECT_FALSE(inj.in_partition(SimTime{} + millis(5)));
  EXPECT_EQ(inj.plan(Direction::kToSwitch, frame, SimTime{} + millis(5)).size(),
            1u);
  EXPECT_TRUE(inj.plan_notification(SimTime{} + millis(5)).has_value());

  // Inside: both directions blackholed, notifications included.
  EXPECT_TRUE(inj.in_partition(SimTime{} + millis(15)));
  EXPECT_TRUE(
      inj.plan(Direction::kToSwitch, frame, SimTime{} + millis(15)).empty());
  EXPECT_TRUE(inj.plan(Direction::kToController, frame, SimTime{} + millis(15))
                  .empty());
  EXPECT_FALSE(inj.plan_notification(SimTime{} + millis(15)).has_value());

  // After: clean again, and every loss was accounted to the partition.
  EXPECT_FALSE(inj.in_partition(SimTime{} + millis(30)));
  EXPECT_EQ(
      inj.plan(Direction::kToSwitch, frame, SimTime{} + millis(35)).size(),
      1u);
  EXPECT_EQ(inj.stats().lost_to_partition, 3u);
  EXPECT_EQ(inj.stats().dropped_to_switch, 0u);
  EXPECT_EQ(inj.stats().dropped_to_controller, 0u);
}

TEST(FaultScenarioTest, PartitionDelaysButDoesNotFailTheUpdate) {
  Network net;
  const auto s1 = net.add_switch(quiet_switch1());
  FaultConfig cfg;
  cfg.partitions.push_back({net.now(), millis(15)});
  auto& inj = net.enable_faults(s1, cfg);

  sched::RequestDag dag;
  dag.add(add_req(s1, 0));
  sched::DionysusScheduler sched;
  sched::ExecutorOptions opts;
  opts.request_timeout = millis(10);
  opts.max_retries = 6;
  opts.backoff_base = millis(2);
  const auto report = execute(net, dag, sched, opts);

  // The first issue vanished into the partition; a retry after the window
  // closed landed the rule. Nothing failed, nothing was silently lost.
  EXPECT_EQ(inj.stats().partitions, 1u);
  EXPECT_GT(inj.stats().lost_to_partition, 0u);
  EXPECT_GE(report.retries, 1u);
  EXPECT_EQ(report.failed_requests, 0u);
  EXPECT_EQ(report.lost_requests, 0u);
  EXPECT_EQ(net.sw(s1).total_rules(), 2u);  // probe rule + default route
}

// ---------------------------------------------------------------------------
// Correlated multi-switch crashes
// ---------------------------------------------------------------------------

TEST(FaultScenarioTest, CorrelatedDualCrashReconcilesCleanUnderBothPolicies) {
  for (const auto policy : {sched::RecoveryPolicy::kRollForward,
                            sched::RecoveryPolicy::kRollBack}) {
    Network net;
    const auto s1 = net.add_switch(quiet_switch1());
    const auto s2 = net.add_switch(quiet_switch1());
    for (const auto id : {s1, s2}) {
      ProbeEngine probe(net, id);
      for (std::uint32_t i = 0; i < 20; ++i) probe.install(i, 0x4000);
      net.barrier_sync(id);
    }

    sched::RequestDag dag;
    for (std::uint32_t i = 20; i < 40; ++i) {
      dag.add(add_req(s1, i));
      dag.add(add_req(s2, i));
    }

    sched::TransactionOptions topts;
    topts.policy = policy;
    topts.txn_id = 77;
    topts.exec.request_timeout = millis(20);
    topts.exec.max_retries = 6;
    topts.exec.backoff_base = millis(2);
    sched::UpdateTransaction txn(net, std::move(dag), topts);

    // Both agents reboot in the same barrier window, mid-commit: every
    // table is wiped at once, so recovery cannot lean on a surviving peer.
    for (const auto id : {s1, s2}) {
      FaultConfig cfg;
      cfg.crashes.push_back({net.now() + millis(1), millis(5)});
      net.enable_faults(id, cfg);
    }

    sched::DionysusScheduler sched;
    const auto report = txn.commit(sched);

    EXPECT_EQ(report.crashed_switches, (std::set<SwitchId>{s1, s2}))
        << sched::to_string(policy);
    EXPECT_TRUE(report.committed) << sched::to_string(policy);
    EXPECT_TRUE(report.unreconciled.empty()) << sched::to_string(policy);

    // Verifier-clean end state: roll-forward must deliver all 40 flows per
    // switch, roll-back only the 20 preinstalled ones.
    std::vector<sched::FlowCheck> flows;
    const std::uint32_t upper =
        policy == sched::RecoveryPolicy::kRollForward ? 40u : 20u;
    for (std::uint32_t i = 0; i < upper; ++i) {
      for (const auto id : {s1, s2}) {
        sched::FlowCheck flow;
        flow.ingress = id;
        flow.packet = ProbeEngine::probe_packet(i);
        flows.push_back(flow);
      }
    }
    const auto& verify = txn.verify(flows);
    EXPECT_TRUE(verify.clean())
        << sched::to_string(policy) << ": "
        << (verify.violations.empty() ? "" : verify.violations[0].detail);
  }
}

// ---------------------------------------------------------------------------
// Acceptance: fig10 link-failure under 5% loss + mid-run crash, twice
// ---------------------------------------------------------------------------

struct Fig10Run {
  sched::ExecutionReport report;
  std::vector<ChannelStats> channels;
  std::vector<FaultStats> faults;
  std::vector<std::size_t> rules;
};

std::uint64_t fault_seed_from_env() {
  if (const char* env = std::getenv("TANGO_FAULT_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return 0xfa417u;
}

Fig10Run run_fig10_under_faults(std::uint64_t seed) {
  Fig10Run out;
  Network net;
  workload::TestbedIds ids;
  ids.s1 = net.add_switch(profiles::switch1());
  ids.s2 = net.add_switch(profiles::switch1());
  ids.s3 = net.add_switch(profiles::switch3());

  // Preinstall the pre-failure TE state over a clean channel.
  for (const auto id : {ids.s1, ids.s2, ids.s3}) {
    ProbeEngine probe(net, id);
    for (std::uint32_t i = 0; i < 400; ++i) {
      probe.install(i, static_cast<std::uint16_t>(100 + (i * 7) % 900));
    }
    net.barrier_sync(id);
  }

  // 5% loss in both directions on every switch; s1 additionally crashes
  // (tables wiped) half a simulated second into the update.
  for (const auto id : {ids.s1, ids.s2, ids.s3}) {
    FaultConfig cfg;
    cfg.drop_to_switch = 0.05;
    cfg.drop_to_controller = 0.05;
    cfg.seed = seed + id;
    if (id == ids.s1) {
      cfg.crash_at = net.now() + millis(500);
      cfg.crash_downtime = millis(50);
    }
    net.enable_faults(id, cfg);
  }

  Rng rng(99);
  const auto dag = workload::link_failure_scenario(ids, 400, rng, 0);

  sched::DionysusScheduler sched;
  sched::ExecutorOptions opts;
  opts.request_timeout = millis(200);
  opts.max_retries = 6;
  opts.backoff_base = millis(5);
  out.report = execute(net, dag, sched, opts);

  for (const auto id : {ids.s1, ids.s2, ids.s3}) {
    out.channels.push_back(net.stats(id));
    out.faults.push_back(net.fault_injector(id)->stats());
    out.rules.push_back(net.sw(id).total_rules());
  }
  return out;
}

TEST(FaultAcceptanceTest, Fig10LinkFailureSurvivesLossAndCrashDeterministically) {
  const std::uint64_t seed = fault_seed_from_env();
  const auto first = run_fig10_under_faults(seed);

  // Zero lost requests: every request either installed or consciously
  // failed (and with these retry budgets, nothing fails either).
  EXPECT_EQ(first.report.lost_requests, 0u);
  EXPECT_EQ(first.report.failed_requests, 0u);
  EXPECT_TRUE(first.report.failed_switches.empty());
  EXPECT_EQ(first.report.issued, 800u);  // 400 ADDs on s3 + 400 MODs on s1
  EXPECT_GE(first.report.retries, 1u);   // 5% loss definitely bit somewhere
  EXPECT_EQ(first.faults[0].crashes, 1u);

  // Byte-for-byte reproducibility: a second run with the same seed matches
  // on every observable counter.
  const auto second = run_fig10_under_faults(seed);
  EXPECT_EQ(first.report.makespan.ns(), second.report.makespan.ns());
  EXPECT_EQ(first.report.issued, second.report.issued);
  EXPECT_EQ(first.report.timeouts, second.report.timeouts);
  EXPECT_EQ(first.report.retries, second.report.retries);
  EXPECT_EQ(first.report.echo_probes, second.report.echo_probes);
  EXPECT_EQ(first.report.scheduling_rounds, second.report.scheduling_rounds);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(first.rules[i], second.rules[i]) << "switch " << i + 1;
    EXPECT_EQ(first.channels[i].messages_to_switch,
              second.channels[i].messages_to_switch);
    EXPECT_EQ(first.channels[i].messages_to_controller,
              second.channels[i].messages_to_controller);
    EXPECT_EQ(first.channels[i].flow_mods, second.channels[i].flow_mods);
    EXPECT_EQ(first.faults[i].dropped_to_switch,
              second.faults[i].dropped_to_switch);
    EXPECT_EQ(first.faults[i].dropped_to_controller,
              second.faults[i].dropped_to_controller);
    EXPECT_EQ(first.faults[i].notifications_dropped,
              second.faults[i].notifications_dropped);
    EXPECT_EQ(first.faults[i].lost_to_crash, second.faults[i].lost_to_crash);
    EXPECT_EQ(first.faults[i].lost_to_down, second.faults[i].lost_to_down);
  }
}

}  // namespace
}  // namespace tango::net
