// Behavioural tests for the simulated switch architectures: OVS microflow
// caching, Switch #1 FIFO promotion, TCAM-only rejection, and the general
// policy-cache model the inference algorithms target.
#include <gtest/gtest.h>

#include "switchsim/profiles.h"
#include "switchsim/switch_model.h"
#include "tango/probe_engine.h"

namespace tango::switchsim {
namespace {

using core::ProbeEngine;

of::FlowMod add_rule(std::uint32_t index, std::uint16_t priority = 0x8000) {
  return ProbeEngine::probe_add(index, priority);
}

of::Packet packet_for(std::uint32_t index) {
  of::Packet p;
  p.header = ProbeEngine::probe_packet(index);
  return p;
}

SimTime at(std::int64_t ms_value) { return SimTime{ms_value * 1000000}; }

// ---------------------------------------------------------------------------
// OVS
// ---------------------------------------------------------------------------

TEST(OvsSwitch, RulesLandInUserTable) {
  SimulatedSwitch sw(1, profiles::ovs());
  for (std::uint32_t i = 0; i < 10; ++i) {
    const auto out = sw.apply_flow_mod(add_rule(i), at(i));
    EXPECT_TRUE(out.accepted);
  }
  EXPECT_EQ(sw.software_size(), 10u);
  EXPECT_EQ(sw.microflow_size(), 0u);  // no traffic yet
}

TEST(OvsSwitch, FirstPacketSlowPathSecondFastPath) {
  SimulatedSwitch sw(1, profiles::ovs());
  sw.apply_flow_mod(add_rule(0), at(0));
  const auto first = sw.forward(packet_for(0), at(1));
  EXPECT_EQ(first.kind, ForwardOutcome::Kind::kForwarded);
  EXPECT_EQ(first.level, 1u);  // user-space slow path
  EXPECT_EQ(sw.microflow_size(), 1u);
  const auto second = sw.forward(packet_for(0), at(2));
  EXPECT_EQ(second.level, 0u);  // kernel microflow fast path
  EXPECT_LT(second.delay, first.delay);
}

TEST(OvsSwitch, UnmatchedPacketGoesToController) {
  SimulatedSwitch sw(1, profiles::ovs());
  const auto out = sw.forward(packet_for(999), at(0));
  EXPECT_EQ(out.kind, ForwardOutcome::Kind::kToController);
}

TEST(OvsSwitch, DeleteInvalidatesMicroflows) {
  SimulatedSwitch sw(1, profiles::ovs());
  sw.apply_flow_mod(add_rule(0), at(0));
  sw.forward(packet_for(0), at(1));
  ASSERT_EQ(sw.microflow_size(), 1u);
  auto del = add_rule(0);
  del.command = of::FlowModCommand::kDelete;
  sw.apply_flow_mod(del, at(2));
  EXPECT_EQ(sw.microflow_size(), 0u);
  EXPECT_EQ(sw.forward(packet_for(0), at(3)).kind,
            ForwardOutcome::Kind::kToController);
}

TEST(OvsSwitch, ModifyInvalidatesMicroflowsAndRetargets) {
  SimulatedSwitch sw(1, profiles::ovs());
  sw.apply_flow_mod(add_rule(0), at(0));
  sw.forward(packet_for(0), at(1));
  auto mod = add_rule(0);
  mod.command = of::FlowModCommand::kModify;
  mod.actions = of::output_to(5);
  sw.apply_flow_mod(mod, at(2));
  const auto out = sw.forward(packet_for(0), at(3));
  EXPECT_EQ(out.level, 1u);  // microflow was dropped: back to slow path once
  EXPECT_EQ(out.out_port, 5);
}

// ---------------------------------------------------------------------------
// Switch #1: FIFO two-level
// ---------------------------------------------------------------------------

SwitchProfile small_switch1(std::size_t tcam_entries) {
  auto p = profiles::switch1(tables::TcamMode::kSingleWide);
  p.cache_levels[0].capacity_slots = tcam_entries;
  p.install_default_route = false;
  return p;
}

TEST(FifoSwitch, OverflowGoesToSoftwareInOrder) {
  SimulatedSwitch sw(1, small_switch1(5));
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(sw.apply_flow_mod(add_rule(i), at(i)).accepted);
  }
  EXPECT_EQ(sw.level_size(0), 5u);
  EXPECT_EQ(sw.software_size(), 3u);
  // Placement is traffic-independent: first 5 are in TCAM.
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(sw.forward(packet_for(i), at(100 + i)).level, 0u) << i;
  }
  for (std::uint32_t i = 5; i < 8; ++i) {
    EXPECT_EQ(sw.forward(packet_for(i), at(100 + i)).level, 1u) << i;
  }
}

TEST(FifoSwitch, DeleteFromTcamPromotesOldestSoftwareEntry) {
  SimulatedSwitch sw(1, small_switch1(5));
  for (std::uint32_t i = 0; i < 8; ++i) sw.apply_flow_mod(add_rule(i), at(i));
  auto del = add_rule(2);
  del.command = of::FlowModCommand::kDelete;
  sw.apply_flow_mod(del, at(50));
  EXPECT_EQ(sw.level_size(0), 5u);  // refilled
  EXPECT_EQ(sw.software_size(), 2u);
  // Flow 5 (oldest software entry) was promoted.
  EXPECT_EQ(sw.forward(packet_for(5), at(60)).level, 0u);
  EXPECT_EQ(sw.forward(packet_for(6), at(61)).level, 1u);
}

TEST(FifoSwitch, TrafficDoesNotReorderPlacement) {
  SimulatedSwitch sw(1, small_switch1(3));
  for (std::uint32_t i = 0; i < 6; ++i) sw.apply_flow_mod(add_rule(i), at(i));
  // Hammer a software-resident flow; unlike a policy cache it must stay put.
  for (int k = 0; k < 20; ++k) sw.forward(packet_for(5), at(10 + k));
  EXPECT_EQ(sw.forward(packet_for(5), at(100)).level, 1u);
  EXPECT_EQ(sw.forward(packet_for(0), at(101)).level, 0u);
}

TEST(FifoSwitch, DefaultRouteOccupiesOneSlot) {
  auto profile = small_switch1(4);
  profile.install_default_route = true;
  SimulatedSwitch sw(1, profile);
  EXPECT_EQ(sw.level_size(0), 1u);
  for (std::uint32_t i = 0; i < 4; ++i) sw.apply_flow_mod(add_rule(i), at(i));
  EXPECT_EQ(sw.level_size(0), 4u);  // 3 probe rules + default
  EXPECT_EQ(sw.software_size(), 1u);
  // Unmatched traffic hits the default route and goes to the controller.
  EXPECT_EQ(sw.forward(packet_for(77), at(10)).kind,
            ForwardOutcome::Kind::kToController);
}

// ---------------------------------------------------------------------------
// Switch #2/#3: TCAM only
// ---------------------------------------------------------------------------

TEST(TcamOnlySwitch, RejectsWhenFull) {
  auto profile = profiles::switch2();
  profile.cache_levels[0].capacity_slots = 8;  // 4 double-wide entries
  profile.install_default_route = false;
  SimulatedSwitch sw(1, profile);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(sw.apply_flow_mod(add_rule(i), at(i)).accepted);
  }
  const auto out = sw.apply_flow_mod(add_rule(4), at(5));
  EXPECT_FALSE(out.accepted);
  ASSERT_TRUE(out.error.has_value());
  EXPECT_EQ(out.error->type, of::ErrorType::kFlowModFailed);
  EXPECT_EQ(out.error->code,
            static_cast<std::uint16_t>(of::FlowModFailedCode::kAllTablesFull));
}

TEST(TcamOnlySwitch, TwoTierDelays) {
  auto profile = profiles::switch2();
  profile.install_default_route = false;
  SimulatedSwitch sw(1, profile);
  sw.apply_flow_mod(add_rule(0), at(0));
  const auto fast = sw.forward(packet_for(0), at(1));
  const auto ctrl = sw.forward(packet_for(1), at(2));
  EXPECT_EQ(fast.kind, ForwardOutcome::Kind::kForwarded);
  EXPECT_EQ(ctrl.kind, ForwardOutcome::Kind::kToController);
  EXPECT_GT(ctrl.delay.ms(), fast.delay.ms() * 5);
}

TEST(TcamOnlySwitch, Switch3AdaptiveCapacities) {
  // Table 1: 767 L3-only entries, 383 double-wide.
  SimulatedSwitch sw(1, profiles::switch3());
  std::size_t accepted = 0;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    if (sw.apply_flow_mod(add_rule(i), at(i)).accepted) ++accepted;
  }
  EXPECT_EQ(accepted, 767u - 1);  // default route holds one slot
}

// ---------------------------------------------------------------------------
// Policy cache
// ---------------------------------------------------------------------------

SwitchProfile lru_cache_profile(std::size_t size) {
  return profiles::policy_cache("lru-test", {size}, tables::LexCachePolicy::lru());
}

TEST(PolicyCacheSwitch, InsertEvictsPolicyVictimDownward) {
  // FIFO policy: newest insertions stay in the fast level.
  auto profile = profiles::policy_cache("fifo-test", {3},
                                        tables::LexCachePolicy::fifo());
  SimulatedSwitch sw(1, profile);
  for (std::uint32_t i = 0; i < 6; ++i) sw.apply_flow_mod(add_rule(i), at(i));
  EXPECT_EQ(sw.level_size(0), 3u);
  EXPECT_EQ(sw.software_size(), 3u);
  // Newest three (3,4,5) must be resident in level 0.
  for (std::uint32_t i = 3; i < 6; ++i) {
    EXPECT_TRUE(sw.resident_at_level(ProbeEngine::probe_match(i), 0x8000, 0)) << i;
  }
}

TEST(PolicyCacheSwitch, LruPromotesHotFlows) {
  SimulatedSwitch sw(1, lru_cache_profile(3));
  for (std::uint32_t i = 0; i < 6; ++i) sw.apply_flow_mod(add_rule(i), at(i));
  // Touch an evicted flow: with LRU it must displace the coldest resident.
  const auto slow = sw.forward(packet_for(0), at(100));
  EXPECT_GE(slow.level, 1u);  // observed in the slow tier at probe time
  const auto again = sw.forward(packet_for(0), at(101));
  EXPECT_EQ(again.level, 0u);  // promoted
}

TEST(PolicyCacheSwitch, LruSteadyStateIsTopNByUse) {
  SimulatedSwitch sw(1, lru_cache_profile(4));
  for (std::uint32_t i = 0; i < 8; ++i) sw.apply_flow_mod(add_rule(i), at(i));
  // Use flows 0..3 most recently.
  for (std::uint32_t i = 0; i < 4; ++i) sw.forward(packet_for(i), at(200 + i));
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(sw.forward(packet_for(i), at(300 + i)).level, 0u) << i;
  }
}

TEST(PolicyCacheSwitch, CacheHitDoesNotChangeResidency) {
  // The size-probing algorithm's core assumption (§5.2).
  SimulatedSwitch sw(1, lru_cache_profile(4));
  for (std::uint32_t i = 0; i < 8; ++i) sw.apply_flow_mod(add_rule(i), at(i));
  const auto levels_before = [&] {
    std::vector<std::size_t> v;
    for (std::uint32_t i = 0; i < 8; ++i) {
      v.push_back(sw.resident_at_level(ProbeEngine::probe_match(i), 0x8000, 0) ? 0 : 1);
    }
    return v;
  }();
  // Probe only resident flows.
  for (std::uint32_t i = 0; i < 8; ++i) {
    if (levels_before[i] == 0) sw.forward(packet_for(i), at(500 + i));
  }
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(sw.resident_at_level(ProbeEngine::probe_match(i), 0x8000, 0),
              levels_before[i] == 0)
        << i;
  }
}

TEST(PolicyCacheSwitch, MultiLevelFillsTopDown) {
  auto profile = profiles::policy_cache("ml", {2, 3}, tables::LexCachePolicy::fifo());
  SimulatedSwitch sw(1, profile);
  for (std::uint32_t i = 0; i < 7; ++i) sw.apply_flow_mod(add_rule(i), at(i));
  EXPECT_EQ(sw.level_size(0), 2u);
  EXPECT_EQ(sw.level_size(1), 3u);
  EXPECT_EQ(sw.software_size(), 2u);
}

TEST(PolicyCacheSwitch, NoBackingRejectsWhenAllLevelsFull) {
  auto profile = profiles::policy_cache("nb", {2}, tables::LexCachePolicy::fifo(),
                                        /*software_backing=*/false);
  SimulatedSwitch sw(1, profile);
  EXPECT_TRUE(sw.apply_flow_mod(add_rule(0), at(0)).accepted);
  EXPECT_TRUE(sw.apply_flow_mod(add_rule(1), at(1)).accepted);
  // With no backing store an eviction would drop an installed rule, so the
  // switch must reject instead of displacing.
  const auto out = sw.apply_flow_mod(add_rule(2), at(2));
  EXPECT_FALSE(out.accepted);
  EXPECT_EQ(sw.total_rules(), 2u);
}

// ---------------------------------------------------------------------------
// Generic OpenFlow semantics
// ---------------------------------------------------------------------------

TEST(SwitchSemantics, StrictDuplicateAddReplacesInPlace) {
  SimulatedSwitch sw(1, small_switch1(10));
  sw.apply_flow_mod(add_rule(0), at(0));
  auto replace = add_rule(0);
  replace.actions = of::output_to(7);
  sw.apply_flow_mod(replace, at(1));
  EXPECT_EQ(sw.total_rules(), 1u);
  EXPECT_EQ(sw.forward(packet_for(0), at(2)).out_port, 7);
}

TEST(SwitchSemantics, ModifyWithNoMatchActsAsAdd) {
  SimulatedSwitch sw(1, small_switch1(10));
  auto mod = add_rule(3);
  mod.command = of::FlowModCommand::kModify;
  mod.actions = of::output_to(4);
  EXPECT_TRUE(sw.apply_flow_mod(mod, at(0)).accepted);
  EXPECT_EQ(sw.total_rules(), 1u);
  EXPECT_EQ(sw.forward(packet_for(3), at(1)).out_port, 4);
}

TEST(SwitchSemantics, NonStrictDeleteUsesSubsumption) {
  SimulatedSwitch sw(1, small_switch1(10));
  for (std::uint32_t i = 0; i < 6; ++i) sw.apply_flow_mod(add_rule(i), at(i));
  of::FlowMod del;
  del.command = of::FlowModCommand::kDelete;
  del.match = of::Match::any();
  sw.apply_flow_mod(del, at(10));
  EXPECT_EQ(sw.total_rules(), 0u);
}

TEST(SwitchSemantics, StrictDeleteRemovesExactlyOne) {
  SimulatedSwitch sw(1, small_switch1(10));
  sw.apply_flow_mod(add_rule(0, 100), at(0));
  sw.apply_flow_mod(add_rule(1, 100), at(1));
  auto del = add_rule(0, 100);
  del.command = of::FlowModCommand::kDeleteStrict;
  sw.apply_flow_mod(del, at(2));
  EXPECT_EQ(sw.total_rules(), 1u);
  EXPECT_EQ(sw.forward(packet_for(1), at(3)).kind,
            ForwardOutcome::Kind::kForwarded);
}

TEST(SwitchSemantics, MaxTotalRulesIsEnforced) {
  auto profile = profiles::ovs();
  profile.max_total_rules = 3;
  SimulatedSwitch sw(1, profile);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(sw.apply_flow_mod(add_rule(i), at(i)).accepted);
  }
  EXPECT_FALSE(sw.apply_flow_mod(add_rule(3), at(3)).accepted);
}

TEST(SwitchSemantics, FlowStatsReportCountersAndPriorities) {
  SimulatedSwitch sw(1, small_switch1(10));
  sw.apply_flow_mod(add_rule(0, 123), at(0));
  sw.forward(packet_for(0), at(1));
  sw.forward(packet_for(0), at(2));
  const auto stats = sw.flow_stats(of::Match::any());
  ASSERT_EQ(stats.entries.size(), 1u);
  EXPECT_EQ(stats.entries[0].priority, 123);
  EXPECT_EQ(stats.entries[0].packet_count, 2u);
  EXPECT_GT(stats.entries[0].byte_count, 0u);
}

TEST(SwitchSemantics, TableStatsDescribeLevels) {
  SimulatedSwitch sw(1, small_switch1(10));
  sw.apply_flow_mod(add_rule(0), at(0));
  const auto stats = sw.table_stats();
  ASSERT_EQ(stats.entries.size(), 2u);  // TCAM + software
  EXPECT_EQ(stats.entries[0].active_count, 1u);
  EXPECT_EQ(stats.entries[1].name, "software");
}

TEST(SwitchSemantics, FeaturesReplyDescribesSwitch) {
  SimulatedSwitch sw(42, profiles::switch2());
  const auto f = sw.features();
  EXPECT_EQ(f.datapath_id, 42u);
  EXPECT_EQ(f.n_tables, 1);
  EXPECT_EQ(f.ports.size(), profiles::switch2().n_ports);
}

TEST(SwitchSemantics, ResetRestoresCleanState) {
  SimulatedSwitch sw(1, profiles::switch1());
  sw.apply_flow_mod(add_rule(0), at(0));
  sw.reset();
  EXPECT_EQ(sw.total_rules(), 1u);  // the reinstalled default route
  EXPECT_EQ(sw.forward(packet_for(0), at(1)).kind,
            ForwardOutcome::Kind::kToController);
}

TEST(SwitchSemantics, ProcessingTimeGrowsWithShifts) {
  auto profile = small_switch1(3000);
  profile.costs.jitter_frac = 0;  // deterministic for the comparison
  SimulatedSwitch sw(1, profile);
  // Fill with 2000 ascending entries.
  for (std::uint32_t i = 0; i < 2000; ++i) {
    sw.apply_flow_mod(add_rule(i, static_cast<std::uint16_t>(100 + i)), at(i));
  }
  // Appending above costs far less than inserting below everything.
  const auto cheap = sw.apply_flow_mod(add_rule(9000, 9000), at(3000));
  const auto expensive = sw.apply_flow_mod(add_rule(9001, 1), at(3001));
  EXPECT_GT(expensive.processing_time.ms(), cheap.processing_time.ms() * 10);
  EXPECT_EQ(expensive.shifts, 2001u);
}

}  // namespace
}  // namespace tango::switchsim
