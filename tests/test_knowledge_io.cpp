// Tests for knowledge-base persistence: offline-probed switch properties
// round-trip through the text format, and an imported record drives the
// scheduler without any re-probing.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "net/network.h"
#include "scheduler/executor.h"
#include "scheduler/schedulers.h"
#include "switchsim/profiles.h"
#include "tango/knowledge_io.h"

namespace tango::core {
namespace {

namespace profiles = switchsim::profiles;

SwitchKnowledge sample_knowledge() {
  SwitchKnowledge k;
  k.name = "lab-switch";
  k.sizes.layer_sizes = {2047.0, 1953.0};
  k.sizes.hit_rule_cap = true;
  k.sizes.installed = 4000;
  stats::Cluster fast;
  fast.center = 0.665;
  stats::Cluster slow;
  slow.center = 3.7;
  k.sizes.clusters = {fast, slow};
  PolicyInferenceResult policy;
  policy.policy = tables::LexCachePolicy::lex(
      {{tables::Attribute::kUseTime, tables::Direction::kPreferHigh},
       {tables::Attribute::kPriority, tables::Direction::kPreferLow}});
  k.policy = policy;
  WidthInferenceResult width;
  width.mode = tables::TcamMode::kDoubleWide;
  width.capacity_l2 = 2048;
  width.capacity_l3 = 2048;
  width.capacity_wide = 2048;
  k.width = width;
  k.costs.add_ascending_ms = 0.76;
  k.costs.add_descending_ms = 25.8;
  k.costs.add_same_priority_ms = 0.46;
  k.costs.add_random_ms = 13.1;
  k.costs.mod_ms = 3.05;
  k.costs.del_ms = 12.5;
  return k;
}

TEST(KnowledgeIo, RoundTripsThroughText) {
  const auto original = sample_knowledge();
  std::stringstream stream;
  write_knowledge(stream, "lab-switch", original);

  auto loaded = read_knowledge(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  ASSERT_EQ(loaded.value().size(), 1u);
  const auto& k = loaded.value().at("lab-switch");

  EXPECT_EQ(k.name, "lab-switch");
  ASSERT_EQ(k.sizes.layer_sizes.size(), 2u);
  EXPECT_DOUBLE_EQ(k.sizes.layer_sizes[0], 2047.0);
  EXPECT_TRUE(k.sizes.hit_rule_cap);
  EXPECT_EQ(k.sizes.installed, 4000u);
  ASSERT_EQ(k.sizes.clusters.size(), 2u);
  EXPECT_DOUBLE_EQ(k.sizes.clusters[1].center, 3.7);
  ASSERT_TRUE(k.policy.has_value());
  EXPECT_EQ(k.policy->policy, original.policy->policy);
  ASSERT_TRUE(k.width.has_value());
  EXPECT_EQ(k.width->mode, tables::TcamMode::kDoubleWide);
  EXPECT_DOUBLE_EQ(k.width->capacity_wide, 2048);
  EXPECT_DOUBLE_EQ(k.costs.add_descending_ms, 25.8);
  EXPECT_DOUBLE_EQ(k.costs.del_ms, 12.5);
}

TEST(KnowledgeIo, MultipleRecordsAndComments) {
  std::stringstream stream;
  stream << "# fleet snapshot\n";
  write_knowledge(stream, "sw-a", sample_knowledge());
  auto b = sample_knowledge();
  b.policy.reset();
  b.width.reset();
  write_knowledge(stream, "sw-b", b);

  auto loaded = read_knowledge(stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 2u);
  EXPECT_TRUE(loaded.value().at("sw-a").policy.has_value());
  EXPECT_FALSE(loaded.value().at("sw-b").policy.has_value());
  EXPECT_FALSE(loaded.value().at("sw-b").width.has_value());
}

TEST(KnowledgeIo, MalformedInputsReportErrors) {
  {
    std::stringstream s("layer_sizes = 1 2\n");
    EXPECT_FALSE(read_knowledge(s).ok());  // data before section
  }
  {
    std::stringstream s("[switch x]\nbogus_field = 1\n");
    EXPECT_FALSE(read_knowledge(s).ok());
  }
  {
    std::stringstream s("[switch x]\nlayer_sizes 1 2\n");
    EXPECT_FALSE(read_knowledge(s).ok());  // missing '='
  }
  {
    std::stringstream s("[broken\n");
    EXPECT_FALSE(read_knowledge(s).ok());
  }
  {
    std::stringstream s("[switch x]\npolicy = nonsense\n");
    EXPECT_FALSE(read_knowledge(s).ok());  // bad policy token
  }
}

TEST(KnowledgeIo, FileRoundTrip) {
  const std::string path = "/tmp/tango_knowledge_test.txt";
  std::map<std::string, SwitchKnowledge> records;
  records["fleet-1"] = sample_knowledge();
  ASSERT_TRUE(save_knowledge_file(path, records));
  auto loaded = load_knowledge_file(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  EXPECT_EQ(loaded.value().size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.value().at("fleet-1").costs.mod_ms, 3.05);
  std::remove(path.c_str());
  EXPECT_FALSE(load_knowledge_file(path).ok());
}

TEST(KnowledgeIo, OfflineKnowledgeDrivesSchedulerWithoutProbing) {
  // Lab phase: probe a switch and export what was learned.
  std::stringstream transfer;
  {
    net::Network lab;
    const auto id = lab.add_switch(profiles::switch1());
    TangoController tango(lab);
    LearnOptions options;
    options.size.max_rules = 512;
    options.infer_policy = false;
    write_knowledge(transfer, "vendor1-model", tango.learn(id, options));
  }

  // Production phase: a fresh controller imports the file and schedules
  // with the learned costs — zero probe traffic on the production switch.
  auto loaded = read_knowledge(transfer);
  ASSERT_TRUE(loaded.ok());
  const auto& know = loaded.value().at("vendor1-model");

  net::Network prod;
  const auto id = prod.add_switch(profiles::switch1());
  const auto msgs_before = prod.stats(id).messages_to_switch;

  sched::RequestDag dag;
  Rng rng(13);
  for (std::uint32_t i = 0; i < 120; ++i) {
    sched::SwitchRequest r;
    r.location = id;
    r.type = sched::RequestType::kAdd;
    r.priority = static_cast<std::uint16_t>(rng.uniform_int(1000, 9000));
    r.match = ProbeEngine::probe_match(i);
    r.actions = of::output_to(2);
    dag.add(r);
  }
  sched::BasicTangoScheduler tango_sched({{id, know.costs}});
  const auto tango_time = sched::execute(prod, dag, tango_sched).makespan;

  net::Network base;
  const auto base_id = base.add_switch(profiles::switch1());
  sched::RequestDag base_dag;
  Rng rng2(13);
  for (std::uint32_t i = 0; i < 120; ++i) {
    sched::SwitchRequest r;
    r.location = base_id;
    r.type = sched::RequestType::kAdd;
    r.priority = static_cast<std::uint16_t>(rng2.uniform_int(1000, 9000));
    r.match = ProbeEngine::probe_match(i);
    r.actions = of::output_to(2);
    base_dag.add(r);
  }
  sched::DionysusScheduler dionysus;
  const auto base_time = sched::execute(base, base_dag, dionysus).makespan;

  EXPECT_LT(tango_time.ns(), base_time.ns());
  // The production switch only ever saw the scheduled flow_mods.
  EXPECT_EQ(prod.stats(id).messages_to_switch - msgs_before, 120u);
}

}  // namespace
}  // namespace tango::core
