// Google-benchmark microbenchmarks for the TCAM model: insertion at the
// three characteristic positions (append, middle, bottom), lookup, and the
// policy-cache eviction decision.
#include <benchmark/benchmark.h>

#include "tables/cache_policy.h"
#include "tables/tcam.h"
#include "tango/probe_engine.h"

namespace {

using namespace tango;

tables::FlowEntry make_entry(std::uint32_t index, std::uint16_t priority) {
  tables::FlowEntry e;
  e.id = index;
  e.priority = priority;
  e.match = core::ProbeEngine::probe_match(index);
  return e;
}

tables::Tcam filled_tcam(std::size_t n) {
  tables::Tcam t({n + 16, tables::TcamMode::kSingleWide});
  for (std::size_t i = 0; i < n; ++i) {
    t.insert(make_entry(static_cast<std::uint32_t>(i),
                        static_cast<std::uint16_t>(1000 + i)));
  }
  return t;
}

void BM_TcamInsertAppend(benchmark::State& state) {
  auto t = filled_tcam(static_cast<std::size_t>(state.range(0)));
  std::uint32_t next = 1 << 20;
  for (auto _ : state) {
    t.insert(make_entry(next, 0x7000));  // above all: append
    t.erase(next);
    ++next;
  }
}
BENCHMARK(BM_TcamInsertAppend)->Arg(256)->Arg(2048);

void BM_TcamInsertBottom(benchmark::State& state) {
  auto t = filled_tcam(static_cast<std::size_t>(state.range(0)));
  std::uint32_t next = 1 << 20;
  for (auto _ : state) {
    t.insert(make_entry(next, 1));  // below all: full shift
    t.erase(next);
    ++next;
  }
}
BENCHMARK(BM_TcamInsertBottom)->Arg(256)->Arg(2048);

void BM_TcamLookupHit(benchmark::State& state) {
  auto t = filled_tcam(static_cast<std::size_t>(state.range(0)));
  const auto pkt = core::ProbeEngine::probe_packet(0);  // lowest priority: worst case
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.lookup(pkt));
  }
}
BENCHMARK(BM_TcamLookupHit)->Arg(256)->Arg(2048);

void BM_PolicyVictimSelection(benchmark::State& state) {
  auto t = filled_tcam(static_cast<std::size_t>(state.range(0)));
  const auto policy = tables::LexCachePolicy::lru();
  std::vector<const tables::FlowEntry*> entries;
  for (const auto& e : t.entries()) entries.push_back(&e);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        policy.victim_index({entries.data(), entries.size()}));
  }
}
BENCHMARK(BM_PolicyVictimSelection)->Arg(256)->Arg(2048);

}  // namespace

BENCHMARK_MAIN();
