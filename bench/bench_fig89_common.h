// Shared driver for the Figure 8 (OVS) and Figure 9 (HW Switch #1)
// single-switch optimization experiments: install each ClassBench rule set
// under four scheduling scenarios — {topological, R} priority assignment x
// {probing-engine-optimal, random} installation order — ten times each.
#pragma once

#include "bench/bench_util.h"
#include "switchsim/profiles.h"
#include "workload/dependency.h"

namespace tango::bench {

inline void run_fig89(const switchsim::SwitchProfile& profile,
                      const char* paper_note, telemetry::RunReport& report) {
  const workload::ClassbenchProfile files[] = {workload::cb1(), workload::cb2(),
                                               workload::cb3()};
  for (const auto& file : files) {
    const auto rules = workload::generate_classbench(file);
    const auto dag = workload::RuleDag::build(rules);
    const auto topo = dag.topological_priorities();
    const auto r = dag.r_priorities();

    struct Scenario {
      const char* name;
      const std::vector<std::uint16_t>* priorities;
      bool optimal_order;
    };
    const Scenario scenarios[] = {
        {"Topo Opt", &topo, true},
        {"Topo Rand", &topo, false},
        {"R Opt", &r, true},
        {"R Rand", &r, false},
    };

    std::printf("%s on %s  (%s)\n", file.name.c_str(), profile.name.c_str(),
                paper_note);
    std::printf("  %-10s | mean (s) | stddev | per-trial (s)\n", "scenario");

    std::vector<double> means;
    for (const auto& scenario : scenarios) {
      std::vector<double> times;
      for (int trial = 0; trial < 10; ++trial) {
        net::Network net;
        const auto id = net.add_switch(profile, 7000 + static_cast<std::uint64_t>(trial));
        core::ProbeEngine probe(net, id);
        std::vector<std::size_t> order;
        if (scenario.optimal_order) {
          // The probing engine's answer: ascending priority installation.
          order = ascending_order(*scenario.priorities);
        } else {
          order = identity_order(rules.size());
          Rng rng(100 + trial);
          rng.shuffle(order);
        }
        times.push_back(
            install_acl(probe, rules, *scenario.priorities, order).sec());
      }
      const auto s = stats_of(times);
      means.push_back(s.mean);
      std::printf("  %-10s | %8.4f | %6.4f |", scenario.name, s.mean, s.stddev);
      for (double t : times) std::printf(" %.4f", t);
      std::printf("\n");
      report.add_row()
          .col("rule_set", file.name)
          .col("scenario", scenario.name)
          .col("mean_s", s.mean)
          .col("stddev_s", s.stddev);
    }
    // Improvement headline: Topo Opt vs the worst random scenario.
    const double best = means[0];
    const double worst = std::max(means[1], means[3]);
    std::printf("  => Topo+Opt vs worst random: %.0f%% faster\n\n",
                100.0 * (1.0 - best / worst));
    report.set_result(file.name + ".topo_opt_vs_worst_random_pct",
                      100.0 * (1.0 - best / worst));
  }
}

}  // namespace tango::bench
