// Google-benchmark microbenchmarks for the OpenFlow wire codec: encode and
// decode throughput for the hot message types (flow_mod dominates probing
// and scheduling traffic).
#include <benchmark/benchmark.h>

#include "openflow/codec.h"
#include "tango/probe_engine.h"

namespace {

using namespace tango;

of::Message flow_mod_message() {
  auto fm = core::ProbeEngine::probe_add(123, 456);
  fm.actions.push_back(of::ActionSetNwDst{0x01020304});
  return of::Message{42, fm};
}

void BM_EncodeFlowMod(benchmark::State& state) {
  const auto msg = flow_mod_message();
  for (auto _ : state) {
    benchmark::DoNotOptimize(of::encode(msg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EncodeFlowMod);

void BM_DecodeFlowMod(benchmark::State& state) {
  const auto frame = of::encode(flow_mod_message());
  for (auto _ : state) {
    auto msg = of::decode(frame);
    benchmark::DoNotOptimize(msg);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * frame.size()));
}
BENCHMARK(BM_DecodeFlowMod);

void BM_EncodePacketIn(benchmark::State& state) {
  of::PacketIn pin;
  pin.in_port = 3;
  pin.data.assign(static_cast<std::size_t>(state.range(0)), 0xab);
  const of::Message msg{7, pin};
  for (auto _ : state) {
    benchmark::DoNotOptimize(of::encode(msg));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_EncodePacketIn)->Arg(64)->Arg(512)->Arg(1500);

void BM_MatchLookup(benchmark::State& state) {
  const auto match = core::ProbeEngine::probe_match(5);
  const auto pkt = core::ProbeEngine::probe_packet(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(match.matches(pkt));
  }
}
BENCHMARK(BM_MatchLookup);

void BM_MatchOverlap(benchmark::State& state) {
  const auto a = core::ProbeEngine::probe_match(5);
  auto b = of::Match::any();
  b.set_nw_src_prefix(0x0a000000, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.overlaps(b));
  }
}
BENCHMARK(BM_MatchOverlap);

void BM_FrameAssembler(benchmark::State& state) {
  const auto frame = of::encode(flow_mod_message());
  for (auto _ : state) {
    of::FrameAssembler assembler;
    assembler.feed(frame);
    benchmark::DoNotOptimize(assembler.next_frame());
  }
}
BENCHMARK(BM_FrameAssembler);

}  // namespace

BENCHMARK_MAIN();
