// Ablation: executor per-switch dispatch window (DESIGN.md §5.5 adjacent).
//
// The window is the executor's flow-control knob: commands in flight per
// switch. Window 1 starves the agent on channel latency; a huge window
// pushes the whole backlog to the switch where the scheduler can no longer
// re-order it (trickled requests lose type grouping / priority sorting).
// The sweet spot keeps the agent busy while the backlog stays at the
// controller.
#include <map>

#include "bench/bench_util.h"
#include "scheduler/executor.h"
#include "scheduler/schedulers.h"
#include "switchsim/profiles.h"
#include "tango/tango.h"
#include "workload/scenarios.h"

namespace {

using namespace tango;

workload::TestbedIds build(net::Network& net) {
  namespace profiles = switchsim::profiles;
  workload::TestbedIds tb;
  tb.s1 = net.add_switch(profiles::switch1());
  tb.s2 = net.add_switch(profiles::switch1());
  tb.s3 = net.add_switch(profiles::switch3());
  return tb;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: per-switch dispatch window (TE1 scenario, Tango scheduler)",
      "window 1: agent starves on RTT; window 512: backlog leaves the "
      "controller and re-ordering degrades to arrival order");

  // Learn costs once.
  std::map<SwitchId, core::OpCostEstimate> costs;
  {
    net::Network net;
    const auto tb = build(net);
    core::TangoController tango(net);
    for (const auto id : {tb.s1, tb.s2, tb.s3}) {
      core::LearnOptions options;
      options.size.max_rules = 1024;
      options.infer_policy = false;
      costs[id] = tango.learn(id, options).costs;
    }
  }

  std::printf("%8s | makespan (s) | vs window=4\n", "window");
  std::printf("---------+--------------+------------\n");
  double baseline = 0;
  for (const std::size_t window : {1, 2, 4, 16, 64, 512}) {
    net::Network net;
    const auto tb = build(net);
    Rng rng(99);
    auto dag = workload::traffic_engineering_scenario(tb, 800, 2, 1, 1, rng,
                                                      100000, 0);
    sched::BasicTangoScheduler scheduler(costs);
    sched::ExecutorOptions options;
    options.per_switch_window = window;
    const double s = sched::execute(net, dag, scheduler, options).makespan.sec();
    if (window == 4) baseline = s;
    std::printf("%8zu | %12.3f |\n", window, s);
  }
  std::printf("(baseline window=4: %.3f s)\n", baseline);
  bench::print_footer();
  return 0;
}
