// Section 5.3 evaluation: cache-replacement-policy inference across the
// classic policies and lexicographic compositions — ground truth vs what
// Algorithm 2 recovers, with the correlation strength per inferred key.
#include "bench/bench_util.h"
#include "switchsim/profiles.h"
#include "tango/policy_inference.h"

int main() {
  using namespace tango;
  namespace profiles = switchsim::profiles;
  using tables::Attribute;
  using tables::Direction;
  using tables::LexCachePolicy;

  bench::print_header(
      "Cache-policy inference: ground truth vs inferred",
      "Algorithm 2 identifies the eviction order's attributes by probing "
      "(LRU example in §5.3)");

  struct Case {
    const char* name;
    LexCachePolicy truth;
    std::size_t cache;
  };
  const Case cases[] = {
      {"FIFO", LexCachePolicy::fifo(), 100},
      {"LRU", LexCachePolicy::lru(), 100},
      {"LFU", LexCachePolicy::lfu(), 100},
      {"priority", LexCachePolicy::priority_based(), 100},
      {"LRU (big cache)", LexCachePolicy::lru(), 600},
      {"priority->use",
       LexCachePolicy::lex({{Attribute::kPriority, Direction::kPreferHigh},
                            {Attribute::kUseTime, Direction::kPreferHigh}}),
       120},
      {"traffic->priority",
       LexCachePolicy::lex({{Attribute::kTrafficCount, Direction::kPreferHigh},
                            {Attribute::kPriority, Direction::kPreferHigh}}),
       120},
  };

  std::printf("%-18s | %-34s | %-34s | rounds | correlations\n", "truth name",
              "configured order", "inferred order");
  std::printf("-------------------+------------------------------------+----"
              "--------------------------------+--------+-------------\n");

  for (const auto& c : cases) {
    net::Network net;
    const auto id =
        net.add_switch(profiles::policy_cache("probe", {c.cache}, c.truth));
    core::ProbeEngine probe(net, id);
    core::PolicyInferenceConfig config;
    config.cache_size = c.cache;
    const auto result = infer_policy(probe, config);

    std::string corrs;
    for (double r : result.correlations) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.2f ", r);
      corrs += buf;
    }
    std::printf("%-18s | %-34s | %-34s | %6zu | %s\n", c.name,
                c.truth.describe().c_str(), result.policy.describe().c_str(),
                result.rounds, corrs.c_str());
  }

  std::printf("\n(The inferred order's leading keys should match the "
              "configured policy; trailing keys beyond the configured ones "
              "are unobservable tie-breaks.)\n");
  bench::print_footer();
  return 0;
}
