// Figure 12 reproduction: traffic-engineering update on Google's B4
// topology (12 sites, OVS switches, Mininet in the paper), driven by a
// max-min fair reallocation after a traffic-matrix change; Dionysus vs
// Tango. OVS is priority-insensitive, so the ~8% gain comes from rule-type
// grouping alone.
#include <map>

#include "bench/bench_util.h"
#include "net/b4.h"
#include "scheduler/executor.h"
#include "scheduler/schedulers.h"
#include "switchsim/profiles.h"
#include "tango/tango.h"
#include "workload/maxmin.h"

namespace {

using namespace tango;

constexpr std::size_t kDemands = 2200;

sched::RequestDag build_update(net::Network& net,
                               const std::vector<SwitchId>& sites, Rng& rng) {
  auto& topo = net.topology();
  auto before_demands = workload::random_demands(topo, kDemands, rng);
  const auto before = workload::maxmin_allocate(topo, before_demands);

  // Traffic-matrix change: ~30% of demands change rate, ~15% disappear,
  // ~15% are new, and a link failure reroutes everything crossing it.
  auto after_demands = before_demands;
  std::vector<workload::Demand> next;
  for (auto& d : after_demands) {
    if (rng.chance(0.15)) continue;  // demand gone
    if (rng.chance(0.30)) d.requested_gbps = rng.uniform_real(0.05, 1.0);
    next.push_back(d);
  }
  for (std::size_t i = 0; i < kDemands * 3 / 20; ++i) {
    workload::Demand d;
    d.src = rng.index(topo.node_count());
    do {
      d.dst = rng.index(topo.node_count());
    } while (d.dst == d.src);
    d.requested_gbps = rng.uniform_real(0.05, 1.0);
    d.flow_id = static_cast<std::uint32_t>(kDemands + i);
    next.push_back(d);
  }
  topo.set_link_state(3, false);  // perturb routing
  const auto after = workload::maxmin_allocate(topo, next);
  topo.set_link_state(3, true);

  return workload::te_update_dag(before, after, sites, rng);
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 12: B4 traffic-engineering update (2200 end-to-end demands, "
      "OVS switches)",
      "Tango ~8% faster than Dionysus (type patterns only; priority has no "
      "effect on OVS)");

  // Learn OVS costs once.
  std::map<SwitchId, core::OpCostEstimate> costs;
  {
    net::Network net;
    const auto id = net.add_switch(switchsim::profiles::ovs());
    core::TangoController tango(net);
    core::LearnOptions options;
    options.size.max_rules = 512;
    options.infer_policy = false;
    const auto& know = tango.learn(id, options);
    for (SwitchId s = 1; s <= 12; ++s) costs[s] = know.costs;
  }

  double dionysus_s = 0, tango_s = 0;
  std::size_t n_requests = 0;
  {
    net::Network net;
    const auto sites = net::build_b4(net, switchsim::profiles::ovs());
    Rng rng(2200);
    auto dag = build_update(net, sites, rng);
    n_requests = dag.size();
    sched::DionysusScheduler sched;
    dionysus_s = sched::execute(net, dag, sched).makespan.sec();
  }
  {
    net::Network net;
    const auto sites = net::build_b4(net, switchsim::profiles::ovs());
    Rng rng(2200);
    auto dag = build_update(net, sites, rng);
    sched::BasicTangoScheduler sched(costs);
    tango_s = sched::execute(net, dag, sched).makespan.sec();
  }

  std::printf("update size: %zu switch requests across 12 sites\n", n_requests);
  std::printf("  Dionysus : %.3f s\n", dionysus_s);
  std::printf("  Tango    : %.3f s\n", tango_s);
  std::printf("  improvement: %.1f%%  (paper: ~8%%)\n",
              100.0 * (1.0 - tango_s / dionysus_s));
  bench::BenchReport report("fig12_b4_te");
  report.json().set_result("n_requests", static_cast<double>(n_requests));
  report.json().set_result("dionysus_s", dionysus_s);
  report.json().set_result("tango_s", tango_s);
  report.json().set_result("improvement_pct",
                           100.0 * (1.0 - tango_s / dionysus_s));
  bench::print_footer();
  return 0;
}
