// Indexed-vs-reference table microbenchmark: times the production (indexed)
// Tcam / SoftwareTable / MicroflowCache against the pre-index linear-scan
// reference implementations (tests/reference_table.h) in one process, and
// records both absolute throughputs and the machine-independent speedup
// ratios in BENCH_micro_tables.json. The speedup_* results are the CI
// perf gate (tools/bench_compare.py --tolerance 0.25 against
// bench/baselines/BENCH_micro_tables.json); the *_ops_per_sec results are
// informational — they track the host, not the code.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "tables/cache_policy.h"
#include "tables/software_table.h"
#include "tables/tcam.h"
#include "tango/probe_engine.h"
#include "tests/reference_table.h"

namespace {

using namespace tango;
using tables::testing::ReferenceMicroflowCache;
using tables::testing::ReferenceSoftwareTable;
using tables::testing::ReferenceTcam;

/// Keep a value alive without letting the optimizer fold the computation.
template <typename T>
inline void keep(T&& value) {
  asm volatile("" : : "g"(value) : "memory");
}

/// Best-of-3 time-budgeted throughput: runs `op` in small batches until the
/// budget elapses, three times, and keeps the fastest rate (robust against
/// background load on shared runners).
template <typename Op>
double ops_per_sec(Op&& op, double budget_s = 0.1) {
  using clock = std::chrono::steady_clock;
  double best = 0;
  for (int rep = 0; rep < 3; ++rep) {
    op();  // warm caches outside the timed region
    std::size_t iters = 0;
    const auto start = clock::now();
    const auto deadline = start + std::chrono::duration_cast<clock::duration>(
                                      std::chrono::duration<double>(budget_s));
    auto now = start;
    while (now < deadline) {
      for (int i = 0; i < 4; ++i) {
        op();
        ++iters;
      }
      now = clock::now();
    }
    const double secs = std::chrono::duration<double>(now - start).count();
    if (secs > 0) best = std::max(best, static_cast<double>(iters) / secs);
  }
  return best;
}

tables::FlowEntry make_entry(std::uint32_t index, std::uint16_t priority) {
  tables::FlowEntry e;
  e.id = index;
  e.priority = priority;
  e.match = core::ProbeEngine::probe_match(index);
  e.attrs.insert_time = SimTime(static_cast<std::int64_t>(index) * 1000);
  e.attrs.last_use_time = SimTime(static_cast<std::int64_t>(index) * 1000);
  return e;
}

template <typename Table>
void fill(Table& t, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    t.insert(make_entry(static_cast<std::uint32_t>(i),
                        static_cast<std::uint16_t>(1000 + i)));
  }
}

struct Pair {
  double ref = 0;
  double idx = 0;
  [[nodiscard]] double speedup() const { return ref > 0 ? idx / ref : 0; }
};

void record(bench::BenchReport& report, const std::string& what, std::size_t n,
            const Pair& p) {
  const std::string suffix = what + "_" + std::to_string(n);
  report.json().set_result("ref_" + suffix + "_ops_per_sec", p.ref);
  report.json().set_result("idx_" + suffix + "_ops_per_sec", p.idx);
  report.json().set_result("speedup_" + suffix, p.speedup());
  std::printf("  %-28s n=%-6zu ref %12.0f/s   idx %12.0f/s   speedup %8.1fx\n",
              what.c_str(), n, p.ref, p.idx, p.speedup());
}

Pair bench_tcam_lookup(std::size_t n) {
  ReferenceTcam ref({n + 16, tables::TcamMode::kSingleWide});
  tables::Tcam idx({n + 16, tables::TcamMode::kSingleWide});
  fill(ref, n);
  fill(idx, n);
  // probe 0 sits at the bottom of the physical array: the linear scan from
  // the top walks all n entries before finding it (its worst case).
  const auto pkt = core::ProbeEngine::probe_packet(0);
  Pair p;
  p.ref = ops_per_sec([&] { keep(ref.lookup(pkt)); });
  p.idx = ops_per_sec([&] { keep(idx.lookup(pkt)); });
  return p;
}

Pair bench_tcam_churn(std::size_t n) {
  // Append-above-all install followed by delete of the same rule — the
  // probe-engine hot path. The reference delete re-finds the id linearly.
  ReferenceTcam ref({n + 16, tables::TcamMode::kSingleWide});
  tables::Tcam idx({n + 16, tables::TcamMode::kSingleWide});
  fill(ref, n);
  fill(idx, n);
  // 0xF000 stays above the fill priorities (1000..1000+n) for every n we
  // run, so the install really appends at the top instead of shifting the
  // middle of the array.
  std::uint32_t next = 1u << 20;
  Pair p;
  p.ref = ops_per_sec([&] {
    ref.insert(make_entry(next, 0xF000));
    ref.erase(next);
    ++next;
  });
  next = 1u << 20;
  p.idx = ops_per_sec([&] {
    idx.insert(make_entry(next, 0xF000));
    idx.erase(next);
    ++next;
  });
  return p;
}

Pair bench_victim_select(std::size_t n) {
  const auto policy = tables::LexCachePolicy::lru();
  ReferenceTcam ref({n + 16, tables::TcamMode::kSingleWide});
  tables::Tcam idx({n + 16, tables::TcamMode::kSingleWide});
  fill(ref, n);
  idx.set_eviction_policy(&policy);
  fill(idx, n);
  Pair p;
  p.ref = ops_per_sec([&] { keep(ref.victim_id(policy)); });
  p.idx = ops_per_sec([&] { keep(idx.victim_id()); });
  return p;
}

Pair bench_soft_lookup(std::size_t n) {
  ReferenceSoftwareTable ref(0);
  tables::SoftwareTable idx(0);
  fill(ref, n);
  fill(idx, n);
  const auto pkt = core::ProbeEngine::probe_packet(0);
  Pair p;
  p.ref = ops_per_sec([&] { keep(ref.lookup(pkt)); });
  p.idx = ops_per_sec([&] { keep(idx.lookup(pkt)); });
  return p;
}

Pair bench_microflow_invalidate(std::size_t n) {
  // Cache pre-loaded with n microflows spread over many rules; each cycle
  // installs 16 microflows for one hot rule and invalidates it. The
  // reference implementation sweeps the whole cache per invalidation.
  constexpr std::size_t kKeysPerCycle = 16;
  const FlowId hot_rule = 1u << 20;
  auto load = [&](auto& cache) {
    for (std::size_t i = 0; i < n; ++i) {
      cache.insert(core::ProbeEngine::probe_packet(static_cast<std::uint32_t>(i)),
                   /*source_rule=*/i / 8, of::output_to(2),
                   SimTime(static_cast<std::int64_t>(i)));
    }
  };
  ReferenceMicroflowCache ref(2 * n + 64);
  tables::MicroflowCache idx(2 * n + 64);
  load(ref);
  load(idx);
  auto cycle = [&](auto& cache) {
    for (std::size_t k = 0; k < kKeysPerCycle; ++k) {
      cache.insert(core::ProbeEngine::probe_packet(
                       static_cast<std::uint32_t>(3 * n + k)),
                   hot_rule, of::output_to(2), SimTime(1));
    }
    cache.invalidate_rule(hot_rule);
  };
  Pair p;
  p.ref = ops_per_sec([&] { cycle(ref); });
  p.idx = ops_per_sec([&] { cycle(idx); });
  return p;
}

}  // namespace

int main() {
  bench::print_header(
      "bench_micro_tables: indexed table core vs linear-scan reference",
      "table/data-structure scaling; observable behaviour is bit-identical "
      "(tests/test_table_diff.cpp), only the complexity changes");
  bench::BenchReport report("micro_tables");

  const std::vector<std::size_t> sizes = {1000, 10000, 50000};
  for (const std::size_t n : sizes) {
    record(report, "tcam_lookup", n, bench_tcam_lookup(n));
    record(report, "tcam_churn", n, bench_tcam_churn(n));
    record(report, "victim_select", n, bench_victim_select(n));
    record(report, "soft_lookup", n, bench_soft_lookup(n));
  }
  // The microflow cache sweep cost depends on cache size, not table size;
  // one representative size keeps the runtime bounded.
  record(report, "microflow_invalidate", 50000, bench_microflow_invalidate(50000));

  bench::print_footer();
  return 0;
}
