// Extension bench (§6 "schedule dependent switch requests concurrently"):
// when a dependency chain crosses from a fast switch to a slow, backlogged
// one, the dependent can be issued before its predecessor completes if the
// predecessor's estimated finish (plus a guard interval) precedes the
// dependent's own earliest start. Measures makespan strict vs speculative
// across guard values, on chains fast-OVS -> slow-Vendor#3.
#include "bench/bench_util.h"
#include "scheduler/executor.h"
#include "scheduler/schedulers.h"
#include "switchsim/profiles.h"

namespace {

using namespace tango;

/// A few deep chains alternating fast -> slow -> fast -> slow: the strict
/// executor serializes every hop (paying channel RTT + fast-op latency
/// between slow ops); speculation issues each fast->slow pair together.
sched::RequestDag chain_workload(SwitchId fast, SwitchId slow,
                                 std::size_t chains, std::size_t depth) {
  sched::RequestDag dag;
  std::uint32_t next = 0;
  for (std::uint32_t c = 0; c < chains; ++c) {
    std::size_t prev = SIZE_MAX;
    for (std::uint32_t d = 0; d < depth; ++d) {
      sched::SwitchRequest req;
      req.location = (d % 2 == 0) ? fast : slow;
      req.type = sched::RequestType::kAdd;
      req.priority = static_cast<std::uint16_t>(2000 + next);
      req.match = core::ProbeEngine::probe_match(next++);
      req.actions = of::output_to(2);
      const auto id = dag.add(req);
      if (prev != SIZE_MAX) dag.add_dependency(prev, id);
      prev = id;
    }
  }
  return dag;
}

double run(bool speculative, SimDuration guard) {
  // A remote (WAN) controller: strict ordering pays two 2ms controller
  // round trips per hop — exactly the bubbles speculation removes.
  net::Network net(millis(2));
  const auto fast = net.add_switch(switchsim::profiles::ovs());
  const auto slow = net.add_switch(switchsim::profiles::switch3());
  auto dag = chain_workload(fast, slow, /*chains=*/1, /*depth=*/60);
  sched::DionysusScheduler sched;
  sched::ExecutorOptions options;
  options.speculative_dependents = speculative;
  options.guard = guard;
  // Cost hints as TangoController::learn would provide them.
  core::OpCostEstimate ovs_cost;
  ovs_cost.add_ascending_ms = 0.06;
  ovs_cost.mod_ms = 0.05;
  ovs_cost.del_ms = 0.04;
  core::OpCostEstimate hw_cost;
  hw_cost.add_ascending_ms = 2.6;
  hw_cost.mod_ms = 3.5;
  hw_cost.del_ms = 3.0;
  options.cost_hints = {{fast, ovs_cost}, {slow, hw_cost}};
  return sched::execute(net, dag, sched, options).makespan.sec();
}

}  // namespace

int main() {
  bench::print_header(
      "Extension: concurrent dependent requests (guard-time speculation)",
      "a consistent-update chain alternating OVS -> Vendor#3 hops, driven by "
      "a WAN controller (2ms each way): each fast->slow pair can be issued "
      "together because the slow op is estimated to finish last");

  const double strict = run(false, millis(5));
  std::printf("strict dependency order : %.3f s\n", strict);
  for (const double guard_ms : {0.5, 1.0, 2.0, 5.0}) {
    const double spec = run(true, millis(guard_ms));
    std::printf("speculative, guard %4.1fms: %.3f s  (%.1f%% faster)\n", guard_ms,
                spec, 100.0 * (1.0 - spec / strict));
  }
  std::printf("\nLarger guards are more conservative (less overlap, closer to\n"
              "strict); the mechanism suits weak-consistency scenarios (§6).\n");
  bench::print_footer();
  return 0;
}
