// Figure 6 reproduction: the attribute-initialization pattern the policy
// probe installs for a cache of size 100 — every flow gets independent
// ranks for insertion time, use time, priority, and traffic count, so no
// attribute's top half coincides with another's.
#include "bench/bench_util.h"
#include "stats/correlation.h"
#include "tango/policy_inference.h"

int main() {
  using namespace tango;
  bench::print_header(
      "Figure 6: policy-probe attribute pattern (cache size = 100, 200 flows)",
      "independent per-attribute rank permutations; pairwise correlation ~0");

  Rng rng(7);
  const auto init = core::make_attribute_init(200, rng);

  std::printf("  flow | insertion | use_time | priority | traffic\n");
  for (std::size_t f = 0; f < 200; f += 10) {
    std::printf("  %4zu | %9zu | %8zu | %8zu | %7zu\n", f,
                init.insertion_rank[f], init.use_rank[f], init.priority_rank[f],
                init.traffic_rank[f]);
  }

  auto as_double = [](const std::vector<std::size_t>& v) {
    std::vector<double> out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) out[i] = static_cast<double>(v[i]);
    return out;
  };
  const auto ins = as_double(init.insertion_rank);
  const auto use = as_double(init.use_rank);
  const auto pri = as_double(init.priority_rank);
  const auto tra = as_double(init.traffic_rank);

  std::printf("\npairwise rank correlations (want ~0 so one attribute's top half\n"
              "never doubles as another's):\n");
  std::printf("  insertion-use      : %+.3f\n", stats::pearson(ins, use));
  std::printf("  insertion-priority : %+.3f\n", stats::pearson(ins, pri));
  std::printf("  insertion-traffic  : %+.3f\n", stats::pearson(ins, tra));
  std::printf("  use-priority       : %+.3f\n", stats::pearson(use, pri));
  std::printf("  use-traffic        : %+.3f\n", stats::pearson(use, tra));
  std::printf("  priority-traffic   : %+.3f\n", stats::pearson(pri, tra));
  bench::print_footer();
  return 0;
}
