// Ablation: the same-type batching discount (DESIGN.md §5.5).
//
// Sweeps the agent's batch factor (fraction of the per-message overhead
// paid when the previous command had the same type) and measures the
// Tango-vs-Dionysus gain on a mixed TE scenario. With factor 1.0 (no
// batching effect) type grouping buys nothing on an order-insensitive
// switch; the smaller the factor, the bigger Fig 12-style wins get.
#include <map>

#include "bench/bench_util.h"
#include "scheduler/executor.h"
#include "scheduler/schedulers.h"
#include "switchsim/profiles.h"
#include "workload/scenarios.h"

namespace {

using namespace tango;

double run(const switchsim::SwitchProfile& profile, bool use_tango) {
  net::Network net;
  workload::TestbedIds tb;
  tb.s1 = net.add_switch(profile);
  tb.s2 = net.add_switch(profile);
  tb.s3 = net.add_switch(profile);
  Rng rng(12);
  auto dag = workload::traffic_engineering_scenario(tb, 1200, 1, 1, 1, rng);
  if (use_tango) {
    // OVS-style switches are priority-insensitive; the gain isolated here
    // is pure type grouping. Static weights suffice (equal per type), so
    // feed measured-shaped costs directly.
    core::OpCostEstimate c;
    c.add_ascending_ms = 0.05;
    c.add_descending_ms = 0.05;
    c.mod_ms = 0.045;
    c.del_ms = 0.035;
    sched::BasicTangoScheduler scheduler({{tb.s1, c}, {tb.s2, c}, {tb.s3, c}});
    return sched::execute(net, dag, scheduler).makespan.sec();
  }
  sched::DionysusScheduler scheduler;
  return sched::execute(net, dag, scheduler).makespan.sec();
}

}  // namespace

int main() {
  namespace profiles = tango::switchsim::profiles;
  bench::print_header(
      "Ablation: same-type batch discount vs type-grouping gain (OVS fleet)",
      "factor 1.0 -> grouping is worthless; smaller factors grow the gain");

  std::printf("%12s | %12s | %10s | gain\n", "batch factor", "Dionysus (s)",
              "Tango (s)");
  std::printf("-------------+--------------+------------+------\n");
  for (const double factor : {1.0, 0.6, 0.3, 0.15, 0.05}) {
    auto profile = profiles::ovs();
    profile.costs.batch_factor = factor;
    const double base = run(profile, false);
    const double tango_s = run(profile, true);
    std::printf("%12.2f | %12.4f | %10.4f | %4.1f%%\n", factor, base, tango_s,
                100.0 * (1.0 - tango_s / base));
  }
  bench::print_footer();
  return 0;
}
