// Ablation: size estimator variants (DESIGN.md §5.3).
//
// Compares the paper's literal per-trial Negative-Binomial MLE against our
// pooled-count refinement (every probe is an iid Bernoulli draw, so pooling
// stage-2 and stage-3 observations cuts variance at zero extra probing
// cost). Sweeps cache sizes and repetitions; reports mean |error|.
#include "bench/bench_util.h"
#include "switchsim/profiles.h"
#include "tango/size_inference.h"

int main() {
  using namespace tango;
  namespace profiles = switchsim::profiles;

  bench::print_header(
      "Ablation: Negative-Binomial-only vs pooled-count size estimator",
      "same probing budget; pooling should cut error roughly 2-3x");

  std::printf("%8s | %14s | %14s | trials\n", "size n", "NB-only err",
              "pooled err");
  std::printf("---------+----------------+----------------+-------\n");

  for (std::size_t n : {128, 256, 512, 1024}) {
    double nb_err = 0, pooled_err = 0;
    constexpr int kReps = 5;
    for (int rep = 0; rep < kReps; ++rep) {
      for (const bool pooled : {false, true}) {
        net::Network net;
        const auto id = net.add_switch(
            profiles::policy_cache("ablate", {n}, tables::LexCachePolicy::lru()),
            9000 + static_cast<std::uint64_t>(rep));
        core::ProbeEngine probe(net, id);
        core::SizeInferenceConfig config;
        config.max_rules = n * 3;
        config.pooled_estimator = pooled;
        config.seed = 100 + static_cast<std::uint64_t>(rep);
        const auto result = infer_sizes(probe, config);
        const double est = result.layer_sizes.empty() ? 0 : result.layer_sizes[0];
        const double err = std::abs(est - static_cast<double>(n)) /
                           static_cast<double>(n);
        (pooled ? pooled_err : nb_err) += err / kReps;
      }
    }
    std::printf("%8zu | %13.2f%% | %13.2f%% | %d\n", n, 100 * nb_err,
                100 * pooled_err, kReps);
  }

  std::printf("\nBoth estimators use identical probe traffic; the pooled one\n"
              "just refuses to throw away the stage-2 observations.\n");
  bench::print_footer();
  return 0;
}
