// Figure 8 reproduction: ClassBench installation on OVS under the four
// priority/order scenarios. OVS is order-insensitive, so the spread is
// small (the paper reports 8-10% improvements at ~0.05 s totals).
#include "bench/bench_fig89_common.h"

int main() {
  using namespace tango;
  bench::print_header(
      "Figure 8(a-c): OVS optimization results (3 ClassBench files x 4 "
      "scenarios x 10 trials)",
      "totals ~0.044-0.058 s; Topo+Opt best by ~8-10%");
  bench::BenchReport report("fig8_ovs_optimization");
  bench::run_fig89(switchsim::profiles::ovs(),
                   "paper: ~0.05 s totals, ~8-10% spread", report.json());
  bench::print_footer();
  return 0;
}
