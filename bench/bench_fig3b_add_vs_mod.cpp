// Figure 3(b) reproduction: installing n new entries vs modifying n
// existing entries, n = 20..5000, on HW Switch #1 and OVS.
//
// Adds at random priorities shift TCAM entries (superlinear total time);
// modifications rewrite in place (linear), so mod is several times faster
// at n = 5000 on hardware. On OVS both are flat per-rule.
#include "bench/bench_util.h"
#include "switchsim/profiles.h"

namespace {

using namespace tango;
using core::ProbeEngine;

constexpr std::size_t kPreinstalled = 1000;

double run_add(const switchsim::SwitchProfile& profile, std::size_t n,
               std::uint64_t seed) {
  net::Network net;
  const auto id = net.add_switch(profile);
  ProbeEngine probe(net, id);
  Rng rng(seed);
  auto pre = core::random_priorities(kPreinstalled, rng, 1000);
  probe.timed_batch(core::make_add_batch(0, kPreinstalled, pre));
  // New entries, priorities scattered over the same range as the table.
  std::vector<of::FlowMod> batch;
  for (std::size_t i = 0; i < n; ++i) {
    batch.push_back(ProbeEngine::probe_add(
        static_cast<std::uint32_t>(kPreinstalled + i),
        static_cast<std::uint16_t>(rng.uniform_int(1000, 1999))));
  }
  return probe.timed_batch(batch).sec();
}

double run_mod(const switchsim::SwitchProfile& profile, std::size_t n,
               std::uint64_t seed) {
  net::Network net;
  const auto id = net.add_switch(profile);
  ProbeEngine probe(net, id);
  Rng rng(seed);
  // Preinstall enough entries that every mod has a target.
  const std::size_t installed = std::max(kPreinstalled, n);
  auto pre = core::random_priorities(installed, rng, 1000);
  probe.timed_batch(core::make_add_batch(0, installed, pre));
  std::vector<of::FlowMod> batch;
  for (std::size_t i = 0; i < n; ++i) {
    auto fm = ProbeEngine::probe_add(static_cast<std::uint32_t>(i));
    fm.command = of::FlowModCommand::kModify;
    fm.actions = of::output_to(3);
    batch.push_back(std::move(fm));
  }
  return probe.timed_batch(batch).sec();
}

}  // namespace

int main() {
  namespace profiles = switchsim::profiles;
  bench::print_header(
      "Figure 3(b): add n new vs modify n existing (1000 rules preinstalled)",
      "HW: add superlinear (TCAM shifting), mod linear; mod ~6x faster at "
      "n=5000. OVS: both flat and tiny.");

  std::printf("%6s | %-25s | %-25s\n", "", "HW Switch #1 (s)", "OVS (s)");
  std::printf("%6s | %10s  %10s | %10s  %10s\n", "n", "add", "mod", "add", "mod");
  std::printf("-------+-------------------------+-------------------------\n");

  const std::size_t ns[] = {20, 100, 500, 1000, 2000, 3500, 5000};
  double hw_add_5000 = 0, hw_mod_5000 = 0;
  for (std::size_t n : ns) {
    // Single-wide mode (4K L3-only entries) so adds keep shifting TCAM
    // entries across the whole sweep instead of spilling at 2K.
    const auto hw = profiles::switch1(tables::TcamMode::kSingleWide);
    const double hw_add = run_add(hw, n, 31);
    const double hw_mod = run_mod(hw, n, 32);
    const double ovs_add = run_add(profiles::ovs(), n, 33);
    const double ovs_mod = run_mod(profiles::ovs(), n, 34);
    if (n == 5000) {
      hw_add_5000 = hw_add;
      hw_mod_5000 = hw_mod;
    }
    std::printf("%6zu | %10.2f  %10.2f | %10.3f  %10.3f\n", n, hw_add, hw_mod,
                ovs_add, ovs_mod);
  }
  std::printf("\nHW add/mod ratio at n=5000: %.1fx (paper: ~6x)\n",
              hw_add_5000 / hw_mod_5000);
  bench::print_footer();
  return 0;
}
