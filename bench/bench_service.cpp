// bench_service: serial vs conflict-aware concurrent intent dispatch, in
// virtual time.
//
// Three scenarios, all deterministic (virtual-time makespans, so the
// ratios are machine-independent and exact):
//
//  * disjoint  — 8 tenants, each updating its own switch. The concurrency
//                case the service exists for: every commit interleaves, so
//                makespan approaches the slowest tenant's serial chain.
//                speedup_disjoint_8t gates in CI (>= 2x is the acceptance
//                floor; see ISSUE/ROADMAP).
//  * shared    — 8 tenants on ONE shared switch with rule-disjoint
//                footprints. Commits interleave at the controller but the
//                switch agent serializes rule ops, so the win narrows to
//                the pipelining of per-transaction overheads.
//  * conflict  — 2 tenants writing overlapping matches on the shared
//                switch: the ConflictGraph must serialize them, so the
//                concurrent run degenerates to serial (speedup ~1) and
//                every blocked pass shows up in conflict_blocks.
//
// The disjoint run's fairness index and the >= 2x speedup are hard
// acceptance criteria: the bench exits non-zero if either fails, and the
// speedup_* results gate against bench/baselines/BENCH_service.json via
// tools/bench_compare.py.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "scheduler/schedulers.h"
#include "service/service.h"
#include "switchsim/profiles.h"
#include "tango/tango.h"

namespace {

using namespace tango;

switchsim::SwitchProfile quiet(switchsim::SwitchProfile profile) {
  profile.costs.jitter_frac = 0;
  profile.paths.jitter_frac = 0;
  return profile;
}

enum class Scenario { kDisjoint, kShared, kConflict };

struct RunOut {
  SimDuration makespan{};
  double fairness = 0;
  double avg_concurrency = 0;
  std::size_t max_concurrency = 0;
  std::size_t completed = 0;
  std::size_t conflict_blocks = 0;
};

constexpr std::size_t kIntentsPerTenant = 4;
constexpr std::size_t kRulesPerIntent = 6;

of::Match rule_match(Scenario s, std::uint32_t tenant, std::uint32_t j,
                     std::uint32_t i) {
  of::Match m;
  m.with_dl_type(0x0800);
  if (s == Scenario::kConflict) {
    // Every rule carries the same /16: all footprints overlap, the graph
    // must serialize. Keys stay distinct through priorities.
    m.set_nw_dst_prefix(10u << 24 | 200u << 16, 16);
  } else {
    m.set_nw_dst_prefix(
        10u << 24 | (tenant + 1) << 16 | j << 8 | i, 32);
  }
  return m;
}

RunOut run_scenario(Scenario s, std::size_t n_tenants,
                    std::size_t max_concurrent) {
  net::Network net;
  std::vector<SwitchId> sw(n_tenants);
  if (s == Scenario::kDisjoint) {
    for (auto& id : sw) id = net.add_switch(quiet(switchsim::profiles::switch1()));
  } else {
    const SwitchId shared = net.add_switch(quiet(switchsim::profiles::switch1()));
    for (auto& id : sw) id = shared;
  }

  core::TangoController ctl(net);
  service::ServiceOptions sopts;
  sopts.max_concurrent = max_concurrent;
  sopts.per_tenant_queue_cap = kIntentsPerTenant;
  sopts.txn_id_base = 0x1000;
  service::IntentService svc(net, ctl, sopts);

  for (std::uint32_t j = 0; j < kIntentsPerTenant; ++j) {
    for (std::uint32_t t = 0; t < n_tenants; ++t) {
      service::Intent intent;
      intent.tenant = t;
      std::size_t prev = 0;
      for (std::uint32_t i = 0; i < kRulesPerIntent; ++i) {
        sched::SwitchRequest req;
        req.location = sw[t];
        req.type = sched::RequestType::kAdd;
        req.priority = static_cast<std::uint16_t>(
            100 + (s == Scenario::kConflict ? (t * 64 + j * 8 + i) : i));
        req.match = rule_match(s, t, j, i);
        req.actions = of::output_to(2);
        const std::size_t id = intent.dag.add(std::move(req));
        if (i > 0) intent.dag.add_dependency(prev, id);
        prev = id;
      }
      svc.submit(std::move(intent));
    }
  }

  sched::DionysusScheduler scheduler;
  svc.run(scheduler);
  const service::ServiceReport& rep = svc.report();

  RunOut out;
  out.makespan = rep.makespan;
  out.fairness = rep.fairness_index;
  out.avg_concurrency = rep.avg_concurrency;
  out.max_concurrency = rep.max_concurrency;
  out.completed = rep.completed;
  out.conflict_blocks = rep.conflict_blocks;
  return out;
}

void print_run(const char* label, const RunOut& r) {
  std::printf(
      "  %-24s makespan %10.3f ms   completed %3zu   concurrency avg %.2f "
      "peak %zu   fairness %.3f   conflict blocks %zu\n",
      label, r.makespan.ms(), r.completed, r.avg_concurrency,
      r.max_concurrency, r.fairness, r.conflict_blocks);
}

}  // namespace

int main() {
  bench::print_header(
      "bench_service: multi-tenant intent dispatch, serial vs concurrent",
      "conflict-aware concurrent update dispatch — disjoint footprints "
      "interleave in virtual time, true conflicts serialize");
  bench::BenchReport report("service");
  constexpr std::size_t kTenants = 8;
  bool ok = true;

  std::printf("-- disjoint switch sets (%zu tenants) --\n", kTenants);
  const RunOut dis_serial = run_scenario(Scenario::kDisjoint, kTenants, 1);
  const RunOut dis_conc = run_scenario(Scenario::kDisjoint, kTenants, kTenants);
  print_run("serial (cap 1)", dis_serial);
  print_run("concurrent (cap 8)", dis_conc);
  const double dis_speedup =
      dis_conc.makespan.ms() > 0 ? dis_serial.makespan.ms() / dis_conc.makespan.ms()
                                 : 0;
  std::printf("  virtual-time speedup %.2fx\n\n", dis_speedup);
  report.json().set_result("serial_makespan_ms_disjoint_8t",
                           dis_serial.makespan.ms());
  report.json().set_result("concurrent_makespan_ms_disjoint_8t",
                           dis_conc.makespan.ms());
  report.json().set_result("speedup_disjoint_8t", dis_speedup);
  report.json().set_result("fairness_index_disjoint_8t", dis_conc.fairness);
  report.json().set_result("avg_concurrency_disjoint_8t",
                           dis_conc.avg_concurrency);

  std::printf("-- shared switch, rule-disjoint footprints (%zu tenants) --\n",
              kTenants);
  const RunOut sh_serial = run_scenario(Scenario::kShared, kTenants, 1);
  const RunOut sh_conc = run_scenario(Scenario::kShared, kTenants, kTenants);
  print_run("serial (cap 1)", sh_serial);
  print_run("concurrent (cap 8)", sh_conc);
  const double sh_speedup =
      sh_conc.makespan.ms() > 0 ? sh_serial.makespan.ms() / sh_conc.makespan.ms()
                                : 0;
  std::printf("  virtual-time speedup %.2fx\n\n", sh_speedup);
  report.json().set_result("speedup_shared_8t", sh_speedup);
  report.json().set_result("avg_concurrency_shared_8t",
                           sh_conc.avg_concurrency);

  std::printf("-- conflicting footprints (2 tenants, same /16) --\n");
  const RunOut cf_serial = run_scenario(Scenario::kConflict, 2, 1);
  const RunOut cf_conc = run_scenario(Scenario::kConflict, 2, 8);
  print_run("serial (cap 1)", cf_serial);
  print_run("concurrent (cap 8)", cf_conc);
  const double cf_speedup =
      cf_conc.makespan.ms() > 0 ? cf_serial.makespan.ms() / cf_conc.makespan.ms()
                                : 0;
  std::printf("  virtual-time speedup %.2fx (conflicts must serialize)\n\n",
              cf_speedup);
  report.json().set_result("conflict_speedup_2t", cf_speedup);
  report.json().set_result("conflict_blocks_2t",
                           static_cast<double>(cf_conc.conflict_blocks));
  report.json().set_result("conflict_max_concurrency_2t",
                           static_cast<double>(cf_conc.max_concurrency));

  // Acceptance criteria (hard): disjoint speedup and fairness.
  if (dis_speedup < 2.0) {
    std::fprintf(stderr,
                 "bench_service: FAIL disjoint speedup %.2fx < 2.0x floor\n",
                 dis_speedup);
    ok = false;
  }
  if (dis_conc.fairness < 0.9) {
    std::fprintf(stderr, "bench_service: FAIL fairness %.3f < 0.9 floor\n",
                 dis_conc.fairness);
    ok = false;
  }
  if (cf_conc.max_concurrency > 1) {
    std::fprintf(stderr,
                 "bench_service: FAIL conflicting intents ran %zu-way "
                 "concurrent\n",
                 cf_conc.max_concurrency);
    ok = false;
  }

  bench::print_footer();
  return ok ? 0 : 1;
}
