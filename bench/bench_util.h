// Shared helpers for the figure/table reproduction benches: consistent
// headers, paper-vs-measured rows, and ACL installation runs.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "net/network.h"
#include "tango/latency_profiler.h"
#include "tango/probe_engine.h"
#include "workload/classbench.h"

namespace tango::bench {

inline void print_header(const std::string& experiment, const std::string& paper_summary) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("  paper: %s\n", paper_summary.c_str());
  std::printf("==============================================================================\n");
}

inline void print_footer() { std::printf("\n"); }

/// Mean and sample stddev of a series.
struct Stats {
  double mean = 0;
  double stddev = 0;
};

inline Stats stats_of(const std::vector<double>& xs) {
  Stats s;
  if (xs.empty()) return s;
  for (double x : xs) s.mean += x;
  s.mean /= static_cast<double>(xs.size());
  if (xs.size() > 1) {
    double acc = 0;
    for (double x : xs) acc += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(acc / static_cast<double>(xs.size() - 1));
  }
  return s;
}

/// Install an ACL with the given per-rule priorities in the given order
/// (indices into `rules`); returns the barrier-to-barrier install time.
inline SimDuration install_acl(core::ProbeEngine& probe,
                               const std::vector<workload::AclRule>& rules,
                               const std::vector<std::uint16_t>& priorities,
                               const std::vector<std::size_t>& order,
                               std::size_t* rejected = nullptr) {
  std::vector<of::FlowMod> commands;
  commands.reserve(order.size());
  for (std::size_t idx : order) {
    of::FlowMod fm;
    fm.command = of::FlowModCommand::kAdd;
    fm.match = rules[idx].match;
    fm.priority = priorities[idx];
    fm.actions = of::output_to(2);
    commands.push_back(std::move(fm));
  }
  return probe.timed_batch(commands, rejected);
}

/// Identity order 0..n-1.
inline std::vector<std::size_t> identity_order(std::size_t n) {
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  return order;
}

/// Order sorted by ascending priority (the probing-engine-optimal order on
/// priority-sensitive hardware).
inline std::vector<std::size_t> ascending_order(
    const std::vector<std::uint16_t>& priorities) {
  auto order = identity_order(priorities.size());
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return priorities[a] < priorities[b];
  });
  return order;
}

}  // namespace tango::bench
