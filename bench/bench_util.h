// Shared helpers for the figure/table reproduction benches: consistent
// headers, paper-vs-measured rows, ACL installation runs, and the
// machine-readable BENCH_<name>.json run reports every bench emits
// alongside its text output (schema: tango.run_report.v1 — see
// docs/OBSERVABILITY.md).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/network.h"
#include "tango/latency_profiler.h"
#include "tango/probe_engine.h"
#include "telemetry/run_report.h"
#include "workload/classbench.h"

namespace tango::bench {

inline void print_header(const std::string& experiment, const std::string& paper_summary) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("  paper: %s\n", paper_summary.c_str());
  std::printf("==============================================================================\n");
}

inline void print_footer() { std::printf("\n"); }

/// Telemetry gate for benches: on by default, disabled with
/// TANGO_TELEMETRY=0/off/false — the knob the zero-overhead acceptance
/// check flips to prove disabled runs are bit-identical.
inline bool telemetry_enabled() {
  const char* v = std::getenv("TANGO_TELEMETRY");
  if (v == nullptr) return true;
  return std::strcmp(v, "0") != 0 && std::strcmp(v, "off") != 0 &&
         std::strcmp(v, "false") != 0;
}

/// RAII run-report writer: collects results/rows (and optionally a metrics
/// snapshot + key spans) during the bench, writes BENCH_<name>.json when it
/// goes out of scope. Writing is unconditional — the report documents the
/// run whether or not tracing was on.
class BenchReport {
 public:
  explicit BenchReport(const std::string& name)
      : report_(name), path_("BENCH_" + name + ".json") {}

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  ~BenchReport() {
    if (report_.write(path_)) {
      std::printf("  report: %s\n", path_.c_str());
    } else {
      std::fprintf(stderr, "bench: failed to write %s\n", path_.c_str());
    }
  }

  [[nodiscard]] telemetry::RunReport& json() { return report_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  telemetry::RunReport report_;
  std::string path_;
};

/// Mean and sample stddev of a series.
struct Stats {
  double mean = 0;
  double stddev = 0;
};

inline Stats stats_of(const std::vector<double>& xs) {
  Stats s;
  if (xs.empty()) return s;
  for (double x : xs) s.mean += x;
  s.mean /= static_cast<double>(xs.size());
  if (xs.size() > 1) {
    double acc = 0;
    for (double x : xs) acc += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(acc / static_cast<double>(xs.size() - 1));
  }
  return s;
}

/// Install an ACL with the given per-rule priorities in the given order
/// (indices into `rules`); returns the barrier-to-barrier install time.
inline SimDuration install_acl(core::ProbeEngine& probe,
                               const std::vector<workload::AclRule>& rules,
                               const std::vector<std::uint16_t>& priorities,
                               const std::vector<std::size_t>& order,
                               std::size_t* rejected = nullptr) {
  std::vector<of::FlowMod> commands;
  commands.reserve(order.size());
  for (std::size_t idx : order) {
    of::FlowMod fm;
    fm.command = of::FlowModCommand::kAdd;
    fm.match = rules[idx].match;
    fm.priority = priorities[idx];
    fm.actions = of::output_to(2);
    commands.push_back(std::move(fm));
  }
  return probe.timed_batch(commands, rejected);
}

/// Identity order 0..n-1.
inline std::vector<std::size_t> identity_order(std::size_t n) {
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  return order;
}

/// Order sorted by ascending priority (the probing-engine-optimal order on
/// priority-sensitive hardware).
inline std::vector<std::size_t> ascending_order(
    const std::vector<std::uint16_t>& priorities) {
  auto order = identity_order(priorities.size());
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return priorities[a] < priorities[b];
  });
  return order;
}

}  // namespace tango::bench
