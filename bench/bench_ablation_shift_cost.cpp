// Ablation: the TCAM shift-cost model (DESIGN.md §5.1).
//
// Re-runs the Fig 3(c) priority-order experiment with the per-shift cost
// zeroed. Without it, every headline asymmetry the Tango scheduler exploits
// (desc/const 45x, random/asc 14x) collapses to ~1x — the shift model IS
// the mechanism.
#include "bench/bench_util.h"
#include "switchsim/profiles.h"

namespace {

using namespace tango;

double run(const switchsim::SwitchProfile& profile,
           const std::vector<std::uint16_t>& priorities) {
  net::Network net;
  const auto id = net.add_switch(profile);
  core::ProbeEngine probe(net, id);
  return probe.timed_batch(core::make_add_batch(0, priorities.size(), priorities))
      .sec();
}

void sweep(const char* label, const switchsim::SwitchProfile& profile) {
  constexpr std::size_t n = 2000;
  Rng rng(n);
  const double desc = run(profile, core::descending_priorities(n, 2000));
  const double asc = run(profile, core::ascending_priorities(n, 2000));
  const double same = run(profile, core::constant_priorities(n));
  const double rand = run(profile, core::random_priorities(n, rng, 2000));
  std::printf("%-22s | %8.2f %8.2f %8.2f %8.2f | %6.1fx %6.1fx\n", label, desc,
              asc, same, rand, desc / same, rand / asc);
}

}  // namespace

int main() {
  namespace profiles = tango::switchsim::profiles;
  bench::print_header(
      "Ablation: TCAM shift cost on/off (Fig 3(c) at n=2000, HW #1)",
      "with shifts: desc/const ~45x; without: all orders within jitter");

  std::printf("%-22s | %8s %8s %8s %8s | %s\n", "model", "desc(s)", "asc(s)",
              "same(s)", "rand(s)", "desc/const rand/asc");
  std::printf("-----------------------+-------------------------------------+----------------\n");

  auto with_shifts = profiles::switch1(tango::tables::TcamMode::kSingleWide);
  sweep("per_shift = 20us", with_shifts);

  auto without = with_shifts;
  without.costs.per_shift = tango::nanos(0);
  sweep("per_shift = 0", without);

  std::printf("\nEverything the scheduler exploits about priority order comes\n"
              "from this one mechanism; disabling it makes all orders equal\n"
              "(modulo the same-priority fast path in the agent).\n");
  bench::print_footer();
  return 0;
}
