// Figure 3(a) reproduction: total installation time for the six
// permutations of 200 adds, 200 modifications, and 200 deletions on HW
// Switch #1 (1000 random-priority rules preinstalled).
//
// Order matters because deletions shrink the TCAM before subsequent adds
// shift fewer entries (and type-grouped runs batch in the agent), so
// del-first permutations win — the effect Algorithm 3's patterns score.
#include "bench/bench_util.h"
#include "switchsim/profiles.h"

namespace {

using namespace tango;
using core::ProbeEngine;

constexpr std::size_t kPreinstalled = 1000;
constexpr std::size_t kOps = 200;

std::vector<of::FlowMod> adds(Rng& rng) {
  std::vector<of::FlowMod> out;
  for (std::size_t i = 0; i < kOps; ++i) {
    out.push_back(ProbeEngine::probe_add(
        static_cast<std::uint32_t>(kPreinstalled + i),
        static_cast<std::uint16_t>(rng.uniform_int(1000, 1999))));
  }
  return out;
}

std::vector<of::FlowMod> dels(Rng& rng) {
  std::vector<of::FlowMod> out;
  for (std::size_t i = 0; i < kOps; ++i) {
    auto fm = ProbeEngine::probe_add(
        static_cast<std::uint32_t>(rng.uniform_int(0, kPreinstalled / 2 - 1)));
    fm.command = of::FlowModCommand::kDelete;
    out.push_back(std::move(fm));
  }
  return out;
}

std::vector<of::FlowMod> mods(Rng& rng) {
  std::vector<of::FlowMod> out;
  for (std::size_t i = 0; i < kOps; ++i) {
    auto fm = ProbeEngine::probe_add(static_cast<std::uint32_t>(
        rng.uniform_int(kPreinstalled / 2, kPreinstalled - 1)));
    fm.command = of::FlowModCommand::kModify;
    fm.actions = of::output_to(3);
    out.push_back(std::move(fm));
  }
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 3(a): 200 adds + 200 mods + 200 dels in all six orders, HW #1",
      "permutation order changes total install time (roughly 10-15 s range); "
      "del-before-add orders are cheapest");

  const char* kNames[6] = {"add_del_mod", "add_mod_del", "mod_del_add",
                           "mod_add_del", "del_mod_add", "del_add_mod"};
  const int kPerms[6][3] = {{0, 1, 2}, {0, 2, 1}, {2, 1, 0},
                            {2, 0, 1}, {1, 2, 0}, {1, 0, 2}};
  constexpr int kTrials = 10;

  std::printf("%-12s | mean (s) | stddev | trials\n", "permutation");
  std::printf("-------------+----------+--------+-------\n");

  for (int p = 0; p < 6; ++p) {
    std::vector<double> times;
    for (int trial = 0; trial < kTrials; ++trial) {
      net::Network net;
      const auto id = net.add_switch(switchsim::profiles::switch1());
      core::ProbeEngine probe(net, id);
      Rng rng(1000 + trial);
      // Preinstall 1000 rules at random priorities.
      auto pre = core::random_priorities(kPreinstalled, rng, 1000);
      probe.timed_batch(core::make_add_batch(0, kPreinstalled, pre));

      // Build the three op groups (same rng stream per trial across perms
      // would be ideal; same seed per trial gives comparable groups).
      Rng op_rng(500 + trial);
      std::vector<std::vector<of::FlowMod>> groups;
      groups.push_back(adds(op_rng));
      groups.push_back(dels(op_rng));
      groups.push_back(mods(op_rng));

      std::vector<of::FlowMod> sequence;
      for (int g = 0; g < 3; ++g) {
        const auto& group = groups[static_cast<std::size_t>(kPerms[p][g])];
        sequence.insert(sequence.end(), group.begin(), group.end());
      }
      times.push_back(probe.timed_batch(sequence).sec());
    }
    const auto s = bench::stats_of(times);
    std::printf("%-12s | %8.3f | %6.3f | %d\n", kNames[p], s.mean, s.stddev,
                kTrials);
  }

  std::printf("\nShape check: del-first permutations should be fastest, add-first\n"
              "slowest (deletes shrink the table before the adds shift it).\n");
  bench::print_footer();
  return 0;
}
