// Figure 2 reproduction: fast/slow/control path delays per flow id.
//
//  (a) OVS: 80 rules installed, 160 flows of 2 packets each — the first
//      packet of a matching flow takes the user-space slow path, the second
//      hits the kernel microflow cache, unmatched flows go to the
//      controller (three tiers: ~3 / ~4.5 / ~4.65 ms).
//  (b) HW Switch #1: 3500 rules, 5000 flows — the first 2047 land in TCAM
//      (fast, ~0.665 ms), the rest in user-space tables (slow, ~3.7 ms),
//      unmatched flows punt to the controller (~7.5 ms).
//  (c) HW Switch #2: two tiers only (~0.4 / ~8 ms).
#include "bench/bench_util.h"
#include "stats/descriptive.h"
#include "switchsim/profiles.h"

namespace {

using namespace tango;
using core::ProbeEngine;

struct TierSeries {
  std::vector<double> first_pkt;   // ms, indexed by flow id
  std::vector<double> second_pkt;  // ms
};

TierSeries run(const switchsim::SwitchProfile& profile, std::size_t rules,
               std::size_t flows) {
  net::Network net;
  const auto id = net.add_switch(profile);
  ProbeEngine probe(net, id);
  for (std::uint32_t i = 0; i < rules; ++i) probe.install(i);
  net.barrier_sync(id);

  TierSeries out;
  for (std::uint32_t f = 0; f < flows; ++f) {
    out.first_pkt.push_back(probe.probe_flow(f).ms());
    out.second_pkt.push_back(probe.probe_flow(f).ms());
  }
  return out;
}

void print_series(const char* title, const TierSeries& s, std::size_t stride) {
  std::printf("%s\n", title);
  std::printf("  flow_id | 1st pkt (ms) | 2nd pkt (ms)\n");
  for (std::size_t f = 0; f < s.first_pkt.size(); f += stride) {
    std::printf("  %7zu | %12.3f | %12.3f\n", f, s.first_pkt[f], s.second_pkt[f]);
  }
}

void print_tier(bench::BenchReport& report, const char* panel, const char* label,
                const std::vector<double>& xs, std::size_t lo, std::size_t hi) {
  if (lo >= hi || hi > xs.size()) return;
  std::vector<double> slice(xs.begin() + static_cast<long>(lo),
                            xs.begin() + static_cast<long>(hi));
  const auto s = stats::summarize(slice);
  std::printf("  %-28s flows [%5zu,%5zu): mean %6.3f ms  (p50 %6.3f)\n", label,
              lo, hi, s.mean, s.p50);
  report.json()
      .add_row()
      .col("panel", panel)
      .col("tier", label)
      .col("flows_lo", static_cast<double>(lo))
      .col("flows_hi", static_cast<double>(hi))
      .col("mean_ms", s.mean)
      .col("p50_ms", s.p50);
}

}  // namespace

int main() {
  namespace profiles = switchsim::profiles;
  bench::BenchReport report("fig2_path_delays");

  bench::print_header("Figure 2(a): three-tier delay in OVS",
                      "fast ~3 ms, slow ~4.5 ms, control ~4.65 ms");
  {
    const auto s = run(profiles::ovs(), 80, 160);
    print_series("sampled series (every 20th flow):", s, 20);
    std::printf("tier means:\n");
    // Matching flows: first packet = slow path, second = fast path.
    std::vector<double> fast(s.second_pkt.begin(), s.second_pkt.begin() + 80);
    std::vector<double> slow(s.first_pkt.begin(), s.first_pkt.begin() + 80);
    std::vector<double> ctrl(s.first_pkt.begin() + 80, s.first_pkt.end());
    std::printf("  fast path    : %6.3f ms   (paper ~3.0)\n",
                stats::mean(fast));
    std::printf("  slow path    : %6.3f ms   (paper ~4.5)\n",
                stats::mean(slow));
    std::printf("  control path : %6.3f ms   (paper ~4.65)\n",
                stats::mean(ctrl));
    report.json().set_result("ovs.fast_ms", stats::mean(fast));
    report.json().set_result("ovs.slow_ms", stats::mean(slow));
    report.json().set_result("ovs.control_ms", stats::mean(ctrl));
  }
  bench::print_footer();

  bench::print_header("Figure 2(b): three-tier delay in HW Switch #1",
                      "fast ~0.665 ms (first 2047 flows), slow ~3.7 ms, "
                      "control ~7.5 ms");
  {
    const auto s = run(profiles::switch1(), 3500, 5000);
    print_series("sampled series (every 500th flow):", s, 500);
    std::printf("tier means (placement is traffic-independent — 1st == 2nd pkt tier):\n");
    print_tier(report, "hw1", "fast path (TCAM)", s.first_pkt, 0, 2047);
    print_tier(report, "hw1", "slow path (user space)", s.first_pkt, 2047, 3500);
    print_tier(report, "hw1", "control path", s.first_pkt, 3500, 5000);
  }
  bench::print_footer();

  bench::print_header("Figure 2(c): two-tier delay in HW Switch #2",
                      "fast ~0.4 ms (2560 entries), control ~8 ms");
  {
    const auto s = run(profiles::switch2(), 2559, 4000);
    print_series("sampled series (every 500th flow):", s, 500);
    std::printf("tier means:\n");
    print_tier(report, "hw2", "fast path (TCAM)", s.first_pkt, 0, 2559);
    print_tier(report, "hw2", "control path", s.first_pkt, 2559, 4000);
  }
  bench::print_footer();
  return 0;
}
