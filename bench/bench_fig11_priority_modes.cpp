// Figure 11 reproduction: priority sorting vs priority enforcement on the
// hardware testbed, across four request-set shapes — add-only or mixed op
// types, DAG depth 1 or 2, 2.4K or 3.2K rules.
//
// Priority *sorting* reorders application-specified priorities (ascending
// installation); priority *enforcement* lets Tango assign the priorities
// itself from DAG levels (same-priority appends), which is cheaper still:
// the paper reports up to 85% and 95% improvement over Dionysus for the
// add-only case.
#include <map>

#include "bench/bench_util.h"
#include "scheduler/executor.h"
#include "scheduler/schedulers.h"
#include "switchsim/profiles.h"
#include "tango/tango.h"
#include "workload/scenarios.h"

namespace {

using namespace tango;

workload::TestbedIds build(net::Network& net) {
  namespace profiles = switchsim::profiles;
  workload::TestbedIds tb;
  tb.s1 = net.add_switch(profiles::switch1());
  tb.s2 = net.add_switch(profiles::switch1());
  tb.s3 = net.add_switch(profiles::switch3());
  return tb;
}

std::map<SwitchId, core::OpCostEstimate> learn_costs() {
  net::Network net;
  const auto tb = build(net);
  core::TangoController tango(net);
  std::map<SwitchId, core::OpCostEstimate> costs;
  for (const auto id : {tb.s1, tb.s2, tb.s3}) {
    core::LearnOptions options;
    options.size.max_rules = 1024;
    options.infer_policy = false;
    costs[id] = tango.learn(id, options).costs;
  }
  return costs;
}

enum class Mode { kDionysus, kSorting, kEnforcement };

double run(const workload::MixedScenarioSpec& spec, Mode mode,
           const std::map<SwitchId, core::OpCostEstimate>& costs) {
  net::Network net;
  const auto tb = build(net);
  Rng rng(11);
  auto effective = spec;
  // Sorting needs app-specified priorities; enforcement needs them absent.
  effective.with_priorities = mode != Mode::kEnforcement;
  auto dag = workload::mixed_dag_scenario(tb, effective, rng);
  if (mode == Mode::kEnforcement) {
    sched::BasicTangoScheduler::enforce_priorities(dag);
  }
  if (mode == Mode::kDionysus) {
    sched::DionysusScheduler sched;
    return sched::execute(net, dag, sched).makespan.sec();
  }
  sched::BasicTangoScheduler sched(costs);
  return sched::execute(net, dag, sched).makespan.sec();
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 11: priority sorting vs priority enforcement",
      "max improvement vs Dionysus: 85% (sorting) / 95% (enforcement) for "
      "add-only DAG=1; shallower gains with deeper DAGs");

  const auto costs = learn_costs();
  bench::BenchReport report("fig11_priority_modes");

  struct Case {
    const char* label;
    workload::MixedScenarioSpec spec;
  };
  const Case cases[] = {
      {"add, DAG=1, 2.4K", {2400, 1, true, true}},
      {"mixed, DAG=1, 2.4K", {2400, 1, false, true}},
      {"mixed, DAG=2, 2.4K", {2400, 2, false, true}},
      {"mixed, DAG=2, 3.2K", {3200, 2, false, true}},
  };

  std::printf("%-20s | %-10s | %-12s | %-13s | improvements\n", "scenario",
              "Dionysus", "Tango(Sort)", "Tango(Enforce)");
  std::printf("---------------------+------------+--------------+---------------+----------------\n");
  for (const auto& c : cases) {
    const double base = run(c.spec, Mode::kDionysus, costs);
    const double sort = run(c.spec, Mode::kSorting, costs);
    const double enforce = run(c.spec, Mode::kEnforcement, costs);
    std::printf("%-20s | %8.2f s | %10.2f s | %11.2f s | sort %.0f%%, enforce %.0f%%\n",
                c.label, base, sort, enforce, 100.0 * (1.0 - sort / base),
                100.0 * (1.0 - enforce / base));
    report.json()
        .add_row()
        .col("scenario", c.label)
        .col("dionysus_s", base)
        .col("tango_sorting_s", sort)
        .col("tango_enforcement_s", enforce)
        .col("sorting_improvement_pct", 100.0 * (1.0 - sort / base))
        .col("enforcement_improvement_pct", 100.0 * (1.0 - enforce / base));
  }
  bench::print_footer();
  return 0;
}
