// Figure 10 reproduction: network-wide update scenarios on the hardware
// testbed triangle (s1, s2: Vendor #1; s3: Vendor #3) — Link Failure, and
// two Traffic Engineering mixes — under Dionysus, Tango with rule-type
// patterns only, and Tango with type + priority patterns.
#include <map>

#include "bench/bench_util.h"
#include "scheduler/executor.h"
#include "scheduler/schedulers.h"
#include "switchsim/profiles.h"
#include "tango/tango.h"
#include "workload/scenarios.h"

namespace {

using namespace tango;

struct Testbed {
  net::Network net;
  workload::TestbedIds ids;
};

void build(Testbed& tb) {
  namespace profiles = switchsim::profiles;
  tb.ids.s1 = tb.net.add_switch(profiles::switch1());
  tb.ids.s2 = tb.net.add_switch(profiles::switch1());
  tb.ids.s3 = tb.net.add_switch(profiles::switch3());
}

void preinstall(Testbed& tb, std::size_t flows) {
  for (const auto id : {tb.ids.s1, tb.ids.s2, tb.ids.s3}) {
    core::ProbeEngine probe(tb.net, id);
    for (std::uint32_t i = 0; i < flows; ++i) {
      probe.install(i, static_cast<std::uint16_t>(100 + (i * 7) % 900));
    }
    tb.net.barrier_sync(id);
  }
}

/// Costs learned once on a scratch copy of the testbed (probing the real
/// one would perturb the preinstalled state).
std::map<SwitchId, core::OpCostEstimate> learn_costs() {
  Testbed tb;
  build(tb);
  core::TangoController tango(tb.net);
  std::map<SwitchId, core::OpCostEstimate> costs;
  for (const auto id : {tb.ids.s1, tb.ids.s2, tb.ids.s3}) {
    core::LearnOptions options;
    options.size.max_rules = 1024;
    options.infer_policy = false;
    costs[id] = tango.learn(id, options).costs;
  }
  return costs;
}

enum class Mode { kDionysus, kTangoType, kTangoTypePriority };

double run_scenario(const char* which, Mode mode,
                    const std::map<SwitchId, core::OpCostEstimate>& costs,
                    telemetry::Telemetry* tele = nullptr) {
  Testbed tb;
  build(tb);
  if (tele != nullptr) tb.net.set_telemetry(tele);
  Rng rng(99);
  sched::RequestDag dag;
  if (std::string(which) == "LF") {
    preinstall(tb, 400);
    dag = workload::link_failure_scenario(tb.ids, 400, rng, /*first=*/0);
  } else if (std::string(which) == "TE1") {
    preinstall(tb, 400);
    dag = workload::traffic_engineering_scenario(tb.ids, 800, 2, 1, 1, rng,
                                                 100000, 400);
  } else {
    preinstall(tb, 400);
    dag = workload::traffic_engineering_scenario(tb.ids, 800, 1, 1, 1, rng,
                                                 100000, 400);
  }

  switch (mode) {
    case Mode::kDionysus: {
      sched::DionysusScheduler sched;
      return sched::execute(tb.net, dag, sched).makespan.sec();
    }
    case Mode::kTangoType: {
      sched::TangoSchedulerOptions options;
      options.reorder_types = true;
      options.sort_priorities = false;
      sched::BasicTangoScheduler sched(costs, options);
      return sched::execute(tb.net, dag, sched).makespan.sec();
    }
    case Mode::kTangoTypePriority: {
      sched::BasicTangoScheduler sched(costs);
      return sched::execute(tb.net, dag, sched).makespan.sec();
    }
  }
  return 0;
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 10: testbed network-wide optimization (LF / TE1 / TE2)",
      "Tango(Type) beats Dionysus by 0%/20%/26%; Tango(Type+Priority) by "
      "70%/33%/28%");

  const auto costs = learn_costs();
  bench::BenchReport report("fig10_network_wide");

  std::printf("%-5s | %-10s | %-12s | %-18s | improvements\n", "case",
              "Dionysus", "Tango(Type)", "Tango(Type+Prio)");
  std::printf("------+------------+--------------+--------------------+----------------\n");
  for (const char* which : {"LF", "TE1", "TE2"}) {
    const double base = run_scenario(which, Mode::kDionysus, costs);
    const double type_only = run_scenario(which, Mode::kTangoType, costs);
    const double full = run_scenario(which, Mode::kTangoTypePriority, costs);
    std::printf("%-5s | %8.2f s | %10.2f s | %16.2f s | type %.0f%%, +prio %.0f%%\n",
                which, base, type_only, full,
                100.0 * (1.0 - type_only / base), 100.0 * (1.0 - full / base));
    report.json()
        .add_row()
        .col("case", which)
        .col("dionysus_s", base)
        .col("tango_type_s", type_only)
        .col("tango_type_priority_s", full);
    report.json().set_result(std::string(which) + ".tango_type_priority_s",
                             full);
  }

  if (bench::telemetry_enabled()) {
    // One fully traced run (LF under Tango Type+Priority): its per-switch
    // lanes must reconstruct the makespan the table reports —
    // tools/validate_telemetry.py checks exactly that.
    telemetry::Telemetry tele;
    tele.trace.set_process_name("bench_fig10_network_wide");
    const double traced =
        run_scenario("LF", Mode::kTangoTypePriority, costs, &tele);
    const char* trace_path = "BENCH_fig10_network_wide.trace.json";
    if (tele.trace.write_chrome_json(trace_path)) {
      std::printf("  trace:  %s (open in chrome://tracing or ui.perfetto.dev)\n",
                  trace_path);
    }
    report.json().set_result("trace_case", "LF");
    report.json().set_result("trace_mode", "tango_type_priority");
    report.json().set_result("trace_makespan_ns", traced * 1e9);
    report.json().add_metrics(tele.metrics);
    report.json().add_spans(tele.trace, {"executor", "txn"});
  }
  bench::print_footer();
  return 0;
}
