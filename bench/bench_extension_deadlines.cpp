// Extension bench: install_by deadlines (the req_elem field of §6).
//
// A bulk TE update shares the switch with a handful of urgent failover
// rules carrying deadlines. Compares deadline misses and makespan under
// Dionysus, Tango (pattern order only), and Tango with deadline-first
// hoisting.
#include "bench/bench_util.h"
#include "scheduler/executor.h"
#include "scheduler/schedulers.h"
#include "switchsim/profiles.h"

namespace {

using namespace tango;

sched::RequestDag workload(SwitchId sw, std::size_t bulk, std::size_t urgent,
                           SimDuration deadline) {
  sched::RequestDag dag;
  Rng rng(17);
  for (std::uint32_t i = 0; i < bulk; ++i) {
    sched::SwitchRequest r;
    r.location = sw;
    r.type = sched::RequestType::kAdd;
    r.priority = static_cast<std::uint16_t>(rng.uniform_int(1000, 8000));
    r.match = core::ProbeEngine::probe_match(i);
    r.actions = of::output_to(2);
    dag.add(r);
  }
  for (std::uint32_t i = 0; i < urgent; ++i) {
    sched::SwitchRequest r;
    r.location = sw;
    r.type = sched::RequestType::kAdd;
    // High values: the ascending pattern alone would schedule these last.
    r.priority = static_cast<std::uint16_t>(9000 + i);
    r.match = core::ProbeEngine::probe_match(100000 + i);
    r.actions = of::output_to(3);
    r.deadline = deadline;
    dag.add(r);
  }
  return dag;
}

struct Outcome {
  double makespan_s;
  std::size_t misses;
};

Outcome run(int mode) {
  net::Network net;
  const auto sw = net.add_switch(switchsim::profiles::switch3());
  auto dag = workload(sw, 300, 12, millis(200));
  sched::ExecutorOptions exec_options;
  if (mode == 0) {
    sched::DionysusScheduler sched;
    const auto r = sched::execute(net, dag, sched, exec_options);
    return {r.makespan.sec(), r.deadline_misses};
  }
  sched::TangoSchedulerOptions options;
  options.deadline_first = mode == 2;
  sched::BasicTangoScheduler sched({}, options);
  const auto r = sched::execute(net, dag, sched, exec_options);
  return {r.makespan.sec(), r.deadline_misses};
}

}  // namespace

int main() {
  bench::print_header(
      "Extension: install_by deadlines (12 urgent rules amid a 300-rule bulk "
      "update, 200ms budget, Vendor #3)",
      "deadline-first hoisting meets the deadlines at a small makespan cost");

  const char* names[] = {"Dionysus", "Tango (pattern only)",
                         "Tango (pattern + deadline-first)"};
  for (int mode = 0; mode < 3; ++mode) {
    const auto r = run(mode);
    std::printf("%-34s : makespan %7.3f s, deadline misses %zu/12\n",
                names[mode], r.makespan_s, r.misses);
  }
  bench::print_footer();
  return 0;
}
