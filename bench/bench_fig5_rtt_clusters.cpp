// Figure 5 reproduction: round-trip times for flows installed in the
// multi-level HW Switch #2 configuration — three latency bands ("fast path
// 1", "fast path 2", "slow path") that the size-probing algorithm clusters.
#include "bench/bench_util.h"
#include "stats/cluster.h"
#include "switchsim/profiles.h"

int main() {
  using namespace tango;
  bench::print_header(
      "Figure 5: RTT bands on the multi-level switch (2500 flows)",
      "three clusters around ~0.2 / ~0.6 / ~1.4 ms (in the paper's axis, "
      "20 / 60 / 140 x 1e-2 ms), sizes ~750 / ~750 / rest");

  net::Network net;
  const auto id = net.add_switch(switchsim::profiles::switch2_multilevel());
  core::ProbeEngine probe(net, id);

  constexpr std::uint32_t kFlows = 2500;
  for (std::uint32_t i = 0; i < kFlows; ++i) {
    probe.install(i);
    probe.probe_flow(i);  // warm placement
  }
  net.barrier_sync(id);

  // Measure most-recently-used first (descending install order) so each
  // probe observes the flow's residence *before* the probe itself promotes
  // it — the same order-preservation trick Algorithm 2 uses.
  std::vector<double> rtts(kFlows, 0);
  for (std::uint32_t i = kFlows; i-- > 0;) {
    rtts[i] = probe.probe_flow(i).ms();
  }

  std::printf("sampled series (every 125th flow):\n");
  std::printf("  flow_id | RTT (1e-2 ms)\n");
  for (std::uint32_t i = 0; i < kFlows; i += 125) {
    std::printf("  %7u | %8.1f\n", i, rtts[i] * 100.0);
  }

  const auto clusters = stats::gap_clusters(rtts);
  std::printf("\nclusters found: %zu (paper: 3)\n", clusters.size());
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    std::printf("  band %zu: center %6.1f x1e-2 ms, %4zu flows\n", c,
                clusters[c].center * 100.0, clusters[c].count);
  }
  bench::print_footer();
  return 0;
}
