// Section 7 headline claim: flow-table size inference within 5% of the
// actual value, despite diverse caching algorithms, with probing overhead
// linear in the table size (asymptotic optimality).
#include "bench/bench_util.h"
#include "switchsim/profiles.h"
#include "tango/size_inference.h"

int main() {
  using namespace tango;
  namespace profiles = switchsim::profiles;

  bench::print_header(
      "Size-inference accuracy across cache policies and sizes",
      "error < 5% of actual table size; O(n) rule installs in O(log n) "
      "batches and O(n) probe packets");

  struct Case {
    const char* policy;
    tables::LexCachePolicy impl;
    std::size_t size;
  };
  const Case cases[] = {
      {"fifo", tables::LexCachePolicy::fifo(), 128},
      {"fifo", tables::LexCachePolicy::fifo(), 512},
      {"fifo", tables::LexCachePolicy::fifo(), 1024},
      {"lru", tables::LexCachePolicy::lru(), 128},
      {"lru", tables::LexCachePolicy::lru(), 512},
      {"lru", tables::LexCachePolicy::lru(), 1024},
      {"lfu", tables::LexCachePolicy::lfu(), 256},
      {"lfu", tables::LexCachePolicy::lfu(), 768},
      {"priority", tables::LexCachePolicy::priority_based(), 256},
      {"priority", tables::LexCachePolicy::priority_based(), 768},
      {"lex(tr,use)",
       tables::LexCachePolicy::lex({{tables::Attribute::kTrafficCount,
                                     tables::Direction::kPreferHigh},
                                    {tables::Attribute::kUseTime,
                                     tables::Direction::kPreferHigh}}),
       512},
  };

  std::printf("%-12s | %6s | %9s | %7s | %9s | %9s\n", "policy", "actual",
              "estimated", "error", "messages", "msgs/n");
  std::printf("-------------+--------+-----------+---------+-----------+---------\n");

  double worst = 0;
  for (const auto& c : cases) {
    net::Network net;
    const auto id =
        net.add_switch(profiles::policy_cache("sweep", {c.size}, c.impl));
    core::ProbeEngine probe(net, id);
    core::SizeInferenceConfig config;
    config.max_rules = c.size * 3;
    const auto result = infer_sizes(probe, config);
    const double est = result.layer_sizes.empty() ? 0 : result.layer_sizes[0];
    const double err =
        100.0 * std::abs(est - static_cast<double>(c.size)) / c.size;
    worst = std::max(worst, err);
    std::printf("%-12s | %6zu | %9.1f | %6.2f%% | %9llu | %7.1f\n", c.policy,
                c.size, est, err,
                static_cast<unsigned long long>(result.messages_used),
                static_cast<double>(result.messages_used) /
                    static_cast<double>(result.installed));
    (void)err;
  }
  std::printf("\nworst-case error: %.2f%%  (paper claim: < 5%%)\n", worst);

  // Overhead-linearity sweep on a reject-at-capacity switch.
  std::printf("\nprobing overhead vs table size (TCAM-only switch):\n");
  std::printf("%8s | %9s | %9s | msgs/n\n", "size n", "messages", "packets");
  for (std::size_t n : {256, 512, 1024, 2048}) {
    auto profile = profiles::switch2();
    profile.cache_levels[0].capacity_slots = n * 2;  // double-wide
    profile.install_default_route = false;
    net::Network net;
    const auto id = net.add_switch(profile);
    core::ProbeEngine probe(net, id);
    const auto result = infer_sizes(probe);
    std::printf("%8zu | %9llu | %9llu | %6.1f\n", n,
                static_cast<unsigned long long>(result.messages_used),
                static_cast<unsigned long long>(result.probe_packets),
                static_cast<double>(result.messages_used) / static_cast<double>(n));
  }
  std::printf("(msgs/n should stay bounded as n grows: linear overhead.)\n");
  bench::print_footer();
  return 0;
}
