// The understanding challenge, quantified (paper §1): "newer versions of
// OpenFlow allow switches to report configurations and capabilities, but
// the reports can be inaccurate... the maximum number of flow entries is
// approximate and depends on the matching fields."
//
// This bench asks each switch what it claims (TABLE_STATS max_entries) and
// compares against what Tango measures for each rule shape — the gap is the
// reason the probing engine exists.
#include "bench/bench_util.h"
#include "switchsim/profiles.h"
#include "tango/width_inference.h"

int main() {
  using namespace tango;
  namespace profiles = switchsim::profiles;

  bench::print_header(
      "Switch self-reports vs Tango-measured capacities",
      "feature/stats reports are approximate and shape-dependent (§1); "
      "probing measures the truth per rule shape");

  std::printf("%-24s | %-12s | %-10s | %-10s | %-10s | verdict\n", "switch",
              "reported max", "L2 meas.", "L3 meas.", "L2+L3 meas.");
  std::printf("-------------------------+--------------+------------+------------+------------+---------\n");

  struct Row {
    const char* name;
    switchsim::SwitchProfile profile;
  };
  Row rows[] = {
      {"HW #1 (double-wide)", profiles::switch1(tables::TcamMode::kDoubleWide)},
      {"HW #1 (single-wide)", profiles::switch1(tables::TcamMode::kSingleWide)},
      {"HW #2", profiles::switch2()},
      {"HW #3 (adaptive)", profiles::switch3()},
  };

  for (auto& row : rows) {
    net::Network net;
    const auto id = net.add_switch(row.profile);

    // What the switch CLAIMS: raw slot count from table stats.
    const auto reported = net.table_stats_sync(id);
    const std::uint32_t claimed =
        reported.entries.empty() ? 0 : reported.entries[0].max_entries;

    // What Tango MEASURES, per shape.
    core::ProbeEngine probe(net, id);
    const auto width = core::infer_width(probe);

    const bool misleading =
        static_cast<double>(claimed) >
        1.2 * std::max({width.capacity_l2, width.capacity_l3, 1.0});
    std::printf("%-24s | %12u | %10.0f | %10.0f | %10.0f | %s\n", row.name,
                claimed, width.capacity_l2, width.capacity_l3,
                width.capacity_wide,
                misleading ? "MISLEADING" : "accurate");
  }

  std::printf(
      "\nThe double-wide and adaptive switches claim their raw slot count but\n"
      "hold half (or a shape-dependent fraction) of that in actual rules —\n"
      "exactly the approximation the paper warns about. Tango's measured\n"
      "numbers are what a scheduler can actually rely on.\n");
  bench::print_footer();
  return 0;
}
