// Table 1 reproduction: "Diversity of tables and table sizes".
//
// For every switch model we install non-overlapping rules of each shape —
// L2-only, L3-only, and L2+L3 — until the switch rejects (or a cap, for
// switches with software tables), and report how many fit, alongside the
// paper's measured values.
#include "bench/bench_util.h"
#include "switchsim/profiles.h"

namespace {

using namespace tango;

of::FlowMod shaped_rule(std::uint32_t index, const char* shape) {
  of::FlowMod fm;
  fm.command = of::FlowModCommand::kAdd;
  fm.priority = 0x8000;
  fm.actions = of::output_to(2);
  if (shape[0] == '2' || shape[0] == 'B') {  // L2 or both
    fm.match.with_dl_dst({0x02, 0x00,
                          static_cast<std::uint8_t>(index >> 16),
                          static_cast<std::uint8_t>(index >> 8),
                          static_cast<std::uint8_t>(index), 0x01});
  }
  if (shape[0] == '3' || shape[0] == 'B') {  // L3 or both
    fm.match.with_dl_type(0x0800);
    fm.match.set_nw_src_prefix(0x0a000000u + index, 32);
  }
  return fm;
}

/// Install rules of a shape until rejection or cap; returns accepted count
/// and whether we stopped at the cap (software-unbounded).
std::pair<std::size_t, bool> fill(const switchsim::SwitchProfile& profile,
                                  const char* shape, std::size_t cap = 6000) {
  net::Network net;
  const auto id = net.add_switch(profile);
  std::size_t accepted = 0;
  for (std::uint32_t i = 0; i < cap; ++i) {
    if (!net.install(id, shaped_rule(i, shape)).accepted) {
      return {accepted, false};
    }
    ++accepted;
  }
  return {accepted, true};
}

void row(bench::BenchReport& report, const char* name,
         const switchsim::SwitchProfile& profile, const char* paper_l2l3,
         const char* paper_both) {
  const auto l2 = fill(profile, "2");
  const auto l3 = fill(profile, "3");
  const auto both = fill(profile, "B");
  char l2l3[64];
  if (l2.second) {
    std::snprintf(l2l3, sizeof(l2l3), "unbounded");
  } else {
    std::snprintf(l2l3, sizeof(l2l3), "%zu / %zu", l2.first, l3.first);
  }
  char bothbuf[32];
  if (both.second) {
    std::snprintf(bothbuf, sizeof(bothbuf), "unbounded");
  } else {
    std::snprintf(bothbuf, sizeof(bothbuf), "%zu", both.first);
  }
  std::printf("%-24s | %-14s | %-10s | paper: %s L2|L3, %s L2+L3\n", name,
              l2l3, bothbuf, paper_l2l3, paper_both);
  report.json()
      .add_row()
      .col("switch", name)
      .col("l2_rules", static_cast<double>(l2.first))
      .col("l3_rules", static_cast<double>(l3.first))
      .col("l2l3_rules", static_cast<double>(both.first))
      .col("unbounded", l2.second ? "yes" : "no")
      .col("paper_l2l3", paper_l2l3)
      .col("paper_both", paper_both);
}

}  // namespace

int main() {
  namespace profiles = switchsim::profiles;
  bench::print_header(
      "Table 1: diversity of tables and table sizes",
      "OVS unbounded; #1: 4K L2|L3 / 2K L2+L3 (configurable); #2: 2560 any; "
      "#3: 767 L2|L3 / 369 L2+L3");

  bench::BenchReport report("table1_table_sizes");
  std::printf("%-24s | %-14s | %-10s |\n", "switch (hw fast table)",
              "L2-only/L3-only", "L2+L3");
  std::printf("-------------------------+----------------+------------+\n");

  row(report, "OVS", profiles::ovs(), "unbounded", "unbounded");

  // Switch #1's TCAM mode is configurable (Table 1's 4K vs 2K): measure the
  // hardware table by capping the software spill detection — the fill stops
  // at the cap, so instead report TCAM occupancy directly per mode.
  {
    auto single = profiles::switch1(tables::TcamMode::kSingleWide);
    single.software_backing = false;  // isolate the hardware table
    single.arch = switchsim::Architecture::kTcamOnly;
    single.install_default_route = false;
    row(report, "HW #1 (single-wide)", single, "4K", "n/a");
    auto dbl = profiles::switch1(tables::TcamMode::kDoubleWide);
    dbl.software_backing = false;
    dbl.arch = switchsim::Architecture::kTcamOnly;
    dbl.install_default_route = false;
    row(report, "HW #1 (double-wide)", dbl, "2K", "2K");
  }

  {
    auto p2 = profiles::switch2();
    p2.install_default_route = false;
    row(report, "HW #2", p2, "2560", "2560");
    auto p3 = profiles::switch3();
    p3.install_default_route = false;
    row(report, "HW #3", p3, "767", "369");
  }

  std::printf("\nNote: with software backing enabled (as shipped), HW #1 accepts\n"
              "rules past its TCAM into user-space virtual tables — Table 1's\n"
              "\"<inf\" software rows; the fill above isolates the TCAM.\n");
  std::printf("HW #3 (adaptive, 767 slots) holds 383 double-wide entries in our\n"
              "integral-slot model vs the paper's 369 (3.8%% deviation).\n");
  bench::print_footer();
  return 0;
}
