// Figure 9 reproduction: ClassBench installation on HW Switch #1 under the
// four priority/order scenarios. The TCAM makes priority assignment and
// order dominant: topological priorities installed in ascending order beat
// random-order installs by ~80-90% (paper: 87% / 80% / 89%).
#include "bench/bench_fig89_common.h"

int main() {
  using namespace tango;
  bench::print_header(
      "Figure 9(a-c): HW Switch #1 optimization results (3 ClassBench files "
      "x 4 scenarios x 10 trials)",
      "Topo+ascending best; decrease vs random order ~87%/80%/89%");
  bench::BenchReport report("fig9_hw_optimization");
  bench::run_fig89(switchsim::profiles::switch1(),
                   "paper: 87%/80%/89% improvement", report.json());
  bench::print_footer();
  return 0;
}
