// Table 2 reproduction: flows per ClassBench file and the number of
// distinct priorities under topological vs 1-1 ("R") assignment.
#include "bench/bench_util.h"
#include "workload/dependency.h"

int main() {
  using namespace tango;
  bench::print_header(
      "Table 2: ClassBench files, topological vs R priorities",
      "cb1: 829 flows / 64 topo; cb2: 989 / 38; cb3: 972 / 33; R = flows");

  std::printf("%-14s | %6s | %16s | %12s | paper (topo)\n", "file", "flows",
              "topo priorities", "R priorities");
  std::printf("---------------+--------+------------------+--------------+-------------\n");

  const struct {
    workload::ClassbenchProfile profile;
    int paper_topo;
  } files[] = {{workload::cb1(), 64}, {workload::cb2(), 38}, {workload::cb3(), 33}};

  for (const auto& file : files) {
    const auto rules = workload::generate_classbench(file.profile);
    const auto dag = workload::RuleDag::build(rules);
    const auto topo = dag.topological_priorities();
    const auto r = dag.r_priorities();
    std::printf("%-14s | %6zu | %16zu | %12zu | %d\n", file.profile.name.c_str(),
                rules.size(), workload::RuleDag::distinct_count(topo),
                workload::RuleDag::distinct_count(r), file.paper_topo);
  }
  std::printf("\n(R priorities are 1-1 by construction, matching the paper's\n"
              "column where R == flows installed.)\n");
  bench::print_footer();
  return 0;
}
