// Figure 3(c) reproduction: flow installation time for descending,
// ascending, constant, and random priority orders on HW Switch #1 and OVS.
//
// Hardware TCAMs keep entries physically sorted by priority, so ascending
// or constant-priority insertion appends (cheap) while descending shifts
// the whole table per insert (quadratic); OVS is order-insensitive. Also
// prints the desc-vs-constant and random-vs-ascending speedup factors the
// paper quotes (46x and 12x at n=2000).
#include "bench/bench_util.h"
#include "switchsim/profiles.h"

namespace {

using namespace tango;
using core::ProbeEngine;

double run(const switchsim::SwitchProfile& profile,
           const std::vector<std::uint16_t>& priorities) {
  net::Network net;
  const auto id = net.add_switch(profile);
  ProbeEngine probe(net, id);
  return probe.timed_batch(core::make_add_batch(0, priorities.size(), priorities))
      .sec();
}

}  // namespace

int main() {
  namespace profiles = switchsim::profiles;
  bench::print_header(
      "Figure 3(c): install time by priority order (fresh table)",
      "HW #1: desc >> random >> asc > same; OVS: all four curves overlap. "
      "Paper quotes 46x (desc vs const) and 12x (random vs asc) at n=2000.");

  std::printf("%6s | %-43s | %-35s\n", "", "HW Switch #1 (s)", "OVS (s)");
  std::printf("%6s | %9s %9s %9s %9s | %8s %8s %8s %8s\n", "n", "desc", "asc",
              "same", "random", "desc", "asc", "same", "random");
  std::printf("-------+---------------------------------------------+---------------------------------\n");

  double hw_desc_2000 = 0, hw_same_2000 = 0, hw_asc_2000 = 0, hw_rand_2000 = 0;
  for (std::size_t n : {100, 500, 1000, 2000, 3500, 5000}) {
    Rng rng(n);
    // Keep every value in a u16-safe band.
    const auto desc = core::descending_priorities(n, 2000);
    const auto asc = core::ascending_priorities(n, 2000);
    const auto same = core::constant_priorities(n);
    const auto rand = core::random_priorities(n, rng, 2000);

    // Single-wide mode: the paper's Fig 3(c) run used L3-only entries, so
    // the TCAM holds 4K of them and the curves keep growing past 2K.
    const auto hw = profiles::switch1(tables::TcamMode::kSingleWide);
    const double hw_desc = run(hw, desc);
    const double hw_asc = run(hw, asc);
    const double hw_same = run(hw, same);
    const double hw_rand = run(hw, rand);
    const double ovs_desc = run(profiles::ovs(), desc);
    const double ovs_asc = run(profiles::ovs(), asc);
    const double ovs_same = run(profiles::ovs(), same);
    const double ovs_rand = run(profiles::ovs(), rand);
    if (n == 2000) {
      hw_desc_2000 = hw_desc;
      hw_same_2000 = hw_same;
      hw_asc_2000 = hw_asc;
      hw_rand_2000 = hw_rand;
    }
    std::printf("%6zu | %9.2f %9.2f %9.2f %9.2f | %8.3f %8.3f %8.3f %8.3f\n", n,
                hw_desc, hw_asc, hw_same, hw_rand, ovs_desc, ovs_asc, ovs_same,
                ovs_rand);
  }

  std::printf("\nAt n=2000 on HW #1: desc/const = %.1fx (paper ~46x), "
              "random/asc = %.1fx (paper ~12x)\n",
              hw_desc_2000 / hw_same_2000, hw_rand_2000 / hw_asc_2000);
  bench::print_footer();
  return 0;
}
