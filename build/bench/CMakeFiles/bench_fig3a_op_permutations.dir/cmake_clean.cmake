file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3a_op_permutations.dir/bench_fig3a_op_permutations.cpp.o"
  "CMakeFiles/bench_fig3a_op_permutations.dir/bench_fig3a_op_permutations.cpp.o.d"
  "bench_fig3a_op_permutations"
  "bench_fig3a_op_permutations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3a_op_permutations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
