# Empty compiler generated dependencies file for bench_fig3a_op_permutations.
# This may be replaced when dependencies are built.
