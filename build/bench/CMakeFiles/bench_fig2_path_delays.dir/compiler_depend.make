# Empty compiler generated dependencies file for bench_fig2_path_delays.
# This may be replaced when dependencies are built.
