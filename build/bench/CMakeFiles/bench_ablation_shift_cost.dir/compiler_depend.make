# Empty compiler generated dependencies file for bench_ablation_shift_cost.
# This may be replaced when dependencies are built.
