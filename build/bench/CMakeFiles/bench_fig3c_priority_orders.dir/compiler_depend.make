# Empty compiler generated dependencies file for bench_fig3c_priority_orders.
# This may be replaced when dependencies are built.
