# Empty dependencies file for bench_extension_deadlines.
# This may be replaced when dependencies are built.
