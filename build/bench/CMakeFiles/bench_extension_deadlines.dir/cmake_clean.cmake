file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_deadlines.dir/bench_extension_deadlines.cpp.o"
  "CMakeFiles/bench_extension_deadlines.dir/bench_extension_deadlines.cpp.o.d"
  "bench_extension_deadlines"
  "bench_extension_deadlines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_deadlines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
