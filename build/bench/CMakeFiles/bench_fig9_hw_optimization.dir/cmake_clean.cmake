file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_hw_optimization.dir/bench_fig9_hw_optimization.cpp.o"
  "CMakeFiles/bench_fig9_hw_optimization.dir/bench_fig9_hw_optimization.cpp.o.d"
  "bench_fig9_hw_optimization"
  "bench_fig9_hw_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_hw_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
