# Empty dependencies file for bench_fig9_hw_optimization.
# This may be replaced when dependencies are built.
