# Empty compiler generated dependencies file for bench_report_vs_inference.
# This may be replaced when dependencies are built.
