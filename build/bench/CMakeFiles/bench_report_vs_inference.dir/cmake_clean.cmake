file(REMOVE_RECURSE
  "CMakeFiles/bench_report_vs_inference.dir/bench_report_vs_inference.cpp.o"
  "CMakeFiles/bench_report_vs_inference.dir/bench_report_vs_inference.cpp.o.d"
  "bench_report_vs_inference"
  "bench_report_vs_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_report_vs_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
