# Empty dependencies file for bench_fig8_ovs_optimization.
# This may be replaced when dependencies are built.
