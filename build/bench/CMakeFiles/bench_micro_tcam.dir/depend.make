# Empty dependencies file for bench_micro_tcam.
# This may be replaced when dependencies are built.
