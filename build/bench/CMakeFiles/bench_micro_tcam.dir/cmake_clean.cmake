file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_tcam.dir/bench_micro_tcam.cpp.o"
  "CMakeFiles/bench_micro_tcam.dir/bench_micro_tcam.cpp.o.d"
  "bench_micro_tcam"
  "bench_micro_tcam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_tcam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
