# Empty dependencies file for bench_table1_table_sizes.
# This may be replaced when dependencies are built.
