file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3b_add_vs_mod.dir/bench_fig3b_add_vs_mod.cpp.o"
  "CMakeFiles/bench_fig3b_add_vs_mod.dir/bench_fig3b_add_vs_mod.cpp.o.d"
  "bench_fig3b_add_vs_mod"
  "bench_fig3b_add_vs_mod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3b_add_vs_mod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
