# Empty dependencies file for bench_fig3b_add_vs_mod.
# This may be replaced when dependencies are built.
