# Empty dependencies file for bench_fig6_policy_pattern.
# This may be replaced when dependencies are built.
