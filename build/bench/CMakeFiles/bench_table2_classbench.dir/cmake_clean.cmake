file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_classbench.dir/bench_table2_classbench.cpp.o"
  "CMakeFiles/bench_table2_classbench.dir/bench_table2_classbench.cpp.o.d"
  "bench_table2_classbench"
  "bench_table2_classbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_classbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
