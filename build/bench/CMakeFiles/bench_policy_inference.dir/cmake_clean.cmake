file(REMOVE_RECURSE
  "CMakeFiles/bench_policy_inference.dir/bench_policy_inference.cpp.o"
  "CMakeFiles/bench_policy_inference.dir/bench_policy_inference.cpp.o.d"
  "bench_policy_inference"
  "bench_policy_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_policy_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
