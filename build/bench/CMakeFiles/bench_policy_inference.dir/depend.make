# Empty dependencies file for bench_policy_inference.
# This may be replaced when dependencies are built.
