file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_network_wide.dir/bench_fig10_network_wide.cpp.o"
  "CMakeFiles/bench_fig10_network_wide.dir/bench_fig10_network_wide.cpp.o.d"
  "bench_fig10_network_wide"
  "bench_fig10_network_wide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_network_wide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
