file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_b4_te.dir/bench_fig12_b4_te.cpp.o"
  "CMakeFiles/bench_fig12_b4_te.dir/bench_fig12_b4_te.cpp.o.d"
  "bench_fig12_b4_te"
  "bench_fig12_b4_te.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_b4_te.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
