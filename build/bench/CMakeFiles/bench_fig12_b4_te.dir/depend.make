# Empty dependencies file for bench_fig12_b4_te.
# This may be replaced when dependencies are built.
