file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_speculative.dir/bench_extension_speculative.cpp.o"
  "CMakeFiles/bench_extension_speculative.dir/bench_extension_speculative.cpp.o.d"
  "bench_extension_speculative"
  "bench_extension_speculative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_speculative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
