# Empty dependencies file for bench_extension_speculative.
# This may be replaced when dependencies are built.
