file(REMOVE_RECURSE
  "CMakeFiles/bench_size_inference_accuracy.dir/bench_size_inference_accuracy.cpp.o"
  "CMakeFiles/bench_size_inference_accuracy.dir/bench_size_inference_accuracy.cpp.o.d"
  "bench_size_inference_accuracy"
  "bench_size_inference_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_size_inference_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
