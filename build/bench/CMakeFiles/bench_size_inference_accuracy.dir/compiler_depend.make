# Empty compiler generated dependencies file for bench_size_inference_accuracy.
# This may be replaced when dependencies are built.
