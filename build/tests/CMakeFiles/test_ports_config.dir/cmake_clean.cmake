file(REMOVE_RECURSE
  "CMakeFiles/test_ports_config.dir/test_ports_config.cpp.o"
  "CMakeFiles/test_ports_config.dir/test_ports_config.cpp.o.d"
  "test_ports_config"
  "test_ports_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ports_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
