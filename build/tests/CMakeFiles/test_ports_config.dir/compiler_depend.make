# Empty compiler generated dependencies file for test_ports_config.
# This may be replaced when dependencies are built.
