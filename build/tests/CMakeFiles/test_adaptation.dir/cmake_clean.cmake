file(REMOVE_RECURSE
  "CMakeFiles/test_adaptation.dir/test_adaptation.cpp.o"
  "CMakeFiles/test_adaptation.dir/test_adaptation.cpp.o.d"
  "test_adaptation"
  "test_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
