file(REMOVE_RECURSE
  "CMakeFiles/test_switch_model.dir/test_switch_model.cpp.o"
  "CMakeFiles/test_switch_model.dir/test_switch_model.cpp.o.d"
  "test_switch_model"
  "test_switch_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_switch_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
