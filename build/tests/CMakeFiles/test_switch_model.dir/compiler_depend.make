# Empty compiler generated dependencies file for test_switch_model.
# This may be replaced when dependencies are built.
