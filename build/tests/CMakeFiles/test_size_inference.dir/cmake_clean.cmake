file(REMOVE_RECURSE
  "CMakeFiles/test_size_inference.dir/test_size_inference.cpp.o"
  "CMakeFiles/test_size_inference.dir/test_size_inference.cpp.o.d"
  "test_size_inference"
  "test_size_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_size_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
