# Empty compiler generated dependencies file for test_size_inference.
# This may be replaced when dependencies are built.
