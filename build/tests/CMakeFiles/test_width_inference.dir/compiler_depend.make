# Empty compiler generated dependencies file for test_width_inference.
# This may be replaced when dependencies are built.
