file(REMOVE_RECURSE
  "CMakeFiles/test_width_inference.dir/test_width_inference.cpp.o"
  "CMakeFiles/test_width_inference.dir/test_width_inference.cpp.o.d"
  "test_width_inference"
  "test_width_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_width_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
