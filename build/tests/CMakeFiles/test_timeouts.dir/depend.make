# Empty dependencies file for test_timeouts.
# This may be replaced when dependencies are built.
