file(REMOVE_RECURSE
  "CMakeFiles/test_policy_inference.dir/test_policy_inference.cpp.o"
  "CMakeFiles/test_policy_inference.dir/test_policy_inference.cpp.o.d"
  "test_policy_inference"
  "test_policy_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policy_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
