file(REMOVE_RECURSE
  "CMakeFiles/test_knowledge_io.dir/test_knowledge_io.cpp.o"
  "CMakeFiles/test_knowledge_io.dir/test_knowledge_io.cpp.o.d"
  "test_knowledge_io"
  "test_knowledge_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_knowledge_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
