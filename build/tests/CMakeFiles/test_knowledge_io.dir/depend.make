# Empty dependencies file for test_knowledge_io.
# This may be replaced when dependencies are built.
