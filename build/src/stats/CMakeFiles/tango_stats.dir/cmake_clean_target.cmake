file(REMOVE_RECURSE
  "libtango_stats.a"
)
