file(REMOVE_RECURSE
  "CMakeFiles/tango_stats.dir/cluster.cpp.o"
  "CMakeFiles/tango_stats.dir/cluster.cpp.o.d"
  "CMakeFiles/tango_stats.dir/correlation.cpp.o"
  "CMakeFiles/tango_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/tango_stats.dir/descriptive.cpp.o"
  "CMakeFiles/tango_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/tango_stats.dir/estimators.cpp.o"
  "CMakeFiles/tango_stats.dir/estimators.cpp.o.d"
  "libtango_stats.a"
  "libtango_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
