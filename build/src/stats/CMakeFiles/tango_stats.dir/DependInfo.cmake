
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/cluster.cpp" "src/stats/CMakeFiles/tango_stats.dir/cluster.cpp.o" "gcc" "src/stats/CMakeFiles/tango_stats.dir/cluster.cpp.o.d"
  "/root/repo/src/stats/correlation.cpp" "src/stats/CMakeFiles/tango_stats.dir/correlation.cpp.o" "gcc" "src/stats/CMakeFiles/tango_stats.dir/correlation.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/tango_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/tango_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/estimators.cpp" "src/stats/CMakeFiles/tango_stats.dir/estimators.cpp.o" "gcc" "src/stats/CMakeFiles/tango_stats.dir/estimators.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tango_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
