# Empty dependencies file for tango_stats.
# This may be replaced when dependencies are built.
