file(REMOVE_RECURSE
  "libtango_sim.a"
)
