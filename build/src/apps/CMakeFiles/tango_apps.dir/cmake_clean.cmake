file(REMOVE_RECURSE
  "CMakeFiles/tango_apps.dir/acl_compiler.cpp.o"
  "CMakeFiles/tango_apps.dir/acl_compiler.cpp.o.d"
  "CMakeFiles/tango_apps.dir/flow_monitor.cpp.o"
  "CMakeFiles/tango_apps.dir/flow_monitor.cpp.o.d"
  "CMakeFiles/tango_apps.dir/path_installer.cpp.o"
  "CMakeFiles/tango_apps.dir/path_installer.cpp.o.d"
  "libtango_apps.a"
  "libtango_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
