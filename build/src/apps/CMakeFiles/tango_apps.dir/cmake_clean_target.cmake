file(REMOVE_RECURSE
  "libtango_apps.a"
)
