# Empty dependencies file for tango_apps.
# This may be replaced when dependencies are built.
