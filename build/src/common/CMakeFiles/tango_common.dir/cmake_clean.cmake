file(REMOVE_RECURSE
  "CMakeFiles/tango_common.dir/logging.cpp.o"
  "CMakeFiles/tango_common.dir/logging.cpp.o.d"
  "CMakeFiles/tango_common.dir/types.cpp.o"
  "CMakeFiles/tango_common.dir/types.cpp.o.d"
  "libtango_common.a"
  "libtango_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
