file(REMOVE_RECURSE
  "libtango_common.a"
)
