file(REMOVE_RECURSE
  "libtango_scheduler.a"
)
