# Empty compiler generated dependencies file for tango_scheduler.
# This may be replaced when dependencies are built.
