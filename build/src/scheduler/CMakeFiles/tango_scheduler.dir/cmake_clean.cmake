file(REMOVE_RECURSE
  "CMakeFiles/tango_scheduler.dir/executor.cpp.o"
  "CMakeFiles/tango_scheduler.dir/executor.cpp.o.d"
  "CMakeFiles/tango_scheduler.dir/request.cpp.o"
  "CMakeFiles/tango_scheduler.dir/request.cpp.o.d"
  "CMakeFiles/tango_scheduler.dir/schedulers.cpp.o"
  "CMakeFiles/tango_scheduler.dir/schedulers.cpp.o.d"
  "libtango_scheduler.a"
  "libtango_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
