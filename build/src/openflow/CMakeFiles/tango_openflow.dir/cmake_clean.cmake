file(REMOVE_RECURSE
  "CMakeFiles/tango_openflow.dir/actions.cpp.o"
  "CMakeFiles/tango_openflow.dir/actions.cpp.o.d"
  "CMakeFiles/tango_openflow.dir/codec.cpp.o"
  "CMakeFiles/tango_openflow.dir/codec.cpp.o.d"
  "CMakeFiles/tango_openflow.dir/match.cpp.o"
  "CMakeFiles/tango_openflow.dir/match.cpp.o.d"
  "CMakeFiles/tango_openflow.dir/messages.cpp.o"
  "CMakeFiles/tango_openflow.dir/messages.cpp.o.d"
  "CMakeFiles/tango_openflow.dir/packet.cpp.o"
  "CMakeFiles/tango_openflow.dir/packet.cpp.o.d"
  "libtango_openflow.a"
  "libtango_openflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_openflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
