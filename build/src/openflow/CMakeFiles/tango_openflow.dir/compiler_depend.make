# Empty compiler generated dependencies file for tango_openflow.
# This may be replaced when dependencies are built.
