file(REMOVE_RECURSE
  "libtango_openflow.a"
)
