
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/openflow/actions.cpp" "src/openflow/CMakeFiles/tango_openflow.dir/actions.cpp.o" "gcc" "src/openflow/CMakeFiles/tango_openflow.dir/actions.cpp.o.d"
  "/root/repo/src/openflow/codec.cpp" "src/openflow/CMakeFiles/tango_openflow.dir/codec.cpp.o" "gcc" "src/openflow/CMakeFiles/tango_openflow.dir/codec.cpp.o.d"
  "/root/repo/src/openflow/match.cpp" "src/openflow/CMakeFiles/tango_openflow.dir/match.cpp.o" "gcc" "src/openflow/CMakeFiles/tango_openflow.dir/match.cpp.o.d"
  "/root/repo/src/openflow/messages.cpp" "src/openflow/CMakeFiles/tango_openflow.dir/messages.cpp.o" "gcc" "src/openflow/CMakeFiles/tango_openflow.dir/messages.cpp.o.d"
  "/root/repo/src/openflow/packet.cpp" "src/openflow/CMakeFiles/tango_openflow.dir/packet.cpp.o" "gcc" "src/openflow/CMakeFiles/tango_openflow.dir/packet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tango_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
