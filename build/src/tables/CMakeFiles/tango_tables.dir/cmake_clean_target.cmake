file(REMOVE_RECURSE
  "libtango_tables.a"
)
