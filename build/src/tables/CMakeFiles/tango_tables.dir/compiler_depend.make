# Empty compiler generated dependencies file for tango_tables.
# This may be replaced when dependencies are built.
