file(REMOVE_RECURSE
  "CMakeFiles/tango_tables.dir/cache_policy.cpp.o"
  "CMakeFiles/tango_tables.dir/cache_policy.cpp.o.d"
  "CMakeFiles/tango_tables.dir/software_table.cpp.o"
  "CMakeFiles/tango_tables.dir/software_table.cpp.o.d"
  "CMakeFiles/tango_tables.dir/tcam.cpp.o"
  "CMakeFiles/tango_tables.dir/tcam.cpp.o.d"
  "libtango_tables.a"
  "libtango_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
