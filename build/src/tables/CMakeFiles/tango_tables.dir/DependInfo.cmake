
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tables/cache_policy.cpp" "src/tables/CMakeFiles/tango_tables.dir/cache_policy.cpp.o" "gcc" "src/tables/CMakeFiles/tango_tables.dir/cache_policy.cpp.o.d"
  "/root/repo/src/tables/software_table.cpp" "src/tables/CMakeFiles/tango_tables.dir/software_table.cpp.o" "gcc" "src/tables/CMakeFiles/tango_tables.dir/software_table.cpp.o.d"
  "/root/repo/src/tables/tcam.cpp" "src/tables/CMakeFiles/tango_tables.dir/tcam.cpp.o" "gcc" "src/tables/CMakeFiles/tango_tables.dir/tcam.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tango_common.dir/DependInfo.cmake"
  "/root/repo/build/src/openflow/CMakeFiles/tango_openflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
