
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/switchsim/latency_model.cpp" "src/switchsim/CMakeFiles/tango_switchsim.dir/latency_model.cpp.o" "gcc" "src/switchsim/CMakeFiles/tango_switchsim.dir/latency_model.cpp.o.d"
  "/root/repo/src/switchsim/profiles.cpp" "src/switchsim/CMakeFiles/tango_switchsim.dir/profiles.cpp.o" "gcc" "src/switchsim/CMakeFiles/tango_switchsim.dir/profiles.cpp.o.d"
  "/root/repo/src/switchsim/switch_model.cpp" "src/switchsim/CMakeFiles/tango_switchsim.dir/switch_model.cpp.o" "gcc" "src/switchsim/CMakeFiles/tango_switchsim.dir/switch_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tango_common.dir/DependInfo.cmake"
  "/root/repo/build/src/openflow/CMakeFiles/tango_openflow.dir/DependInfo.cmake"
  "/root/repo/build/src/tables/CMakeFiles/tango_tables.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
