# Empty compiler generated dependencies file for tango_switchsim.
# This may be replaced when dependencies are built.
