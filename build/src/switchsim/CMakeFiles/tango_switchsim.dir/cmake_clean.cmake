file(REMOVE_RECURSE
  "CMakeFiles/tango_switchsim.dir/latency_model.cpp.o"
  "CMakeFiles/tango_switchsim.dir/latency_model.cpp.o.d"
  "CMakeFiles/tango_switchsim.dir/profiles.cpp.o"
  "CMakeFiles/tango_switchsim.dir/profiles.cpp.o.d"
  "CMakeFiles/tango_switchsim.dir/switch_model.cpp.o"
  "CMakeFiles/tango_switchsim.dir/switch_model.cpp.o.d"
  "libtango_switchsim.a"
  "libtango_switchsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_switchsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
