file(REMOVE_RECURSE
  "libtango_switchsim.a"
)
