file(REMOVE_RECURSE
  "CMakeFiles/tango_net.dir/b4.cpp.o"
  "CMakeFiles/tango_net.dir/b4.cpp.o.d"
  "CMakeFiles/tango_net.dir/channel.cpp.o"
  "CMakeFiles/tango_net.dir/channel.cpp.o.d"
  "CMakeFiles/tango_net.dir/network.cpp.o"
  "CMakeFiles/tango_net.dir/network.cpp.o.d"
  "CMakeFiles/tango_net.dir/topology.cpp.o"
  "CMakeFiles/tango_net.dir/topology.cpp.o.d"
  "libtango_net.a"
  "libtango_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
