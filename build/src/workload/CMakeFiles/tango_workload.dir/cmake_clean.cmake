file(REMOVE_RECURSE
  "CMakeFiles/tango_workload.dir/classbench.cpp.o"
  "CMakeFiles/tango_workload.dir/classbench.cpp.o.d"
  "CMakeFiles/tango_workload.dir/dependency.cpp.o"
  "CMakeFiles/tango_workload.dir/dependency.cpp.o.d"
  "CMakeFiles/tango_workload.dir/maxmin.cpp.o"
  "CMakeFiles/tango_workload.dir/maxmin.cpp.o.d"
  "CMakeFiles/tango_workload.dir/scenarios.cpp.o"
  "CMakeFiles/tango_workload.dir/scenarios.cpp.o.d"
  "CMakeFiles/tango_workload.dir/trace.cpp.o"
  "CMakeFiles/tango_workload.dir/trace.cpp.o.d"
  "libtango_workload.a"
  "libtango_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
