
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tango/knowledge_io.cpp" "src/tango/CMakeFiles/tango_core.dir/knowledge_io.cpp.o" "gcc" "src/tango/CMakeFiles/tango_core.dir/knowledge_io.cpp.o.d"
  "/root/repo/src/tango/latency_profiler.cpp" "src/tango/CMakeFiles/tango_core.dir/latency_profiler.cpp.o" "gcc" "src/tango/CMakeFiles/tango_core.dir/latency_profiler.cpp.o.d"
  "/root/repo/src/tango/pattern.cpp" "src/tango/CMakeFiles/tango_core.dir/pattern.cpp.o" "gcc" "src/tango/CMakeFiles/tango_core.dir/pattern.cpp.o.d"
  "/root/repo/src/tango/policy_inference.cpp" "src/tango/CMakeFiles/tango_core.dir/policy_inference.cpp.o" "gcc" "src/tango/CMakeFiles/tango_core.dir/policy_inference.cpp.o.d"
  "/root/repo/src/tango/probe_engine.cpp" "src/tango/CMakeFiles/tango_core.dir/probe_engine.cpp.o" "gcc" "src/tango/CMakeFiles/tango_core.dir/probe_engine.cpp.o.d"
  "/root/repo/src/tango/size_inference.cpp" "src/tango/CMakeFiles/tango_core.dir/size_inference.cpp.o" "gcc" "src/tango/CMakeFiles/tango_core.dir/size_inference.cpp.o.d"
  "/root/repo/src/tango/tango.cpp" "src/tango/CMakeFiles/tango_core.dir/tango.cpp.o" "gcc" "src/tango/CMakeFiles/tango_core.dir/tango.cpp.o.d"
  "/root/repo/src/tango/width_inference.cpp" "src/tango/CMakeFiles/tango_core.dir/width_inference.cpp.o" "gcc" "src/tango/CMakeFiles/tango_core.dir/width_inference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tango_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tango_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tango_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tango_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/switchsim/CMakeFiles/tango_switchsim.dir/DependInfo.cmake"
  "/root/repo/build/src/tables/CMakeFiles/tango_tables.dir/DependInfo.cmake"
  "/root/repo/build/src/openflow/CMakeFiles/tango_openflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
