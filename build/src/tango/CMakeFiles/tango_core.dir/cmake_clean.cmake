file(REMOVE_RECURSE
  "CMakeFiles/tango_core.dir/knowledge_io.cpp.o"
  "CMakeFiles/tango_core.dir/knowledge_io.cpp.o.d"
  "CMakeFiles/tango_core.dir/latency_profiler.cpp.o"
  "CMakeFiles/tango_core.dir/latency_profiler.cpp.o.d"
  "CMakeFiles/tango_core.dir/pattern.cpp.o"
  "CMakeFiles/tango_core.dir/pattern.cpp.o.d"
  "CMakeFiles/tango_core.dir/policy_inference.cpp.o"
  "CMakeFiles/tango_core.dir/policy_inference.cpp.o.d"
  "CMakeFiles/tango_core.dir/probe_engine.cpp.o"
  "CMakeFiles/tango_core.dir/probe_engine.cpp.o.d"
  "CMakeFiles/tango_core.dir/size_inference.cpp.o"
  "CMakeFiles/tango_core.dir/size_inference.cpp.o.d"
  "CMakeFiles/tango_core.dir/tango.cpp.o"
  "CMakeFiles/tango_core.dir/tango.cpp.o.d"
  "CMakeFiles/tango_core.dir/width_inference.cpp.o"
  "CMakeFiles/tango_core.dir/width_inference.cpp.o.d"
  "libtango_core.a"
  "libtango_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tango_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
