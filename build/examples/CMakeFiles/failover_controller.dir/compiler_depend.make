# Empty compiler generated dependencies file for failover_controller.
# This may be replaced when dependencies are built.
