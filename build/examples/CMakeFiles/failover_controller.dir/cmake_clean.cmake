file(REMOVE_RECURSE
  "CMakeFiles/failover_controller.dir/failover_controller.cpp.o"
  "CMakeFiles/failover_controller.dir/failover_controller.cpp.o.d"
  "failover_controller"
  "failover_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failover_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
