# Empty dependencies file for link_failure.
# This may be replaced when dependencies are built.
