file(REMOVE_RECURSE
  "CMakeFiles/link_failure.dir/link_failure.cpp.o"
  "CMakeFiles/link_failure.dir/link_failure.cpp.o.d"
  "link_failure"
  "link_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
