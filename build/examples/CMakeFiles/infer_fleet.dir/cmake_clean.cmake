file(REMOVE_RECURSE
  "CMakeFiles/infer_fleet.dir/infer_fleet.cpp.o"
  "CMakeFiles/infer_fleet.dir/infer_fleet.cpp.o.d"
  "infer_fleet"
  "infer_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infer_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
