
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/infer_fleet.cpp" "examples/CMakeFiles/infer_fleet.dir/infer_fleet.cpp.o" "gcc" "examples/CMakeFiles/infer_fleet.dir/infer_fleet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tango_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tango_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tango_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/openflow/CMakeFiles/tango_openflow.dir/DependInfo.cmake"
  "/root/repo/build/src/tables/CMakeFiles/tango_tables.dir/DependInfo.cmake"
  "/root/repo/build/src/switchsim/CMakeFiles/tango_switchsim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tango_net.dir/DependInfo.cmake"
  "/root/repo/build/src/tango/CMakeFiles/tango_core.dir/DependInfo.cmake"
  "/root/repo/build/src/scheduler/CMakeFiles/tango_scheduler.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tango_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/tango_apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
