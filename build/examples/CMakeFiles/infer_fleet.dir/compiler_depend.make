# Empty compiler generated dependencies file for infer_fleet.
# This may be replaced when dependencies are built.
