file(REMOVE_RECURSE
  "CMakeFiles/acl_deployment.dir/acl_deployment.cpp.o"
  "CMakeFiles/acl_deployment.dir/acl_deployment.cpp.o.d"
  "acl_deployment"
  "acl_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acl_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
