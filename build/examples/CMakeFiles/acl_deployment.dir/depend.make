# Empty dependencies file for acl_deployment.
# This may be replaced when dependencies are built.
