#include "apps/path_installer.h"

#include <algorithm>
#include <set>

#include "tango/probe_engine.h"

namespace tango::apps {

std::uint16_t PathInstaller::port_toward(net::NodeId node, net::NodeId next) const {
  const auto link = network_.topology().link_between(node, next);
  if (!link) return of::kPortNone;
  return net::port_for_link(*link);
}

sched::SwitchRequest PathInstaller::hop_request(const PathRequest& request,
                                                net::NodeId node,
                                                std::uint16_t out_port,
                                                sched::RequestType type) const {
  sched::SwitchRequest req;
  req.location = net::Network::switch_of(node);
  req.type = type;
  req.priority = request.priority;
  req.match = core::ProbeEngine::probe_match(request.flow_id);
  req.actions = of::output_to(out_port);
  req.deadline = request.deadline;
  return req;
}

std::vector<std::size_t> PathInstaller::compile(const PathRequest& request,
                                                sched::RequestDag& dag) const {
  std::vector<std::size_t> ids;
  const auto path = network_.topology().shortest_path(request.src, request.dst);
  if (path.size() < 2) return ids;

  // Build destination-first so each request depends on its downstream hop.
  std::size_t prev = SIZE_MAX;
  std::vector<std::size_t> in_path_order(path.size() - 1);
  for (std::size_t i = path.size() - 1; i-- > 0;) {
    const std::uint16_t out_port = port_toward(path[i], path[i + 1]);
    const std::size_t id =
        dag.add(hop_request(request, path[i], out_port, sched::RequestType::kAdd));
    if (prev != SIZE_MAX) dag.add_dependency(prev, id);
    prev = id;
    in_path_order[i] = id;
  }
  return in_path_order;
}

std::vector<std::size_t> PathInstaller::compile_reroute(
    const PathRequest& request, const std::vector<net::NodeId>& old_path,
    sched::RequestDag& dag) const {
  std::vector<std::size_t> ids;
  const auto new_path = network_.topology().shortest_path(request.src, request.dst);
  if (new_path.size() < 2) return ids;
  const std::set<net::NodeId> old_nodes(old_path.begin(), old_path.end());
  const std::set<net::NodeId> new_nodes(new_path.begin(), new_path.end());

  // New path, destination-first: MOD where a rule exists, ADD elsewhere.
  std::size_t prev = SIZE_MAX;
  for (std::size_t i = new_path.size() - 1; i-- > 0;) {
    const std::uint16_t out_port = port_toward(new_path[i], new_path[i + 1]);
    const auto type = old_nodes.count(new_path[i]) != 0 ? sched::RequestType::kMod
                                                        : sched::RequestType::kAdd;
    const std::size_t id =
        dag.add(hop_request(request, new_path[i], out_port, type));
    if (prev != SIZE_MAX) dag.add_dependency(prev, id);
    prev = id;
    ids.push_back(id);
  }

  // Abandoned switches: delete once the new path is live (dependency on the
  // last new-path request, i.e. the source hop).
  for (std::size_t i = 0; i + 1 < old_path.size(); ++i) {
    if (new_nodes.count(old_path[i]) != 0) continue;
    const std::size_t id = dag.add(
        hop_request(request, old_path[i], of::kPortNone, sched::RequestType::kDel));
    if (prev != SIZE_MAX) dag.add_dependency(prev, id);
    ids.push_back(id);
  }
  std::reverse(ids.begin(), ids.end());
  return ids;
}

}  // namespace tango::apps
