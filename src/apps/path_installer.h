// Application-level path installation (paper §6 "Application requests").
//
// The simplest class of requests Tango accepts is "install this flow from A
// to B" — a static-flow-pusher-style request where the controller computes
// the route and emits one switch request per hop. Consistency: per-hop
// requests are chained destination-first [18], so no packet can reach a
// switch without a rule waiting for it.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/network.h"
#include "scheduler/request.h"

namespace tango::apps {

struct PathRequest {
  net::NodeId src = 0;
  net::NodeId dst = 0;
  /// Flow identity; the rule matches ProbeEngine::probe_match(flow_id).
  std::uint32_t flow_id = 0;
  /// Empty: let Tango's priority enforcement choose.
  std::optional<std::uint16_t> priority;
  /// install_by deadline applied to every hop of the path.
  std::optional<SimDuration> deadline;
};

class PathInstaller {
 public:
  explicit PathInstaller(net::Network& network) : network_(network) {}

  /// Append ADD requests for the flow along the current shortest path.
  /// Returns the dag node ids in path order (source first); empty when the
  /// destination is unreachable.
  std::vector<std::size_t> compile(const PathRequest& request,
                                   sched::RequestDag& dag) const;

  /// Append requests to move an installed flow from `old_path` to the
  /// current shortest path: MOD on shared switches, ADD on new-only ones,
  /// DEL on abandoned ones — chained destination-first (the LF workload's
  /// shape, generalized).
  std::vector<std::size_t> compile_reroute(const PathRequest& request,
                                           const std::vector<net::NodeId>& old_path,
                                           sched::RequestDag& dag) const;

  /// The output port on `node` that leads to `next` (deterministic mapping
  /// from the connecting link).
  [[nodiscard]] std::uint16_t port_toward(net::NodeId node, net::NodeId next) const;

 private:
  sched::SwitchRequest hop_request(const PathRequest& request, net::NodeId node,
                                   std::uint16_t out_port,
                                   sched::RequestType type) const;

  net::Network& network_;
};

}  // namespace tango::apps
