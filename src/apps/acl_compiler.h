// ACL deployment compiler (paper §6: declarative, match-condition-only
// requests; priority machinery from Maple [23]).
//
// Takes a first-match-wins ACL, derives the overlap-dependency DAG, assigns
// priorities (topological — the minimum number of distinct values — or 1-1
// "R" priorities), and emits a switch-request DAG. Two consistency modes:
//
//  * consistent: an overlapping pair must install higher-priority-first so
//    no packet transiently matches the broader rule (barrier semantics) —
//    the DAG carries an edge per overlap constraint;
//  * fast: no ordering constraints — the scheduler is free to install in
//    the cheapest (ascending) order. This is the mode the paper's Fig 9
//    "Topo Asc" scenario measures; the tension between the two is exactly
//    why Tango's priority patterns matter.
#pragma once

#include <optional>
#include <vector>

#include "scheduler/request.h"
#include "workload/classbench.h"
#include "workload/dependency.h"

namespace tango::apps {

struct AclCompileOptions {
  SwitchId target = 1;
  /// Add barrier dependencies for overlapping rules (see header comment).
  bool consistent = false;
  /// Topological (levelled) priorities; false = 1-1 "R" priorities.
  bool topological = true;
  std::uint16_t out_port = 2;
  std::optional<SimDuration> deadline;
};

struct CompiledAcl {
  sched::RequestDag dag;
  std::vector<std::uint16_t> priorities;  // per original rule index
  std::size_t distinct_priorities = 0;
  std::size_t dependency_edges = 0;
};

CompiledAcl compile_acl(const std::vector<workload::AclRule>& rules,
                        const AclCompileOptions& options);

}  // namespace tango::apps
