// Flow monitoring helper: collects unsolicited FLOW_REMOVED notifications
// and polls flow/table statistics — the consumer side of the switch's
// counters (which the cache policies key off).
#pragma once

#include <vector>

#include "net/network.h"

namespace tango::apps {

struct RemovalRecord {
  SwitchId switch_id = 0;
  of::FlowRemoved info;
};

struct PortEvent {
  SwitchId switch_id = 0;
  of::PortStatus info;
};

class FlowMonitor {
 public:
  /// Installs itself as the network's unsolicited-message handler.
  explicit FlowMonitor(net::Network& network);

  [[nodiscard]] const std::vector<RemovalRecord>& removals() const {
    return removals_;
  }
  [[nodiscard]] std::size_t removal_count() const { return removals_.size(); }
  [[nodiscard]] const std::vector<PortEvent>& port_events() const {
    return port_events_;
  }
  void clear() {
    removals_.clear();
    port_events_.clear();
  }

  /// Total packets counted across rules matching `filter` on a switch.
  std::uint64_t total_packets(SwitchId id, const of::Match& filter);

  /// Sum of active rules across a switch's tables (as reported by the
  /// switch — the paper's point is that such reports can mislead; compare
  /// with Tango's inferred sizes).
  std::uint64_t reported_active_rules(SwitchId id);

 private:
  net::Network& network_;
  std::vector<RemovalRecord> removals_;
  std::vector<PortEvent> port_events_;
};

}  // namespace tango::apps
