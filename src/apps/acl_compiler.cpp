#include "apps/acl_compiler.h"

namespace tango::apps {

CompiledAcl compile_acl(const std::vector<workload::AclRule>& rules,
                        const AclCompileOptions& options) {
  CompiledAcl out;
  const auto rule_dag = workload::RuleDag::build(rules);
  out.priorities = options.topological ? rule_dag.topological_priorities()
                                       : rule_dag.r_priorities();
  out.distinct_priorities = workload::RuleDag::distinct_count(out.priorities);

  std::vector<std::size_t> node_of(rules.size());
  for (std::size_t i = 0; i < rules.size(); ++i) {
    sched::SwitchRequest req;
    req.location = options.target;
    req.type = sched::RequestType::kAdd;
    req.priority = out.priorities[i];
    req.match = rules[i].match;
    req.actions = of::output_to(options.out_port);
    req.deadline = options.deadline;
    node_of[i] = out.dag.add(std::move(req));
  }

  if (options.consistent) {
    for (std::size_t i = 0; i < rules.size(); ++i) {
      for (std::size_t j : rule_dag.successors(i)) {
        // i is earlier in the ACL (higher priority): it must be live before
        // the broader/later rule can safely match traffic.
        out.dag.add_dependency(node_of[i], node_of[j]);
        ++out.dependency_edges;
      }
    }
  }
  return out;
}

}  // namespace tango::apps
