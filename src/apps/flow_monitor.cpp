#include "apps/flow_monitor.h"

namespace tango::apps {

FlowMonitor::FlowMonitor(net::Network& network) : network_(network) {
  network_.set_unsolicited_handler([this](SwitchId id, const of::Message& msg) {
    if (const auto* fr = std::get_if<of::FlowRemoved>(&msg.body)) {
      removals_.push_back(RemovalRecord{id, *fr});
    }
    if (const auto* ps = std::get_if<of::PortStatus>(&msg.body)) {
      port_events_.push_back(PortEvent{id, *ps});
    }
  });
}

std::uint64_t FlowMonitor::total_packets(SwitchId id, const of::Match& filter) {
  const auto stats = network_.flow_stats_sync(id, filter);
  std::uint64_t total = 0;
  for (const auto& e : stats.entries) total += e.packet_count;
  return total;
}

std::uint64_t FlowMonitor::reported_active_rules(SwitchId id) {
  const auto stats = network_.table_stats_sync(id);
  std::uint64_t total = 0;
  for (const auto& e : stats.entries) total += e.active_count;
  return total;
}

}  // namespace tango::apps
