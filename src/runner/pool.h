// Deterministic parallel execution of independent jobs.
//
// run_indexed(n, workers, fn) evaluates fn(0..n-1) on a worker pool and
// returns the results ordered by job index — never by completion order.
// Determinism rests on two properties the caller must supply and one this
// pool guarantees:
//
//  * fn is a pure function of its index (the chaos/HA/tenant harnesses
//    are: each run builds a private Network, EventQueue, telemetry
//    registry and RNG from its spec);
//  * fn touches no shared mutable state (the one historical exception —
//    the process-wide transaction-id fallback counter — is atomic and
//    unused by any seeded harness, which pin their txn ids);
//  * the pool itself assigns jobs by an atomic fetch-add and writes each
//    result into its own pre-allocated slot, so scheduling order can vary
//    freely between runs and worker counts without the returned vector
//    changing in any byte.
//
// Consequently a sweep aggregated from these results is identical for 1,
// 2, or 64 workers — which is what tests/test_runner.cpp proves against
// the serial drivers, and what lets the nightly chaos sweep run parallel
// while spot-checking its fingerprint against a serial run.
//
// Exceptions: a throwing job does not tear down the pool; after all jobs
// finish, the exception of the lowest-indexed failing job is rethrown
// (again independent of scheduling).
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace tango::runner {

/// Worker count for `workers == 0`: the hardware concurrency, clamped to
/// [1, 16] (seed sweeps are CPU-bound; oversubscription buys nothing).
inline std::size_t default_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return 1;
  return hw > 16 ? 16 : hw;
}

template <typename Fn>
auto run_indexed(std::size_t n, std::size_t workers, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using R = decltype(fn(std::size_t{0}));
  if (workers == 0) workers = default_workers();

  std::vector<R> out;
  if (workers <= 1 || n <= 1) {
    // Serial path: no threads, no atomics — byte-identical by construction
    // and convenient under debuggers.
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(fn(i));
    return out;
  }

  std::vector<std::optional<R>> slots(n);
  std::vector<std::exception_ptr> errors(n);
  std::atomic<std::size_t> next{0};
  if (workers > n) workers = n;

  auto work = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        slots[i].emplace(fn(i));
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(work);
  for (auto& t : pool) t.join();

  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(std::move(*slots[i]));
  return out;
}

}  // namespace tango::runner
