// Seed-sweep engines shared by the soak tools, the differential test
// layer, and the bench drivers.
//
// Each engine expands a config into a job grid (identical to the loops
// the serial tools used to run), executes the jobs on runner::run_indexed
// — every job is a pure function building its own isolated world — and
// folds the results into a SweepOutcome *in job order*. The outcome
// carries everything the tools print or write: the RunReport (rows in
// grid order), the console narrative, and a sweep fingerprint folding
// every per-run fingerprint. None of it depends on the worker count:
// a sweep run with 1, 2, or 8 workers produces byte-identical JSON,
// byte-identical text, and the same sweep fingerprint — the property
// tests/test_runner.cpp enforces differentially.
//
// Wall-clock is the one deliberate exception: per-run wall_ms columns and
// the total-wall result key are nondeterministic by nature and therefore
// opt-in (SweepOptions::wall); the differential layer and the nightly
// serial-vs-parallel spot check keep it off.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "chaos/harness.h"
#include "chaos/schedule.h"
#include "telemetry/run_report.h"

namespace tango::runner {

struct SweepOptions {
  /// Pool width; 0 = runner::default_workers(), 1 = in-thread serial.
  std::size_t workers = 1;
  /// Surface per-run wall_ms columns and <prefix>.wall_ms results.
  bool wall = false;
  /// Include per-run "ok" lines in the narrative (FAIL lines are always
  /// included).
  bool verbose = false;
};

/// Grid config for the switch-fault chaos sweep and the controller-fault
/// (HA) sweep: seeds × workloads × policies, seed-major — the exact order
/// rows appear in the report.
struct ChaosSweepConfig {
  std::uint64_t seed_lo = 1;
  std::uint64_t seed_hi = 20;
  chaos::Horizon horizon = chaos::Horizon::kShort;
  std::vector<chaos::Workload> workloads = {
      chaos::Workload::kFig10, chaos::Workload::kTrafficEngineering,
      chaos::Workload::kAcl};
  std::vector<sched::RecoveryPolicy> policies = {
      sched::RecoveryPolicy::kRollForward, sched::RecoveryPolicy::kRollBack};
  bool misbehavior = false;
  /// Delta-debug violating schedules to minimal repro files (chaos only).
  bool shrink = true;
  /// Directory repro files land in; empty = don't write files.
  std::string out_dir = ".";
};

struct ServiceSweepConfig {
  std::uint64_t seed_lo = 1;
  std::uint64_t seed_hi = 20;
  std::uint32_t tenants = 3;
  std::uint32_t intents = 3;
  bool faults = true;
};

struct SweepOutcome {
  telemetry::RunReport report;
  /// Per-run console lines (ok/FAIL/shrunk/repro), job order, exactly the
  /// bytes the serial tools printed; tools fputs() it verbatim.
  std::string text;
  /// Abnormal-condition lines (unwritable repro files); tools print to
  /// stderr.
  std::string errors;
  std::size_t runs = 0;
  std::size_t violations = 0;
  std::size_t repros_written = 0;  // chaos sweep only
  std::size_t rollback_runs = 0;   // service sweep only
  /// FNV-1a fold of every per-run fingerprint in job order — one integer
  /// comparison proves two sweeps (e.g. serial vs parallel) identical.
  std::uint64_t sweep_fingerprint = chaos::kFnvOffsetBasis;
  /// Wall-clock of the whole sweep (around the pool), always measured.
  std::uint64_t total_wall_ns = 0;

  [[nodiscard]] bool ok() const { return violations == 0; }

  explicit SweepOutcome(std::string report_name)
      : report(std::move(report_name)) {}
};

/// Switch-side wire/misbehavior chaos sweep (report name CHAOS_soak).
SweepOutcome run_chaos_sweep(const ChaosSweepConfig& cfg,
                             const SweepOptions& opt);

/// Controller-fault sweep; scenario = seed % 5 (report name HA_soak).
SweepOutcome run_ha_sweep(const ChaosSweepConfig& cfg, const SweepOptions& opt);

/// Multi-tenant isolation sweep (report name SERVICE_soak).
SweepOutcome run_service_sweep(const ServiceSweepConfig& cfg,
                               const SweepOptions& opt);

}  // namespace tango::runner
