#include "runner/soak.h"

#include <chrono>
#include <cstdio>
#include <fstream>

#include "chaos/ha_harness.h"
#include "chaos/shrinker.h"
#include "chaos/tenant_isolation.h"
#include "runner/pool.h"

namespace tango::runner {

namespace {

/// printf into a std::string — the narrative must match the historical
/// tool output byte for byte, so it is built with the same formats.
template <typename... Args>
std::string format(const char* fmt, Args... args) {
  char buf[512];
  const int n = std::snprintf(buf, sizeof buf, fmt, args...);
  return std::string(buf, n < 0 ? 0 : static_cast<std::size_t>(n));
}

class SweepTimer {
 public:
  explicit SweepTimer(std::uint64_t& acc)
      : acc_(acc), begin_(std::chrono::steady_clock::now()) {}
  ~SweepTimer() {
    acc_ = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - begin_)
            .count());
  }

 private:
  std::uint64_t& acc_;
  std::chrono::steady_clock::time_point begin_;
};

struct GridJob {
  std::uint64_t seed = 0;
  chaos::Workload workload = chaos::Workload::kFig10;
  sched::RecoveryPolicy policy = sched::RecoveryPolicy::kRollForward;
};

/// Seed-major grid expansion — the row order of the serial tools.
std::vector<GridJob> expand_grid(const ChaosSweepConfig& cfg) {
  std::vector<GridJob> jobs;
  for (std::uint64_t seed = cfg.seed_lo; seed <= cfg.seed_hi; ++seed) {
    for (const auto workload : cfg.workloads) {
      for (const auto policy : cfg.policies) {
        jobs.push_back({seed, workload, policy});
      }
    }
  }
  return jobs;
}

}  // namespace

// ---------------------------------------------------------------------------
// Chaos (switch-fault) sweep
// ---------------------------------------------------------------------------

namespace {

/// Everything a chaos job produces; workers do no I/O and no aggregation —
/// both happen in the job-ordered collector loop below.
struct ChaosJobOut {
  GridJob job;
  std::size_t events = 0;
  std::vector<std::string> violation_lines;
  std::uint64_t fingerprint = 0;
  std::uint64_t makespan_ns = 0;
  std::uint64_t wall_ns = 0;
  bool ok = true;
  // Shrink products (violating runs only).
  bool shrunk = false;
  std::size_t orig_events = 0;
  std::size_t min_events = 0;
  std::size_t probes = 0;
  std::string repro_filename;  // joined with out_dir by the collector
  std::string repro_json;
};

ChaosJobOut run_chaos_job(const ChaosSweepConfig& cfg, const GridJob& job) {
  ChaosJobOut out;
  out.job = job;
  chaos::ChaosSpec spec;
  spec.seed = job.seed;
  spec.workload = job.workload;
  spec.policy = job.policy;
  spec.horizon = cfg.horizon;
  spec.misbehavior = cfg.misbehavior;
  const auto schedule = chaos::generate_schedule(spec);
  auto result = chaos::run_chaos(schedule);
  out.events = schedule.events.size();
  out.fingerprint = result.fingerprint;
  out.makespan_ns = static_cast<std::uint64_t>(result.report.exec.makespan.ns());
  out.wall_ns = result.wall_ns;
  out.ok = result.ok();
  if (out.ok) return out;

  for (const auto& v : result.violations) {
    out.violation_lines.push_back(chaos::to_string(v));
  }
  chaos::ChaosSchedule minimal = schedule;
  if (cfg.shrink) {
    const auto shrunk = chaos::shrink_schedule(
        schedule, [](const chaos::ChaosSchedule& candidate) {
          return !chaos::run_chaos(candidate).ok();
        });
    minimal = shrunk.schedule;
    out.shrunk = true;
    out.orig_events = schedule.events.size();
    out.min_events = minimal.events.size();
    out.probes = shrunk.probes;
    // Re-run the minimal schedule so the repro captures ITS fingerprint
    // and violations, not the original's.
    result = chaos::run_chaos(minimal);
  }
  out.repro_filename =
      "chaos_repro_seed" + std::to_string(job.seed) + "_" +
      chaos::to_string(job.workload) + "_" +
      (job.policy == sched::RecoveryPolicy::kRollForward ? "fwd" : "back") +
      ".json";
  out.repro_json = chaos::to_repro_json(minimal, result.fingerprint,
                                        result.violation_names());
  return out;
}

}  // namespace

SweepOutcome run_chaos_sweep(const ChaosSweepConfig& cfg,
                             const SweepOptions& opt) {
  SweepOutcome out("CHAOS_soak");
  const auto jobs = expand_grid(cfg);
  std::vector<ChaosJobOut> results;
  {
    SweepTimer timer(out.total_wall_ns);
    results = run_indexed(jobs.size(), opt.workers, [&](std::size_t i) {
      return run_chaos_job(cfg, jobs[i]);
    });
  }

  double wall_ms_sum = 0;
  for (const auto& r : results) {
    ++out.runs;
    chaos::fnv_fold(out.sweep_fingerprint, r.fingerprint);
    auto& row = out.report.add_row()
                    .col("seed", static_cast<double>(r.job.seed))
                    .col("workload", chaos::to_string(r.job.workload))
                    .col("policy", sched::to_string(r.job.policy))
                    .col("events", static_cast<double>(r.events))
                    .col("violations",
                         static_cast<double>(r.violation_lines.size()))
                    .col("makespan_ns", static_cast<double>(r.makespan_ns));
    const std::string label =
        "seed " + std::to_string(r.job.seed) + " " +
        chaos::to_string(r.job.workload) + "/" + sched::to_string(r.job.policy);
    if (r.ok) {
      if (opt.verbose) {
        out.text += format("ok    %s (%zu events, fp 0x%016llx)\n",
                           label.c_str(), r.events,
                           static_cast<unsigned long long>(r.fingerprint));
      }
    } else {
      ++out.violations;
      out.text += format("FAIL  %s: %zu violation(s)\n", label.c_str(),
                         r.violation_lines.size());
      for (const auto& v : r.violation_lines) {
        out.text += format("      %s\n", v.c_str());
      }
      if (r.shrunk) {
        out.text += format("      shrunk %zu -> %zu events in %zu probes\n",
                           r.orig_events, r.min_events, r.probes);
      }
      if (!cfg.out_dir.empty()) {
        const std::string path = cfg.out_dir + "/" + r.repro_filename;
        std::ofstream repro(path);
        if (repro) {
          repro << r.repro_json;
          ++out.repros_written;
          out.text += format("      repro written to %s\n", path.c_str());
          // Basename, not path: the repro sits next to the report, and the
          // report must stay byte-identical across output directories (the
          // nightly serial-vs-parallel spot-check diffs two different dirs).
          row.col("repro", r.repro_filename);
        } else {
          out.errors += format("chaos_soak: cannot write %s\n", path.c_str());
        }
      }
    }
    if (opt.wall) {
      const double ms = static_cast<double>(r.wall_ns) / 1e6;
      wall_ms_sum += ms;
      row.col("wall_ms", ms);
    }
  }

  out.report.set_result("chaos.runs", static_cast<double>(out.runs));
  out.report.set_result("chaos.violations",
                        static_cast<double>(out.violations));
  out.report.set_result("chaos.repros_written",
                        static_cast<double>(out.repros_written));
  out.report.set_result("chaos.horizon", chaos::to_string(cfg.horizon));
  out.report.set_result("chaos.misbehavior", cfg.misbehavior ? 1.0 : 0.0);
  out.report.set_result("chaos.seed_lo", static_cast<double>(cfg.seed_lo));
  out.report.set_result("chaos.seed_hi", static_cast<double>(cfg.seed_hi));
  out.report.set_result("chaos.sweep_fingerprint",
                        format("0x%016llx", static_cast<unsigned long long>(
                                                out.sweep_fingerprint)));
  if (opt.wall) {
    out.report.set_result("chaos.wall_ms", wall_ms_sum);
    out.report.set_result(
        "chaos.sweep_wall_ms",
        static_cast<double>(out.total_wall_ns) / 1e6);
  }
  return out;
}

// ---------------------------------------------------------------------------
// HA (controller-fault) sweep
// ---------------------------------------------------------------------------

namespace {

struct HaJobOut {
  GridJob job;
  chaos::ControllerFaultKind scenario{};
  std::vector<std::string> violation_lines;
  std::uint64_t fingerprint = 0;
  std::uint64_t failovers = 0;
  std::uint64_t stale_epoch_rejections = 0;
  double takeover_ms = 0;
  double replication_lag_ns = 0;
  std::uint64_t wall_ns = 0;
  bool ok = true;
};

HaJobOut run_ha_job(const ChaosSweepConfig& cfg, const GridJob& job) {
  HaJobOut out;
  out.job = job;
  chaos::HaChaosSpec spec;
  spec.seed = job.seed;
  spec.workload = job.workload;
  spec.policy = job.policy;
  spec.horizon = cfg.horizon;
  spec.scenario = chaos::scenario_of(job.seed);
  out.scenario = spec.scenario;
  const auto result = chaos::run_ha_chaos(spec);
  for (const auto& rep : result.takeovers) {
    out.takeover_ms = std::max(out.takeover_ms, rep.takeover_ms);
  }
  out.replication_lag_ns =
      static_cast<double>(result.standby.max_replication_lag.ns());
  out.failovers = result.ha.failover_count;
  out.stale_epoch_rejections = result.stale_epoch_rejections;
  out.fingerprint = result.fingerprint;
  out.wall_ns = result.wall_ns;
  out.ok = result.ok();
  if (!out.ok) {
    for (const auto& v : result.violations) {
      out.violation_lines.push_back(chaos::to_string(v));
    }
  }
  return out;
}

}  // namespace

SweepOutcome run_ha_sweep(const ChaosSweepConfig& cfg,
                          const SweepOptions& opt) {
  SweepOutcome out("HA_soak");
  const auto jobs = expand_grid(cfg);
  std::vector<HaJobOut> results;
  {
    SweepTimer timer(out.total_wall_ns);
    results = run_indexed(jobs.size(), opt.workers, [&](std::size_t i) {
      return run_ha_job(cfg, jobs[i]);
    });
  }

  std::uint64_t failovers = 0;
  std::uint64_t stale_rejections = 0;
  double takeover_ms_max = 0;
  double replication_lag_ns_max = 0;
  double wall_ms_sum = 0;
  for (const auto& r : results) {
    ++out.runs;
    chaos::fnv_fold(out.sweep_fingerprint, r.fingerprint);
    failovers += r.failovers;
    stale_rejections += r.stale_epoch_rejections;
    takeover_ms_max = std::max(takeover_ms_max, r.takeover_ms);
    replication_lag_ns_max =
        std::max(replication_lag_ns_max, r.replication_lag_ns);
    auto& row =
        out.report.add_row()
            .col("seed", static_cast<double>(r.job.seed))
            .col("workload", chaos::to_string(r.job.workload))
            .col("policy", sched::to_string(r.job.policy))
            .col("scenario", chaos::to_string(r.scenario))
            .col("failovers", static_cast<double>(r.failovers))
            .col("takeover_ms", r.takeover_ms)
            .col("replication_lag_ns", r.replication_lag_ns)
            .col("stale_epoch_rejections",
                 static_cast<double>(r.stale_epoch_rejections))
            .col("violations", static_cast<double>(r.violation_lines.size()));
    if (r.ok) {
      if (opt.verbose) {
        out.text += format(
            "ok    seed %llu %s/%s %s (fp 0x%016llx)\n",
            static_cast<unsigned long long>(r.job.seed),
            chaos::to_string(r.job.workload).c_str(),
            sched::to_string(r.job.policy).c_str(),
            chaos::to_string(r.scenario).c_str(),
            static_cast<unsigned long long>(r.fingerprint));
      }
    } else {
      ++out.violations;
      out.text += format("FAIL  seed %llu %s/%s %s: %zu violation(s)\n",
                         static_cast<unsigned long long>(r.job.seed),
                         chaos::to_string(r.job.workload).c_str(),
                         sched::to_string(r.job.policy).c_str(),
                         chaos::to_string(r.scenario).c_str(),
                         r.violation_lines.size());
      for (const auto& v : r.violation_lines) {
        out.text += format("      %s\n", v.c_str());
      }
    }
    if (opt.wall) {
      const double ms = static_cast<double>(r.wall_ns) / 1e6;
      wall_ms_sum += ms;
      row.col("wall_ms", ms);
    }
  }

  out.report.set_result("ha.runs", static_cast<double>(out.runs));
  out.report.set_result("ha.violations", static_cast<double>(out.violations));
  out.report.set_result("ha.failover_count", static_cast<double>(failovers));
  out.report.set_result("ha.takeover_ms_max", takeover_ms_max);
  out.report.set_result("ha.replication_lag_ns_max", replication_lag_ns_max);
  out.report.set_result("ha.stale_epoch_rejections",
                        static_cast<double>(stale_rejections));
  out.report.set_result("ha.horizon", chaos::to_string(cfg.horizon));
  out.report.set_result("ha.seed_lo", static_cast<double>(cfg.seed_lo));
  out.report.set_result("ha.seed_hi", static_cast<double>(cfg.seed_hi));
  out.report.set_result("ha.sweep_fingerprint",
                        format("0x%016llx", static_cast<unsigned long long>(
                                                out.sweep_fingerprint)));
  if (opt.wall) {
    out.report.set_result("ha.wall_ms", wall_ms_sum);
    out.report.set_result("ha.sweep_wall_ms",
                          static_cast<double>(out.total_wall_ns) / 1e6);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Service (multi-tenant isolation) sweep
// ---------------------------------------------------------------------------

namespace {

struct ServiceJobOut {
  std::uint64_t seed = 0;
  std::uint32_t tenants = 0;
  std::vector<std::string> violation_lines;
  std::uint64_t fingerprint = 0;
  std::size_t rollbacks = 0;
  std::size_t completed = 0;
  double fairness = 0;
  std::size_t max_concurrency = 0;
  std::uint64_t makespan_ns = 0;
  std::uint64_t wall_ns = 0;
  bool ok = true;
};

ServiceJobOut run_service_job(const ServiceSweepConfig& cfg,
                              std::uint64_t seed) {
  ServiceJobOut out;
  out.seed = seed;
  chaos::TenantChaosSpec spec;
  spec.seed = seed;
  spec.n_tenants = cfg.tenants;
  spec.intents_per_tenant = cfg.intents;
  spec.faults = cfg.faults;
  const auto result = chaos::run_tenant_chaos(spec);
  out.tenants = result.spec.n_tenants;
  out.fingerprint = result.fingerprint;
  out.rollbacks = result.rollbacks;
  out.completed = result.report.completed;
  out.fairness = result.report.fairness_index;
  out.max_concurrency = result.report.max_concurrency;
  out.makespan_ns = static_cast<std::uint64_t>(result.report.makespan.ns());
  out.wall_ns = result.wall_ns;
  out.ok = result.ok();
  if (!out.ok) {
    for (const auto& v : result.violations) {
      out.violation_lines.push_back(chaos::to_string(v));
    }
  }
  return out;
}

}  // namespace

SweepOutcome run_service_sweep(const ServiceSweepConfig& cfg,
                               const SweepOptions& opt) {
  SweepOutcome out("SERVICE_soak");
  const std::size_t n =
      cfg.seed_hi >= cfg.seed_lo ? cfg.seed_hi - cfg.seed_lo + 1 : 0;
  std::vector<ServiceJobOut> results;
  {
    SweepTimer timer(out.total_wall_ns);
    results = run_indexed(n, opt.workers, [&](std::size_t i) {
      return run_service_job(cfg, cfg.seed_lo + i);
    });
  }

  double wall_ms_sum = 0;
  for (const auto& r : results) {
    ++out.runs;
    chaos::fnv_fold(out.sweep_fingerprint, r.fingerprint);
    if (r.rollbacks > 0) ++out.rollback_runs;
    auto& row = out.report.add_row()
                    .col("seed", static_cast<double>(r.seed))
                    .col("tenants", static_cast<double>(r.tenants))
                    .col("violations",
                         static_cast<double>(r.violation_lines.size()))
                    .col("rollbacks", static_cast<double>(r.rollbacks))
                    .col("fairness", r.fairness)
                    .col("max_concurrency",
                         static_cast<double>(r.max_concurrency))
                    .col("makespan_ns", static_cast<double>(r.makespan_ns));
    if (r.ok) {
      if (opt.verbose) {
        out.text += format(
            "ok    seed %llu: %zu intents committed, %zu rollback(s), "
            "fairness %.3f, fp 0x%016llx\n",
            static_cast<unsigned long long>(r.seed), r.completed, r.rollbacks,
            r.fairness, static_cast<unsigned long long>(r.fingerprint));
      }
    } else {
      ++out.violations;
      out.text += format("FAIL  seed %llu: %zu violation(s)\n",
                         static_cast<unsigned long long>(r.seed),
                         r.violation_lines.size());
      for (const auto& v : r.violation_lines) {
        out.text += format("      %s\n", v.c_str());
      }
    }
    if (opt.wall) {
      const double ms = static_cast<double>(r.wall_ns) / 1e6;
      wall_ms_sum += ms;
      row.col("wall_ms", ms);
    }
  }

  out.report.set_result("service.runs", static_cast<double>(out.runs));
  out.report.set_result("service.violations",
                        static_cast<double>(out.violations));
  out.report.set_result("service.rollback_runs",
                        static_cast<double>(out.rollback_runs));
  out.report.set_result("service.tenants", static_cast<double>(cfg.tenants));
  out.report.set_result("service.faults", cfg.faults ? 1.0 : 0.0);
  out.report.set_result("service.seed_lo", static_cast<double>(cfg.seed_lo));
  out.report.set_result("service.seed_hi", static_cast<double>(cfg.seed_hi));
  out.report.set_result("service.sweep_fingerprint",
                        format("0x%016llx", static_cast<unsigned long long>(
                                                out.sweep_fingerprint)));
  if (opt.wall) {
    out.report.set_result("service.wall_ms", wall_ms_sum);
    out.report.set_result("service.sweep_wall_ms",
                          static_cast<double>(out.total_wall_ns) / 1e6);
  }
  return out;
}

}  // namespace tango::runner
