// Multi-tenant update intents (the service's unit of admission).
//
// An intent is one tenant's request for one transactional network update:
// a RequestDag plus the recovery policy to apply if it goes wrong. Tenants
// submit intents to the IntentService, which owns admission control
// (bounded per-tenant queues with typed rejections), coalescing (a queued
// intent superseded by a newer one with the same coalesce key collapses to
// the latest payload), conflict analysis, and fair concurrent dispatch.
#pragma once

#include <cstdint>
#include <string>

#include "scheduler/request.h"
#include "scheduler/transaction.h"

namespace tango::service {

using TenantId = std::uint32_t;

/// One tenant's update request, as submitted. The service assigns the
/// intent id; the tenant supplies everything else.
struct Intent {
  TenantId tenant = 0;
  sched::RequestDag dag;
  sched::RecoveryPolicy policy = sched::RecoveryPolicy::kRollForward;
  /// Non-zero: a queued (not yet dispatched) intent from the same tenant
  /// with the same key is superseded by this one — e.g. two TE
  /// re-allocations for the same path collapse to the latest. Zero: never
  /// coalesced.
  std::uint64_t coalesce_key = 0;
};

/// Why an intent was refused at the door. Admission failures are expected
/// operating conditions (backpressure), not errors — the caller defers and
/// resubmits once the tenant's queue drains.
enum class AdmitError {
  kNone = 0,
  /// The DAG has no requests; there is nothing to dispatch.
  kEmptyIntent,
  /// The tenant's bounded queue is at capacity and the intent carries no
  /// coalesce key matching a queued intent. Backpressure: defer, retry.
  kQueueFull,
  /// The control plane is between primaries (HA failover in progress):
  /// admission is closed until takeover reconciliation completes. Defer
  /// and resubmit, exactly like kQueueFull.
  kFailingOver,
};

std::string to_string(AdmitError e);

/// Outcome of IntentService::submit().
struct SubmitResult {
  AdmitError error = AdmitError::kNone;
  /// Service-assigned id (monotone per service); 0 on rejection.
  std::uint64_t intent_id = 0;
  /// True when admission replaced a queued intent with the same coalesce
  /// key instead of consuming a new queue slot.
  bool coalesced = false;

  [[nodiscard]] bool accepted() const { return error == AdmitError::kNone; }
};

}  // namespace tango::service
