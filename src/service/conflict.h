// Intent footprints and the conflict relation over them.
//
// A footprint is what an intent touches: per switch, the list of matches
// its requests write (or, for deletes, sweep). Two intents conflict when
// they touch a common switch AND any pair of their matches on that switch
// overlaps (of::Match::overlaps — shared packets exist). Rule-disjoint
// intents on the same switch do NOT conflict: transaction inverses are
// strict deletes / keyed restores, so concurrent commits and even a
// rollback cannot disturb each other's (match, priority) keys.
//
// Overlap, not key equality, is deliberately the conservative relation: a
// non-strict DELETE's filter sweeps every overlapping entry, and two
// overlapping ADDs at different priorities shadow each other — both are
// cross-tenant interference even though no rule key collides.
//
// The ConflictGraph tracks the footprints of currently-running intents;
// the dispatcher admits a candidate only when it is compatible with every
// running footprint (and with intents it already admitted this round).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "openflow/match.h"
#include "scheduler/request.h"

namespace tango::service {

/// Per-switch rule-space touched by one intent.
struct Footprint {
  std::map<SwitchId, std::vector<of::Match>> rules;

  [[nodiscard]] bool empty() const { return rules.empty(); }
  /// Switches touched (map keys, ascending).
  [[nodiscard]] std::vector<SwitchId> switches() const;
};

/// Compute the footprint of a DAG: every request contributes its match to
/// its location's list (ADD/MOD/DEL alike — a delete filter is rule-space
/// it sweeps).
Footprint footprint_of(const sched::RequestDag& dag);

/// True when the two intents cannot safely run concurrently: a shared
/// switch where some match of `a` overlaps some match of `b`.
bool conflicts(const Footprint& a, const Footprint& b);

/// Footprints of the currently-running intents, keyed by intent id.
class ConflictGraph {
 public:
  /// True when `candidate` conflicts with no tracked footprint.
  [[nodiscard]] bool compatible(const Footprint& candidate) const;

  void add(std::uint64_t intent_id, Footprint fp);
  void remove(std::uint64_t intent_id);

  [[nodiscard]] std::size_t size() const { return running_.size(); }

 private:
  std::map<std::uint64_t, Footprint> running_;
};

}  // namespace tango::service
