#include "service/conflict.h"

namespace tango::service {

std::vector<SwitchId> Footprint::switches() const {
  std::vector<SwitchId> out;
  out.reserve(rules.size());
  for (const auto& [sw, matches] : rules) out.push_back(sw);
  return out;
}

Footprint footprint_of(const sched::RequestDag& dag) {
  Footprint fp;
  for (std::size_t id = 0; id < dag.size(); ++id) {
    const auto& req = dag.request(id);
    fp.rules[req.location].push_back(req.match);
  }
  return fp;
}

bool conflicts(const Footprint& a, const Footprint& b) {
  // Walk the two sorted switch maps in lockstep; only shared switches can
  // conflict.
  auto ia = a.rules.begin();
  auto ib = b.rules.begin();
  while (ia != a.rules.end() && ib != b.rules.end()) {
    if (ia->first < ib->first) {
      ++ia;
    } else if (ib->first < ia->first) {
      ++ib;
    } else {
      for (const of::Match& ma : ia->second) {
        for (const of::Match& mb : ib->second) {
          if (ma.overlaps(mb)) return true;
        }
      }
      ++ia;
      ++ib;
    }
  }
  return false;
}

bool ConflictGraph::compatible(const Footprint& candidate) const {
  for (const auto& [id, fp] : running_) {
    if (conflicts(candidate, fp)) return false;
  }
  return true;
}

void ConflictGraph::add(std::uint64_t intent_id, Footprint fp) {
  running_.emplace(intent_id, std::move(fp));
}

void ConflictGraph::remove(std::uint64_t intent_id) {
  running_.erase(intent_id);
}

}  // namespace tango::service
