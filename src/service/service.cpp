#include "service/service.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/logging.h"

namespace tango::service {

std::string to_string(AdmitError e) {
  switch (e) {
    case AdmitError::kNone: return "none";
    case AdmitError::kEmptyIntent: return "empty-intent";
    case AdmitError::kQueueFull: return "queue-full";
    case AdmitError::kFailingOver: return "failing-over";
  }
  return "?";
}

namespace {

constexpr std::initializer_list<double> kMsBounds = {
    0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000};

/// Deterministic nearest-rank percentile over a sorted sample.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

}  // namespace

IntentService::IntentService(net::Network& network,
                             core::TangoController& controller,
                             ServiceOptions options)
    : network_(network), controller_(controller), options_(std::move(options)) {
  assert(options_.max_concurrent > 0);
  assert(options_.drr_quantum > 0);
}

SubmitResult IntentService::submit(Intent intent) {
  auto* tele = network_.telemetry();
  TenantStats& ts = report_.tenants[intent.tenant];
  ++ts.submitted;
  ++report_.submitted;
  if (tele != nullptr) tele->metrics.counter("service.submitted").inc();

  // Checked before anything else: during an HA failover the control plane
  // has no accepting primary, so admission is closed outright (no queue
  // slot is consumed — the tenant defers and resubmits after takeover).
  if (options_.admission_gate && !options_.admission_gate()) {
    ++ts.rejected;
    ++report_.rejected;
    if (tele != nullptr) {
      tele->metrics.counter("service.rejected_failing_over").inc();
    }
    return {AdmitError::kFailingOver, 0, false};
  }

  if (intent.dag.size() == 0) {
    ++ts.rejected;
    ++report_.rejected;
    if (tele != nullptr) {
      tele->metrics.counter("service.rejected_empty").inc();
    }
    return {AdmitError::kEmptyIntent, 0, false};
  }
  if (!saw_first_submit_) {
    saw_first_submit_ = true;
    first_submit_ = network_.now();
    idle_at_ = network_.now();
    last_transition_ = network_.now();
  }

  auto& queue = queues_[intent.tenant];
  if (options_.coalesce && intent.coalesce_key != 0) {
    for (Queued& slot : queue) {
      if (slot.intent.coalesce_key != intent.coalesce_key) continue;
      // Supersede in place: the slot keeps its queue position (the tenant
      // asked for this work first), the payload becomes the latest, and
      // the latency clock restarts — the old intent was never served.
      slot.fp = footprint_of(intent.dag);
      slot.cost = intent.dag.size();
      slot.intent = std::move(intent);
      slot.intent_id = next_intent_id_++;
      slot.submitted = network_.now();
      ++ts.coalesced;
      ++report_.coalesced;
      if (tele != nullptr) tele->metrics.counter("service.coalesced").inc();
      return {AdmitError::kNone, slot.intent_id, true};
    }
  }
  if (queue.size() >= options_.per_tenant_queue_cap) {
    ++ts.rejected;
    ++report_.rejected;
    if (tele != nullptr) {
      tele->metrics.counter("service.rejected_queue_full").inc();
    }
    return {AdmitError::kQueueFull, 0, false};
  }

  Queued item;
  item.intent_id = next_intent_id_++;
  item.fp = footprint_of(intent.dag);
  item.cost = intent.dag.size();
  item.submitted = network_.now();
  item.intent = std::move(intent);
  const std::uint64_t id = item.intent_id;
  queue.push_back(std::move(item));
  ++report_.admitted;
  report_.max_queue_depth = std::max(report_.max_queue_depth, queue.size());
  if (tele != nullptr) {
    tele->metrics.counter("service.admitted").inc();
    tele->metrics.gauge("service.queue_depth").set(static_cast<double>(queue.size()));
  }
  return {AdmitError::kNone, id, false};
}

std::size_t IntentService::queue_depth(TenantId tenant) const {
  const auto it = queues_.find(tenant);
  return it == queues_.end() ? 0 : it->second.size();
}

void IntentService::note_transition(std::size_t active_before) {
  const SimTime now = network_.now();
  const auto dt = static_cast<double>((now - last_transition_).ns());
  if (active_before > 0) {
    weighted_active_ns_ += dt * static_cast<double>(active_before);
    busy_ns_ += dt;
  }
  last_transition_ = now;
}

void IntentService::dispatch(Queued&& q, sched::UpdateScheduler& scheduler) {
  auto* tele = network_.telemetry();
  const SimTime decided = network_.now();
  const SimDuration wait = decided - q.submitted;
  TenantStats& ts = report_.tenants[q.intent.tenant];
  ++ts.dispatched;
  ++report_.dispatched;
  ts.total_queue_wait += wait;
  if (wait > ts.max_queue_wait) ts.max_queue_wait = wait;
  if (tele != nullptr) {
    tele->metrics.counter("service.dispatched").inc();
    tele->metrics.histogram("service.queue_wait_ms", kMsBounds)
        .observe(wait.ms());
    tele->trace.instant(
        "service", "dispatch", telemetry::TraceCollector::kControllerLane,
        decided,
        {telemetry::arg("tenant", std::uint64_t{q.intent.tenant}),
         telemetry::arg("intent", q.intent_id),
         telemetry::arg("cost", std::uint64_t{q.cost})});
  }

  sched::TransactionOptions topts = options_.txn;
  topts.policy = q.intent.policy;
  if (options_.txn_id_base != 0) {
    topts.txn_id =
        options_.txn_id_base + static_cast<std::uint32_t>(q.intent_id);
  }

  Active a;
  a.intent_id = q.intent_id;
  a.tenant = q.intent.tenant;
  a.cost = q.cost;
  a.submitted = q.submitted;
  a.dispatched = decided;
  note_transition(active_.size());
  running_.add(q.intent_id, std::move(q.fp));
  // Construction snapshots pre-state (pumps the shared queue — in-flight
  // commits advance meanwhile; footprint scoping keeps the images sound).
  a.txn = controller_.begin_update_concurrent(std::move(q.intent.dag),
                                              std::move(topts));
  a.txn->start_commit(scheduler);
  active_.push_back(std::move(a));
  report_.max_concurrency = std::max(report_.max_concurrency, active_.size());
  if (tele != nullptr) {
    tele->metrics.gauge("service.active").set(static_cast<double>(active_.size()));
  }
}

void IntentService::dispatch_round(sched::UpdateScheduler& scheduler) {
  for (;;) {
    // Rotating visit order: tenant ids >= cursor first, then wrap. The
    // deficits do the fairness; the rotation keeps tie-breaks from always
    // favouring the lowest tenant id.
    std::vector<TenantId> order;
    for (const auto& [t, q] : queues_) {
      if (!q.empty() && t >= rr_cursor_) order.push_back(t);
    }
    for (const auto& [t, q] : queues_) {
      if (!q.empty() && t < rr_cursor_) order.push_back(t);
    }
    if (order.empty()) return;

    bool dispatched_any = false;
    for (const TenantId t : order) {
      auto& queue = queues_[t];
      if (queue.empty()) continue;
      std::size_t& deficit = deficit_[t];
      deficit += options_.drr_quantum;
      while (!queue.empty() && active_.size() < options_.max_concurrent) {
        Queued& head = queue.front();
        if (deficit < head.cost) break;  // accrues; catches up next pass
        if (!running_.compatible(head.fp)) {
          // Head-of-line: per-tenant FIFO order is part of the contract,
          // so a conflicted head blocks its whole queue (the deficit keeps
          // accruing — the tenant catches up once the conflict drains).
          ++report_.conflict_blocks;
          if (auto* tele = network_.telemetry()) {
            tele->metrics.counter("service.conflict_blocks").inc();
          }
          break;
        }
        deficit -= head.cost;
        Queued taken = std::move(head);
        queue.pop_front();
        dispatch(std::move(taken), scheduler);
        dispatched_any = true;
      }
      if (queue.empty()) deficit = 0;
    }
    rr_cursor_ = order.front() + 1;

    if (active_.size() >= options_.max_concurrent) return;
    if (!dispatched_any) {
      // One more pass only helps if some compatible head is waiting purely
      // on deficit; conflicted heads need a completion, not another pass.
      bool starved = false;
      for (const auto& [t, q] : queues_) {
        if (q.empty()) continue;
        const auto d = deficit_.find(t);
        const std::size_t have = d == deficit_.end() ? 0 : d->second;
        if (have < q.front().cost && running_.compatible(q.front().fp)) {
          starved = true;
          break;
        }
      }
      if (!starved) return;
    }
  }
}

void IntentService::close_commit(Active a) {
  // The epilogue may pump the event queue (readback verification,
  // reconciliation) — in-flight commits advance meanwhile; they are polled
  // again on the next sweep.
  const sched::TransactionReport& rep = a.txn->finish_commit();
  note_transition(active_.size() + 1);
  running_.remove(a.intent_id);
  TenantStats& ts = report_.tenants[a.tenant];
  ++ts.completed;
  ++report_.completed;
  ts.requests_served += a.cost;
  if (!rep.committed) {
    ++ts.failed_commits;
    ++report_.failed_commits;
  }
  const SimDuration latency = network_.now() - a.submitted;
  ts.latency_ms.push_back(latency.ms());
  if (options_.on_commit) options_.on_commit(a.tenant, a.intent_id, rep);
  if (auto* tele = network_.telemetry()) {
    tele->metrics.counter("service.completed").inc();
    if (!rep.committed) {
      tele->metrics.counter("service.failed_commits").inc();
    }
    tele->metrics.histogram("service.intent_latency_ms", kMsBounds)
        .observe(latency.ms());
    tele->trace.span(
        "service", "intent", telemetry::TraceCollector::kControllerLane,
        a.dispatched, network_.now(),
        {telemetry::arg("tenant", std::uint64_t{a.tenant}),
         telemetry::arg("intent", a.intent_id),
         telemetry::arg("committed", rep.committed)});
    tele->metrics.gauge("service.active").set(static_cast<double>(active_.size()));
  }
}

bool IntentService::finish_done() {
  bool any = false;
  for (std::size_t i = 0; i < active_.size();) {
    if (!active_[i].txn->exec_done()) {
      ++i;
      continue;
    }
    Active a = std::move(active_[i]);
    active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
    close_commit(std::move(a));
    any = true;
  }
  return any;
}

void IntentService::run(sched::UpdateScheduler& scheduler) {
  dispatch_round(scheduler);
  while (!active_.empty()) {
    if (finish_done()) {
      dispatch_round(scheduler);
      continue;
    }
    if (!network_.events().step()) {
      // Queue drained with executions still open (possible only with the
      // executor's recovery layer disabled, under faults): close them
      // as-is — their reports account the stranded requests as lost.
      log::warn("service: event queue drained with " +
                std::to_string(active_.size()) + " commit(s) still open");
      while (!active_.empty() && !finish_done()) {
        Active a = std::move(active_.front());
        active_.erase(active_.begin());
        close_commit(std::move(a));
      }
      dispatch_round(scheduler);
    }
  }
  idle_at_ = network_.now();
}

const ServiceReport& IntentService::report() {
  for (auto& [tenant, ts] : report_.tenants) {
    std::sort(ts.latency_ms.begin(), ts.latency_ms.end());
    ts.latency_p50_ms = percentile(ts.latency_ms, 0.50);
    ts.latency_p95_ms = percentile(ts.latency_ms, 0.95);
    ts.latency_p99_ms = percentile(ts.latency_ms, 0.99);
  }

  // Jain's fairness index over per-tenant service received.
  double sum = 0;
  double sum_sq = 0;
  std::size_t n = 0;
  for (const auto& [tenant, ts] : report_.tenants) {
    if (ts.submitted == 0) continue;
    const auto x = static_cast<double>(ts.requests_served);
    sum += x;
    sum_sq += x * x;
    ++n;
  }
  report_.fairness_index =
      (n == 0 || sum_sq == 0) ? 1.0
                              : (sum * sum) / (static_cast<double>(n) * sum_sq);
  report_.avg_concurrency = busy_ns_ > 0 ? weighted_active_ns_ / busy_ns_ : 0;
  report_.makespan = saw_first_submit_ ? idle_at_ - first_submit_ : SimDuration{};

  if (auto* tele = network_.telemetry()) {
    auto& reg = tele->metrics;
    reg.gauge("service.fairness_index").set(report_.fairness_index);
    reg.gauge("service.avg_concurrency").set(report_.avg_concurrency);
    reg.gauge("service.max_concurrency")
        .set(static_cast<double>(report_.max_concurrency));
    reg.gauge("service.max_queue_depth")
        .set(static_cast<double>(report_.max_queue_depth));
  }
  return report_;
}

}  // namespace tango::service
