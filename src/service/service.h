// Multi-tenant intent service: admission, conflict-aware concurrent
// dispatch, and fairness (the control-plane frontend).
//
// Tenants submit update intents; the service owns everything between
// submission and commit:
//
//  * Admission — one bounded FIFO queue per tenant. A full queue rejects
//    with a typed error (backpressure: the tenant defers and resubmits);
//    an intent carrying a coalesce key collapses onto a queued intent with
//    the same key instead of consuming a slot (two TE re-allocations for
//    the same path collapse to the latest payload).
//  * Conflict analysis — each intent's footprint (switches touched + the
//    matches written per switch) enters a ConflictGraph; intents run
//    concurrently iff no footprints overlap (of::Match::overlaps on shared
//    switches). Only true conflicts serialize.
//  * Fair dispatch — deficit round-robin across tenants, costed in DAG
//    requests: each pass a tenant's deficit grows by the quantum and its
//    queue HEAD dispatches when the deficit covers the head's cost (heads
//    only: per-tenant FIFO order is preserved). A head blocked by a
//    conflict leaves its deficit accruing, so the tenant catches up once
//    the conflicting commit drains.
//  * Execution — each dispatched intent becomes a footprint-scoped
//    transaction (TangoController::begin_update_concurrent) driven through
//    the phased commit (start_commit / finish_commit); run() owns the one
//    top-level event-queue pump that interleaves all in-flight commits in
//    virtual time.
//
// Everything is deterministic: tenants are visited in rotating id order,
// completions are polled in dispatch order, and no wall clock exists.
//
// ServiceReport aggregates per-tenant latency percentiles, queueing delay,
// coalesce/rejection tallies, achieved concurrency, and Jain's fairness
// index over per-tenant service; the same tallies stream into the
// telemetry registry under "service.*" (docs/SERVICE.md has the schema).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "service/conflict.h"
#include "service/intent.h"
#include "tango/tango.h"

namespace tango::service {

struct ServiceOptions {
  /// Queue slots per tenant; a submit beyond this is rejected (kQueueFull)
  /// unless it coalesces onto a queued intent.
  std::size_t per_tenant_queue_cap = 16;
  /// Transactions in flight at once (across all tenants).
  std::size_t max_concurrent = 8;
  /// DRR quantum, in DAG requests per tenant per pass. Tenants with
  /// cheaper intents dispatch more of them per round; a big intent waits
  /// for its deficit to accrue.
  std::size_t drr_quantum = 4;
  /// Collapse queued same-tenant intents that share a coalesce key.
  bool coalesce = true;
  /// Template for every dispatched transaction; policy comes from the
  /// intent and txn_id from txn_id_base.
  sched::TransactionOptions txn;
  /// Non-zero: intent i commits as txn_id_base + i (reproducible cookies
  /// across runs in one process — the process-wide counter would drift).
  /// Zero: ids draw from the process-wide counter.
  std::uint32_t txn_id_base = 0;
  /// When set and returning false, submit() rejects with kFailingOver
  /// before consuming a queue slot — HA wires HaController::admission_gate
  /// here so intents are refused while a takeover is reconciling. Unset =
  /// always open.
  std::function<bool()> admission_gate;
  /// Fires once per completed intent, right after its commit epilogue, with
  /// the final transaction report. Oracles and soak harnesses attribute
  /// per-intent outcomes (committed / rolled back) through this.
  std::function<void(TenantId, std::uint64_t intent_id,
                     const sched::TransactionReport&)>
      on_commit;
};

/// Per-tenant service accounting (ServiceReport::tenants).
struct TenantStats {
  std::size_t submitted = 0;
  std::size_t rejected = 0;
  std::size_t coalesced = 0;
  std::size_t dispatched = 0;
  std::size_t completed = 0;
  /// Commits whose transaction did not reach the policy's end state.
  std::size_t failed_commits = 0;
  /// DAG requests in completed intents — the fairness index's unit.
  std::size_t requests_served = 0;
  /// Submit -> dispatch wait (service-side queueing).
  SimDuration total_queue_wait{};
  SimDuration max_queue_wait{};
  /// Submit -> commit-finished, one sample per completed intent (ms).
  std::vector<double> latency_ms;
  /// Deterministic percentiles over latency_ms, filled by report().
  double latency_p50_ms = 0;
  double latency_p95_ms = 0;
  double latency_p99_ms = 0;
};

struct ServiceReport {
  std::size_t submitted = 0;
  std::size_t admitted = 0;
  std::size_t rejected = 0;
  std::size_t coalesced = 0;
  std::size_t dispatched = 0;
  std::size_t completed = 0;
  std::size_t failed_commits = 0;
  /// Dispatch attempts refused because the head conflicted with a running
  /// intent (each blocked pass counts once).
  std::size_t conflict_blocks = 0;
  std::size_t max_queue_depth = 0;
  /// Peak transactions in flight at once.
  std::size_t max_concurrency = 0;
  /// Time-weighted mean of in-flight transactions over busy (>= 1 active)
  /// virtual time.
  double avg_concurrency = 0;
  /// Jain's index over per-tenant requests_served: (Σx)² / (n·Σx²), 1.0 =
  /// perfectly even service, 1/n = one tenant got everything. Tenants that
  /// submitted nothing are excluded.
  double fairness_index = 1.0;
  /// First submit -> all queues drained, in virtual time.
  SimDuration makespan{};
  std::map<TenantId, TenantStats> tenants;
};

class IntentService {
 public:
  IntentService(net::Network& network, core::TangoController& controller,
                ServiceOptions options = {});

  /// Admission: enqueue (or coalesce) the intent, or reject with a typed
  /// error. Never touches the network.
  SubmitResult submit(Intent intent);

  /// Dispatch + pump until every queue is empty and every in-flight commit
  /// finished. Callers may interleave submit() and run() phases; latency
  /// accounting spans runs.
  void run(sched::UpdateScheduler& scheduler);

  [[nodiscard]] std::size_t queue_depth(TenantId tenant) const;
  [[nodiscard]] std::size_t active_count() const { return active_.size(); }

  /// Finalize percentiles/fairness and publish the "service.*" gauges;
  /// cheap to call repeatedly (recomputed from the running tallies).
  const ServiceReport& report();

 private:
  struct Queued {
    std::uint64_t intent_id = 0;
    Intent intent;
    Footprint fp;
    std::size_t cost = 0;  // DAG requests
    SimTime submitted{};
  };
  struct Active {
    std::uint64_t intent_id = 0;
    TenantId tenant = 0;
    std::size_t cost = 0;
    SimTime submitted{};
    SimTime dispatched{};
    std::unique_ptr<sched::UpdateTransaction> txn;
  };

  /// One DRR sweep: keep making passes over the tenants until a full pass
  /// dispatches nothing and no head is merely deficit-starved.
  void dispatch_round(sched::UpdateScheduler& scheduler);
  void dispatch(Queued&& q, sched::UpdateScheduler& scheduler);
  /// finish_commit() every in-flight transaction whose execution drained,
  /// in dispatch order. Returns true when any finished.
  bool finish_done();
  /// Run one commit's epilogue and account its completion. The Active must
  /// already be removed from active_.
  void close_commit(Active a);
  /// Concurrency accounting at every active-set transition.
  void note_transition(std::size_t active_before);

  net::Network& network_;
  core::TangoController& controller_;
  ServiceOptions options_;

  std::map<TenantId, std::deque<Queued>> queues_;
  std::map<TenantId, std::size_t> deficit_;
  std::vector<Active> active_;
  ConflictGraph running_;
  /// Rotating DRR start position (tenant ids >= cursor go first).
  TenantId rr_cursor_ = 0;

  std::uint64_t next_intent_id_ = 1;
  bool saw_first_submit_ = false;
  SimTime first_submit_{};
  SimTime idle_at_{};
  SimTime last_transition_{};
  /// Σ active_count · dt and Σ dt over busy time, for avg_concurrency.
  double weighted_active_ns_ = 0;
  double busy_ns_ = 0;

  ServiceReport report_;
};

}  // namespace tango::service
