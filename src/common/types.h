// Core strong types shared across the Tango reproduction: simulated time,
// durations, and identifier types.
//
// All simulation time is kept in integer nanoseconds to make event ordering
// deterministic and comparisons exact; helpers convert to/from human units.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace tango {

/// A span of simulated time, in integer nanoseconds.
class SimDuration {
 public:
  constexpr SimDuration() = default;
  constexpr explicit SimDuration(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const SimDuration&) const = default;

  constexpr SimDuration operator+(SimDuration o) const { return SimDuration{ns_ + o.ns_}; }
  constexpr SimDuration operator-(SimDuration o) const { return SimDuration{ns_ - o.ns_}; }
  constexpr SimDuration& operator+=(SimDuration o) { ns_ += o.ns_; return *this; }
  constexpr SimDuration& operator-=(SimDuration o) { ns_ -= o.ns_; return *this; }
  constexpr SimDuration operator*(std::int64_t k) const { return SimDuration{ns_ * k}; }
  constexpr SimDuration operator/(std::int64_t k) const { return SimDuration{ns_ / k}; }

 private:
  std::int64_t ns_ = 0;
};

/// An instant of simulated time (nanoseconds since simulation start).
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimDuration d) const { return SimTime{ns_ + d.ns()}; }
  constexpr SimTime& operator+=(SimDuration d) { ns_ += d.ns(); return *this; }
  constexpr SimDuration operator-(SimTime o) const { return SimDuration{ns_ - o.ns_}; }

 private:
  std::int64_t ns_ = 0;
};

constexpr SimDuration nanos(std::int64_t v) { return SimDuration{v}; }
constexpr SimDuration micros(double v) { return SimDuration{static_cast<std::int64_t>(v * 1e3)}; }
constexpr SimDuration millis(double v) { return SimDuration{static_cast<std::int64_t>(v * 1e6)}; }
constexpr SimDuration seconds(double v) { return SimDuration{static_cast<std::int64_t>(v * 1e9)}; }

/// Identifier of a switch in the simulated network (OpenFlow datapath id).
using SwitchId = std::uint64_t;

/// Identifier of a port on a switch.
using PortId = std::uint32_t;

/// Monotone id for installed flows / probe flows used by the inference engine.
using FlowId = std::uint64_t;

/// Human-readable rendering like "12.5ms" / "3.2s" for reports.
std::string format_duration(SimDuration d);

}  // namespace tango
