#include "common/logging.h"

namespace tango::log {

Level& threshold() {
  static Level level = Level::kWarn;
  return level;
}

void write(Level level, const std::string& msg) {
  if (level < threshold()) return;
  const char* tag = "?";
  switch (level) {
    case Level::kDebug: tag = "DEBUG"; break;
    case Level::kInfo: tag = "INFO"; break;
    case Level::kWarn: tag = "WARN"; break;
    case Level::kError: tag = "ERROR"; break;
    case Level::kOff: return;
  }
  std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
}

}  // namespace tango::log
