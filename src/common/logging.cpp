#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <algorithm>
#include <mutex>
#include <string_view>
#include <utility>
#include <vector>

namespace tango::log {

namespace {

std::atomic<Level>& threshold_storage() {
  static std::atomic<Level> level{Level::kWarn};
  return level;
}

/// Sink storage: swapped under a mutex, read as a shared_ptr copy so a
/// writer replacing the sink never races a logger mid-call.
struct SinkSlot {
  std::mutex mu;
  std::shared_ptr<const Sink> sink;
};

SinkSlot& sink_slot() {
  static SinkSlot slot;
  return slot;
}

std::shared_ptr<const Sink> current_sink() {
  auto& slot = sink_slot();
  std::lock_guard lock(slot.mu);
  return slot.sink;
}

/// Rate-limiter state: per-key line counts plus the level of the last
/// suppressed line (summaries inherit it so a capped WARN storm still
/// surfaces as WARN).
struct RateLimiter {
  std::mutex mu;
  std::size_t max_per_key = 0;  // 0 = off
  struct KeyState {
    std::size_t emitted = 0;
    std::size_t suppressed = 0;
    Level level = Level::kInfo;
  };
  std::map<std::string, KeyState, std::less<>> keys;
};

RateLimiter& rate_limiter() {
  static RateLimiter limiter;
  return limiter;
}

std::string_view key_of(const std::string& msg) {
  const auto colon = msg.find(':');
  const auto cut = colon == std::string::npos ? std::size_t{24} : colon;
  return std::string_view(msg).substr(0, std::min(cut, msg.size()));
}

/// True when the line should be dropped (budget for its key exhausted).
bool rate_limited(Level level, const std::string& msg) {
  auto& limiter = rate_limiter();
  std::lock_guard lock(limiter.mu);
  if (limiter.max_per_key == 0) return false;
  const auto key = key_of(msg);
  auto it = limiter.keys.find(key);
  if (it == limiter.keys.end()) {
    it = limiter.keys.emplace(std::string(key), RateLimiter::KeyState{}).first;
  }
  auto& state = it->second;
  if (state.emitted < limiter.max_per_key) {
    ++state.emitted;
    return false;
  }
  ++state.suppressed;
  state.level = level;
  return true;
}

void emit(Level level, const std::string& msg) {
  if (const auto sink = current_sink()) {
    (*sink)(level, msg);
    return;
  }
  default_sink(level, msg);
}

}  // namespace

Level threshold() {
  return threshold_storage().load(std::memory_order_relaxed);
}

void set_threshold(Level level) {
  threshold_storage().store(level, std::memory_order_relaxed);
}

void set_sink(Sink sink) {
  auto& slot = sink_slot();
  std::lock_guard lock(slot.mu);
  slot.sink = sink ? std::make_shared<const Sink>(std::move(sink)) : nullptr;
}

void default_sink(Level level, const std::string& msg) {
  const char* tag = "?";
  switch (level) {
    case Level::kDebug: tag = "DEBUG"; break;
    case Level::kInfo: tag = "INFO"; break;
    case Level::kWarn: tag = "WARN"; break;
    case Level::kError: tag = "ERROR"; break;
    case Level::kOff: return;
  }
  std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
}

std::size_t set_rate_limit(std::size_t max_per_key) {
  std::size_t previous = 0;
  {
    auto& limiter = rate_limiter();
    std::lock_guard lock(limiter.mu);
    previous = limiter.max_per_key;
    limiter.max_per_key = max_per_key;
    if (max_per_key != 0) return previous;
  }
  flush_suppressed();  // turning the limiter off must not swallow counts
  return previous;
}

void flush_suppressed() {
  // Collect under the lock, emit outside it — a sink may log.
  std::vector<std::pair<std::string, RateLimiter::KeyState>> pending;
  {
    auto& limiter = rate_limiter();
    std::lock_guard lock(limiter.mu);
    for (auto& [key, state] : limiter.keys) {
      if (state.suppressed > 0) pending.emplace_back(key, state);
    }
    limiter.keys.clear();
  }
  for (const auto& [key, state] : pending) {
    emit(state.level, key + ": suppressed " +
                          std::to_string(state.suppressed) + " similar lines");
  }
}

void write(Level level, const std::string& msg) {
  if (level == Level::kOff || level < threshold()) return;
  if (rate_limited(level, msg)) return;
  emit(level, msg);
}

}  // namespace tango::log
