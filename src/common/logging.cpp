#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>

namespace tango::log {

namespace {

std::atomic<Level>& threshold_storage() {
  static std::atomic<Level> level{Level::kWarn};
  return level;
}

/// Sink storage: swapped under a mutex, read as a shared_ptr copy so a
/// writer replacing the sink never races a logger mid-call.
struct SinkSlot {
  std::mutex mu;
  std::shared_ptr<const Sink> sink;
};

SinkSlot& sink_slot() {
  static SinkSlot slot;
  return slot;
}

std::shared_ptr<const Sink> current_sink() {
  auto& slot = sink_slot();
  std::lock_guard lock(slot.mu);
  return slot.sink;
}

}  // namespace

Level threshold() {
  return threshold_storage().load(std::memory_order_relaxed);
}

void set_threshold(Level level) {
  threshold_storage().store(level, std::memory_order_relaxed);
}

void set_sink(Sink sink) {
  auto& slot = sink_slot();
  std::lock_guard lock(slot.mu);
  slot.sink = sink ? std::make_shared<const Sink>(std::move(sink)) : nullptr;
}

void default_sink(Level level, const std::string& msg) {
  const char* tag = "?";
  switch (level) {
    case Level::kDebug: tag = "DEBUG"; break;
    case Level::kInfo: tag = "INFO"; break;
    case Level::kWarn: tag = "WARN"; break;
    case Level::kError: tag = "ERROR"; break;
    case Level::kOff: return;
  }
  std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
}

void write(Level level, const std::string& msg) {
  if (level == Level::kOff || level < threshold()) return;
  if (const auto sink = current_sink()) {
    (*sink)(level, msg);
    return;
  }
  default_sink(level, msg);
}

}  // namespace tango::log
