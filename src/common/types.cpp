#include "common/types.h"

#include <cstdio>

namespace tango {

std::string format_duration(SimDuration d) {
  char buf[64];
  const double ns = static_cast<double>(d.ns());
  if (ns < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fus", ns / 1e3);
  } else if (ns < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.3fms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", ns / 1e9);
  }
  return buf;
}

}  // namespace tango
