// Minimal Result<T> type: either a value or an error message.
//
// The controller <-> switch paths report recoverable failures (e.g. a switch
// rejecting a flow_mod because its TCAM is full) as values, not exceptions,
// because those failures are *signal* to the inference algorithms.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace tango {

struct Error {
  std::string message;
};

template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}             // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}         // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] const std::string& error() const {
    assert(!ok());
    return std::get<Error>(data_).message;
  }

 private:
  std::variant<T, Error> data_;
};

}  // namespace tango
