// Tiny leveled logger. Off by default above WARN so tests and benches stay
// quiet; examples flip the level to INFO to narrate what they do.
//
// The threshold is atomic (components may log from anywhere, and nothing
// here may become a data race when the simulator grows threads), and output
// goes through a pluggable sink so telemetry can tee log lines into the
// trace alongside the default stderr printer.
#pragma once

#include <functional>
#include <string>

namespace tango::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

[[nodiscard]] Level threshold();
void set_threshold(Level level);

/// Where formatted lines go once they pass the threshold. Sinks receive the
/// raw message (no level tag); `level` is always below kOff.
using Sink = std::function<void(Level level, const std::string& msg)>;

/// Replace the output sink; an empty function restores the default stderr
/// printer. Returns nothing on purpose — compose by capturing the previous
/// behaviour explicitly (see telemetry::tee_log_sink).
void set_sink(Sink sink);

/// The default stderr printer ("[WARN] msg"), usable from custom sinks.
void default_sink(Level level, const std::string& msg);

void write(Level level, const std::string& msg);

inline void debug(const std::string& msg) { write(Level::kDebug, msg); }
inline void info(const std::string& msg) { write(Level::kInfo, msg); }
inline void warn(const std::string& msg) { write(Level::kWarn, msg); }
inline void error(const std::string& msg) { write(Level::kError, msg); }

}  // namespace tango::log
