// Tiny leveled logger. Off by default above WARN so tests and benches stay
// quiet; examples flip the level to INFO to narrate what they do.
//
// The threshold is atomic (components may log from anywhere, and nothing
// here may become a data race when the simulator grows threads), and output
// goes through a pluggable sink so telemetry can tee log lines into the
// trace alongside the default stderr printer.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

namespace tango::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

[[nodiscard]] Level threshold();
void set_threshold(Level level);

/// Where formatted lines go once they pass the threshold. Sinks receive the
/// raw message (no level tag); `level` is always below kOff.
using Sink = std::function<void(Level level, const std::string& msg)>;

/// Replace the output sink; an empty function restores the default stderr
/// printer. Returns nothing on purpose — compose by capturing the previous
/// behaviour explicitly (see telemetry::tee_log_sink).
void set_sink(Sink sink);

/// The default stderr printer ("[WARN] msg"), usable from custom sinks.
void default_sink(Level level, const std::string& msg);

/// Rate limiting for fault storms: at most `max_per_key` lines per message
/// key reach the sink; further lines are counted, not printed. The key is
/// the message prefix up to the first ':' (or the first 24 characters), so
/// "channel: agent crashed..." lines share one budget regardless of their
/// varying suffixes. 0 disables limiting and flushes pending suppression
/// counts. Returns the previous cap.
std::size_t set_rate_limit(std::size_t max_per_key);

/// Emit one "suppressed N similar lines" summary per capped key (at the
/// key's own level) and reset all per-key counts. Idempotent when nothing
/// was suppressed. Call at quiescent points (end of a chaos run / soak
/// iteration) so bounded logs still account for every event.
void flush_suppressed();

void write(Level level, const std::string& msg);

inline void debug(const std::string& msg) { write(Level::kDebug, msg); }
inline void info(const std::string& msg) { write(Level::kInfo, msg); }
inline void warn(const std::string& msg) { write(Level::kWarn, msg); }
inline void error(const std::string& msg) { write(Level::kError, msg); }

}  // namespace tango::log
