// Tiny leveled logger. Off by default above WARN so tests and benches stay
// quiet; examples flip the level to INFO to narrate what they do.
#pragma once

#include <cstdio>
#include <string>

namespace tango::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

Level& threshold();

void write(Level level, const std::string& msg);

inline void debug(const std::string& msg) { write(Level::kDebug, msg); }
inline void info(const std::string& msg) { write(Level::kInfo, msg); }
inline void warn(const std::string& msg) { write(Level::kWarn, msg); }
inline void error(const std::string& msg) { write(Level::kError, msg); }

}  // namespace tango::log
