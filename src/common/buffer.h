// Big-endian (network byte order) byte buffer writer/reader used by the
// OpenFlow wire codec. Bounds-checked: reads past the end set an error flag
// instead of invoking undefined behaviour, so malformed frames are rejected.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace tango {

class BufWriter {
 public:
  /// Owned mode: writes into an internal vector retrievable with take().
  BufWriter() : out_(&owned_) {}

  /// External-storage mode: appends to `out` starting at its current end.
  /// Offsets (size(), patch_u16()) are relative to that starting point, so
  /// codec code is oblivious to whether it writes a fresh frame or appends
  /// one to a batch buffer. The caller keeps ownership; take() is invalid.
  explicit BufWriter(std::vector<std::uint8_t>& out)
      : out_(&out), base_(out.size()) {}

  void u8(std::uint8_t v) { out_->push_back(v); }
  void u16(std::uint16_t v) {
    out_->push_back(static_cast<std::uint8_t>(v >> 8));
    out_->push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void raw(std::span<const std::uint8_t> data) {
    out_->insert(out_->end(), data.begin(), data.end());
  }
  void zeros(std::size_t n) { out_->insert(out_->end(), n, 0); }

  /// Overwrite a previously written big-endian u16 at `offset` (for length
  /// fields that are only known once the body has been written). Relative
  /// to this writer's first byte, not the external buffer's start.
  void patch_u16(std::size_t offset, std::uint16_t v) {
    (*out_)[base_ + offset] = static_cast<std::uint8_t>(v >> 8);
    (*out_)[base_ + offset + 1] = static_cast<std::uint8_t>(v);
  }

  /// Bytes written through this writer (excludes pre-existing bytes of an
  /// external buffer).
  [[nodiscard]] std::size_t size() const { return out_->size() - base_; }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return owned_; }
  std::vector<std::uint8_t> take() { return std::move(owned_); }

 private:
  std::vector<std::uint8_t> owned_;
  std::vector<std::uint8_t>* out_;
  std::size_t base_ = 0;
};

class BufReader {
 public:
  explicit BufReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return ok(1) ? data_[pos_++] : fail(); }
  std::uint16_t u16() {
    if (!ok(2)) return fail();
    const std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    const auto hi = static_cast<std::uint32_t>(u16());
    return (hi << 16) | u16();
  }
  std::uint64_t u64() {
    const auto hi = static_cast<std::uint64_t>(u32());
    return (hi << 32) | u32();
  }
  void skip(std::size_t n) {
    if (ok(n)) pos_ += n; else fail();
  }
  std::span<const std::uint8_t> raw(std::size_t n) {
    if (!ok(n)) { fail(); return {}; }
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] bool failed() const { return failed_; }

 private:
  bool ok(std::size_t n) const { return !failed_ && pos_ + n <= data_.size(); }
  std::uint8_t fail() {
    failed_ = true;
    return 0;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace tango
