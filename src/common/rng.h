// Deterministic random number generation for simulation and workloads.
//
// Every component that needs randomness takes an Rng& so experiments are
// reproducible from a single seed.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <random>
#include <vector>

namespace tango {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x7a4f00d5eedULL) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) { return std::bernoulli_distribution(p)(engine_); }

  /// Index in [0, n).
  std::size_t index(std::size_t n) {
    assert(n > 0);
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  /// A random permutation of 0..n-1.
  std::vector<std::size_t> permutation(std::size_t n) {
    std::vector<std::size_t> p(n);
    for (std::size_t i = 0; i < n; ++i) p[i] = i;
    shuffle(p);
    return p;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tango
