// Rule-dependency analysis and priority assignment (Maple-style, paper [23]).
//
// In a first-match-wins ACL, whenever two rules overlap, the earlier-listed
// rule must carry strictly higher priority in an OpenFlow table. The
// dependency graph has an edge i -> j for every overlapping pair with
// i earlier than j. From it we derive:
//
//  * Topological priorities — the minimum number of distinct priority
//    values: rules on the same layer of the longest-path layering share one
//    value (Table 2's "Topological Priorities" column), and
//  * R priorities — a 1-1 assignment (one distinct value per rule) that
//    still satisfies every constraint (Table 2's "R Priorities").
#pragma once

#include <cstddef>
#include <vector>

#include "workload/classbench.h"

namespace tango::workload {

class RuleDag {
 public:
  /// Build the overlap-dependency DAG of an ACL (O(n^2) overlap tests).
  static RuleDag build(const std::vector<AclRule>& rules);

  [[nodiscard]] std::size_t size() const { return succs_.size(); }
  [[nodiscard]] const std::vector<std::size_t>& successors(std::size_t i) const {
    return succs_[i];
  }
  [[nodiscard]] std::size_t edge_count() const { return edges_; }

  /// Longest-chain length == number of distinct topological priorities.
  [[nodiscard]] std::size_t depth() const;

  /// Per-rule layer: layer(i) = longest overlap chain starting at i going
  /// toward later rules. priority(i) = layer(i) satisfies all constraints
  /// with depth() distinct values.
  [[nodiscard]] std::vector<std::size_t> layers() const;

  /// Topological priorities: value = base + step * layer.
  [[nodiscard]] std::vector<std::uint16_t> topological_priorities(
      std::uint16_t base = 100, std::uint16_t step = 1) const;

  /// R priorities: distinct value per rule, constraint-consistent.
  [[nodiscard]] std::vector<std::uint16_t> r_priorities(std::uint16_t base = 100) const;

  /// Count of distinct values in an assignment (Table 2 columns).
  static std::size_t distinct_count(const std::vector<std::uint16_t>& priorities);

 private:
  std::vector<std::vector<std::size_t>> succs_;
  std::size_t edges_ = 0;
  mutable std::vector<std::size_t> layer_cache_;
};

}  // namespace tango::workload
