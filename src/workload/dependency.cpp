#include "workload/dependency.h"

#include <algorithm>
#include <numeric>
#include <set>

namespace tango::workload {

RuleDag RuleDag::build(const std::vector<AclRule>& rules) {
  RuleDag dag;
  const std::size_t n = rules.size();
  dag.succs_.assign(n, {});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rules[i].match.overlaps(rules[j].match)) {
        dag.succs_[i].push_back(j);
        ++dag.edges_;
      }
    }
  }
  return dag;
}

std::vector<std::size_t> RuleDag::layers() const {
  if (layer_cache_.size() == succs_.size() && !succs_.empty()) return layer_cache_;
  const std::size_t n = succs_.size();
  std::vector<std::size_t> layer(n, 0);
  // Edges always point forward (i < j), so a reverse index scan is a
  // topological order.
  for (std::size_t i = n; i-- > 0;) {
    for (std::size_t j : succs_[i]) {
      layer[i] = std::max(layer[i], layer[j] + 1);
    }
  }
  layer_cache_ = layer;
  return layer;
}

std::size_t RuleDag::depth() const {
  const auto layer = layers();
  std::size_t best = 0;
  for (std::size_t v : layer) best = std::max(best, v);
  return succs_.empty() ? 0 : best + 1;
}

std::vector<std::uint16_t> RuleDag::topological_priorities(std::uint16_t base,
                                                           std::uint16_t step) const {
  const auto layer = layers();
  std::vector<std::uint16_t> out(layer.size());
  for (std::size_t i = 0; i < layer.size(); ++i) {
    out[i] = static_cast<std::uint16_t>(base + step * layer[i]);
  }
  return out;
}

std::vector<std::uint16_t> RuleDag::r_priorities(std::uint16_t base) const {
  const auto layer = layers();
  const std::size_t n = layer.size();
  // Sort by (layer, index); assign increasing distinct values. If layer(i)
  // > layer(j) then value(i) > value(j); an edge i->j implies
  // layer(i) >= layer(j)+1, so all constraints hold.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (layer[a] != layer[b]) return layer[a] < layer[b];
    return a < b;
  });
  std::vector<std::uint16_t> out(n);
  for (std::size_t rank = 0; rank < n; ++rank) {
    out[order[rank]] = static_cast<std::uint16_t>(base + rank);
  }
  return out;
}

std::size_t RuleDag::distinct_count(const std::vector<std::uint16_t>& priorities) {
  return std::set<std::uint16_t>(priorities.begin(), priorities.end()).size();
}

}  // namespace tango::workload
