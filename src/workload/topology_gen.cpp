#include "workload/topology_gen.h"

#include <cassert>
#include <string>
#include <utility>

#include "net/b4.h"
#include "tango/probe_engine.h"

namespace tango::workload {

namespace {

using sched::RequestDag;
using sched::RequestType;
using sched::SwitchRequest;

/// Role-tagged node names: c<i>, a<pod>-<i>, e<pod>-<i>.
std::string core_name(std::size_t i) { return "c" + std::to_string(i); }
std::string agg_name(std::size_t pod, std::size_t i) {
  return "a" + std::to_string(pod) + "-" + std::to_string(i);
}
std::string edge_name(std::size_t pod, std::size_t i) {
  return "e" + std::to_string(pod) + "-" + std::to_string(i);
}

/// Shared wiring walk. Creation order is the determinism contract (see
/// header): cores first, then per pod aggs then edges, then per pod the
/// edge–agg full bipartite links and the agg–core group links.
template <typename AddNode, typename AddLink>
FatTreeNodes wire_fat_tree(const FatTreeSpec& spec, AddNode&& add_node,
                           AddLink&& add_link) {
  assert(spec.k >= 2 && spec.k % 2 == 0);
  const std::size_t half = spec.k / 2;
  const std::size_t pods = spec.pods == 0 ? spec.k : spec.pods;

  FatTreeNodes nodes;
  nodes.core.reserve(half * half);
  for (std::size_t c = 0; c < half * half; ++c) {
    nodes.core.push_back(add_node(core_name(c)));
  }
  nodes.agg.resize(pods);
  nodes.edge.resize(pods);
  for (std::size_t p = 0; p < pods; ++p) {
    for (std::size_t i = 0; i < half; ++i) {
      nodes.agg[p].push_back(add_node(agg_name(p, i)));
    }
    for (std::size_t i = 0; i < half; ++i) {
      nodes.edge[p].push_back(add_node(edge_name(p, i)));
    }
  }
  for (std::size_t p = 0; p < pods; ++p) {
    for (std::size_t e = 0; e < half; ++e) {
      for (std::size_t a = 0; a < half; ++a) {
        add_link(nodes.edge[p][e], nodes.agg[p][a], spec.edge_agg_latency);
      }
    }
    // Agg i serves core group i: cores [i·k/2, (i+1)·k/2). Every pod
    // reaches every core, and two inter-pod paths share a core only when
    // they share the agg position — the canonical k-ary wiring.
    for (std::size_t a = 0; a < half; ++a) {
      for (std::size_t j = 0; j < half; ++j) {
        add_link(nodes.agg[p][a], nodes.core[a * half + j],
                 spec.agg_core_latency);
      }
    }
  }
  return nodes;
}

}  // namespace

std::vector<net::NodeId> FatTreeNodes::all_edges() const {
  std::vector<net::NodeId> out;
  for (const auto& pod : edge) out.insert(out.end(), pod.begin(), pod.end());
  return out;
}

FatTree fat_tree(const FatTreeSpec& spec) {
  FatTree ft;
  ft.nodes = wire_fat_tree(
      spec, [&](std::string name) { return ft.topo.add_node(std::move(name)); },
      [&](net::NodeId a, net::NodeId b, SimDuration lat) {
        ft.topo.add_link(a, b, lat, 10.0);
      });
  return ft;
}

FatTreeNodes build_fat_tree(net::Network& network, const FatTreeSpec& spec,
                            const switchsim::SwitchProfile& profile) {
  assert(network.switch_count() == 0);
  return wire_fat_tree(
      spec,
      [&](std::string name) {
        auto node_profile = profile;
        node_profile.name = std::move(name);
        return net::Network::node_of(network.add_switch(node_profile));
      },
      [&](net::NodeId a, net::NodeId b, SimDuration lat) {
        network.topology().add_link(a, b, lat, 10.0);
      });
}

net::Topology scaled_b4(std::size_t replicas) {
  assert(replicas >= 1);
  const net::Topology base = net::b4_topology();
  const std::size_t n = base.node_count();
  net::Topology topo;
  for (std::size_t r = 0; r < replicas; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      topo.add_node("r" + std::to_string(r) + ":" + base.name(i));
    }
    for (const auto& l : base.links()) {
      topo.add_link(r * n + l.a, r * n + l.b, l.latency, l.capacity_gbps);
    }
    if (r > 0) {
      // Gateways: previous replica's last two sites to this one's first
      // two. Trans-replica spans are long-haul.
      topo.add_link((r - 1) * n + (n - 2), r * n + 0, millis(25), 10.0);
      topo.add_link((r - 1) * n + (n - 1), r * n + 1, millis(25), 10.0);
    }
  }
  return topo;
}

sched::RequestDag fabric_update_scenario(const net::Topology& topo,
                                         const FatTreeNodes& nodes,
                                         const FabricUpdateSpec& spec,
                                         Rng& rng) {
  const std::vector<net::NodeId> edges = nodes.all_edges();
  assert(edges.size() >= 2);
  RequestDag dag;
  for (std::size_t f = 0; f < spec.n_flows; ++f) {
    const auto index = spec.first_index + static_cast<std::uint32_t>(f);
    // Two distinct edge switches, drawn without rejection.
    const std::size_t si = rng.index(edges.size());
    std::size_t di = rng.index(edges.size() - 1);
    if (di >= si) ++di;
    const net::NodeId src = edges[si];
    const net::NodeId dst = edges[di];
    const auto path = topo.shortest_path(src, dst);
    if (path.size() < 2) continue;  // disconnected after link failures
    // Consistent update: bring the new path up destination-to-source,
    // then repoint the source edge switch (MOD) — Fig 10's shape.
    std::size_t prev = SIZE_MAX;
    for (std::size_t h = path.size(); h-- > 1;) {
      SwitchRequest req;
      req.location = net::Network::switch_of(path[h]);
      req.type = RequestType::kAdd;
      req.priority = static_cast<std::uint16_t>(rng.uniform_int(1000, 9000));
      req.match = core::ProbeEngine::probe_match(index);
      req.actions = of::output_to(2);
      const std::size_t id = dag.add(std::move(req));
      if (prev != SIZE_MAX) dag.add_dependency(prev, id);
      prev = id;
    }
    SwitchRequest repoint;
    repoint.location = net::Network::switch_of(path[0]);
    repoint.type = RequestType::kMod;
    repoint.priority = static_cast<std::uint16_t>(rng.uniform_int(1000, 9000));
    repoint.match = core::ProbeEngine::probe_match(index);
    repoint.actions = of::output_to(2);
    const std::size_t id = dag.add(std::move(repoint));
    if (prev != SIZE_MAX) dag.add_dependency(prev, id);
  }
  return dag;
}

}  // namespace tango::workload
