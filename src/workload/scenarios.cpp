#include "workload/scenarios.h"

#include <algorithm>

#include "tango/probe_engine.h"

namespace tango::workload {

namespace {

using sched::RequestDag;
using sched::RequestType;
using sched::SwitchRequest;

SwitchRequest make_request(SwitchId where, RequestType type, std::uint32_t index,
                           std::optional<std::uint16_t> priority) {
  SwitchRequest req;
  req.location = where;
  req.type = type;
  req.priority = priority;
  req.match = core::ProbeEngine::probe_match(index);
  req.actions = of::output_to(2);
  return req;
}

/// Scattered, mostly-distinct priorities so priority sorting has room to win.
std::uint16_t scattered_priority(Rng& rng) {
  return static_cast<std::uint16_t>(rng.uniform_int(1000, 9000));
}

}  // namespace

RequestDag link_failure_scenario(const TestbedIds& tb, std::size_t n_flows,
                                 Rng& rng, std::uint32_t first_index) {
  RequestDag dag;
  for (std::size_t i = 0; i < n_flows; ++i) {
    const auto index = first_index + static_cast<std::uint32_t>(i);
    // New path segment on s3 first (destination side), then repoint s1.
    const std::size_t add_s3 = dag.add(
        make_request(tb.s3, RequestType::kAdd, index, scattered_priority(rng)));
    const std::size_t mod_s1 = dag.add(
        make_request(tb.s1, RequestType::kMod, index, scattered_priority(rng)));
    dag.add_dependency(add_s3, mod_s1);
  }
  return dag;
}

RequestDag traffic_engineering_scenario(const TestbedIds& tb,
                                        std::size_t n_requests, double add_weight,
                                        double del_weight, double mod_weight,
                                        Rng& rng, std::uint32_t first_index,
                                        std::size_t existing_flows) {
  RequestDag dag;
  const SwitchId switches[3] = {tb.s1, tb.s2, tb.s3};
  const double total = add_weight + del_weight + mod_weight;
  std::uint32_t next_index = first_index;
  std::size_t next_existing = 0;
  while (dag.size() < n_requests) {
    // Each end-to-end flow update touches a 1-3 switch sub-path, applied in
    // reverse path order.
    const std::size_t chain = 1 + rng.index(3);
    std::size_t prev = SIZE_MAX;
    for (std::size_t h = 0; h < chain && dag.size() < n_requests; ++h) {
      const double roll = rng.uniform_real(0, total);
      RequestType type = RequestType::kAdd;
      if (roll >= add_weight) {
        type = roll < add_weight + del_weight ? RequestType::kDel
                                              : RequestType::kMod;
      }
      const SwitchId where = switches[(rng.index(3) + h) % 3];
      // MOD/DEL act on the pre-change state when one exists; ADDs always
      // create fresh flows.
      std::uint32_t index;
      if (type != RequestType::kAdd && existing_flows > 0) {
        index = static_cast<std::uint32_t>(next_existing++ % existing_flows);
      } else {
        index = next_index++;
      }
      const std::size_t id = dag.add(
          make_request(where, type, index, scattered_priority(rng)));
      if (prev != SIZE_MAX) dag.add_dependency(prev, id);
      prev = id;
    }
  }
  return dag;
}

RequestDag mixed_dag_scenario(const TestbedIds& tb, const MixedScenarioSpec& spec,
                              Rng& rng, std::uint32_t first_index) {
  RequestDag dag;
  const SwitchId switches[3] = {tb.s1, tb.s2, tb.s3};
  std::uint32_t next_index = first_index;
  while (dag.size() < spec.n_requests) {
    std::size_t prev = SIZE_MAX;
    for (std::size_t level = 0;
         level < spec.dag_levels && dag.size() < spec.n_requests; ++level) {
      RequestType type = RequestType::kAdd;
      if (!spec.adds_only) {
        const std::size_t roll = rng.index(3);
        type = roll == 0 ? RequestType::kAdd
                         : (roll == 1 ? RequestType::kMod : RequestType::kDel);
      }
      const SwitchId where = switches[rng.index(3)];
      std::optional<std::uint16_t> priority;
      if (spec.with_priorities) priority = scattered_priority(rng);
      const std::size_t id =
          dag.add(make_request(where, type, next_index++, priority));
      if (prev != SIZE_MAX) dag.add_dependency(prev, id);
      prev = id;
    }
  }
  return dag;
}

}  // namespace tango::workload
