// Network-wide update scenarios (paper §7.2).
//
// The hardware-testbed scenarios run on a triangle of three switches
// (s1, s2 from Vendor #1, s3 from Vendor #3):
//
//  * Link Failure (LF) — the s1-s2 link fails; every affected flow is
//    rerouted via s3: one ADD on s3 and one MOD on s1 per flow, with the
//    downstream ADD required before the upstream MOD (consistent updates
//    are applied destination-to-source [18]).
//  * Traffic Engineering (TE) — a traffic-matrix change produces a mix of
//    ADD/MOD/DEL requests across the triangle with per-flow reverse-path
//    dependency chains. TE1 uses a 2:1:1 add:del:mod mix, TE2 equal thirds.
//  * Fig 11 scenarios — parameterized request sets (add-only or mixed,
//    DAG depth 1 or 2, 2.4K or 3.2K rules) with priorities either drawn
//    from a scattered range (priority-sorting case) or left unassigned
//    (priority-enforcement case).
#pragma once

#include <cstddef>

#include "common/rng.h"
#include "scheduler/request.h"

namespace tango::workload {

struct TestbedIds {
  SwitchId s1 = 1;
  SwitchId s2 = 2;
  SwitchId s3 = 3;
};

/// Flow index range [first, first+n) is used for rule matches, so callers
/// can preinstall the same indices as the "before" state.
sched::RequestDag link_failure_scenario(const TestbedIds& tb, std::size_t n_flows,
                                        Rng& rng, std::uint32_t first_index = 0);

/// `existing_flows` > 0 makes MOD/DEL requests target flow indices in
/// [0, existing_flows) — the pre-change TE state the caller is expected to
/// have preinstalled — while ADDs use fresh indices from `first_index` up.
sched::RequestDag traffic_engineering_scenario(const TestbedIds& tb,
                                               std::size_t n_requests,
                                               double add_weight, double del_weight,
                                               double mod_weight, Rng& rng,
                                               std::uint32_t first_index = 0,
                                               std::size_t existing_flows = 0);

struct MixedScenarioSpec {
  std::size_t n_requests = 2400;
  std::size_t dag_levels = 1;
  bool adds_only = false;
  /// true: requests carry scattered priorities (sorting case);
  /// false: priorities left empty for Tango enforcement.
  bool with_priorities = true;
};

sched::RequestDag mixed_dag_scenario(const TestbedIds& tb,
                                     const MixedScenarioSpec& spec, Rng& rng,
                                     std::uint32_t first_index = 0);

}  // namespace tango::workload
