// Scale topology generators for the 1000-switch experiments.
//
// The paper's testbed scenarios run on a three-switch triangle; the
// network-wide results (Fig 10/12) extrapolate to fabrics. These
// generators produce the fabrics: k-ary fat-trees (canonical and
// pod-scaled — fat_tree(k=16, pods=60) is exactly 1024 switches) and a
// replicated B4 WAN, plus a Fig-10-style network-wide update scenario
// that reroutes flows across the fabric with destination-to-source
// dependency chains (consistent updates [18]).
//
// Determinism contract: node/link creation order is a pure function of
// the spec (cores, then pod by pod: aggs then edges; links edge→agg then
// agg→core per pod), so node ids, link indices — and therefore
// port_for_link() assignments and every downstream fingerprint — are
// reproducible across runs and across the serial/parallel runners.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "net/network.h"
#include "net/topology.h"
#include "scheduler/request.h"
#include "switchsim/switch_model.h"

namespace tango::workload {

struct FatTreeSpec {
  /// Radix; must be even and >= 2. Canonical sizes: k=4 → 20 switches,
  /// k=8 → 80, k=16 → 320.
  unsigned k = 4;
  /// Number of pods; 0 means canonical (pods = k). Scaling pods past k
  /// grows edge capacity without growing the core: k=16, pods=60 →
  /// 64 core + 60·16 pod switches = 1024 exactly.
  unsigned pods = 0;
  SimDuration edge_agg_latency = micros(20);
  SimDuration agg_core_latency = micros(40);
};

/// Node ids of a generated fat-tree, by role. agg/edge are indexed
/// [pod][position], each inner vector of size k/2.
struct FatTreeNodes {
  std::vector<net::NodeId> core;
  std::vector<std::vector<net::NodeId>> agg;
  std::vector<std::vector<net::NodeId>> edge;

  /// All edge nodes, pod-major — the endpoints flows travel between.
  [[nodiscard]] std::vector<net::NodeId> all_edges() const;
};

struct FatTree {
  net::Topology topo;
  FatTreeNodes nodes;
};

/// Switch count: (k/2)² core + pods·k pod switches.
constexpr std::size_t fat_tree_switch_count(unsigned k, unsigned pods) {
  const std::size_t half = k / 2;
  return half * half + static_cast<std::size_t>(pods == 0 ? k : pods) * k;
}

/// Link count: pods·(k/2)² edge–agg plus pods·(k/2)² agg–core.
/// Canonical (pods = k) this is k³/2.
constexpr std::size_t fat_tree_link_count(unsigned k, unsigned pods) {
  const std::size_t half = k / 2;
  return 2 * static_cast<std::size_t>(pods == 0 ? k : pods) * half * half;
}

/// Standalone fat-tree topology (for routing / structural tests).
FatTree fat_tree(const FatTreeSpec& spec);

/// Instantiate a fat-tree inside a Network: one simulated switch per node
/// (all sharing `profile`, named by role), links mirrored into the
/// network's topology. Returned node ids convert to switch ids via
/// net::Network::switch_of. Requires an empty network (node ids must
/// start at 0 for the id mapping to hold).
FatTreeNodes build_fat_tree(net::Network& network, const FatTreeSpec& spec,
                            const switchsim::SwitchProfile& profile);

/// B4 scaled out: `replicas` copies of the 12-site/19-link B4 graph,
/// adjacent replicas joined by two gateway links (last two sites of one
/// to the first two sites of the next) so the WAN stays 2-connected.
/// replicas=86 → 1032 sites.
net::Topology scaled_b4(std::size_t replicas);

struct FabricUpdateSpec {
  /// Flows to reroute. Each flow contributes one request per hop of its
  /// (shortest) path — ADDs destination-to-source, then a MOD repointing
  /// the source edge switch, all chained, exactly the Fig 10 link-failure
  /// update shape generalized from the triangle to a fabric.
  std::size_t n_flows = 512;
  /// First flow/rule index (matches are ProbeEngine::probe_match(index)).
  std::uint32_t first_index = 0;
};

/// Network-wide consistent-update scenario over a generated fabric.
/// Paths are computed over `topo` as it stands — fail a link first and
/// the generated update routes around it. Flows whose endpoints became
/// disconnected are skipped (counted, not silently absorbed, via the
/// returned DAG being short). Requests target switch ids derived from
/// node ids (switch = node + 1, the build_fat_tree mapping).
sched::RequestDag fabric_update_scenario(const net::Topology& topo,
                                         const FatTreeNodes& nodes,
                                         const FabricUpdateSpec& spec, Rng& rng);

}  // namespace tango::workload
