#include "workload/classbench.h"

#include <set>
#include <tuple>

namespace tango::workload {

ClassbenchProfile cb1() {
  ClassbenchProfile p;
  p.name = "Classbench1";
  p.n_rules = 829;
  p.seed = 0xcb01;
  p.chain_len = 15;
  p.n_chains = 3;
  p.port_prob = 0.68;
  return p;
}

ClassbenchProfile cb2() {
  ClassbenchProfile p;
  p.name = "Classbench2";
  p.n_rules = 989;
  p.seed = 0xcb02;
  p.chain_len = 9;
  p.n_chains = 5;
  p.port_prob = 0.3;
  return p;
}

ClassbenchProfile cb3() {
  ClassbenchProfile p;
  p.name = "Classbench3";
  p.n_rules = 972;
  p.seed = 0xcb03;
  p.chain_len = 8;
  p.n_chains = 6;
  p.port_prob = 0.25;
  return p;
}

namespace {

struct PrefixNode {
  std::uint32_t addr = 0;
  int len = 0;
};

// Real ClassBench filter sets reuse a small pool of heavily nested
// prefixes, which is what creates rule-dependency chains tens of rules
// deep. We model that pool as a handful of *chains*: each chain is a
// root-to-leaf sequence of strictly nested prefixes, so any two prefixes
// drawn from the same chain are ancestor/descendant (guaranteed overlap in
// that dimension); prefixes from different chains are disjoint.
std::vector<std::vector<PrefixNode>> make_chains(std::uint32_t root_addr,
                                                 int root_len,
                                                 std::size_t n_chains,
                                                 std::size_t chain_len, Rng& rng) {
  std::vector<std::vector<PrefixNode>> chains(n_chains);
  for (std::size_t c = 0; c < n_chains; ++c) {
    // Distinct subtree per chain: extend the root by enough bits to index
    // the chain, making chains pairwise disjoint.
    int bits = 1;
    while ((1u << bits) < n_chains) ++bits;
    PrefixNode node;
    node.len = root_len + bits;
    node.addr = root_addr | (static_cast<std::uint32_t>(c) << (32 - node.len));
    chains[c].push_back(node);
    for (std::size_t d = 1; d < chain_len && node.len < 31; ++d) {
      const int extra = static_cast<int>(rng.uniform_int(1, 2));
      node.len = std::min(32, node.len + extra);
      const std::uint32_t suffix =
          static_cast<std::uint32_t>(rng.uniform_int(0, (1 << extra) - 1));
      node.addr |= suffix << (32 - node.len);
      chains[c].push_back(node);
    }
  }
  return chains;
}

const PrefixNode& pick(const std::vector<std::vector<PrefixNode>>& chains,
                       Rng& rng) {
  const auto& chain = chains[rng.index(chains.size())];
  return chain[rng.index(chain.size())];
}

}  // namespace

std::vector<AclRule> generate_classbench(const ClassbenchProfile& profile) {
  Rng rng(profile.seed);
  const auto src_chains = make_chains(0x0a000000, 8, profile.n_chains,
                                      profile.chain_len, rng);  // 10/8
  const auto dst_chains = make_chains(0xac100000, 12, profile.n_chains,
                                      profile.chain_len, rng);  // 172.16/12

  std::vector<AclRule> rules;
  rules.reserve(profile.n_rules);
  std::set<std::tuple<std::uint32_t, int, std::uint32_t, int, int, int>> seen;

  while (rules.size() < profile.n_rules) {
    const auto& src = pick(src_chains, rng);
    const auto& dst = pick(dst_chains, rng);
    const int proto = rng.chance(profile.proto_prob)
                          ? (rng.chance(0.7) ? 6 : 17)
                          : -1;
    const int port = rng.chance(profile.port_prob)
                         ? static_cast<int>(rng.uniform_int(1, 1024))
                         : -1;
    if (!seen.insert({src.addr, src.len, dst.addr, dst.len, proto, port}).second) {
      continue;  // duplicate rule — ClassBench files have unique filters
    }
    AclRule rule;
    rule.original_index = rules.size();
    rule.match.with_dl_type(0x0800);
    rule.match.set_nw_src_prefix(src.addr, src.len);
    rule.match.set_nw_dst_prefix(dst.addr, dst.len);
    if (proto >= 0) rule.match.with_nw_proto(static_cast<std::uint8_t>(proto));
    if (port >= 0) rule.match.with_tp_dst(static_cast<std::uint16_t>(port));
    rules.push_back(std::move(rule));
  }
  return rules;
}

}  // namespace tango::workload
