// Max-min fair traffic-engineering allocation over a WAN topology, in the
// style of B4's bandwidth allocator (paper [5]), plus the rule-update diff
// that a traffic-matrix change produces (Fig 12's workload).
//
// Water-filling: all unfrozen demands grow at the same rate; when a link
// saturates, every demand crossing it freezes at the current level; repeat
// until all demands are frozen.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "net/topology.h"
#include "scheduler/request.h"

namespace tango::workload {

struct Demand {
  net::NodeId src = 0;
  net::NodeId dst = 0;
  double requested_gbps = 1.0;
  /// Stable id: matches are derived from it, so a demand keeps its rules
  /// across reallocations.
  std::uint32_t flow_id = 0;
};

struct Allocation {
  Demand demand;
  std::vector<net::NodeId> path;  // empty when unroutable
  double rate_gbps = 0;
};

std::vector<Allocation> maxmin_allocate(const net::Topology& topo,
                                        std::vector<Demand> demands);

/// Random all-pairs demand set of the given size.
std::vector<Demand> random_demands(const net::Topology& topo, std::size_t count,
                                   Rng& rng);

/// Diff two allocations into a switch-request DAG:
///  * new demand            -> ADD along the new path,
///  * removed demand        -> DEL along the old path,
///  * path change           -> ADD on new-only switches, MOD on shared,
///                             DEL on old-only switches,
///  * rate-only change      -> MOD along the path.
/// Per-demand requests are chained in reverse path order (destination
/// first) for update consistency. `site_switch[n]` maps topology node n to
/// its switch id.
sched::RequestDag te_update_dag(const std::vector<Allocation>& before,
                                const std::vector<Allocation>& after,
                                const std::vector<SwitchId>& site_switch,
                                Rng& rng);

}  // namespace tango::workload
