#include "workload/maxmin.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include "tango/probe_engine.h"

namespace tango::workload {

std::vector<Allocation> maxmin_allocate(const net::Topology& topo,
                                        std::vector<Demand> demands) {
  std::vector<Allocation> out;
  out.reserve(demands.size());
  // Fixed single-path routing (latency-shortest), like B4's tunnel set
  // restricted to the preferred tunnel.
  std::vector<std::vector<std::size_t>> links_of(demands.size());
  for (std::size_t d = 0; d < demands.size(); ++d) {
    Allocation a;
    a.demand = demands[d];
    a.path = topo.shortest_path(demands[d].src, demands[d].dst);
    out.push_back(std::move(a));
    auto& links = links_of[d];
    const auto& path = out[d].path;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (auto li = topo.link_between(path[i], path[i + 1])) links.push_back(*li);
    }
  }

  std::vector<double> residual(topo.link_count());
  for (std::size_t li = 0; li < topo.link_count(); ++li) {
    residual[li] = topo.link(li).capacity_gbps;
  }

  std::vector<bool> frozen(demands.size(), false);
  for (std::size_t d = 0; d < demands.size(); ++d) {
    if (out[d].path.size() < 2) frozen[d] = true;  // unroutable or local
  }

  while (true) {
    // Demands per link among unfrozen.
    std::map<std::size_t, std::size_t> users;
    std::size_t active = 0;
    for (std::size_t d = 0; d < demands.size(); ++d) {
      if (frozen[d]) continue;
      ++active;
      for (std::size_t li : links_of[d]) ++users[li];
    }
    if (active == 0) break;

    // The water level can rise until the tightest link saturates or a
    // demand reaches its requested rate.
    double step = std::numeric_limits<double>::max();
    for (const auto& [li, cnt] : users) {
      step = std::min(step, residual[li] / static_cast<double>(cnt));
    }
    for (std::size_t d = 0; d < demands.size(); ++d) {
      if (!frozen[d]) {
        step = std::min(step, demands[d].requested_gbps - out[d].rate_gbps);
      }
    }
    if (step <= 1e-12) step = 0;

    for (std::size_t d = 0; d < demands.size(); ++d) {
      if (frozen[d]) continue;
      out[d].rate_gbps += step;
      for (std::size_t li : links_of[d]) residual[li] -= step;
    }
    // Freeze satisfied demands and demands on saturated links.
    for (std::size_t d = 0; d < demands.size(); ++d) {
      if (frozen[d]) continue;
      if (out[d].rate_gbps >= demands[d].requested_gbps - 1e-12) {
        frozen[d] = true;
        continue;
      }
      for (std::size_t li : links_of[d]) {
        if (residual[li] <= 1e-9) {
          frozen[d] = true;
          break;
        }
      }
    }
    if (step == 0) {
      // No progress possible: freeze everything still active.
      for (std::size_t d = 0; d < demands.size(); ++d) frozen[d] = true;
    }
  }
  return out;
}

std::vector<Demand> random_demands(const net::Topology& topo, std::size_t count,
                                   Rng& rng) {
  std::vector<Demand> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Demand d;
    d.src = rng.index(topo.node_count());
    do {
      d.dst = rng.index(topo.node_count());
    } while (d.dst == d.src);
    d.requested_gbps = rng.uniform_real(0.05, 1.0);
    d.flow_id = static_cast<std::uint32_t>(i);
    out.push_back(d);
  }
  return out;
}

sched::RequestDag te_update_dag(const std::vector<Allocation>& before,
                                const std::vector<Allocation>& after,
                                const std::vector<SwitchId>& site_switch,
                                Rng& rng) {
  sched::RequestDag dag;

  std::map<std::uint32_t, const Allocation*> old_by_id;
  for (const auto& a : before) old_by_id[a.demand.flow_id] = &a;
  std::map<std::uint32_t, const Allocation*> new_by_id;
  for (const auto& a : after) new_by_id[a.demand.flow_id] = &a;

  auto make = [&](net::NodeId node, sched::RequestType type, std::uint32_t flow) {
    sched::SwitchRequest req;
    req.location = site_switch[node];
    req.type = type;
    req.priority = static_cast<std::uint16_t>(rng.uniform_int(1000, 9000));
    req.match = core::ProbeEngine::probe_match(flow);
    req.actions = of::output_to(2);
    return req;
  };

  // Chain a demand's requests destination-first.
  auto add_chain = [&](const std::vector<std::pair<net::NodeId, sched::RequestType>>&
                           hops,
                       std::uint32_t flow) {
    std::size_t prev = SIZE_MAX;
    for (auto it = hops.rbegin(); it != hops.rend(); ++it) {
      const std::size_t id = dag.add(make(it->first, it->second, flow));
      if (prev != SIZE_MAX) dag.add_dependency(prev, id);
      prev = id;
    }
  };

  for (const auto& [flow, alloc_new] : new_by_id) {
    const auto it_old = old_by_id.find(flow);
    std::vector<std::pair<net::NodeId, sched::RequestType>> hops;
    if (it_old == old_by_id.end()) {
      for (net::NodeId n : alloc_new->path) hops.emplace_back(n, sched::RequestType::kAdd);
    } else {
      const auto& old_path = it_old->second->path;
      const std::set<net::NodeId> old_nodes(old_path.begin(), old_path.end());
      const std::set<net::NodeId> new_nodes(alloc_new->path.begin(),
                                            alloc_new->path.end());
      const bool path_changed = old_path != alloc_new->path;
      const bool rate_changed =
          std::abs(it_old->second->rate_gbps - alloc_new->rate_gbps) > 1e-9;
      if (!path_changed && !rate_changed) continue;
      if (!path_changed) {
        for (net::NodeId n : alloc_new->path) hops.emplace_back(n, sched::RequestType::kMod);
      } else {
        for (net::NodeId n : alloc_new->path) {
          hops.emplace_back(n, old_nodes.count(n) != 0 ? sched::RequestType::kMod
                                                       : sched::RequestType::kAdd);
        }
        for (net::NodeId n : old_path) {
          if (new_nodes.count(n) == 0) hops.emplace_back(n, sched::RequestType::kDel);
        }
      }
    }
    if (!hops.empty()) add_chain(hops, flow);
  }

  // Demands that disappeared: delete along the old path, source-first.
  for (const auto& [flow, alloc_old] : old_by_id) {
    if (new_by_id.count(flow) != 0) continue;
    std::vector<std::pair<net::NodeId, sched::RequestType>> hops;
    for (net::NodeId n : alloc_old->path) hops.emplace_back(n, sched::RequestType::kDel);
    std::reverse(hops.begin(), hops.end());  // add_chain reverses again -> source first
    if (!hops.empty()) add_chain(hops, flow);
  }

  return dag;
}

}  // namespace tango::workload
