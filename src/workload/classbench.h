// ClassBench-style synthetic ACL generation.
//
// The paper's single-switch evaluation (§7.1, Table 2, Figs 8-9) uses three
// ClassBench [21] access-control lists to obtain realistic rule sets with
// overlap-induced dependencies. The real filter sets are not distributed
// with the paper, so we generate structurally similar ones: 5-tuple rules
// whose source/destination IPv4 prefixes are drawn from a small pool of
// nested prefix chains, yielding overlap chains tens of rules deep — the
// property the priority-assignment experiments exercise.
// Three seeded profiles (cb1/cb2/cb3) are sized like Table 2's files.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "openflow/match.h"

namespace tango::workload {

struct AclRule {
  of::Match match;
  /// Position in the original (first-match-wins) ACL ordering.
  std::size_t original_index = 0;
};

struct ClassbenchProfile {
  std::string name = "cb";
  std::size_t n_rules = 800;
  std::uint64_t seed = 1;
  /// Length of each nested-prefix chain (drives dependency-chain depth).
  std::size_t chain_len = 10;
  /// Number of disjoint prefix chains per dimension (drives overlap
  /// density: two rules can only overlap when they draw from the same
  /// source and destination chains).
  std::size_t n_chains = 4;
  /// Probability a rule constrains the transport destination port.
  double port_prob = 0.35;
  /// Probability a rule constrains the IP protocol.
  double proto_prob = 0.5;
};

/// The three paper-like profiles (sizes match Table 2's "Flows Installed").
ClassbenchProfile cb1();
ClassbenchProfile cb2();
ClassbenchProfile cb3();

std::vector<AclRule> generate_classbench(const ClassbenchProfile& profile);

}  // namespace tango::workload
