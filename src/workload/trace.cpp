#include "workload/trace.h"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "openflow/codec.h"

namespace tango::workload {

namespace {

constexpr const char* kHeader = "# tango-trace v1";

std::string hex_encode(const std::vector<std::uint8_t>& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

Result<std::vector<std::uint8_t>> hex_decode(const std::string& text) {
  if (text.size() % 2 != 0) return Error{"odd hex length"};
  std::vector<std::uint8_t> out;
  out.reserve(text.size() / 2);
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  for (std::size_t i = 0; i < text.size(); i += 2) {
    const int hi = nibble(text[i]);
    const int lo = nibble(text[i + 1]);
    if (hi < 0 || lo < 0) return Error{"bad hex digit"};
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

}  // namespace

void write_trace(std::ostream& out, const sched::RequestDag& dag) {
  out << kHeader << "\n";
  for (std::size_t id = 0; id < dag.size(); ++id) {
    const auto& req = dag.request(id);
    out << "req " << id << ' ' << req.location << ' ' << to_string(req.type)
        << ' ';
    if (req.priority.has_value()) {
      out << *req.priority;
    } else {
      out << '-';
    }
    out << ' ';
    if (req.deadline.has_value()) {
      out << req.deadline->ms();
    } else {
      out << '-';
    }
    out << ' ' << hex_encode(of::encode_match_bytes(req.match)) << ' '
        << of::output_port(req.actions) << "\n";
  }
  for (std::size_t id = 0; id < dag.size(); ++id) {
    for (std::size_t succ : dag.successors(id)) {
      out << "dep " << id << ' ' << succ << "\n";
    }
  }
}

Result<sched::RequestDag> read_trace(std::istream& in) {
  sched::RequestDag dag;
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line == kHeader) saw_header = true;
      continue;
    }
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "req") {
      std::size_t id = 0;
      SwitchId location = 0;
      std::string type_token, priority_token, deadline_token, match_hex;
      std::uint16_t out_port = 0;
      fields >> id >> location >> type_token >> priority_token >>
          deadline_token >> match_hex >> out_port;
      if (fields.fail()) {
        return Error{"bad req line " + std::to_string(line_no)};
      }
      if (id != dag.size()) {
        return Error{"req ids must be dense and ordered at line " +
                     std::to_string(line_no)};
      }
      sched::SwitchRequest req;
      req.location = location;
      if (type_token == "ADD") {
        req.type = sched::RequestType::kAdd;
      } else if (type_token == "MOD") {
        req.type = sched::RequestType::kMod;
      } else if (type_token == "DEL") {
        req.type = sched::RequestType::kDel;
      } else {
        return Error{"bad request type at line " + std::to_string(line_no)};
      }
      if (priority_token != "-") {
        req.priority = static_cast<std::uint16_t>(std::stoul(priority_token));
      }
      if (deadline_token != "-") {
        req.deadline = millis(std::stod(deadline_token));
      }
      auto match_bytes = hex_decode(match_hex);
      if (!match_bytes.ok()) {
        return Error{match_bytes.error() + " at line " + std::to_string(line_no)};
      }
      auto match = of::decode_match_bytes(match_bytes.value());
      if (!match.ok()) {
        return Error{match.error() + " at line " + std::to_string(line_no)};
      }
      req.match = match.value();
      if (out_port != of::kPortNone) req.actions = of::output_to(out_port);
      dag.add(std::move(req));
    } else if (kind == "dep") {
      std::size_t before = 0, after = 0;
      fields >> before >> after;
      if (fields.fail() || before >= dag.size() || after >= dag.size()) {
        return Error{"bad dep line " + std::to_string(line_no)};
      }
      dag.add_dependency(before, after);
    } else {
      return Error{"unknown record '" + kind + "' at line " +
                   std::to_string(line_no)};
    }
  }
  if (!saw_header) return Error{"missing tango-trace header"};
  if (!dag.is_acyclic()) return Error{"trace contains a dependency cycle"};
  return dag;
}

bool save_trace_file(const std::string& path, const sched::RequestDag& dag) {
  std::ofstream out(path);
  if (!out) return false;
  write_trace(out, dag);
  return static_cast<bool>(out);
}

Result<sched::RequestDag> load_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Error{"cannot open " + path};
  return read_trace(in);
}

}  // namespace tango::workload
