// Request-trace record/replay.
//
// A switch-request DAG (one network update: a TE transition, a failure
// repair, an ACL deployment) serializes to a line-oriented text format so
// scheduler experiments are reproducible and shareable — the same trace can
// be replayed under Dionysus and under Tango, or re-run after a scheduler
// change.
//
// Format:
//
//   # tango-trace v1
//   req <id> <switch> <ADD|MOD|DEL> <priority|-> <deadline_ms|-> <match-hex> <out_port>
//   dep <before> <after>
#pragma once

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "scheduler/request.h"

namespace tango::workload {

void write_trace(std::ostream& out, const sched::RequestDag& dag);

Result<sched::RequestDag> read_trace(std::istream& in);

bool save_trace_file(const std::string& path, const sched::RequestDag& dag);
Result<sched::RequestDag> load_trace_file(const std::string& path);

}  // namespace tango::workload
