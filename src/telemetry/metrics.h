// Metrics registry for the control plane: counters, gauges, and
// fixed-bucket histograms.
//
// Designed for the simulator's hot paths: registration (by name) allocates
// and may rehash, but every instrument hands back a stable reference whose
// update methods never allocate — components look their instruments up once
// at attach time and bump plain integers afterwards. Instruments live in
// deques so references stay valid for the registry's lifetime; the name
// index is an ordered map so snapshots serialize in a stable order.
//
// Everything here is deterministic: no clocks, no randomness — the same
// run produces the same snapshot byte-for-byte.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace tango::telemetry {

/// Monotone event count. Update is a single add; read is a load.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Fixed-bucket histogram. Bucket i counts observations v <= bound[i]
/// (upper-inclusive, like Prometheus "le"); one implicit overflow bucket
/// catches everything above the last bound. Bounds are fixed at
/// registration; observe() is a binary search plus three adds — no
/// allocation, no floating accumulation surprises beyond the sum.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const {
    return counts_;
  }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  /// Min/max of observed values; both 0 when count() == 0.
  [[nodiscard]] double min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0 : max_; }

 private:
  std::vector<double> bounds_;        // sorted ascending
  std::vector<std::uint64_t> counts_; // bounds_.size() + 1
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Name -> instrument store. Get-or-create by name; first caller wins on
/// histogram bounds. Names are dotted paths ("executor.retries") — see
/// docs/OBSERVABILITY.md for the registry's naming taxonomy.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// Lookup without creating; nullptr when the name was never registered.
  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  /// Iteration in name order (stable across runs).
  [[nodiscard]] const std::map<std::string, Counter*>& counters() const {
    return counter_ix_;
  }
  [[nodiscard]] const std::map<std::string, Gauge*>& gauges() const {
    return gauge_ix_;
  }
  [[nodiscard]] const std::map<std::string, Histogram*>& histograms() const {
    return histogram_ix_;
  }

 private:
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::map<std::string, Counter*> counter_ix_;
  std::map<std::string, Gauge*> gauge_ix_;
  std::map<std::string, Histogram*> histogram_ix_;
};

}  // namespace tango::telemetry
