// Minimal JSON emission helpers shared by the trace exporter and the run
// report writer. Emission only — parsing lives in the CI validator (python)
// and the test-side mini parser.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace tango::telemetry {

/// Append `s` as a quoted JSON string with the mandatory escapes.
inline void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Append a double as a JSON number. JSON has no NaN/Inf; those degrade to
/// null. Round-trippable via %.17g, with integral values kept integral so
/// counters don't grow a spurious ".0".
inline void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  out += buf;
}

}  // namespace tango::telemetry
