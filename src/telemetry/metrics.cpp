#include "telemetry/metrics.h"

#include <algorithm>
#include <cassert>

namespace tango::telemetry {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  // First bound >= v: upper-inclusive buckets. v above every bound lands
  // in the overflow slot that lower_bound naturally points at.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const auto it = counter_ix_.find(name);
  if (it != counter_ix_.end()) return *it->second;
  counters_.emplace_back();
  return *(counter_ix_[name] = &counters_.back());
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const auto it = gauge_ix_.find(name);
  if (it != gauge_ix_.end()) return *it->second;
  gauges_.emplace_back();
  return *(gauge_ix_[name] = &gauges_.back());
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  const auto it = histogram_ix_.find(name);
  if (it != histogram_ix_.end()) return *it->second;
  histograms_.emplace_back(std::move(bounds));
  return *(histogram_ix_[name] = &histograms_.back());
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counter_ix_.find(name);
  return it == counter_ix_.end() ? nullptr : it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauge_ix_.find(name);
  return it == gauge_ix_.end() ? nullptr : it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histogram_ix_.find(name);
  return it == histogram_ix_.end() ? nullptr : it->second;
}

}  // namespace tango::telemetry
