// Virtual-time trace collection with a Chrome trace-event exporter.
//
// Spans and instants are stamped with *simulated* time (the EventQueue
// clock), so a trace of a 4-second simulated update opens in
// chrome://tracing / Perfetto as a 4-second timeline regardless of how fast
// the simulation actually ran. Each event carries a lane: lane 0 is the
// controller, lane N is switch N (datapath id) — the exporter maps lanes to
// named threads, so every switch gets its own swim-lane.
//
// Wall-clock stamping is off by default: with it off, a trace is a pure
// function of the (topology, workload, seed) triple and two same-seed runs
// export byte-identical JSON (test_telemetry asserts this). Turning it on
// adds a wall_ns arg per event for overhead accounting at the cost of that
// reproducibility.
//
// Recording never touches the event queue or any RNG — attaching a
// collector cannot perturb simulated behaviour.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "telemetry/metrics.h"

namespace tango::telemetry {

/// Pre-rendered JSON args attached to an event. Values are raw JSON
/// fragments; use the arg() helpers to build them.
using TraceArgs = std::vector<std::pair<std::string, std::string>>;

inline std::pair<std::string, std::string> arg(std::string key,
                                               std::uint64_t v) {
  return {std::move(key), std::to_string(v)};
}
inline std::pair<std::string, std::string> arg(std::string key,
                                               std::int64_t v) {
  return {std::move(key), std::to_string(v)};
}
inline std::pair<std::string, std::string> arg(std::string key, bool v) {
  return {std::move(key), v ? "true" : "false"};
}
/// String arg (value gets quoted and escaped at build time).
std::pair<std::string, std::string> arg_str(std::string key,
                                            const std::string& v);

struct TraceEvent {
  enum class Phase { kSpan, kInstant };

  Phase phase = Phase::kSpan;
  std::string cat;
  std::string name;
  /// 0 = controller; otherwise the switch's datapath id.
  std::uint64_t lane = 0;
  SimTime begin{};
  SimDuration dur{};  // zero for instants
  /// Wall-clock stamp (ns since collector construction); 0 unless
  /// wall-clock stamping is enabled.
  std::int64_t wall_ns = 0;
  TraceArgs args;
};

class TraceCollector {
 public:
  static constexpr std::uint64_t kControllerLane = 0;

  TraceCollector();

  /// Cap on stored events; records beyond it are counted in
  /// dropped_events() instead of stored (keeps week-long inference runs
  /// from eating the heap). Default 1<<20.
  void set_capacity(std::size_t max_events) { capacity_ = max_events; }

  /// Stamp each event with wall time (breaks same-seed byte-identity).
  void enable_wall_clock(bool on);

  void set_process_name(std::string name) { process_name_ = std::move(name); }
  void set_lane_name(std::uint64_t lane, std::string name) {
    lane_names_[lane] = std::move(name);
  }

  void span(const char* cat, const char* name, std::uint64_t lane,
            SimTime begin, SimTime end, TraceArgs args = {});
  void instant(const char* cat, const char* name, std::uint64_t lane,
               SimTime at, TraceArgs args = {});

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t dropped_events() const { return dropped_; }
  void clear();

  /// Chrome trace-event format ("traceEvents" array of "X"/"i" phases plus
  /// process/thread-name metadata). ts/dur are microseconds of simulated
  /// time; open the file in chrome://tracing or https://ui.perfetto.dev.
  [[nodiscard]] std::string to_chrome_json() const;
  bool write_chrome_json(const std::string& path) const;

 private:
  void record(TraceEvent ev);

  std::size_t capacity_ = std::size_t{1} << 20;
  bool wall_clock_ = false;
  std::int64_t wall_epoch_ns_ = 0;
  std::string process_name_ = "tango";
  std::map<std::uint64_t, std::string> lane_names_;
  std::vector<TraceEvent> events_;
  std::size_t dropped_ = 0;
};

/// The telemetry context components hook into: one trace collector plus one
/// metrics registry. Attached to a net::Network via set_telemetry(); a null
/// pointer there means "disabled" and every instrumentation site is a
/// single branch.
struct Telemetry {
  TraceCollector trace;
  MetricsRegistry metrics;
};

}  // namespace tango::telemetry
