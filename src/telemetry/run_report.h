// Machine-readable run reports: one JSON document per run/bench capturing
// scalar results, tabular rows, a metrics-registry snapshot, and key spans.
//
// Schema (stable; bump the version string on breaking change):
//   {
//     "schema": "tango.run_report.v1",
//     "name": "<run name>",
//     "results":    { "<key>": number|string, ... },
//     "rows":       [ { "<col>": number|string, ... }, ... ],
//     "counters":   { "<name>": integer, ... },
//     "gauges":     { "<name>": number, ... },
//     "histograms": { "<name>": { "bounds": [...], "counts": [...],
//                                 "count": N, "sum": x,
//                                 "min": x, "max": x }, ... },
//     "spans":      [ { "cat": s, "name": s, "lane": N,
//                       "begin_ns": N, "dur_ns": N }, ... ]
//   }
// All keys are always present (empty containers when unused) so consumers
// can index without existence checks. tools/validate_telemetry.py is the
// reference validator.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace tango::telemetry {

class RunReport {
 public:
  explicit RunReport(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Scalar results ("LF.tango_s": 1.23). Numbers and strings only.
  void set_result(const std::string& key, double v);
  void set_result(const std::string& key, const std::string& v);

  /// One row of a result table; columns may differ between rows.
  class Row {
   public:
    Row& col(const std::string& key, double v);
    Row& col(const std::string& key, const std::string& v);

   private:
    friend class RunReport;
    /// Values pre-rendered as JSON fragments, in insertion order.
    std::vector<std::pair<std::string, std::string>> cells_;
  };
  Row& add_row();

  /// Snapshot every instrument in `reg` into the report — values are
  /// copied, so the registry may die before the report is written.
  /// Replaces any previous snapshot.
  void add_metrics(const MetricsRegistry& reg);

  /// Copy spans from `trace` whose category is in `cats` (all spans when
  /// `cats` is empty), up to `max_spans` — the "key spans" of the run, kept
  /// small so reports stay greppable while full detail lives in the trace.
  void add_spans(const TraceCollector& trace,
                 const std::vector<std::string>& cats = {},
                 std::size_t max_spans = 256);

  [[nodiscard]] std::string to_json() const;
  bool write(const std::string& path) const;

 private:
  struct HistSnapshot {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    double sum = 0, min = 0, max = 0;
  };

  std::string name_;
  std::map<std::string, std::string> results_;  // values: JSON fragments
  std::vector<Row> rows_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, HistSnapshot> histograms_;
  std::vector<TraceEvent> spans_;
};

}  // namespace tango::telemetry
