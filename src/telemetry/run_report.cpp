#include "telemetry/run_report.h"

#include <algorithm>
#include <fstream>

#include "telemetry/json_util.h"

namespace tango::telemetry {

namespace {

std::string number(double v) {
  std::string s;
  append_number(s, v);
  return s;
}

std::string quoted(const std::string& v) {
  std::string s;
  append_quoted(s, v);
  return s;
}

}  // namespace

void RunReport::set_result(const std::string& key, double v) {
  results_[key] = number(v);
}

void RunReport::set_result(const std::string& key, const std::string& v) {
  results_[key] = quoted(v);
}

RunReport::Row& RunReport::Row::col(const std::string& key, double v) {
  cells_.emplace_back(key, number(v));
  return *this;
}

RunReport::Row& RunReport::Row::col(const std::string& key,
                                    const std::string& v) {
  cells_.emplace_back(key, quoted(v));
  return *this;
}

RunReport::Row& RunReport::add_row() {
  rows_.emplace_back();
  return rows_.back();
}

void RunReport::add_metrics(const MetricsRegistry& reg) {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  for (const auto& [name, c] : reg.counters()) counters_[name] = c->value();
  for (const auto& [name, g] : reg.gauges()) gauges_[name] = g->value();
  for (const auto& [name, h] : reg.histograms()) {
    HistSnapshot snap;
    snap.bounds = h->bounds();
    snap.counts = h->bucket_counts();
    snap.count = h->count();
    snap.sum = h->sum();
    snap.min = h->min();
    snap.max = h->max();
    histograms_[name] = std::move(snap);
  }
}

void RunReport::add_spans(const TraceCollector& trace,
                          const std::vector<std::string>& cats,
                          std::size_t max_spans) {
  for (const auto& ev : trace.events()) {
    if (spans_.size() >= max_spans) break;
    if (ev.phase != TraceEvent::Phase::kSpan) continue;
    if (!cats.empty() &&
        std::find(cats.begin(), cats.end(), ev.cat) == cats.end()) {
      continue;
    }
    spans_.push_back(ev);
  }
}

std::string RunReport::to_json() const {
  std::string out;
  out += "{\n  \"schema\": \"tango.run_report.v1\",\n  \"name\": ";
  append_quoted(out, name_);

  out += ",\n  \"results\": {";
  bool first = true;
  for (const auto& [k, v] : results_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_quoted(out, k);
    out += ": " + v;
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"rows\": [";
  first = true;
  for (const auto& row : rows_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {";
    bool first_cell = true;
    for (const auto& [k, v] : row.cells_) {
      if (!first_cell) out += ", ";
      first_cell = false;
      append_quoted(out, k);
      out += ": " + v;
    }
    out += "}";
  }
  out += first ? "]" : "\n  ]";

  out += ",\n  \"counters\": {";
  first = true;
  for (const auto& [name, v] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_quoted(out, name);
    out += ": " + std::to_string(v);
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_quoted(out, name);
    out += ": ";
    append_number(out, v);
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_quoted(out, name);
    out += ": {\"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i != 0) out += ", ";
      append_number(out, h.bounds[i]);
    }
    out += "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i != 0) out += ", ";
      out += std::to_string(h.counts[i]);
    }
    out += "], \"count\": " + std::to_string(h.count);
    out += ", \"sum\": ";
    append_number(out, h.sum);
    out += ", \"min\": ";
    append_number(out, h.min);
    out += ", \"max\": ";
    append_number(out, h.max);
    out += "}";
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"spans\": [";
  first = true;
  for (const auto& ev : spans_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"cat\": ";
    append_quoted(out, ev.cat);
    out += ", \"name\": ";
    append_quoted(out, ev.name);
    out += ", \"lane\": " + std::to_string(ev.lane);
    out += ", \"begin_ns\": " + std::to_string(ev.begin.ns());
    out += ", \"dur_ns\": " + std::to_string(ev.dur.ns());
    out += "}";
  }
  out += first ? "]" : "\n  ]";

  out += "\n}\n";
  return out;
}

bool RunReport::write(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  const std::string json = to_json();
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  return static_cast<bool>(f);
}

}  // namespace tango::telemetry
