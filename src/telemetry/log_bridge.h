// Logging -> telemetry bridge: a log::Sink that tees every line that
// passes the threshold into the trace (as an instant on the controller
// lane, stamped with the *virtual* clock the caller provides) and into the
// metrics registry, while still printing through the default stderr sink.
// Install with log::set_sink(tee_log_sink(t, [&net]{ return net.now(); }));
// remove with log::set_sink({}).
#pragma once

#include <functional>
#include <string>

#include "common/logging.h"
#include "telemetry/trace.h"

namespace tango::telemetry {

inline const char* level_name(log::Level level) {
  switch (level) {
    case log::Level::kDebug: return "debug";
    case log::Level::kInfo: return "info";
    case log::Level::kWarn: return "warn";
    case log::Level::kError: return "error";
    case log::Level::kOff: return "off";
  }
  return "?";
}

inline log::Sink tee_log_sink(Telemetry& t, std::function<SimTime()> now) {
  return [&t, now = std::move(now)](log::Level level, const std::string& msg) {
    const char* name = level_name(level);
    t.trace.instant("log", name, TraceCollector::kControllerLane, now(),
                    {arg_str("msg", msg)});
    t.metrics.counter(std::string("log.") + name).inc();
    log::default_sink(level, msg);
  };
}

}  // namespace tango::telemetry
