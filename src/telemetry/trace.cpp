#include "telemetry/trace.h"

#include <chrono>
#include <cstdio>
#include <fstream>

#include "telemetry/json_util.h"

namespace tango::telemetry {

namespace {

std::int64_t wall_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Simulated ns -> Chrome's microsecond timestamps, keeping ns resolution
/// as a fractional part.
void append_us(std::string& out, std::int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  out += buf;
}

}  // namespace

std::pair<std::string, std::string> arg_str(std::string key,
                                            const std::string& v) {
  std::string rendered;
  append_quoted(rendered, v);
  return {std::move(key), std::move(rendered)};
}

TraceCollector::TraceCollector() = default;

void TraceCollector::enable_wall_clock(bool on) {
  wall_clock_ = on;
  if (on && wall_epoch_ns_ == 0) wall_epoch_ns_ = wall_now_ns();
}

void TraceCollector::record(TraceEvent ev) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  if (wall_clock_) ev.wall_ns = wall_now_ns() - wall_epoch_ns_;
  events_.push_back(std::move(ev));
}

void TraceCollector::span(const char* cat, const char* name,
                          std::uint64_t lane, SimTime begin, SimTime end,
                          TraceArgs args) {
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::kSpan;
  ev.cat = cat;
  ev.name = name;
  ev.lane = lane;
  ev.begin = begin;
  ev.dur = end - begin;
  ev.args = std::move(args);
  record(std::move(ev));
}

void TraceCollector::instant(const char* cat, const char* name,
                             std::uint64_t lane, SimTime at, TraceArgs args) {
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::kInstant;
  ev.cat = cat;
  ev.name = name;
  ev.lane = lane;
  ev.begin = at;
  ev.args = std::move(args);
  record(std::move(ev));
}

void TraceCollector::clear() {
  events_.clear();
  dropped_ = 0;
}

std::string TraceCollector::to_chrome_json() const {
  std::string out;
  out.reserve(events_.size() * 96 + 256);
  out += "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  // Metadata: process name + one named thread per lane.
  sep();
  out += "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":";
  append_quoted(out, process_name_);
  out += "}}";
  for (const auto& [lane, name] : lane_names_) {
    sep();
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(lane) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":";
    append_quoted(out, name);
    out += "}}";
  }
  // Lanes sort by their id so switch 1..N read top-to-bottom under the
  // controller lane.
  for (const auto& [lane, name] : lane_names_) {
    (void)name;
    sep();
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(lane) +
           ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":" +
           std::to_string(lane) + "}}";
  }

  for (const auto& ev : events_) {
    sep();
    out += "{\"ph\":";
    out += ev.phase == TraceEvent::Phase::kSpan ? "\"X\"" : "\"i\"";
    out += ",\"pid\":1,\"tid\":" + std::to_string(ev.lane);
    out += ",\"cat\":";
    append_quoted(out, ev.cat);
    out += ",\"name\":";
    append_quoted(out, ev.name);
    out += ",\"ts\":";
    append_us(out, ev.begin.ns());
    if (ev.phase == TraceEvent::Phase::kSpan) {
      out += ",\"dur\":";
      append_us(out, ev.dur.ns());
    } else {
      out += ",\"s\":\"t\"";  // thread-scoped instant
    }
    if (!ev.args.empty() || ev.wall_ns != 0) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [k, v] : ev.args) {
        if (!first_arg) out += ',';
        first_arg = false;
        append_quoted(out, k);
        out += ':';
        out += v;
      }
      if (ev.wall_ns != 0) {
        if (!first_arg) out += ',';
        out += "\"wall_ns\":" + std::to_string(ev.wall_ns);
      }
      out += '}';
    }
    out += '}';
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool TraceCollector::write_chrome_json(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  const std::string json = to_chrome_json();
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  return static_cast<bool>(f);
}

}  // namespace tango::telemetry
