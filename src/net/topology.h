// Network topology graph: switches as nodes, links with latencies and
// up/down state, shortest-path routing, and link-failure injection for the
// network-wide experiments (Fig 10's LF scenario).
//
// Adjacency is indexed per node (each node records the links that touch
// it, in link-index order) so neighbor queries and routing cost degree
// work, not a scan of every link in the fabric — the difference between
// O(V log V) and O(V·L) Dijkstra on the 1000-switch topologies
// workload::TopologyGen generates.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include <cstdint>

#include "common/types.h"

namespace tango::net {

using NodeId = std::size_t;

/// Deterministic port number a link occupies on each of its endpoints
/// (simulated switches have a small fixed port count; one link = one port).
inline std::uint16_t port_for_link(std::size_t link_index) {
  return static_cast<std::uint16_t>((link_index % 7) + 1);
}

struct Link {
  NodeId a = 0;
  NodeId b = 0;
  SimDuration latency = micros(50);
  double capacity_gbps = 10.0;
  bool up = true;
};

class Topology {
 public:
  NodeId add_node(std::string name);
  /// Returns the link index.
  std::size_t add_link(NodeId a, NodeId b, SimDuration latency = micros(50),
                       double capacity_gbps = 10.0);

  void set_link_state(std::size_t link_index, bool up);
  /// Fails the first up-link between a and b; returns its index if found.
  std::optional<std::size_t> fail_link_between(NodeId a, NodeId b);

  [[nodiscard]] std::size_t node_count() const { return names_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] const std::string& name(NodeId n) const { return names_[n]; }
  [[nodiscard]] const Link& link(std::size_t i) const { return links_[i]; }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }

  /// Up-neighbors of n.
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId n) const;

  /// Latency-weighted shortest path (Dijkstra) over up links; empty if
  /// unreachable. Path includes both endpoints.
  [[nodiscard]] std::vector<NodeId> shortest_path(NodeId src, NodeId dst) const;

  /// Up to k link-disjoint shortest paths (greedy: remove used links and
  /// re-run). Used by the max-min fair TE allocator.
  [[nodiscard]] std::vector<std::vector<NodeId>> disjoint_paths(NodeId src, NodeId dst,
                                                                std::size_t k) const;

  /// Index of an up link between two adjacent nodes, if any (lowest link
  /// index wins, matching historical scan order).
  [[nodiscard]] std::optional<std::size_t> link_between(NodeId a, NodeId b) const;

  /// Indices of all links touching `n` (up or down), in link-index order.
  [[nodiscard]] const std::vector<std::size_t>& links_of(NodeId n) const {
    return adj_[n];
  }

 private:
  std::vector<std::string> names_;
  std::vector<Link> links_;
  /// Per-node link-index lists; maintained by add_node/add_link.
  std::vector<std::vector<std::size_t>> adj_;
};

}  // namespace tango::net
