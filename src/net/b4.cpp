#include "net/b4.h"

namespace tango::net {

namespace {

// Site pairs (1-based), 19 links.
constexpr std::pair<int, int> kB4Links[] = {
    {1, 2}, {1, 3}, {2, 3}, {2, 4},  {3, 4},  {4, 5},  {4, 6},
    {5, 6}, {5, 7}, {6, 7}, {6, 8},  {7, 8},  {7, 10}, {8, 9},
    {8, 10}, {9, 10}, {9, 11}, {10, 12}, {11, 12},
};

// Approximate one-way site-to-site latencies (ms) — mix of intra-continent
// and trans-oceanic spans.
constexpr double kB4LatencyMs[] = {
    12, 18, 9,  14, 11, 30, 26, 8,  35, 22, 28, 9, 40, 15, 31, 12, 45, 38, 10,
};

}  // namespace

Topology b4_topology() {
  Topology topo;
  for (int i = 1; i <= 12; ++i) topo.add_node("B4-" + std::to_string(i));
  for (std::size_t i = 0; i < std::size(kB4Links); ++i) {
    topo.add_link(static_cast<NodeId>(kB4Links[i].first - 1),
                  static_cast<NodeId>(kB4Links[i].second - 1),
                  millis(kB4LatencyMs[i]), 10.0);
  }
  return topo;
}

std::vector<SwitchId> build_b4(Network& network,
                               const switchsim::SwitchProfile& profile) {
  std::vector<SwitchId> ids;
  ids.reserve(12);
  for (int i = 1; i <= 12; ++i) {
    auto site_profile = profile;
    site_profile.name = "B4-" + std::to_string(i);
    ids.push_back(network.add_switch(site_profile));
  }
  for (std::size_t i = 0; i < std::size(kB4Links); ++i) {
    network.topology().add_link(Network::node_of(ids[kB4Links[i].first - 1]),
                                Network::node_of(ids[kB4Links[i].second - 1]),
                                millis(kB4LatencyMs[i]), 10.0);
  }
  return ids;
}

}  // namespace tango::net
