#include "net/fault_injector.h"

#include <algorithm>

namespace tango::net {

bool FaultInjector::in_partition(SimTime now) const {
  for (const auto& p : config_.partitions) {
    if (now >= p.at && now < p.at + p.duration) return true;
  }
  return false;
}

namespace {

/// Effective drop probability at `now`: the configured base raised to any
/// covering loss-burst window's rate (one Bernoulli draw either way, so the
/// RNG stream stays aligned between bursty and quiet stretches).
double burst_drop(const FaultConfig& c, bool to_switch, SimTime now) {
  double p = to_switch ? c.drop_to_switch : c.drop_to_controller;
  for (const auto& b : c.loss_bursts) {
    if (now >= b.at && now < b.at + b.duration) {
      p = std::max(p, to_switch ? b.drop_to_switch : b.drop_to_controller);
    }
  }
  return p;
}

}  // namespace

std::vector<FaultInjector::Delivery> FaultInjector::plan(
    Direction dir, std::vector<std::uint8_t> frame, SimTime now) {
  // A partition blackholes everything before any other fault gets a say
  // (and before any RNG draw, so the post-partition stream is unaffected
  // by how much traffic the window swallowed).
  if (in_partition(now)) {
    ++stats_.lost_to_partition;
    return {};
  }
  // Scripted drops take precedence over probabilistic faults so tests can
  // target exactly one message of a given type.
  if (frame.size() > 1) {
    const auto type = static_cast<of::MsgType>(frame[1]);
    for (auto& fd : forced_drops_) {
      if (fd.dir == dir && fd.type == type && fd.remaining > 0) {
        --fd.remaining;
        ++stats_.forced_drops;
        return {};
      }
    }
  }

  const bool to_switch = dir == Direction::kToSwitch;
  const auto& c = config_;
  if (rng_.chance(burst_drop(c, to_switch, now))) {
    ++(to_switch ? stats_.dropped_to_switch : stats_.dropped_to_controller);
    return {};
  }

  std::size_t copies = 1;
  if (rng_.chance(to_switch ? c.duplicate_to_switch : c.duplicate_to_controller)) {
    copies = 2;
    ++stats_.duplicated;
  }

  std::vector<Delivery> out;
  out.reserve(copies);
  for (std::size_t i = 0; i < copies; ++i) {
    Delivery d;
    d.frame = frame;
    if (rng_.chance(to_switch ? c.corrupt_to_switch : c.corrupt_to_controller) &&
        !d.frame.empty()) {
      const std::size_t flips = 1 + rng_.index(4);
      for (std::size_t k = 0; k < flips; ++k) {
        d.frame[rng_.index(d.frame.size())] ^=
            static_cast<std::uint8_t>(1u << rng_.index(8));
      }
      ++stats_.corrupted;
    }
    if (rng_.chance(to_switch ? c.reorder_to_switch : c.reorder_to_controller) &&
        c.reorder_window.ns() > 0) {
      d.extra_delay = nanos(rng_.uniform_int(1, c.reorder_window.ns()));
      ++stats_.reordered;
    }
    out.push_back(std::move(d));
  }
  return out;
}

std::optional<SimDuration> FaultInjector::plan_notification(SimTime now) {
  if (in_partition(now)) {
    ++stats_.lost_to_partition;
    return std::nullopt;
  }
  if (rng_.chance(burst_drop(config_, /*to_switch=*/false, now))) {
    ++stats_.notifications_dropped;
    return std::nullopt;
  }
  if (rng_.chance(config_.reorder_to_controller) &&
      config_.reorder_window.ns() > 0) {
    ++stats_.reordered;
    return nanos(rng_.uniform_int(1, config_.reorder_window.ns()));
  }
  return SimDuration{};
}

SimDuration FaultInjector::draw_stall() {
  if (config_.stall_probability > 0 && rng_.chance(config_.stall_probability)) {
    ++stats_.stalls;
    return config_.stall_duration;
  }
  return SimDuration{};
}

void FaultInjector::force_drop(Direction dir, of::MsgType type,
                               std::size_t count) {
  forced_drops_.push_back(ForcedDrop{dir, type, count});
}

}  // namespace tango::net
