#include "net/topology.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

namespace tango::net {

NodeId Topology::add_node(std::string name) {
  names_.push_back(std::move(name));
  adj_.emplace_back();
  return names_.size() - 1;
}

std::size_t Topology::add_link(NodeId a, NodeId b, SimDuration latency,
                               double capacity_gbps) {
  links_.push_back(Link{a, b, latency, capacity_gbps, true});
  const std::size_t idx = links_.size() - 1;
  adj_[a].push_back(idx);
  if (b != a) adj_[b].push_back(idx);
  return idx;
}

void Topology::set_link_state(std::size_t link_index, bool up) {
  links_[link_index].up = up;
}

std::optional<std::size_t> Topology::fail_link_between(NodeId a, NodeId b) {
  auto idx = link_between(a, b);
  if (idx) links_[*idx].up = false;
  return idx;
}

std::vector<NodeId> Topology::neighbors(NodeId n) const {
  std::vector<NodeId> out;
  out.reserve(adj_[n].size());
  for (const std::size_t i : adj_[n]) {
    const auto& l = links_[i];
    if (!l.up) continue;
    // Self-loops appear twice in adj_[n] and thus twice here, matching the
    // historical full-scan behaviour (which pushed both endpoints).
    out.push_back(l.a == n ? l.b : l.a);
  }
  return out;
}

std::optional<std::size_t> Topology::link_between(NodeId a, NodeId b) const {
  // adj_ lists are in link-index order, so the first hit is the lowest
  // index — the same answer the historical full scan produced.
  for (const std::size_t i : adj_[a]) {
    const auto& l = links_[i];
    if (!l.up) continue;
    if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) return i;
  }
  return std::nullopt;
}

namespace {

std::vector<NodeId> dijkstra(const std::vector<std::vector<std::size_t>>& adj,
                             const std::vector<Link>& links,
                             const std::set<std::size_t>& excluded, NodeId src,
                             NodeId dst) {
  const std::size_t n = adj.size();
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> dist(n, kInf);
  std::vector<NodeId> prev(n, n);
  using Item = std::pair<std::int64_t, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[src] = 0;
  heap.emplace(0, src);
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    if (u == dst) break;
    for (const std::size_t i : adj[u]) {
      if (!links[i].up || excluded.count(i) != 0) continue;
      const auto& l = links[i];
      const NodeId v = l.a == u ? l.b : l.a;
      const std::int64_t nd = d + l.latency.ns();
      if (nd < dist[v]) {
        dist[v] = nd;
        prev[v] = u;
        heap.emplace(nd, v);
      }
    }
  }
  if (dist[dst] == kInf) return {};
  std::vector<NodeId> path;
  for (NodeId cur = dst; cur != src; cur = prev[cur]) {
    path.push_back(cur);
    if (prev[cur] == n) return {};
  }
  path.push_back(src);
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

std::vector<NodeId> Topology::shortest_path(NodeId src, NodeId dst) const {
  if (src == dst) return {src};
  return dijkstra(adj_, links_, {}, src, dst);
}

std::vector<std::vector<NodeId>> Topology::disjoint_paths(NodeId src, NodeId dst,
                                                          std::size_t k) const {
  std::vector<std::vector<NodeId>> out;
  std::set<std::size_t> used;
  for (std::size_t round = 0; round < k; ++round) {
    auto path = dijkstra(adj_, links_, used, src, dst);
    if (path.empty()) break;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      for (const std::size_t li : adj_[path[i]]) {
        const auto& l = links_[li];
        if ((l.a == path[i] && l.b == path[i + 1]) ||
            (l.b == path[i] && l.a == path[i + 1])) {
          used.insert(li);
        }
      }
    }
    out.push_back(std::move(path));
  }
  return out;
}

}  // namespace tango::net
