// Seeded fault injection for the control channel.
//
// The injector sits between ControlChannel and the event queue: every frame
// about to cross the wire is turned into a *delivery plan* — zero copies
// (dropped), one (normal, possibly delayed or corrupted), or two
// (duplicated). Completion notices that the simulator delivers out-of-band
// (flow_mod done, probe returned) are faulted through plan_notification()
// so "the switch did it but the controller never heard" is expressible.
// Agent failures come in two shapes: a stall (the management CPU freezes
// for a while but state survives) and a crash (tables wiped, every
// in-flight message lost, reconnect after a downtime window).
//
// All randomness is drawn from one Rng seeded from FaultConfig::seed, and
// draws happen in event order on the deterministic EventQueue — so a given
// (topology, workload, fault seed) triple replays byte-for-byte.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "openflow/constants.h"

namespace tango::net {

/// Declaratively scheduled faults, one list per fault type, so a chaos
/// schedule (src/chaos) can drive the injector without touching its RNG.
/// Times are absolute simulated times; events in the past fire immediately
/// when the injector is attached (the event queue clamps to now).
struct ScheduledCrash {
  SimTime at{};
  SimDuration downtime = millis(50);
};

struct ScheduledStall {
  SimTime at{};
  SimDuration duration = millis(10);
};

/// Control-channel partition: every frame and completion notice, in BOTH
/// directions, is blackholed for the window [at, at + duration). The agent
/// itself keeps running (state survives, unlike a crash) — the controller
/// simply cannot reach it, and vice versa.
struct ScheduledPartition {
  SimTime at{};
  SimDuration duration = millis(20);
};

/// Correlated loss burst: for the window [at, at + duration) the drop
/// probabilities are raised to at least the burst's values (the per-frame
/// Bernoulli draw still comes from the injector's one RNG, so bursts stay
/// reproducible).
struct ScheduledLossBurst {
  SimTime at{};
  SimDuration duration = millis(20);
  double drop_to_switch = 0.5;
  double drop_to_controller = 0.5;
};

struct FaultConfig {
  /// Per-direction Bernoulli fault probabilities, drawn once per frame.
  double drop_to_switch = 0.0;
  double drop_to_controller = 0.0;
  double duplicate_to_switch = 0.0;
  double duplicate_to_controller = 0.0;
  /// Probability that a frame is held back by a uniform extra delay in
  /// (0, reorder_window], letting frames sent after it overtake.
  double reorder_to_switch = 0.0;
  double reorder_to_controller = 0.0;
  SimDuration reorder_window = millis(1);
  /// Probability of flipping 1-4 random bytes in the frame. A corrupted
  /// frame that no longer decodes is discarded at the receiver (the
  /// transport's integrity check fails); one that still decodes is
  /// delivered as whatever it now says — exactly what a bit-flip does.
  double corrupt_to_switch = 0.0;
  double corrupt_to_controller = 0.0;
  /// Probability, per command arriving at the agent, that the agent
  /// freezes for stall_duration before processing anything further.
  double stall_probability = 0.0;
  SimDuration stall_duration = millis(10);
  /// One scheduled crash: at crash_at the agent reboots — all flow tables
  /// are wiped and every in-flight message (both directions) is lost; the
  /// agent accepts traffic again crash_downtime later. crash_at.ns() == 0
  /// disables the scheduled crash (Network::crash_agent still works).
  SimTime crash_at{};
  SimDuration crash_downtime = millis(50);
  std::uint64_t seed = 0xfa417u;

  // --- scheduled-event lists (declarative chaos driving) --------------------
  std::vector<ScheduledCrash> crashes;
  std::vector<ScheduledStall> stalls;
  std::vector<ScheduledPartition> partitions;
  std::vector<ScheduledLossBurst> loss_bursts;
};

struct FaultStats {
  std::uint64_t dropped_to_switch = 0;
  std::uint64_t dropped_to_controller = 0;
  std::uint64_t forced_drops = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t corrupted = 0;
  /// Corrupted frames the receiver could not decode and discarded.
  std::uint64_t undecodable = 0;
  /// Completion notices suppressed by plan_notification().
  std::uint64_t notifications_dropped = 0;
  /// Frames lost because a crash invalidated their delivery epoch.
  std::uint64_t lost_to_crash = 0;
  /// Frames that arrived while the agent was down (rebooting).
  std::uint64_t lost_to_down = 0;
  std::uint64_t stalls = 0;
  std::uint64_t crashes = 0;
  /// Scheduled partition windows that opened.
  std::uint64_t partitions = 0;
  /// Frames and completion notices blackholed by an active partition.
  std::uint64_t lost_to_partition = 0;
};

class FaultInjector {
 public:
  enum class Direction { kToSwitch, kToController };

  struct Delivery {
    SimDuration extra_delay{};
    std::vector<std::uint8_t> frame;
  };

  explicit FaultInjector(FaultConfig config)
      : config_(config), rng_(config.seed) {}

  /// Turn one outgoing frame into its delivery plan (0, 1, or 2 copies).
  /// `now` positions the frame against scheduled partition / loss-burst
  /// windows; callers without a clock (unit tests) may omit it.
  std::vector<Delivery> plan(Direction dir, std::vector<std::uint8_t> frame,
                             SimTime now = {});

  /// Fault plan for an out-of-band completion notice (no wire bytes):
  /// nullopt = lost, otherwise the extra delivery delay (usually zero).
  /// Notices travel switch->controller, so to-controller rates apply.
  std::optional<SimDuration> plan_notification(SimTime now = {});

  /// True while a scheduled partition window covers `now`.
  [[nodiscard]] bool in_partition(SimTime now) const;

  /// Agent stall drawn per arriving command (zero duration = no stall).
  SimDuration draw_stall();

  /// Deterministically drop the next `count` frames of `type` going `dir`
  /// (consumed before any probabilistic draw) — for scripted scenarios
  /// like "lose exactly one BARRIER_REQUEST".
  void force_drop(Direction dir, of::MsgType type, std::size_t count = 1);

  [[nodiscard]] const FaultConfig& config() const { return config_; }
  [[nodiscard]] const FaultStats& stats() const { return stats_; }
  /// Counters the channel maintains (crash/down/undecodable losses).
  FaultStats& mutable_stats() { return stats_; }

 private:
  struct ForcedDrop {
    Direction dir;
    of::MsgType type;
    std::size_t remaining;
  };

  FaultConfig config_;
  FaultStats stats_;
  Rng rng_;
  std::vector<ForcedDrop> forced_drops_;
};

}  // namespace tango::net
