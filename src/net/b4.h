// Google's B4 inter-datacenter WAN topology (Jain et al., SIGCOMM 2013):
// 12 sites, 19 inter-site links. Used by the Fig 12 network-wide TE
// experiment. Link latencies are representative WAN values; the paper's
// experiment runs this topology in Mininet with OVS switches.
#pragma once

#include <vector>

#include "net/network.h"
#include "net/topology.h"
#include "switchsim/switch_model.h"

namespace tango::net {

/// The 12-node/19-link B4 site graph (standalone, for routing tests).
Topology b4_topology();

/// Instantiate B4 inside a Network: one switch per site (all sharing
/// `profile`), links mirrored into the network's topology. Returns the
/// switch ids in site order.
std::vector<SwitchId> build_b4(Network& network,
                               const switchsim::SwitchProfile& profile);

}  // namespace tango::net
