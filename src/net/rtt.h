// Per-switch adaptive RTT estimation (Jacobson/Karels EWMA).
//
// The executor's recovery machinery historically ran on one fixed
// request_timeout knob. That is either too slow for a fast switch (dead
// time before the first retry) or too twitchy for a slow one (spurious
// timeouts that burn the retry budget). This estimator learns each
// switch's control-plane round trip from traffic the controller already
// generates — ECHO liveness probes and solo first-attempt flow_mod
// completions — and derives a deadline the classic TCP way:
//
//   srtt   <- (1-alpha) * srtt + alpha * sample        (alpha = 1/8)
//   rttvar <- (1-beta)  * rttvar + beta * |srtt-sample| (beta = 1/4)
//   rto    =  srtt + k * rttvar                         (k = 4)
//
// The fixed knob stays as the fallback: before `warmup` samples exist for
// a switch the fallback is returned verbatim, and an adaptive deadline is
// clamped to never exceed it (adapting may only tighten recovery, never
// loosen it past what the operator configured). Pure bookkeeping on
// virtual-time durations — deterministic, no wall clock.
#pragma once

#include <cstdint>
#include <map>

#include "common/types.h"

namespace tango::net {

struct RttEstimate {
  double srtt_ms = 0.0;
  double rttvar_ms = 0.0;
  std::uint64_t samples = 0;
};

class RttEstimator {
 public:
  struct Config {
    double alpha = 0.125;
    double beta = 0.25;
    /// Deviation multiplier in the deadline formula.
    double k = 4.0;
    /// Deadline floor: protects against a degenerate zero-variance estimate
    /// timing out faster than the channel can physically answer.
    SimDuration floor = millis(1);
    /// Samples needed before timeout_for() trusts the estimate.
    std::uint64_t warmup = 2;
  };

  RttEstimator() = default;
  explicit RttEstimator(Config config) : config_(config) {}

  /// Feed one measured round trip for `id`.
  void observe(SwitchId id, SimDuration rtt);

  /// Adaptive deadline for `id`: srtt + k*rttvar, clamped to
  /// [floor, fallback]. Returns `fallback` verbatim while under warmup —
  /// including fallback == 0, which callers treat as "recovery disabled".
  [[nodiscard]] SimDuration timeout_for(SwitchId id, SimDuration fallback) const;

  /// Current estimate, or nullptr if `id` has never been observed.
  [[nodiscard]] const RttEstimate* estimate(SwitchId id) const;

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
  std::map<SwitchId, RttEstimate> switches_;
};

}  // namespace tango::net
