#include "net/rtt.h"

#include <algorithm>
#include <cmath>

namespace tango::net {

void RttEstimator::observe(SwitchId id, SimDuration rtt) {
  if (rtt.ns() < 0) return;
  const double sample_ms = static_cast<double>(rtt.ns()) / 1e6;
  auto& e = switches_[id];
  if (e.samples == 0) {
    // First sample seeds the classic way: srtt = R, rttvar = R/2.
    e.srtt_ms = sample_ms;
    e.rttvar_ms = sample_ms / 2.0;
  } else {
    e.rttvar_ms = (1.0 - config_.beta) * e.rttvar_ms +
                  config_.beta * std::abs(e.srtt_ms - sample_ms);
    e.srtt_ms = (1.0 - config_.alpha) * e.srtt_ms + config_.alpha * sample_ms;
  }
  ++e.samples;
}

SimDuration RttEstimator::timeout_for(SwitchId id, SimDuration fallback) const {
  const auto it = switches_.find(id);
  if (it == switches_.end() || it->second.samples < config_.warmup) {
    return fallback;
  }
  const auto& e = it->second;
  auto rto = millis(e.srtt_ms + config_.k * e.rttvar_ms);
  rto = std::max(rto, config_.floor);
  // Adapting tightens recovery; the configured knob stays the ceiling.
  if (fallback.ns() > 0) rto = std::min(rto, fallback);
  return rto;
}

const RttEstimate* RttEstimator::estimate(SwitchId id) const {
  const auto it = switches_.find(id);
  return it == switches_.end() ? nullptr : &it->second;
}

}  // namespace tango::net
