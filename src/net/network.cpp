#include "net/network.h"

#include <cassert>
#include <chrono>

#include "common/logging.h"
#include "openflow/epoch.h"

namespace tango::net {

Network::Network(SimDuration control_latency)
    : control_latency_(control_latency) {}

SwitchId Network::add_switch(const switchsim::SwitchProfile& profile,
                             std::uint64_t seed) {
  const SwitchId id = static_cast<SwitchId>(endpoints_.size() + 1);
  if (seed == 0) seed = 0x5eed0000 + id;
  Endpoint ep;
  ep.sw = std::make_unique<switchsim::SimulatedSwitch>(id, profile, seed);
  ep.channel =
      std::make_unique<ControlChannel>(events_, *ep.sw, control_latency_);

  ep.channel->set_flow_mod_handler(
      [this](std::uint32_t xid, bool accepted, SimTime completed_at,
             const std::optional<of::ErrorMsg>& error) {
        auto it = flow_mod_cbs_.find(xid);
        if (it == flow_mod_cbs_.end()) return;
        auto cb = std::move(it->second);
        flow_mod_cbs_.erase(it);
        FlowModResult res;
        res.accepted = accepted;
        res.completed_at = completed_at;
        if (error.has_value()) {
          res.has_error = true;
          res.error_type = error->type;
          res.error_code = error->code;
        }
        cb(res);
      });
  ep.channel->set_probe_handler(
      [this](std::uint32_t xid, const switchsim::ForwardOutcome& outcome) {
        auto it = probe_cbs_.find(xid);
        if (it == probe_cbs_.end()) return;
        auto cb = std::move(it->second);
        probe_cbs_.erase(it);
        cb(outcome);
      });
  ep.channel->set_crash_handler([this, id]() {
    if (crash_handler_) crash_handler_(id);
    // Snapshot tokens first: a listener may add/remove listeners (e.g. a
    // transaction aborting and deregistering) while we iterate.
    std::vector<std::uint64_t> tokens;
    tokens.reserve(crash_listeners_.size());
    for (const auto& [token, fn] : crash_listeners_) tokens.push_back(token);
    for (std::uint64_t token : tokens) {
      auto it = crash_listeners_.find(token);
      if (it != crash_listeners_.end()) it->second(id);
    }
  });
  ep.channel->set_message_handler([this, id](const of::Message& msg) {
    auto it = reply_cbs_.find(msg.xid);
    if (it == reply_cbs_.end()) {
      if (unsolicited_) unsolicited_(id, msg);
      return;
    }
    auto cb = std::move(it->second);
    reply_cbs_.erase(it);
    cb(msg);
  });

  endpoints_.push_back(std::move(ep));
  topo_.add_node(profile.name + "#" + std::to_string(id));
  if (telemetry_ != nullptr) attach_telemetry(id);
  return id;
}

void Network::attach_telemetry(SwitchId id) {
  Endpoint& ep = endpoint(id);
  ep.channel->set_telemetry(telemetry_, id);
  telemetry_->trace.set_lane_name(
      id, ep.sw->profile().name + " s" + std::to_string(id));
}

void Network::set_telemetry(telemetry::Telemetry* t) {
  telemetry_ = t;
  for (SwitchId id = 1; id <= endpoints_.size(); ++id) {
    if (telemetry_ != nullptr) {
      attach_telemetry(id);
    } else {
      endpoints_[id - 1].channel->set_telemetry(nullptr, id);
    }
  }
  if (telemetry_ != nullptr) {
    telemetry_->trace.set_lane_name(telemetry::TraceCollector::kControllerLane,
                                    "controller");
  }
}

Network::Endpoint& Network::endpoint(SwitchId id) {
  assert(id >= 1 && id <= endpoints_.size());
  return endpoints_[id - 1];
}

switchsim::SimulatedSwitch& Network::sw(SwitchId id) { return *endpoint(id).sw; }

ControlChannel& Network::channel(SwitchId id) { return *endpoint(id).channel; }

const ChannelStats& Network::stats(SwitchId id) const {
  assert(id >= 1 && id <= endpoints_.size());
  return endpoints_[id - 1].channel->stats();
}

FaultInjector& Network::enable_faults(SwitchId id, const FaultConfig& config) {
  Endpoint& ep = endpoint(id);
  ep.injector = std::make_unique<FaultInjector>(config);
  ep.channel->attach_fault_injector(ep.injector.get());
  return *ep.injector;
}

FaultInjector* Network::fault_injector(SwitchId id) {
  return endpoint(id).injector.get();
}

std::uint64_t Network::add_crash_listener(CrashHandler h) {
  const std::uint64_t token = next_crash_token_++;
  crash_listeners_.emplace(token, std::move(h));
  return token;
}

void Network::remove_crash_listener(std::uint64_t token) {
  crash_listeners_.erase(token);
}

void Network::crash_agent(SwitchId id, SimDuration downtime) {
  endpoint(id).channel->crash_agent(downtime);
}

void Network::stall_agent(SwitchId id, SimDuration duration) {
  endpoint(id).channel->stall_agent(duration);
}

void Network::set_misbehavior(SwitchId id,
                              switchsim::MisbehaviorProfile profile) {
  // Schedule a no-op ECHO at each event time: its arrival sweeps the switch
  // (activating the event) and drains any fabricated FLOW_REMOVED notices —
  // the same trick set_link_state uses to flush PORT_STATUS.
  std::vector<SimTime> pokes;
  pokes.reserve(profile.events.size());
  for (const auto& ev : profile.events) pokes.push_back(ev.at);
  sw(id).set_misbehavior(std::move(profile));
  for (const SimTime at : pokes) {
    events_.schedule_at(at, [this, id]() {
      endpoint(id).channel->send(of::Message{next_xid(), of::EchoRequest{}});
    });
  }
}

namespace {

/// Wall-clock scope guard: adds the elapsed real time of an event-loop
/// stretch to `acc` on exit. Reading steady_clock never perturbs the
/// simulation (no event, no RNG, no virtual time).
class WallTimer {
 public:
  explicit WallTimer(std::uint64_t& acc)
      : acc_(acc), begin_(std::chrono::steady_clock::now()) {}
  ~WallTimer() {
    acc_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - begin_)
            .count());
  }

 private:
  std::uint64_t& acc_;
  std::chrono::steady_clock::time_point begin_;
};

}  // namespace

void Network::run_all() {
  WallTimer timer(wall_ns_);
  events_.run();
}

bool Network::run_until_done(const bool& done, SimDuration timeout) {
  WallTimer timer(wall_ns_);
  if (timeout.ns() == 0) {
    while (!done && events_.step()) {
    }
    return done;
  }
  const SimTime deadline = events_.now() + timeout;
  while (!done && !events_.empty() && events_.peek_time() <= deadline) {
    events_.step();
  }
  // Waiting out a timeout costs real (virtual) time even when the queue has
  // nothing left before the deadline. Without this, a retry loop spins at a
  // frozen clock and can never outlast a fault window — a rebooting agent
  // looked permanently down to Reconciler::read_table's back-to-back retries.
  if (!done) events_.run_until(deadline);
  return done;
}

namespace {

/// Adapt a plain Completion to the detailed completion form.
Network::CompletionEx wrap_completion(Network::Completion done) {
  return [cb = std::move(done)](const Network::FlowModResult& res) {
    cb(res.accepted, res.completed_at);
  };
}

}  // namespace

Network::InstallResult Network::install(SwitchId id, const of::FlowMod& fm,
                                        SimDuration timeout) {
  InstallResult result;
  bool done = false;
  const std::uint32_t xid = next_xid();
  flow_mod_cbs_[xid] = [&](const FlowModResult& res) {
    result.accepted = res.accepted;
    result.completed_at = res.completed_at;
    done = true;
  };
  endpoint(id).channel->send(of::Message{xid, fm});
  if (!run_until_done(done, timeout)) {
    // Command or its completion notice lost; drop the callback so a late
    // duplicate cannot fire into a dead stack frame.
    flow_mod_cbs_.erase(xid);
    result.lost = true;
  }
  return result;
}

void Network::post_flow_mod(SwitchId id, const of::FlowMod& fm, Completion done) {
  post_flow_mod_ex(id, fm, wrap_completion(std::move(done)));
}

void Network::post_flow_mod_ex(SwitchId id, const of::FlowMod& fm,
                               CompletionEx done) {
  const std::uint32_t xid = next_xid();
  flow_mod_cbs_[xid] = std::move(done);
  endpoint(id).channel->send(of::Message{xid, fm});
}

void Network::post_flow_mod_batch(SwitchId id, std::span<const of::FlowMod> fms,
                                  Completion done_each) {
  std::vector<of::Message> msgs;
  msgs.reserve(fms.size());
  const CompletionEx each = wrap_completion(std::move(done_each));
  for (const auto& fm : fms) {
    const std::uint32_t xid = next_xid();
    flow_mod_cbs_[xid] = each;
    msgs.push_back(of::Message{xid, fm});
  }
  endpoint(id).channel->send_batch(msgs);
}

SimTime Network::barrier_sync(SwitchId id) {
  const auto arrival = try_barrier_sync(id);
  assert(arrival.has_value());
  return arrival.value_or(events_.now());
}

std::optional<SimTime> Network::try_barrier_sync(SwitchId id,
                                                SimDuration timeout) {
  const std::uint32_t xid = next_xid();
  bool done = false;
  SimTime arrival{};
  reply_cbs_[xid] = [&](const of::Message& msg) {
    if (!std::holds_alternative<of::BarrierReply>(msg.body)) return;
    arrival = events_.now();
    done = true;
  };
  endpoint(id).channel->send(of::Message{xid, of::BarrierRequest{}});
  if (!run_until_done(done, timeout)) {
    reply_cbs_.erase(xid);
    return std::nullopt;
  }
  return arrival;
}

std::uint32_t Network::post_echo(SwitchId id, std::function<void()> on_reply) {
  const std::uint32_t xid = next_xid();
  reply_cbs_[xid] = [cb = std::move(on_reply)](const of::Message&) { cb(); };
  endpoint(id).channel->send(of::Message{xid, of::EchoRequest{}});
  return xid;
}

void Network::cancel_reply(std::uint32_t xid) { reply_cbs_.erase(xid); }

std::uint32_t Network::post_epoch_claim(
    SwitchId id, std::uint32_t epoch,
    std::function<void(const EpochClaimResult&)> done) {
  const std::uint32_t xid = next_xid();
  reply_cbs_[xid] = [cb = std::move(done)](const of::Message& msg) {
    EpochClaimResult out;
    if (const auto* vendor = std::get_if<of::Vendor>(&msg.body)) {
      if (const auto payload = of::decode_epoch_payload(vendor->data);
          payload.has_value() &&
          payload->subtype == of::kEpochClaimReplySubtype) {
        out.lost = false;
        out.accepted = (payload->flags & of::kEpochClaimAccepted) != 0;
        out.switch_epoch = payload->epoch;
      }
    }
    cb(out);
  };
  of::Vendor claim;
  claim.vendor_id = of::kTangoVendorId;
  claim.data = of::encode_epoch_payload(of::kEpochClaimSubtype, epoch);
  endpoint(id).channel->send(of::Message{xid, std::move(claim)});
  return xid;
}

Network::EpochClaimResult Network::claim_epoch_sync(SwitchId id,
                                                    std::uint32_t epoch,
                                                    SimDuration timeout) {
  bool done = false;
  EpochClaimResult result;
  const std::uint32_t xid = post_epoch_claim(id, epoch, [&](const EpochClaimResult& r) {
    result = r;
    done = true;
  });
  if (!run_until_done(done, timeout)) reply_cbs_.erase(xid);
  return result;
}

namespace {

/// Send a request and synchronously wait for the typed reply.
template <typename Reply, typename Request>
Reply request_reply(Network& net, sim::EventQueue& events,
                    std::unordered_map<std::uint32_t,
                                       std::function<void(const of::Message&)>>& cbs,
                    std::uint32_t xid, ControlChannel& channel, Request req) {
  (void)net;
  Reply out{};
  bool done = false;
  cbs[xid] = [&](const of::Message& msg) {
    if (const auto* typed = std::get_if<Reply>(&msg.body)) out = *typed;
    done = true;
  };
  channel.send(of::Message{xid, std::move(req)});
  while (!done && events.step()) {
  }
  if (!done) {
    // Request or reply lost to faults: return a default-constructed reply
    // rather than wedging the (sequential) caller.
    cbs.erase(xid);
    log::warn("network: stats request lost, returning empty reply");
  }
  return out;
}

}  // namespace

of::FlowStatsReply Network::flow_stats_sync(SwitchId id, const of::Match& filter) {
  of::FlowStatsRequest req;
  req.match = filter;
  return request_reply<of::FlowStatsReply>(*this, events_, reply_cbs_, next_xid(),
                                           *endpoint(id).channel, std::move(req));
}

std::optional<of::FlowStatsReply> Network::try_flow_stats(SwitchId id,
                                                          const of::Match& filter,
                                                          SimDuration timeout) {
  const std::uint32_t xid = next_xid();
  bool done = false;
  of::FlowStatsReply out;
  reply_cbs_[xid] = [&](const of::Message& msg) {
    if (const auto* typed = std::get_if<of::FlowStatsReply>(&msg.body)) {
      out = *typed;
      done = true;
    }
  };
  of::FlowStatsRequest req;
  req.match = filter;
  endpoint(id).channel->send(of::Message{xid, std::move(req)});
  if (!run_until_done(done, timeout)) {
    reply_cbs_.erase(xid);
    return std::nullopt;
  }
  return out;
}

of::TableStatsReply Network::table_stats_sync(SwitchId id) {
  return request_reply<of::TableStatsReply>(*this, events_, reply_cbs_, next_xid(),
                                            *endpoint(id).channel,
                                            of::TableStatsRequest{});
}

of::FeaturesReply Network::features_sync(SwitchId id) {
  return request_reply<of::FeaturesReply>(*this, events_, reply_cbs_, next_xid(),
                                          *endpoint(id).channel,
                                          of::FeaturesRequest{});
}

of::AggregateStatsReply Network::aggregate_stats_sync(SwitchId id,
                                                      const of::Match& filter) {
  of::AggregateStatsRequest req;
  req.match = filter;
  return request_reply<of::AggregateStatsReply>(*this, events_, reply_cbs_,
                                                next_xid(), *endpoint(id).channel,
                                                std::move(req));
}

of::DescStatsReply Network::description_sync(SwitchId id) {
  return request_reply<of::DescStatsReply>(*this, events_, reply_cbs_, next_xid(),
                                           *endpoint(id).channel,
                                           of::DescStatsRequest{});
}

of::PortStatsReply Network::port_stats_sync(SwitchId id, std::uint16_t port_no) {
  of::PortStatsRequest req;
  req.port_no = port_no;
  return request_reply<of::PortStatsReply>(*this, events_, reply_cbs_, next_xid(),
                                           *endpoint(id).channel, std::move(req));
}

of::GetConfigReply Network::get_config_sync(SwitchId id) {
  return request_reply<of::GetConfigReply>(*this, events_, reply_cbs_, next_xid(),
                                           *endpoint(id).channel,
                                           of::GetConfigRequest{});
}

void Network::set_link_state(std::size_t link_index, bool up) {
  topo_.set_link_state(link_index, up);
  const auto& link = topo_.link(link_index);
  const auto port = port_for_link(link_index);
  for (const NodeId node : {link.a, link.b}) {
    const SwitchId id = switch_of(node);
    if (id >= 1 && id <= endpoints_.size()) {
      sw(id).set_port_link(port, up);
      // Deliver the queued PORT_STATUS through the channel (a no-op
      // message arrival triggers the drain).
      endpoint(id).channel->send(of::Message{next_xid(), of::EchoRequest{}});
    }
  }
}

Network::ProbeResult Network::probe(SwitchId id, const of::PacketHeader& header,
                                    SimDuration timeout) {
  const std::uint32_t xid = next_xid();
  of::Packet pkt;
  pkt.header = header;

  of::PacketOut po;
  po.in_port = header.in_port;
  po.actions = of::output_to(of::kPortTable);  // run through the flow tables
  po.data = pkt.encode();

  ProbeResult result;
  bool done = false;
  probe_cbs_[xid] = [&](const switchsim::ForwardOutcome& outcome) {
    result.outcome = outcome;
    result.rtt = outcome.delay;
    done = true;
  };
  endpoint(id).channel->send(of::Message{xid, po});
  if (!run_until_done(done, timeout)) {
    probe_cbs_.erase(xid);
    result.lost = true;
  }
  return result;
}

}  // namespace tango::net
