// Control channel between the controller and one simulated switch.
//
// Every message crosses the channel as real OpenFlow 1.0 wire bytes (encoded
// and re-decoded through the codec) so byte/message accounting is honest.
// The switch agent processes control commands sequentially: a command starts
// at max(arrival, busy_until) and occupies the agent for its processing
// time; BARRIER_REQUEST is answered only once everything before it is done —
// exactly how the paper's install-latency measurements are taken.
//
// Data-plane packets (PACKET_OUT probes) bypass the command queue: the ASIC
// forwards regardless of what the management CPU is doing.
//
// A FaultInjector may be attached, in which case every frame (and every
// out-of-band completion notice) is routed through its delivery plan:
// drops, duplicates, reorder delays, byte corruption, agent stalls, and a
// crash that wipes the flow tables and loses everything in flight. Crash
// semantics use a delivery epoch: each in-flight event carries the epoch it
// was sent under and is discarded on arrival if a crash bumped it since.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "net/fault_injector.h"
#include "openflow/codec.h"
#include "openflow/packet.h"
#include "sim/event_queue.h"
#include "switchsim/switch_model.h"
#include "telemetry/trace.h"

namespace tango::net {

struct ChannelStats {
  std::uint64_t messages_to_switch = 0;
  std::uint64_t bytes_to_switch = 0;
  std::uint64_t messages_to_controller = 0;
  std::uint64_t bytes_to_controller = 0;
  std::uint64_t flow_mods = 0;
  std::uint64_t packets_out = 0;
};

class ControlChannel {
 public:
  /// Fires when the switch finishes a flow_mod this controller sent. On a
  /// rejection `error` carries the switch's ErrorMsg (type + code) so the
  /// controller can classify it; nullopt on success.
  using FlowModHandler =
      std::function<void(std::uint32_t xid, bool accepted, SimTime completed_at,
                         const std::optional<of::ErrorMsg>& error)>;
  /// Fires for any message the switch sends up (errors, packet_in, replies).
  using MessageHandler = std::function<void(const of::Message&)>;
  /// Fires when a probe packet completes its data-plane trip.
  using ProbeHandler = std::function<void(std::uint32_t xid,
                                          const switchsim::ForwardOutcome&)>;
  /// Fires at the moment the agent crashes (tables wiped, epoch bumped) —
  /// whether scheduled by a fault injector or forced via crash_agent().
  using CrashHandler = std::function<void()>;

  ControlChannel(sim::EventQueue& events, switchsim::SimulatedSwitch& sw,
                 SimDuration one_way_latency = micros(100));

  /// Send a controller->switch message; it is encoded, delayed by the
  /// channel latency, decoded, and handled by the switch agent.
  void send(of::Message msg);

  /// Send many messages as one wire burst: all frames are encoded
  /// back-to-back into a pooled buffer (reused across batches, so the
  /// executor hot path stops allocating one vector per message) and the
  /// switch processes them in order at the same simulated arrival instant
  /// sequential send() calls would produce — observable behaviour is
  /// bit-identical. With a fault injector attached, each frame must route
  /// through its own per-frame delivery plan (drop/duplicate/corrupt are
  /// per-message decisions), so the batch falls back to sequential sends.
  void send_batch(std::span<of::Message> msgs);

  void set_flow_mod_handler(FlowModHandler h) { on_flow_mod_ = std::move(h); }
  void set_message_handler(MessageHandler h) { on_message_ = std::move(h); }
  void set_probe_handler(ProbeHandler h) { on_probe_ = std::move(h); }
  void set_crash_handler(CrashHandler h) { on_crash_ = std::move(h); }

  /// Hook this channel into a telemetry context (non-owning; nullptr
  /// detaches). `lane` is the trace lane — the switch's datapath id. The
  /// channel emits one span per flow_mod the agent processes (its slice of
  /// the per-switch swim-lane) plus crash/stall instants, and caches its
  /// instrument pointers here so the per-message cost is a branch and a few
  /// integer adds.
  void set_telemetry(telemetry::Telemetry* t, SwitchId lane);

  /// Route all traffic through `injector` (non-owning; pass nullptr to
  /// detach). A configured crash_at schedules the crash immediately.
  void attach_fault_injector(FaultInjector* injector);
  [[nodiscard]] FaultInjector* fault_injector() { return injector_; }

  /// Crash the agent now: flow tables wiped (reset to power-on state),
  /// every in-flight message in both directions lost, and the agent
  /// rejects traffic until `downtime` has elapsed.
  void crash_agent(SimDuration downtime);

  /// Freeze the agent for `duration`: queued commands wait, state survives.
  /// Data-plane forwarding and ECHO liveness replies are unaffected.
  void stall_agent(SimDuration duration);

  /// True while the agent is rebooting after a crash.
  [[nodiscard]] bool agent_down(SimTime now) const { return now < down_until_; }

  [[nodiscard]] const ChannelStats& stats() const { return stats_; }
  [[nodiscard]] SimTime agent_busy_until() const { return busy_until_; }
  [[nodiscard]] switchsim::SimulatedSwitch& switch_model() { return switch_; }

 private:
  void deliver_to_switch(std::vector<std::uint8_t> frame);
  /// Pooled frame buffers for send_batch: capacity is recycled once a
  /// batch has been delivered and decoded.
  std::vector<std::uint8_t> acquire_buffer();
  void release_buffer(std::vector<std::uint8_t> buf);
  void on_arrival(const of::Message& msg);
  void handle(const of::Message& msg);
  void reply(of::Message msg, SimTime at);
  /// Schedule an out-of-band completion notice at `at`, subject to the
  /// injector's notification faults and the crash epoch.
  void notify(SimTime at, std::function<void()> fn);

  sim::EventQueue& events_;
  switchsim::SimulatedSwitch& switch_;
  SimDuration latency_;
  SimTime busy_until_{};
  ChannelStats stats_;
  FlowModHandler on_flow_mod_;
  MessageHandler on_message_;
  ProbeHandler on_probe_;
  CrashHandler on_crash_;
  FaultInjector* injector_ = nullptr;
  std::vector<std::vector<std::uint8_t>> spare_bufs_;
  /// Bumped on every crash; in-flight deliveries from older epochs vanish.
  std::uint64_t epoch_ = 0;
  SimTime down_until_{};

  // Telemetry (all nullptr when detached; see set_telemetry).
  telemetry::Telemetry* telemetry_ = nullptr;
  SwitchId lane_ = 0;
  telemetry::Counter* ctr_flow_mods_ = nullptr;
  telemetry::Counter* ctr_rejected_ = nullptr;
  telemetry::Histogram* hist_flow_mod_us_ = nullptr;
};

}  // namespace tango::net
