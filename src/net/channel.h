// Control channel between the controller and one simulated switch.
//
// Every message crosses the channel as real OpenFlow 1.0 wire bytes (encoded
// and re-decoded through the codec) so byte/message accounting is honest.
// The switch agent processes control commands sequentially: a command starts
// at max(arrival, busy_until) and occupies the agent for its processing
// time; BARRIER_REQUEST is answered only once everything before it is done —
// exactly how the paper's install-latency measurements are taken.
//
// Data-plane packets (PACKET_OUT probes) bypass the command queue: the ASIC
// forwards regardless of what the management CPU is doing.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "common/types.h"
#include "openflow/codec.h"
#include "openflow/packet.h"
#include "sim/event_queue.h"
#include "switchsim/switch_model.h"

namespace tango::net {

struct ChannelStats {
  std::uint64_t messages_to_switch = 0;
  std::uint64_t bytes_to_switch = 0;
  std::uint64_t messages_to_controller = 0;
  std::uint64_t bytes_to_controller = 0;
  std::uint64_t flow_mods = 0;
  std::uint64_t packets_out = 0;
};

class ControlChannel {
 public:
  /// Fires when the switch finishes a flow_mod this controller sent.
  using FlowModHandler =
      std::function<void(std::uint32_t xid, bool accepted, SimTime completed_at)>;
  /// Fires for any message the switch sends up (errors, packet_in, replies).
  using MessageHandler = std::function<void(const of::Message&)>;
  /// Fires when a probe packet completes its data-plane trip.
  using ProbeHandler = std::function<void(std::uint32_t xid,
                                          const switchsim::ForwardOutcome&)>;

  ControlChannel(sim::EventQueue& events, switchsim::SimulatedSwitch& sw,
                 SimDuration one_way_latency = micros(100));

  /// Send a controller->switch message; it is encoded, delayed by the
  /// channel latency, decoded, and handled by the switch agent.
  void send(of::Message msg);

  void set_flow_mod_handler(FlowModHandler h) { on_flow_mod_ = std::move(h); }
  void set_message_handler(MessageHandler h) { on_message_ = std::move(h); }
  void set_probe_handler(ProbeHandler h) { on_probe_ = std::move(h); }

  [[nodiscard]] const ChannelStats& stats() const { return stats_; }
  [[nodiscard]] SimTime agent_busy_until() const { return busy_until_; }
  [[nodiscard]] switchsim::SimulatedSwitch& switch_model() { return switch_; }

 private:
  void on_arrival(const of::Message& msg);
  void handle(const of::Message& msg);
  void reply(of::Message msg, SimTime at);

  sim::EventQueue& events_;
  switchsim::SimulatedSwitch& switch_;
  SimDuration latency_;
  SimTime busy_until_{};
  ChannelStats stats_;
  FlowModHandler on_flow_mod_;
  MessageHandler on_message_;
  ProbeHandler on_probe_;
};

}  // namespace tango::net
