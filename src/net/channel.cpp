#include "net/channel.h"

#include <cassert>

#include "common/logging.h"

namespace tango::net {

ControlChannel::ControlChannel(sim::EventQueue& events,
                               switchsim::SimulatedSwitch& sw,
                               SimDuration one_way_latency)
    : events_(events), switch_(sw), latency_(one_way_latency) {}

void ControlChannel::send(of::Message msg) {
  // Round-trip through the codec: what arrives is what the wire carried.
  const auto frame = of::encode(msg);
  stats_.messages_to_switch += 1;
  stats_.bytes_to_switch += frame.size();
  events_.schedule_after(latency_, [this, frame = std::move(frame)]() {
    auto decoded = of::decode(frame);
    assert(decoded.ok());
    on_arrival(decoded.value());
  });
}

void ControlChannel::reply(of::Message msg, SimTime at) {
  const auto frame = of::encode(msg);
  stats_.messages_to_controller += 1;
  stats_.bytes_to_controller += frame.size();
  events_.schedule_at(at + latency_, [this, frame = std::move(frame)]() {
    auto decoded = of::decode(frame);
    assert(decoded.ok());
    if (on_message_) on_message_(decoded.value());
  });
}

void ControlChannel::on_arrival(const of::Message& msg) {
  // Lazy timeout processing: expiry is applied no later than the next
  // controller interaction with the switch.
  switch_.sweep_timeouts(events_.now());
  handle(msg);
  // Ship any FLOW_REMOVED / PORT_STATUS notices the sweep or handling
  // produced (unsolicited: xid 0).
  for (auto& fr : switch_.drain_removals()) {
    reply(of::Message{0, std::move(fr)}, events_.now());
  }
  for (auto& ps : switch_.drain_port_status()) {
    reply(of::Message{0, std::move(ps)}, events_.now());
  }
}

void ControlChannel::handle(const of::Message& msg) {
  const SimTime now = events_.now();

  if (const auto* fm = std::get_if<of::FlowMod>(&msg.body)) {
    stats_.flow_mods += 1;
    const SimTime start = std::max(now, busy_until_);
    // Table state mutates at completion time; completion drives callbacks.
    const of::FlowMod fm_copy = *fm;
    const std::uint32_t xid = msg.xid;
    // Reserve the agent: we must know the processing time, which requires
    // applying the command — apply lazily at start time via an event.
    // We approximate by applying now but time-stamping at start; since the
    // controller serializes commands per switch through this queue, the
    // application order equals the queue order.
    auto outcome = switch_.apply_flow_mod(fm_copy, start);
    busy_until_ = start + outcome.processing_time;
    const bool accepted = outcome.accepted;
    if (outcome.error.has_value()) {
      reply(of::Message{xid, *outcome.error}, busy_until_);
    }
    const SimTime done = busy_until_;
    events_.schedule_at(done, [this, xid, accepted, done]() {
      if (on_flow_mod_) on_flow_mod_(xid, accepted, done);
    });
    return;
  }

  if (const auto* po = std::get_if<of::PacketOut>(&msg.body)) {
    stats_.packets_out += 1;
    auto pkt = of::Packet::decode(po->data);
    if (!pkt.ok()) {
      log::warn("channel: undecodable packet_out payload");
      return;
    }
    // Data plane: forwarded immediately, independent of the agent queue.
    const auto outcome = switch_.forward(pkt.value(), now);
    const std::uint32_t xid = msg.xid;
    if (outcome.kind == switchsim::ForwardOutcome::Kind::kToController) {
      // The packet comes back to the controller as a PACKET_IN.
      of::PacketIn pin;
      pin.in_port = pkt.value().header.in_port;
      pin.reason = of::PacketInReason::kNoMatch;
      pin.total_len = static_cast<std::uint16_t>(pkt.value().total_len());
      pin.data = pkt.value().encode();
      reply(of::Message{xid, pin}, now + outcome.delay);
    }
    events_.schedule_at(now + outcome.delay, [this, xid, outcome]() {
      if (on_probe_) on_probe_(xid, outcome);
    });
    return;
  }

  if (std::holds_alternative<of::BarrierRequest>(msg.body)) {
    // Replied only after every queued command completes.
    reply(of::Message{msg.xid, of::BarrierReply{}}, std::max(now, busy_until_));
    return;
  }

  if (const auto* echo = std::get_if<of::EchoRequest>(&msg.body)) {
    reply(of::Message{msg.xid, of::EchoReply{echo->payload}}, now);
    return;
  }

  if (std::holds_alternative<of::FeaturesRequest>(msg.body)) {
    reply(of::Message{msg.xid, switch_.features()}, now + micros(200));
    return;
  }

  if (const auto* fsr = std::get_if<of::FlowStatsRequest>(&msg.body)) {
    reply(of::Message{msg.xid, switch_.flow_stats(fsr->match)}, now + micros(500));
    return;
  }

  if (std::holds_alternative<of::TableStatsRequest>(msg.body)) {
    reply(of::Message{msg.xid, switch_.table_stats()}, now + micros(300));
    return;
  }

  if (std::holds_alternative<of::GetConfigRequest>(msg.body)) {
    reply(of::Message{msg.xid, switch_.config()}, now);
    return;
  }

  if (const auto* cfg = std::get_if<of::SetConfig>(&msg.body)) {
    switch_.set_config(*cfg);  // no reply, per OF 1.0
    return;
  }

  if (const auto* pm = std::get_if<of::PortMod>(&msg.body)) {
    switch_.apply_port_mod(*pm);
    return;
  }

  if (std::holds_alternative<of::Vendor>(msg.body)) {
    // No vendor extensions implemented: OFPBRC_BAD_VENDOR.
    of::ErrorMsg err;
    err.type = of::ErrorType::kBadRequest;
    err.code = 3;  // OFPBRC_BAD_VENDOR
    reply(of::Message{msg.xid, err}, now);
    return;
  }

  if (const auto* agg = std::get_if<of::AggregateStatsRequest>(&msg.body)) {
    reply(of::Message{msg.xid, switch_.aggregate_stats(agg->match)},
          now + micros(500));
    return;
  }

  if (std::holds_alternative<of::DescStatsRequest>(msg.body)) {
    reply(of::Message{msg.xid, switch_.description()}, now + micros(200));
    return;
  }

  if (const auto* psr = std::get_if<of::PortStatsRequest>(&msg.body)) {
    reply(of::Message{msg.xid, switch_.port_stats(psr->port_no)},
          now + micros(300));
    return;
  }

  if (std::holds_alternative<of::Hello>(msg.body)) {
    reply(of::Message{msg.xid, of::Hello{}}, now);
    return;
  }

  log::warn("channel: unhandled message type " +
            of::type_name(of::type_of(msg.body)));
}

}  // namespace tango::net
