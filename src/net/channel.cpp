#include "net/channel.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "openflow/epoch.h"

namespace tango::net {

ControlChannel::ControlChannel(sim::EventQueue& events,
                               switchsim::SimulatedSwitch& sw,
                               SimDuration one_way_latency)
    : events_(events), switch_(sw), latency_(one_way_latency) {}

namespace {

const char* command_name(of::FlowModCommand c) {
  switch (c) {
    case of::FlowModCommand::kAdd: return "flow_mod:add";
    case of::FlowModCommand::kModify: return "flow_mod:modify";
    case of::FlowModCommand::kModifyStrict: return "flow_mod:modify_strict";
    case of::FlowModCommand::kDelete: return "flow_mod:delete";
    case of::FlowModCommand::kDeleteStrict: return "flow_mod:delete_strict";
  }
  return "flow_mod";
}

}  // namespace

void ControlChannel::set_telemetry(telemetry::Telemetry* t, SwitchId lane) {
  telemetry_ = t;
  lane_ = lane;
  if (t == nullptr) {
    ctr_flow_mods_ = nullptr;
    ctr_rejected_ = nullptr;
    hist_flow_mod_us_ = nullptr;
    return;
  }
  ctr_flow_mods_ = &t->metrics.counter("switch.flow_mods");
  ctr_rejected_ = &t->metrics.counter("switch.flow_mods_rejected");
  hist_flow_mod_us_ = &t->metrics.histogram(
      "switch.flow_mod_us",
      {10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 50000});
}

void ControlChannel::send(of::Message msg) {
  // Round-trip through the codec: what arrives is what the wire carried.
  auto frame = of::encode(msg);
  stats_.messages_to_switch += 1;
  stats_.bytes_to_switch += frame.size();
  deliver_to_switch(std::move(frame));
}

void ControlChannel::send_batch(std::span<of::Message> msgs) {
  if (msgs.empty()) return;
  if (injector_ != nullptr) {
    // Fault plans are per frame (drop/duplicate/corrupt decide message by
    // message), so a faulted batch degenerates to sequential sends.
    for (auto& m : msgs) send(std::move(m));
    return;
  }
  auto buf = acquire_buffer();
  const std::size_t bytes = of::encode_batch(msgs, buf);
  stats_.messages_to_switch += msgs.size();
  stats_.bytes_to_switch += bytes;
  // One arrival event decodes the frames in order. Sequential send() calls
  // would schedule one event per frame at this same instant with ascending
  // sequence numbers; no other event can slot between them, so processing
  // all frames inside one event is observationally identical.
  events_.schedule_after(latency_, [this, f = std::move(buf)]() mutable {
    std::size_t offset = 0;
    while (offset + of::kHeaderLen <= f.size()) {
      const std::size_t len =
          (static_cast<std::size_t>(f[offset + 2]) << 8) | f[offset + 3];
      auto decoded = of::decode(
          std::span<const std::uint8_t>(f).subspan(offset, len));
      assert(decoded.ok());
      on_arrival(decoded.value());
      offset += len;
    }
    release_buffer(std::move(f));
  });
}

std::vector<std::uint8_t> ControlChannel::acquire_buffer() {
  if (spare_bufs_.empty()) return {};
  auto buf = std::move(spare_bufs_.back());
  spare_bufs_.pop_back();
  return buf;
}

void ControlChannel::release_buffer(std::vector<std::uint8_t> buf) {
  if (spare_bufs_.size() >= 4) return;  // cap pooled capacity
  buf.clear();
  spare_bufs_.push_back(std::move(buf));
}

void ControlChannel::deliver_to_switch(std::vector<std::uint8_t> frame) {
  if (injector_ == nullptr) {
    events_.schedule_after(latency_, [this, frame = std::move(frame)]() {
      auto decoded = of::decode(frame);
      assert(decoded.ok());
      on_arrival(decoded.value());
    });
    return;
  }
  for (auto& d : injector_->plan(FaultInjector::Direction::kToSwitch,
                                 std::move(frame), events_.now())) {
    const std::uint64_t epoch = epoch_;
    events_.schedule_after(
        latency_ + d.extra_delay, [this, epoch, f = std::move(d.frame)]() {
          if (epoch != epoch_) {
            if (injector_) ++injector_->mutable_stats().lost_to_crash;
            return;
          }
          if (agent_down(events_.now())) {
            if (injector_) ++injector_->mutable_stats().lost_to_down;
            return;
          }
          auto decoded = of::decode(f);
          if (!decoded.ok()) {
            if (injector_) ++injector_->mutable_stats().undecodable;
            log::warn("channel: discarding undecodable frame (" +
                      decoded.error() + ")");
            return;
          }
          on_arrival(decoded.value());
        });
  }
}

void ControlChannel::reply(of::Message msg, SimTime at) {
  auto frame = of::encode(msg);
  stats_.messages_to_controller += 1;
  stats_.bytes_to_controller += frame.size();
  if (injector_ == nullptr) {
    events_.schedule_at(at + latency_, [this, frame = std::move(frame)]() {
      auto decoded = of::decode(frame);
      assert(decoded.ok());
      if (on_message_) on_message_(decoded.value());
    });
    return;
  }
  for (auto& d : injector_->plan(FaultInjector::Direction::kToController,
                                 std::move(frame), at)) {
    const std::uint64_t epoch = epoch_;
    events_.schedule_at(
        at + latency_ + d.extra_delay, [this, epoch, f = std::move(d.frame)]() {
          // A crash loses replies still on the wire along with everything
          // else (the control connection resets).
          if (epoch != epoch_) {
            if (injector_) ++injector_->mutable_stats().lost_to_crash;
            return;
          }
          auto decoded = of::decode(f);
          if (!decoded.ok()) {
            if (injector_) ++injector_->mutable_stats().undecodable;
            return;
          }
          if (on_message_) on_message_(decoded.value());
        });
  }
}

void ControlChannel::notify(SimTime at, std::function<void()> fn) {
  SimDuration extra{};
  if (injector_ != nullptr) {
    const auto plan = injector_->plan_notification(at);
    if (!plan.has_value()) return;  // the controller never hears about it
    extra = *plan;
  }
  const std::uint64_t epoch = epoch_;
  events_.schedule_at(at + extra, [this, epoch, fn = std::move(fn)]() {
    if (epoch != epoch_) {
      if (injector_) ++injector_->mutable_stats().lost_to_crash;
      return;
    }
    fn();
  });
}

void ControlChannel::attach_fault_injector(FaultInjector* injector) {
  injector_ = injector;
  if (injector_ == nullptr) return;
  if (injector_->config().crash_at.ns() > 0) {
    const SimDuration downtime = injector_->config().crash_downtime;
    events_.schedule_at(injector_->config().crash_at,
                        [this, downtime]() { crash_agent(downtime); });
  }
  // Declaratively scheduled faults (chaos schedules drive these lists).
  const FaultInjector* expected = injector_;
  for (const auto& c : injector_->config().crashes) {
    events_.schedule_at(c.at, [this, expected, downtime = c.downtime]() {
      if (injector_ == expected) crash_agent(downtime);
    });
  }
  for (const auto& s : injector_->config().stalls) {
    events_.schedule_at(s.at, [this, expected, duration = s.duration]() {
      if (injector_ == expected) stall_agent(duration);
    });
  }
  for (const auto& p : injector_->config().partitions) {
    events_.schedule_at(p.at, [this, expected, duration = p.duration]() {
      if (injector_ != expected) return;
      ++injector_->mutable_stats().partitions;
      if (telemetry_ != nullptr) {
        telemetry_->trace.instant(
            "fault", "partition", lane_, events_.now(),
            {telemetry::arg("duration_ns", duration.ns())});
        telemetry_->metrics.counter("faults.partitions").inc();
      }
      log::warn("channel: control-channel partition for " +
                std::to_string(duration.ms()) + "ms");
    });
  }
}

void ControlChannel::crash_agent(SimDuration downtime) {
  ++epoch_;  // everything in flight (both directions) is lost
  switch_.reset();  // power-on state: tables wiped, counters cleared
  down_until_ = events_.now() + downtime;
  busy_until_ = down_until_;
  if (injector_) ++injector_->mutable_stats().crashes;
  if (telemetry_ != nullptr) {
    telemetry_->trace.instant(
        "fault", "crash", lane_, events_.now(),
        {telemetry::arg("downtime_ns", downtime.ns())});
    telemetry_->metrics.counter("faults.crashes").inc();
  }
  log::warn("channel: agent crashed; tables wiped, back at " +
            std::to_string(down_until_.ms()) + "ms");
  if (on_crash_) on_crash_();
}

void ControlChannel::stall_agent(SimDuration duration) {
  busy_until_ = std::max(busy_until_, events_.now() + duration);
  if (injector_) ++injector_->mutable_stats().stalls;
  if (telemetry_ != nullptr) {
    telemetry_->trace.instant(
        "fault", "stall", lane_, events_.now(),
        {telemetry::arg("duration_ns", duration.ns())});
    telemetry_->metrics.counter("faults.stalls").inc();
  }
}

void ControlChannel::on_arrival(const of::Message& msg) {
  // Lazy timeout processing: expiry is applied no later than the next
  // controller interaction with the switch.
  switch_.sweep_timeouts(events_.now());
  if (injector_ != nullptr) {
    const SimDuration stall = injector_->draw_stall();
    if (stall.ns() > 0) {
      busy_until_ = std::max(busy_until_, events_.now() + stall);
      if (telemetry_ != nullptr) {
        telemetry_->trace.instant(
            "fault", "stall", lane_, events_.now(),
            {telemetry::arg("duration_ns", stall.ns())});
        telemetry_->metrics.counter("faults.stalls").inc();
      }
    }
  }
  handle(msg);
  // Ship any FLOW_REMOVED / PORT_STATUS notices the sweep or handling
  // produced (unsolicited: xid 0).
  for (auto& fr : switch_.drain_removals()) {
    reply(of::Message{0, std::move(fr)}, events_.now());
  }
  for (auto& ps : switch_.drain_port_status()) {
    reply(of::Message{0, std::move(ps)}, events_.now());
  }
}

void ControlChannel::handle(const of::Message& msg) {
  const SimTime now = events_.now();

  if (const auto* fm = std::get_if<of::FlowMod>(&msg.body)) {
    stats_.flow_mods += 1;
    const SimTime start = std::max(now, busy_until_);
    // Table state mutates at completion time; completion drives callbacks.
    const of::FlowMod fm_copy = *fm;
    const std::uint32_t xid = msg.xid;
    // Reserve the agent: we must know the processing time, which requires
    // applying the command — apply lazily at start time via an event.
    // We approximate by applying now but time-stamping at start; since the
    // controller serializes commands per switch through this queue, the
    // application order equals the queue order.
    auto outcome = switch_.apply_flow_mod(fm_copy, start);
    busy_until_ = start + outcome.processing_time;
    const bool accepted = outcome.accepted;
    if (telemetry_ != nullptr) {
      // The agent's busy slice for this command: queue wait excluded, so
      // lanes show contention as gaps between arrival and start.
      telemetry_->trace.span("switch", command_name(fm_copy.command), lane_,
                             start, busy_until_,
                             {telemetry::arg("xid", std::uint64_t{xid}),
                              telemetry::arg("accepted", accepted)});
      ctr_flow_mods_->inc();
      if (!accepted) ctr_rejected_->inc();
      hist_flow_mod_us_->observe(outcome.processing_time.us());
    }
    if (outcome.error.has_value()) {
      reply(of::Message{xid, *outcome.error}, busy_until_);
    }
    const SimTime done = busy_until_;
    notify(done, [this, xid, accepted, done, err = outcome.error]() {
      if (on_flow_mod_) on_flow_mod_(xid, accepted, done, err);
    });
    return;
  }

  if (const auto* po = std::get_if<of::PacketOut>(&msg.body)) {
    stats_.packets_out += 1;
    auto pkt = of::Packet::decode(po->data);
    if (!pkt.ok()) {
      log::warn("channel: undecodable packet_out payload");
      return;
    }
    // Data plane: forwarded immediately, independent of the agent queue.
    const auto outcome = switch_.forward(pkt.value(), now);
    const std::uint32_t xid = msg.xid;
    if (outcome.kind == switchsim::ForwardOutcome::Kind::kToController) {
      // The packet comes back to the controller as a PACKET_IN.
      of::PacketIn pin;
      pin.in_port = pkt.value().header.in_port;
      pin.reason = of::PacketInReason::kNoMatch;
      pin.total_len = static_cast<std::uint16_t>(pkt.value().total_len());
      pin.data = pkt.value().encode();
      reply(of::Message{xid, pin}, now + outcome.delay);
    }
    notify(now + outcome.delay, [this, xid, outcome]() {
      if (on_probe_) on_probe_(xid, outcome);
    });
    return;
  }

  if (std::holds_alternative<of::BarrierRequest>(msg.body)) {
    // Replied only after every queued command completes.
    reply(of::Message{msg.xid, of::BarrierReply{}}, std::max(now, busy_until_));
    return;
  }

  if (const auto* echo = std::get_if<of::EchoRequest>(&msg.body)) {
    reply(of::Message{msg.xid, of::EchoReply{echo->payload}}, now);
    return;
  }

  if (std::holds_alternative<of::FeaturesRequest>(msg.body)) {
    reply(of::Message{msg.xid, switch_.features()}, now + micros(200));
    return;
  }

  if (const auto* fsr = std::get_if<of::FlowStatsRequest>(&msg.body)) {
    reply(of::Message{msg.xid, switch_.flow_stats(fsr->match)}, now + micros(500));
    return;
  }

  if (std::holds_alternative<of::TableStatsRequest>(msg.body)) {
    reply(of::Message{msg.xid, switch_.table_stats()}, now + micros(300));
    return;
  }

  if (std::holds_alternative<of::GetConfigRequest>(msg.body)) {
    reply(of::Message{msg.xid, switch_.config()}, now);
    return;
  }

  if (const auto* cfg = std::get_if<of::SetConfig>(&msg.body)) {
    switch_.set_config(*cfg);  // no reply, per OF 1.0
    return;
  }

  if (const auto* pm = std::get_if<of::PortMod>(&msg.body)) {
    switch_.apply_port_mod(*pm);
    return;
  }

  if (const auto* vendor = std::get_if<of::Vendor>(&msg.body)) {
    // Tango epoch-claim extension (HA failover fencing; openflow/epoch.h):
    // decode the claim, let the switch arbitrate monotonicity, and echo the
    // verdict plus its current epoch back on the same xid.
    if (vendor->vendor_id == of::kTangoVendorId) {
      if (const auto claim = of::decode_epoch_payload(vendor->data);
          claim.has_value() && claim->subtype == of::kEpochClaimSubtype) {
        const auto verdict = switch_.claim_epoch(claim->epoch);
        of::Vendor rep;
        rep.vendor_id = of::kTangoVendorId;
        rep.data = of::encode_epoch_payload(
            of::kEpochClaimReplySubtype, verdict.current_epoch,
            verdict.accepted ? of::kEpochClaimAccepted : 0);
        reply(of::Message{msg.xid, rep}, now);
        return;
      }
    }
    // Any other vendor extension: OFPBRC_BAD_VENDOR.
    of::ErrorMsg err;
    err.type = of::ErrorType::kBadRequest;
    err.code = 3;  // OFPBRC_BAD_VENDOR
    reply(of::Message{msg.xid, err}, now);
    return;
  }

  if (const auto* agg = std::get_if<of::AggregateStatsRequest>(&msg.body)) {
    reply(of::Message{msg.xid, switch_.aggregate_stats(agg->match)},
          now + micros(500));
    return;
  }

  if (std::holds_alternative<of::DescStatsRequest>(msg.body)) {
    reply(of::Message{msg.xid, switch_.description()}, now + micros(200));
    return;
  }

  if (const auto* psr = std::get_if<of::PortStatsRequest>(&msg.body)) {
    reply(of::Message{msg.xid, switch_.port_stats(psr->port_no)},
          now + micros(300));
    return;
  }

  if (std::holds_alternative<of::Hello>(msg.body)) {
    reply(of::Message{msg.xid, of::Hello{}}, now);
    return;
  }

  log::warn("channel: unhandled message type " +
            of::type_name(of::type_of(msg.body)));
}

}  // namespace tango::net
