// Network facade: the simulated controller's view of a set of diverse
// switches connected by a topology.
//
// Two styles of use:
//  * synchronous — install()/probe()/barrier_sync() advance the event queue
//    until the operation completes; this is how the inference algorithms
//    (which are sequential by nature) run.
//  * asynchronous — post_flow_mod() with a completion callback; this is how
//    the schedulers issue concurrent updates across switches and measure
//    makespan over simulated time.
//
// enable_faults() attaches a per-switch FaultInjector to the channel. Under
// faults the synchronous operations accept a timeout: instead of asserting
// that the operation completed, they report `lost = true` when the queue
// drains (or passes the deadline) without an answer — callers retry.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/channel.h"
#include "net/topology.h"
#include "openflow/packet.h"
#include "sim/event_queue.h"
#include "switchsim/switch_model.h"
#include "telemetry/trace.h"

namespace tango::net {

class Network {
 public:
  explicit Network(SimDuration control_latency = micros(100));

  /// Add a switch; returns its datapath id (1-based). A topology node with
  /// the profile's name is created alongside (node id = switch id - 1).
  SwitchId add_switch(const switchsim::SwitchProfile& profile,
                      std::uint64_t seed = 0);

  [[nodiscard]] std::size_t switch_count() const { return endpoints_.size(); }
  switchsim::SimulatedSwitch& sw(SwitchId id);
  ControlChannel& channel(SwitchId id);
  Topology& topology() { return topo_; }
  sim::EventQueue& events() { return events_; }
  [[nodiscard]] SimTime now() const { return events_.now(); }

  static NodeId node_of(SwitchId id) { return static_cast<NodeId>(id - 1); }
  static SwitchId switch_of(NodeId n) { return static_cast<SwitchId>(n + 1); }

  // --- telemetry -----------------------------------------------------------
  /// Attach a telemetry context (non-owning; nullptr detaches). Propagates
  /// to every channel, existing and future, and names one trace lane per
  /// switch. With no context attached every instrumentation site is a
  /// single null check — the fast path is bit-identical to an
  /// un-instrumented build.
  void set_telemetry(telemetry::Telemetry* t);
  [[nodiscard]] telemetry::Telemetry* telemetry() { return telemetry_; }

  // --- fault injection -----------------------------------------------------
  /// Route all traffic to/from switch `id` through a FaultInjector with the
  /// given config. Replaces any previous injector; returns it for stats.
  FaultInjector& enable_faults(SwitchId id, const FaultConfig& config);

  /// The injector attached to `id`, or nullptr if faults are disabled.
  [[nodiscard]] FaultInjector* fault_injector(SwitchId id);

  /// Crash switch `id`'s agent now (tables wiped, in-flight traffic lost).
  void crash_agent(SwitchId id, SimDuration downtime);

  /// Freeze switch `id`'s agent for `duration` (state survives).
  void stall_agent(SwitchId id, SimDuration duration);

  /// Arm a semantic misbehavior profile on switch `id` (orthogonal to
  /// channel faults; see switchsim/misbehavior.h). A no-op echo is
  /// scheduled at each event time so activation — and any fabricated
  /// notifications it produces — happens at the scheduled instant rather
  /// than at the next incidental controller interaction.
  void set_misbehavior(SwitchId id, switchsim::MisbehaviorProfile profile);

  /// Observer for agent crashes (tables wiped), fired at crash time for
  /// both injector-scheduled and forced crashes. One handler; the
  /// transaction layer installs it for the duration of a commit.
  using CrashHandler = std::function<void(SwitchId)>;
  void set_crash_handler(CrashHandler h) { crash_handler_ = std::move(h); }

  /// Crash observers that compose: each concurrently-running transaction
  /// registers its own listener for the span of its commit (the single
  /// set_crash_handler slot cannot be shared — two overlapping commits
  /// would clobber each other's handler). Listeners fire after the single
  /// handler, in ascending token order. Returns a token for removal.
  std::uint64_t add_crash_listener(CrashHandler h);
  void remove_crash_listener(std::uint64_t token);

  // --- synchronous controller operations ----------------------------------
  struct InstallResult {
    bool accepted = false;
    SimTime completed_at{};
    /// True when no completion arrived (message or notice lost to faults).
    bool lost = false;
  };
  /// Send one flow_mod and run the simulation until it completes. With a
  /// non-zero `timeout`, gives up (lost = true) once simulated time would
  /// pass `now + timeout`; with zero, gives up only if the queue drains.
  InstallResult install(SwitchId id, const of::FlowMod& fm,
                        SimDuration timeout = {});

  /// Send a barrier and run until the reply arrives; returns arrival time.
  /// Asserts delivery — use try_barrier_sync() under faults.
  SimTime barrier_sync(SwitchId id);

  /// Barrier that tolerates loss: nullopt if no reply within `timeout`
  /// (or, when timeout is zero, by the time the queue drains).
  std::optional<SimTime> try_barrier_sync(SwitchId id, SimDuration timeout = {});

  struct ProbeResult {
    switchsim::ForwardOutcome outcome;
    SimDuration rtt{};
    /// True when the probe vanished (PACKET_OUT or its outcome lost).
    bool lost = false;
  };
  /// Inject a data-plane probe (as a PACKET_OUT) and run until it finishes
  /// its trip. rtt is the measured data-path round trip.
  ProbeResult probe(SwitchId id, const of::PacketHeader& header,
                    SimDuration timeout = {});

  /// Send an ECHO_REQUEST; `on_reply` fires if the reply makes it back.
  /// Returns the xid so the caller can cancel_reply() a lost echo.
  std::uint32_t post_echo(SwitchId id, std::function<void()> on_reply);

  /// Forget the pending reply callback for `xid` (e.g. an echo that timed
  /// out). Safe to call after the reply already fired.
  void cancel_reply(std::uint32_t xid);

  // --- controller-epoch fencing (HA failover; see openflow/epoch.h) --------
  struct EpochClaimResult {
    bool accepted = false;
    std::uint32_t switch_epoch = 0;
    /// True when the claim or its reply vanished (faults / switch down).
    bool lost = true;
  };
  /// Post a vendor epoch-claim; `done` fires with the switch's verdict.
  /// Returns the xid (cancel_reply() to abandon a lost claim).
  std::uint32_t post_epoch_claim(SwitchId id, std::uint32_t epoch,
                                 std::function<void(const EpochClaimResult&)> done);

  /// Claim mastership epoch `epoch` on switch `id` and run until the switch
  /// answers (lost = true on timeout/drain — the takeover path retries).
  EpochClaimResult claim_epoch_sync(SwitchId id, std::uint32_t epoch,
                                    SimDuration timeout = {});

  /// Fetch flow statistics matching `filter` (synchronous).
  of::FlowStatsReply flow_stats_sync(SwitchId id, const of::Match& filter);

  /// Loss-aware flow-stats readback: nullopt when the request or its reply
  /// vanished within `timeout` (zero = wait until the queue drains) — so a
  /// reconciler can distinguish "table is empty" from "message lost".
  std::optional<of::FlowStatsReply> try_flow_stats(SwitchId id,
                                                   const of::Match& filter,
                                                   SimDuration timeout = {});

  /// Fetch per-table statistics (synchronous).
  of::TableStatsReply table_stats_sync(SwitchId id);

  /// OpenFlow handshake: FEATURES_REQUEST/REPLY (synchronous).
  of::FeaturesReply features_sync(SwitchId id);

  /// Aggregate flow statistics (synchronous).
  of::AggregateStatsReply aggregate_stats_sync(SwitchId id, const of::Match& filter);

  /// Switch description strings (synchronous).
  of::DescStatsReply description_sync(SwitchId id);

  /// Per-port counters (synchronous); kPortNone = all ports.
  of::PortStatsReply port_stats_sync(SwitchId id, std::uint16_t port_no = of::kPortNone);

  /// Switch configuration (synchronous GET_CONFIG).
  of::GetConfigReply get_config_sync(SwitchId id);

  /// Fail or restore a topology link. Both endpoint switches observe the
  /// transition on their connected port and emit PORT_STATUS notifications
  /// to the controller (delivered via the unsolicited handler).
  void set_link_state(std::size_t link_index, bool up);

  // --- asynchronous controller operations ----------------------------------
  using Completion = std::function<void(bool accepted, SimTime completed_at)>;
  /// Queue a flow_mod; `done` fires (in simulated time) when the switch
  /// agent finishes it.
  void post_flow_mod(SwitchId id, const of::FlowMod& fm, Completion done);

  /// Completion detail for post_flow_mod_ex: rejections carry the switch's
  /// error type/code so the executor can classify retryable vs. fatal.
  struct FlowModResult {
    bool accepted = false;
    SimTime completed_at{};
    bool has_error = false;
    of::ErrorType error_type = of::ErrorType::kFlowModFailed;
    std::uint16_t error_code = 0;
  };
  using CompletionEx = std::function<void(const FlowModResult&)>;
  /// post_flow_mod, with the rejection error surfaced to the completion.
  void post_flow_mod_ex(SwitchId id, const of::FlowMod& fm, CompletionEx done);

  /// Queue many flow_mods in one batched wire burst (see
  /// ControlChannel::send_batch); `done_each` fires once per command, in
  /// the same order and at the same simulated times as sequential
  /// post_flow_mod() calls would produce.
  void post_flow_mod_batch(SwitchId id, std::span<const of::FlowMod> fms,
                           Completion done_each);

  /// Handler for unsolicited switch->controller messages (FLOW_REMOVED,
  /// asynchronous PACKET_INs) that match no outstanding xid.
  using UnsolicitedHandler = std::function<void(SwitchId, const of::Message&)>;
  void set_unsolicited_handler(UnsolicitedHandler h) {
    unsolicited_ = std::move(h);
  }

  /// Drain all pending events.
  void run_all();

  /// Wall-clock nanoseconds this network has spent advancing its event
  /// loop (run_all / run_until_done and everything built on them). Real
  /// time, not simulated time: soak drivers surface it per seed so
  /// tools/bench_compare.py can gate parallel-runner speedups. Never feeds
  /// back into simulated behaviour or fingerprints.
  [[nodiscard]] std::uint64_t wall_ns() const { return wall_ns_; }

  [[nodiscard]] const ChannelStats& stats(SwitchId id) const;
  [[nodiscard]] SimDuration control_latency() const { return control_latency_; }

 private:
  struct Endpoint {
    std::unique_ptr<switchsim::SimulatedSwitch> sw;
    std::unique_ptr<ControlChannel> channel;
    std::unique_ptr<FaultInjector> injector;
  };

  std::uint32_t next_xid() { return xid_++; }
  Endpoint& endpoint(SwitchId id);
  /// Hook switch `id`'s channel into telemetry_ and name its trace lane.
  void attach_telemetry(SwitchId id);
  /// Step the queue until `done`, the queue drains, or (if timeout != 0)
  /// the next event lies beyond now + timeout. Returns final `done`.
  bool run_until_done(const bool& done, SimDuration timeout);

  sim::EventQueue events_;
  Topology topo_;
  SimDuration control_latency_;
  telemetry::Telemetry* telemetry_ = nullptr;
  std::vector<Endpoint> endpoints_;
  std::uint32_t xid_ = 1;
  std::uint64_t wall_ns_ = 0;

  // Dispatch tables keyed by xid. Flow-mod completions are stored in the
  // detailed form; plain Completion callers are wrapped on entry.
  std::unordered_map<std::uint32_t, CompletionEx> flow_mod_cbs_;
  std::unordered_map<std::uint32_t, std::function<void(const switchsim::ForwardOutcome&)>>
      probe_cbs_;
  std::unordered_map<std::uint32_t, std::function<void(const of::Message&)>> reply_cbs_;
  UnsolicitedHandler unsolicited_;
  CrashHandler crash_handler_;
  std::map<std::uint64_t, CrashHandler> crash_listeners_;
  std::uint64_t next_crash_token_ = 1;
};

}  // namespace tango::net
