// Packet headers and OpenFlow 1.0 match structures.
//
// Match keeps the OF1.0 wildcard encoding (bit per exact field, 6-bit prefix
// counters for nw_src/nw_dst) and implements the predicates the rest of the
// system needs: packet matching, overlap and subsumption (for rule-dependency
// analysis), and the L2/L3 classification that drives TCAM width accounting.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "openflow/constants.h"

namespace tango::of {

using MacAddr = std::array<std::uint8_t, 6>;

/// Parsed header fields of a simulated data-plane packet.
struct PacketHeader {
  std::uint16_t in_port = 0;
  MacAddr dl_src{};
  MacAddr dl_dst{};
  std::uint16_t dl_vlan = 0xffff;  // OFP_VLAN_NONE
  std::uint8_t dl_vlan_pcp = 0;
  std::uint16_t dl_type = 0x0800;  // IPv4 by default
  std::uint8_t nw_tos = 0;
  std::uint8_t nw_proto = 6;       // TCP by default
  std::uint32_t nw_src = 0;
  std::uint32_t nw_dst = 0;
  std::uint16_t tp_src = 0;
  std::uint16_t tp_dst = 0;

  bool operator==(const PacketHeader&) const = default;
};

/// Which header layers a rule constrains — drives TCAM width (Section 3 of
/// the paper: single-wide entries match only L2 or only L3; double-wide
/// entries match both and consume two TCAM slots on some switches).
enum class MatchLayer { kNone, kL2Only, kL3Only, kL2AndL3 };

struct Match {
  std::uint32_t wildcards = kWildcardAll;
  std::uint16_t in_port = 0;
  MacAddr dl_src{};
  MacAddr dl_dst{};
  std::uint16_t dl_vlan = 0;
  std::uint8_t dl_vlan_pcp = 0;
  std::uint16_t dl_type = 0;
  std::uint8_t nw_tos = 0;
  std::uint8_t nw_proto = 0;
  std::uint32_t nw_src = 0;
  std::uint32_t nw_dst = 0;
  std::uint16_t tp_src = 0;
  std::uint16_t tp_dst = 0;

  bool operator==(const Match&) const = default;

  /// Fully wildcarded match.
  static Match any();

  /// Exact match on every field of the packet (OVS microflow style).
  static Match exact_from(const PacketHeader& pkt);

  // --- wildcard helpers ---------------------------------------------------
  [[nodiscard]] bool field_wildcarded(std::uint32_t bit) const {
    return (wildcards & bit) != 0;
  }
  /// Number of significant leading bits of nw_src (0 = fully wildcarded).
  [[nodiscard]] int nw_src_prefix_len() const;
  [[nodiscard]] int nw_dst_prefix_len() const;
  void set_nw_src_prefix(std::uint32_t addr, int prefix_len);
  void set_nw_dst_prefix(std::uint32_t addr, int prefix_len);

  // Fluent exact-field setters (clear the wildcard bit and set the value).
  Match& with_in_port(std::uint16_t v);
  Match& with_dl_src(const MacAddr& v);
  Match& with_dl_dst(const MacAddr& v);
  Match& with_dl_vlan(std::uint16_t v);
  Match& with_dl_type(std::uint16_t v);
  Match& with_nw_proto(std::uint8_t v);
  Match& with_tp_src(std::uint16_t v);
  Match& with_tp_dst(std::uint16_t v);

  // --- predicates ----------------------------------------------------------
  [[nodiscard]] bool matches(const PacketHeader& pkt) const;

  /// True if some packet could match both rules.
  [[nodiscard]] bool overlaps(const Match& other) const;

  /// True if every packet matching `other` also matches *this.
  [[nodiscard]] bool subsumes(const Match& other) const;

  [[nodiscard]] MatchLayer layer() const;

  /// True when no field is constrained.
  [[nodiscard]] bool is_wildcard_all() const;

  [[nodiscard]] std::string to_string() const;
};

/// Deterministic hash for use as an exact-match (microflow) cache key.
struct PacketHeaderHash {
  std::size_t operator()(const PacketHeader& h) const;
};

/// Netmask with `prefix_len` significant leading bits (0 -> 0, >=32 -> all
/// ones). Shared by the match predicates and the tuple-space index, which
/// must mask identically for masked-key equality to coincide with matches().
std::uint32_t prefix_mask32(int prefix_len);

/// Format helpers shared by to_string() and the examples.
std::string format_ipv4(std::uint32_t addr);
std::string format_mac(const MacAddr& mac);

}  // namespace tango::of
