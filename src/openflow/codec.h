// OpenFlow 1.0 binary codec: Message <-> network-byte-order wire frames.
//
// encode() always produces a frame whose length field equals the byte count;
// decode() validates version, length, and bounds and returns an error string
// for malformed input instead of crashing. FrameAssembler reassembles
// messages from a byte stream (frames may arrive split or coalesced).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "openflow/messages.h"

namespace tango::of {

std::vector<std::uint8_t> encode(const Message& msg);

/// Append the encoded frame to `out` without clearing it. Byte-identical to
/// appending encode(msg); exists so hot paths can reuse one write buffer
/// across many frames instead of allocating per message.
void encode_into(const Message& msg, std::vector<std::uint8_t>& out);

/// Append all frames back-to-back to `out` (the stream form FrameAssembler
/// consumes). Returns the number of bytes appended.
std::size_t encode_batch(std::span<const Message> msgs,
                         std::vector<std::uint8_t>& out);

Result<Message> decode(std::span<const std::uint8_t> frame);

/// Standalone ofp_match wire form (40 bytes) — used by tooling that stores
/// matches outside full messages (e.g. trace files).
std::vector<std::uint8_t> encode_match_bytes(const Match& match);
Result<Match> decode_match_bytes(std::span<const std::uint8_t> bytes);

/// Serialized length of an encoded action (wire bytes).
std::size_t wire_size(const Action& action);

/// Serialized length of a whole message, computed without encoding (no
/// allocation). Always equals encode(msg).size(); the codec test asserts
/// this for every message type.
std::size_t wire_size(const Message& msg);

/// Accumulates stream bytes and yields complete frames.
class FrameAssembler {
 public:
  void feed(std::span<const std::uint8_t> bytes);

  /// Pop the next complete frame, or empty if none is buffered yet.
  std::vector<std::uint8_t> next_frame();

  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

}  // namespace tango::of
