#include "openflow/actions.h"

namespace tango::of {

namespace {

struct ApplyVisitor {
  PacketHeader& pkt;
  void operator()(const ActionOutput&) const {}
  void operator()(const ActionSetVlanVid& a) const { pkt.dl_vlan = a.vlan_vid; }
  void operator()(const ActionStripVlan&) const { pkt.dl_vlan = 0xffff; }
  void operator()(const ActionSetDlSrc& a) const { pkt.dl_src = a.addr; }
  void operator()(const ActionSetDlDst& a) const { pkt.dl_dst = a.addr; }
  void operator()(const ActionSetNwSrc& a) const { pkt.nw_src = a.addr; }
  void operator()(const ActionSetNwDst& a) const { pkt.nw_dst = a.addr; }
};

}  // namespace

void apply_action(const Action& action, PacketHeader& pkt) {
  std::visit(ApplyVisitor{pkt}, action);
}

std::uint16_t output_port(const ActionList& actions) {
  for (const auto& a : actions) {
    if (const auto* out = std::get_if<ActionOutput>(&a)) return out->port;
  }
  return kPortNone;
}

ActionList output_to(std::uint16_t port) { return {ActionOutput{port, 0xffff}}; }

std::string to_string(const Action& action) {
  struct Visitor {
    std::string operator()(const ActionOutput& a) const {
      return "output:" + std::to_string(a.port);
    }
    std::string operator()(const ActionSetVlanVid& a) const {
      return "set_vlan:" + std::to_string(a.vlan_vid);
    }
    std::string operator()(const ActionStripVlan&) const { return "strip_vlan"; }
    std::string operator()(const ActionSetDlSrc& a) const {
      return "set_dl_src:" + format_mac(a.addr);
    }
    std::string operator()(const ActionSetDlDst& a) const {
      return "set_dl_dst:" + format_mac(a.addr);
    }
    std::string operator()(const ActionSetNwSrc& a) const {
      return "set_nw_src:" + format_ipv4(a.addr);
    }
    std::string operator()(const ActionSetNwDst& a) const {
      return "set_nw_dst:" + format_ipv4(a.addr);
    }
  };
  return std::visit(Visitor{}, action);
}

}  // namespace tango::of
