#include "openflow/match.h"

#include <algorithm>
#include <cstdio>
#include <functional>

namespace tango::of {

std::uint32_t prefix_mask32(int prefix_len) {
  if (prefix_len <= 0) return 0;
  if (prefix_len >= 32) return 0xffffffffu;
  return ~((1u << (32 - prefix_len)) - 1);
}

namespace {

std::uint32_t prefix_mask(int prefix_len) { return prefix_mask32(prefix_len); }

int wildcard_count_to_prefix(std::uint32_t wc_bits) {
  // OF1.0 semantics: value is the number of wildcarded low-order bits,
  // >= 32 means the whole field is ignored.
  const int ignored = static_cast<int>(std::min<std::uint32_t>(wc_bits, 32));
  return 32 - ignored;
}

}  // namespace

Match Match::any() { return Match{}; }

Match Match::exact_from(const PacketHeader& pkt) {
  Match m;
  m.wildcards = 0;
  m.in_port = pkt.in_port;
  m.dl_src = pkt.dl_src;
  m.dl_dst = pkt.dl_dst;
  m.dl_vlan = pkt.dl_vlan;
  m.dl_vlan_pcp = pkt.dl_vlan_pcp;
  m.dl_type = pkt.dl_type;
  m.nw_tos = pkt.nw_tos;
  m.nw_proto = pkt.nw_proto;
  m.nw_src = pkt.nw_src;
  m.nw_dst = pkt.nw_dst;
  m.tp_src = pkt.tp_src;
  m.tp_dst = pkt.tp_dst;
  return m;
}

int Match::nw_src_prefix_len() const {
  return wildcard_count_to_prefix((wildcards & kWildcardNwSrcMask) >> kWildcardNwSrcShift);
}

int Match::nw_dst_prefix_len() const {
  return wildcard_count_to_prefix((wildcards & kWildcardNwDstMask) >> kWildcardNwDstShift);
}

void Match::set_nw_src_prefix(std::uint32_t addr, int prefix_len) {
  prefix_len = std::clamp(prefix_len, 0, 32);
  nw_src = addr & prefix_mask(prefix_len);
  wildcards = (wildcards & ~kWildcardNwSrcMask) |
              (static_cast<std::uint32_t>(32 - prefix_len) << kWildcardNwSrcShift);
}

void Match::set_nw_dst_prefix(std::uint32_t addr, int prefix_len) {
  prefix_len = std::clamp(prefix_len, 0, 32);
  nw_dst = addr & prefix_mask(prefix_len);
  wildcards = (wildcards & ~kWildcardNwDstMask) |
              (static_cast<std::uint32_t>(32 - prefix_len) << kWildcardNwDstShift);
}

Match& Match::with_in_port(std::uint16_t v) {
  wildcards &= ~kWildcardInPort;
  in_port = v;
  return *this;
}
Match& Match::with_dl_src(const MacAddr& v) {
  wildcards &= ~kWildcardDlSrc;
  dl_src = v;
  return *this;
}
Match& Match::with_dl_dst(const MacAddr& v) {
  wildcards &= ~kWildcardDlDst;
  dl_dst = v;
  return *this;
}
Match& Match::with_dl_vlan(std::uint16_t v) {
  wildcards &= ~kWildcardDlVlan;
  dl_vlan = v;
  return *this;
}
Match& Match::with_dl_type(std::uint16_t v) {
  wildcards &= ~kWildcardDlType;
  dl_type = v;
  return *this;
}
Match& Match::with_nw_proto(std::uint8_t v) {
  wildcards &= ~kWildcardNwProto;
  nw_proto = v;
  return *this;
}
Match& Match::with_tp_src(std::uint16_t v) {
  wildcards &= ~kWildcardTpSrc;
  tp_src = v;
  return *this;
}
Match& Match::with_tp_dst(std::uint16_t v) {
  wildcards &= ~kWildcardTpDst;
  tp_dst = v;
  return *this;
}

bool Match::matches(const PacketHeader& pkt) const {
  if (!field_wildcarded(kWildcardInPort) && in_port != pkt.in_port) return false;
  if (!field_wildcarded(kWildcardDlSrc) && dl_src != pkt.dl_src) return false;
  if (!field_wildcarded(kWildcardDlDst) && dl_dst != pkt.dl_dst) return false;
  if (!field_wildcarded(kWildcardDlVlan) && dl_vlan != pkt.dl_vlan) return false;
  if (!field_wildcarded(kWildcardDlVlanPcp) && dl_vlan_pcp != pkt.dl_vlan_pcp) return false;
  if (!field_wildcarded(kWildcardDlType) && dl_type != pkt.dl_type) return false;
  if (!field_wildcarded(kWildcardNwTos) && nw_tos != pkt.nw_tos) return false;
  if (!field_wildcarded(kWildcardNwProto) && nw_proto != pkt.nw_proto) return false;
  const std::uint32_t src_mask = prefix_mask(nw_src_prefix_len());
  if ((pkt.nw_src & src_mask) != (nw_src & src_mask)) return false;
  const std::uint32_t dst_mask = prefix_mask(nw_dst_prefix_len());
  if ((pkt.nw_dst & dst_mask) != (nw_dst & dst_mask)) return false;
  if (!field_wildcarded(kWildcardTpSrc) && tp_src != pkt.tp_src) return false;
  if (!field_wildcarded(kWildcardTpDst) && tp_dst != pkt.tp_dst) return false;
  return true;
}

namespace {

// Exact-field overlap: compatible unless both constrain the field to
// different values.
template <typename T>
bool exact_overlap(bool a_wild, const T& a, bool b_wild, const T& b) {
  return a_wild || b_wild || a == b;
}

// Exact-field subsumption: `a` subsumes `b` on this field iff `a` is
// wildcarded, or both are exact and equal.
template <typename T>
bool exact_subsumes(bool a_wild, const T& a, bool b_wild, const T& b) {
  if (a_wild) return true;
  if (b_wild) return false;
  return a == b;
}

}  // namespace

bool Match::overlaps(const Match& other) const {
  const Match& a = *this;
  const Match& b = other;
  if (!exact_overlap(a.field_wildcarded(kWildcardInPort), a.in_port,
                     b.field_wildcarded(kWildcardInPort), b.in_port)) return false;
  if (!exact_overlap(a.field_wildcarded(kWildcardDlSrc), a.dl_src,
                     b.field_wildcarded(kWildcardDlSrc), b.dl_src)) return false;
  if (!exact_overlap(a.field_wildcarded(kWildcardDlDst), a.dl_dst,
                     b.field_wildcarded(kWildcardDlDst), b.dl_dst)) return false;
  if (!exact_overlap(a.field_wildcarded(kWildcardDlVlan), a.dl_vlan,
                     b.field_wildcarded(kWildcardDlVlan), b.dl_vlan)) return false;
  if (!exact_overlap(a.field_wildcarded(kWildcardDlVlanPcp), a.dl_vlan_pcp,
                     b.field_wildcarded(kWildcardDlVlanPcp), b.dl_vlan_pcp)) return false;
  if (!exact_overlap(a.field_wildcarded(kWildcardDlType), a.dl_type,
                     b.field_wildcarded(kWildcardDlType), b.dl_type)) return false;
  if (!exact_overlap(a.field_wildcarded(kWildcardNwTos), a.nw_tos,
                     b.field_wildcarded(kWildcardNwTos), b.nw_tos)) return false;
  if (!exact_overlap(a.field_wildcarded(kWildcardNwProto), a.nw_proto,
                     b.field_wildcarded(kWildcardNwProto), b.nw_proto)) return false;
  // Prefixes overlap iff they agree on the shorter prefix.
  {
    const int plen = std::min(a.nw_src_prefix_len(), b.nw_src_prefix_len());
    const std::uint32_t mask = prefix_mask(plen);
    if ((a.nw_src & mask) != (b.nw_src & mask)) return false;
  }
  {
    const int plen = std::min(a.nw_dst_prefix_len(), b.nw_dst_prefix_len());
    const std::uint32_t mask = prefix_mask(plen);
    if ((a.nw_dst & mask) != (b.nw_dst & mask)) return false;
  }
  if (!exact_overlap(a.field_wildcarded(kWildcardTpSrc), a.tp_src,
                     b.field_wildcarded(kWildcardTpSrc), b.tp_src)) return false;
  if (!exact_overlap(a.field_wildcarded(kWildcardTpDst), a.tp_dst,
                     b.field_wildcarded(kWildcardTpDst), b.tp_dst)) return false;
  return true;
}

bool Match::subsumes(const Match& other) const {
  const Match& a = *this;
  const Match& b = other;
  if (!exact_subsumes(a.field_wildcarded(kWildcardInPort), a.in_port,
                      b.field_wildcarded(kWildcardInPort), b.in_port)) return false;
  if (!exact_subsumes(a.field_wildcarded(kWildcardDlSrc), a.dl_src,
                      b.field_wildcarded(kWildcardDlSrc), b.dl_src)) return false;
  if (!exact_subsumes(a.field_wildcarded(kWildcardDlDst), a.dl_dst,
                      b.field_wildcarded(kWildcardDlDst), b.dl_dst)) return false;
  if (!exact_subsumes(a.field_wildcarded(kWildcardDlVlan), a.dl_vlan,
                      b.field_wildcarded(kWildcardDlVlan), b.dl_vlan)) return false;
  if (!exact_subsumes(a.field_wildcarded(kWildcardDlVlanPcp), a.dl_vlan_pcp,
                      b.field_wildcarded(kWildcardDlVlanPcp), b.dl_vlan_pcp)) return false;
  if (!exact_subsumes(a.field_wildcarded(kWildcardDlType), a.dl_type,
                      b.field_wildcarded(kWildcardDlType), b.dl_type)) return false;
  if (!exact_subsumes(a.field_wildcarded(kWildcardNwTos), a.nw_tos,
                      b.field_wildcarded(kWildcardNwTos), b.nw_tos)) return false;
  if (!exact_subsumes(a.field_wildcarded(kWildcardNwProto), a.nw_proto,
                      b.field_wildcarded(kWildcardNwProto), b.nw_proto)) return false;
  // a subsumes b on a prefix iff a's prefix is no longer and agrees with b.
  {
    const int pa = a.nw_src_prefix_len();
    const int pb = b.nw_src_prefix_len();
    if (pa > pb) return false;
    const std::uint32_t mask = prefix_mask(pa);
    if ((a.nw_src & mask) != (b.nw_src & mask)) return false;
  }
  {
    const int pa = a.nw_dst_prefix_len();
    const int pb = b.nw_dst_prefix_len();
    if (pa > pb) return false;
    const std::uint32_t mask = prefix_mask(pa);
    if ((a.nw_dst & mask) != (b.nw_dst & mask)) return false;
  }
  if (!exact_subsumes(a.field_wildcarded(kWildcardTpSrc), a.tp_src,
                      b.field_wildcarded(kWildcardTpSrc), b.tp_src)) return false;
  if (!exact_subsumes(a.field_wildcarded(kWildcardTpDst), a.tp_dst,
                      b.field_wildcarded(kWildcardTpDst), b.tp_dst)) return false;
  return true;
}

MatchLayer Match::layer() const {
  const bool l2 = !field_wildcarded(kWildcardDlSrc) || !field_wildcarded(kWildcardDlDst) ||
                  !field_wildcarded(kWildcardDlVlan) || !field_wildcarded(kWildcardDlVlanPcp);
  const bool l3 = nw_src_prefix_len() > 0 || nw_dst_prefix_len() > 0 ||
                  !field_wildcarded(kWildcardNwProto) || !field_wildcarded(kWildcardNwTos) ||
                  !field_wildcarded(kWildcardTpSrc) || !field_wildcarded(kWildcardTpDst);
  if (l2 && l3) return MatchLayer::kL2AndL3;
  if (l2) return MatchLayer::kL2Only;
  if (l3) return MatchLayer::kL3Only;
  return MatchLayer::kNone;
}

bool Match::is_wildcard_all() const {
  return (wildcards & kWildcardAll) == kWildcardAll &&
         nw_src_prefix_len() == 0 && nw_dst_prefix_len() == 0;
}

std::string Match::to_string() const {
  std::string out = "{";
  if (!field_wildcarded(kWildcardInPort)) out += "in_port=" + std::to_string(in_port) + ",";
  if (!field_wildcarded(kWildcardDlSrc)) out += "dl_src=" + format_mac(dl_src) + ",";
  if (!field_wildcarded(kWildcardDlDst)) out += "dl_dst=" + format_mac(dl_dst) + ",";
  if (!field_wildcarded(kWildcardDlVlan)) out += "vlan=" + std::to_string(dl_vlan) + ",";
  if (!field_wildcarded(kWildcardDlType)) out += "dl_type=" + std::to_string(dl_type) + ",";
  if (nw_src_prefix_len() > 0) {
    out += "nw_src=" + format_ipv4(nw_src) + "/" + std::to_string(nw_src_prefix_len()) + ",";
  }
  if (nw_dst_prefix_len() > 0) {
    out += "nw_dst=" + format_ipv4(nw_dst) + "/" + std::to_string(nw_dst_prefix_len()) + ",";
  }
  if (!field_wildcarded(kWildcardNwProto)) out += "proto=" + std::to_string(nw_proto) + ",";
  if (!field_wildcarded(kWildcardTpSrc)) out += "tp_src=" + std::to_string(tp_src) + ",";
  if (!field_wildcarded(kWildcardTpDst)) out += "tp_dst=" + std::to_string(tp_dst) + ",";
  if (out.size() > 1 && out.back() == ',') out.pop_back();
  out += "}";
  return out;
}

std::size_t PacketHeaderHash::operator()(const PacketHeader& h) const {
  // FNV-1a over the header fields.
  std::uint64_t x = 1469598103934665603ULL;
  auto mix = [&x](std::uint64_t v) {
    x ^= v;
    x *= 1099511628211ULL;
  };
  mix(h.in_port);
  for (auto b : h.dl_src) mix(b);
  for (auto b : h.dl_dst) mix(b);
  mix(h.dl_vlan);
  mix(h.dl_vlan_pcp);
  mix(h.dl_type);
  mix(h.nw_tos);
  mix(h.nw_proto);
  mix(h.nw_src);
  mix(h.nw_dst);
  mix(h.tp_src);
  mix(h.tp_dst);
  return static_cast<std::size_t>(x);
}

std::string format_ipv4(std::uint32_t addr) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (addr >> 24) & 0xff,
                (addr >> 16) & 0xff, (addr >> 8) & 0xff, addr & 0xff);
  return buf;
}

std::string format_mac(const MacAddr& mac) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", mac[0],
                mac[1], mac[2], mac[3], mac[4], mac[5]);
  return buf;
}

}  // namespace tango::of
