#include "openflow/packet.h"

#include <algorithm>

#include "common/buffer.h"

namespace tango::of {

std::vector<std::uint8_t> Packet::encode() const {
  BufWriter w;
  w.u16(header.in_port);
  w.raw(header.dl_src);
  w.raw(header.dl_dst);
  w.u16(header.dl_vlan);
  w.u8(header.dl_vlan_pcp);
  w.u16(header.dl_type);
  w.u8(header.nw_tos);
  w.u8(header.nw_proto);
  w.u32(header.nw_src);
  w.u32(header.nw_dst);
  w.u16(header.tp_src);
  w.u16(header.tp_dst);
  w.u32(payload_len);
  return w.take();
}

Result<Packet> Packet::decode(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kWireHeaderLen) return Error{"packet too short"};
  BufReader r(bytes);
  Packet p;
  p.header.in_port = r.u16();
  auto src = r.raw(6);
  auto dst = r.raw(6);
  std::copy(src.begin(), src.end(), p.header.dl_src.begin());
  std::copy(dst.begin(), dst.end(), p.header.dl_dst.begin());
  p.header.dl_vlan = r.u16();
  p.header.dl_vlan_pcp = r.u8();
  p.header.dl_type = r.u16();
  p.header.nw_tos = r.u8();
  p.header.nw_proto = r.u8();
  p.header.nw_src = r.u32();
  p.header.nw_dst = r.u32();
  p.header.tp_src = r.u16();
  p.header.tp_dst = r.u16();
  p.payload_len = r.u32();
  if (r.failed()) return Error{"truncated packet"};
  return p;
}

}  // namespace tango::of
