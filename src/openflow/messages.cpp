#include "openflow/messages.h"

namespace tango::of {

namespace {

struct TypeVisitor {
  MsgType operator()(const Hello&) const { return MsgType::kHello; }
  MsgType operator()(const EchoRequest&) const { return MsgType::kEchoRequest; }
  MsgType operator()(const EchoReply&) const { return MsgType::kEchoReply; }
  MsgType operator()(const ErrorMsg&) const { return MsgType::kError; }
  MsgType operator()(const FeaturesRequest&) const { return MsgType::kFeaturesRequest; }
  MsgType operator()(const FeaturesReply&) const { return MsgType::kFeaturesReply; }
  MsgType operator()(const FlowMod&) const { return MsgType::kFlowMod; }
  MsgType operator()(const FlowRemoved&) const { return MsgType::kFlowRemoved; }
  MsgType operator()(const PacketIn&) const { return MsgType::kPacketIn; }
  MsgType operator()(const PacketOut&) const { return MsgType::kPacketOut; }
  MsgType operator()(const BarrierRequest&) const { return MsgType::kBarrierRequest; }
  MsgType operator()(const BarrierReply&) const { return MsgType::kBarrierReply; }
  MsgType operator()(const FlowStatsRequest&) const { return MsgType::kStatsRequest; }
  MsgType operator()(const FlowStatsReply&) const { return MsgType::kStatsReply; }
  MsgType operator()(const TableStatsRequest&) const { return MsgType::kStatsRequest; }
  MsgType operator()(const TableStatsReply&) const { return MsgType::kStatsReply; }
  MsgType operator()(const GetConfigRequest&) const { return MsgType::kGetConfigRequest; }
  MsgType operator()(const GetConfigReply&) const { return MsgType::kGetConfigReply; }
  MsgType operator()(const SetConfig&) const { return MsgType::kSetConfig; }
  MsgType operator()(const PortStatus&) const { return MsgType::kPortStatus; }
  MsgType operator()(const PortMod&) const { return MsgType::kPortMod; }
  MsgType operator()(const Vendor&) const { return MsgType::kVendor; }
  MsgType operator()(const AggregateStatsRequest&) const { return MsgType::kStatsRequest; }
  MsgType operator()(const AggregateStatsReply&) const { return MsgType::kStatsReply; }
  MsgType operator()(const DescStatsRequest&) const { return MsgType::kStatsRequest; }
  MsgType operator()(const DescStatsReply&) const { return MsgType::kStatsReply; }
  MsgType operator()(const PortStatsRequest&) const { return MsgType::kStatsRequest; }
  MsgType operator()(const PortStatsReply&) const { return MsgType::kStatsReply; }
};

}  // namespace

MsgType type_of(const MessageBody& body) { return std::visit(TypeVisitor{}, body); }

std::string type_name(MsgType type) {
  switch (type) {
    case MsgType::kHello: return "HELLO";
    case MsgType::kError: return "ERROR";
    case MsgType::kEchoRequest: return "ECHO_REQUEST";
    case MsgType::kEchoReply: return "ECHO_REPLY";
    case MsgType::kVendor: return "VENDOR";
    case MsgType::kFeaturesRequest: return "FEATURES_REQUEST";
    case MsgType::kFeaturesReply: return "FEATURES_REPLY";
    case MsgType::kGetConfigRequest: return "GET_CONFIG_REQUEST";
    case MsgType::kGetConfigReply: return "GET_CONFIG_REPLY";
    case MsgType::kSetConfig: return "SET_CONFIG";
    case MsgType::kPacketIn: return "PACKET_IN";
    case MsgType::kFlowRemoved: return "FLOW_REMOVED";
    case MsgType::kPortStatus: return "PORT_STATUS";
    case MsgType::kPacketOut: return "PACKET_OUT";
    case MsgType::kFlowMod: return "FLOW_MOD";
    case MsgType::kPortMod: return "PORT_MOD";
    case MsgType::kStatsRequest: return "STATS_REQUEST";
    case MsgType::kStatsReply: return "STATS_REPLY";
    case MsgType::kBarrierRequest: return "BARRIER_REQUEST";
    case MsgType::kBarrierReply: return "BARRIER_REPLY";
  }
  return "UNKNOWN";
}

}  // namespace tango::of
