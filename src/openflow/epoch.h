// Controller-epoch fencing for flow-mod cookies (HA failover safety).
//
// The transaction layer stamps every flow_mod with (txn << 32) | node. With
// a replicated controller pair a deposed primary can keep retrying frames it
// queued before losing mastership, so the cookie scheme grows a fence: the
// top byte carries the issuing controller's *epoch*, a number bumped by
// every takeover. A switch remembers the highest epoch that has claimed it
// and rejects fenced mutations from anything older (OFPET_FLOW_MOD_FAILED /
// OFPFMFC_EPERM) — the classic split-brain guard, same idea as the Nicira
// role-request generation id.
//
// Layout of a fenced cookie: [epoch:8][txn:24][node:32]. Epoch 0 is the
// legacy, unfenced encoding — every cookie produced before HA existed is
// bit-identical under this scheme (transaction ids stay far below 2^24),
// and unfenced flow_mods are never epoch-checked, so non-HA deployments
// see zero behavioural change.
//
// Epoch announcements ride an OFPT_VENDOR message (no new message type in
// the codec): payload = subtype, epoch, flags — all big-endian uint32.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace tango::of {

inline constexpr int kCookieEpochShift = 56;
inline constexpr std::uint32_t kCookieTxnMask = 0x00ffffff;
inline constexpr std::uint64_t kCookieEpochMask = 0xffull << kCookieEpochShift;

/// Epoch carried by a cookie (0 = unfenced/legacy).
[[nodiscard]] constexpr std::uint32_t epoch_of_cookie(std::uint64_t cookie) {
  return static_cast<std::uint32_t>(cookie >> kCookieEpochShift);
}

/// Build a cookie: `low` in the bottom half, `txn` above it, `epoch` in the
/// top byte. epoch == 0 reproduces the legacy (txn << 32) | low layout
/// exactly; fenced cookies truncate txn to 24 bits to make room.
[[nodiscard]] constexpr std::uint64_t fenced_cookie(std::uint32_t epoch,
                                                    std::uint32_t txn,
                                                    std::uint32_t low) {
  if (epoch == 0) return (static_cast<std::uint64_t>(txn) << 32) | low;
  return (static_cast<std::uint64_t>(epoch & 0xff) << kCookieEpochShift) |
         (static_cast<std::uint64_t>(txn & kCookieTxnMask) << 32) | low;
}

/// Re-stamp a fenced cookie's epoch byte (takeover replay re-fences the
/// journal's cookies so repairs pass the new fence). Unfenced cookies pass
/// through untouched — they predate fencing and are never epoch-checked.
[[nodiscard]] constexpr std::uint64_t refence_cookie(std::uint64_t cookie,
                                                     std::uint32_t epoch) {
  if (epoch_of_cookie(cookie) == 0) return cookie;
  return (cookie & ~kCookieEpochMask) |
         (static_cast<std::uint64_t>(epoch & 0xff) << kCookieEpochShift);
}

/// Cookie with the epoch byte zeroed — equality modulo fencing, for oracles
/// comparing rules installed under different epochs.
[[nodiscard]] constexpr std::uint64_t cookie_sans_epoch(std::uint64_t cookie) {
  return cookie & ~kCookieEpochMask;
}

// --- epoch-claim vendor extension ------------------------------------------

/// Nicira's vendor id; the epoch claim is our stand-in for its role request.
inline constexpr std::uint32_t kTangoVendorId = 0x00002320;
inline constexpr std::uint32_t kEpochClaimSubtype = 10;
inline constexpr std::uint32_t kEpochClaimReplySubtype = 11;
/// Reply flag bit: the claim was accepted (epoch adopted or already held).
inline constexpr std::uint32_t kEpochClaimAccepted = 1u << 0;

struct EpochClaimPayload {
  std::uint32_t subtype = 0;
  std::uint32_t epoch = 0;
  std::uint32_t flags = 0;
};

[[nodiscard]] inline std::vector<std::uint8_t> encode_epoch_payload(
    std::uint32_t subtype, std::uint32_t epoch, std::uint32_t flags = 0) {
  std::vector<std::uint8_t> out;
  out.reserve(12);
  for (std::uint32_t word : {subtype, epoch, flags}) {
    out.push_back(static_cast<std::uint8_t>(word >> 24));
    out.push_back(static_cast<std::uint8_t>(word >> 16));
    out.push_back(static_cast<std::uint8_t>(word >> 8));
    out.push_back(static_cast<std::uint8_t>(word));
  }
  return out;
}

[[nodiscard]] inline std::optional<EpochClaimPayload> decode_epoch_payload(
    const std::vector<std::uint8_t>& data) {
  if (data.size() < 12) return std::nullopt;
  const auto word = [&](std::size_t at) {
    return (static_cast<std::uint32_t>(data[at]) << 24) |
           (static_cast<std::uint32_t>(data[at + 1]) << 16) |
           (static_cast<std::uint32_t>(data[at + 2]) << 8) |
           static_cast<std::uint32_t>(data[at + 3]);
  };
  return EpochClaimPayload{word(0), word(4), word(8)};
}

}  // namespace tango::of
