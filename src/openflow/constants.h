// OpenFlow 1.0 protocol constants (subset used by Tango).
//
// The reproduction speaks real OpenFlow 1.0 framing on the simulated control
// channel: every flow_mod / packet_in / barrier is serialized to wire bytes
// and parsed back, so probing overhead is measured in actual protocol bytes.
#pragma once

#include <cstdint>

namespace tango::of {

inline constexpr std::uint8_t kVersion = 0x01;  // OpenFlow 1.0
inline constexpr std::size_t kHeaderLen = 8;

enum class MsgType : std::uint8_t {
  kHello = 0,
  kError = 1,
  kEchoRequest = 2,
  kEchoReply = 3,
  kVendor = 4,
  kFeaturesRequest = 5,
  kFeaturesReply = 6,
  kGetConfigRequest = 7,
  kGetConfigReply = 8,
  kSetConfig = 9,
  kPacketIn = 10,
  kFlowRemoved = 11,
  kPortStatus = 12,
  kPacketOut = 13,
  kFlowMod = 14,
  kPortMod = 15,
  kStatsRequest = 16,
  kStatsReply = 17,
  kBarrierRequest = 18,
  kBarrierReply = 19,
};

enum class FlowModCommand : std::uint16_t {
  kAdd = 0,
  kModify = 1,
  kModifyStrict = 2,
  kDelete = 3,
  kDeleteStrict = 4,
};

enum class ErrorType : std::uint16_t {
  kHelloFailed = 0,
  kBadRequest = 1,
  kBadAction = 2,
  kFlowModFailed = 3,
  kPortModFailed = 4,
  kQueueOpFailed = 5,
};

enum class FlowModFailedCode : std::uint16_t {
  kAllTablesFull = 0,
  kOverlap = 1,
  kEperm = 2,
  kBadEmergTimeout = 3,
  kBadCommand = 4,
  kUnsupported = 5,
};

enum class PacketInReason : std::uint8_t {
  kNoMatch = 0,
  kAction = 1,
};

enum class FlowRemovedReason : std::uint8_t {
  kIdleTimeout = 0,
  kHardTimeout = 1,
  kDelete = 2,
};

enum class StatsType : std::uint16_t {
  kDesc = 0,
  kFlow = 1,
  kAggregate = 2,
  kTable = 3,
  kPort = 4,
};

// Reserved port numbers (ofp_port).
inline constexpr std::uint16_t kPortMax = 0xff00;
inline constexpr std::uint16_t kPortInPort = 0xfff8;
inline constexpr std::uint16_t kPortTable = 0xfff9;
inline constexpr std::uint16_t kPortNormal = 0xfffa;
inline constexpr std::uint16_t kPortFlood = 0xfffb;
inline constexpr std::uint16_t kPortAll = 0xfffc;
inline constexpr std::uint16_t kPortController = 0xfffd;
inline constexpr std::uint16_t kPortLocal = 0xfffe;
inline constexpr std::uint16_t kPortNone = 0xffff;

inline constexpr std::uint32_t kNoBuffer = 0xffffffff;

// ofp_flow_wildcards bits.
inline constexpr std::uint32_t kWildcardInPort = 1u << 0;
inline constexpr std::uint32_t kWildcardDlVlan = 1u << 1;
inline constexpr std::uint32_t kWildcardDlSrc = 1u << 2;
inline constexpr std::uint32_t kWildcardDlDst = 1u << 3;
inline constexpr std::uint32_t kWildcardDlType = 1u << 4;
inline constexpr std::uint32_t kWildcardNwProto = 1u << 5;
inline constexpr std::uint32_t kWildcardTpSrc = 1u << 6;
inline constexpr std::uint32_t kWildcardTpDst = 1u << 7;
inline constexpr std::uint32_t kWildcardNwSrcShift = 8;
inline constexpr std::uint32_t kWildcardNwSrcMask = 0x3fu << kWildcardNwSrcShift;
inline constexpr std::uint32_t kWildcardNwDstShift = 14;
inline constexpr std::uint32_t kWildcardNwDstMask = 0x3fu << kWildcardNwDstShift;
inline constexpr std::uint32_t kWildcardDlVlanPcp = 1u << 20;
inline constexpr std::uint32_t kWildcardNwTos = 1u << 21;
inline constexpr std::uint32_t kWildcardAll = (1u << 22) - 1;

enum class ActionType : std::uint16_t {
  kOutput = 0,
  kSetVlanVid = 1,
  kSetVlanPcp = 2,
  kStripVlan = 3,
  kSetDlSrc = 4,
  kSetDlDst = 5,
  kSetNwSrc = 6,
  kSetNwDst = 7,
};

}  // namespace tango::of
