// OpenFlow 1.0 actions (subset). Each struct mirrors the wire layout of the
// corresponding ofp_action_*; Action is the sum type carried in flow_mod and
// packet_out messages.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "openflow/constants.h"
#include "openflow/match.h"

namespace tango::of {

struct ActionOutput {
  std::uint16_t port = 0;
  std::uint16_t max_len = 0xffff;  // bytes to send to controller when port==CONTROLLER
  bool operator==(const ActionOutput&) const = default;
};

struct ActionSetVlanVid {
  std::uint16_t vlan_vid = 0;
  bool operator==(const ActionSetVlanVid&) const = default;
};

struct ActionStripVlan {
  bool operator==(const ActionStripVlan&) const = default;
};

struct ActionSetDlSrc {
  MacAddr addr{};
  bool operator==(const ActionSetDlSrc&) const = default;
};

struct ActionSetDlDst {
  MacAddr addr{};
  bool operator==(const ActionSetDlDst&) const = default;
};

struct ActionSetNwSrc {
  std::uint32_t addr = 0;
  bool operator==(const ActionSetNwSrc&) const = default;
};

struct ActionSetNwDst {
  std::uint32_t addr = 0;
  bool operator==(const ActionSetNwDst&) const = default;
};

using Action = std::variant<ActionOutput, ActionSetVlanVid, ActionStripVlan,
                            ActionSetDlSrc, ActionSetDlDst, ActionSetNwSrc,
                            ActionSetNwDst>;

using ActionList = std::vector<Action>;

/// Apply an action's header rewrite to a packet (output actions are handled
/// by the switch forwarding logic, not here).
void apply_action(const Action& action, PacketHeader& pkt);

/// Output port of the first output action, or kPortNone when the list drops.
std::uint16_t output_port(const ActionList& actions);

/// Convenience: a single "forward out port p" action list.
ActionList output_to(std::uint16_t port);

std::string to_string(const Action& action);

}  // namespace tango::of
