#include "openflow/codec.h"

#include <algorithm>
#include <cstring>

#include "common/buffer.h"

namespace tango::of {

namespace {

// ---------------------------------------------------------------------------
// Match (ofp_match, 40 bytes)
// ---------------------------------------------------------------------------

void encode_match(BufWriter& w, const Match& m) {
  w.u32(m.wildcards);
  w.u16(m.in_port);
  w.raw(m.dl_src);
  w.raw(m.dl_dst);
  w.u16(m.dl_vlan);
  w.u8(m.dl_vlan_pcp);
  w.zeros(1);
  w.u16(m.dl_type);
  w.u8(m.nw_tos);
  w.u8(m.nw_proto);
  w.zeros(2);
  w.u32(m.nw_src);
  w.u32(m.nw_dst);
  w.u16(m.tp_src);
  w.u16(m.tp_dst);
}

Match decode_match(BufReader& r) {
  Match m;
  m.wildcards = r.u32();
  m.in_port = r.u16();
  auto src = r.raw(6);
  auto dst = r.raw(6);
  if (src.size() == 6) std::copy(src.begin(), src.end(), m.dl_src.begin());
  if (dst.size() == 6) std::copy(dst.begin(), dst.end(), m.dl_dst.begin());
  m.dl_vlan = r.u16();
  m.dl_vlan_pcp = r.u8();
  r.skip(1);
  m.dl_type = r.u16();
  m.nw_tos = r.u8();
  m.nw_proto = r.u8();
  r.skip(2);
  m.nw_src = r.u32();
  m.nw_dst = r.u32();
  m.tp_src = r.u16();
  m.tp_dst = r.u16();
  return m;
}

// ---------------------------------------------------------------------------
// Actions
// ---------------------------------------------------------------------------

struct ActionSizeVisitor {
  std::size_t operator()(const ActionOutput&) const { return 8; }
  std::size_t operator()(const ActionSetVlanVid&) const { return 8; }
  std::size_t operator()(const ActionStripVlan&) const { return 8; }
  std::size_t operator()(const ActionSetDlSrc&) const { return 16; }
  std::size_t operator()(const ActionSetDlDst&) const { return 16; }
  std::size_t operator()(const ActionSetNwSrc&) const { return 8; }
  std::size_t operator()(const ActionSetNwDst&) const { return 8; }
};

struct ActionEncodeVisitor {
  BufWriter& w;
  void header(ActionType t, std::size_t len) const {
    w.u16(static_cast<std::uint16_t>(t));
    w.u16(static_cast<std::uint16_t>(len));
  }
  void operator()(const ActionOutput& a) const {
    header(ActionType::kOutput, 8);
    w.u16(a.port);
    w.u16(a.max_len);
  }
  void operator()(const ActionSetVlanVid& a) const {
    header(ActionType::kSetVlanVid, 8);
    w.u16(a.vlan_vid);
    w.zeros(2);
  }
  void operator()(const ActionStripVlan&) const {
    header(ActionType::kStripVlan, 8);
    w.zeros(4);
  }
  void operator()(const ActionSetDlSrc& a) const {
    header(ActionType::kSetDlSrc, 16);
    w.raw(a.addr);
    w.zeros(6);
  }
  void operator()(const ActionSetDlDst& a) const {
    header(ActionType::kSetDlDst, 16);
    w.raw(a.addr);
    w.zeros(6);
  }
  void operator()(const ActionSetNwSrc& a) const {
    header(ActionType::kSetNwSrc, 8);
    w.u32(a.addr);
  }
  void operator()(const ActionSetNwDst& a) const {
    header(ActionType::kSetNwDst, 8);
    w.u32(a.addr);
  }
};

void encode_actions(BufWriter& w, const ActionList& actions) {
  for (const auto& a : actions) std::visit(ActionEncodeVisitor{w}, a);
}

Result<ActionList> decode_actions(BufReader& r, std::size_t bytes) {
  ActionList out;
  const std::size_t end = r.position() + bytes;
  while (r.position() + 4 <= end) {
    const auto type = r.u16();
    const auto len = r.u16();
    if (len < 8 || r.position() - 4 + len > end) {
      return Error{"action length out of bounds"};
    }
    switch (static_cast<ActionType>(type)) {
      case ActionType::kOutput: {
        ActionOutput a;
        a.port = r.u16();
        a.max_len = r.u16();
        out.emplace_back(a);
        break;
      }
      case ActionType::kSetVlanVid: {
        ActionSetVlanVid a;
        a.vlan_vid = r.u16();
        r.skip(2);
        out.emplace_back(a);
        break;
      }
      case ActionType::kStripVlan: {
        r.skip(4);
        out.emplace_back(ActionStripVlan{});
        break;
      }
      case ActionType::kSetDlSrc: {
        ActionSetDlSrc a;
        auto bytes6 = r.raw(6);
        if (bytes6.size() == 6) std::copy(bytes6.begin(), bytes6.end(), a.addr.begin());
        r.skip(6);
        out.emplace_back(a);
        break;
      }
      case ActionType::kSetDlDst: {
        ActionSetDlDst a;
        auto bytes6 = r.raw(6);
        if (bytes6.size() == 6) std::copy(bytes6.begin(), bytes6.end(), a.addr.begin());
        r.skip(6);
        out.emplace_back(a);
        break;
      }
      case ActionType::kSetNwSrc: {
        ActionSetNwSrc a;
        a.addr = r.u32();
        out.emplace_back(a);
        break;
      }
      case ActionType::kSetNwDst: {
        ActionSetNwDst a;
        a.addr = r.u32();
        out.emplace_back(a);
        break;
      }
      default:
        return Error{"unknown action type " + std::to_string(type)};
    }
    if (r.failed()) return Error{"truncated action"};
  }
  if (r.position() != end) return Error{"trailing bytes inside action list"};
  return out;
}

std::size_t actions_wire_size(const ActionList& actions) {
  std::size_t n = 0;
  for (const auto& a : actions) n += std::visit(ActionSizeVisitor{}, a);
  return n;
}

// ---------------------------------------------------------------------------
// Fixed-width string fields (port / table names)
// ---------------------------------------------------------------------------

void encode_name(BufWriter& w, const std::string& name, std::size_t width) {
  std::size_t n = std::min(name.size(), width - 1);
  w.raw(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(name.data()), n));
  w.zeros(width - n);
}

std::string decode_name(BufReader& r, std::size_t width) {
  auto bytes = r.raw(width);
  std::size_t n = 0;
  while (n < bytes.size() && bytes[n] != 0) ++n;
  return std::string(reinterpret_cast<const char*>(bytes.data()), n);
}

// ---------------------------------------------------------------------------
// Physical ports (ofp_phy_port, 48 bytes)
// ---------------------------------------------------------------------------

void encode_phy_port(BufWriter& w, const PhyPort& p) {
  w.u16(p.port_no);
  w.raw(p.hw_addr);
  encode_name(w, p.name, 16);
  w.u32(p.config);
  w.u32(p.state);
  w.u32(p.curr);
  w.u32(p.advertised);
  w.u32(p.supported);
  w.u32(p.peer);
}

PhyPort decode_phy_port(BufReader& r) {
  PhyPort p;
  p.port_no = r.u16();
  auto mac = r.raw(6);
  if (mac.size() == 6) std::copy(mac.begin(), mac.end(), p.hw_addr.begin());
  p.name = decode_name(r, 16);
  p.config = r.u32();
  p.state = r.u32();
  p.curr = r.u32();
  p.advertised = r.u32();
  p.supported = r.u32();
  p.peer = r.u32();
  return p;
}

// ---------------------------------------------------------------------------
// Message body encoders
// ---------------------------------------------------------------------------

struct BodyEncodeVisitor {
  BufWriter& w;

  void operator()(const Hello&) const {}
  void operator()(const EchoRequest& m) const { w.raw(m.payload); }
  void operator()(const EchoReply& m) const { w.raw(m.payload); }
  void operator()(const ErrorMsg& m) const {
    w.u16(static_cast<std::uint16_t>(m.type));
    w.u16(m.code);
    w.raw(m.data);
  }
  void operator()(const FeaturesRequest&) const {}
  void operator()(const FeaturesReply& m) const {
    w.u64(m.datapath_id);
    w.u32(m.n_buffers);
    w.u8(m.n_tables);
    w.zeros(3);
    w.u32(m.capabilities);
    w.u32(m.actions);
    for (const auto& p : m.ports) encode_phy_port(w, p);
  }
  void operator()(const FlowMod& m) const {
    encode_match(w, m.match);
    w.u64(m.cookie);
    w.u16(static_cast<std::uint16_t>(m.command));
    w.u16(m.idle_timeout);
    w.u16(m.hard_timeout);
    w.u16(m.priority);
    w.u32(m.buffer_id);
    w.u16(m.out_port);
    w.u16(m.flags);
    encode_actions(w, m.actions);
  }
  void operator()(const FlowRemoved& m) const {
    encode_match(w, m.match);
    w.u64(m.cookie);
    w.u16(m.priority);
    w.u8(static_cast<std::uint8_t>(m.reason));
    w.zeros(1);
    w.u32(m.duration_sec);
    w.u32(m.duration_nsec);
    w.u16(m.idle_timeout);
    w.zeros(2);
    w.u64(m.packet_count);
    w.u64(m.byte_count);
  }
  void operator()(const PacketIn& m) const {
    w.u32(m.buffer_id);
    w.u16(m.total_len);
    w.u16(m.in_port);
    w.u8(static_cast<std::uint8_t>(m.reason));
    w.zeros(1);
    w.raw(m.data);
  }
  void operator()(const PacketOut& m) const {
    w.u32(m.buffer_id);
    w.u16(m.in_port);
    w.u16(static_cast<std::uint16_t>(actions_wire_size(m.actions)));
    encode_actions(w, m.actions);
    w.raw(m.data);
  }
  void operator()(const BarrierRequest&) const {}
  void operator()(const BarrierReply&) const {}
  void operator()(const FlowStatsRequest& m) const {
    w.u16(static_cast<std::uint16_t>(StatsType::kFlow));
    w.u16(0);  // flags
    encode_match(w, m.match);
    w.u8(m.table_id);
    w.zeros(1);
    w.u16(m.out_port);
  }
  void operator()(const FlowStatsReply& m) const {
    w.u16(static_cast<std::uint16_t>(StatsType::kFlow));
    w.u16(0);
    for (const auto& e : m.entries) {
      w.u16(static_cast<std::uint16_t>(88 + actions_wire_size(e.actions)));
      w.u8(e.table_id);
      w.zeros(1);
      encode_match(w, e.match);
      w.u32(e.duration_sec);
      w.u32(e.duration_nsec);
      w.u16(e.priority);
      w.u16(e.idle_timeout);
      w.u16(e.hard_timeout);
      w.zeros(6);
      w.u64(e.cookie);
      w.u64(e.packet_count);
      w.u64(e.byte_count);
      encode_actions(w, e.actions);
    }
  }
  void operator()(const GetConfigRequest&) const {}
  void operator()(const GetConfigReply& m) const {
    w.u16(m.flags);
    w.u16(m.miss_send_len);
  }
  void operator()(const SetConfig& m) const {
    w.u16(m.flags);
    w.u16(m.miss_send_len);
  }
  void operator()(const PortStatus& m) const {
    w.u8(static_cast<std::uint8_t>(m.reason));
    w.zeros(7);
    encode_phy_port(w, m.port);
  }
  void operator()(const PortMod& m) const {
    w.u16(m.port_no);
    w.raw(m.hw_addr);
    w.u32(m.config);
    w.u32(m.mask);
    w.u32(m.advertise);
    w.zeros(4);
  }
  void operator()(const Vendor& m) const {
    w.u32(m.vendor_id);
    w.raw(m.data);
  }
  void operator()(const AggregateStatsRequest& m) const {
    w.u16(static_cast<std::uint16_t>(StatsType::kAggregate));
    w.u16(0);
    encode_match(w, m.match);
    w.u8(m.table_id);
    w.zeros(1);
    w.u16(m.out_port);
  }
  void operator()(const AggregateStatsReply& m) const {
    w.u16(static_cast<std::uint16_t>(StatsType::kAggregate));
    w.u16(0);
    w.u64(m.packet_count);
    w.u64(m.byte_count);
    w.u32(m.flow_count);
    w.zeros(4);
  }
  void operator()(const DescStatsRequest&) const {
    w.u16(static_cast<std::uint16_t>(StatsType::kDesc));
    w.u16(0);
  }
  void operator()(const DescStatsReply& m) const {
    w.u16(static_cast<std::uint16_t>(StatsType::kDesc));
    w.u16(0);
    encode_name(w, m.mfr_desc, 256);
    encode_name(w, m.hw_desc, 256);
    encode_name(w, m.sw_desc, 256);
    encode_name(w, m.serial_num, 32);
    encode_name(w, m.dp_desc, 256);
  }
  void operator()(const PortStatsRequest& m) const {
    w.u16(static_cast<std::uint16_t>(StatsType::kPort));
    w.u16(0);
    w.u16(m.port_no);
    w.zeros(6);
  }
  void operator()(const PortStatsReply& m) const {
    w.u16(static_cast<std::uint16_t>(StatsType::kPort));
    w.u16(0);
    for (const auto& e : m.entries) {
      w.u16(e.port_no);
      w.zeros(6);
      w.u64(e.rx_packets);
      w.u64(e.tx_packets);
      w.u64(e.rx_bytes);
      w.u64(e.tx_bytes);
      w.u64(e.rx_dropped);
      w.u64(e.tx_dropped);
      w.u64(e.rx_errors);
      w.u64(e.tx_errors);
    }
  }
  void operator()(const TableStatsRequest&) const {
    w.u16(static_cast<std::uint16_t>(StatsType::kTable));
    w.u16(0);
  }
  void operator()(const TableStatsReply& m) const {
    w.u16(static_cast<std::uint16_t>(StatsType::kTable));
    w.u16(0);
    for (const auto& e : m.entries) {
      w.u8(e.table_id);
      w.zeros(3);
      encode_name(w, e.name, 32);
      w.u32(e.wildcards);
      w.u32(e.max_entries);
      w.u32(e.active_count);
      w.u64(e.lookup_count);
      w.u64(e.matched_count);
    }
  }
};

// Body byte counts mirroring BodyEncodeVisitor field for field; the codec
// test pins wire_size(msg) == encode(msg).size() for every message type so
// the two visitors cannot drift apart.
struct BodySizeVisitor {
  std::size_t operator()(const Hello&) const { return 0; }
  std::size_t operator()(const EchoRequest& m) const { return m.payload.size(); }
  std::size_t operator()(const EchoReply& m) const { return m.payload.size(); }
  std::size_t operator()(const ErrorMsg& m) const { return 4 + m.data.size(); }
  std::size_t operator()(const FeaturesRequest&) const { return 0; }
  std::size_t operator()(const FeaturesReply& m) const {
    return 24 + 48 * m.ports.size();
  }
  std::size_t operator()(const FlowMod& m) const {
    return 64 + actions_wire_size(m.actions);
  }
  std::size_t operator()(const FlowRemoved&) const { return 80; }
  std::size_t operator()(const PacketIn& m) const { return 10 + m.data.size(); }
  std::size_t operator()(const PacketOut& m) const {
    return 8 + actions_wire_size(m.actions) + m.data.size();
  }
  std::size_t operator()(const BarrierRequest&) const { return 0; }
  std::size_t operator()(const BarrierReply&) const { return 0; }
  std::size_t operator()(const FlowStatsRequest&) const { return 48; }
  std::size_t operator()(const FlowStatsReply& m) const {
    std::size_t n = 4;
    for (const auto& e : m.entries) n += 88 + actions_wire_size(e.actions);
    return n;
  }
  std::size_t operator()(const GetConfigRequest&) const { return 0; }
  std::size_t operator()(const GetConfigReply&) const { return 4; }
  std::size_t operator()(const SetConfig&) const { return 4; }
  std::size_t operator()(const PortStatus&) const { return 56; }
  std::size_t operator()(const PortMod&) const { return 24; }
  std::size_t operator()(const Vendor& m) const { return 4 + m.data.size(); }
  std::size_t operator()(const AggregateStatsRequest&) const { return 48; }
  std::size_t operator()(const AggregateStatsReply&) const { return 28; }
  std::size_t operator()(const DescStatsRequest&) const { return 4; }
  std::size_t operator()(const DescStatsReply&) const { return 4 + 1056; }
  std::size_t operator()(const PortStatsRequest&) const { return 12; }
  std::size_t operator()(const PortStatsReply& m) const {
    return 4 + 72 * m.entries.size();
  }
  std::size_t operator()(const TableStatsRequest&) const { return 4; }
  std::size_t operator()(const TableStatsReply& m) const {
    return 4 + 64 * m.entries.size();
  }
};

// ---------------------------------------------------------------------------
// Message body decoders
// ---------------------------------------------------------------------------

Result<MessageBody> decode_body(MsgType type, BufReader& r, std::size_t body_len) {
  switch (type) {
    case MsgType::kHello:
      r.skip(body_len);
      return MessageBody{Hello{}};
    case MsgType::kEchoRequest: {
      EchoRequest m;
      auto bytes = r.raw(body_len);
      m.payload.assign(bytes.begin(), bytes.end());
      return MessageBody{m};
    }
    case MsgType::kEchoReply: {
      EchoReply m;
      auto bytes = r.raw(body_len);
      m.payload.assign(bytes.begin(), bytes.end());
      return MessageBody{m};
    }
    case MsgType::kError: {
      if (body_len < 4) return Error{"error body too short"};
      ErrorMsg m;
      m.type = static_cast<ErrorType>(r.u16());
      m.code = r.u16();
      auto bytes = r.raw(body_len - 4);
      m.data.assign(bytes.begin(), bytes.end());
      return MessageBody{m};
    }
    case MsgType::kFeaturesRequest:
      return MessageBody{FeaturesRequest{}};
    case MsgType::kFeaturesReply: {
      if (body_len < 24) return Error{"features_reply body too short"};
      FeaturesReply m;
      m.datapath_id = r.u64();
      m.n_buffers = r.u32();
      m.n_tables = r.u8();
      r.skip(3);
      m.capabilities = r.u32();
      m.actions = r.u32();
      std::size_t rest = body_len - 24;
      if (rest % 48 != 0) return Error{"features_reply ports misaligned"};
      for (std::size_t i = 0; i < rest / 48; ++i) {
        m.ports.push_back(decode_phy_port(r));
      }
      return MessageBody{m};
    }
    case MsgType::kGetConfigRequest:
      return MessageBody{GetConfigRequest{}};
    case MsgType::kGetConfigReply: {
      if (body_len < 4) return Error{"get_config_reply too short"};
      GetConfigReply m;
      m.flags = r.u16();
      m.miss_send_len = r.u16();
      return MessageBody{m};
    }
    case MsgType::kSetConfig: {
      if (body_len < 4) return Error{"set_config too short"};
      SetConfig m;
      m.flags = r.u16();
      m.miss_send_len = r.u16();
      return MessageBody{m};
    }
    case MsgType::kPortStatus: {
      if (body_len < 56) return Error{"port_status too short"};
      PortStatus m;
      m.reason = static_cast<PortReason>(r.u8());
      r.skip(7);
      m.port = decode_phy_port(r);
      return MessageBody{m};
    }
    case MsgType::kPortMod: {
      if (body_len < 24) return Error{"port_mod too short"};
      PortMod m;
      m.port_no = r.u16();
      auto mac = r.raw(6);
      if (mac.size() == 6) std::copy(mac.begin(), mac.end(), m.hw_addr.begin());
      m.config = r.u32();
      m.mask = r.u32();
      m.advertise = r.u32();
      r.skip(4);
      return MessageBody{m};
    }
    case MsgType::kVendor: {
      if (body_len < 4) return Error{"vendor too short"};
      Vendor m;
      m.vendor_id = r.u32();
      auto bytes = r.raw(body_len - 4);
      m.data.assign(bytes.begin(), bytes.end());
      return MessageBody{m};
    }
    case MsgType::kFlowMod: {
      if (body_len < 64) return Error{"flow_mod body too short"};
      FlowMod m;
      m.match = decode_match(r);
      m.cookie = r.u64();
      m.command = static_cast<FlowModCommand>(r.u16());
      m.idle_timeout = r.u16();
      m.hard_timeout = r.u16();
      m.priority = r.u16();
      m.buffer_id = r.u32();
      m.out_port = r.u16();
      m.flags = r.u16();
      auto actions = decode_actions(r, body_len - 64);
      if (!actions) return Error{actions.error()};
      m.actions = std::move(actions.value());
      return MessageBody{m};
    }
    case MsgType::kFlowRemoved: {
      if (body_len < 72) return Error{"flow_removed body too short"};
      FlowRemoved m;
      m.match = decode_match(r);
      m.cookie = r.u64();
      m.priority = r.u16();
      m.reason = static_cast<FlowRemovedReason>(r.u8());
      r.skip(1);
      m.duration_sec = r.u32();
      m.duration_nsec = r.u32();
      m.idle_timeout = r.u16();
      r.skip(2);
      m.packet_count = r.u64();
      m.byte_count = r.u64();
      return MessageBody{m};
    }
    case MsgType::kPacketIn: {
      if (body_len < 10) return Error{"packet_in body too short"};
      PacketIn m;
      m.buffer_id = r.u32();
      m.total_len = r.u16();
      m.in_port = r.u16();
      m.reason = static_cast<PacketInReason>(r.u8());
      r.skip(1);
      auto bytes = r.raw(body_len - 10);
      m.data.assign(bytes.begin(), bytes.end());
      return MessageBody{m};
    }
    case MsgType::kPacketOut: {
      if (body_len < 8) return Error{"packet_out body too short"};
      PacketOut m;
      m.buffer_id = r.u32();
      m.in_port = r.u16();
      const std::size_t actions_len = r.u16();
      if (actions_len > body_len - 8) return Error{"packet_out actions overflow"};
      auto actions = decode_actions(r, actions_len);
      if (!actions) return Error{actions.error()};
      m.actions = std::move(actions.value());
      auto bytes = r.raw(body_len - 8 - actions_len);
      m.data.assign(bytes.begin(), bytes.end());
      return MessageBody{m};
    }
    case MsgType::kBarrierRequest:
      return MessageBody{BarrierRequest{}};
    case MsgType::kBarrierReply:
      return MessageBody{BarrierReply{}};
    case MsgType::kStatsRequest: {
      if (body_len < 4) return Error{"stats_request body too short"};
      const auto stats_type = static_cast<StatsType>(r.u16());
      r.skip(2);  // flags
      if (stats_type == StatsType::kFlow) {
        if (body_len < 4 + 44) return Error{"flow_stats_request too short"};
        FlowStatsRequest m;
        m.match = decode_match(r);
        m.table_id = r.u8();
        r.skip(1);
        m.out_port = r.u16();
        return MessageBody{m};
      }
      if (stats_type == StatsType::kTable) return MessageBody{TableStatsRequest{}};
      if (stats_type == StatsType::kDesc) return MessageBody{DescStatsRequest{}};
      if (stats_type == StatsType::kAggregate) {
        if (body_len < 4 + 44) return Error{"aggregate_stats_request too short"};
        AggregateStatsRequest m;
        m.match = decode_match(r);
        m.table_id = r.u8();
        r.skip(1);
        m.out_port = r.u16();
        return MessageBody{m};
      }
      if (stats_type == StatsType::kPort) {
        if (body_len < 4 + 8) return Error{"port_stats_request too short"};
        PortStatsRequest m;
        m.port_no = r.u16();
        r.skip(6);
        return MessageBody{m};
      }
      return Error{"unsupported stats_request type"};
    }
    case MsgType::kStatsReply: {
      if (body_len < 4) return Error{"stats_reply body too short"};
      const auto stats_type = static_cast<StatsType>(r.u16());
      r.skip(2);
      std::size_t rest = body_len - 4;
      if (stats_type == StatsType::kFlow) {
        FlowStatsReply m;
        while (rest > 0) {
          if (rest < 88) return Error{"flow_stats entry too short"};
          const std::size_t entry_len = r.u16();
          if (entry_len < 88 || entry_len > rest) return Error{"flow_stats entry length"};
          FlowStatsEntry e;
          e.table_id = r.u8();
          r.skip(1);
          e.match = decode_match(r);
          e.duration_sec = r.u32();
          e.duration_nsec = r.u32();
          e.priority = r.u16();
          e.idle_timeout = r.u16();
          e.hard_timeout = r.u16();
          r.skip(6);
          e.cookie = r.u64();
          e.packet_count = r.u64();
          e.byte_count = r.u64();
          auto actions = decode_actions(r, entry_len - 88);
          if (!actions) return Error{actions.error()};
          e.actions = std::move(actions.value());
          m.entries.push_back(std::move(e));
          rest -= entry_len;
        }
        return MessageBody{m};
      }
      if (stats_type == StatsType::kAggregate) {
        if (rest < 24) return Error{"aggregate_stats_reply too short"};
        AggregateStatsReply m;
        m.packet_count = r.u64();
        m.byte_count = r.u64();
        m.flow_count = r.u32();
        r.skip(4);
        return MessageBody{m};
      }
      if (stats_type == StatsType::kDesc) {
        if (rest < 256 * 4 + 32) return Error{"desc_stats_reply too short"};
        DescStatsReply m;
        m.mfr_desc = decode_name(r, 256);
        m.hw_desc = decode_name(r, 256);
        m.sw_desc = decode_name(r, 256);
        m.serial_num = decode_name(r, 32);
        m.dp_desc = decode_name(r, 256);
        return MessageBody{m};
      }
      if (stats_type == StatsType::kPort) {
        if (rest % 72 != 0) return Error{"port_stats entries misaligned"};
        PortStatsReply m;
        for (std::size_t i = 0; i < rest / 72; ++i) {
          PortStatsEntry e;
          e.port_no = r.u16();
          r.skip(6);
          e.rx_packets = r.u64();
          e.tx_packets = r.u64();
          e.rx_bytes = r.u64();
          e.tx_bytes = r.u64();
          e.rx_dropped = r.u64();
          e.tx_dropped = r.u64();
          e.rx_errors = r.u64();
          e.tx_errors = r.u64();
          m.entries.push_back(e);
        }
        return MessageBody{m};
      }
      if (stats_type == StatsType::kTable) {
        TableStatsReply m;
        if (rest % 64 != 0) return Error{"table_stats entries misaligned"};
        for (std::size_t i = 0; i < rest / 64; ++i) {
          TableStatsEntry e;
          e.table_id = r.u8();
          r.skip(3);
          e.name = decode_name(r, 32);
          e.wildcards = r.u32();
          e.max_entries = r.u32();
          e.active_count = r.u32();
          e.lookup_count = r.u64();
          e.matched_count = r.u64();
          m.entries.push_back(std::move(e));
        }
        return MessageBody{m};
      }
      return Error{"unsupported stats_reply type"};
    }
    default:
      return Error{"unsupported message type " +
                   std::to_string(static_cast<int>(type))};
  }
}

}  // namespace

std::size_t wire_size(const Action& action) {
  return std::visit(ActionSizeVisitor{}, action);
}

std::vector<std::uint8_t> encode_match_bytes(const Match& match) {
  BufWriter w;
  encode_match(w, match);
  return w.take();
}

Result<Match> decode_match_bytes(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != 40) return Error{"ofp_match must be 40 bytes"};
  BufReader r(bytes);
  Match m = decode_match(r);
  if (r.failed()) return Error{"truncated match"};
  return m;
}

void encode_into(const Message& msg, std::vector<std::uint8_t>& out) {
  BufWriter w(out);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(type_of(msg.body)));
  w.u16(0);  // length: patched below
  w.u32(msg.xid);
  std::visit(BodyEncodeVisitor{w}, msg.body);
  w.patch_u16(2, static_cast<std::uint16_t>(w.size()));
}

std::vector<std::uint8_t> encode(const Message& msg) {
  std::vector<std::uint8_t> out;
  out.reserve(wire_size(msg));
  encode_into(msg, out);
  return out;
}

std::size_t encode_batch(std::span<const Message> msgs,
                         std::vector<std::uint8_t>& out) {
  const std::size_t before = out.size();
  std::size_t total = 0;
  for (const auto& m : msgs) total += wire_size(m);
  out.reserve(before + total);
  for (const auto& m : msgs) encode_into(m, out);
  return out.size() - before;
}

std::size_t wire_size(const Message& msg) {
  return kHeaderLen + std::visit(BodySizeVisitor{}, msg.body);
}

Result<Message> decode(std::span<const std::uint8_t> frame) {
  if (frame.size() < kHeaderLen) return Error{"frame shorter than header"};
  BufReader r(frame);
  const auto version = r.u8();
  const auto type = static_cast<MsgType>(r.u8());
  const std::size_t length = r.u16();
  const auto xid = r.u32();
  if (version != kVersion) return Error{"unsupported OpenFlow version"};
  if (length != frame.size()) return Error{"frame length mismatch"};
  auto body = decode_body(type, r, length - kHeaderLen);
  if (!body) return Error{body.error()};
  if (r.failed()) return Error{"truncated message body"};
  return Message{xid, std::move(body.value())};
}

void FrameAssembler::feed(std::span<const std::uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::vector<std::uint8_t> FrameAssembler::next_frame() {
  if (buffer_.size() < kHeaderLen) return {};
  const std::size_t length = (static_cast<std::size_t>(buffer_[2]) << 8) | buffer_[3];
  if (length < kHeaderLen || buffer_.size() < length) return {};
  std::vector<std::uint8_t> frame(buffer_.begin(),
                                  buffer_.begin() + static_cast<long>(length));
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<long>(length));
  return frame;
}

}  // namespace tango::of
