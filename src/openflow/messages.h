// OpenFlow 1.0 message structures (subset used by Tango).
//
// A Message is a transaction id plus one of the typed bodies below. The
// codec (codec.h) maps these to/from the OF1.0 wire format.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "openflow/actions.h"
#include "openflow/constants.h"
#include "openflow/match.h"

namespace tango::of {

struct Hello {
  bool operator==(const Hello&) const = default;
};

struct EchoRequest {
  std::vector<std::uint8_t> payload;
  bool operator==(const EchoRequest&) const = default;
};

struct EchoReply {
  std::vector<std::uint8_t> payload;
  bool operator==(const EchoReply&) const = default;
};

struct ErrorMsg {
  ErrorType type = ErrorType::kBadRequest;
  std::uint16_t code = 0;
  std::vector<std::uint8_t> data;  // first bytes of the offending message
  bool operator==(const ErrorMsg&) const = default;
};

struct FeaturesRequest {
  bool operator==(const FeaturesRequest&) const = default;
};

struct PhyPort {
  std::uint16_t port_no = 0;
  MacAddr hw_addr{};
  std::string name;  // up to 15 chars on the wire
  std::uint32_t config = 0;
  std::uint32_t state = 0;
  std::uint32_t curr = 0;
  std::uint32_t advertised = 0;
  std::uint32_t supported = 0;
  std::uint32_t peer = 0;
  bool operator==(const PhyPort&) const = default;
};

struct FeaturesReply {
  std::uint64_t datapath_id = 0;
  std::uint32_t n_buffers = 0;
  std::uint8_t n_tables = 0;
  std::uint32_t capabilities = 0;
  std::uint32_t actions = 0;
  std::vector<PhyPort> ports;
  bool operator==(const FeaturesReply&) const = default;
};

struct FlowMod {
  Match match;
  std::uint64_t cookie = 0;
  FlowModCommand command = FlowModCommand::kAdd;
  std::uint16_t idle_timeout = 0;
  std::uint16_t hard_timeout = 0;
  std::uint16_t priority = 0x8000;
  std::uint32_t buffer_id = kNoBuffer;
  std::uint16_t out_port = kPortNone;  // filter for DELETE
  std::uint16_t flags = 0;
  ActionList actions;
  bool operator==(const FlowMod&) const = default;
};

struct FlowRemoved {
  Match match;
  std::uint64_t cookie = 0;
  std::uint16_t priority = 0;
  FlowRemovedReason reason = FlowRemovedReason::kDelete;
  std::uint32_t duration_sec = 0;
  std::uint32_t duration_nsec = 0;
  std::uint16_t idle_timeout = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
  bool operator==(const FlowRemoved&) const = default;
};

struct PacketIn {
  std::uint32_t buffer_id = kNoBuffer;
  std::uint16_t total_len = 0;
  std::uint16_t in_port = 0;
  PacketInReason reason = PacketInReason::kNoMatch;
  std::vector<std::uint8_t> data;
  bool operator==(const PacketIn&) const = default;
};

struct PacketOut {
  std::uint32_t buffer_id = kNoBuffer;
  std::uint16_t in_port = kPortNone;
  ActionList actions;
  std::vector<std::uint8_t> data;
  bool operator==(const PacketOut&) const = default;
};

struct BarrierRequest {
  bool operator==(const BarrierRequest&) const = default;
};

struct BarrierReply {
  bool operator==(const BarrierReply&) const = default;
};

struct FlowStatsRequest {
  Match match;            // filter
  std::uint8_t table_id = 0xff;  // all tables
  std::uint16_t out_port = kPortNone;
  bool operator==(const FlowStatsRequest&) const = default;
};

struct FlowStatsEntry {
  std::uint8_t table_id = 0;
  Match match;
  std::uint32_t duration_sec = 0;
  std::uint32_t duration_nsec = 0;
  std::uint16_t priority = 0;
  std::uint16_t idle_timeout = 0;
  std::uint16_t hard_timeout = 0;
  std::uint64_t cookie = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
  ActionList actions;
  bool operator==(const FlowStatsEntry&) const = default;
};

struct FlowStatsReply {
  std::vector<FlowStatsEntry> entries;
  bool operator==(const FlowStatsReply&) const = default;
};

struct TableStatsRequest {
  bool operator==(const TableStatsRequest&) const = default;
};

struct TableStatsEntry {
  std::uint8_t table_id = 0;
  std::string name;  // up to 31 chars on the wire
  std::uint32_t wildcards = 0;
  std::uint32_t max_entries = 0;
  std::uint32_t active_count = 0;
  std::uint64_t lookup_count = 0;
  std::uint64_t matched_count = 0;
  bool operator==(const TableStatsEntry&) const = default;
};

struct TableStatsReply {
  std::vector<TableStatsEntry> entries;
  bool operator==(const TableStatsReply&) const = default;
};

struct GetConfigRequest {
  bool operator==(const GetConfigRequest&) const = default;
};

struct GetConfigReply {
  std::uint16_t flags = 0;
  std::uint16_t miss_send_len = 128;
  bool operator==(const GetConfigReply&) const = default;
};

struct SetConfig {
  std::uint16_t flags = 0;
  std::uint16_t miss_send_len = 128;
  bool operator==(const SetConfig&) const = default;
};

enum class PortReason : std::uint8_t { kAdd = 0, kDelete = 1, kModify = 2 };

struct PortStatus {
  PortReason reason = PortReason::kModify;
  PhyPort port;
  bool operator==(const PortStatus&) const = default;
};

// ofp_port_config bits (subset).
inline constexpr std::uint32_t kPortConfigDown = 1u << 0;
inline constexpr std::uint32_t kPortConfigNoFlood = 1u << 4;
// ofp_port_state bits.
inline constexpr std::uint32_t kPortStateLinkDown = 1u << 0;

struct PortMod {
  std::uint16_t port_no = 0;
  MacAddr hw_addr{};
  std::uint32_t config = 0;
  std::uint32_t mask = 0;
  std::uint32_t advertise = 0;
  bool operator==(const PortMod&) const = default;
};

struct Vendor {
  std::uint32_t vendor_id = 0;
  std::vector<std::uint8_t> data;
  bool operator==(const Vendor&) const = default;
};

struct AggregateStatsRequest {
  Match match;
  std::uint8_t table_id = 0xff;
  std::uint16_t out_port = kPortNone;
  bool operator==(const AggregateStatsRequest&) const = default;
};

struct AggregateStatsReply {
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
  std::uint32_t flow_count = 0;
  bool operator==(const AggregateStatsReply&) const = default;
};

struct DescStatsRequest {
  bool operator==(const DescStatsRequest&) const = default;
};

struct DescStatsReply {
  std::string mfr_desc;     // up to 255 chars on the wire
  std::string hw_desc;      // up to 255
  std::string sw_desc;      // up to 255
  std::string serial_num;   // up to 31
  std::string dp_desc;      // up to 255
  bool operator==(const DescStatsReply&) const = default;
};

struct PortStatsRequest {
  std::uint16_t port_no = kPortNone;  // kPortNone = all ports
  bool operator==(const PortStatsRequest&) const = default;
};

struct PortStatsEntry {
  std::uint16_t port_no = 0;
  std::uint64_t rx_packets = 0;
  std::uint64_t tx_packets = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_dropped = 0;
  std::uint64_t tx_dropped = 0;
  std::uint64_t rx_errors = 0;
  std::uint64_t tx_errors = 0;
  bool operator==(const PortStatsEntry&) const = default;
};

struct PortStatsReply {
  std::vector<PortStatsEntry> entries;
  bool operator==(const PortStatsReply&) const = default;
};

using MessageBody =
    std::variant<Hello, EchoRequest, EchoReply, ErrorMsg, FeaturesRequest,
                 FeaturesReply, FlowMod, FlowRemoved, PacketIn, PacketOut,
                 BarrierRequest, BarrierReply, FlowStatsRequest, FlowStatsReply,
                 TableStatsRequest, TableStatsReply, GetConfigRequest,
                 GetConfigReply, SetConfig, PortStatus, PortMod, Vendor,
                 AggregateStatsRequest, AggregateStatsReply, DescStatsRequest,
                 DescStatsReply, PortStatsRequest, PortStatsReply>;

struct Message {
  std::uint32_t xid = 0;
  MessageBody body;
};

MsgType type_of(const MessageBody& body);
std::string type_name(MsgType type);

}  // namespace tango::of
