// Simulated data-plane packets.
//
// The probing engine sends packets via PACKET_OUT and receives them back via
// PACKET_IN; the payload on the wire is this fixed serialization of the
// header plus an opaque payload length (we never need payload bytes, only
// sizes, so the simulation carries lengths instead of buffers).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "openflow/match.h"

namespace tango::of {

struct Packet {
  PacketHeader header;
  std::uint32_t payload_len = 64;

  bool operator==(const Packet&) const = default;

  [[nodiscard]] std::size_t total_len() const {
    return kWireHeaderLen + payload_len;
  }

  /// Serialized header size (fixed-width field dump).
  static constexpr std::size_t kWireHeaderLen = 2 + 6 + 6 + 2 + 1 + 2 + 1 + 1 + 4 + 4 + 2 + 2 + 4;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static Result<Packet> decode(std::span<const std::uint8_t> bytes);
};

}  // namespace tango::of
