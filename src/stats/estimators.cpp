#include "stats/estimators.h"

namespace tango::stats {

double negative_binomial_p_mle(std::span<const std::size_t> hit_runs) {
  if (hit_runs.empty()) return 0;
  double total = 0;
  for (std::size_t x : hit_runs) total += static_cast<double>(x);
  const double k = static_cast<double>(hit_runs.size());
  return total / (k + total);
}

double estimate_layer_size(std::size_t installed_flows,
                           std::span<const std::size_t> hit_runs) {
  return static_cast<double>(installed_flows) * negative_binomial_p_mle(hit_runs);
}

}  // namespace tango::stats
