// Correlation measures used by the cache-policy inference (paper Algorithm 2):
// the engine correlates each flow attribute with the observed cached/evicted
// outcome and picks the attribute with the strongest |correlation| as the
// next key of the lexicographic eviction order.
#pragma once

#include <span>
#include <vector>

namespace tango::stats {

/// Pearson product-moment correlation; 0 when either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Point-biserial correlation between a continuous attribute and a binary
/// outcome (cached = 1, evicted = 0). Equivalent to Pearson with 0/1 ys.
double point_biserial(std::span<const double> xs, const std::vector<bool>& cached);

/// Spearman rank correlation (Pearson over ranks, average ranks for ties).
double spearman(std::span<const double> xs, std::span<const double> ys);

}  // namespace tango::stats
