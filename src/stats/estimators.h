// Statistical estimators for the size-probing algorithm (paper §5.2).
//
// Sampling a uniformly random installed flow and probing until the first
// miss of a given cache layer yields a Negative-Binomial(r=1, p) run length,
// with p = n_layer / m (m = installed flows). The maximum-likelihood
// estimator over k trials is p_hat = sum(X) / (k + sum(X)); the layer size
// estimate is n_hat = m * p_hat.
#pragma once

#include <cstddef>
#include <span>

namespace tango::stats {

/// MLE of the per-draw hit probability from k geometric trial run lengths
/// (X_i = number of consecutive hits before the first miss).
double negative_binomial_p_mle(std::span<const std::size_t> hit_runs);

/// Layer-size estimate n_hat = m * p_hat.
double estimate_layer_size(std::size_t installed_flows,
                           std::span<const std::size_t> hit_runs);

}  // namespace tango::stats
