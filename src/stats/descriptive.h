// Descriptive statistics used by the inference engine and bench reports.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tango::stats {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);   // population variance
double stddev(std::span<const double> xs);
double median(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::span<const double> xs, double p);

struct Summary {
  std::size_t n = 0;
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double p50 = 0;
  double p95 = 0;
  double max = 0;
};

Summary summarize(std::span<const double> xs);

}  // namespace tango::stats
