#include "stats/cluster.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tango::stats {

std::vector<Cluster> gap_clusters(std::span<const double> samples,
                                  double min_center_ratio, double min_gap_abs) {
  std::vector<Cluster> out;
  if (samples.empty()) return out;

  // Over-cluster, then merge neighbours that are not tier-separated.
  const std::size_t k = std::min<std::size_t>(6, samples.size());
  auto fine = kmeans_1d(samples, k);

  out.push_back(fine[0]);
  for (std::size_t i = 1; i < fine.size(); ++i) {
    Cluster& prev = out.back();
    const Cluster& cur = fine[i];
    const double lo = std::max(prev.center, min_gap_abs);
    const bool separated = cur.center >= lo * min_center_ratio &&
                           cur.center - prev.center >= min_gap_abs;
    if (separated) {
      out.push_back(cur);
    } else {
      // Merge cur into prev.
      const double total = static_cast<double>(prev.count + cur.count);
      prev.center = (prev.center * static_cast<double>(prev.count) +
                     cur.center * static_cast<double>(cur.count)) /
                    total;
      prev.lo = std::min(prev.lo, cur.lo);
      prev.hi = std::max(prev.hi, cur.hi);
      prev.count += cur.count;
    }
  }
  return out;
}

std::vector<Cluster> kmeans_1d(std::span<const double> samples, std::size_t k,
                               std::size_t max_iters) {
  std::vector<Cluster> out;
  if (samples.empty() || k == 0) return out;
  std::vector<double> v(samples.begin(), samples.end());
  std::sort(v.begin(), v.end());
  k = std::min(k, v.size());

  // Seed centers at evenly spaced quantiles.
  std::vector<double> centers(k);
  for (std::size_t j = 0; j < k; ++j) {
    centers[j] = v[(v.size() - 1) * (2 * j + 1) / (2 * k)];
  }

  std::vector<std::size_t> assign(v.size(), 0);
  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < v.size(); ++i) {
      std::size_t best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (std::size_t j = 0; j < k; ++j) {
        const double d = std::abs(v[i] - centers[j]);
        if (d < best_d) { best_d = d; best = j; }
      }
      if (assign[i] != best) { assign[i] = best; changed = true; }
    }
    std::vector<double> sum(k, 0);
    std::vector<std::size_t> cnt(k, 0);
    for (std::size_t i = 0; i < v.size(); ++i) {
      sum[assign[i]] += v[i];
      ++cnt[assign[i]];
    }
    for (std::size_t j = 0; j < k; ++j) {
      if (cnt[j] > 0) centers[j] = sum[j] / static_cast<double>(cnt[j]);
    }
    if (!changed) break;
  }

  for (std::size_t j = 0; j < k; ++j) {
    Cluster c;
    c.lo = std::numeric_limits<double>::max();
    c.hi = std::numeric_limits<double>::lowest();
    double s = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (assign[i] != j) continue;
      c.lo = std::min(c.lo, v[i]);
      c.hi = std::max(c.hi, v[i]);
      s += v[i];
      ++c.count;
    }
    if (c.count == 0) continue;  // empty cluster: drop
    c.center = s / static_cast<double>(c.count);
    out.push_back(c);
  }
  std::sort(out.begin(), out.end(),
            [](const Cluster& a, const Cluster& b) { return a.center < b.center; });
  return out;
}

std::size_t classify(const std::vector<Cluster>& clusters, double x) {
  if (clusters.empty()) return std::numeric_limits<std::size_t>::max();
  // Containment first (with a small relative widening), then nearest center.
  for (std::size_t j = 0; j < clusters.size(); ++j) {
    const double width = std::max(clusters[j].hi - clusters[j].lo,
                                  0.25 * clusters[j].center);
    if (x >= clusters[j].lo - width * 0.5 && x <= clusters[j].hi + width * 0.5) {
      return j;
    }
  }
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::max();
  for (std::size_t j = 0; j < clusters.size(); ++j) {
    const double d = std::abs(x - clusters[j].center);
    if (d < best_d) { best_d = d; best = j; }
  }
  return best;
}

}  // namespace tango::stats
