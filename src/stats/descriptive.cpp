#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

namespace tango::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0;
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0;
  const double m = mean(xs);
  double s = 0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::span<const double> xs) { return percentile(xs, 50); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  const double rank = (p / 100.0) * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] * (1 - frac) + v[hi] * frac;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  s.p50 = percentile(xs, 50);
  s.p95 = percentile(xs, 95);
  return s;
}

}  // namespace tango::stats
