// One-dimensional clustering of round-trip-time samples.
//
// The Tango size-probing algorithm (paper Algorithm 1, stage 2) clusters the
// RTTs of probe packets to count how many flow-table layers a switch has:
// each latency cluster corresponds to one layer (TCAM fast path, kernel
// table, user-space slow path, control path). The layers are separated by
// large latency multiples, so we use a gap-splitting heuristic with a
// k-means refinement; both pieces are exposed for testing.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tango::stats {

struct Cluster {
  double lo = 0;       ///< smallest member
  double hi = 0;       ///< largest member
  double center = 0;   ///< mean of members
  std::size_t count = 0;
};

/// Cluster latency samples into tiers. Over-cluster with k-means (k up to
/// 6), then merge adjacent clusters whose centers are not separated by at
/// least `min_center_ratio` (flow-table tiers differ multiplicatively:
/// TCAM vs software vs controller are ~1.5x apart or more) or by
/// `min_gap_abs` in absolute terms.
std::vector<Cluster> gap_clusters(std::span<const double> samples,
                                  double min_center_ratio = 1.35,
                                  double min_gap_abs = 1e-6);

/// Classic 1-D k-means (Lloyd's) with deterministic quantile seeding.
std::vector<Cluster> kmeans_1d(std::span<const double> samples, std::size_t k,
                               std::size_t max_iters = 64);

/// Index of the cluster whose range (widened by tolerance) contains x;
/// falls back to the nearest center. Returns SIZE_MAX on empty input.
std::size_t classify(const std::vector<Cluster>& clusters, double x);

}  // namespace tango::stats
