#include "stats/correlation.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <vector>

namespace tango::stats {

double pearson(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  const std::size_t n = xs.size();
  if (n < 2) return 0;
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) { mx += xs[i]; my += ys[i]; }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0 || syy <= 0) return 0;
  return sxy / std::sqrt(sxx * syy);
}

double point_biserial(std::span<const double> xs, const std::vector<bool>& cached) {
  assert(xs.size() == cached.size());
  std::vector<double> ys(cached.size());
  for (std::size_t i = 0; i < cached.size(); ++i) ys[i] = cached[i] ? 1.0 : 0.0;
  return pearson(xs, ys);
}

namespace {

std::vector<double> ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> r(n, 0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[idx[j + 1]] == xs[idx[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t t = i; t <= j; ++t) r[idx[t]] = avg;
    i = j + 1;
  }
  return r;
}

}  // namespace

double spearman(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  const auto rx = ranks(xs);
  const auto ry = ranks(ys);
  return pearson(rx, ry);
}

}  // namespace tango::stats
