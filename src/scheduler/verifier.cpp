#include "scheduler/verifier.h"

#include <algorithm>
#include <set>

#include "net/topology.h"
#include "openflow/actions.h"

namespace tango::sched {

std::string to_string(VerifierViolation::Kind kind) {
  switch (kind) {
    case VerifierViolation::Kind::kBlackHole: return "black-hole";
    case VerifierViolation::Kind::kLoop: return "loop";
    case VerifierViolation::Kind::kShadowed: return "shadowed";
    case VerifierViolation::Kind::kWrongEgress: return "wrong-egress";
  }
  return "?";
}

namespace {

/// The rule the switch's lookup resolves for `pkt`: highest priority among
/// matching wildcard entries (ties by table order, the order flow_stats
/// lists them in — level 0 first).
const of::FlowStatsEntry* resolve(const of::FlowStatsReply& table,
                                  const of::PacketHeader& pkt) {
  const of::FlowStatsEntry* best = nullptr;
  for (const auto& e : table.entries) {
    if (!e.match.matches(pkt)) continue;
    if (best == nullptr || e.priority > best->priority) best = &e;
  }
  return best;
}

}  // namespace

VerifierReport ConsistencyVerifier::verify(const std::vector<FlowCheck>& flows) {
  VerifierReport report;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    ++report.flows_checked;
    walk(flows[i], i, report);
  }
  return report;
}

void ConsistencyVerifier::walk(const FlowCheck& flow, std::size_t index,
                               VerifierReport& report) {
  auto violate = [&](VerifierViolation::Kind kind, SwitchId at,
                     std::string detail) {
    VerifierViolation v;
    v.kind = kind;
    v.flow = index;
    v.at = at;
    v.detail = std::move(detail);
    switch (kind) {
      case VerifierViolation::Kind::kBlackHole: ++report.black_holes; break;
      case VerifierViolation::Kind::kLoop: ++report.loops; break;
      case VerifierViolation::Kind::kShadowed: ++report.shadowed; break;
      case VerifierViolation::Kind::kWrongEgress: ++report.wrong_egress; break;
    }
    report.violations.push_back(std::move(v));
  };

  SwitchId at = flow.ingress;
  std::set<SwitchId> visited;
  for (std::size_t hop = 0; hop <= options_.max_hops; ++hop) {
    // Reaching the expected egress switch counts as delivery — path
    // installers stop one hop short of the destination, so the egress
    // switch itself may hold no rule for the flow.
    if (hop > 0 && flow.expected_egress != 0 && at == flow.expected_egress) {
      return;
    }
    if (hop == options_.max_hops || !visited.insert(at).second) {
      violate(VerifierViolation::Kind::kLoop, at,
              "revisited switch " + std::to_string(at) + " after " +
                  std::to_string(hop) + " hops");
      return;
    }

    const auto table = network_.sw(at).flow_stats(of::Match::any());
    const auto* rule = resolve(table, flow.packet);
    if (rule == nullptr) {
      violate(VerifierViolation::Kind::kBlackHole, at, "no matching rule");
      return;
    }

    const auto want = flow.expected_cookies.find(at);
    if (want != flow.expected_cookies.end() && rule->cookie != want->second) {
      // Distinguish "our rule is shadowed by a stale higher-priority
      // leftover" from "our rule is simply gone".
      const bool intended_present = std::any_of(
          table.entries.begin(), table.entries.end(), [&](const auto& e) {
            return e.cookie == want->second && e.match.matches(flow.packet);
          });
      violate(intended_present ? VerifierViolation::Kind::kShadowed
                               : VerifierViolation::Kind::kBlackHole,
              at,
              intended_present
                  ? "rule with cookie " + std::to_string(want->second) +
                        " shadowed by priority " + std::to_string(rule->priority)
                  : "intended rule (cookie " + std::to_string(want->second) +
                        ") missing; matched priority " +
                        std::to_string(rule->priority));
      return;
    }

    const std::uint16_t port = of::output_port(rule->actions);
    if (port == of::kPortNone || port == of::kPortController) {
      violate(VerifierViolation::Kind::kBlackHole, at,
              port == of::kPortController
                  ? "punted to controller (priority " +
                        std::to_string(rule->priority) + ")"
                  : "matching rule has no output action");
      return;
    }
    if (!network_.sw(at).port_forwarding(port)) {
      violate(VerifierViolation::Kind::kBlackHole, at,
              "output port " + std::to_string(port) + " is down");
      return;
    }

    // Map the output port back to a topology link; a port with no link is a
    // host-facing port, i.e. the packet leaves the network here.
    const net::NodeId node = net::Network::node_of(at);
    const auto& topo = network_.topology();
    std::optional<std::size_t> link;
    for (std::size_t li = 0; li < topo.link_count(); ++li) {
      const auto& l = topo.link(li);
      if ((l.a == node || l.b == node) && net::port_for_link(li) == port) {
        link = li;
        break;
      }
    }
    if (!link.has_value()) {
      if (flow.expected_egress != 0 && flow.expected_egress != at) {
        violate(VerifierViolation::Kind::kWrongEgress, at,
                "egressed at switch " + std::to_string(at) + ", expected " +
                    std::to_string(flow.expected_egress));
      }
      return;  // left the network
    }
    if (!topo.link(*link).up) {
      violate(VerifierViolation::Kind::kBlackHole, at,
              "link " + std::to_string(*link) + " is down");
      return;
    }
    const auto& l = topo.link(*link);
    at = net::Network::switch_of(l.a == node ? l.b : l.a);
  }
}

}  // namespace tango::sched
