// Executes a request DAG against the simulated network under a given
// scheduler, measuring the makespan in virtual time.
//
// Round structure: all currently ready requests are handed to the scheduler
// for ordering and issued (per-switch channels are FIFO, so issue order is
// execution order per switch). Each completion unlocks successors; newly
// ready requests trigger another scheduling round. With the speculative
// option on, a request may be issued before its predecessors complete when
// the predecessor's estimated completion (plus a guard interval) precedes
// this request's estimated start — the §6 "schedule dependent switch
// requests concurrently" extension for weak-consistency scenarios.
#pragma once

#include <cstddef>
#include <map>

#include "net/network.h"
#include "scheduler/request.h"
#include "scheduler/schedulers.h"

namespace tango::sched {

struct ExecutorOptions {
  /// Issue dependents early when the timing estimate allows (guard below):
  /// a blocked request goes out once every predecessor's *estimated finish*
  /// (agent backlog + estimated op duration) precedes this request's own
  /// estimated finish by at least `guard` — the paper's §6 "estimated
  /// finishing time of the first operation precedes the second by a guard
  /// interval" condition, for weak-consistency scenarios.
  bool speculative_dependents = false;
  SimDuration guard = millis(5);
  /// Measured per-op costs used for the speculation estimates (from
  /// TangoController::learn). Unlisted switches use `default_op_estimate`.
  std::map<SwitchId, core::OpCostEstimate> cost_hints;
  SimDuration default_op_estimate = millis(1);
  /// Priority used when a request carries none and enforcement didn't run.
  std::uint16_t default_priority = 0x8000;
  /// Commands in flight per switch. Small windows keep the agent fed over
  /// the channel latency while leaving the backlog at the controller where
  /// the scheduler can still re-order it.
  std::size_t per_switch_window = 4;
};

struct ExecutionReport {
  SimDuration makespan{};
  std::size_t issued = 0;
  std::size_t rejected = 0;
  std::size_t scheduling_rounds = 0;
  std::size_t deadline_misses = 0;
  /// Busy time charged per switch (diagnostics).
  std::map<SwitchId, SimDuration> per_switch_busy;
};

ExecutionReport execute(net::Network& network, const RequestDag& dag,
                        UpdateScheduler& scheduler,
                        const ExecutorOptions& options = {});

/// Build the flow_mod a request maps to.
of::FlowMod to_flow_mod(const SwitchRequest& request,
                        std::uint16_t default_priority = 0x8000);

}  // namespace tango::sched
