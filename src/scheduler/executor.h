// Executes a request DAG against the simulated network under a given
// scheduler, measuring the makespan in virtual time.
//
// Round structure: all currently ready requests are handed to the scheduler
// for ordering and issued (per-switch channels are FIFO, so issue order is
// execution order per switch). Each completion unlocks successors; newly
// ready requests trigger another scheduling round. With the speculative
// option on, a request may be issued before its predecessors complete when
// the predecessor's estimated completion (plus a guard interval) precedes
// this request's estimated start — the §6 "schedule dependent switch
// requests concurrently" extension for weak-consistency scenarios.
// The executor is also the controller's recovery layer: when a fault
// injector is active on a channel, a posted flow_mod (or its completion
// notice) may simply vanish. Each issued request carries a timeout; on
// expiry the executor retries with bounded exponential backoff, and once
// retries are exhausted it probes liveness with ECHO_REQUESTs before
// declaring the switch dead. Dead switches fail their outstanding requests
// (and, transitively, dependents that can now never become ready), all of
// which is reported so the caller can distinguish "installed" from
// "consciously abandoned" — nothing is silently lost.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <set>

#include "net/network.h"
#include "net/rtt.h"
#include "scheduler/request.h"
#include "scheduler/schedulers.h"

namespace tango::sched {

namespace detail {
struct ExecState;
}  // namespace detail

struct ExecutorOptions {
  /// Issue dependents early when the timing estimate allows (guard below):
  /// a blocked request goes out once every predecessor's *estimated finish*
  /// (agent backlog + estimated op duration) precedes this request's own
  /// estimated finish by at least `guard` — the paper's §6 "estimated
  /// finishing time of the first operation precedes the second by a guard
  /// interval" condition, for weak-consistency scenarios.
  bool speculative_dependents = false;
  SimDuration guard = millis(5);
  /// Measured per-op costs used for the speculation estimates (from
  /// TangoController::learn). Unlisted switches use `default_op_estimate`.
  std::map<SwitchId, core::OpCostEstimate> cost_hints;
  SimDuration default_op_estimate = millis(1);
  /// Priority used when a request carries none and enforcement didn't run.
  std::uint16_t default_priority = 0x8000;
  /// Commands in flight per switch. Small windows keep the agent fed over
  /// the channel latency while leaving the backlog at the controller where
  /// the scheduler can still re-order it.
  std::size_t per_switch_window = 4;

  // --- recovery layer ------------------------------------------------------
  /// How long an issued flow_mod may go unanswered before it is retried.
  /// Zero disables the whole recovery layer (no timers are scheduled); the
  /// default is far above any fault-free completion time, so fault-free
  /// runs behave identically with it on.
  SimDuration request_timeout = seconds(2);
  /// Retries per attempt round before liveness is questioned.
  std::size_t max_retries = 4;
  /// First retry waits this long; each further retry doubles it.
  SimDuration backoff_base = millis(20);
  /// After an ECHO proves the switch alive, the request gets a fresh round
  /// of retries — at most this many times before the request is failed.
  std::size_t max_echo_rescues = 2;
  /// Re-issue requests the switch rejected with a *retryable* error class
  /// (today: OFPET_FLOW_MOD_FAILED / ALL_TABLES_FULL — transient table
  /// pressure can clear; EPERM or a bad command never will). Uses the same
  /// backoff and attempt budget as timeout retries. Off by default so
  /// existing runs are bit-identical: rejections stay terminal.
  bool retry_rejections = false;
  /// Per-switch adaptive deadlines (non-owning; see net/rtt.h). When set,
  /// every request/echo deadline becomes rtt->timeout_for(switch,
  /// request_timeout) — learned from echo round trips and solo
  /// first-attempt flow_mod completions, never exceeding request_timeout.
  /// Null (the default) keeps the fixed knob and a bit-identical schedule:
  /// adaptive deadlines move when timer events fire, which shifts the
  /// post-drain virtual clock, so the estimator is strictly opt-in.
  net::RttEstimator* rtt = nullptr;

  // --- knowledge-health observer -------------------------------------------
  /// Fires on each clean first-attempt acceptance for a switch with a cost
  /// hint: `actual_ms` is the agent's measured processing time for the op,
  /// `predicted_ms` the hint's estimate. The drift sentinel feeds on these
  /// mispredictions. Null = off; no timestamps are recorded when unset.
  std::function<void(SwitchId loc, RequestType type, double actual_ms,
                     double predicted_ms)>
      on_cost_observation;

  // --- transaction observers -----------------------------------------------
  /// Fires once when a request reaches its terminal completed state (first
  /// completion wins; `accepted` is the switch's verdict). The transaction
  /// layer uses this to mark journal entries acknowledged. Null = off; the
  /// fault-free fast path is untouched when unset.
  std::function<void(std::size_t id, bool accepted)> on_complete;
  /// Fires once when a request is abandoned (switch declared dead, retries
  /// and rescues exhausted, or a predecessor failed).
  std::function<void(std::size_t id)> on_failed;
};

// Progress/recovery tallies are kept in a telemetry::MetricsRegistry during
// the run (the network's registry when telemetry is attached, a private one
// otherwise) under "executor.*" names; the report's count fields are
// derived from counter deltas when execute() returns — one source of truth,
// two views.
struct ExecutionReport {
  SimDuration makespan{};
  std::size_t issued = 0;
  /// Requests whose *terminal* state is a rejection.
  std::size_t rejected = 0;
  /// Rejection completions by error class (counts every rejection the
  /// switch returned, including ones a retry later recovered — so
  /// rejected_retryable + rejected_fatal >= rejected).
  std::size_t rejected_retryable = 0;
  std::size_t rejected_fatal = 0;
  std::size_t scheduling_rounds = 0;
  std::size_t deadline_misses = 0;
  /// Busy time charged per switch (diagnostics).
  std::map<SwitchId, SimDuration> per_switch_busy;

  // --- queueing delay -------------------------------------------------------
  // Time each issued request spent between becoming ready (dependency-free,
  // eligible for issue) and its first frame going out — the controller-side
  // wait end-to-end makespan hides: a ready request can sit behind its
  // switch's dispatch window long after its dependencies cleared. Summed /
  // maxed over issued requests; mean = total / issued. The intent service's
  // fairness accounting feeds on these.
  SimDuration total_queueing_delay{};
  SimDuration max_queueing_delay{};

  // --- recovery layer ------------------------------------------------------
  /// Request timeouts that fired (a request can time out more than once).
  std::size_t timeouts = 0;
  /// flow_mod re-issues (includes echo-rescue re-issues).
  std::size_t retries = 0;
  /// ECHO_REQUEST liveness probes sent.
  std::size_t echo_probes = 0;
  /// Requests abandoned: switch declared dead, or a predecessor failed, or
  /// retries + rescues exhausted. Every failed request is accounted here —
  /// issued + never-issued alike.
  std::size_t failed_requests = 0;
  /// Requests neither completed nor failed when the event queue drained.
  /// Always zero while the recovery layer is on; can be non-zero only with
  /// request_timeout == 0 under faults.
  std::size_t lost_requests = 0;
  /// Switches that stopped answering ECHO probes.
  std::set<SwitchId> failed_switches;

  // --- fault-injector activity during this execution -----------------------
  // Deltas of each touched switch's FaultStats across the run (all zero when
  // no injector is attached), so crash-recovery behaviour is observable from
  // the report alone. A one-line log::info summary is emitted when any of
  // these advanced.
  std::size_t fault_crashes = 0;
  std::size_t fault_lost_to_crash = 0;
  std::size_t fault_dropped_to_switch = 0;
  std::size_t fault_dropped_to_controller = 0;
  /// Switches whose agent crashed (tables wiped) during this execution.
  std::set<SwitchId> crashed_switches;
};

ExecutionReport execute(net::Network& network, const RequestDag& dag,
                        UpdateScheduler& scheduler,
                        const ExecutorOptions& options = {});

/// Handle on an in-flight asynchronous execution (execute_async): the DAG
/// has been dispatched onto the network's event queue but the *caller* owns
/// the pumping of that queue — which is what lets several executions over
/// disjoint switch sets interleave in virtual time. Poll done() between
/// event-queue steps; call finish() once afterwards to finalize the report.
///
/// Concurrency note: an async execution keeps its per-run progress counters
/// in a private registry and mirrors the final deltas into the network's
/// telemetry registry at finish() — two interleaved runs would otherwise
/// corrupt each other's counter-delta reports. Registry end totals, trace
/// events, and histograms are identical to the synchronous path's.
class AsyncExecution {
 public:
  AsyncExecution() = default;

  /// True once every request reached a terminal state (completed or
  /// failed). Also true for a default-constructed (empty) handle.
  [[nodiscard]] bool done() const;

  /// Finalize the report (makespan, lost requests, fault deltas, telemetry
  /// span) and return it. Idempotent. Calling before done() counts the
  /// still-pending requests as lost — only do that once the event queue has
  /// drained.
  const ExecutionReport& finish();

  /// Kill the execution in place: every still-pending timer, retry and
  /// completion callback becomes a no-op from this instant on. Models the
  /// issuing controller dying mid-commit (UpdateTransaction::abandon());
  /// in-flight frames already on the wire still reach the switches. No-op
  /// on an empty or finished handle.
  void abort();

  [[nodiscard]] bool valid() const { return state_ != nullptr; }

 private:
  friend AsyncExecution execute_async(net::Network& network,
                                      const RequestDag& dag,
                                      UpdateScheduler& scheduler,
                                      const ExecutorOptions& options);
  std::shared_ptr<detail::ExecState> state_;
};

/// Start executing `dag` without pumping the event queue to completion —
/// the building block for dispatching independent updates concurrently.
/// `dag` and `scheduler` must outlive the returned handle's finish().
/// execute() is exactly execute_async + pump-until-done + finish.
AsyncExecution execute_async(net::Network& network, const RequestDag& dag,
                             UpdateScheduler& scheduler,
                             const ExecutorOptions& options = {});

/// Build the flow_mod a request maps to.
of::FlowMod to_flow_mod(const SwitchRequest& request,
                        std::uint16_t default_priority = 0x8000);

}  // namespace tango::sched
