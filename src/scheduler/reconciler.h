// Crash reconciler: converge actual switch tables to a desired image.
//
// After a transaction observes an agent crash (tables wiped) or exhausts the
// executor's retry budget, the controller can no longer trust its model of
// what is installed. The reconciler restores truth the only way that works
// after a reboot: it reads the actual table back over the control channel
// (FLOW_STATS_REQUEST with a full-wildcard filter), diffs it against the
// desired per-switch image, and issues the minimal repair set —
//
//  * a missing or divergent rule (keyed by match+priority; actions or cookie
//    differ) is reinstated with an ADD, which replaces in place;
//  * a stale leftover (present on the switch, absent from the image) is
//    removed with a non-strict DELETE; desired rules the delete's match
//    would also sweep away are re-added behind it (DEL -> ADD dependency).
//
// Repairs attributable to the original transaction's requests (via their
// cookies) inherit the transaction's dependency order through the
// `must_precede` callback, so roll-forward installs in dependency order and
// rollback unwinds in reverse. The readback/diff/repair loop repeats until a
// readback round finds no differences or the round budget is exhausted —
// repairs themselves travel over the same faulty channel and may be lost.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "net/network.h"
#include "scheduler/executor.h"

namespace tango::sched {

/// One installed rule as the controller models it. Identity is
/// (match, priority); actions and cookie are the mutable payload.
struct RuleImage {
  of::Match match;
  std::uint16_t priority = 0;
  of::ActionList actions;
  std::uint64_t cookie = 0;
  bool operator==(const RuleImage&) const = default;
};

/// Whole-table model keyed by rule_key(match, priority). Mirrors the switch
/// semantics the simulator implements: ADD replaces in place at its key,
/// non-strict MODIFY rewrites actions+cookie of every subsumed entry (or
/// acts as ADD when none match), non-strict DELETE erases every subsumed
/// entry regardless of priority.
using TableImage = std::map<std::string, RuleImage>;

/// Canonical identity of a rule slot within a table.
std::string rule_key(const of::Match& match, std::uint16_t priority);

/// Project a readback reply into a table image.
TableImage image_of(const of::FlowStatsReply& reply);

/// Apply one flow_mod to an image, mirroring SimulatedSwitch semantics.
void apply_to_image(TableImage& image, const of::FlowMod& fm);

struct ReconcilerOptions {
  /// Settle time before each readback round. A commit that aborted early
  /// (crash detected, requests failed) can leave duplicated or reordered
  /// frames of the dead attempt still in flight; without letting the queue
  /// drain for a moment, those land AFTER the readback and re-apply a dead
  /// transaction's intent behind the reconciler's back — catastrophic under
  /// rollback, where they reinstate a rule that was just rolled back.
  SimDuration quiesce = millis(5);
  /// Per-attempt timeout for one FLOW_STATS readback.
  SimDuration readback_timeout = millis(200);
  /// Extra attempts after a lost readback before the switch is declared
  /// unreconcilable (this round).
  std::size_t max_readback_retries = 6;
  /// Repair rounds before giving up (each round = readback + diff + exec).
  std::size_t max_rounds = 3;
  /// Executor options for issuing repairs (observers are cleared — journal
  /// bookkeeping belongs to the original commit, not to repairs).
  ExecutorOptions exec;
  /// When non-zero, every repair flow_mod's cookie is re-fenced to this
  /// controller epoch before issue (openflow/epoch.h). A takeover replay
  /// needs this for DELETEs: the stale rules it removes still carry the
  /// deposed primary's epoch, and the freshly fenced switch would refuse a
  /// mutation stamped with it. 0 (default) leaves cookies untouched.
  std::uint32_t repair_epoch = 0;
  /// Rule-space scope: when set, actual-table rules for which this returns
  /// false are invisible to the diff — neither compared nor deleted as
  /// stale. Concurrent transactions (the intent service) scope each
  /// reconciliation to its own footprint so converging one tenant's rules
  /// cannot sweep away a co-resident tenant's. Unset = whole table (the
  /// serial behaviour).
  std::function<bool(SwitchId, const RuleImage&)> scope;
};

struct ReconcileStats {
  /// Repair rounds executed (0 = the first readback already matched).
  std::size_t rounds = 0;
  /// ADD repairs issued (missing or divergent rules reinstated).
  std::size_t repairs_issued = 0;
  /// DELETE repairs issued (stale leftovers removed).
  std::size_t stale_rules_removed = 0;
  std::size_t readback_requests = 0;
  std::size_t readback_lost = 0;
  /// True when the final readback round found every table matching its
  /// desired image.
  bool converged = false;
  /// Switches whose table could not be read back even with retries.
  std::set<SwitchId> unreconciled;
};

class Reconciler {
 public:
  /// Maps a rule back to the original DAG node that authored it (by cookie
  /// or by key); nullopt for rules outside the transaction.
  using Author =
      std::function<std::optional<std::size_t>(SwitchId, const RuleImage&)>;
  /// Ordering oracle over original DAG nodes: true when repairs for `a`
  /// must complete before repairs for `b` may be issued.
  using MustPrecede = std::function<bool(std::size_t a, std::size_t b)>;

  explicit Reconciler(net::Network& network, ReconcilerOptions options = {})
      : network_(network), options_(options) {}

  /// Read back one switch's full table with bounded retries; nullopt when
  /// every attempt was lost. Accounts attempts/losses into `stats`.
  std::optional<TableImage> read_table(SwitchId id, ReconcileStats& stats);

  /// Drive every switch in `desired` to its image. `author`/`must_precede`
  /// are optional; without them repairs are ordered only by the DEL->ADD
  /// collateral constraint.
  ReconcileStats run(const std::map<SwitchId, TableImage>& desired,
                     const Author& author = {},
                     const MustPrecede& must_precede = {});

 private:
  net::Network& network_;
  ReconcilerOptions options_;
};

}  // namespace tango::sched
