#include "scheduler/transaction.h"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "common/logging.h"

namespace tango::sched {

std::string to_string(RecoveryPolicy policy) {
  switch (policy) {
    case RecoveryPolicy::kRollForward: return "roll-forward";
    case RecoveryPolicy::kRollBack: return "roll-back";
  }
  return "?";
}

namespace {

/// An ADD that reinstates `rule` exactly (replaces in place at its key).
of::FlowMod restore(const RuleImage& rule) {
  of::FlowMod fm;
  fm.command = of::FlowModCommand::kAdd;
  fm.match = rule.match;
  fm.priority = rule.priority;
  fm.actions = rule.actions;
  fm.cookie = rule.cookie;
  return fm;
}

/// A strict delete of exactly (match, priority).
of::FlowMod erase_strict(const of::Match& match, std::uint16_t priority) {
  of::FlowMod fm;
  fm.command = of::FlowModCommand::kDeleteStrict;
  fm.match = match;
  fm.priority = priority;
  return fm;
}

}  // namespace

UpdateTransaction::UpdateTransaction(net::Network& network, RequestDag dag,
                                     TransactionOptions options)
    : network_(network), dag_(std::move(dag)), options_(std::move(options)) {
  const SimTime phase_begin = network_.now();
  // Fallback id draw for callers that don't pin one (examples, ad-hoc
  // tests). Atomic because parallel seed-sweep workers may construct
  // transactions concurrently; every determinism-sensitive path (chaos,
  // HA, service) pins options_.txn_id and never touches this counter.
  static std::atomic<std::uint32_t> next_txn_id{1};
  txn_id_ = options_.txn_id != 0
                ? options_.txn_id
                : next_txn_id.fetch_add(1, std::memory_order_relaxed);
  report_.txn_id = txn_id_;
  report_.policy = options_.policy;

  for (std::size_t i = 0; i < dag_.size(); ++i) {
    dag_.request(i).cookie = cookie_of(i);
  }

  std::set<SwitchId> affected;
  for (std::size_t i = 0; i < dag_.size(); ++i) {
    affected.insert(dag_.request(i).location);
  }

  if (options_.scope_to_footprint) {
    for (std::size_t i = 0; i < dag_.size(); ++i) {
      const SwitchRequest& req = dag_.request(i);
      footprint_[req.location].push_back(req.match);
    }
  }

  // --- pre-update snapshot ------------------------------------------------
  ReconcilerOptions ropts;
  ropts.readback_timeout = options_.readback_timeout;
  ropts.max_readback_retries = options_.max_readback_retries;
  Reconciler reader(network_, ropts);
  ReconcileStats snap;
  for (const SwitchId sw : affected) {
    auto image = reader.read_table(sw, snap);
    if (image.has_value() && options_.scope_to_footprint) {
      // The world-view stops at our footprint: co-resident rules (another
      // tenant's mid-commit state, unrelated background entries) must not
      // enter the pre/post images, or a rollback would "restore" a torn
      // snapshot of rules this transaction never owned.
      for (auto it = image->begin(); it != image->end();) {
        if (in_scope(sw, it->second)) {
          ++it;
        } else {
          it = image->erase(it);
        }
      }
    }
    if (!image.has_value()) {
      // No baseline: rollback and inverse computation for this switch treat
      // the table as empty; flagged so the caller can tell.
      report_.unreconciled.insert(sw);
      log::warn("transaction " + std::to_string(txn_id_) +
                ": pre-update snapshot of switch " + std::to_string(sw) +
                " lost; treating table as empty");
    }
    pre_[sw] = image.value_or(TableImage{});
  }
  report_.readback_requests += snap.readback_requests;
  report_.readback_lost += snap.readback_lost;

  // --- journal + post image, in DAG topological order ----------------------
  post_ = pre_;
  const auto level = dag_.levels();
  std::vector<std::size_t> order(dag_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return level[a] < level[b];
                   });

  for (const std::size_t id : order) {
    const SwitchRequest& req = dag_.request(id);
    const of::FlowMod fm = to_flow_mod(req, options_.exec.default_priority);
    TableImage& image = post_[req.location];
    const TableImage& pre = pre_[req.location];
    auto& touched = touched_[req.location];
    auto& writers = writers_[req.location];

    JournalEntry entry;
    entry.dag_id = id;
    entry.location = req.location;
    entry.intent = fm;

    const std::string key = rule_key(fm.match, fm.priority);
    switch (fm.command) {
      case of::FlowModCommand::kAdd: {
        const auto prev = image.find(key);
        if (prev != image.end()) {
          entry.inverse.push_back(restore(prev->second));
        } else {
          entry.inverse.push_back(erase_strict(fm.match, fm.priority));
        }
        if (pre.count(key) != 0) touched.emplace(key, id);
        writers[key] = id;
        break;
      }
      case of::FlowModCommand::kModify:
      case of::FlowModCommand::kModifyStrict: {
        std::size_t hits = 0;
        for (const auto& [k, rule] : image) {
          if (!fm.match.subsumes(rule.match)) continue;
          entry.inverse.push_back(restore(rule));
          if (pre.count(k) != 0) touched.emplace(k, id);
          writers[k] = id;
          ++hits;
        }
        if (hits == 0) {
          // The modify will act as an ADD of a fresh entry.
          entry.inverse.push_back(erase_strict(fm.match, fm.priority));
          writers[key] = id;
        }
        break;
      }
      case of::FlowModCommand::kDelete:
      case of::FlowModCommand::kDeleteStrict: {
        for (const auto& [k, rule] : image) {
          if (!fm.match.subsumes(rule.match)) continue;
          entry.inverse.push_back(restore(rule));
          if (pre.count(k) != 0) touched.emplace(k, id);
        }
        break;
      }
    }
    apply_to_image(image, fm);
    journal_of_dag_[id] = journal_.size();
    journal_.push_back(std::move(entry));
  }

  // --- crash-epoch baseline ------------------------------------------------
  for (const SwitchId sw : affected) {
    const auto* injector = network_.fault_injector(sw);
    crashes_at_begin_[sw] = injector ? injector->stats().crashes : 0;
  }

  if (auto* t = network_.telemetry()) {
    t->trace.span("txn", "journal",
                  telemetry::TraceCollector::kControllerLane, phase_begin,
                  network_.now(),
                  {telemetry::arg("txn", std::uint64_t{txn_id_}),
                   telemetry::arg("entries", std::uint64_t{journal_.size()}),
                   telemetry::arg("switches", std::uint64_t{affected.size()})});
    t->metrics.counter("txn.journaled_entries").inc(journal_.size());
  }

  // WAL discipline: the standby holds the full intent journal before the
  // first frame hits the wire.
  if (options_.journal_sink != nullptr) options_.journal_sink->on_txn_begin(*this);
}

const TransactionReport& UpdateTransaction::commit(UpdateScheduler& scheduler) {
  start_commit(scheduler);
  while (!exec_done() && network_.events().step()) {
  }
  return finish_commit();
}

void UpdateTransaction::start_commit(UpdateScheduler& scheduler) {
  assert(!commit_started_);
  commit_started_ = true;
  commit_begin_ = network_.now();
  ExecutorOptions exec = options_.exec;
  exec.on_complete = [this](std::size_t id, bool accepted) {
    const auto it = journal_of_dag_.find(id);
    if (it == journal_of_dag_.end()) return;
    journal_[it->second].state =
        accepted ? JournalEntry::State::kAcked : JournalEntry::State::kFailed;
    if (options_.journal_sink != nullptr) {
      options_.journal_sink->on_entry_acked(*this, id, accepted);
    }
  };
  exec.on_failed = [this](std::size_t id) {
    const auto it = journal_of_dag_.find(id);
    if (it == journal_of_dag_.end()) return;
    journal_[it->second].state = JournalEntry::State::kFailed;
    if (options_.journal_sink != nullptr) {
      options_.journal_sink->on_entry_acked(*this, id, /*accepted=*/false);
    }
  };
  // A *listener*, not the single handler slot: concurrent transactions each
  // watch for crashes on their own footprint without clobbering each other
  // (or a handler the harness installed).
  crash_token_ = network_.add_crash_listener([this](SwitchId id) {
    if (pre_.count(id) != 0) report_.crashed_switches.insert(id);
  });
  async_ = execute_async(network_, dag_, scheduler, exec);
}

bool UpdateTransaction::exec_done() const { return async_.done(); }

const TransactionReport& UpdateTransaction::finish_commit() {
  assert(commit_started_);
  auto* tele = network_.telemetry();
  /// One "commit" span per call, recorded at whichever exit is taken;
  /// nested under it are the executor's own "execute" span and, on the
  /// recovery path, the "reconcile" span.
  auto close_commit_span = [&] {
    if (tele == nullptr) return;
    tele->trace.span("txn", "commit",
                     telemetry::TraceCollector::kControllerLane, commit_begin_,
                     network_.now(),
                     {telemetry::arg("txn", std::uint64_t{txn_id_}),
                      telemetry::arg("committed", report_.committed),
                      telemetry::arg("reconciled", report_.reconciled)});
    tele->metrics.counter("txn.commits").inc();
    if (!report_.committed) tele->metrics.counter("txn.failed_commits").inc();
  };
  report_.exec = async_.valid() ? async_.finish() : ExecutionReport{};
  network_.remove_crash_listener(crash_token_);
  crash_token_ = 0;

  for (const SwitchId sw : report_.exec.crashed_switches) {
    if (pre_.count(sw) != 0) report_.crashed_switches.insert(sw);
  }
  // Belt and braces: counters catch a crash the notification hook missed.
  for (const auto& [sw, baseline] : crashes_at_begin_) {
    const auto* injector = network_.fault_injector(sw);
    if (injector != nullptr && injector->stats().crashes > baseline) {
      report_.crashed_switches.insert(sw);
    }
  }

  const bool needs_reconcile =
      !report_.crashed_switches.empty() || report_.exec.failed_requests > 0 ||
      (options_.policy == RecoveryPolicy::kRollBack &&
       report_.exec.rejected > 0);
  if (!needs_reconcile) {
    // Fault-free fast path: the journal stays as evidence, nothing extra
    // touches the network — unless readback verification was requested for
    // quarantined switches, which is exactly the case where "nothing
    // failed" cannot be taken at the switch's word.
    report_.committed = report_.unreconciled.empty();
    if (!options_.readback_verify.empty()) {
      verify_readback(post_, /*forward=*/true);
    }
    close_commit_span();
    if (options_.journal_sink != nullptr) {
      options_.journal_sink->on_txn_finish(*this, report_);
    }
    if (options_.on_report) options_.on_report(report_);
    return report_;
  }

  log::info("transaction " + std::to_string(txn_id_) + ": " +
            std::to_string(report_.crashed_switches.size()) +
            " crashed switch(es), " +
            std::to_string(report_.exec.failed_requests) +
            " failed request(s) -> reconciling (" +
            to_string(options_.policy) + ")");
  reconcile();
  if (!options_.readback_verify.empty()) {
    // The reconciler trusts its own readbacks, but a quarantined switch can
    // lie to it once (a stale-stats budget) and get marked converged while
    // the real table still diverges. Re-verify against the image this
    // policy was supposed to converge to — the re-read drains any remaining
    // lie budget or sees the truth, and repairs what it finds.
    const bool forward = options_.policy == RecoveryPolicy::kRollForward;
    verify_readback(forward ? post_ : pre_, forward);
  }
  close_commit_span();
  if (options_.journal_sink != nullptr) {
    options_.journal_sink->on_txn_finish(*this, report_);
  }
  if (options_.on_report) options_.on_report(report_);
  return report_;
}

void UpdateTransaction::abandon() {
  if (!commit_started_) return;
  if (crash_token_ != 0) {
    network_.remove_crash_listener(crash_token_);
    crash_token_ = 0;
  }
  async_.abort();
}

void UpdateTransaction::verify_readback(
    const std::map<SwitchId, TableImage>& want_images, bool forward) {
  const SimTime phase_begin = network_.now();
  ReconcilerOptions ropts;
  ropts.readback_timeout = options_.readback_timeout;
  ropts.max_readback_retries = options_.max_readback_retries;
  ropts.scope = scope_predicate();
  Reconciler reader(network_, ropts);
  ReconcileStats snap;
  std::map<SwitchId, TableImage> repair;
  for (const SwitchId sw : options_.readback_verify) {
    const auto want = want_images.find(sw);
    if (want == want_images.end()) continue;  // transaction didn't touch it
    auto actual = reader.read_table(sw, snap);
    if (!actual.has_value()) {
      report_.unreconciled.insert(sw);
      report_.committed = false;
      continue;
    }
    std::size_t mismatches = 0;
    for (const auto& [key, rule] : want->second) {
      const auto hit = actual->find(key);
      if (hit == actual->end() || !(hit->second == rule)) ++mismatches;
    }
    for (const auto& [key, rule] : *actual) {
      if (options_.scope_to_footprint && !in_scope(sw, rule)) continue;
      if (want->second.count(key) == 0) ++mismatches;
    }
    if (mismatches > 0) {
      report_.readback_mismatches[sw] = mismatches;
      repair[sw] = want->second;
      log::warn("transaction " + std::to_string(txn_id_) + ": switch " +
                std::to_string(sw) + " diverged from " +
                (forward ? "post" : "pre") + " image (" +
                std::to_string(mismatches) +
                " rule(s)) despite acknowledging every request");
    }
  }
  report_.readback_requests += snap.readback_requests;
  report_.readback_lost += snap.readback_lost;

  if (!repair.empty()) {
    // The switch lied (e.g. silent install drops): converge it to the post
    // image with the same attribution/order machinery a crash would use.
    report_.reconciled = true;
    Reconciler::Author author = [this, forward](SwitchId sw,
                                                const RuleImage& rule)
        -> std::optional<std::size_t> {
      if (txn_of_cookie(rule.cookie) == txn_key()) {
        const auto id =
            static_cast<std::size_t>(static_cast<std::uint32_t>(rule.cookie));
        if (id < dag_.size()) return id;
      }
      const std::string key = rule_key(rule.match, rule.priority);
      const auto& attribution = forward ? writers_ : touched_;
      const auto per_switch = attribution.find(sw);
      if (per_switch != attribution.end()) {
        const auto hit = per_switch->second.find(key);
        if (hit != per_switch->second.end()) return hit->second;
      }
      return std::nullopt;
    };
    Reconciler::MustPrecede precede = [this, forward](std::size_t a,
                                                      std::size_t b) {
      return forward ? reaches(a, b) : reaches(b, a);
    };
    ReconcilerOptions fix = ropts;
    fix.max_rounds = options_.max_reconcile_rounds;
    fix.exec = options_.exec;
    Reconciler reconciler(network_, fix);
    const ReconcileStats stats = reconciler.run(repair, author, precede);
    report_.reconcile_rounds += stats.rounds;
    report_.repairs_issued += stats.repairs_issued;
    report_.stale_rules_removed += stats.stale_rules_removed;
    report_.readback_requests += stats.readback_requests;
    report_.readback_lost += stats.readback_lost;
    for (const SwitchId sw : stats.unreconciled) report_.unreconciled.insert(sw);
    report_.committed = report_.unreconciled.empty() && stats.converged;
  }

  if (auto* t = network_.telemetry()) {
    std::size_t total = 0;
    for (const auto& [sw, n] : report_.readback_mismatches) total += n;
    t->trace.span("txn", "readback_verify",
                  telemetry::TraceCollector::kControllerLane, phase_begin,
                  network_.now(),
                  {telemetry::arg("txn", std::uint64_t{txn_id_}),
                   telemetry::arg("switches",
                                  std::uint64_t{options_.readback_verify.size()}),
                   telemetry::arg("mismatches", std::uint64_t{total})});
    t->metrics.counter("txn.readback_verified_commits").inc();
    t->metrics.counter("txn.readback_verify_mismatches").inc(total);
  }
}

void UpdateTransaction::reconcile() {
  const SimTime phase_begin = network_.now();
  report_.reconciled = true;
  const bool forward = options_.policy == RecoveryPolicy::kRollForward;
  report_.rolled_back = !forward;
  const auto& desired = forward ? post_ : pre_;

  Reconciler::Author author = [this, forward](
                                  SwitchId sw,
                                  const RuleImage& rule) -> std::optional<std::size_t> {
    // Rules carrying this transaction's cookie map straight to their node.
    if (txn_of_cookie(rule.cookie) == txn_key()) {
      const auto id = static_cast<std::size_t>(
          static_cast<std::uint32_t>(rule.cookie));
      if (id < dag_.size()) return id;
    }
    const std::string key = rule_key(rule.match, rule.priority);
    const auto& attribution = forward ? writers_ : touched_;
    const auto per_switch = attribution.find(sw);
    if (per_switch != attribution.end()) {
      const auto hit = per_switch->second.find(key);
      if (hit != per_switch->second.end()) return hit->second;
    }
    return std::nullopt;
  };
  Reconciler::MustPrecede precede = [this, forward](std::size_t a,
                                                    std::size_t b) {
    // Roll-forward re-installs in dependency order; rollback unwinds in
    // reverse.
    return forward ? reaches(a, b) : reaches(b, a);
  };

  ReconcilerOptions ropts;
  ropts.readback_timeout = options_.readback_timeout;
  ropts.max_readback_retries = options_.max_readback_retries;
  ropts.max_rounds = options_.max_reconcile_rounds;
  ropts.exec = options_.exec;
  ropts.scope = scope_predicate();
  Reconciler reconciler(network_, ropts);
  const ReconcileStats stats = reconciler.run(desired, author, precede);

  report_.reconcile_rounds = stats.rounds;
  report_.repairs_issued = stats.repairs_issued;
  report_.stale_rules_removed = stats.stale_rules_removed;
  report_.readback_requests += stats.readback_requests;
  report_.readback_lost += stats.readback_lost;
  report_.unreconciled = stats.unreconciled;
  report_.committed = stats.converged;

  if (auto* t = network_.telemetry()) {
    t->trace.span("txn", "reconcile",
                  telemetry::TraceCollector::kControllerLane, phase_begin,
                  network_.now(),
                  {telemetry::arg("txn", std::uint64_t{txn_id_}),
                   telemetry::arg("rounds", std::uint64_t{stats.rounds}),
                   telemetry::arg("repairs", std::uint64_t{stats.repairs_issued}),
                   telemetry::arg("converged", stats.converged)});
    t->metrics.counter("txn.reconciliations").inc();
    t->metrics.counter("txn.repairs_issued").inc(stats.repairs_issued);
    t->metrics.counter("txn.stale_rules_removed")
        .inc(stats.stale_rules_removed);
    t->metrics.counter("txn.readback_requests").inc(stats.readback_requests);
    t->metrics.counter("txn.readback_lost").inc(stats.readback_lost);
  }
}

const VerifierReport& UpdateTransaction::verify(
    const std::vector<FlowCheck>& flows) {
  const SimTime phase_begin = network_.now();
  ConsistencyVerifier verifier(network_);
  report_.verify = verifier.verify(flows);
  if (auto* t = network_.telemetry()) {
    t->trace.span("txn", "verify",
                  telemetry::TraceCollector::kControllerLane, phase_begin,
                  network_.now(),
                  {telemetry::arg("txn", std::uint64_t{txn_id_}),
                   telemetry::arg("flows", std::uint64_t{flows.size()}),
                   telemetry::arg("violations",
                                  std::uint64_t{report_.verify.violations.size()})});
    t->metrics.counter("txn.verified_flows").inc(flows.size());
    t->metrics.counter("txn.verify_violations")
        .inc(report_.verify.violations.size());
  }
  return report_.verify;
}

bool UpdateTransaction::reaches(std::size_t a, std::size_t b) {
  if (a == b) return false;
  if (reach_.empty()) {
    const std::size_t n = dag_.size();
    const std::size_t words = (n + 63) / 64;
    reach_.assign(n, std::vector<std::uint64_t>(words, 0));
    // Deepest-first: every successor's row is final before it is merged.
    const auto level = dag_.levels();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t x, std::size_t y) {
                       return level[x] > level[y];
                     });
    for (const std::size_t u : order) {
      for (const std::size_t v : dag_.successors(u)) {
        reach_[u][v / 64] |= std::uint64_t{1} << (v % 64);
        for (std::size_t w = 0; w < words; ++w) reach_[u][w] |= reach_[v][w];
      }
    }
  }
  return ((reach_[a][b / 64] >> (b % 64)) & 1) != 0;
}

bool UpdateTransaction::in_scope(SwitchId sw, const RuleImage& rule) const {
  if (txn_of_cookie(rule.cookie) == txn_key()) return true;
  const auto it = footprint_.find(sw);
  if (it == footprint_.end()) return false;
  for (const of::Match& mine : it->second) {
    if (mine.overlaps(rule.match)) return true;
  }
  return false;
}

std::function<bool(SwitchId, const RuleImage&)>
UpdateTransaction::scope_predicate() const {
  if (!options_.scope_to_footprint) return {};
  return [this](SwitchId sw, const RuleImage& rule) {
    return in_scope(sw, rule);
  };
}

}  // namespace tango::sched
