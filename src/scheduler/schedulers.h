// Update schedulers: the Dionysus-style critical-path baseline and the
// Basic Tango Scheduler (paper Algorithm 3) with its extensions.
//
// Both operate round-by-round: the executor presents the set of currently
// ready (dependency-free) requests; the scheduler returns them in issue
// order. Per-switch command queues are FIFO, so issue order *is* execution
// order on each switch.
//
// The Tango scheduler's orderingTangoOracle scores candidate rewrite
// patterns — permutations of {DEL, MOD, ADD} with an add-priority ordering —
// using the per-op costs measured by the latency profiler, and issues the
// ready set in the best pattern's order. With priority enforcement enabled
// it additionally overwrites application-unspecified priorities with
// DAG-level-derived ones so that adds become same-priority appends.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "scheduler/request.h"
#include "tango/latency_profiler.h"

namespace tango::sched {

class UpdateScheduler {
 public:
  virtual ~UpdateScheduler() = default;

  /// Order the ready set for issue. Called once per scheduling round.
  virtual std::vector<std::size_t> order(const RequestDag& dag,
                                         std::vector<std::size_t> ready) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Dionysus: schedule the independent request on the longest remaining
/// dependency path first; oblivious to op-type and priority diversity.
class DionysusScheduler : public UpdateScheduler {
 public:
  std::vector<std::size_t> order(const RequestDag& dag,
                                 std::vector<std::size_t> ready) override;
  [[nodiscard]] std::string name() const override { return "Dionysus"; }
};

struct TangoSchedulerOptions {
  /// Group ready requests by op type per the best-scoring pattern.
  bool reorder_types = true;
  /// Sort the ADD group by ascending priority when the target switch is
  /// measured to be priority-sensitive.
  bool sort_priorities = true;
  /// Evaluate issuing a prefix of the batch first (non-greedy batching
  /// extension): prefixes that unlock cheaper successors can win.
  bool prefix_lookahead = false;
  /// Hoist requests that carry install_by deadlines to the front of the
  /// batch (earliest-deadline-first among themselves). Trades some pattern
  /// efficiency for deadline compliance.
  bool deadline_first = false;
};

/// One candidate rewrite pattern: an op-type permutation plus add ordering.
struct OrderingPattern {
  std::string name;
  RequestType sequence[3];
  bool adds_ascending = true;
};

class BasicTangoScheduler : public UpdateScheduler {
 public:
  BasicTangoScheduler(std::map<SwitchId, core::OpCostEstimate> costs,
                      TangoSchedulerOptions options = {});

  std::vector<std::size_t> order(const RequestDag& dag,
                                 std::vector<std::size_t> ready) override;
  [[nodiscard]] std::string name() const override { return "Tango"; }

  /// Estimated makespan (max over switches of serial cost) of issuing the
  /// given requests in order. Exposed for the lookahead extension & tests.
  [[nodiscard]] double estimate_makespan_ms(const RequestDag& dag,
                                            const std::vector<std::size_t>& order) const;

  /// computePatternScore (Algorithm 3): higher is better.
  [[nodiscard]] double pattern_score(const RequestDag& dag,
                                     const std::vector<std::size_t>& ready,
                                     const OrderingPattern& pattern) const;

  /// Overwrite unspecified priorities from DAG levels: requests at the same
  /// level share one priority, deeper (must-install-first) levels get
  /// higher values, so per-level installation is same-priority appends in
  /// ascending order ("priority enforcement", §7.2).
  static std::size_t enforce_priorities(RequestDag& dag,
                                        std::uint16_t base_priority = 1000,
                                        std::uint16_t step = 10);

  [[nodiscard]] const std::vector<OrderingPattern>& patterns() const {
    return patterns_;
  }

 private:
  [[nodiscard]] double op_cost_ms(SwitchId sw, RequestType type,
                                  bool adds_ascending) const;
  std::vector<std::size_t> apply_pattern(const RequestDag& dag,
                                         std::vector<std::size_t> ready,
                                         const OrderingPattern& pattern) const;

  std::map<SwitchId, core::OpCostEstimate> costs_;
  TangoSchedulerOptions options_;
  std::vector<OrderingPattern> patterns_;
};

}  // namespace tango::sched
