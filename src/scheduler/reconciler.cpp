#include "scheduler/reconciler.h"

#include <vector>

#include "common/logging.h"
#include "openflow/epoch.h"
#include "scheduler/schedulers.h"

namespace tango::sched {

std::string rule_key(const of::Match& match, std::uint16_t priority) {
  return match.to_string() + "/" + std::to_string(priority);
}

TableImage image_of(const of::FlowStatsReply& reply) {
  TableImage image;
  for (const auto& e : reply.entries) {
    image[rule_key(e.match, e.priority)] =
        RuleImage{e.match, e.priority, e.actions, e.cookie};
  }
  return image;
}

void apply_to_image(TableImage& image, const of::FlowMod& fm) {
  switch (fm.command) {
    case of::FlowModCommand::kAdd:
      image[rule_key(fm.match, fm.priority)] =
          RuleImage{fm.match, fm.priority, fm.actions, fm.cookie};
      return;
    case of::FlowModCommand::kModify:
    case of::FlowModCommand::kModifyStrict: {
      std::size_t updated = 0;
      for (auto& [key, rule] : image) {
        const bool hit = fm.command == of::FlowModCommand::kModifyStrict
                             ? rule.match == fm.match && rule.priority == fm.priority
                             : fm.match.subsumes(rule.match);
        if (!hit) continue;
        rule.actions = fm.actions;
        rule.cookie = fm.cookie;
        ++updated;
      }
      if (updated == 0) {
        // Per OpenFlow 1.0, MODIFY with no matching entry behaves like ADD.
        image[rule_key(fm.match, fm.priority)] =
            RuleImage{fm.match, fm.priority, fm.actions, fm.cookie};
      }
      return;
    }
    case of::FlowModCommand::kDelete:
      for (auto it = image.begin(); it != image.end();) {
        if (fm.match.subsumes(it->second.match)) {
          it = image.erase(it);
        } else {
          ++it;
        }
      }
      return;
    case of::FlowModCommand::kDeleteStrict:
      image.erase(rule_key(fm.match, fm.priority));
      return;
  }
}

std::optional<TableImage> Reconciler::read_table(SwitchId id,
                                                ReconcileStats& stats) {
  for (std::size_t attempt = 0; attempt <= options_.max_readback_retries;
       ++attempt) {
    ++stats.readback_requests;
    auto reply =
        network_.try_flow_stats(id, of::Match::any(), options_.readback_timeout);
    if (reply.has_value()) return image_of(*reply);
    ++stats.readback_lost;
  }
  log::warn("reconciler: switch " + std::to_string(id) +
            " table unreadable after " +
            std::to_string(options_.max_readback_retries + 1) + " attempts");
  return std::nullopt;
}

ReconcileStats Reconciler::run(const std::map<SwitchId, TableImage>& desired,
                               const Author& author,
                               const MustPrecede& must_precede) {
  ReconcileStats stats;

  struct Repair {
    SwitchId sw = 0;
    RequestType type = RequestType::kAdd;
    RuleImage rule;
    std::optional<std::size_t> author;
  };

  for (;;) {
    // --- quiesce: let in-flight frames of the aborted commit land ---------
    if (options_.quiesce.ns() > 0) {
      network_.events().run_until(network_.now() + options_.quiesce);
    }

    // --- readback + diff --------------------------------------------------
    std::vector<Repair> repairs;
    std::set<SwitchId> unread;
    for (const auto& [sw, want] : desired) {
      const auto actual = read_table(sw, stats);
      if (!actual.has_value()) {
        unread.insert(sw);
        continue;
      }
      for (const auto& [key, rule] : want) {
        const auto it = actual->find(key);
        if (it == actual->end() || !(it->second == rule)) {
          repairs.push_back(
              {sw, RequestType::kAdd, rule,
               author ? author(sw, rule) : std::nullopt});
        }
      }
      for (const auto& [key, rule] : *actual) {
        if (options_.scope && !options_.scope(sw, rule)) continue;
        if (want.find(key) == want.end()) {
          repairs.push_back(
              {sw, RequestType::kDel, rule,
               author ? author(sw, rule) : std::nullopt});
        }
      }
    }
    stats.unreconciled = std::move(unread);
    if (repairs.empty()) {
      stats.converged = stats.unreconciled.empty();
      return stats;
    }
    if (stats.rounds >= options_.max_rounds) {
      log::warn("reconciler: round budget exhausted with " +
                std::to_string(repairs.size()) + " repairs outstanding");
      return stats;
    }
    ++stats.rounds;

    // --- collateral: a non-strict DELETE also sweeps desired rules its
    // match subsumes; re-add them behind it. --------------------------------
    const std::size_t direct = repairs.size();
    for (std::size_t i = 0; i < direct; ++i) {
      if (repairs[i].type != RequestType::kDel) continue;
      const auto& want = desired.at(repairs[i].sw);
      for (const auto& [key, rule] : want) {
        if (!repairs[i].rule.match.subsumes(rule.match)) continue;
        bool present = false;
        for (const auto& r : repairs) {
          if (r.sw == repairs[i].sw && r.type == RequestType::kAdd &&
              rule_key(r.rule.match, r.rule.priority) == key) {
            present = true;
            break;
          }
        }
        if (!present) {
          repairs.push_back({repairs[i].sw, RequestType::kAdd, rule,
                             author ? author(repairs[i].sw, rule)
                                    : std::nullopt});
        }
      }
    }

    // --- build the repair DAG ---------------------------------------------
    RequestDag rdag;
    for (const auto& r : repairs) {
      SwitchRequest req;
      req.location = r.sw;
      req.type = r.type;
      req.priority = r.rule.priority;
      req.match = r.rule.match;
      req.actions = r.rule.actions;
      req.cookie = options_.repair_epoch != 0
                       ? of::refence_cookie(r.rule.cookie, options_.repair_epoch)
                       : r.rule.cookie;
      rdag.add(std::move(req));
      if (r.type == RequestType::kAdd) {
        ++stats.repairs_issued;
      } else {
        ++stats.stale_rules_removed;
      }
    }
    for (std::size_t i = 0; i < repairs.size(); ++i) {
      if (repairs[i].type != RequestType::kDel) continue;
      for (std::size_t j = 0; j < repairs.size(); ++j) {
        if (repairs[j].type != RequestType::kAdd ||
            repairs[j].sw != repairs[i].sw) {
          continue;
        }
        if (repairs[i].rule.match.subsumes(repairs[j].rule.match)) {
          rdag.add_dependency(i, j);
        }
      }
    }
    if (must_precede) {
      for (std::size_t i = 0; i < repairs.size(); ++i) {
        if (!repairs[i].author.has_value()) continue;
        for (std::size_t j = 0; j < repairs.size(); ++j) {
          if (i == j || !repairs[j].author.has_value()) continue;
          if (must_precede(*repairs[i].author, *repairs[j].author)) {
            rdag.add_dependency(i, j);
          }
        }
      }
    }

    // --- issue the repairs -------------------------------------------------
    log::info("reconciler: round " + std::to_string(stats.rounds) + ", " +
              std::to_string(repairs.size()) + " repairs across " +
              std::to_string(desired.size()) + " switches");
    DionysusScheduler scheduler;
    ExecutorOptions exec = options_.exec;
    exec.on_complete = nullptr;  // journal bookkeeping is the commit's, not ours
    exec.on_failed = nullptr;
    execute(network_, rdag, scheduler, exec);
    // Loop: the next readback round verifies the repairs landed.
  }
}

}  // namespace tango::sched
