// Post-commit consistency verifier for transactional updates.
//
// After a transaction commits (and possibly reconciles), the verifier walks
// each affected flow through the simulated network: starting at its ingress
// switch it resolves the highest-priority matching rule, follows the output
// action across the topology, and repeats until the packet leaves the
// network. Three invariants are checked along the way:
//
//  * no black hole — every hop has a matching rule that forwards out of an
//    up port (a punt to the controller via the default route counts as a
//    black hole for an installed flow);
//  * no forwarding loop — no switch is visited twice (bounded by max_hops
//    as a backstop for port-aliasing topologies);
//  * no shadowing — where the caller names the cookie a switch is supposed
//    to match with (the transaction's rule), a higher-priority leftover
//    with a different cookie matching first is reported.
//
// The walk reads table state through SimulatedSwitch::flow_stats() — the
// same projection the OpenFlow readback returns — without touching the
// data plane, so verification has no side effects (no microflow-cache
// warming, no counter changes) and perturbs neither channels nor timing.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/network.h"
#include "openflow/match.h"
#include "openflow/packet.h"

namespace tango::sched {

/// One flow to walk through the network.
struct FlowCheck {
  SwitchId ingress = 0;
  of::PacketHeader packet;
  /// The walk must end at this switch (0 = anywhere is fine). Reaching it
  /// counts as delivery even without a matching rule there — path
  /// installers stop one hop short of the destination — and leaving the
  /// network through a host-facing port anywhere else is a wrong-egress
  /// violation.
  SwitchId expected_egress = 0;
  /// Per-switch cookie the matched rule must carry there; a mismatch where
  /// a rule with the expected cookie also matches is a shadowing violation.
  std::map<SwitchId, std::uint64_t> expected_cookies;
};

struct VerifierViolation {
  enum class Kind { kBlackHole, kLoop, kShadowed, kWrongEgress };
  Kind kind = Kind::kBlackHole;
  /// Index into the FlowCheck list handed to verify().
  std::size_t flow = 0;
  SwitchId at = 0;
  std::string detail;
};

std::string to_string(VerifierViolation::Kind kind);

struct VerifierReport {
  std::size_t flows_checked = 0;
  std::size_t black_holes = 0;
  std::size_t loops = 0;
  std::size_t shadowed = 0;
  std::size_t wrong_egress = 0;
  std::vector<VerifierViolation> violations;

  [[nodiscard]] bool clean() const { return violations.empty(); }
};

struct VerifierOptions {
  /// Backstop against port-aliasing topologies where the visited-set loop
  /// check cannot fire first.
  std::size_t max_hops = 64;
};

class ConsistencyVerifier {
 public:
  explicit ConsistencyVerifier(net::Network& network,
                               VerifierOptions options = {})
      : network_(network), options_(options) {}

  VerifierReport verify(const std::vector<FlowCheck>& flows);

 private:
  void walk(const FlowCheck& flow, std::size_t index, VerifierReport& report);

  net::Network& network_;
  VerifierOptions options_;
};

}  // namespace tango::sched
