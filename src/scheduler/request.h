// Switch-request DAG (paper §6).
//
// A switch request is one rule operation at one switch (the paper's
// req_elem: location, type, priority, rule parameters, install_by). Edges
// encode "must complete before" constraints (consistent-update ordering,
// priority-barrier ordering); the graph must be acyclic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "openflow/messages.h"

namespace tango::sched {

enum class RequestType { kAdd, kMod, kDel };

std::string to_string(RequestType t);

of::FlowModCommand to_command(RequestType t);

struct SwitchRequest {
  SwitchId location = 0;
  RequestType type = RequestType::kAdd;
  /// Empty when the application leaves priority assignment to Tango
  /// ("priority enforcement", §7.2).
  std::optional<std::uint16_t> priority;
  of::Match match;
  of::ActionList actions;
  /// install_by deadline (best effort when empty).
  std::optional<SimDuration> deadline;
  /// Cookie stamped on the emitted flow_mod. The transaction layer uses it
  /// for durable rule identity (txn id in the top 32 bits) so a re-issue
  /// after a crash is idempotent and stale leftovers are attributable.
  std::optional<std::uint64_t> cookie;
};

class RequestDag {
 public:
  /// Add a request; returns its node id.
  std::size_t add(SwitchRequest request);

  /// `before` must complete before `after` may be issued.
  void add_dependency(std::size_t before, std::size_t after);

  [[nodiscard]] std::size_t size() const { return requests_.size(); }
  [[nodiscard]] const SwitchRequest& request(std::size_t id) const {
    return requests_[id];
  }
  [[nodiscard]] SwitchRequest& request(std::size_t id) { return requests_[id]; }
  [[nodiscard]] const std::vector<std::size_t>& successors(std::size_t id) const {
    return succs_[id];
  }
  [[nodiscard]] const std::vector<std::size_t>& predecessors(std::size_t id) const {
    return preds_[id];
  }

  /// Longest path (in nodes) from `id` downward — Dionysus's critical-path
  /// metric. Cached; invalidated on mutation.
  [[nodiscard]] std::size_t downstream_depth(std::size_t id) const;

  /// Number of levels in the DAG (longest chain).
  [[nodiscard]] std::size_t depth() const;

  /// Level of each node = longest chain of predecessors above it (0-based).
  [[nodiscard]] std::vector<std::size_t> levels() const;

  /// True if the graph has no cycles (sanity check for scenario builders).
  [[nodiscard]] bool is_acyclic() const;

  /// Ids with no predecessors.
  [[nodiscard]] std::vector<std::size_t> roots() const;

 private:
  std::vector<SwitchRequest> requests_;
  std::vector<std::vector<std::size_t>> succs_;
  std::vector<std::vector<std::size_t>> preds_;
  mutable std::vector<std::size_t> depth_cache_;
  mutable bool depth_cache_valid_ = false;
};

}  // namespace tango::sched
