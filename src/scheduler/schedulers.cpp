#include "scheduler/schedulers.h"

#include <algorithm>
#include <cassert>

namespace tango::sched {

std::vector<std::size_t> DionysusScheduler::order(const RequestDag& dag,
                                                  std::vector<std::size_t> ready) {
  std::stable_sort(ready.begin(), ready.end(),
                   [&](std::size_t a, std::size_t b) {
                     return dag.downstream_depth(a) > dag.downstream_depth(b);
                   });
  return ready;
}

BasicTangoScheduler::BasicTangoScheduler(
    std::map<SwitchId, core::OpCostEstimate> costs, TangoSchedulerOptions options)
    : costs_(std::move(costs)), options_(options) {
  using RT = RequestType;
  // The candidate rewrite patterns from the TangoPatterns table of
  // Algorithm 3, extended with the remaining type permutations.
  patterns_ = {
      {"DEL MOD ASCEND_ADD", {RT::kDel, RT::kMod, RT::kAdd}, true},
      {"DEL MOD DESCEND_ADD", {RT::kDel, RT::kMod, RT::kAdd}, false},
      {"DEL ASCEND_ADD MOD", {RT::kDel, RT::kAdd, RT::kMod}, true},
      {"MOD DEL ASCEND_ADD", {RT::kMod, RT::kDel, RT::kAdd}, true},
      {"MOD ASCEND_ADD DEL", {RT::kMod, RT::kAdd, RT::kDel}, true},
      {"ASCEND_ADD DEL MOD", {RT::kAdd, RT::kDel, RT::kMod}, true},
      {"ASCEND_ADD MOD DEL", {RT::kAdd, RT::kMod, RT::kDel}, true},
  };
}

double BasicTangoScheduler::op_cost_ms(SwitchId sw, RequestType type,
                                       bool adds_ascending) const {
  const auto it = costs_.find(sw);
  if (it == costs_.end()) {
    // Unprofiled switch: neutral weights (the paper's static fallback).
    switch (type) {
      case RequestType::kDel: return 10;
      case RequestType::kMod: return 1;
      case RequestType::kAdd: return adds_ascending ? 20 : 40;
    }
  }
  const auto& c = it->second;
  switch (type) {
    case RequestType::kDel: return c.del_ms;
    case RequestType::kMod: return c.mod_ms;
    case RequestType::kAdd: return adds_ascending ? c.add_ascending_ms : c.add_descending_ms;
  }
  return 1;
}

double BasicTangoScheduler::pattern_score(const RequestDag& dag,
                                          const std::vector<std::size_t>& ready,
                                          const OrderingPattern& pattern) const {
  // Score = negated estimated cost; per-switch queues run in parallel, so
  // the estimate is the max over switches of their serial cost.
  std::map<SwitchId, double> per_switch;
  for (std::size_t id : ready) {
    const auto& req = dag.request(id);
    per_switch[req.location] +=
        op_cost_ms(req.location, req.type, pattern.adds_ascending);
  }
  double worst = 0;
  for (const auto& [sw, ms] : per_switch) worst = std::max(worst, ms);
  return -worst;
}

std::vector<std::size_t> BasicTangoScheduler::apply_pattern(
    const RequestDag& dag, std::vector<std::size_t> ready,
    const OrderingPattern& pattern) const {
  auto type_rank = [&](RequestType t) {
    for (int i = 0; i < 3; ++i) {
      if (pattern.sequence[i] == t) return i;
    }
    return 3;
  };
  std::stable_sort(ready.begin(), ready.end(), [&](std::size_t a, std::size_t b) {
    const auto& ra = dag.request(a);
    const auto& rb = dag.request(b);
    const int ta = type_rank(ra.type);
    const int tb = type_rank(rb.type);
    if (ta != tb) return ta < tb;
    if (options_.sort_priorities && ra.type == RequestType::kAdd &&
        ra.priority.has_value() && rb.priority.has_value() &&
        *ra.priority != *rb.priority) {
      return pattern.adds_ascending ? *ra.priority < *rb.priority
                                    : *ra.priority > *rb.priority;
    }
    return false;
  });
  return ready;
}

std::vector<std::size_t> BasicTangoScheduler::order(const RequestDag& dag,
                                                    std::vector<std::size_t> ready) {
  if (!options_.reorder_types) {
    // Priority sorting only.
    if (options_.sort_priorities) {
      std::stable_sort(ready.begin(), ready.end(),
                       [&](std::size_t a, std::size_t b) {
                         const auto& ra = dag.request(a);
                         const auto& rb = dag.request(b);
                         if (ra.type != RequestType::kAdd ||
                             rb.type != RequestType::kAdd) {
                           return false;
                         }
                         if (!ra.priority || !rb.priority) return false;
                         return *ra.priority < *rb.priority;
                       });
    }
    return ready;
  }

  // orderingTangoOracle: pick the best-scoring pattern.
  double best_score = -1e300;
  const OrderingPattern* best = nullptr;
  for (const auto& pattern : patterns_) {
    const double score = pattern_score(dag, ready, pattern);
    if (score > best_score) {
      best_score = score;
      best = &pattern;
    }
  }
  assert(best != nullptr);
  auto ordered = apply_pattern(dag, std::move(ready), *best);

  if (options_.deadline_first) {
    // Deadline-carrying requests jump the pattern order, earliest first;
    // the pattern still governs everything behind them.
    std::stable_sort(ordered.begin(), ordered.end(),
                     [&](std::size_t a, std::size_t b) {
                       const auto& da = dag.request(a).deadline;
                       const auto& db = dag.request(b).deadline;
                       if (da.has_value() != db.has_value()) return da.has_value();
                       if (da && db) return *da < *db;
                       return false;
                     });
  }

  if (options_.prefix_lookahead && ordered.size() > 4) {
    // Non-greedy batching extension: compare "issue everything" against
    // "issue a prefix, then the batch its completion unlocks". We estimate
    // with serial per-switch costs; the executor re-invokes order() when
    // the prefix completes, so truncating here is sufficient.
    const double full_cost = estimate_makespan_ms(dag, ordered);
    for (const std::size_t prefix_len : {ordered.size() / 4, ordered.size() / 2}) {
      if (prefix_len == 0) continue;
      std::vector<std::size_t> prefix(ordered.begin(),
                                      ordered.begin() + static_cast<long>(prefix_len));
      // Requests unlocked once the prefix completes (all preds inside).
      std::vector<std::size_t> unlocked;
      for (std::size_t id : prefix) {
        for (std::size_t succ : dag.successors(id)) {
          const auto& preds = dag.predecessors(succ);
          const bool all_in_prefix = std::all_of(
              preds.begin(), preds.end(), [&](std::size_t p) {
                return std::find(prefix.begin(), prefix.end(), p) != prefix.end();
              });
          if (all_in_prefix) unlocked.push_back(succ);
        }
      }
      if (unlocked.empty()) continue;
      std::vector<std::size_t> combined = prefix;
      combined.insert(combined.end(), unlocked.begin(), unlocked.end());
      const double staged_cost = estimate_makespan_ms(dag, combined);
      if (staged_cost < full_cost * 0.9) {
        return prefix;  // issue only the prefix; executor will call again
      }
    }
  }
  return ordered;
}

double BasicTangoScheduler::estimate_makespan_ms(
    const RequestDag& dag, const std::vector<std::size_t>& order) const {
  std::map<SwitchId, double> per_switch;
  for (std::size_t id : order) {
    const auto& req = dag.request(id);
    per_switch[req.location] += op_cost_ms(req.location, req.type, true);
  }
  double worst = 0;
  for (const auto& [sw, ms] : per_switch) worst = std::max(worst, ms);
  return worst;
}

std::size_t BasicTangoScheduler::enforce_priorities(RequestDag& dag,
                                                    std::uint16_t base_priority,
                                                    std::uint16_t step) {
  const auto levels = dag.levels();
  std::size_t assigned = 0;
  for (std::size_t id = 0; id < dag.size(); ++id) {
    auto& req = dag.request(id);
    if (req.priority.has_value()) continue;
    // Requests at the same DAG level share one priority (same-priority
    // appends — the cheapest add), and later levels get strictly higher
    // values, so the per-switch installation sequence is ascending and
    // never shifts existing TCAM entries.
    const std::uint16_t priority =
        static_cast<std::uint16_t>(base_priority + step * levels[id]);
    req.priority = priority;
    ++assigned;
  }
  return assigned;
}

}  // namespace tango::sched
