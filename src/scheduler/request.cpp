#include "scheduler/request.h"

#include <algorithm>
#include <cassert>
#include <functional>

namespace tango::sched {

std::string to_string(RequestType t) {
  switch (t) {
    case RequestType::kAdd: return "ADD";
    case RequestType::kMod: return "MOD";
    case RequestType::kDel: return "DEL";
  }
  return "?";
}

of::FlowModCommand to_command(RequestType t) {
  switch (t) {
    case RequestType::kAdd: return of::FlowModCommand::kAdd;
    case RequestType::kMod: return of::FlowModCommand::kModify;
    case RequestType::kDel: return of::FlowModCommand::kDelete;
  }
  return of::FlowModCommand::kAdd;
}

std::size_t RequestDag::add(SwitchRequest request) {
  requests_.push_back(std::move(request));
  succs_.emplace_back();
  preds_.emplace_back();
  depth_cache_valid_ = false;
  return requests_.size() - 1;
}

void RequestDag::add_dependency(std::size_t before, std::size_t after) {
  assert(before < requests_.size() && after < requests_.size());
  succs_[before].push_back(after);
  preds_[after].push_back(before);
  depth_cache_valid_ = false;
}

std::size_t RequestDag::downstream_depth(std::size_t id) const {
  if (!depth_cache_valid_) {
    depth_cache_.assign(requests_.size(), 0);
    // Memoized DFS.
    std::vector<int> state(requests_.size(), 0);
    std::function<std::size_t(std::size_t)> dfs = [&](std::size_t u) -> std::size_t {
      if (state[u] == 2) return depth_cache_[u];
      assert(state[u] != 1 && "cycle in request DAG");
      state[u] = 1;
      std::size_t best = 0;
      for (std::size_t v : succs_[u]) best = std::max(best, dfs(v));
      depth_cache_[u] = best + 1;
      state[u] = 2;
      return depth_cache_[u];
    };
    for (std::size_t u = 0; u < requests_.size(); ++u) dfs(u);
    depth_cache_valid_ = true;
  }
  return depth_cache_[id];
}

std::size_t RequestDag::depth() const {
  std::size_t best = 0;
  for (std::size_t u = 0; u < requests_.size(); ++u) {
    best = std::max(best, downstream_depth(u));
  }
  return best;
}

std::vector<std::size_t> RequestDag::levels() const {
  std::vector<std::size_t> level(requests_.size(), 0);
  // Kahn order, level = 1 + max pred level.
  std::vector<std::size_t> indeg(requests_.size(), 0);
  for (std::size_t u = 0; u < requests_.size(); ++u) indeg[u] = preds_[u].size();
  std::vector<std::size_t> queue;
  for (std::size_t u = 0; u < requests_.size(); ++u) {
    if (indeg[u] == 0) queue.push_back(u);
  }
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const std::size_t u = queue[qi];
    for (std::size_t v : succs_[u]) {
      level[v] = std::max(level[v], level[u] + 1);
      if (--indeg[v] == 0) queue.push_back(v);
    }
  }
  return level;
}

bool RequestDag::is_acyclic() const {
  std::vector<std::size_t> indeg(requests_.size(), 0);
  for (std::size_t u = 0; u < requests_.size(); ++u) indeg[u] = preds_[u].size();
  std::vector<std::size_t> queue;
  for (std::size_t u = 0; u < requests_.size(); ++u) {
    if (indeg[u] == 0) queue.push_back(u);
  }
  std::size_t seen = 0;
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    ++seen;
    for (std::size_t v : succs_[queue[qi]]) {
      if (--indeg[v] == 0) queue.push_back(v);
    }
  }
  return seen == requests_.size();
}

std::vector<std::size_t> RequestDag::roots() const {
  std::vector<std::size_t> out;
  for (std::size_t u = 0; u < requests_.size(); ++u) {
    if (preds_[u].empty()) out.push_back(u);
  }
  return out;
}

}  // namespace tango::sched
