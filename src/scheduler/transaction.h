// Transactional network updates (intent journal + crash reconciliation).
//
// An UpdateTransaction wraps one RequestDag execution with a write-ahead
// intent journal and a recovery protocol:
//
//  1. At construction it snapshots the pre-update table of every affected
//     switch over the control channel, stamps each request with a durable
//     cookie (transaction id in the top 32 bits, DAG node id in the low 32),
//     and journals per request the flow_mod that will be issued plus the
//     inverse operations that would undo it (delete-for-add, restore of the
//     previously installed entries for modify/delete).
//  2. commit() executes the DAG through the normal scheduler/executor path.
//     The journal tracks per-entry state via executor observers. If nothing
//     crashed and nothing failed, the transaction commits — the fault-free
//     fast path issues exactly the flow_mods a bare execute() would.
//  3. When an agent crash is detected (crash-notification hook or fault
//     counters advancing) or requests fail, the reconciler reads actual
//     switch state back, diffs it against the journal's desired image, and
//     either rolls the transaction forward (converge to the post-update
//     image, dependency order preserved) or rolls it back (restore the
//     pre-update snapshot, dependencies reversed) — per RecoveryPolicy.
//
// Cookies make re-issue idempotent: an ADD replaces in place, so repeating
// a journaled intent after a crash cannot duplicate rules, and leftovers
// from a dead transaction are attributable by their cookie's top half.
//
// Assumption (documented, asserted nowhere): requests within one
// transaction do not race on the same rule key — the journal computes
// inverses against the snapshot in DAG topological order, which is only
// unambiguous when at most one request writes a given (match, priority).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "openflow/epoch.h"
#include "scheduler/executor.h"
#include "scheduler/reconciler.h"
#include "scheduler/verifier.h"

namespace tango::sched {

enum class RecoveryPolicy {
  /// Converge every affected switch to the post-update image.
  kRollForward,
  /// Restore every affected switch to its pre-update snapshot.
  kRollBack,
};

std::string to_string(RecoveryPolicy policy);

/// One journaled intent: the flow_mod to issue and how to undo it.
struct JournalEntry {
  enum class State { kPlanned, kAcked, kFailed };

  std::size_t dag_id = 0;
  SwitchId location = 0;
  of::FlowMod intent;
  /// Inverse operations, computed against the pre-state this entry saw
  /// (snapshot + earlier entries in DAG order). Empty only for a MODIFY
  /// that acted on nothing (its inverse is a strict delete of the entry the
  /// modify created).
  std::vector<of::FlowMod> inverse;
  State state = State::kPlanned;
};

struct TransactionReport;
class UpdateTransaction;

/// Observer streaming a transaction's write-ahead journal off-process (the
/// HA replication log): the standby receives the full intent list before
/// the first frame hits the wire, then per-entry acks and the final
/// outcome. Callbacks fire synchronously on the issuing controller in
/// virtual time; a null sink (the default) leaves the path untouched.
class JournalSink {
 public:
  virtual ~JournalSink() = default;
  /// Journal built (constructor epilogue): intents, inverses and pre-images
  /// are all readable on `txn`.
  virtual void on_txn_begin(const UpdateTransaction& txn) = 0;
  /// DAG node `dag_id` reached a terminal state on the wire.
  virtual void on_entry_acked(const UpdateTransaction& txn, std::size_t dag_id,
                              bool accepted) = 0;
  /// finish_commit() completed (fast path or reconciled).
  virtual void on_txn_finish(const UpdateTransaction& txn,
                             const TransactionReport& report) = 0;
};

struct TransactionOptions {
  RecoveryPolicy policy = RecoveryPolicy::kRollForward;
  /// Executor options for the commit itself. on_complete/on_failed are
  /// overwritten — the journal owns them for the duration of commit().
  ExecutorOptions exec;
  /// Readback parameters (snapshot + reconciliation).
  SimDuration readback_timeout = millis(200);
  std::size_t max_readback_retries = 6;
  std::size_t max_reconcile_rounds = 3;
  /// Transaction id; 0 draws from a process-wide counter. Tests that
  /// compare two runs in one process pin it so cookies are reproducible.
  std::uint32_t txn_id = 0;
  /// Controller epoch fenced into every cookie (see openflow/epoch.h).
  /// 0 (the default) keeps the legacy (txn << 32) | node layout bit-for-bit
  /// and skips all epoch checks at the switch; the HA layer stamps the
  /// acting primary's epoch so a deposed controller's retries are refused.
  std::uint32_t epoch = 0;
  /// Journal replication sink (non-owning; the HA layer ships records to
  /// the standby through it). Null = no replication, zero overhead.
  JournalSink* journal_sink = nullptr;
  /// Scope this transaction's world-view to its own rule-space footprint:
  /// snapshot images keep only rules that carry this transaction's cookie
  /// or whose match overlaps a request's match on that switch, and every
  /// reconciliation/readback diff ignores out-of-scope rules (see
  /// ReconcilerOptions::scope). Required when transactions over
  /// rule-disjoint footprints run concurrently on shared switches — an
  /// unscoped rollback would treat a co-resident tenant's rules as stale
  /// leftovers and sweep them. Off by default: a serial transaction keeps
  /// whole-table reconciliation (strictly stronger repair).
  bool scope_to_footprint = false;
  /// Switches whose commit must be readback-verified even on the fault-free
  /// fast path (the knowledge-health layer lists quarantined switches
  /// here): after execution their tables are read back and diffed against
  /// the post image; divergence is repaired through the reconciler. Empty =
  /// the fast path is untouched.
  std::set<SwitchId> readback_verify;
  /// Fires once with the final report at the end of every commit() (both
  /// the fast path and the reconcile path). The knowledge-health layer
  /// feeds on readback mismatches / clean verified commits through this.
  std::function<void(const TransactionReport&)> on_report;
};

struct TransactionReport {
  std::uint32_t txn_id = 0;
  RecoveryPolicy policy = RecoveryPolicy::kRollForward;
  ExecutionReport exec;
  /// True when the network verifiably reached the policy's end state
  /// (fault-free commit, or reconciliation converged).
  bool committed = false;
  /// True when the reconciler ran at all.
  bool reconciled = false;
  /// True only when policy-driven reconciliation unwound the transaction
  /// to the pre image (kRollBack). A readback-verify repair on the fast
  /// path sets reconciled but NOT rolled_back — it converges forward to
  /// the post image regardless of policy.
  bool rolled_back = false;
  std::size_t reconcile_rounds = 0;
  std::size_t repairs_issued = 0;
  std::size_t stale_rules_removed = 0;
  std::size_t readback_requests = 0;
  std::size_t readback_lost = 0;
  /// Switches whose agent crashed (tables wiped) during commit.
  std::set<SwitchId> crashed_switches;
  /// Switches the reconciler could not read back; their end state is
  /// unknown and committed is false.
  std::set<SwitchId> unreconciled;
  /// Per switch: rules found diverging from the post image by a
  /// readback-verified commit (options.readback_verify). Non-empty means
  /// the switch acknowledged work it did not do — the mismatches were
  /// repaired (reconciled = true) before commit() returned.
  std::map<SwitchId, std::size_t> readback_mismatches;
  /// Filled by verify().
  VerifierReport verify;
};

class UpdateTransaction {
 public:
  /// Snapshots pre-state, stamps cookies, builds the journal. Runs readback
  /// traffic on the network's event queue (so construct before starting any
  /// makespan-sensitive measurement, and before scheduling absolute-time
  /// fault events meant to hit the commit itself).
  UpdateTransaction(net::Network& network, RequestDag dag,
                    TransactionOptions options = {});

  /// Execute the update; on crash/failure, reconcile per policy.
  /// Exactly start_commit() + pump-the-event-queue + finish_commit().
  const TransactionReport& commit(UpdateScheduler& scheduler);

  // --- phased commit ---------------------------------------------------------
  // The intent service runs several transactions over disjoint footprints
  // concurrently: each is start_commit()ed, then one top-level loop pumps
  // the shared event queue, polling exec_done() and finish_commit()ing each
  // transaction as it drains. finish_commit() runs the *synchronous*
  // epilogue (readback verification, reconciliation — these pump the event
  // queue themselves), so it must be called from the top-level loop, never
  // from inside an event callback. `scheduler` must outlive finish_commit().

  /// Dispatch the DAG onto the event queue without pumping it. Installs the
  /// journal observers and a crash listener for the span of the commit.
  void start_commit(UpdateScheduler& scheduler);
  /// True once every request reached a terminal state (or nothing was
  /// dispatched). Poll between event-queue steps.
  [[nodiscard]] bool exec_done() const;
  /// Finalize the execution report, then run the commit epilogue: crash
  /// detection, reconciliation per policy, readback verification, report
  /// callback. Call exactly once, after exec_done().
  const TransactionReport& finish_commit();

  /// Walk `flows` through the network post-commit; results land in
  /// report().verify and are also returned.
  const VerifierReport& verify(const std::vector<FlowCheck>& flows);

  /// Abandon a started commit without finishing it — models the issuing
  /// controller dying mid-flight. The execution state machine is stopped
  /// (pending timers, retries and completions become no-ops), the crash
  /// listener is dropped, and no reconciliation or report callback runs:
  /// whatever reached the switches stays there for the HA takeover path to
  /// reconcile from the shipped journal. finish_commit() must not be
  /// called afterwards.
  void abandon();

  [[nodiscard]] std::uint32_t id() const { return txn_id_; }
  /// Cookie stamped on DAG node `dag_id`'s flow_mod. With a nonzero
  /// options.epoch the top byte carries the fence and the transaction id is
  /// truncated to 24 bits; epoch 0 is the legacy layout, bit-for-bit.
  [[nodiscard]] std::uint64_t cookie_of(std::size_t dag_id) const {
    return of::fenced_cookie(options_.epoch, txn_id_,
                             static_cast<std::uint32_t>(dag_id));
  }
  static std::uint32_t txn_of_cookie(std::uint64_t cookie) {
    const auto hi = static_cast<std::uint32_t>(cookie >> 32);
    return of::epoch_of_cookie(cookie) != 0 ? (hi & of::kCookieTxnMask) : hi;
  }

  [[nodiscard]] const std::vector<JournalEntry>& journal() const {
    return journal_;
  }
  [[nodiscard]] const TransactionOptions& options() const { return options_; }
  [[nodiscard]] const TransactionReport& report() const { return report_; }
  [[nodiscard]] const TableImage& pre_image(SwitchId id) const {
    return pre_.at(id);
  }
  [[nodiscard]] const TableImage& post_image(SwitchId id) const {
    return post_.at(id);
  }
  [[nodiscard]] RequestDag& dag() { return dag_; }
  [[nodiscard]] const RequestDag& dag() const { return dag_; }

 private:
  /// This transaction's id as it appears in its own cookies (truncated to
  /// 24 bits when fenced) — the value txn_of_cookie() yields for them.
  [[nodiscard]] std::uint32_t txn_key() const {
    return options_.epoch != 0 ? (txn_id_ & of::kCookieTxnMask) : txn_id_;
  }
  void reconcile();
  /// Readback verification for options.readback_verify switches: diff
  /// actual tables against `want_images` (the post image on the fast path
  /// and after roll-forward, the pre image after rollback), repair
  /// divergence through the reconciler. `forward` picks the attribution
  /// map and dependency direction, mirroring reconcile().
  void verify_readback(const std::map<SwitchId, TableImage>& want_images,
                       bool forward);
  /// True when original DAG node `a` must complete before `b` (rollback
  /// reverses the arguments). Lazily computes the reachability closure.
  bool reaches(std::size_t a, std::size_t b);
  /// Footprint-scope membership (options_.scope_to_footprint): ours by
  /// cookie, or overlapping one of our matches on that switch.
  [[nodiscard]] bool in_scope(SwitchId sw, const RuleImage& rule) const;
  /// ReconcilerOptions::scope predicate when scoping is on; empty otherwise.
  [[nodiscard]] std::function<bool(SwitchId, const RuleImage&)>
  scope_predicate() const;

  net::Network& network_;
  RequestDag dag_;
  TransactionOptions options_;
  std::uint32_t txn_id_ = 0;

  std::vector<JournalEntry> journal_;
  std::map<std::size_t, std::size_t> journal_of_dag_;  // dag id -> journal idx
  std::map<SwitchId, TableImage> pre_;
  std::map<SwitchId, TableImage> post_;
  /// Per switch: rule key -> dag node that last wrote it (post image).
  std::map<SwitchId, std::map<std::string, std::size_t>> writers_;
  /// Per switch: pre-image rule key -> dag node that first destroyed or
  /// overwrote it (for attributing rollback restores).
  std::map<SwitchId, std::map<std::string, std::size_t>> touched_;
  /// Fault-injector crash counters at construction, for detecting crashes
  /// the notification hook could not observe.
  std::map<SwitchId, std::uint64_t> crashes_at_begin_;
  /// Per switch: this transaction's request matches (only populated when
  /// options_.scope_to_footprint), backing in_scope().
  std::map<SwitchId, std::vector<of::Match>> footprint_;

  std::vector<std::vector<std::uint64_t>> reach_;  // lazy closure, bit rows
  TransactionReport report_;

  // Phased-commit state (start_commit .. finish_commit).
  AsyncExecution async_;
  std::uint64_t crash_token_ = 0;
  bool commit_started_ = false;
  SimTime commit_begin_{};
};

}  // namespace tango::sched
