#include "scheduler/executor.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>
#include <vector>

namespace tango::sched {

of::FlowMod to_flow_mod(const SwitchRequest& request,
                        std::uint16_t default_priority) {
  of::FlowMod fm;
  fm.command = to_command(request.type);
  fm.match = request.match;
  fm.priority = request.priority.value_or(default_priority);
  fm.actions = request.actions;
  return fm;
}

ExecutionReport execute(net::Network& network, const RequestDag& dag,
                        UpdateScheduler& scheduler,
                        const ExecutorOptions& options) {
  ExecutionReport report;
  const std::size_t n = dag.size();
  if (n == 0) return report;
  assert(dag.is_acyclic());

  std::vector<std::size_t> remaining_preds(n, 0);
  std::vector<bool> issued(n, false);
  std::vector<bool> completed(n, false);
  for (std::size_t id = 0; id < n; ++id) {
    remaining_preds[id] = dag.predecessors(id).size();
  }

  // Ready-but-unsent requests. The scheduler re-orders this pool whenever
  // it changes; per-switch dispatch windows keep each agent fed while the
  // backlog stays reorderable (this is Algorithm 3's continuous loop: the
  // independent set is re-extracted and re-ordered as requests finish).
  std::vector<std::size_t> pending;
  bool pending_dirty = true;
  std::vector<std::size_t> ordered;
  std::map<SwitchId, std::size_t> in_flight;

  for (std::size_t id = 0; id < n; ++id) {
    if (remaining_preds[id] == 0) pending.push_back(id);
  }

  const SimTime start = network.now();
  std::size_t done_count = 0;

  std::function<void()> dispatch;

  auto send = [&](std::size_t id) {
    issued[id] = true;
    ++report.issued;
    const auto& req = dag.request(id);
    ++in_flight[req.location];
    network.post_flow_mod(
        req.location, to_flow_mod(req, options.default_priority),
        [&, id](bool accepted, SimTime at) {
          completed[id] = true;
          ++done_count;
          if (!accepted) ++report.rejected;
          const auto& done_req = dag.request(id);
          --in_flight[done_req.location];
          if (done_req.deadline.has_value() && at - start > *done_req.deadline) {
            ++report.deadline_misses;
          }
          for (std::size_t succ : dag.successors(id)) {
            if (remaining_preds[succ] > 0 && --remaining_preds[succ] == 0 &&
                !issued[succ]) {
              pending.push_back(succ);
              pending_dirty = true;
            }
          }
          dispatch();
        });
  };

  dispatch = [&]() {
    if (pending_dirty) {
      ++report.scheduling_rounds;
      ordered = scheduler.order(dag, pending);
      pending_dirty = false;
    }
    bool sent_any = false;
    for (std::size_t& id : ordered) {
      if (id == SIZE_MAX) continue;  // tombstone: already sent
      if (issued[id]) {
        id = SIZE_MAX;
        continue;
      }
      const SwitchId loc = dag.request(id).location;
      if (in_flight[loc] >= options.per_switch_window) continue;
      const std::size_t to_send = id;
      id = SIZE_MAX;
      std::erase(pending, to_send);
      send(to_send);
      sent_any = true;
    }

    if (options.speculative_dependents) {
      // Concurrent-dependent extension (§6): a blocked request may be
      // issued alongside its predecessors when every predecessor is
      // estimated to *finish* at least `guard` before this request would —
      // estimated finish = the target agent's current backlog plus the
      // measured cost of the operation itself.
      auto est_duration = [&](std::size_t id) {
        const auto& req = dag.request(id);
        const auto it = options.cost_hints.find(req.location);
        if (it == options.cost_hints.end()) return options.default_op_estimate;
        switch (req.type) {
          case RequestType::kAdd:
            return millis(it->second.add_ascending_ms);
          case RequestType::kMod:
            return millis(it->second.mod_ms);
          case RequestType::kDel:
            return millis(it->second.del_ms);
        }
        return options.default_op_estimate;
      };
      auto est_finish = [&](std::size_t id) {
        const SimTime backlog =
            network.channel(dag.request(id).location).agent_busy_until();
        return std::max(backlog, network.now()) + est_duration(id);
      };
      bool progress = true;
      while (progress) {
        progress = false;
        for (std::size_t id = 0; id < n; ++id) {
          if (issued[id] || remaining_preds[id] == 0) continue;
          const auto& preds = dag.predecessors(id);
          bool eligible = true;
          SimTime latest_pred_finish{};
          for (std::size_t p : preds) {
            if (!issued[p]) {
              eligible = false;
              break;
            }
            if (!completed[p]) {
              latest_pred_finish = std::max(latest_pred_finish, est_finish(p));
            }
          }
          if (!eligible) continue;
          if (latest_pred_finish + options.guard <= est_finish(id)) {
            remaining_preds[id] = 0;  // commit to early issue
            send(id);
            progress = true;
          }
        }
      }
    }
    (void)sent_any;
  };

  dispatch();
  while (done_count < n && network.events().step()) {
  }
  assert(done_count == n);

  report.makespan = network.now() - start;
  return report;
}

}  // namespace tango::sched
