#include "scheduler/executor.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/logging.h"

namespace tango::sched {

of::FlowMod to_flow_mod(const SwitchRequest& request,
                        std::uint16_t default_priority) {
  of::FlowMod fm;
  fm.command = to_command(request.type);
  fm.match = request.match;
  fm.priority = request.priority.value_or(default_priority);
  fm.actions = request.actions;
  fm.cookie = request.cookie.value_or(0);
  return fm;
}

namespace {

/// Per-switch FaultStats snapshot taken before execution so the report can
/// carry the deltas this run caused (stats are cumulative per injector).
std::map<SwitchId, net::FaultStats> snapshot_faults(net::Network& network,
                                                    const RequestDag& dag) {
  std::map<SwitchId, net::FaultStats> out;
  for (std::size_t id = 0; id < dag.size(); ++id) {
    const SwitchId loc = dag.request(id).location;
    if (out.count(loc) != 0) continue;
    if (const auto* inj = network.fault_injector(loc)) out[loc] = inj->stats();
  }
  return out;
}

void report_fault_deltas(net::Network& network,
                         const std::map<SwitchId, net::FaultStats>& before,
                         ExecutionReport& report) {
  for (const auto& [loc, base] : before) {
    const auto* inj = network.fault_injector(loc);
    if (inj == nullptr) continue;
    const auto& now = inj->stats();
    report.fault_crashes += now.crashes - base.crashes;
    report.fault_lost_to_crash += now.lost_to_crash - base.lost_to_crash;
    report.fault_dropped_to_switch +=
        now.dropped_to_switch - base.dropped_to_switch;
    report.fault_dropped_to_controller +=
        now.dropped_to_controller - base.dropped_to_controller;
    if (now.crashes > base.crashes) report.crashed_switches.insert(loc);
  }
  if (report.fault_crashes + report.fault_dropped_to_switch +
          report.fault_dropped_to_controller >
      0) {
    log::info("executor: faults during run: " +
              std::to_string(report.fault_crashes) + " crash(es), " +
              std::to_string(report.fault_lost_to_crash) + " lost to crash, " +
              std::to_string(report.fault_dropped_to_switch) + "/" +
              std::to_string(report.fault_dropped_to_controller) +
              " drops to switch/controller; " +
              std::to_string(report.retries) + " retries, " +
              std::to_string(report.failed_requests) + " failed requests");
  }
}

}  // namespace

namespace detail {

/// All execution state lives on the heap behind a shared_ptr: retry timers
/// and echo timeouts stay scheduled after execute() returns (as no-ops once
/// `finished` is set), so nothing they capture may sit on the stack. Each
/// scheduled event holds the state alive via shared_from_this and bails out
/// on its first line if the run is over.
struct ExecState : std::enable_shared_from_this<ExecState> {
  net::Network& network;
  const RequestDag& dag;
  UpdateScheduler& scheduler;
  const ExecutorOptions options;  // copied: caller's may be a temporary
  ExecutionReport report;

  std::size_t n = 0;
  SimTime start{};
  /// Virtual time when the last request reached a terminal state.
  SimTime end{};
  bool finished = false;
  /// False for execute_async: per-run counters live in local_metrics and
  /// are mirrored into the telemetry registry at finish() — interleaved
  /// runs sharing counters would corrupt each other's delta-derived reports.
  bool shared_counters = true;
  /// Injector stats at start, for the report's fault deltas.
  std::map<SwitchId, net::FaultStats> faults_before;

  // --- telemetry -----------------------------------------------------------
  // All recovery/progress tallies live in a MetricsRegistry — the network's
  // when telemetry is attached (so they surface in run reports), otherwise
  // a private one — and ExecutionReport fields are *derived* from counter
  // deltas when the run ends, never hand-incremented in parallel. The
  // registry is cumulative across runs, hence the base_ snapshot.
  telemetry::Telemetry* tele = nullptr;
  telemetry::MetricsRegistry local_metrics;
  struct Ctr {
    telemetry::Counter* issued = nullptr;
    telemetry::Counter* rejected = nullptr;
    telemetry::Counter* rejected_retryable = nullptr;
    telemetry::Counter* rejected_fatal = nullptr;
    telemetry::Counter* scheduling_rounds = nullptr;
    telemetry::Counter* deadline_misses = nullptr;
    telemetry::Counter* timeouts = nullptr;
    telemetry::Counter* retries = nullptr;
    telemetry::Counter* echo_probes = nullptr;
    telemetry::Counter* failed_requests = nullptr;
  } ctr;
  /// Counter values at run start (this run's report = value - base).
  struct CtrBase {
    std::uint64_t issued = 0, rejected = 0, rejected_retryable = 0,
                  rejected_fatal = 0, scheduling_rounds = 0,
                  deadline_misses = 0, timeouts = 0, retries = 0,
                  echo_probes = 0, failed_requests = 0;
  } ctr0;
  telemetry::Histogram* latency_hist = nullptr;
  telemetry::Histogram* queue_hist = nullptr;
  /// Issue timestamps for request spans; sized only when telemetry is on.
  std::vector<SimTime> issue_time;
  /// When each request became ready (dependency-free); queueing delay =
  /// first-send time minus this.
  std::vector<SimTime> ready_time;
  /// Post timestamps / agent backlog at post, for cost observations; sized
  /// only when options.on_cost_observation is set. A timing sample is only
  /// trustworthy when this request was alone in flight at post time —
  /// commands still on the wire aren't reflected in the agent backlog yet.
  std::vector<SimTime> obs_post;
  std::vector<SimTime> obs_busy;
  std::vector<std::uint8_t> obs_solo;
  /// Post timestamps for RTT samples; sized only when options.rtt is set.
  std::vector<SimTime> rtt_post;

  std::vector<std::size_t> remaining_preds;
  /// True once sent — or tombstoned by a failure before sending.
  std::vector<bool> issued;
  /// True once completed or failed: the request will never change again.
  std::vector<bool> terminal;
  /// flow_mod posts made for this request in the current retry round.
  std::vector<std::size_t> attempts;
  /// Bumped per post; a timeout fires only for the attempt that armed it.
  std::vector<std::uint64_t> attempt_gen;
  /// Echo-rescue rounds consumed.
  std::vector<std::size_t> rescued;

  // Ready-but-unsent requests. The scheduler re-orders this pool whenever
  // it changes; per-switch dispatch windows keep each agent fed while the
  // backlog stays reorderable (this is Algorithm 3's continuous loop: the
  // independent set is re-extracted and re-ordered as requests finish).
  std::vector<std::size_t> pending;
  bool pending_dirty = true;
  std::vector<std::size_t> ordered;
  std::map<SwitchId, std::size_t> in_flight;
  std::set<SwitchId> dead;
  std::size_t done_count = 0;

  ExecState(net::Network& net, const RequestDag& d, UpdateScheduler& s,
            const ExecutorOptions& opts)
      : network(net), dag(d), scheduler(s), options(opts) {}

  [[nodiscard]] bool retry_enabled() const {
    return options.request_timeout.ns() > 0;
  }

  /// Recovery deadline for traffic to `loc`: the fixed knob, tightened by
  /// the per-switch RTT estimator when one is attached (see net/rtt.h).
  [[nodiscard]] SimDuration deadline_for(SwitchId loc) const {
    return options.rtt != nullptr
               ? options.rtt->timeout_for(loc, options.request_timeout)
               : options.request_timeout;
  }

  void init() {
    n = dag.size();
    start = network.now();
    remaining_preds.assign(n, 0);
    issued.assign(n, false);
    terminal.assign(n, false);
    attempts.assign(n, 0);
    attempt_gen.assign(n, 0);
    rescued.assign(n, 0);
    ready_time.assign(n, SimTime{});
    end = start;
    for (std::size_t id = 0; id < n; ++id) {
      remaining_preds[id] = dag.predecessors(id).size();
      if (remaining_preds[id] == 0) {
        pending.push_back(id);
        ready_time[id] = start;
      }
    }

    tele = network.telemetry();
    auto& reg =
        tele != nullptr && shared_counters ? tele->metrics : local_metrics;
    ctr.issued = &reg.counter("executor.issued");
    ctr.rejected = &reg.counter("executor.rejected");
    ctr.rejected_retryable = &reg.counter("executor.rejected_retryable");
    ctr.rejected_fatal = &reg.counter("executor.rejected_fatal");
    ctr.scheduling_rounds = &reg.counter("executor.scheduling_rounds");
    ctr.deadline_misses = &reg.counter("executor.deadline_misses");
    ctr.timeouts = &reg.counter("executor.timeouts");
    ctr.retries = &reg.counter("executor.retries");
    ctr.echo_probes = &reg.counter("executor.echo_probes");
    ctr.failed_requests = &reg.counter("executor.failed_requests");
    ctr0 = CtrBase{ctr.issued->value(),          ctr.rejected->value(),
                   ctr.rejected_retryable->value(),
                   ctr.rejected_fatal->value(),
                   ctr.scheduling_rounds->value(), ctr.deadline_misses->value(),
                   ctr.timeouts->value(),        ctr.retries->value(),
                   ctr.echo_probes->value(),     ctr.failed_requests->value()};
    if (tele != nullptr) {
      // Histograms always live in the shared registry: observes are
      // per-event (not delta-derived), so interleaved runs compose fine.
      latency_hist = &tele->metrics.histogram(
          "executor.request_latency_ms",
          {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000});
      queue_hist = &tele->metrics.histogram(
          "executor.queueing_delay_ms",
          {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000});
      issue_time.assign(n, SimTime{});
    }
    if (options.on_cost_observation) {
      obs_post.assign(n, SimTime{});
      obs_busy.assign(n, SimTime{});
      obs_solo.assign(n, 0);
    }
    if (options.rtt != nullptr) rtt_post.assign(n, SimTime{});
  }

  /// Derive the report's tallies from the registry — the counters are the
  /// single source of truth; the report is a per-run view over them.
  void finalize_report() {
    report.issued = ctr.issued->value() - ctr0.issued;
    report.rejected = ctr.rejected->value() - ctr0.rejected;
    report.rejected_retryable =
        ctr.rejected_retryable->value() - ctr0.rejected_retryable;
    report.rejected_fatal = ctr.rejected_fatal->value() - ctr0.rejected_fatal;
    report.scheduling_rounds =
        ctr.scheduling_rounds->value() - ctr0.scheduling_rounds;
    report.deadline_misses =
        ctr.deadline_misses->value() - ctr0.deadline_misses;
    report.timeouts = ctr.timeouts->value() - ctr0.timeouts;
    report.retries = ctr.retries->value() - ctr0.retries;
    report.echo_probes = ctr.echo_probes->value() - ctr0.echo_probes;
    report.failed_requests =
        ctr.failed_requests->value() - ctr0.failed_requests;
  }

  /// Close the run: derive the report, account lost requests, mirror
  /// locally-kept counters into the shared registry, record fault deltas
  /// and the execute span. Idempotent; shared by execute() and
  /// AsyncExecution::finish().
  void finish() {
    if (finished) return;
    finished = true;
    if (n == 0) return;
    finalize_report();
    report.makespan = (done_count == n ? end : network.now()) - start;
    report.lost_requests = n - done_count;
    assert(report.lost_requests == 0 || !retry_enabled());
    if (tele != nullptr && !shared_counters) {
      // Async runs tallied into local_metrics; fold the per-run deltas into
      // the shared registry so its totals match what serial runs produce.
      auto& reg = tele->metrics;
      reg.counter("executor.issued").inc(report.issued);
      reg.counter("executor.rejected").inc(report.rejected);
      reg.counter("executor.rejected_retryable").inc(report.rejected_retryable);
      reg.counter("executor.rejected_fatal").inc(report.rejected_fatal);
      reg.counter("executor.scheduling_rounds").inc(report.scheduling_rounds);
      reg.counter("executor.deadline_misses").inc(report.deadline_misses);
      reg.counter("executor.timeouts").inc(report.timeouts);
      reg.counter("executor.retries").inc(report.retries);
      reg.counter("executor.echo_probes").inc(report.echo_probes);
      reg.counter("executor.failed_requests").inc(report.failed_requests);
    }
    report_fault_deltas(network, faults_before, report);
    if (tele != nullptr) {
      tele->trace.span(
          "executor", "execute", telemetry::TraceCollector::kControllerLane,
          start, network.now(),
          {telemetry::arg("requests", std::uint64_t{n}),
           telemetry::arg("issued", std::uint64_t{report.issued}),
           telemetry::arg("failed", std::uint64_t{report.failed_requests}),
           telemetry::arg("makespan_ns", report.makespan.ns())});
      tele->metrics.counter("executor.runs").inc();
      // Mirror the fault-injector deltas this run caused: the registry is
      // where FaultStats surfaces for reports (crashes/stalls are counted
      // at the channel as they happen).
      tele->metrics.counter("faults.dropped_to_switch")
          .inc(report.fault_dropped_to_switch);
      tele->metrics.counter("faults.dropped_to_controller")
          .inc(report.fault_dropped_to_controller);
      tele->metrics.counter("faults.lost_to_crash")
          .inc(report.fault_lost_to_crash);
    }
  }

  void send(std::size_t id) {
    issued[id] = true;
    ctr.issued->inc();
    attempts[id] = 1;
    ++in_flight[dag.request(id).location];
    const SimDuration queued = network.now() - ready_time[id];
    report.total_queueing_delay += queued;
    if (queued > report.max_queueing_delay) report.max_queueing_delay = queued;
    if (queue_hist != nullptr) queue_hist->observe(queued.ms());
    if (tele != nullptr) issue_time[id] = network.now();
    post_attempt(id);
  }

  void post_attempt(std::size_t id) {
    const std::uint64_t gen = ++attempt_gen[id];
    auto self = shared_from_this();
    const auto& req = dag.request(id);
    if (options.on_cost_observation) {
      obs_post[id] = network.now();
      obs_busy[id] = network.channel(req.location).agent_busy_until();
      obs_solo[id] = in_flight[req.location] == 1 ? 1 : 0;
    }
    if (options.rtt != nullptr) rtt_post[id] = network.now();
    network.post_flow_mod_ex(req.location,
                             to_flow_mod(req, options.default_priority),
                             [self, id](const net::Network::FlowModResult& res) {
                               self->complete(id, res);
                             });
    if (retry_enabled()) {
      network.events().schedule_after(
          deadline_for(req.location),
          [self, id, gen]() { self->on_timeout(id, gen); });
    }
  }

  /// Error classes a switch rejection falls into. Table pressure can clear
  /// (an agent rebalancing, a timeout sweep freeing slots); a permissions
  /// or malformed-command error never will.
  [[nodiscard]] static bool rejection_retryable(
      const net::Network::FlowModResult& res) {
    return res.has_error && res.error_type == of::ErrorType::kFlowModFailed &&
           res.error_code ==
               static_cast<std::uint16_t>(of::FlowModFailedCode::kAllTablesFull);
  }

  void complete(std::size_t id, const net::Network::FlowModResult& res) {
    // First completion wins; later ones (a duplicated frame, or the
    // original answer racing a retry) are harmless echoes of the same
    // idempotent flow_mod.
    if (finished || terminal[id]) return;
    const bool accepted = res.accepted;
    const SimTime at = res.completed_at;
    if (!accepted) {
      const bool retryable = rejection_retryable(res);
      if (retryable) {
        ctr.rejected_retryable->inc();
      } else {
        ctr.rejected_fatal->inc();
      }
      if (retryable && options.retry_rejections && retry_enabled() &&
          attempts[id] <= options.max_retries &&
          dead.count(dag.request(id).location) == 0) {
        // Mirror the timeout-retry path: back off, re-post, same budget.
        const SimDuration backoff =
            options.backoff_base * (std::int64_t{1} << (attempts[id] - 1));
        ++attempts[id];
        ctr.retries->inc();
        auto self = shared_from_this();
        network.events().schedule_after(backoff, [self, id]() {
          if (self->finished || self->terminal[id]) return;
          if (self->dead.count(self->dag.request(id).location) != 0) {
            self->fail_request(id);
            self->dispatch();
            return;
          }
          self->post_attempt(id);
        });
        return;
      }
    }
    terminal[id] = true;
    ++done_count;
    if (done_count == n) end = network.now();
    if (!accepted) ctr.rejected->inc();
    const auto& req = dag.request(id);
    auto& fl = in_flight[req.location];
    if (fl > 0) --fl;
    if (req.deadline.has_value() && at - start > *req.deadline) {
      ctr.deadline_misses->inc();
    }
    if (tele != nullptr) {
      tele->trace.span(
          "executor", "request", req.location, issue_time[id], at,
          {telemetry::arg("id", std::uint64_t{id}),
           telemetry::arg("attempts", std::uint64_t{attempts[id]}),
           telemetry::arg("accepted", accepted)});
      latency_hist->observe((at - issue_time[id]).ms());
    }
    if (accepted && options.on_cost_observation && attempts[id] == 1 &&
        obs_solo[id] != 0) {
      // A clean first-attempt completion is a free cost measurement: the
      // agent started no earlier than max(backlog at post, arrival), so
      // completed_at minus that start is the op's processing time. Retried
      // or rescued requests are skipped — their timing is polluted.
      const auto hint = options.cost_hints.find(req.location);
      if (hint != options.cost_hints.end()) {
        const SimTime arrival = obs_post[id] + network.control_latency();
        const SimTime started = std::max(obs_busy[id], arrival);
        const double actual_ms = (at - started).ms();
        double predicted_ms = options.default_op_estimate.ms();
        switch (req.type) {
          case RequestType::kAdd:
            predicted_ms = hint->second.add_ascending_ms;
            break;
          case RequestType::kMod:
            predicted_ms = hint->second.mod_ms;
            break;
          case RequestType::kDel:
            predicted_ms = hint->second.del_ms;
            break;
        }
        options.on_cost_observation(req.location, req.type, actual_ms,
                                    predicted_ms);
      }
    }
    if (accepted && options.rtt != nullptr && attempts[id] == 1) {
      // Karn's rule: only never-retransmitted requests are unambiguous RTT
      // samples. Queueing behind sibling requests is deliberately included —
      // the deadline must cover time-to-answer under current load.
      options.rtt->observe(req.location, at - rtt_post[id]);
    }
    if (options.on_complete) options.on_complete(id, accepted);
    for (std::size_t succ : dag.successors(id)) {
      if (remaining_preds[succ] > 0 && --remaining_preds[succ] == 0 &&
          !issued[succ]) {
        pending.push_back(succ);
        ready_time[succ] = network.now();
        pending_dirty = true;
      }
    }
    dispatch();
  }

  void on_timeout(std::size_t id, std::uint64_t gen) {
    if (finished || terminal[id]) return;
    if (gen != attempt_gen[id]) return;  // a newer attempt superseded this one
    ctr.timeouts->inc();
    const SwitchId loc = dag.request(id).location;
    if (tele != nullptr) {
      tele->trace.instant("executor", "timeout", loc, network.now(),
                          {telemetry::arg("id", std::uint64_t{id})});
    }
    if (dead.count(loc) != 0) {
      fail_request(id);
      dispatch();
      return;
    }
    if (attempts[id] <= options.max_retries) {
      // Exponential backoff: 1x, 2x, 4x, ... of backoff_base.
      const SimDuration backoff =
          options.backoff_base * (std::int64_t{1} << (attempts[id] - 1));
      ++attempts[id];
      ctr.retries->inc();
      if (tele != nullptr) {
        tele->trace.instant("executor", "retry", loc, network.now(),
                            {telemetry::arg("id", std::uint64_t{id}),
                             telemetry::arg("backoff_ns", backoff.ns())});
      }
      auto self = shared_from_this();
      network.events().schedule_after(backoff, [self, id]() {
        if (self->finished || self->terminal[id]) return;
        if (self->dead.count(self->dag.request(id).location) != 0) {
          self->fail_request(id);
          self->dispatch();
          return;
        }
        self->post_attempt(id);
      });
      return;
    }
    probe_liveness(loc, id);
  }

  /// One liveness interrogation: consecutive echoes answered by silence.
  struct Liveness {
    bool answered = false;
    std::size_t sent = 0;
  };

  void probe_liveness(SwitchId loc, std::size_t id) {
    send_echo(loc, id, std::make_shared<Liveness>());
  }

  void send_echo(SwitchId loc, std::size_t id,
                 const std::shared_ptr<Liveness>& probe) {
    if (finished) return;
    if (dead.count(loc) != 0) {
      fail_request(id);
      dispatch();
      return;
    }
    ++probe->sent;
    ctr.echo_probes->inc();
    if (tele != nullptr) {
      tele->trace.instant("executor", "echo_probe", loc, network.now(),
                          {telemetry::arg("id", std::uint64_t{id})});
    }
    auto self = shared_from_this();
    const SimTime echo_sent = network.now();
    const std::uint32_t xid =
        network.post_echo(loc, [self, loc, id, probe, echo_sent]() {
          if (self->finished || probe->answered) return;
          probe->answered = true;
          if (self->options.rtt != nullptr) {
            // Liveness echoes double as free RTT samples (the pure channel
            // round trip, no flow_mod processing on top).
            self->options.rtt->observe(loc, self->network.now() - echo_sent);
          }
          self->on_alive(loc, id);
        });
    network.events().schedule_after(
        deadline_for(loc), [self, loc, id, probe, xid]() {
          if (self->finished || probe->answered) return;
          self->network.cancel_reply(xid);
          // A single echo can be lost to the same noise that stranded the
          // request; only consistent silence condemns the switch.
          const std::size_t budget =
              std::max<std::size_t>(2, self->options.max_retries + 1);
          if (probe->sent < budget) {
            self->send_echo(loc, id, probe);
          } else {
            self->fail_switch(loc);
          }
        });
  }

  void on_alive(SwitchId loc, std::size_t id) {
    if (terminal[id]) {
      dispatch();
      return;
    }
    if (rescued[id] < options.max_echo_rescues) {
      // The connection works; the losses were transient. Fresh round.
      ++rescued[id];
      attempts[id] = 1;
      ctr.retries->inc();
      log::warn("executor: switch " + std::to_string(loc) +
                " alive, rescuing request " + std::to_string(id));
      post_attempt(id);
      return;
    }
    fail_request(id);
    dispatch();
  }

  void fail_request(std::size_t id) {
    if (terminal[id]) return;
    const SwitchId loc = dag.request(id).location;
    const bool was_issued = issued[id];
    if (issued[id]) {
      auto& fl = in_flight[loc];
      if (fl > 0) --fl;
    } else {
      issued[id] = true;  // tombstone: never send it
      std::erase(pending, id);
      pending_dirty = true;
    }
    terminal[id] = true;
    ++done_count;
    if (done_count == n) end = network.now();
    ctr.failed_requests->inc();
    if (tele != nullptr) {
      if (was_issued) {
        // The lifecycle span still closes — failure is an end state, not
        // a missing one.
        tele->trace.span("executor", "request_failed", loc, issue_time[id],
                         network.now(),
                         {telemetry::arg("id", std::uint64_t{id}),
                          telemetry::arg("attempts", std::uint64_t{attempts[id]})});
      } else {
        tele->trace.instant("executor", "abandoned", loc, network.now(),
                            {telemetry::arg("id", std::uint64_t{id})});
      }
    }
    if (options.on_failed) options.on_failed(id);
    // Successors wait on a completion that will never come; abandoning
    // them (transitively) is what keeps lost_requests at zero.
    for (std::size_t succ : dag.successors(id)) {
      if (!terminal[succ] && !issued[succ]) fail_request(succ);
    }
  }

  void fail_switch(SwitchId loc) {
    if (!dead.insert(loc).second) return;
    report.failed_switches.insert(loc);
    if (tele != nullptr) {
      tele->trace.instant("executor", "switch_dead", loc, network.now());
      tele->metrics.counter("executor.switches_declared_dead").inc();
    }
    log::warn("executor: switch " + std::to_string(loc) +
              " declared dead (no ECHO reply)");
    for (std::size_t id = 0; id < n; ++id) {
      if (!terminal[id] && dag.request(id).location == loc) fail_request(id);
    }
    dispatch();
  }

  void dispatch() {
    if (finished) return;
    if (pending_dirty) {
      ctr.scheduling_rounds->inc();
      ordered = scheduler.order(dag, pending);
      pending_dirty = false;
    }
    for (std::size_t& id : ordered) {
      if (id == SIZE_MAX) continue;  // tombstone: already sent
      if (issued[id]) {
        id = SIZE_MAX;
        continue;
      }
      const SwitchId loc = dag.request(id).location;
      if (dead.count(loc) != 0) {
        const std::size_t doomed = id;
        id = SIZE_MAX;
        fail_request(doomed);
        continue;
      }
      if (in_flight[loc] >= options.per_switch_window) continue;
      const std::size_t to_send = id;
      id = SIZE_MAX;
      std::erase(pending, to_send);
      send(to_send);
    }

    if (options.speculative_dependents) {
      // Concurrent-dependent extension (§6): a blocked request may be
      // issued alongside its predecessors when every predecessor is
      // estimated to *finish* at least `guard` before this request would —
      // estimated finish = the target agent's current backlog plus the
      // measured cost of the operation itself.
      auto est_duration = [&](std::size_t rid) {
        const auto& req = dag.request(rid);
        const auto it = options.cost_hints.find(req.location);
        if (it == options.cost_hints.end()) return options.default_op_estimate;
        switch (req.type) {
          case RequestType::kAdd:
            return millis(it->second.add_ascending_ms);
          case RequestType::kMod:
            return millis(it->second.mod_ms);
          case RequestType::kDel:
            return millis(it->second.del_ms);
        }
        return options.default_op_estimate;
      };
      auto est_finish = [&](std::size_t rid) {
        const SimTime backlog =
            network.channel(dag.request(rid).location).agent_busy_until();
        return std::max(backlog, network.now()) + est_duration(rid);
      };
      bool progress = true;
      while (progress) {
        progress = false;
        for (std::size_t id = 0; id < n; ++id) {
          if (issued[id] || remaining_preds[id] == 0) continue;
          if (dead.count(dag.request(id).location) != 0) continue;
          const auto& preds = dag.predecessors(id);
          bool eligible = true;
          SimTime latest_pred_finish{};
          for (std::size_t p : preds) {
            if (!issued[p]) {
              eligible = false;
              break;
            }
            if (!terminal[p]) {
              latest_pred_finish = std::max(latest_pred_finish, est_finish(p));
            }
          }
          if (!eligible) continue;
          if (latest_pred_finish + options.guard <= est_finish(id)) {
            remaining_preds[id] = 0;  // commit to early issue
            ready_time[id] = network.now();
            send(id);
            progress = true;
          }
        }
      }
    }
  }
};

}  // namespace detail

ExecutionReport execute(net::Network& network, const RequestDag& dag,
                        UpdateScheduler& scheduler,
                        const ExecutorOptions& options) {
  if (dag.size() == 0) return {};
  assert(dag.is_acyclic());

  auto st =
      std::make_shared<detail::ExecState>(network, dag, scheduler, options);
  st->faults_before = snapshot_faults(network, dag);
  st->init();
  st->dispatch();
  while (st->done_count < st->n && network.events().step()) {
  }
  // Timers still queued beyond this point hold the state alive and no-op.
  st->finish();
  return st->report;
}

bool AsyncExecution::done() const {
  return state_ == nullptr || state_->done_count >= state_->n;
}

const ExecutionReport& AsyncExecution::finish() {
  assert(state_ != nullptr);
  state_->finish();
  return state_->report;
}

void AsyncExecution::abort() {
  if (state_ == nullptr) return;
  // Deliberately not finish(): no report finalization, no telemetry span —
  // the issuing controller is dead. The flag alone neutralizes every queued
  // timer/completion (they all bail on `finished`).
  state_->finished = true;
}

AsyncExecution execute_async(net::Network& network, const RequestDag& dag,
                             UpdateScheduler& scheduler,
                             const ExecutorOptions& options) {
  AsyncExecution handle;
  if (dag.size() == 0) return handle;
  assert(dag.is_acyclic());

  auto st =
      std::make_shared<detail::ExecState>(network, dag, scheduler, options);
  st->shared_counters = false;
  st->faults_before = snapshot_faults(network, dag);
  st->init();
  st->dispatch();
  handle.state_ = std::move(st);
  return handle;
}

}  // namespace tango::sched
