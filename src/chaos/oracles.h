// Invariant oracles checked at every quiescent point of a chaos run.
//
// Each oracle is a named predicate over the network's final state and the
// transaction's report; a violation carries the oracle name plus enough
// detail to debug the run. The oracles are deliberately conservative: they
// only flag conditions that are bugs under ANY legal fault schedule the
// generator emits (bounded fault windows, recovery budgets that outlive
// them), so a flagged seed is always worth shrinking.
//
//  * committed       — the transaction reached its policy's end state:
//                      committed, no unreconciled switches, no requests
//                      silently lost (eventual delivery of all intents).
//  * image-agreement — every affected switch's actual table equals the
//                      policy's desired image (post-update for a committed
//                      roll-forward / clean commit, pre-update snapshot for
//                      an executed rollback).
//  * readback        — a reconciler dry-run readback over the (now clean)
//                      control channel agrees with the in-simulator table:
//                      journal, switch, and wire views coincide.
//  * verifier        — ConsistencyVerifier walk over the desired rules: no
//                      black holes, loops, shadowing, or wrong egress. Rule
//                      cookies are asserted only when `cookie_checks` is on
//                      (ACL first-match-wins sets legitimately overlap).
//  * counters        — telemetry counter sanity: retries never exceed
//                      timeouts, a fault-free schedule produces no
//                      timeouts, and per-fault-type counts match the
//                      schedule (crashes fired == crashes scheduled,
//                      partition windows opened == partitions scheduled).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "chaos/schedule.h"
#include "net/fault_injector.h"
#include "net/network.h"
#include "scheduler/transaction.h"

namespace tango::chaos {

struct OracleViolation {
  /// Oracle name: "committed", "image-agreement", "readback", "verifier",
  /// "counters".
  std::string oracle;
  std::string detail;
};

std::string to_string(const OracleViolation& v);

struct OracleInput {
  net::Network* net = nullptr;
  sched::UpdateTransaction* txn = nullptr;
  const ChaosSchedule* schedule = nullptr;
  /// Fault-injector stats captured post-commit, keyed by switch.
  std::map<SwitchId, net::FaultStats> fault_stats;
  /// Per-rule cookie expectations feed the verifier oracle; off for ACL
  /// workloads where first-match-wins overlap makes shadowing legitimate.
  bool cookie_checks = true;
};

/// Run every oracle; returns the (possibly empty) violation list.
/// Performs readback traffic on the network's event queue — call only at a
/// quiescent point, with clean injectors attached.
std::vector<OracleViolation> check_invariants(const OracleInput& in);

/// The table each affected switch must end at under the policy: the
/// post-update image, except for a rollback that actually reconciled —
/// that one restores the pre-update snapshot. (Shared with the harness's
/// post-commit crash recovery.)
const sched::TableImage& desired_image(const sched::UpdateTransaction& txn,
                                       SwitchId id);

}  // namespace tango::chaos
