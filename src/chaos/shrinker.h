// Delta-debugging schedule shrinker (ddmin, Zeller & Hildebrandt).
//
// Given a failing schedule and a deterministic `fails` predicate, the
// shrinker searches for a locally minimal sub-schedule that still fails:
// it partitions the event list into n chunks, tries each chunk alone and
// each complement, recurses with finer granularity on success, and stops
// when removing any single remaining event makes the failure vanish
// (1-minimality). A final pass tries zeroing the background loss rate.
// Everything is deterministic — the same input always shrinks to the same
// reproducer through the same probe sequence — so a shrunk repro can be
// checked in as a regression test verbatim.
#pragma once

#include <cstddef>
#include <functional>

#include "chaos/schedule.h"

namespace tango::chaos {

struct ShrinkResult {
  /// Locally minimal failing schedule (== input when nothing could go).
  ChaosSchedule schedule;
  /// Times the predicate was evaluated.
  std::size_t probes = 0;
  /// True when the probe budget ran out before reaching 1-minimality.
  bool budget_exhausted = false;
};

/// Minimize `failing` against `fails`. The predicate must be deterministic
/// and must hold for `failing` itself (checked; if it does not, the input
/// is returned unchanged with probes == 1).
ShrinkResult shrink_schedule(
    const ChaosSchedule& failing,
    const std::function<bool(const ChaosSchedule&)>& fails,
    std::size_t max_probes = 512);

}  // namespace tango::chaos
